"""Agreement between the static depth prover and the simulator.

The analyzer's contract (DESIGN.md, "Static analysis & diagnostic
codes"):

* FB003 (proven deadlock) — the simulator MUST raise DeadlockError;
* no FB002/FB003 (proven safe / no reconvergence) — the run MUST complete;
* FB002 (unproven, within pipeline-staging margin) — no static claim; the
  dynamic check is the authority.

The hypothesis test drives a parametric diamond (fan-out, a deferring
branch, a re-join) across the deadlock boundary and holds the engine
prover to that contract exactly.  The ATAX test does the same for the
MDAG analyzer, whose FB003 speaks about FIFO capacity alone: below the
window minus the engine's staging grace (``lanes x push-latency`` plus
the fan-out's one-batch lead, = 2 x width here) the flagged composition
really deadlocks, and at or above the window it really completes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_engine, analyze_mdag
from repro.apps import atax_mdag, atax_reference, atax_streaming
from repro.fpga import DeadlockError
from repro.host import FblasContext
from repro.models.iomodel import atax_min_channel_depth

from test_preflight import _diamond


def _verdict(engine):
    result = analyze_engine(engine)
    if any(d.code == "FB003" for d in result.errors):
        return "deadlock"
    if any(d.code == "FB002" for d in result.warnings):
        return "unproven"
    assert result.ok
    return "safe"


@given(defer=st.integers(min_value=2, max_value=48),
       slack=st.integers(min_value=-8, max_value=8),
       extra=st.integers(min_value=0, max_value=24))
@settings(max_examples=60, deadline=None)
def test_engine_prover_agrees_with_simulator(defer, slack, extra):
    depth_b = max(1, defer + slack)
    n = defer + extra
    verdict = _verdict(_diamond(depth_b=depth_b, defer=defer, n=n))

    eng = _diamond(depth_b=depth_b, defer=defer, n=n)
    if verdict == "deadlock":
        with pytest.raises(DeadlockError):
            eng.run(max_cycles=500_000)
    elif verdict == "safe":
        assert eng.run(max_cycles=500_000).cycles > 0
    else:
        # Gray band: either outcome is acceptable, but nothing may hang.
        try:
            eng.run(max_cycles=500_000)
        except DeadlockError:
            pass


# --------------------------------------------------------- MDAG <-> ATAX
M = N = 16
TILE = 4
WIDTH = 4
WINDOW = atax_min_channel_depth(N, TILE)          # 64
GRACE = 2 * WIDTH                                  # staging + fan-out lead


def _mdag_flags_fb003(depth):
    mdag = atax_mdag(M, N, TILE, TILE)
    mdag.graph.edges["read_A", "gemvT"]["depth"] = depth
    result = analyze_mdag(mdag, windows={("read_A", "gemvT"): WINDOW})
    return any(d.code == "FB003" for d in result.errors)


def _simulate(depth):
    rng = np.random.default_rng(7)
    a = rng.normal(size=(M, N)).astype(np.float32)
    x = rng.normal(size=N).astype(np.float32)
    ctx = FblasContext()
    res = atax_streaming(ctx, ctx.copy_to_device(a), ctx.copy_to_device(x),
                         tile=TILE, width=WIDTH, channel_depth=depth)
    np.testing.assert_allclose(res.value, atax_reference(a, x), rtol=1e-4)


@pytest.mark.parametrize("depth", [8, WINDOW // 2, WINDOW - GRACE - 1])
def test_atax_mdag_fb003_below_grace_means_deadlock(depth):
    assert _mdag_flags_fb003(depth)
    with pytest.raises(DeadlockError):
        _simulate(depth)


@pytest.mark.parametrize("depth", [WINDOW, WINDOW + 1, 2 * WINDOW])
def test_atax_mdag_pass_means_completion(depth):
    assert not _mdag_flags_fb003(depth)
    _simulate(depth)


@pytest.mark.parametrize("depth", range(WINDOW - GRACE, WINDOW))
def test_atax_gray_band_is_exactly_the_engine_grace(depth):
    # FIFO capacity alone says deadlock; the engine's staging registers
    # absorb up to GRACE elements, so these depths complete.  This pins
    # the band the MDAG analyzer cannot decide (and the engine-level
    # prover reports as FB002).
    assert _mdag_flags_fb003(depth)
    _simulate(depth)
