"""The multi-tenant simulation service: admission, deadlines, overload,
supervision, per-plan degradation, batched fusion, exactly-once."""

import threading
import time

import numpy as np
import pytest

from repro.faults import FaultPlan, KernelFault, inject
from repro.fpga.errors import (DeadlineExceeded, SimulationError,
                               TransientFaultError)
from repro.host.api import Fblas
from repro.service import (AdmissionRejected, AppJob, PlanJob, RoutineJob,
                           ServiceClosed, ServiceOverload, SimulationService)
from repro.telemetry.ledger import LedgerQuery, fleet_report

RNG = np.random.default_rng(42)
N, W = 256, 16


def f32(n=N):
    return RNG.standard_normal(n).astype(np.float32)


def stock_dot(x, y, width=W):
    fb = Fblas(width=width)
    return fb.dot(fb.copy_to_device(x), fb.copy_to_device(y))


def stock_axpy(a, x, y, width=W):
    fb = Fblas(width=width)
    return fb.axpy(a, fb.copy_to_device(x), fb.copy_to_device(y))


def make_service(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("max_queue", 64)
    kw.setdefault("engine_mode", "bulk")
    kw.setdefault("width", W)
    return SimulationService(**kw)


class TestBasics:
    def test_dot_bit_identical_to_single_caller(self):
        x, y = f32(), f32()
        with make_service() as svc:
            got = svc.call(RoutineJob("dot", (x, y)), timeout=60)
        assert np.float32(got) == np.float32(stock_dot(x, y))

    def test_axpy_bit_identical_and_caller_arrays_untouched(self):
        a, x, y = 0.7, f32(), f32()
        y0 = y.copy()
        with make_service() as svc:
            got = svc.call(RoutineJob("axpy", (a, x, y)), timeout=60)
        assert np.array_equal(got, stock_axpy(a, x, y))
        assert np.array_equal(y, y0)        # by-value semantics

    def test_ticket_carries_run_id_and_tenant(self):
        with make_service() as svc:
            t = svc.submit(RoutineJob("dot", (f32(), f32())), tenant="acme")
            t.result(timeout=60)
            assert t.tenant == "acme"
            recs = [r for r in svc.ledger.records()
                    if r.kind == "service.request"]
            assert [r.run_id for r in recs] == [t.run_id]
            assert recs[0].tenant == "acme"
            assert recs[0].outcome == "ok"

    def test_closed_service_refuses_submissions(self):
        svc = make_service()
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit(RoutineJob("dot", (f32(), f32())))


class TestAdmission:
    def test_unknown_routine_rejected_with_fb500(self):
        with make_service() as svc:
            with pytest.raises(AdmissionRejected) as exc:
                svc.submit(RoutineJob("frobnicate"), tenant="t0")
            assert [d.code for d in exc.value.diagnostics] == ["FB500"]
            rec = [r for r in svc.ledger.records()
                   if r.kind == "service.request"][-1]
            assert rec.outcome == "rejected"
            assert rec.tenant == "t0"
            assert rec.extra["diagnostics"] == ["FB500"]

    def test_bad_dtype_rejected(self):
        bad = np.arange(8, dtype=np.int32)
        with make_service() as svc:
            with pytest.raises(AdmissionRejected):
                svc.submit(RoutineJob("dot", (bad, bad)))


class TestOverloadAndDeadlines:
    def test_full_queue_sheds_load_with_typed_error(self):
        gate = threading.Event()
        blocker = AppJob(lambda mode: gate.wait(10), name="blocker")
        svc = make_service(workers=1, max_queue=1, max_batch=1)
        try:
            first = svc.submit(blocker)
            time.sleep(0.2)              # let the worker pick it up
            queued = svc.submit(RoutineJob("dot", (f32(), f32())))
            with pytest.raises(ServiceOverload):
                svc.submit(RoutineJob("dot", (f32(), f32())))
            rec = [r for r in svc.ledger.records()
                   if r.kind == "service.request"][-1]
            assert rec.outcome == "overload"
            gate.set()
            first.result(timeout=30)
            queued.result(timeout=30)    # shed load, nothing lost
        finally:
            gate.set()
            svc.close()

    def test_deadline_expires_in_queue(self):
        gate = threading.Event()
        svc = make_service(workers=1, max_queue=8, max_batch=1)
        try:
            svc.submit(AppJob(lambda mode: gate.wait(10), name="blocker"))
            time.sleep(0.2)
            t = svc.submit(RoutineJob("dot", (f32(), f32())),
                           deadline_s=0.05)
            time.sleep(0.3)
            gate.set()
            with pytest.raises(DeadlineExceeded):
                t.result(timeout=30)
            rec = next(r for r in svc.ledger.records()
                       if r.run_id == t.run_id)
            assert rec.outcome == "deadline"      # not "deadlock"
            assert rec.extra["stage"] == "queue"
        finally:
            gate.set()
            svc.close()

    def test_deadline_bounds_recovery_retries(self):
        def run(mode):
            time.sleep(0.1)
            raise TransientFaultError("injected")

        with make_service(workers=1) as svc:
            t = svc.submit(AppJob(run, name="flaky"), deadline_s=0.05)
            with pytest.raises(DeadlineExceeded) as exc:
                t.result(timeout=30)
            # Chained to the fault that triggered the re-attempt.
            assert isinstance(exc.value.__cause__, TransientFaultError)


class TestSupervision:
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_poison_job_kills_worker_but_loses_nothing(self):
        with make_service(workers=1, max_batch=1) as svc:
            poison = svc.submit(AppJob(
                lambda mode: (_ for _ in ()).throw(SystemExit(3)),
                name="poison"))
            followers = [svc.submit(RoutineJob("dot", (f32(), f32())))
                         for _ in range(4)]
            with pytest.raises(BaseException):
                poison.result(timeout=30)
            for t in followers:          # queue survived the crash
                assert isinstance(t.result(timeout=60), np.float32)
            deadline = time.monotonic() + 5
            while svc.stats()["worker_restarts"] < 1:
                assert time.monotonic() < deadline, "no restart observed"
                time.sleep(0.02)

    def test_transient_fault_recovers_without_caller_visible_error(self):
        x, y = f32(), f32()
        expected = stock_dot(x, y)
        plan = FaultPlan(seed=1, kernel_faults=(
            KernelFault(kernel="dot", at_cycle=3, kind="crash"),))
        with make_service(workers=1, max_batch=1) as svc:
            with inject(plan) as ctx:
                got = svc.call(RoutineJob("dot", (x, y)), timeout=60)
            assert ctx.faults_injected == 1
        assert np.float32(got) == np.float32(expected)
        rec = [r for r in svc.ledger.records()
               if r.kind == "service.request"][-1]
        assert rec.outcome == "ok"
        assert rec.retries >= 1
        assert rec.recovery["actions"][0]["action"] == "retry"


class TestDegradation:
    def test_demotion_is_per_plan_not_per_fleet(self):
        modes_a, modes_b = [], []

        def fragile(mode):
            modes_a.append(mode)
            if mode == "bulk":
                raise SimulationError("bulk invariant violated")
            return "ok"

        def healthy(mode):
            modes_b.append(mode)
            return "ok"

        with make_service(workers=1) as svc:
            svc.call(AppJob(fragile, name="fragile"), timeout=30)
            assert modes_a == ["bulk", "event"]
            assert svc.demotions() == {"app.fragile": "event"}
            # The demoted plan starts demoted next time...
            svc.call(AppJob(fragile, name="fragile"), timeout=30)
            assert modes_a[2:] == ["event"]
            # ...while other plans keep the fast tier.
            svc.call(AppJob(healthy, name="healthy"), timeout=30)
            assert modes_b == ["bulk"]
            svc.reset_demotions()
            assert svc.demotions() == {}


class TestBatching:
    def test_backlog_fuses_with_bit_identical_results(self):
        jobs = [(f32(), f32()) for _ in range(6)]
        expected = [stock_dot(x, y) for x, y in jobs]
        gate = threading.Event()
        svc = make_service(workers=1, max_batch=8)
        try:
            svc.submit(AppJob(lambda mode: gate.wait(10), name="blocker"))
            time.sleep(0.2)
            tickets = [svc.submit(RoutineJob("dot", (x, y)))
                       for x, y in jobs]
            gate.set()
            got = [t.result(timeout=60) for t in tickets]
        finally:
            gate.set()
            svc.close()
        assert all(np.float32(g) == np.float32(e)
                   for g, e in zip(got, expected))
        stats = svc.stats()
        assert stats["batched_runs"] >= 1
        assert stats["fused_jobs"] >= 2
        fused = [r for r in svc.ledger.records()
                 if r.kind == "service.request" and "batched" in r.extra]
        assert fused and all(r.outcome == "ok" for r in fused)

    def test_incompatible_shapes_never_fuse(self):
        assert RoutineJob("dot", (f32(128), f32(128))).batch_key() != \
            RoutineJob("dot", (f32(256), f32(256))).batch_key()
        assert RoutineJob("scal", (2.0, f32())).batch_key() is None


class TestPlanJobs:
    @staticmethod
    def _axpydot_build(w, v, u, alpha, n, width):
        from repro.blas import level1
        from repro.fpga.resources import level1_latency
        from repro.streaming import (BoundMDAG, ComputeBinding, ReadBinding,
                                     WriteBinding, scalar_stream,
                                     vector_stream)

        def build(ctx):
            mem = ctx.mem
            g = BoundMDAG()
            g.add_interface("read_w")
            g.add_interface("read_v")
            g.add_interface("read_u")
            g.add_module("axpy")
            g.add_module("dot")
            g.add_interface("write_beta")
            sig = vector_stream(n)
            g.connect("read_w", "axpy", sig, sig, dst_port="w")
            g.connect("read_v", "axpy", sig, sig, dst_port="v")
            g.connect("axpy", "dot", sig, sig, src_port="z", dst_port="z")
            g.connect("read_u", "dot", sig, sig, dst_port="u")
            g.connect("dot", "write_beta", scalar_stream(), scalar_stream(),
                      src_port="res", dst_port="res")
            beta = mem.allocate("beta_out", 1)
            g.bind("read_w", ReadBinding(mem.bind("w_buf", w), width))
            g.bind("read_v", ReadBinding(mem.bind("v_buf", v), width))
            g.bind("read_u", ReadBinding(mem.bind("u_buf", u), width))
            g.bind("axpy", ComputeBinding(
                lambda ins, outs: level1.axpy_kernel(
                    n, -alpha, ins["v"], ins["w"], outs["z"], width),
                latency=level1_latency("map", width)))
            g.bind("dot", ComputeBinding(
                lambda ins, outs: level1.dot_kernel(
                    n, ins["z"], ins["u"], outs["res"], width),
                latency=level1_latency("map_reduce", width)))
            g.bind("write_beta", WriteBinding(beta, 1))
            return g, (lambda: float(beta.data[0]))
        return build

    def test_repeat_plans_hit_the_shared_cache_across_tenants(self):
        w, v, u = f32(), f32(), f32()
        job = PlanJob(self._axpydot_build(w, v, u, 0.7, N, W),
                      name="axpydot")
        with make_service(workers=2) as svc:
            r1 = svc.call(job, tenant="alice", timeout=60)
            r2 = svc.call(job, tenant="bob", timeout=60)
            stats = svc.plan_cache.stats()
        assert r1 == r2
        assert stats["hits"] >= 1 and stats["misses"] >= 1
        assert stats["entries"] == 1


class TestConcurrentTenantsUnderFaults:
    def test_eight_tenants_exactly_once_bit_identical(self):
        pool = [("dot", (f32(), f32())) for _ in range(3)] + \
               [("axpy", (0.5, f32(), f32())) for _ in range(3)]
        expected = [stock_dot(*p[1]) if p[0] == "dot" else stock_axpy(*p[1])
                    for p in pool]

        def app_dot(mode):
            # Fixed buffer/kernel names so memory faults can target it.
            from repro.fpga import (DramModel, Engine, read_kernel,
                                    sink_kernel)
            from repro.blas import level1 as l1
            mem = DramModel()
            eng = Engine(memory=mem, mode=mode)
            bx = mem.bind("app_x", pool[0][1][0])
            by = mem.bind("app_y", pool[0][1][1])
            cx = eng.channel("ax", 64)
            cy = eng.channel("ay", 64)
            cr = eng.channel("ar", 4)
            eng.add_kernel("app_read_x", read_kernel(mem, bx, cx, W))
            eng.add_kernel("app_read_y", read_kernel(mem, by, cy, W))
            eng.add_kernel("app_dot", l1.dot_kernel(N, cx, cy, cr, width=W))
            out = []
            eng.add_kernel("app_sink", sink_kernel(cr, 1, 1, out))
            eng.run()
            return out[0]

        # The acceptance campaign: kernel crash + channel hang (a frozen
        # reader starving its downstream channel) + DRAM ecc, all
        # one-shot.  Crashes are armed on both the single and the
        # batched kernel names so the campaign fires whether or not the
        # backlog happened to fuse.  (A "drop" fault is deliberately
        # absent: a dropped element is a *deterministic* deadlock the
        # ladder must never retry, so it cannot belong to a campaign
        # whose contract is that every request completes.)
        from repro.faults import MemoryFault
        plan = FaultPlan(
            seed=9,
            kernel_faults=(
                KernelFault(kernel="dot", at_cycle=2, kind="crash"),
                KernelFault(kernel="batched_dot", at_cycle=2, kind="crash"),
                KernelFault(kernel="axpy", at_cycle=2, kind="freeze",
                            cycles=64),
                KernelFault(kernel="batched_axpy", at_cycle=2,
                            kind="freeze", cycles=64),
                KernelFault(kernel="read0", at_cycle=4, kind="freeze",
                            cycles=48),
            ),
            memory_faults=(
                MemoryFault(kind="ecc_fatal", cycle=1, buffer="app_x"),
            ),
        )

        results = {}
        errors = {}

        with make_service(workers=4, max_queue=256) as svc:
            with inject(plan) as fctx:
                def tenant(tid):
                    rng = np.random.default_rng(tid)
                    tickets = []
                    for k in range(6):
                        idx = int(rng.integers(len(pool)))
                        routine, payload = pool[idx]
                        tickets.append(
                            (svc.submit(RoutineJob(routine, payload),
                                        tenant=f"tenant-{tid}"), idx))
                    tickets.append(
                        (svc.submit(AppJob(app_dot, name="appdot"),
                                    tenant=f"tenant-{tid}"), "app"))
                    for t, idx in tickets:
                        try:
                            results[(tid, t.run_id)] = (idx, t.result(120))
                        except Exception as exc:     # noqa: BLE001
                            errors[(tid, t.run_id)] = exc

                threads = [threading.Thread(target=tenant, args=(tid,))
                           for tid in range(8)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            assert not errors, f"requests failed: {errors}"
            assert len(results) == 8 * 7             # zero lost
            app_expected = stock_dot(*pool[0][1])
            for (tid, rid), (idx, value) in results.items():
                exp = app_expected if idx == "app" else expected[idx]
                if isinstance(exp, np.ndarray):
                    assert np.array_equal(value, exp)
                else:
                    assert np.float32(value) == np.float32(exp)
            assert fctx.faults_injected >= 3          # campaign fired
            recs = [r for r in svc.ledger.records()
                    if r.kind == "service.request"]
            # Exactly one classified record per request.
            assert len(recs) == 8 * 7
            assert all(r.outcome == "ok" for r in recs)
            assert sum(r.retries for r in recs) >= 1   # recovery ran
            q = LedgerQuery(recs)
            per_tenant = q.tenant_summary()
            assert set(per_tenant) == {f"tenant-{i}" for i in range(8)}
            assert all(row["requests"] == 7
                       for row in per_tenant.values())


class TestTenantReporting:
    def test_fleet_report_has_tenant_section(self):
        with make_service() as svc:
            svc.call(RoutineJob("dot", (f32(), f32())), tenant="acme")
            with pytest.raises(AdmissionRejected):
                svc.submit(RoutineJob("nope"), tenant="initech")
            report = fleet_report(svc.ledger.records())
        assert "tenant" in report
        assert "acme" in report
        assert "initech" in report
