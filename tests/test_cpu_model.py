"""Roofline CPU model calibration tests against the paper's Table IV."""

import pytest

from repro.models import cpu


class TestCalibration:
    """Model estimates land within ~35% of the measured MKL numbers."""

    @pytest.mark.parametrize("n,precision,paper_us", [
        (16_000_000, "single", 2_050),
        (16_000_000, "double", 4_079),
        (256_000_000, "single", 35_131),
        (128_000_000, "double", 35_124),
    ])
    def test_dot(self, n, precision, paper_us):
        got = cpu.dot_time(n, precision).seconds * 1e6
        assert abs(got - paper_us) / paper_us < 0.35

    @pytest.mark.parametrize("n,precision,paper_us", [
        (8192, "single", 5_402),
        (8192, "double", 9_810),
    ])
    def test_gemv(self, n, precision, paper_us):
        got = cpu.gemv_time(n, n, precision).seconds * 1e6
        assert abs(got - paper_us) / paper_us < 0.35

    @pytest.mark.parametrize("n,precision,paper_s", [
        (8192, "single", 1.56),
        (8192, "double", 3.14),
    ])
    def test_gemm(self, n, precision, paper_s):
        got = cpu.gemm_time(n, n, n, precision).seconds
        assert abs(got - paper_s) / paper_s < 0.2

    def test_axpydot(self):
        got = cpu.axpydot_time(4_000_000).seconds * 1e6
        assert abs(got - 1_376) / 1_376 < 0.5

    def test_gemver(self):
        got = cpu.gemver_time(8192).seconds * 1e6
        assert abs(got - 43_291) / 43_291 < 0.35


class TestRooflineStructure:
    def test_dot_is_memory_bound(self):
        assert cpu.dot_time(1 << 24).bound == "memory"

    def test_big_gemm_is_compute_bound(self):
        assert cpu.gemm_time(4096, 4096, 4096).bound == "compute"

    def test_tiny_gemm_is_memory_bound(self):
        assert cpu.gemm_time(4, 4, 4).bound == "memory"

    def test_double_precision_halves_peak(self):
        sp = cpu.gemm_time(4096, 4096, 4096, "single").seconds
        dp = cpu.gemm_time(4096, 4096, 4096, "double").seconds
        assert dp == pytest.approx(2 * sp, rel=0.01)

    def test_batched_overhead_dominates_small_batches(self):
        one = cpu.batched_gemm_time(4, 1)
        many = cpu.batched_gemm_time(4, 32_000)
        assert one.seconds > 0.9 * 30e-6
        assert many.seconds > 100 * one.seconds / 32  # scales with batch

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cpu._estimate(-1, 0, "single")

    def test_gflops_property(self):
        est = cpu.gemm_time(1024, 1024, 1024)
        assert est.gflops > 100
