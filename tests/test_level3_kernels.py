"""Streaming Level-3 kernels vs numpy references."""

import numpy as np
import pytest

from repro.blas import level3, reference
from repro.fpga import Engine, sink_kernel, source_kernel

RNG = np.random.default_rng(13)


def _mat(n, m, dtype=np.float32):
    return RNG.normal(size=(n, m)).astype(dtype)


def gemm_streams(a, b, c, tn, tm):
    """Produce the A/B/C streams the tiled GEMM kernel expects."""
    n, k = a.shape
    _, m = b.shape
    sa, sb, sc = [], [], []
    for ti in range(n // tn):
        for tj in range(m // tm):
            for kk in range(k):
                sa.extend(a[ti * tn:(ti + 1) * tn, kk])
                sb.extend(b[kk, tj * tm:(tj + 1) * tm])
            sc.extend(c[ti * tn:(ti + 1) * tn,
                        tj * tm:(tj + 1) * tm].reshape(-1))
    return sa, sb, sc


def collect_tiles(stream, n, m, tn, tm, dtype=np.float32):
    """Reassemble the tile-ordered output stream into a matrix."""
    out = np.empty((n, m), dtype=dtype)
    pos = 0
    for ti in range(n // tn):
        for tj in range(m // tm):
            block = np.array(stream[pos:pos + tn * tm],
                             dtype=dtype).reshape(tn, tm)
            out[ti * tn:(ti + 1) * tn, tj * tm:(tj + 1) * tm] = block
            pos += tn * tm
    return out


def run_gemm(n, m, k, tn, tm, w, alpha=1.0, beta=0.0):
    a, b, c = _mat(n, k), _mat(k, m), _mat(n, m)
    sa, sb, sc = gemm_streams(a, b, c, tn, tm)
    eng = Engine()
    ca = eng.channel("A", 512)
    cb = eng.channel("B", 512)
    cc = eng.channel("C", 512)
    co = eng.channel("o", 512)
    out = []
    eng.add_kernel("src_a", source_kernel(ca, sa, w))
    eng.add_kernel("src_b", source_kernel(cb, sb, w))
    eng.add_kernel("src_c", source_kernel(cc, sc, w))
    eng.add_kernel("gemm", level3.gemm_tiled(
        n, m, k, alpha, beta, ca, cb, cc, co, tn, tm, w), latency=90)
    eng.add_kernel("sink", sink_kernel(co, n * m, w, out))
    rep = eng.run()
    got = collect_tiles(out, n, m, tn, tm)
    expect = reference.gemm(alpha, a, b, beta, c)
    return got, expect, rep


class TestGemmTiled:
    @pytest.mark.parametrize("n,m,k,tn,tm,w", [
        (4, 4, 4, 2, 2, 1), (8, 8, 8, 4, 4, 2), (8, 6, 5, 4, 3, 2),
        (4, 4, 1, 4, 4, 4),
    ])
    def test_matches_reference(self, n, m, k, tn, tm, w):
        got, expect, _ = run_gemm(n, m, k, tn, tm, w, alpha=1.3, beta=0.4)
        np.testing.assert_allclose(got, expect, rtol=1e-4, atol=1e-4)

    def test_pure_multiply(self):
        got, expect, _ = run_gemm(8, 8, 8, 4, 4, 4)
        np.testing.assert_allclose(got, expect, rtol=1e-4, atol=1e-4)

    def test_cycles_scale_with_nmk_over_w(self):
        _, _, r1 = run_gemm(8, 8, 8, 4, 4, 1)
        _, _, r4 = run_gemm(8, 8, 8, 4, 4, 4)
        assert r1.cycles > 2 * r4.cycles

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            list(level3.gemm_tiled(7, 8, 4, 1, 0, None, None, None, None,
                                   2, 4))
        with pytest.raises(ValueError):
            list(level3.gemm_tiled(8, 8, 0, 1, 0, None, None, None, None,
                                   4, 4))


class TestSyrkTiled:
    def test_matches_reference(self):
        n, k, tn, tm, w = 6, 4, 3, 3, 2
        a, c = _mat(n, k), _mat(n, n)
        at = np.ascontiguousarray(a.T)
        sa, sat, sc = gemm_streams(a, at, c, tn, tm)
        eng = Engine()
        ca = eng.channel("A", 512)
        cat = eng.channel("At", 512)
        cc = eng.channel("C", 512)
        co = eng.channel("o", 512)
        out = []
        eng.add_kernel("src_a", source_kernel(ca, sa, w))
        eng.add_kernel("src_at", source_kernel(cat, sat, w))
        eng.add_kernel("src_c", source_kernel(cc, sc, w))
        eng.add_kernel("syrk", level3.syrk_tiled(
            n, k, 2.0, 0.5, ca, cat, cc, co, tn, tm, w), latency=90)
        eng.add_kernel("sink", sink_kernel(co, n * n, w, out))
        eng.run()
        got = collect_tiles(out, n, n, tn, tm)
        np.testing.assert_allclose(got, reference.syrk(2.0, a, 0.5, c),
                                   rtol=1e-4, atol=1e-4)


class TestSyr2kTiled:
    def test_matches_reference(self):
        n, k, tn, tm, w = 4, 3, 2, 2, 2
        a, b, c = _mat(n, k), _mat(n, k), _mat(n, n)
        bt = np.ascontiguousarray(b.T)
        at = np.ascontiguousarray(a.T)
        sa, sbt, sc = gemm_streams(a, bt, c, tn, tm)
        sb, sat, _ = gemm_streams(b, at, c, tn, tm)
        eng = Engine()
        chans = {nm: eng.channel(nm, 512)
                 for nm in ("A", "Bt", "B", "At", "C", "o")}
        out = []
        eng.add_kernel("src_a", source_kernel(chans["A"], sa, w))
        eng.add_kernel("src_bt", source_kernel(chans["Bt"], sbt, w))
        eng.add_kernel("src_b", source_kernel(chans["B"], sb, w))
        eng.add_kernel("src_at", source_kernel(chans["At"], sat, w))
        eng.add_kernel("src_c", source_kernel(chans["C"], sc, w))
        eng.add_kernel("syr2k", level3.syr2k_tiled(
            n, k, 1.5, 0.25, chans["A"], chans["Bt"], chans["B"],
            chans["At"], chans["C"], chans["o"], tn, tm, w), latency=90)
        eng.add_kernel("sink", sink_kernel(chans["o"], n * n, w, out))
        eng.run()
        got = collect_tiles(out, n, n, tn, tm)
        np.testing.assert_allclose(
            got, reference.syr2k(1.5, a, b, 0.25, c), rtol=1e-4, atol=1e-4)


class TestTrsmTiled:
    @pytest.mark.parametrize("lower", [True, False])
    def test_solves(self, lower):
        n, m, w = 6, 4, 2
        a = _mat(n, n) + n * np.eye(n, dtype=np.float32)
        t = np.tril(a) if lower else np.triu(a)
        b = _mat(n, m)
        eng = Engine()
        ca = eng.channel("A", 256)
        cb = eng.channel("B", 256)
        co = eng.channel("o", 256)
        out = []
        # B streamed column by column
        b_stream = list(b.T.reshape(-1))
        eng.add_kernel("src_a", source_kernel(ca, list(t.reshape(-1)), w))
        eng.add_kernel("src_b", source_kernel(cb, b_stream, w))
        eng.add_kernel("trsm", level3.trsm_tiled(
            n, m, 1.0, ca, cb, co, w, lower=lower), latency=90)
        eng.add_kernel("sink", sink_kernel(co, n * m, w, out))
        eng.run()
        x = np.array(out, dtype=np.float32).reshape(m, n).T
        np.testing.assert_allclose(t @ x, b, rtol=1e-3, atol=1e-3)


class TestUnrolled:
    def test_gemm_unrolled_batch(self):
        size, nbatch = 4, 10
        problems = [( _mat(size, size), _mat(size, size), _mat(size, size))
                    for _ in range(nbatch)]
        stream = []
        for a, b, c in problems:
            stream.extend(a.reshape(-1))
            stream.extend(b.reshape(-1))
            stream.extend(c.reshape(-1))
        eng = Engine()
        ci = eng.channel("in", 3 * size * size * 2)
        co = eng.channel("out", size * size * 2)
        out = []
        eng.add_kernel("src", source_kernel(ci, stream, 3 * size * size))
        eng.add_kernel("gemm4", level3.gemm_unrolled(
            size, nbatch, 1.0, 1.0, ci, co), latency=30)
        eng.add_kernel("sink", sink_kernel(co, nbatch * size * size,
                                           size * size, out))
        rep = eng.run()
        for i, (a, b, c) in enumerate(problems):
            got = np.array(out[i * 16:(i + 1) * 16],
                           dtype=np.float32).reshape(size, size)
            np.testing.assert_allclose(got, reference.gemm(1.0, a, b, 1.0, c),
                                       rtol=1e-4, atol=1e-4)
        # fully unrolled: a new problem per clock, so ~latency + nbatch
        assert rep.cycles <= 30 + nbatch + 10

    def test_trsm_unrolled_batch(self):
        size, nbatch = 4, 6
        problems = []
        stream = []
        for _ in range(nbatch):
            a = np.tril(_mat(size, size)) + size * np.eye(
                size, dtype=np.float32)
            b = _mat(size, size)
            problems.append((a, b))
            stream.extend(a.reshape(-1))
            stream.extend(b.reshape(-1))
        eng = Engine()
        ci = eng.channel("in", 2 * size * size * 2)
        co = eng.channel("out", size * size * 2)
        out = []
        eng.add_kernel("src", source_kernel(ci, stream, 2 * size * size))
        eng.add_kernel("trsm4", level3.trsm_unrolled(
            size, nbatch, 1.0, ci, co), latency=40)
        eng.add_kernel("sink", sink_kernel(co, nbatch * size * size,
                                           size * size, out))
        eng.run()
        for i, (a, b) in enumerate(problems):
            x = np.array(out[i * 16:(i + 1) * 16],
                         dtype=np.float32).reshape(size, size)
            np.testing.assert_allclose(a @ x, b, rtol=1e-3, atol=1e-3)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            list(level3.gemm_unrolled(0, 4, 1.0, 0.0, None, None))
        with pytest.raises(ValueError):
            list(level3.trsm_unrolled(4, 0, 1.0, None, None))
