"""One typed plan IR, five consumers: single-source-of-truth tests.

The tentpole property: every downstream subsystem — analyzer, certifier,
executor, code generator, drift reporter — consumes the *same* compiled
:class:`repro.plan.PlanIR`.  These tests prove the compiled artifact is
interchangeable with the live object everywhere (same diagnostics, same
schedules, byte-identical SimReports, identical emitted source), that the
executor's ``plan_cache`` really skips recompilation, and that the newly
executable Level-2 patterns let BICG and GEMVER certify whole-program.
"""

import numpy as np
import pytest

from repro.analysis import analyze_rates, certify, ensure_certified, \
    schedule_key
from repro.apps.bicg import bicg_reference, bicg_streaming
from repro.apps.gemver import gemver_reference, gemver_streaming
from repro.blas import level1
from repro.fpga.engine import Engine
from repro.fpga.memory import DramModel
from repro.fpga.resources import level1_latency
from repro.fpga.util import duplicate_kernel, sink_kernel, source_kernel
from repro.host.context import FblasContext
from repro.plan import PlanCache, PlanIR, compile_plan, mdag_fingerprint
from repro.streaming import (
    BoundMDAG,
    ComputeBinding,
    ReadBinding,
    WriteBinding,
    execute_plan,
    scalar_stream,
    vector_stream,
)

RNG = np.random.default_rng(42)


def f32(a):
    return np.asarray(a, dtype=np.float32)


# ---------------------------------------------------------------------------
# Shared builders
# ---------------------------------------------------------------------------

def _axpy_dot_engine(n=128, width=4):
    """A fully patterned source-fed chain (certifiable)."""
    eng = Engine(mode="event")
    cx = eng.channel("cx", 4 * width)
    cx1 = eng.channel("cx1", 4 * width)
    cx2 = eng.channel("cx2", 4 * width)
    cy = eng.channel("cy", 4 * width)
    cz = eng.channel("cz", 4 * width)
    cres = eng.channel("cres", 4)
    out = []
    data_x = [np.float32(i % 19 - 9) for i in range(n)]
    data_y = [np.float32(i % 5 - 2) for i in range(n)]
    eng.add_kernel("src_x", source_kernel(cx, data_x, width))
    eng.add_kernel("src_y", source_kernel(cy, data_y, width))
    eng.add_kernel("dup_x", duplicate_kernel(cx, (cx1, cx2), n, width))
    eng.add_kernel("axpy", level1.axpy_kernel(n, 0.5, cx1, cy, cz, width),
                   latency=6)
    eng.add_kernel("dot", level1.dot_kernel(n, cz, cx2, cres, width),
                   latency=8)
    eng.add_kernel("sink", sink_kernel(cres, 1, 1, out))
    return eng


def _bound_axpydot(mem, w, v, u, alpha, n, width):
    g = BoundMDAG()
    g.add_interface("read_w")
    g.add_interface("read_v")
    g.add_interface("read_u")
    g.add_module("axpy")
    g.add_module("dot")
    g.add_interface("write_beta")
    sig = vector_stream(n)
    g.connect("read_w", "axpy", sig, sig, dst_port="w")
    g.connect("read_v", "axpy", sig, sig, dst_port="v")
    g.connect("axpy", "dot", sig, sig, src_port="z", dst_port="z")
    g.connect("read_u", "dot", sig, sig, dst_port="u")
    g.connect("dot", "write_beta", scalar_stream(), scalar_stream(),
              src_port="res", dst_port="res")
    beta = mem.allocate("beta_out", 1)
    g.bind("read_w", ReadBinding(mem.bind("w_buf", w), width))
    g.bind("read_v", ReadBinding(mem.bind("v_buf", v), width))
    g.bind("read_u", ReadBinding(mem.bind("u_buf", u), width))
    g.bind("axpy", ComputeBinding(
        lambda ins, outs: level1.axpy_kernel(
            n, -alpha, ins["v"], ins["w"], outs["z"], width),
        latency=level1_latency("map", width)))
    g.bind("dot", ComputeBinding(
        lambda ins, outs: level1.dot_kernel(
            n, ins["z"], ins["u"], outs["res"], width),
        latency=level1_latency("map_reduce", width)))
    g.bind("write_beta", WriteBinding(beta, 1))
    return g, beta


# ---------------------------------------------------------------------------
# Analyzer + certifier consume the compiled IR
# ---------------------------------------------------------------------------

class TestAnalyzerOnPlanIR:
    def test_rates_identical_live_vs_compiled(self):
        """analyze_rates(engine) == analyze_rates(compile_plan(engine))
        diagnostic for diagnostic."""
        eng = _axpy_dot_engine()
        live = analyze_rates(eng)
        compiled = analyze_rates(compile_plan(eng))
        assert ([d.to_dict() for d in live.diagnostics]
                == [d.to_dict() for d in compiled.diagnostics])
        assert live.passes_run == compiled.passes_run

    def test_certify_identical_live_vs_compiled(self):
        eng = _axpy_dot_engine()
        res_live, sched_live = certify(eng)
        res_ir, sched_ir = certify(compile_plan(eng))
        assert ([d.to_dict() for d in res_live.diagnostics]
                == [d.to_dict() for d in res_ir.diagnostics])
        assert sched_live is not None and sched_ir is not None
        assert sched_live.to_dict() == sched_ir.to_dict()

    def test_schedule_key_is_plan_key(self):
        eng = _axpy_dot_engine()
        assert schedule_key(eng) == compile_plan(eng).plan_key

    def test_certified_schedule_memoized_on_plan_key(self):
        """Two separately built identical engines share one certificate
        through a PlanCache keyed on plan_key."""
        cache = PlanCache()
        first = ensure_certified(_axpy_dot_engine(), cache=cache)
        second = ensure_certified(_axpy_dot_engine(), cache=cache)
        assert first is second
        assert cache.hits >= 1

    def test_certified_engine_replays_precompiled_schedule(self):
        """Route the certificate through compile_plan() explicitly: an
        engine handed a cache pre-populated from the compiled IR runs
        certified without re-deriving anything, byte-identical to event."""
        plan = compile_plan(_axpy_dot_engine())
        cache = PlanCache()
        ensure_certified(plan, cache=cache)
        assert plan.plan_key in cache

        def run(mode, schedule_cache=None):
            eng = _axpy_dot_engine()
            eng.mode = mode
            if schedule_cache is not None:
                eng._schedule_cache = schedule_cache
            rep = eng.run()
            return (rep.to_dict(),
                    {n: (k.stats.active_cycles, k.stats.stall_cycles)
                     for n, k in eng.kernels.items()})

        hits_before = cache.hits
        certified = run("certified", cache)
        assert cache.hits > hits_before          # the IR-derived entry hit
        assert certified == run("event")


# ---------------------------------------------------------------------------
# Executor consumes (and caches) the compiled IR
# ---------------------------------------------------------------------------

class TestExecutorOnPlanIR:
    def _fresh(self):
        n, width, alpha = 96, 4, 0.75
        w, v, u = (f32(RNG.normal(size=n)) for _ in range(3))
        mem = DramModel(num_banks=4)
        g, beta = _bound_axpydot(mem, w, v, u, alpha, n, width)
        return g, mem, beta, (w, v, u, alpha)

    def test_execution_records_plan_ir(self):
        g, mem, beta, _ = self._fresh()
        result = execute_plan(g, mem)
        assert isinstance(result.plan_ir, PlanIR)
        assert result.plan_ir.edges            # planned decisions captured

    def test_precompiled_plan_runs_byte_identical(self):
        """execute_plan(plan=compile_plan(mdag)) must equal the
        compile-inside path in results, cycles, and I/O."""
        g1, mem1, beta1, (w, v, u, alpha) = self._fresh()
        auto = execute_plan(g1, mem1)
        mem2 = DramModel(num_banks=4)
        g2, beta2 = _bound_axpydot(mem2, w, v, u, alpha, 96, 4)
        pre = execute_plan(g2, mem2, plan=compile_plan(
            g2, device=mem2.device_label))
        assert [r.to_dict() for r in auto.reports] \
            == [r.to_dict() for r in pre.reports]
        assert auto.io_elements == pre.io_elements
        assert np.array_equal(beta1.data, beta2.data)
        assert auto.plan_ir.plan_key == pre.plan_ir.plan_key

    def test_plan_cache_hits_skip_recompilation(self):
        """Repeat executions through one PlanCache: the second run hits
        the fingerprint and replays the recorded PlanIR object."""
        cache = PlanCache()
        g1, mem1, _, (w, v, u, alpha) = self._fresh()
        r1 = execute_plan(g1, mem1, plan_cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        mem2 = DramModel(num_banks=4)
        g2, _ = _bound_axpydot(mem2, w, v, u, alpha, 96, 4)
        r2 = execute_plan(g2, mem2, plan_cache=cache)
        assert cache.hits == 1
        assert r2.plan_ir is r1.plan_ir        # the cached object itself
        assert [r.to_dict() for r in r1.reports] \
            == [r.to_dict() for r in r2.reports]

    def test_fingerprint_distinguishes_budgets(self):
        g, _, _, _ = self._fresh()
        assert (mdag_fingerprint(g, None, 0)
                != mdag_fingerprint(g, None, 1024))

    def test_modes_agree_through_precompiled_plan(self):
        """All engine cores fed the same precompiled PlanIR agree."""
        outcomes = {}
        for mode in ("dense", "event", "bulk"):
            mem = DramModel(num_banks=4)
            g, beta = _bound_axpydot(mem, *self._payload(), 96, 4)
            res = execute_plan(g, mem, plan=compile_plan(g), mode=mode)
            outcomes[mode] = ([r.to_dict() for r in res.reports],
                              res.io_elements, beta.data.tobytes())
        assert outcomes["dense"] == outcomes["event"] == outcomes["bulk"]

    def _payload(self):
        rng = np.random.default_rng(7)
        return (f32(rng.normal(size=96)), f32(rng.normal(size=96)),
                f32(rng.normal(size=96)), 0.6)


# ---------------------------------------------------------------------------
# Codegen consumes the compiled IR
# ---------------------------------------------------------------------------

class TestCodegenOnPlanIR:
    def _mdag_and_specs(self, n=1024, width=16):
        from repro.codegen import RoutineSpec
        from repro.streaming import MDAG
        g = MDAG()
        g.add_interface("read_w")
        g.add_interface("read_v")
        g.add_interface("read_u")
        g.add_module("my_axpy")
        g.add_module("my_dot")
        g.add_interface("write_beta")
        sig = vector_stream(n)
        g.connect("read_v", "my_axpy", sig, sig)
        g.connect("read_w", "my_axpy", sig, sig)
        g.connect("my_axpy", "my_dot", sig, sig)
        g.connect("read_u", "my_dot", sig, sig)
        g.connect("my_dot", "write_beta", scalar_stream(), scalar_stream())
        specs = {
            "my_axpy": RoutineSpec("axpy", "my_axpy", width=width),
            "my_dot": RoutineSpec("dot", "my_dot", width=width),
        }
        return g, specs

    def test_emission_from_explicit_plan_matches_default(self):
        from repro.codegen.composition import emit_composition
        mdag, specs = self._mdag_and_specs()
        default = emit_composition(mdag, specs, name="fig6")
        explicit = emit_composition(mdag, specs, name="fig6",
                                    plan=compile_plan(mdag))
        assert default == explicit

    def test_channel_depths_come_from_plan(self):
        """Every emitted channel declaration carries the planned depth."""
        from repro.codegen.composition import emit_composition
        mdag, specs = self._mdag_and_specs()
        plan = compile_plan(mdag)
        src = emit_composition(mdag, specs)
        for e in plan.edges:
            decl = (f"channel float {e.src}__{e.dst} "
                    f"__attribute__((depth({e.depth})));")
            assert decl in src


# ---------------------------------------------------------------------------
# Drift consumes the compiled IR's predictions
# ---------------------------------------------------------------------------

class TestDriftOnPlanIR:
    def test_entries_from_plan_reads_predictions(self):
        from repro.telemetry.drift import entries_from_plan
        plan = PlanIR().with_predictions(cycles_lo=100, cycles_hi=100,
                                         io_elements=400)
        cyc, io = entries_from_plan("demo", plan, 110.0, 440.0)
        assert (cyc.quantity, cyc.modeled, cyc.measured) \
            == ("cycles", 100, 110.0)
        assert (io.quantity, io.modeled) == ("io_elements", 400)
        assert cyc.rel_error == pytest.approx(10 / 110)

    def test_entries_from_plan_requires_predictions(self):
        from repro.telemetry.drift import entries_from_plan
        with pytest.raises(ValueError, match="no cycle prediction"):
            entries_from_plan("demo", PlanIR(), 1.0, 1.0)

    def test_probes_route_through_compiled_plans(self):
        """The four Sec. V probes still produce sane, unflagged drift."""
        from repro.telemetry.drift import drift_report
        report = drift_report(apps=("axpydot",))
        assert len(report.entries) == 2
        assert not report.flagged()


# ---------------------------------------------------------------------------
# Satellite: BICG / GEMVER certify whole-program (executable Level-2
# patterns) and stay byte-identical across every core.
# ---------------------------------------------------------------------------

class TestLevel2WholeProgram:
    N = 16

    def _bicg(self, mode, tile=None, width=4):
        rng = np.random.default_rng(3)
        ctx = FblasContext()
        n = self.N
        a = ctx.copy_to_device(f32(rng.normal(size=(n, n))))
        p = ctx.copy_to_device(f32(rng.normal(size=n)))
        r = ctx.copy_to_device(f32(rng.normal(size=n)))
        res = bicg_streaming(ctx, a, p, r, tile=tile or n, width=width,
                             mode=mode)
        return res, (np.array(a.data), np.array(p.data), np.array(r.data))

    def _gemver(self, mode, tile=None, width=4):
        rng = np.random.default_rng(5)
        ctx = FblasContext()
        n = self.N
        a = ctx.copy_to_device(f32(rng.normal(size=(n, n))))
        vs = [ctx.copy_to_device(f32(rng.normal(size=n)))
              for _ in range(6)]
        res = gemver_streaming(ctx, a, *vs, 1.5, -0.5, tile=tile or n,
                               width=width, mode=mode)
        return res, (np.array(a.data), *[np.array(v.data) for v in vs])

    def test_bicg_certifies_whole_program(self):
        """mode="certified" runs end to end: every kernel in the Fig. 7
        composition now carries an executable pattern."""
        res, (a, p, r) = self._bicg("certified")
        q, s = res.value
        ref_q, ref_s = bicg_reference(a, p, r)
        assert np.allclose(q, ref_q, rtol=1e-4)
        assert np.allclose(s, ref_s, rtol=1e-4)

    def test_gemver_certifies_whole_program(self):
        res, (a, *vs) = self._gemver("certified")
        b, x, w = res.value
        rb, rx, rw = gemver_reference(a, *vs, 1.5, -0.5)
        assert np.allclose(b, rb, rtol=1e-4)
        assert np.allclose(x, rx, rtol=1e-3, atol=1e-4)
        assert np.allclose(w, rw, rtol=1e-3, atol=1e-3)

    @pytest.mark.parametrize("tile", [None, 4, 8])
    def test_bicg_byte_identical_across_modes(self, tile):
        base = None
        for mode in ("dense", "event", "bulk", "certified"):
            if mode == "certified" and tile is not None:
                continue       # small tiles keep ragged epilogues dynamic
            res, _ = self._bicg(mode, tile=tile)
            q, s = res.value
            key = (res.cycles, res.kernel_steps, q.tobytes(), s.tobytes())
            if base is None:
                base = (mode, key)
            else:
                assert key == base[1], f"{mode} diverged from {base[0]}"

    @pytest.mark.parametrize("tile", [None, 4, 8])
    def test_gemver_byte_identical_across_modes(self, tile):
        base = None
        for mode in ("dense", "event", "bulk", "certified"):
            if mode == "certified" and tile is not None:
                continue
            res, _ = self._gemver(mode, tile=tile)
            b, x, w = res.value
            key = (res.cycles, res.kernel_steps, b.tobytes(), x.tobytes(),
                   w.tobytes())
            if base is None:
                base = (mode, key)
            else:
                assert key == base[1], f"{mode} diverged from {base[0]}"

    def test_transposed_gemv_matches_reference_ragged(self):
        """The declare-only fallback (tile_m % width) still computes the
        same result, just without the fast path."""
        res_e, (a, p, r) = self._bicg("event", tile=6, width=4)
        res_b, _ = self._bicg("bulk", tile=6, width=4)
        q, s = res_e.value
        ref_q, ref_s = bicg_reference(a, p, r)
        assert np.allclose(q, ref_q, rtol=1e-4)
        assert np.allclose(s, ref_s, rtol=1e-4)
        assert res_e.cycles == res_b.cycles
