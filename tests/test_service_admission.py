"""Admission control mirrors the static analyzer (satellite property).

The service must accept an :class:`~repro.service.EngineJob` **iff** a
direct FBxxx analysis of the same design reports no errors, and a
rejected design must never reach a worker — admission builds it exactly
once, for the pre-flight, and no engine run is ever recorded for it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.analysis import analyze_engine
from repro.fpga import DeadlockError, Engine
from repro.host.context import FblasContext
from repro.service import (AdmissionRejected, EngineJob, RoutineJob,
                           SimulationService)
from test_preflight import (_delay_body, _fanout_body, _join_body,
                            _sink_body)

N = 64


def wire_diamond(eng, depth_b, defer, n=N):
    """The test_preflight diamond, wired onto a caller-supplied engine."""
    ca = eng.channel("ca", n)
    cb = eng.channel("cb", depth_b)
    cd = eng.channel("cd", 8)
    co = eng.channel("co", 4)
    eng.add_kernel("src", _fanout_body(ca, cb, n),
                   writes=[(ca, 1, 1), (cb, 1, 1)])
    eng.add_kernel("delay", _delay_body(ca, cd, n, defer),
                   reads=(ca,), writes=[(cd, 1, 1)], defer=defer)
    eng.add_kernel("join", _join_body(cd, cb, co, n),
                   reads=(cd, cb), writes=[(co, 1, 1)])
    eng.add_kernel("sink", _sink_body(co), reads=(co,))


def direct_verdict(depth_b, defer):
    """What the analyzer says about the design, asked directly."""
    probe = Engine(memory=FblasContext().mem)
    wire_diamond(probe, depth_b, defer)
    return analyze_engine(probe)


@pytest.fixture(scope="module")
def svc():
    with SimulationService(workers=1, max_queue=32,
                           engine_mode="event") as s:
        yield s


class TestAdmissionMirrorsAnalyzer:
    @given(depth_b=st.integers(min_value=1, max_value=96),
           defer=st.integers(min_value=8, max_value=N))
    @settings(max_examples=25, deadline=None)
    def test_accept_iff_direct_analysis_is_clean(self, svc, depth_b, defer):
        verdict = direct_verdict(depth_b, defer)
        build_calls = []

        def build(eng, ctx):
            build_calls.append(1)
            wire_diamond(eng, depth_b, defer)
            return None

        job = EngineJob(build, name="diamond")
        if verdict.errors:
            with pytest.raises(AdmissionRejected) as exc:
                svc.submit(job, tenant="hyp")
            # The synchronous rejection carries the analyzer's verdict...
            assert {d.code for d in exc.value.diagnostics} >= \
                {d.code for d in verdict.errors}
            # ...and the design was built exactly once (the pre-flight
            # probe) — it never reached a worker.
            assert build_calls == [1]
        else:
            ticket = svc.submit(job, tenant="hyp")
            try:
                ticket.result(timeout=60)
            except DeadlockError:
                # Not provable statically, but real at runtime: the
                # worker's typed error — never an admission decision.
                pass
            # Admission probe + at least one worker attempt.
            assert len(build_calls) >= 2

    def test_known_deadlock_is_rejected_with_fb003(self, svc):
        with pytest.raises(AdmissionRejected) as exc:
            svc.submit(EngineJob(
                lambda eng, ctx: wire_diamond(eng, depth_b=4, defer=48),
                name="diamond"))
        assert any(d.code == "FB003" for d in exc.value.diagnostics)

    def test_known_good_design_runs(self, svc):
        out = []

        def build(eng, ctx):
            wire_diamond(eng, depth_b=N, defer=16)
            return lambda: "done"

        assert svc.call(EngineJob(build, name="diamond"),
                        timeout=60) == "done"


class TestRejectedNeverReachesWorker:
    def test_no_engine_run_record_for_rejected_request(self):
        with telemetry.session() as tel:
            with SimulationService(workers=1, engine_mode="event") as svc:
                with pytest.raises(AdmissionRejected):
                    svc.submit(EngineJob(
                        lambda eng, ctx: wire_diamond(eng, 4, 48),
                        name="bad"), tenant="t0")
                rejected_id = [r for r in tel.ledger.records()
                               if r.kind == "service.request"][-1].run_id
                # A control request DOES mint engine-run records...
                x = np.ones(N, dtype=np.float32)
                svc.call(RoutineJob("dot", (x, x)), tenant="t0",
                         timeout=60)
            recs = tel.ledger.records()
        assert any(r.kind == "engine.run" for r in recs)
        # ...but nothing was ever simulated for the rejected request:
        # no engine.run record exists under (or anywhere near) its id.
        assert not [r for r in recs if r.kind == "engine.run"
                    and rejected_id in (r.run_id, r.parent_id)]
        rej = next(r for r in recs if r.run_id == rejected_id)
        assert rej.outcome == "rejected"
