"""Composition source emission: one file wiring generated modules."""

import pytest

from repro.codegen import RoutineSpec, SpecError, emit_composition
from repro.streaming import MDAG, scalar_stream, vector_stream


def axpydot_mdag_and_specs(n=1024, width=16):
    g = MDAG()
    g.add_interface("read_w")
    g.add_interface("read_v")
    g.add_interface("read_u")
    g.add_module("my_axpy")
    g.add_module("my_dot")
    g.add_interface("write_beta")
    sig = vector_stream(n)
    g.connect("read_v", "my_axpy", sig, sig)
    g.connect("read_w", "my_axpy", sig, sig)
    g.connect("my_axpy", "my_dot", sig, sig)
    g.connect("read_u", "my_dot", sig, sig)
    g.connect("my_dot", "write_beta", scalar_stream(), scalar_stream())
    specs = {
        "my_axpy": RoutineSpec("axpy", "my_axpy", width=width),
        "my_dot": RoutineSpec("dot", "my_dot", width=width),
    }
    return g, specs


class TestAxpydotComposition:
    def test_emits_one_channel_per_edge(self):
        g, specs = axpydot_mdag_and_specs()
        src = emit_composition(g, specs, name="axpydot")
        for u, v in g.graph.edges():
            assert f"channel float {u}__{v}" in src

    def test_modules_are_aliased_onto_edges(self):
        g, specs = axpydot_mdag_and_specs()
        src = emit_composition(g, specs)
        assert "#define my_axpy_ch_out my_axpy__my_dot" in src
        assert "#define my_dot_ch_res my_dot__write_beta" in src
        assert "#undef my_axpy_ch_out" in src

    def test_module_bodies_included_without_local_channels(self):
        g, specs = axpydot_mdag_and_specs()
        src = emit_composition(g, specs)
        # kernel bodies present once each
        assert src.count("__kernel void my_axpy(") == 1
        assert src.count("__kernel void my_dot(") == 1
        # no per-module channel declarations (the shared ones replace them)
        assert "channel float my_axpy_ch_x " not in src

    def test_interface_helpers_emitted(self):
        g, specs = axpydot_mdag_and_specs()
        src = emit_composition(g, specs)
        assert "__kernel void read_w_to_my_axpy" in src
        assert "__kernel void my_dot_to_write_beta" in src

    def test_channel_depths_respected(self):
        g, specs = axpydot_mdag_and_specs()
        g.required_depth("my_axpy", "my_dot", 512)
        src = emit_composition(g, specs)
        assert "my_axpy__my_dot __attribute__((depth(512)))" in src

    def test_double_precision_channels(self):
        g, specs = axpydot_mdag_and_specs()
        specs = {k: RoutineSpec(v.blas_name, v.user_name,
                                precision="double", width=v.width)
                 for k, v in specs.items()}
        src = emit_composition(g, specs)
        assert "channel double" in src


class TestCompositionResources:
    def test_streaming_saves_interface_modules(self):
        """The composed design shares interfaces: up to ~40% fewer
        resources than synthesizing each routine standalone (Sec. VI-C)."""
        from repro.codegen.composition import composition_resources
        g, specs = axpydot_mdag_and_specs(width=16)
        res = composition_resources(g, specs)
        assert res.streaming.luts < res.standalone.luts
        assert 0.1 < res.savings < 0.6

    def test_savings_shrink_for_compute_heavy_modules(self):
        """Interface savings are relatively smaller when the modules
        themselves are big (wide vectorization)."""
        from repro.codegen.composition import composition_resources
        g1, s1 = axpydot_mdag_and_specs(width=8)
        g2, s2 = axpydot_mdag_and_specs(width=256)
        r_small = composition_resources(g1, s1)
        r_big = composition_resources(g2, s2)
        assert r_big.savings < r_small.savings

    def test_missing_spec_rejected(self):
        from repro.codegen.composition import composition_resources
        g, specs = axpydot_mdag_and_specs()
        del specs["my_axpy"]
        with pytest.raises(SpecError):
            composition_resources(g, specs)


class TestValidation:
    def test_missing_spec_rejected(self):
        g, specs = axpydot_mdag_and_specs()
        del specs["my_dot"]
        with pytest.raises(SpecError, match="my_dot"):
            emit_composition(g, specs)

    def test_degree_exceeding_ports_rejected(self):
        g = MDAG()
        g.add_interface("a")
        g.add_interface("b")
        g.add_interface("c")
        g.add_module("s")
        sig = vector_stream(8)
        g.connect("a", "s", sig, sig)
        g.connect("b", "s", sig, sig)
        g.connect("c", "s", sig, sig)     # scal has one input port
        with pytest.raises(SpecError, match="port count"):
            emit_composition(g, {"s": RoutineSpec("scal", "s")})

    def test_port_map_overrides_order(self):
        g, specs = axpydot_mdag_and_specs()
        src = emit_composition(g, specs, port_map={
            "my_dot": {"my_axpy": "y", "read_u": "x"}})
        assert "#define my_dot_ch_y my_axpy__my_dot" in src
        assert "#define my_dot_ch_x read_u__my_dot" in src
