"""Streaming Level-1 kernels vs the numpy references, on the simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas import level1, reference
from repro.models import level1_cycles

from helpers import run_map_kernel, run_reduction_kernel

RNG = np.random.default_rng(7)


def vec(n, dtype=np.float32, scale=1.0):
    return (RNG.normal(size=n) * scale).astype(dtype)


class TestScal:
    @pytest.mark.parametrize("n,w", [(64, 1), (64, 4), (100, 8), (7, 16)])
    def test_matches_reference(self, n, w):
        x = vec(n)
        outs, _ = run_map_kernel(
            lambda cx, co: level1.scal_kernel(n, 2.5, cx, co, w),
            {"x": (list(x), w)}, {"out": n}, w)
        np.testing.assert_allclose(outs["out"], reference.scal(2.5, x),
                                   rtol=1e-6)

    def test_cycle_count_matches_model(self):
        """Measured cycles track C = CD + N/W (Sec. IV-A)."""
        n, w = 4096, 8
        x = vec(n)
        _, rep = run_map_kernel(
            lambda cx, co: level1.scal_kernel(n, 1.0, cx, co, w),
            {"x": (list(x), w)}, {"out": n}, w, latency=50)
        assert abs(rep.cycles - level1_cycles("scal", n, w) - 44) < 60

    def test_double_precision(self):
        x = vec(32, np.float64)
        outs, _ = run_map_kernel(
            lambda cx, co: level1.scal_kernel(32, -1.5, cx, co, 4,
                                              dtype=np.float64),
            {"x": (list(x), 4)}, {"out": 32}, 4)
        np.testing.assert_allclose(outs["out"], -1.5 * x, rtol=1e-14)


class TestCopyAxpy:
    def test_copy(self):
        x = vec(50)
        outs, _ = run_map_kernel(
            lambda cx, co: level1.copy_kernel(50, cx, co, 4),
            {"x": (list(x), 4)}, {"out": 50}, 4)
        np.testing.assert_allclose(outs["out"], x, rtol=1e-7)

    @pytest.mark.parametrize("w", [1, 4, 16])
    def test_axpy(self, w):
        x, y = vec(96), vec(96)
        outs, _ = run_map_kernel(
            lambda cx, cy, co: level1.axpy_kernel(96, 0.7, cx, cy, co, w),
            {"x": (list(x), w), "y": (list(y), w)}, {"out": 96}, w)
        np.testing.assert_allclose(outs["out"], reference.axpy(0.7, x, y),
                                   rtol=1e-5)


class TestSwapRot:
    def test_swap(self):
        x, y = vec(40), vec(40)
        outs, _ = run_map_kernel(
            lambda cx, cy, cox, coy: level1.swap_kernel(40, cx, cy, cox, coy, 4),
            {"x": (list(x), 4), "y": (list(y), 4)},
            {"ox": 40, "oy": 40}, 4)
        np.testing.assert_allclose(outs["ox"], y, rtol=1e-7)
        np.testing.assert_allclose(outs["oy"], x, rtol=1e-7)

    def test_rot(self):
        x, y = vec(64), vec(64)
        c, s = np.cos(0.4), np.sin(0.4)
        outs, _ = run_map_kernel(
            lambda cx, cy, cox, coy: level1.rot_kernel(
                64, c, s, cx, cy, cox, coy, 4),
            {"x": (list(x), 4), "y": (list(y), 4)}, {"ox": 64, "oy": 64}, 4)
        ex, ey = reference.rot(x, y, c, s)
        np.testing.assert_allclose(outs["ox"], ex, rtol=1e-5)
        np.testing.assert_allclose(outs["oy"], ey, rtol=1e-5)

    @pytest.mark.parametrize("flag", [-2.0, -1.0, 0.0, 1.0])
    def test_rotm(self, flag):
        x, y = vec(32), vec(32)
        if flag == -1.0:
            param = np.array([flag, 0.9, -0.2, 0.3, 1.1], dtype=np.float32)
        elif flag == 0.0:
            param = np.array([flag, 0, -0.2, 0.3, 0], dtype=np.float32)
        elif flag == 1.0:
            param = np.array([flag, 0.9, 0, 0, 1.1], dtype=np.float32)
        else:
            param = np.array([flag, 0, 0, 0, 0], dtype=np.float32)
        outs, _ = run_map_kernel(
            lambda cx, cy, cox, coy: level1.rotm_kernel(
                32, param, cx, cy, cox, coy, 4),
            {"x": (list(x), 4), "y": (list(y), 4)}, {"ox": 32, "oy": 32}, 4)
        ex, ey = reference.rotm(x, y, param)
        np.testing.assert_allclose(outs["ox"], ex, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(outs["oy"], ey, rtol=1e-5, atol=1e-6)

    def test_rotm_bad_flag(self):
        with pytest.raises(ValueError):
            list(level1.rotm_kernel(4, np.array([9.0, 0, 0, 0, 0]),
                                    None, None, None, None))


class TestReductions:
    @pytest.mark.parametrize("n,w", [(64, 1), (64, 8), (100, 16), (5, 4)])
    def test_dot(self, n, w):
        x, y = vec(n), vec(n)
        out, _ = run_reduction_kernel(
            lambda cx, cy, cr: level1.dot_kernel(n, cx, cy, cr, w),
            {"x": (list(x), w), "y": (list(y), w)})
        assert out[0] == pytest.approx(float(reference.dot(x, y)), rel=1e-4)

    def test_dot_cycles_match_model(self):
        n, w = 8192, 16
        x, y = vec(n), vec(n)
        _, rep = run_reduction_kernel(
            lambda cx, cy, cr: level1.dot_kernel(n, cx, cy, cr, w),
            {"x": (list(x), w), "y": (list(y), w)}, latency=93)
        model = level1_cycles("dot", n, w)
        assert abs(rep.cycles - model) / model < 0.25

    def test_sdsdot_accumulates_in_double(self):
        x = (RNG.normal(size=512) * 1e4).astype(np.float32)
        y = RNG.normal(size=512).astype(np.float32)
        out, _ = run_reduction_kernel(
            lambda cx, cy, cr: level1.sdsdot_kernel(512, 1.0, cx, cy, cr, 8),
            {"x": (list(x), 8), "y": (list(y), 8)})
        assert out[0] == pytest.approx(float(reference.sdsdot(1.0, x, y)),
                                       rel=1e-6)

    def test_nrm2(self):
        x = vec(128)
        out, _ = run_reduction_kernel(
            lambda cx, cr: level1.nrm2_kernel(128, cx, cr, 8),
            {"x": (list(x), 8)})
        assert out[0] == pytest.approx(float(reference.nrm2(x)), rel=1e-5)

    def test_asum(self):
        x = vec(128)
        out, _ = run_reduction_kernel(
            lambda cx, cr: level1.asum_kernel(128, cx, cr, 8),
            {"x": (list(x), 8)})
        assert out[0] == pytest.approx(float(reference.asum(x)), rel=1e-5)

    def test_iamax(self):
        x = vec(100)
        out, _ = run_reduction_kernel(
            lambda cx, cr: level1.iamax_kernel(100, cx, cr, 8),
            {"x": (list(x), 8)})
        assert out[0] == reference.iamax(x)

    def test_iamax_tie_takes_first(self):
        x = [1.0, -5.0, 5.0, 2.0]
        out, _ = run_reduction_kernel(
            lambda cx, cr: level1.iamax_kernel(4, cx, cr, 2),
            {"x": (x, 2)})
        assert out[0] == 1


class TestScalarRoutines:
    def test_rotg(self):
        out, _ = run_reduction_kernel(
            lambda ci, co: level1.rotg_kernel(ci, co, dtype=np.float64),
            {"ab": ([3.0, 4.0], 2)}, result_count=4)
        r, z, c, s = out
        assert c * 3.0 + s * 4.0 == pytest.approx(r, rel=1e-9)
        assert -s * 3.0 + c * 4.0 == pytest.approx(0.0, abs=1e-9)

    def test_rotmg(self):
        out, _ = run_reduction_kernel(
            lambda ci, co: level1.rotmg_kernel(ci, co, dtype=np.float64),
            {"in": ([1.5, 0.7, 2.0, 3.0], 4)}, result_count=8)
        d1, d2, x1, param = out[0], out[1], out[2], np.array(out[3:])
        rd1, rd2, rx1, rparam = reference.rotmg(1.5, 0.7, 2.0, 3.0)
        assert d1 == pytest.approx(rd1)
        np.testing.assert_allclose(param, rparam, atol=1e-9)


class TestTreeReduce:
    @settings(max_examples=50)
    @given(st.lists(st.floats(-1e3, 1e3), max_size=65))
    def test_matches_sum_in_double(self, values):
        got = level1._tree_reduce([np.float64(v) for v in values], np.float64)
        assert float(got) == pytest.approx(sum(values, 0.0), abs=1e-6)

    def test_empty(self):
        assert level1._tree_reduce([], np.float32) == 0
