"""Code generator tests: spec validation, emitted source, executable bindings."""

import json

import numpy as np
import pytest

from repro.codegen import (
    CodeGenerator,
    RoutineSpec,
    SpecError,
    generate_routine,
    load_spec,
    parse_spec,
)
from repro.fpga import Engine, sink_kernel, source_kernel
from repro.blas import reference

RNG = np.random.default_rng(23)


class TestSpecValidation:
    def test_minimal_spec(self):
        s = RoutineSpec("dot", "my_dot", width=16)
        assert s.ctype == "float" and s.prefix == "s"

    def test_unknown_routine(self):
        with pytest.raises(SpecError):
            RoutineSpec("fft", "x")

    def test_bad_precision(self):
        with pytest.raises(SpecError):
            RoutineSpec("dot", "d", precision="half")

    def test_bad_width(self):
        with pytest.raises(SpecError):
            RoutineSpec("dot", "d", width=0)

    def test_bad_user_name(self):
        with pytest.raises(SpecError):
            RoutineSpec("dot", "3bad name")

    def test_tiles_on_untileable_routine(self):
        with pytest.raises(SpecError):
            RoutineSpec("dot", "d", tile_n_size=16, tile_m_size=16)

    def test_half_specified_tiles(self):
        with pytest.raises(SpecError):
            RoutineSpec("gemv", "g", tile_n_size=16)

    def test_systolic_only_for_gemm(self):
        with pytest.raises(SpecError):
            RoutineSpec("gemv", "g", tile_n_size=8, tile_m_size=8,
                        systolic_rows=2, systolic_cols=2)

    def test_systolic_tile_divisibility(self):
        with pytest.raises(SpecError):
            RoutineSpec("gemm", "g", tile_n_size=10, tile_m_size=8,
                        systolic_rows=4, systolic_cols=4)

    def test_parse_spec_dict(self):
        specs = parse_spec({"routine": [
            {"blas_name": "scal", "user_name": "s1", "width": 8},
            {"blas_name": "axpy"},
        ]})
        assert len(specs) == 2
        assert specs[1].user_name == "axpy_1"

    def test_parse_rejects_duplicates(self):
        with pytest.raises(SpecError):
            parse_spec({"routine": [
                {"blas_name": "scal", "user_name": "x"},
                {"blas_name": "axpy", "user_name": "x"},
            ]})

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(SpecError):
            parse_spec({"routine": [{"blas_name": "scal", "wat": 1}]})

    def test_parse_rejects_bad_shapes(self):
        with pytest.raises(SpecError):
            parse_spec({"routine": []})
        with pytest.raises(SpecError):
            parse_spec([])
        with pytest.raises(SpecError):
            parse_spec({"routine": ["scal"]})

    def test_load_from_json_file(self, tmp_path):
        p = tmp_path / "spec.json"
        p.write_text(json.dumps({"routine": [
            {"blas_name": "dot", "user_name": "jdot", "width": 4}]}))
        specs = load_spec(p)
        assert specs[0].user_name == "jdot"

    def test_load_invalid_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{nope")
        with pytest.raises(SpecError):
            load_spec(p)


class TestEmittedSource:
    def test_scal_source_mirrors_fig4(self):
        src = generate_routine(RoutineSpec("scal", "my_scal", width=8)).source
        assert "#pragma unroll" in src
        assert "#define MY_SCAL_W 8" in src
        assert "read_channel_intel(my_scal_ch_x)" in src
        assert "alpha * x" in src
        assert "cl_intel_channels" in src

    def test_dot_source_mirrors_fig5(self):
        src = generate_routine(RoutineSpec("dot", "my_dot", width=16)).source
        assert "acc += x * y" in src
        assert "res += acc" in src
        assert "write_channel_intel(my_dot_ch_res" in src

    def test_double_precision_uses_double(self):
        src = generate_routine(
            RoutineSpec("axpy", "dax", precision="double")).source
        assert "double" in src and "float " not in src

    def test_nontiled_gemv_mirrors_listing1(self):
        src = generate_routine(RoutineSpec("gemv", "g0", width=4)).source
        assert "beta * read_channel_intel(g0_ch_y)" in src

    def test_tiled_gemv_mentions_tiles_and_replay(self):
        src = generate_routine(RoutineSpec(
            "gemv", "gt", width=4, tile_n_size=64, tile_m_size=64)).source
        assert "#define GT_TILE_N 64" in src
        assert "replayed" in src

    def test_systolic_gemm_source(self):
        src = generate_routine(RoutineSpec(
            "gemm", "sg", width=1, tile_n_size=16, tile_m_size=16,
            systolic_rows=4, systolic_cols=4)).source
        assert "#define SG_PR 4" in src
        assert "_pe(" in src           # PE function, single-kernel style
        assert "a_reg" in src and "b_reg" in src

    def test_helpers_generated_per_port(self):
        r = generate_routine(RoutineSpec("axpy", "ax"))
        assert set(r.helpers) == {"read_x", "read_y", "write_out"}
        assert "__global volatile" in r.helpers["read_x"]

    def test_write_files(self, tmp_path):
        gen = CodeGenerator({"routine": [
            {"blas_name": "dot", "user_name": "d1", "width": 4},
            {"blas_name": "scal", "user_name": "s1", "width": 4},
        ]})
        paths = gen.write_all(tmp_path)
        assert (tmp_path / "d1.cl").exists()
        assert (tmp_path / "s1_read_x.cl").exists()
        assert len(paths) == 2 + 3 + 2   # 2 mains + helpers


class TestBindingsExecute:
    """Generated routines run on the simulator and compute BLAS results."""

    def _run_dot(self, spec):
        r = generate_routine(spec)
        n = 64
        x = RNG.normal(size=n).astype(r.dtype)
        y = RNG.normal(size=n).astype(r.dtype)
        eng = Engine()
        cx = eng.channel("x", 64)
        cy = eng.channel("y", 64)
        cr = eng.channel("r", 4)
        out = []
        eng.add_kernel("sx", source_kernel(cx, list(x), spec.width))
        eng.add_kernel("sy", source_kernel(cy, list(y), spec.width))
        eng.add_kernel("dot", r.make_kernel(n, cx, cy, cr),
                       latency=r.latency)
        eng.add_kernel("sink", sink_kernel(cr, 1, 1, out))
        eng.run()
        return out[0], reference.dot(x, y)

    def test_generated_dot_single(self):
        got, want = self._run_dot(RoutineSpec("dot", "d", width=8))
        assert got == pytest.approx(float(want), rel=1e-4)

    def test_generated_dot_double(self):
        got, want = self._run_dot(
            RoutineSpec("dot", "dd", width=8, precision="double"))
        assert got == pytest.approx(float(want), rel=1e-12)

    def test_generated_scal_runs(self):
        spec = RoutineSpec("scal", "s", width=4)
        r = generate_routine(spec)
        x = RNG.normal(size=32).astype(np.float32)
        eng = Engine()
        cx = eng.channel("x", 32)
        co = eng.channel("o", 32)
        out = []
        eng.add_kernel("src", source_kernel(cx, list(x), 4))
        eng.add_kernel("scal", r.make_kernel(32, 3.0, cx, co),
                       latency=r.latency)
        eng.add_kernel("sink", sink_kernel(co, 32, 4, out))
        eng.run()
        np.testing.assert_allclose(out, 3.0 * x, rtol=1e-6)

    def test_generated_trsv_respects_functional_params(self):
        spec = RoutineSpec("trsv", "t", width=2, lower=False)
        r = generate_routine(spec)
        n = 6
        a = RNG.normal(size=(n, n)).astype(np.float32) + n * np.eye(
            n, dtype=np.float32)
        t = np.triu(a)
        b = RNG.normal(size=n).astype(np.float32)
        order = list(range(n - 1, -1, -1))
        eng = Engine()
        ca = eng.channel("A", 256)
        cb = eng.channel("b", 16)
        co = eng.channel("o", 16)
        out = []
        a_stream = [t[i, j] for i in order for j in range(n)]
        eng.add_kernel("sa", source_kernel(ca, a_stream, 2))
        eng.add_kernel("sb", source_kernel(cb, [b[i] for i in order], 1))
        eng.add_kernel("trsv", r.make_kernel(n, ca, cb, co), latency=60)
        eng.add_kernel("sink", sink_kernel(co, n, 1, out))
        eng.run()
        x = np.empty(n, dtype=np.float32)
        for v, i in zip(out, order):
            x[i] = v
        np.testing.assert_allclose(t @ x, b, rtol=1e-3, atol=1e-3)

    def test_every_routine_generates(self):
        """All 22 routines produce source and a binding without error."""
        from repro.blas import all_routines
        for name in all_routines():
            kwargs = {}
            if name in ("gemv", "ger", "syr", "syr2", "gemm", "syrk",
                        "syr2k"):
                kwargs = dict(tile_n_size=8, tile_m_size=8)
            r = generate_routine(RoutineSpec(name, f"gen_{name}", **kwargs))
            assert "__kernel" in r.source
            assert callable(r.make_kernel)
            assert r.latency >= 1
