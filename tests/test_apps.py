"""Integration tests for the Sec. V composed applications."""

import numpy as np
import pytest

from repro.apps import (
    atax_broken,
    atax_host,
    atax_mdag,
    atax_reference,
    atax_streaming,
    axpydot_host,
    axpydot_mdag,
    axpydot_reference,
    axpydot_streaming,
    bicg_host,
    bicg_mdag,
    bicg_reference,
    bicg_streaming,
    gemver_component1_mdag,
    gemver_full_streaming_mdag,
    gemver_host,
    gemver_reference,
    gemver_streaming,
)
from repro.fpga import DeadlockError
from repro.host import Fblas, FblasContext
from repro.models import iomodel

RNG = np.random.default_rng(41)


def f32(a):
    return np.asarray(a, dtype=np.float32)


def _vec(n):
    return f32(RNG.normal(size=n))


def _mat(n, m):
    return f32(RNG.normal(size=(n, m)))


class TestAxpydot:
    N = 128
    ALPHA = 0.7

    def _host(self, w, v, u):
        fb = Fblas(width=8)
        bufs = [fb.copy_to_device(a) for a in (w, v, u)]
        return axpydot_host(fb, *bufs, self.ALPHA)

    def _stream(self, w, v, u):
        ctx = FblasContext()
        bufs = [ctx.copy_to_device(a) for a in (w, v, u)]
        return axpydot_streaming(ctx, *bufs, self.ALPHA, width=8)

    def test_both_match_reference(self):
        w, v, u = _vec(self.N), _vec(self.N), _vec(self.N)
        ref = axpydot_reference(w, v, u, self.ALPHA)
        host = self._host(w, v, u)
        stream = self._stream(w, v, u)
        assert host.value == pytest.approx(float(ref), rel=1e-4)
        assert stream.value == pytest.approx(float(ref), rel=1e-4)

    def test_streaming_io_is_3n_plus_1(self):
        w, v, u = _vec(self.N), _vec(self.N), _vec(self.N)
        stream = self._stream(w, v, u)
        assert stream.io_elements == 3 * self.N + 1

    def test_host_io_is_7n(self):
        w, v, u = _vec(self.N), _vec(self.N), _vec(self.N)
        host = self._host(w, v, u)
        assert host.io_elements == 7 * self.N

    def test_streaming_is_faster(self):
        n = 2048
        w, v, u = _vec(n), _vec(n), _vec(n)
        host = self._host(w, v, u)
        stream = self._stream(w, v, u)
        speedup = host.cycles / stream.cycles
        assert speedup > 2.0       # approaches 3-4 as N grows (Fig. 11)

    def test_mdag_is_valid_multitree(self):
        rep = axpydot_mdag(1024).validate()
        assert rep.valid and rep.is_multitree


class TestBicg:
    def test_matches_reference(self):
        n = m = 16
        a, p, r = _mat(n, m), _vec(m), _vec(n)
        qref, sref = bicg_reference(a, p, r)
        ctx = FblasContext()
        bufs = [ctx.copy_to_device(x) for x in (a, p, r)]
        res = bicg_streaming(ctx, *bufs, tile=4, width=4)
        np.testing.assert_allclose(res.value[0], qref, rtol=1e-3, atol=1e-3)
        np.testing.assert_allclose(res.value[1], sref, rtol=1e-3, atol=1e-3)

    def test_streaming_halves_matrix_io(self):
        n = m = 32
        a, p, r = _mat(n, m), _vec(m), _vec(n)
        fb = Fblas(width=4, tile=8)
        hbufs = [fb.copy_to_device(x) for x in (a, p, r)]
        host = bicg_host(fb, *hbufs)
        ctx = FblasContext()
        sbufs = [ctx.copy_to_device(x) for x in (a, p, r)]
        stream = bicg_streaming(ctx, *sbufs, tile=8, width=4)
        # host reads A twice; streaming reads it once
        assert host.io_elements > stream.io_elements
        assert host.io_elements - stream.io_elements >= n * m

    def test_parallel_execution_reduces_cycles(self):
        n = m = 32
        a, p, r = _mat(n, m), _vec(m), _vec(n)
        fb = Fblas(width=4, tile=8)
        hbufs = [fb.copy_to_device(x) for x in (a, p, r)]
        host = bicg_host(fb, *hbufs)
        ctx = FblasContext()
        sbufs = [ctx.copy_to_device(x) for x in (a, p, r)]
        stream = bicg_streaming(ctx, *sbufs, tile=8, width=4)
        assert stream.cycles < host.cycles

    def test_mdag_is_valid(self):
        rep = bicg_mdag(32, 32, 8, 8).validate()
        assert rep.valid and rep.is_multitree


class TestAtax:
    M = N = 16

    def _arrays(self):
        return _mat(self.M, self.N), _vec(self.N)

    def test_streamed_with_sized_channel_matches_reference(self):
        a, x = self._arrays()
        ctx = FblasContext()
        res = atax_streaming(ctx, ctx.copy_to_device(a),
                             ctx.copy_to_device(x), tile=4, width=4)
        np.testing.assert_allclose(res.value, atax_reference(a, x),
                                   rtol=1e-3, atol=1e-3)

    def test_undersized_channel_deadlocks(self):
        """The Sec. V-B invalid composition stalls forever."""
        a, x = self._arrays()
        ctx = FblasContext()
        with pytest.raises(DeadlockError):
            atax_streaming(ctx, ctx.copy_to_device(a),
                           ctx.copy_to_device(x), tile=4, width=4,
                           channel_depth=16)

    def test_minimal_depth_bound_is_tight(self):
        """Just below the N*T_N bound deadlocks; at the bound it runs."""
        a, x = self._arrays()
        bound = iomodel.atax_min_channel_depth(self.N, 4)
        ctx = FblasContext()
        with pytest.raises(DeadlockError):
            atax_streaming(ctx, ctx.copy_to_device(a),
                           ctx.copy_to_device(x), tile=4, width=4,
                           channel_depth=bound // 2)
        ctx2 = FblasContext()
        res = atax_streaming(ctx2, ctx2.copy_to_device(a),
                             ctx2.copy_to_device(x), tile=4, width=4,
                             channel_depth=bound + 32)
        np.testing.assert_allclose(res.value, atax_reference(a, x),
                                   rtol=1e-3, atol=1e-3)

    def test_broken_composition_matches_reference(self):
        a, x = self._arrays()
        ctx = FblasContext()
        res = atax_broken(ctx, ctx.copy_to_device(a),
                          ctx.copy_to_device(x), tile=4, width=4)
        np.testing.assert_allclose(res.value, atax_reference(a, x),
                                   rtol=1e-3, atol=1e-3)

    def test_broken_reads_a_twice(self):
        a, x = self._arrays()
        ctx1 = FblasContext()
        stream = atax_streaming(ctx1, ctx1.copy_to_device(a),
                                ctx1.copy_to_device(x), tile=4, width=4)
        ctx2 = FblasContext()
        broken = atax_broken(ctx2, ctx2.copy_to_device(a),
                             ctx2.copy_to_device(x), tile=4, width=4)
        assert broken.io_elements - stream.io_elements >= self.M * self.N - 8

    def test_broken_still_beats_host_layer(self):
        """Pipelining the two GEMVs still helps (Sec. V-B)."""
        a, x = _mat(32, 32), _vec(32)
        fb = Fblas(width=4, tile=8)
        host = atax_host(fb, fb.copy_to_device(a), fb.copy_to_device(x))
        ctx = FblasContext()
        broken = atax_broken(ctx, ctx.copy_to_device(a),
                             ctx.copy_to_device(x), tile=8, width=4)
        assert broken.cycles < host.cycles

    def test_mdag_statically_invalid(self):
        rep = atax_mdag(16, 16, 4, 4).validate()
        assert not rep.valid
        assert ("read_A", "gemvT") in rep.reconvergent_pairs or \
            ("read_A", "gemv2") in [tuple(p) for p in rep.reconvergent_pairs]


class TestGemver:
    N = 16
    ALPHA, BETA = 1.2, 0.8

    def _arrays(self):
        return (_mat(self.N, self.N),) + tuple(_vec(self.N)
                                               for _ in range(6))

    def test_host_and_streaming_match_reference(self):
        arrays = self._arrays()
        bref, xref, wref = gemver_reference(*arrays, self.ALPHA, self.BETA)
        fb = Fblas(width=4, tile=4)
        hbufs = [fb.copy_to_device(x) for x in arrays]
        host = gemver_host(fb, *hbufs, self.ALPHA, self.BETA)
        np.testing.assert_allclose(host.value[0], bref, rtol=1e-3, atol=1e-3)
        np.testing.assert_allclose(host.value[2], wref, rtol=1e-2, atol=1e-2)
        ctx = FblasContext()
        sbufs = [ctx.copy_to_device(x) for x in arrays]
        stream = gemver_streaming(ctx, *sbufs, self.ALPHA, self.BETA,
                                  tile=4, width=4)
        np.testing.assert_allclose(stream.value[0], bref, rtol=1e-3,
                                   atol=1e-3)
        np.testing.assert_allclose(stream.value[1], xref, rtol=1e-2,
                                   atol=1e-2)
        np.testing.assert_allclose(stream.value[2], wref, rtol=1e-2,
                                   atol=1e-2)

    def test_streaming_reduces_io_toward_3n2(self):
        arrays = self._arrays()
        fb = Fblas(width=4, tile=4)
        host = gemver_host(fb, *[fb.copy_to_device(x) for x in arrays],
                           self.ALPHA, self.BETA)
        ctx = FblasContext()
        stream = gemver_streaming(
            ctx, *[ctx.copy_to_device(x) for x in arrays],
            self.ALPHA, self.BETA, tile=4, width=4)
        n2 = self.N * self.N
        assert host.io_elements > 7 * n2          # ~8N^2
        assert stream.io_elements < 5 * n2        # ~3N^2 + vector terms

    def test_streaming_cycle_advantage(self):
        arrays = self._arrays()
        fb = Fblas(width=4, tile=4)
        host = gemver_host(fb, *[fb.copy_to_device(x) for x in arrays],
                           self.ALPHA, self.BETA)
        ctx = FblasContext()
        stream = gemver_streaming(
            ctx, *[ctx.copy_to_device(x) for x in arrays],
            self.ALPHA, self.BETA, tile=4, width=4)
        assert stream.cycles < host.cycles

    def test_full_streaming_mdag_invalid(self):
        rep = gemver_full_streaming_mdag(64, 8).validate()
        assert not rep.valid
        assert rep.reconvergent_pairs       # B reconverges at the last GEMV

    def test_component1_mdag_valid(self):
        rep = gemver_component1_mdag(64, 8).validate()
        assert rep.valid and rep.is_multitree
