"""repro.faults: plans, injection hooks, watchdog, error hierarchy."""

import numpy as np
import pytest

from repro import telemetry
from repro.faults import (ChannelFault, FaultPlan, KernelFault, MemoryFault,
                          flip_bits, inject)
from repro.fpga import (Clock, DeadlockError, EccError, Engine, FaultError,
                        HangError, KernelCrashError, LivelockError, Pop,
                        Push, ReproError, SimulationError,
                        TransientFaultError)
from repro.fpga.channel import ChannelError
from repro.fpga.memory import DramModel, read_kernel
from repro.fpga.util import sink_kernel

_MODES = ("dense", "event", "bulk")


def _src(ch, vals, width=1, lat=1):
    i = 0
    while i < len(vals):
        yield Push(ch, tuple(vals[i:i + width]), lat)
        i += width
        yield Clock()


def _collect(ch, n, out):
    for _ in range(n):
        v = yield Pop(ch)
        out.append(v)
        yield Clock()


def _spinner(ch=None):
    while True:
        yield Clock()


# ---------------------------------------------------------------------------
# FaultPlan: pure, seeded, serializable
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_generate_is_a_pure_function_of_seed(self):
        kw = dict(channels=("a", "b"), kernels=("k1", "k2"),
                  buffers=("m",), banks=4, n_faults=6)
        p1 = FaultPlan.generate(42, **kw)
        p2 = FaultPlan.generate(42, **kw)
        assert p1 == p2
        assert p1.to_dict() == p2.to_dict()
        assert FaultPlan.generate(43, **kw) != p1

    def test_generate_does_not_touch_global_rng(self):
        import random
        random.seed(7)
        before = random.getstate()
        FaultPlan.generate(1, channels=("a",), n_faults=5)
        assert random.getstate() == before

    def test_roundtrip(self):
        p = FaultPlan.generate(9, channels=("c",), kernels=("k",),
                               buffers=("b",), banks=2, n_faults=8)
        assert FaultPlan.from_dict(p.to_dict()) == p

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.empty()
        assert len(FaultPlan.empty()) == 0

    def test_describe_names_targets(self):
        p = FaultPlan(seed=1, channel_faults=(
            ChannelFault("data", 5, "corrupt", bit=3),))
        assert "data" in p.describe()
        assert "corrupt" in p.describe()

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            ChannelFault("c", 0, "explode")
        with pytest.raises(ValueError):
            ChannelFault("c", -1, "drop")
        with pytest.raises(ValueError):
            KernelFault("k", 0, "freeze", cycles=0)
        with pytest.raises(ValueError):
            MemoryFault(kind="throttle", cycle=0, cycles=10, factor=1.5)

    def test_flip_bits_is_involutive(self):
        for v, bit in ((np.float32(1.5), 31), (3.25, 63), (7, 2),
                       (np.float64(-2.0), 12), (True, 0)):
            flipped = flip_bits(v, bit)
            assert flipped != v
            assert flip_bits(flipped, bit) == v
            assert type(flip_bits(v, bit)) is type(v)

    def test_flip_sign_bit(self):
        assert flip_bits(np.float32(2.0), 31) == np.float32(-2.0)
        assert flip_bits(4.0, 63) == -4.0


# ---------------------------------------------------------------------------
# Channel faults
# ---------------------------------------------------------------------------

class TestChannelFaults:
    def _run(self, plan, n=10, expect=None, mode="event"):
        eng = Engine(mode=mode, fault_plan=plan)
        ch = eng.channel("c", 4)
        out = []
        vals = [float(i) for i in range(n)]
        eng.add_kernel("src", _src(ch, vals))
        eng.add_kernel("sink", _collect(ch, expect if expect is not None
                                        else n, out))
        eng.run()
        return vals, out

    def test_corrupt_flips_one_element(self):
        plan = FaultPlan(seed=0, channel_faults=(
            ChannelFault("c", 3, "corrupt", bit=63),))
        vals, out = self._run(plan)
        assert out[3] == -vals[3]
        assert out[:3] == vals[:3] and out[4:] == vals[4:]

    def test_drop_removes_one_element(self):
        plan = FaultPlan(seed=0, channel_faults=(
            ChannelFault("c", 4, "drop"),))
        vals, out = self._run(plan, expect=9)
        assert out == vals[:4] + vals[5:]

    def test_dup_repeats_one_element(self):
        plan = FaultPlan(seed=0, channel_faults=(
            ChannelFault("c", 4, "dup"),))
        vals, out = self._run(plan, expect=11)
        assert out == vals[:5] + vals[4:]

    def test_drop_then_dup_same_index_is_voided(self):
        """Two faults can land on the same push index; once the drop has
        removed the element, the dup (or corrupt) targeting it has
        nothing left to disturb and must be voided, not crash."""
        plan = FaultPlan(seed=0, channel_faults=(
            ChannelFault("c", 4, "drop"),
            ChannelFault("c", 4, "dup"),))
        vals = [float(i) for i in range(10)]
        with inject(plan) as ctx:
            eng = Engine()
            ch = eng.channel("c", 4)
            out = []
            eng.add_kernel("src", _src(ch, vals))
            eng.add_kernel("sink", _collect(ch, 9, out))
            eng.run()
            assert ctx.faults_injected == 2
            assert any(e.get("voided") for e in ctx.fired)
        assert out == vals[:4] + vals[5:]

    def test_faults_fire_once_per_context(self):
        plan = FaultPlan(seed=0, channel_faults=(
            ChannelFault("c", 3, "corrupt", bit=63),))
        with inject(plan) as ctx:
            eng = Engine()
            ch = eng.channel("c", 4)
            out1 = []
            eng.add_kernel("src", _src(ch, [float(i) for i in range(6)]))
            eng.add_kernel("sink", _collect(ch, 6, out1))
            eng.run()
            assert ctx.faults_injected == 1
            assert ctx.fired[0]["kind"] == "corrupt"
            # Same context, second run: the one-shot ledger holds.
            eng2 = Engine()
            ch2 = eng2.channel("c", 4)
            out2 = []
            eng2.add_kernel("src", _src(ch2, [float(i) for i in range(6)]))
            eng2.add_kernel("sink", _collect(ch2, 6, out2))
            eng2.run()
        assert out1[3] == -3.0
        assert out2 == [float(i) for i in range(6)]
        assert ctx.faults_injected == 1

    def test_faults_on_other_channels_are_ignored(self):
        plan = FaultPlan(seed=0, channel_faults=(
            ChannelFault("elsewhere", 0, "corrupt", bit=63),))
        vals, out = self._run(plan)
        assert out == vals

    def test_dup_into_full_channel_does_not_overflow(self):
        """A dup that would exceed the FIFO depth must not trip the
        channel's own capacity assertion."""
        plan = FaultPlan(seed=0, channel_faults=(
            ChannelFault("c", 0, "dup"),))
        eng = Engine(fault_plan=plan)
        ch = eng.channel("c", 1)         # width-1 pushes, depth 1
        out = []
        eng.add_kernel("src", _src(ch, [1.0, 2.0]))
        eng.add_kernel("sink", _collect(ch, 3, out))
        eng.run()
        assert out == [1.0, 1.0, 2.0]


# ---------------------------------------------------------------------------
# Kernel faults
# ---------------------------------------------------------------------------

class TestKernelFaults:
    def _cycles(self, plan, mode="event"):
        eng = Engine(mode=mode, fault_plan=plan)
        ch = eng.channel("c", 4)
        out = []
        eng.add_kernel("src", _src(ch, [float(i) for i in range(8)]))
        eng.add_kernel("sink", _collect(ch, 8, out))
        report = eng.run()
        return report.cycles, out

    def test_freeze_stretches_the_run(self):
        base, out0 = self._cycles(None)
        frozen, out1 = self._cycles(FaultPlan(seed=0, kernel_faults=(
            KernelFault("src", 2, "freeze", cycles=13),)))
        assert out1 == out0
        assert frozen == base + 13

    def test_crash_raises_transient_fault(self):
        plan = FaultPlan(seed=0, kernel_faults=(
            KernelFault("sink", 3, "crash"),))
        with pytest.raises(KernelCrashError) as exc:
            self._cycles(plan)
        assert exc.value.kernel == "sink"
        assert isinstance(exc.value, TransientFaultError)

    def test_fault_on_unknown_kernel_is_ignored(self):
        base, _ = self._cycles(None)
        cycles, _ = self._cycles(FaultPlan(seed=0, kernel_faults=(
            KernelFault("ghost", 0, "crash"),)))
        assert cycles == base


# ---------------------------------------------------------------------------
# Memory faults
# ---------------------------------------------------------------------------

def _mem_engine(plan, mode="event", n=16, width=4):
    mem = DramModel(num_banks=2, bytes_per_cycle=64)
    data = np.arange(1, n + 1, dtype=np.float32)
    buf = mem.bind("vec", data)
    eng = Engine(memory=mem, mode=mode, fault_plan=plan)
    ch = eng.channel("c", 4 * width)
    out = []
    eng.add_kernel("read", read_kernel(mem, buf, ch, width))
    eng.add_kernel("sink", sink_kernel(ch, n, width, out))
    return eng, mem, out


class TestMemoryFaults:
    def test_bitflip_corrupts_one_word(self):
        plan = FaultPlan(seed=0, memory_faults=(
            MemoryFault(kind="bitflip", cycle=0, buffer="vec", index=5,
                        bit=31),))
        eng, mem, out = _mem_engine(plan)
        eng.run()
        expect = list(np.arange(1, 17, dtype=np.float32))
        expect[5] = -expect[5]
        assert out == expect

    def test_ecc_counts_against_the_bank(self):
        plan = FaultPlan(seed=0, memory_faults=(
            MemoryFault(kind="ecc", cycle=0, buffer="vec"),))
        eng, mem, out = _mem_engine(plan)
        eng.run()
        assert sum(b.ecc_events for b in mem.bank_stats) == 1
        assert out == list(np.arange(1, 17, dtype=np.float32))

    def test_ecc_fatal_raises(self):
        plan = FaultPlan(seed=0, memory_faults=(
            MemoryFault(kind="ecc_fatal", cycle=0, buffer="vec"),))
        eng, mem, out = _mem_engine(plan)
        with pytest.raises(EccError):
            eng.run()

    def test_throttle_slows_the_run(self):
        eng0, _, _ = _mem_engine(None)
        base = eng0.run().cycles
        plan = FaultPlan(seed=0, memory_faults=(
            MemoryFault(kind="throttle", cycle=0, bank=0, cycles=500,
                        factor=0.0),))
        eng1, _, _ = _mem_engine(plan)
        throttled = eng1.run().cycles
        assert throttled > base

    def test_fault_on_unknown_buffer_is_ignored(self):
        plan = FaultPlan(seed=0, memory_faults=(
            MemoryFault(kind="bitflip", cycle=0, buffer="ghost", index=0,
                        bit=31),))
        eng, mem, out = _mem_engine(plan)
        eng.run()
        assert out == list(np.arange(1, 17, dtype=np.float32))


# ---------------------------------------------------------------------------
# Watchdog: livelock and timeout, identically across engine tiers
# ---------------------------------------------------------------------------

class TestWatchdog:
    def test_livelock_tripped_identically(self):
        cycles = {}
        for mode in _MODES:
            eng = Engine(mode=mode)
            eng.add_kernel("spin", _spinner())
            with pytest.raises(LivelockError) as exc:
                eng.run(livelock_window=64)
            assert exc.value.trigger == "livelock"
            cycles[mode] = exc.value.cycle
        assert cycles["dense"] == cycles["event"] == cycles["bulk"]

    def test_timeout_is_a_simulation_error(self):
        eng = Engine()
        eng.add_kernel("spin", _spinner())
        with pytest.raises(SimulationError) as exc:
            eng.run(max_cycles=100, livelock_window=0)
        assert isinstance(exc.value, LivelockError)
        assert exc.value.trigger == "timeout"
        assert "exceeded" in str(exc.value)
        assert eng.now <= 100

    def test_default_budgets_are_finite(self):
        eng = Engine()
        eng.channel("c", 8)
        eng.add_kernel("spin", _spinner())
        assert 0 < eng.livelock_budget() < eng.cycle_budget() < 10**9
        # A spinner with default budgets terminates via the livelock
        # watchdog long before the cycle budget.
        with pytest.raises(LivelockError) as exc:
            eng.run()
        assert exc.value.trigger == "livelock"

    def test_livelock_window_zero_disables_watchdog(self):
        eng = Engine()
        eng.add_kernel("spin", _spinner())
        with pytest.raises(LivelockError) as exc:
            eng.run(max_cycles=500, livelock_window=0)
        assert exc.value.trigger == "timeout"
        assert eng.now <= 500

    def test_sleeping_kernels_do_not_trip_the_watchdog(self):
        def sleeper():
            for _ in range(5):
                yield Clock(100)

        cycles = {}
        for mode in _MODES:
            eng = Engine(mode=mode)
            eng.add_kernel("sleepy", sleeper())
            report = eng.run(livelock_window=20)
            cycles[mode] = report.cycles
        assert cycles["dense"] == cycles["event"] == cycles["bulk"] > 400

    def test_hang_report_attached(self):
        eng = Engine()
        eng.add_kernel("spin", _spinner())
        with pytest.raises(LivelockError) as exc:
            eng.run(livelock_window=32)
        report = exc.value.report
        assert report is not None
        assert report.kind == "livelock"
        assert report.to_dict()["schema"] == "repro.hangreport/1"
        assert "spin" in report.render_text()


# ---------------------------------------------------------------------------
# Error hierarchy (consolidated in repro.fpga.errors)
# ---------------------------------------------------------------------------

class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        from repro.analysis.diagnostics import AnalysisError
        from repro.streaming.executor import ExecutionError
        from repro.streaming.mdag import MDAGError
        for exc in (SimulationError, ChannelError, FaultError,
                    TransientFaultError, KernelCrashError, EccError,
                    HangError, DeadlockError, LivelockError,
                    AnalysisError, MDAGError, ExecutionError):
            assert issubclass(exc, ReproError)
        assert issubclass(ReproError, RuntimeError)

    def test_hang_family(self):
        assert issubclass(DeadlockError, HangError)
        assert issubclass(LivelockError, HangError)
        assert issubclass(LivelockError, SimulationError)
        assert not issubclass(DeadlockError, SimulationError)

    def test_mdag_error_keeps_value_error_base(self):
        from repro.streaming.mdag import MDAGError
        assert issubclass(MDAGError, ValueError)

    def test_deadlock_message_shape(self):
        err = DeadlockError(7, {"k": "pop(1) from 'c' (occupancy=0)"})
        assert str(err).startswith("deadlock at cycle 7")
        assert err.report is None


# ---------------------------------------------------------------------------
# Telemetry integration: counters and instant events
# ---------------------------------------------------------------------------

class TestFaultTelemetry:
    def test_counters_and_instants_exported(self):
        plan = FaultPlan(seed=0, channel_faults=(
            ChannelFault("c", 2, "corrupt", bit=63),))
        with telemetry.session() as tel, inject(plan):
            eng = Engine()
            ch = eng.channel("c", 4)
            out = []
            eng.add_kernel("src", _src(ch, [float(i) for i in range(5)]))
            eng.add_kernel("sink", _collect(ch, 5, out))
            eng.run()
        counter = tel.registry.counter(
            "faults_injected", "fault-plan records that fired, by kind")
        assert counter.total() == 1
        names = [i["name"] for i in tel.instants]
        assert "fault:corrupt" in names

    def test_fault_instants_reach_the_chrome_trace(self):
        from repro.telemetry.chrome_trace import to_chrome_trace
        plan = FaultPlan(seed=0, kernel_faults=(
            KernelFault("src", 1, "freeze", cycles=5),))
        with telemetry.session() as tel, inject(plan):
            eng = Engine()
            ch = eng.channel("c", 4)
            eng.add_kernel("src", _src(ch, [1.0, 2.0, 3.0]))
            eng.add_kernel("sink", _collect(ch, 3, []))
            eng.run()
        events = to_chrome_trace(tel)["traceEvents"]
        instants = [e for e in events if e.get("ph") == "i"]
        assert any(e["name"] == "fault:freeze" for e in instants)
