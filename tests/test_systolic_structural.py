"""Structural (kernel-per-PE) systolic GEMM vs the register-level model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.systolic import PE_FANOUT, SystolicConfig, SystolicGemm
from repro.blas.systolic_kernels import run_structural_gemm

RNG = np.random.default_rng(19)


def _mats(tr, tc, k, dtype=np.float32):
    return (RNG.normal(size=(tr, k)).astype(dtype),
            RNG.normal(size=(k, tc)).astype(dtype))


class TestCorrectness:
    @pytest.mark.parametrize("pr,pc,tr,tc,k", [
        (1, 1, 1, 1, 1), (1, 1, 2, 2, 3), (2, 2, 4, 4, 5),
        (2, 3, 4, 6, 4), (3, 2, 6, 4, 4), (4, 4, 8, 8, 6),
        (2, 2, 8, 8, 3),
    ])
    def test_matches_numpy(self, pr, pc, tr, tc, k):
        a, b = _mats(tr, tc, k)
        rep = run_structural_gemm(a, b, SystolicConfig(pr, pc, tr, tc))
        np.testing.assert_allclose(rep.tile, a @ b, rtol=1e-4, atol=1e-4)

    def test_double_precision(self):
        a, b = _mats(4, 4, 5, np.float64)
        rep = run_structural_gemm(a, b, SystolicConfig(2, 2, 4, 4),
                                  dtype=np.float64)
        np.testing.assert_allclose(rep.tile, a @ b, rtol=1e-12)

    def test_shape_validation(self):
        a, b = _mats(4, 4, 3)
        with pytest.raises(ValueError):
            run_structural_gemm(a, b, SystolicConfig(2, 2, 8, 8))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 2),
           st.integers(1, 2), st.integers(1, 5))
    def test_random_geometry(self, pr, pc, rmul, cmul, k):
        tr, tc = pr * rmul, pc * cmul
        a, b = _mats(tr, tc, k)
        rep = run_structural_gemm(a, b, SystolicConfig(pr, pc, tr, tc))
        np.testing.assert_allclose(rep.tile, a @ b, rtol=1e-3, atol=1e-3)


class TestStructure:
    def test_constant_fanout_by_construction(self):
        """Every PE uses at most 6 links, at any array size (Sec. III-C)."""
        for pr, pc in ((2, 2), (4, 4), (2, 4)):
            a, b = _mats(pr * 2, pc * 2, 3)
            rep = run_structural_gemm(
                a, b, SystolicConfig(pr, pc, pr * 2, pc * 2))
            assert rep.max_links_per_pe <= PE_FANOUT

    def test_kernel_count_scales_with_grid(self):
        """Kernels: PR*PC PEs + PR + PC feeders + read/read/store."""
        a, b = _mats(4, 4, 3)
        rep = run_structural_gemm(a, b, SystolicConfig(2, 2, 4, 4))
        assert rep.num_kernels == 2 * 2 + 2 + 2 + 3

    def test_cycles_close_to_register_level(self):
        """The self-timed composition costs at most ~2x the explicit-skew
        register-level simulation (extra drain serialization)."""
        cfg = SystolicConfig(2, 2, 4, 4)
        a, b = _mats(4, 4, 8)
        structural = run_structural_gemm(a, b, cfg)
        _, stats = SystolicGemm(cfg).multiply(a, b)
        assert stats.cycles <= structural.sim.cycles <= 2 * stats.cycles

    def test_no_kernel_starves_forever(self):
        """The blocking-FIFO wavefront self-times: per-PE utilization in
        steady state stays healthy for a compute-heavy tile."""
        cfg = SystolicConfig(2, 2, 8, 8)
        a, b = _mats(8, 8, 16)
        rep = run_structural_gemm(a, b, cfg)
        util = rep.sim.kernel_utilization("pe_0_0")
        assert util > 0.5


class TestMultiTile:
    def test_tiled_structural_matches_numpy(self):
        from repro.blas.systolic_kernels import run_structural_gemm_tiled
        cfg = SystolicConfig(2, 2, 4, 4)
        a, b = _mats(8, 12, 5)
        got, cycles = run_structural_gemm_tiled(a, b, cfg)
        np.testing.assert_allclose(got, a @ b, rtol=1e-4, atol=1e-4)
        assert cycles > 0

    def test_cycles_scale_with_tile_count(self):
        from repro.blas.systolic_kernels import run_structural_gemm_tiled
        cfg = SystolicConfig(2, 2, 4, 4)
        a1, b1 = _mats(4, 4, 4)
        a4, b4 = _mats(8, 8, 4)
        _, c1 = run_structural_gemm_tiled(a1, b1, cfg)
        _, c4 = run_structural_gemm_tiled(a4, b4, cfg)
        assert 3.5 < c4 / c1 < 4.5

    def test_indivisible_rejected(self):
        from repro.blas.systolic_kernels import run_structural_gemm_tiled
        cfg = SystolicConfig(2, 2, 4, 4)
        a, b = _mats(6, 8, 4)
        with pytest.raises(ValueError):
            run_structural_gemm_tiled(a, b, cfg)
