"""Robustness of the streaming kernels to extreme floating-point inputs."""

import numpy as np
import pytest

from repro.blas import level1, reference
from repro.codegen import RoutineSpec, generate_routine
from repro.fpga import Engine, sink_kernel, source_kernel
from repro.blas.level2 import y_replay_router
from repro.streaming import col_tiles

from helpers import run_map_kernel, run_reduction_kernel, stream_of


class TestExtremeValues:
    def test_scal_propagates_inf(self):
        x = [1.0, float("inf"), -2.0]
        outs, _ = run_map_kernel(
            lambda ci, co: level1.scal_kernel(3, 2.0, ci, co, 1,
                                              np.float64),
            {"x": (x, 1)}, {"o": 3}, 1)
        assert outs["o"][1] == float("inf")

    def test_dot_with_zeros_vector(self):
        n = 32
        out, _ = run_reduction_kernel(
            lambda cx, cy, cr: level1.dot_kernel(n, cx, cy, cr, 4),
            {"x": ([0.0] * n, 4), "y": ([1e30] * n, 4)})
        assert out[0] == 0.0

    def test_asum_of_negatives(self):
        x = [-1.0, -2.0, -3.0, -4.0]
        out, _ = run_reduction_kernel(
            lambda cx, cr: level1.asum_kernel(4, cx, cr, 2, np.float64),
            {"x": (x, 2)})
        assert out[0] == 10.0

    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_single_precision_overflow_behaves_like_hardware(self):
        """Values beyond float32 range saturate to inf in the stream, the
        way a single-precision datapath would."""
        x = np.array([3e38, 3e38], dtype=np.float32)
        out, _ = run_reduction_kernel(
            lambda cx, cr: level1.nrm2_kernel(2, cx, cr, 2, np.float32),
            {"x": (list(x), 2)})
        assert np.isinf(out[0])

    def test_iamax_all_equal(self):
        out, _ = run_reduction_kernel(
            lambda cx, cr: level1.iamax_kernel(5, cx, cr, 2),
            {"x": ([2.0] * 5, 2)})
        assert out[0] == 0

    def test_single_element_vectors(self):
        out, _ = run_reduction_kernel(
            lambda cx, cy, cr: level1.dot_kernel(1, cx, cy, cr, 8),
            {"x": ([3.0], 1), "y": ([4.0], 1)})
        assert out[0] == 12.0


class TestGeneratedColTilesGemv:
    def test_binding_dispatches_col_tiles_variant(self):
        """A spec with matrix_order=tiles_by_cols produces the Fig. 2
        (right) implementation; executed with its y-replay router."""
        rng = np.random.default_rng(3)
        n, m, t, w = 8, 8, 4, 2
        gen = generate_routine(RoutineSpec(
            "gemv", "colgemv", width=w, tile_n_size=t, tile_m_size=t,
            matrix_order="tiles_by_cols"))
        a = rng.normal(size=(n, m)).astype(np.float32)
        x = rng.normal(size=m).astype(np.float32)
        y = rng.normal(size=n).astype(np.float32)
        sched = col_tiles(n, m, t, t)
        passes = m // t
        eng = Engine()
        ca = eng.channel("A", 256)
        cx = eng.channel("x", 256)
        cy = eng.channel("y", max(64, 2 * n))
        co = eng.channel("o", 256)
        cf = eng.channel("final", 256)
        out = []
        eng.add_kernel("sa", source_kernel(ca, stream_of(a, sched), w))
        eng.add_kernel("sx", source_kernel(cx, list(x), w))
        eng.add_kernel("sy", source_kernel(cy, list(y), w))
        eng.add_kernel("gemv", gen.make_kernel(n, m, 1.5, 0.5, ca, cx,
                                               cy, co),
                       latency=gen.latency)
        eng.add_kernel("router", y_replay_router(n, passes, co, cy, cf, w))
        eng.add_kernel("sink", sink_kernel(cf, n, w, out))
        eng.run()
        np.testing.assert_allclose(
            out, reference.gemv(1.5, a, x, 0.5, y), rtol=1e-4, atol=1e-4)
