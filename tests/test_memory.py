"""Unit tests for the DRAM model: bandwidth, banking, interface kernels."""

import numpy as np
import pytest

from repro.fpga import DramModel, Engine, sink_kernel, source_kernel
from repro.fpga.memory import read_kernel, write_kernel


class TestAllocation:
    def test_round_robin_bank_placement_without_interleaving(self):
        mem = DramModel(num_banks=2, interleaving=False)
        b1 = mem.allocate("a", 8)
        b2 = mem.allocate("b", 8)
        b3 = mem.allocate("c", 8)
        assert b1.bank == 0 and b2.bank == 1 and b3.bank == 0

    def test_interleaved_buffers_have_no_bank(self):
        mem = DramModel(num_banks=2, interleaving=True)
        assert mem.allocate("a", 8).bank is None

    def test_explicit_bank(self):
        mem = DramModel(num_banks=4)
        assert mem.allocate("a", 8, bank=3).bank == 3

    def test_bad_bank_rejected(self):
        mem = DramModel(num_banks=2)
        with pytest.raises(ValueError):
            mem.allocate("a", 8, bank=5)

    def test_duplicate_name_rejected(self):
        mem = DramModel()
        mem.allocate("a", 8)
        with pytest.raises(ValueError):
            mem.allocate("a", 8)

    def test_bind_copies_host_data(self):
        mem = DramModel()
        host = np.arange(4, dtype=np.float32)
        buf = mem.bind("a", host)
        host[0] = 99
        assert buf.data[0] == 0


class TestBandwidth:
    def test_grant_capped_per_cycle(self):
        mem = DramModel(num_banks=1, bytes_per_cycle=16)
        buf = mem.allocate("a", 64)
        assert mem.request_read(buf, 64) == 16
        assert mem.request_read(buf, 64) == 0       # budget exhausted
        mem.begin_cycle(1)
        assert mem.request_read(buf, 8) == 8

    def test_same_bank_buffers_contend(self):
        mem = DramModel(num_banks=2, bytes_per_cycle=16)
        a = mem.allocate("a", 64, bank=0)
        b = mem.allocate("b", 64, bank=0)
        got_a = mem.request_read(a, 16)
        got_b = mem.request_write(b, 16)
        assert got_a == 16 and got_b == 0           # same-bank contention

    def test_different_banks_do_not_contend(self):
        mem = DramModel(num_banks=2, bytes_per_cycle=16)
        a = mem.allocate("a", 64, bank=0)
        b = mem.allocate("b", 64, bank=1)
        assert mem.request_read(a, 16) == 16
        assert mem.request_read(b, 16) == 16

    def test_interleaved_buffer_uses_pooled_bandwidth(self):
        mem = DramModel(num_banks=4, bytes_per_cycle=16, interleaving=True)
        buf = mem.allocate("a", 1024)
        assert mem.request_read(buf, 64) == 64      # 4 banks pooled


class TestInterfaceKernels:
    def _roundtrip(self, n, width, banks=2, bpc=64):
        mem = DramModel(num_banks=banks, bytes_per_cycle=bpc)
        src = mem.bind("src", np.arange(n, dtype=np.float32))
        dst = mem.allocate("dst", n)
        eng = Engine(memory=mem)
        ch = eng.channel("c", 64)
        eng.add_kernel("rd", read_kernel(mem, src, ch, width))
        eng.add_kernel("wr", write_kernel(mem, dst, ch, n, width))
        rep = eng.run()
        return mem, src, dst, rep

    def test_read_write_roundtrip(self):
        mem, src, dst, _ = self._roundtrip(128, 4)
        np.testing.assert_array_equal(dst.data, src.data)

    def test_io_operation_counters(self):
        mem, src, dst, _ = self._roundtrip(100, 4)
        assert src.elements_read == 100
        assert dst.elements_written == 100
        assert mem.total_elements_moved == 200

    def test_bandwidth_bound_cycle_count(self):
        # 4 bytes/cycle = 1 float/cycle regardless of requested width
        mem, src, dst, rep = self._roundtrip(256, 8, banks=1, bpc=4)
        assert rep.cycles >= 256

    def test_custom_order_read(self):
        mem = DramModel()
        src = mem.bind("src", np.arange(6, dtype=np.float32))
        eng = Engine(memory=mem)
        ch = eng.channel("c", 16)
        order = [5, 3, 1, 0, 2, 4]
        out = []
        eng.add_kernel("rd", read_kernel(mem, src, ch, 2, order=order))
        eng.add_kernel("sink", sink_kernel(ch, 6, 2, out))
        eng.run()
        assert out == [5.0, 3.0, 1.0, 0.0, 2.0, 4.0]

    def test_replayed_read(self):
        mem = DramModel()
        src = mem.bind("src", np.arange(3, dtype=np.float32))
        eng = Engine(memory=mem)
        ch = eng.channel("c", 16)
        out = []
        eng.add_kernel("rd", read_kernel(mem, src, ch, 1, repeat=3))
        eng.add_kernel("sink", sink_kernel(ch, 9, 1, out))
        eng.run()
        assert out == [0.0, 1.0, 2.0] * 3
        assert src.elements_read == 9              # replay costs real I/O

    def test_custom_order_write(self):
        mem = DramModel()
        dst = mem.allocate("dst", 4)
        eng = Engine(memory=mem)
        ch = eng.channel("c", 16)
        eng.add_kernel("src", source_kernel(ch, [10.0, 20.0, 30.0, 40.0], 2))
        eng.add_kernel("wr", write_kernel(mem, dst, ch, 4, 2,
                                          order=[3, 2, 1, 0]))
        eng.run()
        np.testing.assert_array_equal(dst.data, [40.0, 30.0, 20.0, 10.0])


class TestValidation:
    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            DramModel(num_banks=0)
        with pytest.raises(ValueError):
            DramModel(bytes_per_cycle=0)
