"""Sharded multi-lane GEMV/GEMM, HBM placements, and FB105.

The sharding contract is *bitwise*: striping row tiles across lanes
moves bandwidth, never arithmetic — each lane runs the unmodified
single-lane kernel on its share, so the merged stream must equal the
single-lane stream byte for byte, on every engine mode, for every lane
count, with or without a memory model underneath.

The reconvergent corner: with a shared (duplicated) x feed, a merge
schedule that drains lanes out of production order needs the lagging
lane's merge channel to buffer its whole reordering window; undersized,
the design *provably deadlocks* — and all three engine modes must
agree on the deadlock, cycle for cycle (Sec. V parity).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Severity, analyze_engine
from repro.blas import level3, reference
from repro.blas.level2 import (
    build_sharded_gemv_engine,
    gemv_row_tiles,
    shard_gemv_streams,
    shard_row_tiles,
)
from repro.fpga.device import DEVICES, U280, PowerModel
from repro.fpga.engine import Engine
from repro.fpga.errors import DeadlockError
from repro.fpga.memory import DramModel, Placement, read_kernel
from repro.fpga.util import (
    duplicate_kernel,
    merge_kernel,
    sink_kernel,
    source_kernel,
)
from repro.models.dse import explore_gemv_sharded, fastest
from repro.models.iomodel import (
    channel_bytes_per_cycle,
    gemv_io_sharded,
    gemv_io_tiles_by_rows,
    lane_read_rate,
    sharded_read_rate,
)
from repro.models.performance import sharded_gemv_cycles, sharded_gemv_speedup
from repro.plan import compile_plan
from repro.plan.ir import PlanIR

MODES = ("dense", "event", "bulk")


def _problem(n, m, seed=11):
    rng = np.random.default_rng(seed)
    return (np.asarray(rng.normal(size=(n, m)), dtype=np.float32),
            np.asarray(rng.normal(size=m), dtype=np.float32),
            np.asarray(rng.normal(size=n), dtype=np.float32))


# ---------------------------------------------------------------- placement

class TestPlacement:
    def test_constructors_and_describe(self):
        assert Placement.single(3).describe() == "ch3"
        assert Placement.striped((0, 2)).describe() == "striped[0,2]"
        assert Placement.channel_range(0, 4).describe() == "range[0:4]"
        assert Placement.channel_range(0, 4).channels == (0, 1, 2, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Placement("diagonal", (0,))
        with pytest.raises(ValueError):
            Placement.striped(())
        with pytest.raises(ValueError):
            Placement.striped((1, 1))
        with pytest.raises(ValueError):
            Placement.striped((-1, 0))
        with pytest.raises(ValueError):
            Placement("single", (0, 1))

    def test_single_sets_legacy_bank(self):
        mem = DramModel(num_banks=4, bytes_per_cycle=64)
        buf = mem.bind("b", np.zeros(8, dtype=np.float32),
                       placement=Placement.single(2))
        assert buf.bank == 2

    def test_bank_contradicting_placement_rejected(self):
        mem = DramModel(num_banks=4, bytes_per_cycle=64)
        with pytest.raises(ValueError):
            mem.bind("b", np.zeros(8, dtype=np.float32), bank=1,
                     placement=Placement.single(2))

    def test_out_of_range_channel_rejected(self):
        mem = DramModel(num_banks=4, bytes_per_cycle=64)
        with pytest.raises(ValueError):
            mem.bind("b", np.zeros(8, dtype=np.float32),
                     placement=Placement.striped((0, 7)))


class TestStripedGrants:
    def test_striped_read_draws_member_budgets(self):
        mem = DramModel(num_banks=4, bytes_per_cycle=8)
        mem.begin_cycle(0)
        buf = mem.bind("A", np.arange(64, dtype=np.float32),
                       placement=Placement.striped((1, 3)))
        # Two member channels at 8 B/cycle: a 32-byte ask gets 16.
        assert mem.request_read(buf, 32) == 16
        stats = mem.bank_stats
        assert stats[1].bytes_read == 8 and stats[3].bytes_read == 8
        assert stats[0].bytes_read == 0 and stats[2].bytes_read == 0

    def test_single_channel_grant_matches_legacy_bank(self):
        a = np.arange(64, dtype=np.float32)
        for placement in (Placement.single(1), None):
            mem = DramModel(num_banks=4, bytes_per_cycle=8)
            mem.begin_cycle(0)
            buf = mem.bind("A", a, bank=1 if placement is None else None,
                           placement=placement)
            assert mem.request_read(buf, 32) == 8
            assert mem.bank_stats[1].bytes_read == 8

    def test_placement_summary(self):
        mem = DramModel(num_banks=8, bytes_per_cycle=16, device="u280")
        mem.bind("A", np.zeros(8, dtype=np.float32),
                 placement=Placement.striped((0, 1)))
        mem.bind("B", np.zeros(8, dtype=np.float32),
                 placement=Placement.single(5))
        s = mem.placement_summary()
        assert s["device"] == "u280" and s["channels"] == 8
        assert s["buffers"] == 2
        assert s["placements"] == {"A": "striped[0,1]", "B": "ch5"}
        assert s["by_kind"]["striped"] == 1 and s["by_kind"]["single"] == 1


# ------------------------------------------------------- differential GEMV

def _run_sharded(a, x, y, lanes, tn, tm, w, mode, mem=None, placements=None):
    eng, out = build_sharded_gemv_engine(
        a, x, y, 1.25, 0.5, lanes=lanes, tile_n=tn, tile_m=tm, width=w,
        mode=mode, mem=mem, placements=placements)
    rep = eng.run(max_cycles=2_000_000)
    return rep.cycles, np.asarray(out, dtype=np.float32)


class TestShardedGemvDifferential:
    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_bitwise_identical_across_lanes_and_modes(self, data):
        tiles = data.draw(st.integers(2, 4), label="tiles")
        tn = data.draw(st.sampled_from([2, 4, 8]), label="tile_n")
        cols = data.draw(st.integers(1, 3), label="col_tiles")
        tm = data.draw(st.sampled_from([4, 8]), label="tile_m")
        w = data.draw(st.sampled_from([1, 2, 4]), label="width")
        n, m = tiles * tn, cols * tm
        a, x, y = _problem(n, m, seed=data.draw(st.integers(0, 99)))
        lane_counts = [l for l in (1, 2, 4, 8) if l <= tiles]
        outs = {}
        for lanes in lane_counts:
            for mode in MODES:
                _cycles, res = _run_sharded(a, x, y, lanes, tn, tm, w, mode)
                outs[(lanes, mode)] = res
        want = outs[(1, "dense")].tobytes()
        for key, res in outs.items():
            assert res.tobytes() == want, f"{key} diverged bitwise"

    def test_matches_reference_numerically(self):
        a, x, y = _problem(16, 16)
        _c, res = _run_sharded(a, x, y, 2, 4, 4, 2, "event")
        want = reference.gemv(1.25, a, x, 0.5, y)
        np.testing.assert_allclose(res, want, rtol=1e-4, atol=1e-5)

    def test_memory_fed_identical_to_source_fed(self):
        a, x, y = _problem(32, 32)
        _c, plain = _run_sharded(a, x, y, 4, 8, 8, 4, "event")
        for placements in (None,
                           [Placement.single(l) for l in range(4)],
                           [Placement.striped((l, (l + 4) % 8))
                            for l in range(4)]):
            mem = DramModel(num_banks=8, bytes_per_cycle=64)
            _c, res = _run_sharded(a, x, y, 4, 8, 8, 4, "event", mem=mem,
                                   placements=placements)
            assert res.tobytes() == plain.tobytes()

    def test_bandwidth_bound_lane_scaling(self):
        """Starved config: more lanes (each on its own channel) must cut
        cycles substantially — the tentpole effect, gate-checked for
        real in benchmarks/test_hbm_scaling.py."""
        a, x, y = _problem(32, 32)
        cycles = {}
        for lanes in (1, 4):
            mem = DramModel(num_banks=8, bytes_per_cycle=16)
            cycles[lanes], _res = _run_sharded(a, x, y, lanes, 8, 8, 4,
                                               "event", mem=mem)
        assert cycles[1] / cycles[4] >= 2.0, cycles


class TestShardRowTiles:
    def test_round_robin(self):
        assert shard_row_tiles(32, 8, 2) == [[0, 2], [1, 3]]
        assert shard_row_tiles(32, 8, 3) == [[0, 3], [1], [2]]

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_row_tiles(32, 8, 5)       # more lanes than tiles
        with pytest.raises(ValueError):
            shard_row_tiles(30, 8, 2)       # tiles don't divide n


# ------------------------------------------------------- deadlock parity

def _adversarial_merge_engine(mode, part_depth, n=128, m=64, tn=8, tm=8,
                              w=4, lanes=2, depth=32, xdepth=16):
    """Shared-x sharded GEMV whose merge drains lane 1 *entirely* before
    lane 0: lane 0's merge channel must buffer lane 0's whole output
    (its reordering window).  Undersized, lane 0 blocks mid-push, stops
    popping x, the shared duplicator stalls, lane 1 starves — deadlock.
    """
    a, x, y = _problem(n, m, seed=7)
    parts = shard_row_tiles(n, tn, lanes)
    a_s, y_s = shard_gemv_streams(a, y, tn, tm, lanes)
    eng = Engine(mode=mode)
    ports = []
    for lane in range(lanes):
        ports.append((eng.channel(f"a{lane}", depth),
                      eng.channel(f"x{lane}", xdepth),
                      eng.channel(f"y{lane}", depth),
                      eng.channel(f"part{lane}", part_depth)))
        eng.add_kernel(f"srcA{lane}",
                       source_kernel(ports[lane][0], a_s[lane], w), latency=2)
        eng.add_kernel(f"srcy{lane}",
                       source_kernel(ports[lane][2], y_s[lane], w), latency=2)
    cx0 = eng.channel("xroot", depth)
    replay = len(parts[0])
    eng.add_kernel("srcx", source_kernel(cx0, x, w, repeat=replay),
                   latency=2)
    eng.add_kernel("dupx", duplicate_kernel(cx0, [p[1] for p in ports],
                                            m * replay, w))
    ch_out = eng.channel("out", depth)
    for lane, (ca, cx, cy, cp) in enumerate(ports):
        eng.add_kernel(f"gemv{lane}", gemv_row_tiles(
            len(parts[lane]) * tn, m, 1.0, 0.5, ca, cx, cy, cp, tn, tm, w),
            latency=8)
    sched = ([(1, tn)] * len(parts[1]) + [(0, tn)] * len(parts[0]))
    eng.add_kernel("merge", merge_kernel([p[3] for p in ports], ch_out,
                                         sched, w), latency=2)
    out = []
    eng.add_kernel("sink", sink_kernel(ch_out, n, w, out))
    return eng, out


class TestDeadlockParity:
    def test_undersized_merge_channel_deadlocks_identically(self):
        at = {}
        for mode in MODES:
            eng, _out = _adversarial_merge_engine(mode, part_depth=8)
            with pytest.raises(DeadlockError):
                eng.run(max_cycles=200_000)
            at[mode] = eng.now
        assert len(set(at.values())) == 1, f"deadlock cycles diverge: {at}"

    def test_window_sized_merge_channel_completes_identically(self):
        runs = {}
        for mode in MODES:
            # 64 = lane 0's whole output (8 tiles x tile_n): the full
            # reordering window the adversarial schedule creates.
            eng, out = _adversarial_merge_engine(mode, part_depth=64)
            rep = eng.run(max_cycles=200_000)
            runs[mode] = (rep.cycles,
                          np.asarray(out, dtype=np.float32).tobytes())
        assert len(set(runs.values())) == 1, "modes diverged"


# ------------------------------------------------------------ sharded GEMM

def _run_sharded_gemm(a, b, c, lanes, tn, tm, w, mode):
    n, k = a.shape
    m = b.shape[1]
    a_s, b_s, c_s = level3.shard_gemm_streams(a, b, c, tn, tm, lanes)
    eng = Engine(mode=mode)
    depth = max(8 * w, 2 * tn * tm)
    ports = []
    for lane in range(lanes):
        ports.append((eng.channel(f"a{lane}", depth),
                      eng.channel(f"b{lane}", depth),
                      eng.channel(f"c{lane}", depth),
                      eng.channel(f"part{lane}", depth)))
        for ch, stream in zip(ports[lane][:3], (a_s[lane], b_s[lane],
                                                c_s[lane])):
            eng.add_kernel(f"src_{ch.name}", source_kernel(ch, stream, w),
                           latency=2)
    ch_out = eng.channel("out", depth)
    lane_gens, merge = level3.gemm_tiled_sharded(
        n, m, k, 1.5, 0.5, ports, ch_out, tn, tm, w)
    for lane, g in enumerate(lane_gens):
        eng.add_kernel(f"gemm{lane}", g, latency=8)
    eng.add_kernel("merge", merge, latency=2)
    out = []
    eng.add_kernel("sink", sink_kernel(ch_out, n * m, w, out))
    eng.run(max_cycles=2_000_000)
    return np.asarray(out, dtype=np.float32)


class TestShardedGemm:
    def test_bitwise_identical_across_lanes_and_modes(self):
        rng = np.random.default_rng(5)
        n, m, k, tn, tm = 16, 16, 8, 4, 4
        a = np.asarray(rng.normal(size=(n, k)), dtype=np.float32)
        b = np.asarray(rng.normal(size=(k, m)), dtype=np.float32)
        c = np.asarray(rng.normal(size=(n, m)), dtype=np.float32)
        outs = {(lanes, mode): _run_sharded_gemm(a, b, c, lanes, tn, tm,
                                                 2, mode)
                for lanes in (1, 2, 4) for mode in MODES}
        want = outs[(1, "dense")].tobytes()
        for key, res in outs.items():
            assert res.tobytes() == want, f"{key} diverged bitwise"
        got = outs[(1, "dense")]
        ref = reference.gemm(1.5, a, b, 0.5, c)
        # outputs arrive as row-major T_N x T_M tiles in (ti, tj) order
        tiles = got.reshape(n // tn, m // tm, tn, tm)
        restored = tiles.transpose(0, 2, 1, 3).reshape(n, m)
        np.testing.assert_allclose(restored, ref, rtol=1e-4, atol=1e-5)


# ------------------------------------------------------------------ FB105

class TestFB105:
    def _engine(self, placements, num_banks=4, bytes_per_cycle=48,
                width=8):
        mem = DramModel(num_banks=num_banks,
                        bytes_per_cycle=bytes_per_cycle)
        eng = Engine(memory=mem)
        for i, pl in enumerate(placements):
            data = np.ones(1024, dtype=np.float32)
            buf = mem.bind(f"B{i}", data, placement=pl)
            ch = eng.channel(f"c{i}", 64)
            eng.add_kernel(f"read{i}", read_kernel(mem, buf, ch, width),
                           writes=[(ch, width, 1)])
            eng.add_kernel(f"snk{i}", sink_kernel(ch, 1024, width),
                           reads=(ch,))
        return eng

    def test_error_on_out_of_range_plan_channel(self):
        # The memory model rejects out-of-range placements at bind time,
        # so forge the plan: re-point a placement past the channel count.
        eng = self._engine([Placement.single(0)])
        plan = compile_plan(eng)
        d = plan.to_dict()
        d["placements"][0]["channels"] = [0, 9]
        d["placements"][0]["kind"] = "striped"
        forged = PlanIR.from_dict(d)
        from repro.analysis.engine_passes import check_placement_conflicts
        diags = list(check_placement_conflicts(forged, None))
        errs = [x for x in diags if x.code == "FB105"
                and x.severity == Severity.ERROR]
        assert errs and "only 4 channels" in errs[0].message

    def test_warns_when_buffers_share_a_channel(self):
        # Each reader wants 32 B/cycle against a 48 B/cycle channel:
        # together 64 > 48 on channel 0, yet each alone fits -> FB105
        # names the *conflict* (FB104 still reports the aggregate).
        eng = self._engine([Placement.single(0), Placement.single(0)])
        result = analyze_engine(eng)
        warns = result.by_code("FB105")
        assert warns and warns[0].severity == Severity.WARNING
        assert "channel 0" in warns[0].message
        assert "'B0'" in warns[0].message and "'B1'" in warns[0].message
        assert result.by_code("FB104")      # aggregate lint agrees
        assert result.ok

    def test_silent_when_spread_across_channels(self):
        eng = self._engine([Placement.single(0), Placement.single(1)])
        assert not analyze_engine(eng).by_code("FB105")

    def test_single_hog_is_fb104_not_fb105(self):
        # One buffer alone over budget: FB104's case, FB105 stays quiet.
        eng = self._engine([Placement.single(0)], bytes_per_cycle=16)
        result = analyze_engine(eng)
        assert result.by_code("FB104")
        assert not result.by_code("FB105")


# ------------------------------------------------------- plan round-trip

class TestPlanPlacements:
    def _plan(self, placement):
        mem = DramModel(num_banks=8, bytes_per_cycle=64)
        eng = Engine(memory=mem)
        buf = mem.bind("A", np.ones(256, dtype=np.float32),
                       placement=placement)
        ch = eng.channel("c", 32)
        eng.add_kernel("read", read_kernel(mem, buf, ch, 8),
                       writes=[(ch, 8, 1)])
        eng.add_kernel("snk", sink_kernel(ch, 256, 8), reads=(ch,))
        return compile_plan(eng)

    def test_round_trip_preserves_placement(self):
        plan = self._plan(Placement.striped((0, 3, 5)))
        restored = PlanIR.from_dict(plan.to_dict())
        assert restored == plan
        assert restored.plan_key == plan.plan_key
        p = restored.placements[0]
        assert p.kind == "striped" and p.channels == (0, 3, 5)
        t = [t for k in restored.kernels for t in k.dram][0]
        assert t.channels == (0, 3, 5)

    def test_plan_key_distinguishes_placements(self):
        keys = [self._plan(pl).plan_key
                for pl in (Placement.single(0), Placement.single(1),
                           Placement.striped((0, 1)), None)]
        assert len(set(keys[:3])) == 3
        # No placement round-robins onto channel 0 — the *same physical
        # layout* as Placement.single(0), so the keys rightly coincide.
        assert keys[3] == keys[0]


# ----------------------------------------------------------------- models

class TestHbmModels:
    def test_channel_bytes_per_cycle(self):
        assert channel_bytes_per_cycle(14.375e9, 300e6) == 47
        with pytest.raises(ValueError):
            channel_bytes_per_cycle(0, 300e6)

    def test_lane_read_rate(self):
        assert lane_read_rate(16, 47.0) == pytest.approx(11.75)
        assert lane_read_rate(8, 64.0) == 8.0        # compute-bound

    def test_sharded_read_rate_near_linear_then_saturates(self):
        r1 = sharded_read_rate(16, 1, 1, 16.0)
        r4 = sharded_read_rate(16, 4, 4, 16.0)
        assert r4 == pytest.approx(4 * r1)
        # channels < lanes: budgets shared, no gain past the channels
        assert sharded_read_rate(16, 4, 1, 16.0) == pytest.approx(r1)

    def test_io_volume_is_lane_invariant(self):
        assert gemv_io_sharded(512, 512, 64, 4) \
            == gemv_io_tiles_by_rows(512, 512, 64)

    def test_sharded_cycles_monotone_in_lanes(self):
        c = [sharded_gemv_cycles(512, 512, 64, 16, l, 16.0)
             for l in (1, 2, 4, 8)]
        assert c[0] > c[1] > c[2] > c[3]
        assert sharded_gemv_speedup(512, 512, 64, 16, 4, 16.0) \
            == pytest.approx(c[0] / c[2])

    def test_sharded_cycles_validation(self):
        with pytest.raises(ValueError):
            sharded_gemv_cycles(500, 512, 64, 16, 2, 16.0)
        with pytest.raises(ValueError):
            sharded_gemv_cycles(512, 512, 64, 16, 9, 16.0)


class TestShardedDse:
    def test_split_placement_beats_shared(self):
        pts = explore_gemv_sharded(4096, 4096, U280, widths=(16,),
                                   tiles=(256,), lanes=(4,), workers=1)
        by_chans = {p.param("chans"): p for p in pts}
        assert by_chans[4].cycles < by_chans[1].cycles

    def test_sweep_covers_placement_axis(self):
        pts = explore_gemv_sharded(2048, 2048, U280, widths=(8, 16),
                                   tiles=(128,), lanes=(1, 2), workers=1)
        assert all(p.routine == "gemv_sharded" for p in pts)
        assert {p.param("chans") for p in pts} == {1, 2}
        best = fastest(pts)
        assert best.param("lanes") >= 1


class TestU280Catalog:
    def test_registered(self):
        assert DEVICES["u280"] is U280
        assert U280.dram_banks == 32
        assert U280.dram_bank_bytes == 256 * 1024 * 1024
        # 32 pseudo-channels x 14.375 GB/s = 460 GB/s aggregate
        assert U280.dram_bank_bandwidth * U280.dram_banks \
            == pytest.approx(460e9)

    def test_power_model_has_u280(self):
        assert "u280" in PowerModel.STATIC and "u280" in PowerModel.DYNAMIC
