"""Tests for the simulation profiler: utilization, bottleneck, occupancy."""

import pytest

from repro.fpga import Clock, Engine, Pop, Push, sink_kernel, source_kernel


def slow_stage(n, ch_in, ch_out, period):
    """Consume/produce one element every ``period`` cycles."""
    for _ in range(n):
        v = yield Pop(ch_in, 1)
        yield Push(ch_out, (v,), 1)
        yield Clock(period)


class TestUtilization:
    def _run(self, period):
        n = 128
        eng = Engine(trace=True)
        c1 = eng.channel("feed", 8)
        c2 = eng.channel("drain", 8)
        eng.add_kernel("src", source_kernel(c1, list(range(n)), 1))
        eng.add_kernel("stage", slow_stage(n, c1, c2, period))
        eng.add_kernel("sink", sink_kernel(c2, n, 1))
        return eng.run()

    def test_fast_stage_everyone_busy(self):
        rep = self._run(period=1)
        assert rep.kernel_utilization("stage") > 0.9

    def test_slow_stage_starves_neighbours(self):
        rep = self._run(period=4)
        # the source stalls on the full feed channel, the sink on the
        # empty drain channel; the slow stage itself never stalls
        assert rep.kernel_utilization("src") < 0.6
        assert rep.kernel_utilization("sink") < 0.6
        assert rep.kernel_utilization("stage") > 0.9

    def test_bottleneck_is_not_the_slow_stage(self):
        """The *stalled* kernels point at the slow stage: the bottleneck
        report names a victim adjacent to the culprit."""
        rep = self._run(period=4)
        assert rep.bottleneck() in ("src", "sink")

    def test_bottleneck_requires_kernels(self):
        from repro.fpga.engine import SimReport
        with pytest.raises(ValueError):
            SimReport(0, {}, {}).bottleneck()


class TestOccupancyTrace:
    def test_feed_channel_runs_full_when_consumer_is_slow(self):
        n = 64
        eng = Engine(trace=True)
        c1 = eng.channel("feed", 4)
        c2 = eng.channel("drain", 4)
        eng.add_kernel("src", source_kernel(c1, list(range(n)), 1))
        eng.add_kernel("stage", slow_stage(n, c1, c2, 4))
        eng.add_kernel("sink", sink_kernel(c2, n, 1))
        rep = eng.run()
        assert rep.mean_occupancy("feed") > 2.0       # backed up
        assert rep.mean_occupancy("drain") < 2.0      # drained eagerly

    def test_occupancy_requires_trace(self):
        eng = Engine()                                # trace off
        ch = eng.channel("c", 4)
        eng.add_kernel("src", source_kernel(ch, [1], 1))
        eng.add_kernel("sink", sink_kernel(ch, 1, 1))
        rep = eng.run()
        with pytest.raises(ValueError, match="trace"):
            rep.mean_occupancy("c")


class TestTimeline:
    def _run(self):
        n = 64
        eng = Engine(trace=True)
        c1 = eng.channel("feed", 4)
        c2 = eng.channel("drain", 4)
        eng.add_kernel("src", source_kernel(c1, list(range(n)), 1))
        eng.add_kernel("stage", slow_stage(n, c1, c2, 3))
        eng.add_kernel("sink", sink_kernel(c2, n, 1))
        return eng.run()

    def test_timeline_has_one_row_per_kernel(self):
        rep = self._run()
        text = rep.timeline()
        assert text.count("|") == 2 * 3          # three framed rows
        for name in ("src", "stage", "sink"):
            assert name in text

    def test_timeline_shows_early_finisher_as_done(self):
        rep = self._run()
        text = rep.timeline(max_width=40)
        src_row = next(l for l in text.splitlines() if "src" in l)
        assert "-" in src_row                     # src finished early

    def test_full_resolution_states_recorded(self):
        rep = self._run()
        states = set(rep.timelines["src"])
        assert "#" in states and ("s" in states or "-" in states)
        # every kernel's timeline spans the whole run
        assert len(rep.timelines["sink"]) == rep.cycles

    def test_timeline_requires_trace(self):
        eng = Engine()
        ch = eng.channel("c", 4)
        eng.add_kernel("src", source_kernel(ch, [1], 1))
        eng.add_kernel("sink", sink_kernel(ch, 1, 1))
        rep = eng.run()
        with pytest.raises(ValueError, match="trace"):
            rep.timeline()

    def test_sleeping_state_visible_at_full_resolution(self):
        rep = self._run()
        assert "z" in rep.timelines["stage"]


class TestProfileText:
    def test_profile_mentions_every_kernel_and_channel(self):
        eng = Engine(trace=True)
        ch = eng.channel("wire", 8)
        eng.add_kernel("producer", source_kernel(ch, [1.0] * 16, 2))
        eng.add_kernel("consumer", sink_kernel(ch, 16, 2))
        rep = eng.run()
        text = rep.profile()
        assert "producer" in text
        assert "consumer" in text
        assert "wire" in text
        assert "bottleneck" in text
        assert "mean_occ" in text
