"""Host API across device configurations: Arria vs Stratix, interleaving."""

import numpy as np
import pytest

from repro.fpga.device import ARRIA10, STRATIX10
from repro.host import Fblas

RNG = np.random.default_rng(131)


def f32(a):
    return np.asarray(a, dtype=np.float32)


class TestArriaBoard:
    def test_dot_runs_on_two_banks(self):
        fb = Fblas(device=ARRIA10, width=4)
        x = fb.copy_to_device(f32(RNG.normal(size=64)))
        y = fb.copy_to_device(f32(RNG.normal(size=64)))
        assert fb.context.mem.num_banks == 2
        got = fb.dot(x, y)
        assert got == pytest.approx(float(np.dot(x.data, y.data)),
                                    rel=1e-4)

    def test_arria_is_slower_than_stratix_per_cycle_time(self):
        """Same cycle count, lower frequency: longer modeled time."""
        x_host = f32(RNG.normal(size=512))
        y_host = f32(RNG.normal(size=512))
        times = {}
        for dev in (ARRIA10, STRATIX10):
            fb = Fblas(device=dev, mode="model", width=8)
            x = fb.copy_to_device(x_host)
            y = fb.copy_to_device(y_host)
            fb.dot(x, y)
            times[dev.name] = fb.records[-1].seconds
        assert times[ARRIA10.name] > times[STRATIX10.name]

    def test_arria_gemv_and_gemm(self):
        fb = Fblas(device=ARRIA10, width=4, tile=8)
        a = fb.copy_to_device(f32(RNG.normal(size=(8, 8))))
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        y = fb.copy_to_device(np.zeros(8, dtype=np.float32))
        np.testing.assert_allclose(fb.gemv(1.0, a, x, 0.0, y),
                                   a.data @ x.data, rtol=1e-3, atol=1e-4)
        b = fb.copy_to_device(f32(RNG.normal(size=(8, 8))))
        c = fb.copy_to_device(np.zeros((8, 8), dtype=np.float32))
        np.testing.assert_allclose(fb.gemm(1.0, a, b, 0.0, c),
                                   np.asarray(a.data) @ np.asarray(b.data),
                                   rtol=1e-3, atol=1e-3)


class TestInterleavedBoard:
    def test_interleaving_speeds_up_wide_dot(self):
        """A W=16 DOT outstrips one bank (13 floats/cycle) but not the
        4-bank pool: interleaving removes the bandwidth stall."""
        x_host = f32(RNG.normal(size=4096))
        y_host = f32(RNG.normal(size=4096))
        cycles = {}
        for inter in (False, True):
            fb = Fblas(width=16, interleaving=inter)
            x = fb.copy_to_device(x_host)
            y = fb.copy_to_device(y_host)
            fb.dot(x, y)
            cycles[inter] = fb.records[-1].cycles
        assert cycles[True] < cycles[False]

    def test_results_identical_between_placements(self):
        x_host = f32(RNG.normal(size=256))
        vals = []
        for inter in (False, True):
            fb = Fblas(width=8, interleaving=inter)
            x = fb.copy_to_device(x_host)
            vals.append(fb.nrm2(x))
        assert vals[0] == vals[1]


class TestRecordBookkeeping:
    def test_reset_records(self):
        fb = Fblas(width=4)
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        fb.nrm2(x)
        assert fb.records
        fb.context.reset_records()
        assert not fb.records

    def test_energy_accounting(self):
        fb = Fblas(mode="model", width=16)
        x = fb.copy_to_device(f32(RNG.normal(size=1 << 16)))
        fb.asum(x)
        rec = fb.records[-1]
        assert rec.energy_joules == pytest.approx(
            rec.power_watts * rec.seconds)
        assert rec.energy_joules > 0
