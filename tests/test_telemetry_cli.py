"""CLI and exporter tests for the observability surface.

``python -m repro.telemetry`` exit codes and artifact schemas
(--ledger / --prometheus / report), plus unit coverage of the
Prometheus text-exposition renderer.
"""

import json

import pytest

from repro.telemetry.cli import main as telemetry_main
from repro.telemetry.ledger import (RUN_RECORD_SCHEMA, RunRecord,
                                    read_ledger)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.prometheus import (PROMETHEUS_CONTENT_TYPE,
                                        to_prometheus, write_prometheus)


class TestExitCodes:
    def test_report_without_path_is_usage_error(self, capsys):
        assert telemetry_main(["report"]) == 2
        assert "requires a ledger" in capsys.readouterr().err

    def test_report_missing_file_is_usage_error(self, tmp_path, capsys):
        rc = telemetry_main(["report", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "cannot read ledger" in capsys.readouterr().err

    def test_report_garbage_ledger_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert telemetry_main(["report", str(bad)]) == 2
        assert "bad ledger row" in capsys.readouterr().err

    def test_conflicting_mode_flags(self, capsys):
        rc = telemetry_main(["atax", "--mode", "dense",
                             "--engine-mode", "event"])
        assert rc == 2
        assert "disagree" in capsys.readouterr().err

    def test_stray_path_rejected_outside_report(self, capsys):
        rc = telemetry_main(["atax", "ledger.jsonl"])
        assert rc == 2
        assert "only applies to 'report'" in capsys.readouterr().err


class TestLedgerArtifacts:
    def test_ledger_and_prometheus_written(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        prom = tmp_path / "metrics.prom"
        rc = telemetry_main(["atax", "--n", "16", "--tile", "4",
                             "--width", "4",
                             "--ledger", str(ledger),
                             "--prometheus", str(prom)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ledger written to" in out
        assert "prometheus metrics written to" in out

        records = read_ledger(str(ledger))
        assert records, "expected at least one run record"
        # the apps drive the engine directly, so every record is an
        # engine.run root (execute_plan nesting is covered in
        # test_ledger / test_executor)
        assert {r.kind for r in records} == {"engine.run"}
        # every row is schema-tagged and losslessly re-serializable
        for line in ledger.read_text().splitlines():
            doc = json.loads(line)
            assert doc["schema"] == RUN_RECORD_SCHEMA
            assert RunRecord.from_dict(doc).to_dict() == doc

        text = prom.read_text()
        assert "repro_sim_cycles" in text
        assert "# TYPE" in text

    def test_metrics_runs_carry_run_ids(self, tmp_path):
        metrics = tmp_path / "m.json"
        ledger = tmp_path / "l.jsonl"
        rc = telemetry_main(["atax", "--n", "16", "--tile", "4",
                             "--width", "4",
                             "--metrics", str(metrics),
                             "--ledger", str(ledger)])
        assert rc == 0
        mdoc = json.loads(metrics.read_text())
        run_ids = {r["run_id"] for r in mdoc["runs"]}
        ledger_ids = {r.run_id for r in read_ledger(str(ledger))}
        assert run_ids and run_ids <= ledger_ids


class TestReportSubcommand:
    def _write(self, path, records):
        with open(path, "w", encoding="utf-8") as fh:
            for r in records:
                fh.write(json.dumps(r.to_dict()) + "\n")

    def test_clean_ledger_reports_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.jsonl"
        self._write(path, [
            RunRecord(run_id="r-1", kind="engine.run", plan_key="pk",
                      cycles=90, predicted_cycles=(10, 100), in_band=True),
        ])
        assert telemetry_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run ledger: 1 records" in out
        assert "0 band regressions" in out

    def test_regression_flips_the_exit_code(self, tmp_path, capsys):
        path = tmp_path / "slow.jsonl"
        self._write(path, [
            RunRecord(run_id="r-1", kind="engine.run", plan_key="pk",
                      cycles=200, predicted_cycles=(10, 100)),
        ])
        assert telemetry_main(["report", str(path)]) == 1
        assert "+100%!" in capsys.readouterr().out

    def test_drift_threshold_is_configurable(self, tmp_path, capsys):
        path = tmp_path / "edge.jsonl"
        self._write(path, [
            RunRecord(run_id="r-1", kind="engine.run", plan_key="pk",
                      cycles=120, predicted_cycles=(10, 100)),
        ])
        # 20% over the band: flagged at a 10% threshold...
        assert telemetry_main(["report", str(path),
                               "--drift-threshold", "0.1"]) == 1
        capsys.readouterr()
        # ... tolerated at 50%
        assert telemetry_main(["report", str(path),
                               "--drift-threshold", "0.5"]) == 0


class TestPrometheusExport:
    def test_counter_gets_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("plan_cache.requests", "lookups").inc(
            2, cache="host.plan", result="hit")
        text = to_prometheus(reg)
        assert "# TYPE repro_plan_cache_requests_total counter" in text
        assert ('repro_plan_cache_requests_total'
                '{cache="host.plan",result="hit"} 2') in text

    def test_gauge_and_help_lines(self):
        reg = MetricsRegistry()
        reg.gauge("channels.occupancy", "live occupancy").set(
            7.5, channel="A2")
        text = to_prometheus(reg)
        assert "# HELP repro_channels_occupancy live occupancy" in text
        assert "# TYPE repro_channels_occupancy gauge" in text
        assert 'repro_channels_occupancy{channel="A2"} 7.5' in text

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("kernel.work", "work", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v, kernel="dot")
        text = to_prometheus(reg)
        assert 'repro_kernel_work_bucket{kernel="dot",le="1"} 1' in text
        assert 'repro_kernel_work_bucket{kernel="dot",le="10"} 2' in text
        assert 'repro_kernel_work_bucket{kernel="dot",le="100"} 3' in text
        assert 'repro_kernel_work_bucket{kernel="dot",le="+Inf"} 4' in text
        assert 'repro_kernel_work_sum{kernel="dot"} 555.5' in text
        assert 'repro_kernel_work_count{kernel="dot"} 4' in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("events", "e").inc(1, what='say "hi"\nback\\slash')
        text = to_prometheus(reg)
        assert r'what="say \"hi\"\nback\\slash"' in text

    def test_name_sanitization(self):
        reg = MetricsRegistry()
        reg.gauge("weird-name.with/chars", "g").set(1)
        assert "repro_weird_name_with_chars 1" in to_prometheus(reg)

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_write_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c", "help").inc(3)
        path = tmp_path / "m.prom"
        text = write_prometheus(reg, str(path))
        assert path.read_text() == text
        assert "repro_c_total 3" in text

    def test_content_type_constant(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestSampleCommandStability:
    @pytest.mark.parametrize("mode", ["event", "bulk"])
    def test_atax_modes_share_ledger_schema(self, tmp_path, mode):
        ledger = tmp_path / f"{mode}.jsonl"
        rc = telemetry_main(["atax", "--n", "16", "--tile", "4",
                             "--width", "4", "--engine-mode", mode,
                             "--ledger", str(ledger)])
        assert rc == 0
        records = read_ledger(str(ledger))
        assert all(r.engine_mode == mode for r in records
                   if r.kind == "engine.run")

    def test_certified_axpydot_bands_populated(self, tmp_path):
        # atax's tiled readers carry no static pattern, so axpydot is
        # the CLI's certified-capable composition.
        ledger = tmp_path / "certified.jsonl"
        rc = telemetry_main(["axpydot", "--n", "64", "--width", "4",
                             "--engine-mode", "certified",
                             "--ledger", str(ledger)])
        assert rc == 0
        ok = [r for r in read_ledger(str(ledger))
              if r.kind == "engine.run" and r.outcome == "ok"]
        assert ok and all(r.predicted_cycles is not None for r in ok)
        assert all(r.in_band for r in ok)
        assert all(r.bulk is not None for r in ok)
