"""Tests for the device catalog (Table II) and resource model (Tables I, III)."""

import pytest

from repro.fpga import (
    ARRIA10,
    DEVICES,
    STRATIX10,
    FrequencyModel,
    PowerModel,
    ResourceUsage,
    fully_unrolled_resources,
    gemm_systolic_resources,
    level1_latency,
    level1_resources,
    level2_resources,
)


class TestDeviceCatalog:
    def test_table2_arria_totals(self):
        assert ARRIA10.total.alms == 427_000
        assert ARRIA10.total.dsps == 1518
        assert ARRIA10.dram_banks == 2

    def test_table2_stratix_totals(self):
        assert STRATIX10.total.dsps == 5760
        assert STRATIX10.available.dsps == 4468
        assert STRATIX10.dram_banks == 4

    def test_bsp_reserves_resources(self):
        for dev in DEVICES.values():
            assert dev.available.alms <= dev.total.alms
            assert dev.available.m20ks <= dev.total.m20ks

    def test_no_hardened_double_precision(self):
        assert not ARRIA10.hardened_double
        assert not STRATIX10.hardened_double

    def test_bytes_per_cycle(self):
        # 19.2 GB/s at 300 MHz = 64 B/cycle
        assert STRATIX10.bytes_per_cycle(300e6) == 64


class TestTable1Calibration:
    """The resource model reproduces Table I's SCAL/DOT columns."""

    @pytest.mark.parametrize("w,luts,ffs,dsps", [
        (2, 98, 192, 2), (4, 196, 384, 4), (8, 392, 768, 8),
        (16, 784, 1536, 16), (32, 1568, 3072, 32), (64, 3136, 6144, 64),
    ])
    def test_scal_row(self, w, luts, ffs, dsps):
        u = level1_resources("map", w)
        assert u.luts == luts
        assert u.ffs == ffs
        assert u.dsps == dsps

    @pytest.mark.parametrize("w,luts,ffs,dsps", [
        (8, 378, 640, 8), (16, 650, 1280, 16),
        (32, 1194, 2560, 32), (64, 2474, 5120, 64),
    ])
    def test_dot_row_within_tolerance(self, w, luts, ffs, dsps):
        u = level1_resources("map_reduce", w)
        assert u.dsps == dsps
        assert u.ffs == ffs
        assert abs(u.luts - luts) / luts < 0.25   # linear fit, Sec. IV-A

    def test_scal_latency_constant_50(self):
        for w in (2, 8, 64):
            assert level1_latency("map", w) == 50

    @pytest.mark.parametrize("w,lat", [(2, 82), (4, 85), (8, 89),
                                       (16, 93), (32, 97), (64, 105)])
    def test_dot_latency_log_growth(self, w, lat):
        assert abs(level1_latency("map_reduce", w) - lat) <= 4

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            level1_resources("map", 0)
        with pytest.raises(ValueError):
            level1_resources("bogus", 4)
        with pytest.raises(ValueError):
            level1_latency("map", 0)


class TestTable3Calibration:
    """Standalone synthesized modules land near the Table III rows."""

    def test_sdot_w256_arria(self):
        u = level1_resources("map_reduce", 256, "single",
                             include_overhead=True, device=ARRIA10)
        assert abs(u.dsps - 331) < 40
        assert abs(u.alms - 9756) / 9756 < 0.35

    def test_ddot_w128_uses_4x_dsps(self):
        u = level1_resources("map_reduce", 128, "double",
                             include_overhead=True, device=ARRIA10)
        assert abs(u.dsps - 512) / 512 < 0.25

    def test_double_precision_logic_order_of_magnitude(self):
        sp = level1_resources("map_reduce", 128, "single")
        dp = level1_resources("map_reduce", 128, "double")
        assert 8 < dp.luts / sp.luts < 40

    def test_sgemv_w256_m20ks(self):
        u = level2_resources(256, 1024, "single", device=ARRIA10)
        assert abs(u.m20ks - 210) / 210 < 0.35

    def test_stratix_infrastructure_m20ks(self):
        u = level1_resources("map_reduce", 256, "single",
                             include_overhead=True, device=STRATIX10)
        assert u.m20ks > 800                    # BSP infrastructure

    def test_sgemm_stratix_40x80(self):
        u = gemm_systolic_resources(40, 80, 960, 960, "single",
                                    device=STRATIX10)
        assert abs(u.dsps - 3270) / 3270 < 0.1
        assert abs(u.m20ks - 7767) / 7767 < 0.4
        assert u.fits(STRATIX10)

    def test_dgemm_arria_16x8(self):
        u = gemm_systolic_resources(16, 8, 384, 384, "double", device=ARRIA10)
        assert abs(u.dsps - 622) / 622 < 0.2

    def test_oversized_array_does_not_fit(self):
        u = gemm_systolic_resources(80, 80, 960, 960, "single",
                                    device=ARRIA10)
        assert not u.fits(ARRIA10)

    def test_tile_must_match_grid(self):
        with pytest.raises(ValueError):
            gemm_systolic_resources(4, 4, 10, 16)


class TestResourceUsageAlgebra:
    def test_addition(self):
        a = ResourceUsage(10, 20, 1, 2)
        b = ResourceUsage(5, 10, 1, 1)
        c = a + b
        assert (c.luts, c.ffs, c.m20ks, c.dsps) == (15, 30, 2, 3)

    def test_utilization_uses_busiest_resource(self):
        u = ResourceUsage(luts=0, ffs=0, m20ks=0, dsps=ARRIA10.available.dsps)
        assert u.utilization(ARRIA10) == pytest.approx(1.0)

    def test_fully_unrolled_scales_with_flops(self):
        small = fully_unrolled_resources(128)
        big = fully_unrolled_resources(1024)
        assert big.dsps == 8 * small.dsps


class TestFrequencyModel:
    def test_stratix_level1_hits_calibrated_value(self):
        f = FrequencyModel(STRATIX10).estimate("level1", "single")
        assert 340e6 < f < 380e6

    def test_arria_is_slower_than_stratix(self):
        fa = FrequencyModel(ARRIA10).estimate("level1", "single")
        fs = FrequencyModel(STRATIX10).estimate("level1", "single")
        assert fa < fs

    def test_high_utilization_derates(self):
        m = FrequencyModel(STRATIX10)
        assert m.estimate("systolic", "single", utilization=0.95) < \
            m.estimate("systolic", "single", utilization=0.1)

    def test_hyperflex_disabled_caps_frequency(self):
        m = FrequencyModel(STRATIX10)
        assert m.estimate("level1", "single", hyperflex=False) <= \
            STRATIX10.f_max


class TestPowerModel:
    def test_ranges_match_paper_tables(self):
        pa = PowerModel(ARRIA10)
        ps = PowerModel(STRATIX10)
        assert 46 <= pa.estimate(0.1) <= 53
        assert 57 <= ps.estimate(0.1) <= 72
        assert ps.estimate(0.9) > ps.estimate(0.1)

    def test_utilization_clipped(self):
        p = PowerModel(ARRIA10)
        assert p.estimate(5.0) == p.estimate(1.0)
