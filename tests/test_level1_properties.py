"""Hypothesis conformance: streaming Level-1 kernels == references.

Randomized vector contents, lengths, and vectorization widths, for both
precisions — the streaming implementations must agree with the numpy
references under every configuration (up to the precision's rounding).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas import level1, reference

from helpers import run_map_kernel, run_reduction_kernel

finite = st.floats(min_value=-100, max_value=100, allow_nan=False,
                   width=32)


def vec_and_width():
    return st.tuples(
        st.lists(finite, min_size=1, max_size=64),
        st.integers(1, 16),
        st.sampled_from([np.float32, np.float64]),
    )


def two_vecs_and_width():
    return st.tuples(
        st.lists(st.tuples(finite, finite), min_size=1, max_size=64),
        st.integers(1, 16),
        st.sampled_from([np.float32, np.float64]),
    )


def _tols(dtype):
    return dict(rtol=2e-4, atol=2e-4) if dtype == np.float32 else \
        dict(rtol=1e-10, atol=1e-10)


class TestMapRoutines:
    @settings(max_examples=25, deadline=None)
    @given(vec_and_width(), finite)
    def test_scal(self, vw, alpha):
        data, w, dtype = vw
        x = np.array(data, dtype=dtype)
        outs, _ = run_map_kernel(
            lambda ci, co: level1.scal_kernel(len(x), alpha, ci, co, w,
                                              dtype),
            {"x": (list(x), w)}, {"o": len(x)}, w)
        np.testing.assert_allclose(outs["o"], reference.scal(alpha, x),
                                   **_tols(dtype))

    @settings(max_examples=25, deadline=None)
    @given(two_vecs_and_width(), finite)
    def test_axpy(self, pairs_w, alpha):
        pairs, w, dtype = pairs_w
        x = np.array([p[0] for p in pairs], dtype=dtype)
        y = np.array([p[1] for p in pairs], dtype=dtype)
        outs, _ = run_map_kernel(
            lambda cx, cy, co: level1.axpy_kernel(
                len(x), alpha, cx, cy, co, w, dtype),
            {"x": (list(x), w), "y": (list(y), w)}, {"o": len(x)}, w)
        np.testing.assert_allclose(outs["o"], reference.axpy(alpha, x, y),
                                   **_tols(dtype))

    @settings(max_examples=20, deadline=None)
    @given(two_vecs_and_width())
    def test_swap_is_an_involution_of_streams(self, pairs_w):
        pairs, w, dtype = pairs_w
        x = np.array([p[0] for p in pairs], dtype=dtype)
        y = np.array([p[1] for p in pairs], dtype=dtype)
        outs, _ = run_map_kernel(
            lambda cx, cy, cox, coy: level1.swap_kernel(
                len(x), cx, cy, cox, coy, w, dtype),
            {"x": (list(x), w), "y": (list(y), w)},
            {"ox": len(x), "oy": len(x)}, w)
        np.testing.assert_allclose(outs["ox"], y, **_tols(dtype))
        np.testing.assert_allclose(outs["oy"], x, **_tols(dtype))

    @settings(max_examples=20, deadline=None)
    @given(two_vecs_and_width(), st.floats(0, 2 * np.pi))
    def test_rot_preserves_norm(self, pairs_w, theta):
        """Plane rotations are isometries — checked end to end through
        the streaming kernel in double precision."""
        pairs, w, _ = pairs_w
        dtype = np.float64
        x = np.array([p[0] for p in pairs], dtype=dtype)
        y = np.array([p[1] for p in pairs], dtype=dtype)
        c, s = float(np.cos(theta)), float(np.sin(theta))
        outs, _ = run_map_kernel(
            lambda cx, cy, cox, coy: level1.rot_kernel(
                len(x), c, s, cx, cy, cox, coy, w, dtype),
            {"x": (list(x), w), "y": (list(y), w)},
            {"ox": len(x), "oy": len(x)}, w)
        before = np.linalg.norm(np.concatenate([x, y]))
        after = np.linalg.norm(np.concatenate([outs["ox"], outs["oy"]]))
        assert after == pytest.approx(before, rel=1e-9, abs=1e-9)


class TestReductions:
    @settings(max_examples=25, deadline=None)
    @given(two_vecs_and_width())
    def test_dot(self, pairs_w):
        pairs, w, dtype = pairs_w
        x = np.array([p[0] for p in pairs], dtype=dtype)
        y = np.array([p[1] for p in pairs], dtype=dtype)
        out, _ = run_reduction_kernel(
            lambda cx, cy, cr: level1.dot_kernel(len(x), cx, cy, cr, w,
                                                 dtype),
            {"x": (list(x), w), "y": (list(y), w)})
        want = float(np.dot(x.astype(np.float64), y.astype(np.float64)))
        assert out[0] == pytest.approx(want, rel=1e-3, abs=1e-3)

    @settings(max_examples=25, deadline=None)
    @given(vec_and_width())
    def test_nrm2_nonnegative_and_correct(self, vw):
        data, w, dtype = vw
        x = np.array(data, dtype=dtype)
        out, _ = run_reduction_kernel(
            lambda cx, cr: level1.nrm2_kernel(len(x), cx, cr, w, dtype),
            {"x": (list(x), w)})
        assert out[0] >= 0
        assert out[0] == pytest.approx(float(np.linalg.norm(
            x.astype(np.float64))), rel=1e-3, abs=1e-3)

    @settings(max_examples=25, deadline=None)
    @given(vec_and_width())
    def test_asum_is_l1_norm(self, vw):
        data, w, dtype = vw
        x = np.array(data, dtype=dtype)
        out, _ = run_reduction_kernel(
            lambda cx, cr: level1.asum_kernel(len(x), cx, cr, w, dtype),
            {"x": (list(x), w)})
        assert out[0] == pytest.approx(float(np.abs(
            x.astype(np.float64)).sum()), rel=1e-3, abs=1e-3)

    @settings(max_examples=25, deadline=None)
    @given(vec_and_width())
    def test_iamax_matches_reference(self, vw):
        data, w, dtype = vw
        x = np.array(data, dtype=dtype)
        out, _ = run_reduction_kernel(
            lambda cx, cr: level1.iamax_kernel(len(x), cx, cr, w, dtype),
            {"x": (list(x), w)})
        assert out[0] == reference.iamax(x)

    @settings(max_examples=15, deadline=None)
    @given(two_vecs_and_width())
    def test_dot_width_invariance(self, pairs_w):
        """The result is independent of the vectorization width up to
        floating-point re-association (exact in double precision for the
        integral values used here)."""
        pairs, _w, _dt = pairs_w
        x = np.array([round(p[0]) for p in pairs], dtype=np.float64)
        y = np.array([round(p[1]) for p in pairs], dtype=np.float64)
        results = []
        for w in (1, 4, 16):
            out, _ = run_reduction_kernel(
                lambda cx, cy, cr, w=w: level1.dot_kernel(
                    len(x), cx, cy, cr, w, np.float64),
                {"x": (list(x), w), "y": (list(y), w)})
            results.append(float(out[0]))
        assert results[0] == results[1] == results[2]
