"""Tests for :mod:`repro.telemetry`: metrics, spans, traces, drift.

The invariants asserted here are the observability contracts ISSUE-3
introduces: metrics must agree *exactly* with the engine's own
``SimReport`` accounting, the exported Chrome trace must be loadable
(phases, monotonic timestamps, pid/tid mapping), activation must be
strictly scoped (an engine run outside a session produces a
bit-identical report), and the drift report must flag an intentionally
mis-modeled kernel while leaving the honest compositions unflagged.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.apps.axpydot import AppResult, axpydot_streaming
from repro.apps.gemver import gemver_streaming
from repro.fpga import Clock, Engine, Pop, Push, sink_kernel, source_kernel
from repro.fpga.engine import SIM_REPORT_SCHEMA
from repro.fpga.memory import DramModel, read_kernel
from repro.fpga.observers import JSONL_EVENTS_SCHEMA, JsonlEventDump
from repro.host.api import Fblas
from repro.host.context import FblasContext
from repro.apps.axpydot import APP_RESULT_SCHEMA
from repro.telemetry import (
    CHROME_TRACE_SCHEMA,
    METRICS_SCHEMA,
    MetricsRegistry,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.cli import main as telemetry_main
from repro.telemetry.drift import DriftEntry, DriftReport, entries_for

MODES = ("dense", "event")


def passthrough(n, ch_in, ch_out, width=1, sleep=1):
    done = 0
    while done < n:
        c = min(width, n - done)
        vals = yield Pop(ch_in, c)
        if c == 1:
            vals = (vals,)
        yield Push(ch_out, tuple(vals), None)
        yield Clock(sleep)
        done += c


def _small_pipeline(eng, n=64, width=4, sink_width=4):
    ci = eng.channel("i", 16)
    co = eng.channel("o", 16)
    out = []
    eng.add_kernel("src", source_kernel(ci, list(range(n)), width))
    eng.add_kernel("mid", passthrough(n, ci, co, width), latency=6)
    eng.add_kernel("sink", sink_kernel(co, n, sink_width, out))
    return out


def _axpydot_session(n=512, width=8, mode="event"):
    rng = np.random.default_rng(3)
    ctx = FblasContext()
    w = ctx.copy_to_device(rng.standard_normal(n).astype(np.float32))
    v = ctx.copy_to_device(rng.standard_normal(n).astype(np.float32))
    u = ctx.copy_to_device(rng.standard_normal(n).astype(np.float32))
    with telemetry.session() as tel:
        res = axpydot_streaming(ctx, w, v, u, 0.7, width=width, mode=mode)
    return tel, res


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_labels_and_totals(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", "operations")
        c.inc(3, kernel="a")
        c.inc(4, kernel="b")
        c.inc(1, kernel="a")
        assert c.get(kernel="a") == 4
        assert c.total() == 8
        with pytest.raises(ValueError):
            c.inc(-1, kernel="a")

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("util", "utilization")
        g.set(0.5, kernel="a")
        g.set(0.75, kernel="a")
        assert g.get(kernel="a") == 0.75

    def test_histogram_buckets_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("occ", "occupancy", buckets=(0, 2, 4))
        for v in (0, 1, 3, 9):
            h.observe(v, channel="c")
        assert h.count(channel="c") == 4
        assert h.mean(channel="c") == pytest.approx(13 / 4)
        exported = h.to_dict()["series"][0]
        assert exported["labels"] == {"channel": "c"}
        buckets = exported["value"]["buckets"]
        assert buckets["+inf"] == 1        # the 9
        assert sum(buckets.values()) == 4

    def test_histogram_bulk_observe(self):
        reg = MetricsRegistry()
        h = reg.histogram("occ", "occupancy")
        h.observe(5, count=1000)            # an on_quiet window
        assert h.count() == 1000
        assert h.mean() == 5

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", "a counter")
        with pytest.raises(TypeError):
            reg.gauge("x", "now a gauge")

    def test_to_dict_schema(self):
        reg = MetricsRegistry()
        reg.counter("x", "c").inc(2, run=0)
        d = reg.to_dict()
        json.dumps(d)
        assert d["schema"] == METRICS_SCHEMA
        assert d["metrics"][0]["name"] == "x"
        assert d["metrics"][0]["type"] == "counter"
        assert d["metrics"][0]["series"] == [
            {"labels": {"run": 0}, "value": 2}]


# ---------------------------------------------------------------------------
# Zero-cost contract: no session => engine runs untouched
# ---------------------------------------------------------------------------

class TestActivationScoping:
    @pytest.mark.parametrize("mode", MODES)
    def test_report_identical_without_session(self, mode):
        eng1 = Engine(mode=mode)
        _small_pipeline(eng1)
        baseline = eng1.run()

        with telemetry.session():
            eng2 = Engine(mode=mode)
            _small_pipeline(eng2)
            observed = eng2.run()

        assert observed.cycles == baseline.cycles
        assert observed.kernel_steps == baseline.kernel_steps
        assert observed.total_stall_cycles == baseline.total_stall_cycles

    def test_span_is_noop_outside_session(self):
        assert telemetry.active() is None
        with telemetry.span("anything"):
            pass                           # shared nullcontext, no recording
        with telemetry.session() as tel:
            with telemetry.span("inner"):
                pass
            assert [s.name for s in tel.spans.spans] == ["inner"]
        assert telemetry.active() is None

    def test_session_restores_previous(self):
        with telemetry.session() as outer:
            with telemetry.session() as inner:
                assert telemetry.active() is inner
            assert telemetry.active() is outer

    def test_observers_detach_after_run(self):
        with telemetry.session():
            eng = Engine(mode="event")
            _small_pipeline(eng)
            eng.run()
            assert eng._observers == []


# ---------------------------------------------------------------------------
# Metrics agree exactly with the engine's own accounting
# ---------------------------------------------------------------------------

class TestMetricsAgreeWithSimReport:
    @pytest.mark.parametrize("mode", MODES)
    def test_cycles_and_stalls_match(self, mode):
        tel, _res = _axpydot_session(mode=mode)
        assert len(tel.runs) == 1
        run = tel.runs[0]
        assert run["schema"] == SIM_REPORT_SCHEMA
        reg = tel.registry

        assert reg.get("sim.cycles").total() == run["cycles"]
        assert (reg.get("kernel.stall_cycles").total()
                == run["total_stall_cycles"])
        active = reg.get("kernel.active_cycles")
        stalled = reg.get("kernel.stall_cycles")
        for name, ks in run["kernels"].items():
            assert active.get(run=0, kernel=name) == ks["active_cycles"]
            assert stalled.get(run=0, kernel=name) == ks["stall_cycles"]

    def test_channel_counters_match(self):
        tel, _res = _axpydot_session()
        run = tel.runs[0]
        pushes = tel.registry.get("channel.pushes")
        for name, cs in run["channels"].items():
            assert pushes.get(run=0, channel=name) == cs["pushes"]

    def test_modes_agree_on_metric_totals(self):
        totals = {}
        for mode in MODES:
            tel, _ = _axpydot_session(mode=mode)
            totals[mode] = {
                "cycles": tel.registry.get("sim.cycles").total(),
                "stall": tel.registry.get("kernel.stall_cycles").total(),
                "active": tel.registry.get("kernel.active_cycles").total(),
            }
        assert totals["dense"] == totals["event"]

    def test_declared_vs_achieved_ii(self):
        """A producer backpressured to a 1-in-4 cadence must show an
        achieved initiation interval well above its declared ii=1."""
        def slow_sink(n, ch):
            for _ in range(n):
                yield Pop(ch, 1)
                yield Clock(3)

        with telemetry.session() as tel:
            eng = Engine(mode="event")
            ch = eng.channel("c", 2)
            data = [float(i) for i in range(60)]
            eng.add_kernel("src", source_kernel(ch, data, 1), ii=1)
            eng.add_kernel("slow", slow_sink(60, ch), ii=4)
            eng.run()
        ii = tel.registry.get("kernel.ii")
        assert ii.get(run=0, kernel="slow", kind="declared") == 4.0
        assert ii.get(run=0, kernel="src", kind="declared") == 1.0
        achieved = ii.get(run=0, kernel="src", kind="achieved")
        assert achieved >= 2.0              # stalled on the full FIFO

    def test_stall_cause_vocabulary(self):
        tel, _res = _axpydot_session()
        cause = tel.registry.get("kernel.stall_cause_cycles")
        causes = {dict(key)["cause"] for key in cause.labelsets()}
        assert causes <= {"upstream-starved", "downstream-backpressured"}
        # The sink pops a scalar that arrives last: must be starved.
        assert cause.get(run=0, kernel="sink", channel="beta",
                         cause="upstream-starved") > 0

    def test_declared_ii_validation(self):
        eng = Engine()
        ch = eng.channel("c", 4)
        with pytest.raises(ValueError):
            eng.add_kernel("bad", source_kernel(ch, [1.0], 1), ii=0)


# ---------------------------------------------------------------------------
# Spans and the session clock
# ---------------------------------------------------------------------------

class TestSpans:
    def test_host_roots_engine_nested(self):
        tel, _res = _axpydot_session()
        names = [s.name for s in tel.spans.spans]
        assert names[0] == "app.axpydot"
        assert "engine.run[0]" in names
        app = tel.spans.spans[0]
        eng_span = next(s for s in tel.spans.spans if s.cat == "engine")
        assert app.depth == 0 and eng_span.depth == 1
        assert app.start <= eng_span.start <= eng_span.end <= app.end

    def test_multi_run_clock_is_coherent(self):
        """GEMVER runs two engines; their spans must not overlap and the
        second must start where the first ended (session clock)."""
        rng = np.random.default_rng(5)
        ctx = FblasContext()
        n = 16
        f32 = np.float32
        bufs = [ctx.copy_to_device(rng.standard_normal((n, n)).astype(f32))]
        bufs += [ctx.copy_to_device(rng.standard_normal(n).astype(f32))
                 for _ in range(6)]
        with telemetry.session() as tel:
            gemver_streaming(ctx, *bufs, 1.5, -0.5, tile=4, width=4)
        runs = sorted((s for s in tel.spans.spans if s.cat == "engine"),
                      key=lambda s: s.start)
        assert [s.name for s in runs] == ["engine.run[0]", "engine.run[1]"]
        assert runs[0].end == runs[1].start
        assert tel.clock == tel.total_cycles()
        assert [d["run"] for d in tel.runs] == [0, 1]

    def test_host_api_span_renamed_to_routine(self):
        fb = Fblas(width=8)
        x = fb.copy_to_device(np.ones(64, dtype=np.float32))
        y = fb.copy_to_device(np.ones(64, dtype=np.float32))
        with telemetry.session() as tel:
            fb.dot(x, y)
        host = [s for s in tel.spans.spans if s.cat == "host"]
        assert any(s.name == "host.dot" for s in host)
        sp = next(s for s in host if s.name == "host.dot")
        assert sp.args["cycles"] > 0

    def test_slices_cover_run(self):
        tel, _res = _axpydot_session()
        cycles = tel.runs[0]["cycles"]
        by_kernel = {}
        for sl in tel.slices:
            by_kernel.setdefault(sl.kernel, []).append(sl)
        assert "axpy" in by_kernel
        for name, sls in by_kernel.items():
            sls.sort(key=lambda s: s.start)
            # contiguous tiling of the whole run, one state at a time
            assert sls[0].start == 0, name
            assert sls[-1].end == cycles, name
            for a, b in zip(sls, sls[1:]):
                assert a.end == b.start, name
                assert a.state != b.state, name   # coalesced
        # Work slices follow the classic trace=True timeline semantics:
        # the generator's completing step is drawn as "#" but not counted
        # in active_cycles, hence the +1.
        axpy_work = sum(s.end - s.start for s in by_kernel["axpy"]
                        if s.state == "#")
        active = tel.runs[0]["kernels"]["axpy"]["active_cycles"]
        assert active <= axpy_work <= active + 1


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------

class TestChromeTrace:
    def _trace(self):
        tel, _res = _axpydot_session()
        return tel, to_chrome_trace(tel)

    def test_phases_and_schema(self):
        _tel, doc = self._trace()
        assert doc["otherData"]["schema"] == CHROME_TRACE_SCHEMA
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"B", "E", "X", "M"} <= phases

    def test_timestamps_monotonic(self):
        _tel, doc = self._trace()
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_pid_tid_mapping(self):
        _tel, doc = self._trace()
        ev = doc["traceEvents"]
        # host spans on pid 1; engine run 0 on pid 2; kernels on tids >= 1
        assert any(e["ph"] == "X" and e["pid"] == 1 for e in ev)
        b = next(e for e in ev if e["ph"] == "B")
        assert b["pid"] == 2 and b["tid"] == 0
        kernel_tids = {e["tid"] for e in ev
                       if e["ph"] == "X" and e.get("cat") == "kernel"}
        assert kernel_tids and min(kernel_tids) >= 1
        named = {e["args"]["name"] for e in ev
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"axpy", "dot", "sink"} <= named

    def test_b_e_balanced_per_pid(self):
        _tel, doc = self._trace()
        opens = sum(1 for e in doc["traceEvents"] if e["ph"] == "B")
        closes = sum(1 for e in doc["traceEvents"] if e["ph"] == "E")
        assert opens == closes == 1

    def test_write_round_trips(self, tmp_path):
        tel, _res = _axpydot_session()
        path = tmp_path / "trace.json"
        written = write_chrome_trace(tel, path)
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert loaded["otherData"]["total_cycles"] == tel.clock


# ---------------------------------------------------------------------------
# DRAM bank stats surfacing (satellite a)
# ---------------------------------------------------------------------------

class TestBankStats:
    @pytest.mark.parametrize("mode", MODES)
    def test_report_carries_per_run_deltas(self, mode):
        mem = DramModel(num_banks=2, interleaving=False)
        buf = mem.bind("x", np.arange(64, dtype=np.float32), bank=1)

        def one_pass():
            eng = Engine(memory=mem, mode=mode)
            ch = eng.channel("c", 8)
            eng.add_kernel("rd", read_kernel(mem, buf, ch, 4))
            eng.add_kernel("sink", sink_kernel(ch, 64, 4))
            return eng.run()

        rep1 = one_pass()
        rep2 = one_pass()
        assert len(rep1.bank_stats) == 2
        # deltas, not cumulative totals: both passes moved the same bytes
        assert rep1.bank_stats[1].bytes_read == 64 * 4
        assert rep2.bank_stats[1].bytes_read == 64 * 4
        assert rep1.bank_stats[0].bytes_read == 0
        assert 0 < rep1.bank_stats[1].busy_cycles <= rep1.cycles

    def test_busy_cycles_mode_independent(self):
        def slow_sink(n, ch, width):
            rem = n
            while rem:
                c = min(width, rem)
                yield Pop(ch, c)
                yield Clock(3)
                rem -= c

        stats = {}
        for mode in MODES:
            mem = DramModel(num_banks=1, interleaving=False)
            buf = mem.bind("x", np.arange(64, dtype=np.float32))
            eng = Engine(memory=mem, mode=mode)
            ch = eng.channel("c", 8)
            eng.add_kernel("rd", read_kernel(mem, buf, ch, 4))
            eng.add_kernel("sink", slow_sink(64, ch, 4))
            stats[mode] = eng.run().bank_stats[0].busy_cycles
        assert stats["dense"] == stats["event"] > 0

    def test_no_memory_no_bank_stats(self):
        eng = Engine()
        _small_pipeline(eng)
        assert eng.run().bank_stats == []


# ---------------------------------------------------------------------------
# Serialization round trips (satellite c)
# ---------------------------------------------------------------------------

class TestSerialization:
    def test_simreport_to_dict(self):
        eng = Engine(mode="event")
        _small_pipeline(eng)
        rep = eng.run()
        d = rep.to_dict()
        json.dumps(d)                       # JSON-able
        assert d["schema"] == SIM_REPORT_SCHEMA
        assert d["cycles"] == rep.cycles
        assert d["kernel_steps"] == rep.kernel_steps
        assert d["kernels"]["mid"]["active_cycles"] > 0
        assert d["channels"]["i"]["pushes"] == 64

    def test_appresult_round_trip(self):
        res = AppResult(np.float32(1.5), cycles=10, io_elements=7,
                        seconds=0.5, kernel_steps=30)
        d = res.to_dict()
        json.dumps(d)
        assert d["schema"] == APP_RESULT_SCHEMA
        back = AppResult.from_dict(json.loads(json.dumps(d)))
        assert back.cycles == 10 and back.kernel_steps == 30
        assert back.value == pytest.approx(1.5)

    def test_appresult_value_optional(self):
        res = AppResult(np.arange(4), 1, 2, 3.0)
        assert "value" not in res.to_dict(include_value=False)
        assert res.to_dict()["value"] == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# JsonlEventDump determinism (satellite b)
# ---------------------------------------------------------------------------

class TestJsonlEventDumpLifecycle:
    def test_schema_in_header_and_context_manager(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with JsonlEventDump(path) as dump:
            eng = Engine(mode="event")
            eng.add_observer(dump)
            _small_pipeline(eng)
            eng.run()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["ev"] == "start"
        assert lines[0]["schema"] == JSONL_EVENTS_SCHEMA
        assert lines[-1]["ev"] == "end"

    def test_flushed_after_each_run_close_idempotent(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        dump = JsonlEventDump(path)
        eng = Engine(mode="event")
        eng.add_observer(dump)
        _small_pipeline(eng)
        eng.run()
        # flushed at run end: readable before close
        assert path.read_text().splitlines()
        dump.close()
        dump.close()                        # idempotent

    def test_two_runs_one_stream(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with JsonlEventDump(path) as dump:
            for _ in range(2):
                eng = Engine(mode="event")
                eng.add_observer(dump)
                _small_pipeline(eng)
                eng.run()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert sum(1 for l in lines if l["ev"] == "start") == 2
        assert sum(1 for l in lines if l["ev"] == "end") == 2


# ---------------------------------------------------------------------------
# Drift report (satellite d)
# ---------------------------------------------------------------------------

class TestDrift:
    def test_flags_intentionally_mismodeled_kernel(self):
        """Run the untransformed-style kernel (achieved ii >> 1) but model
        it with the ii=1 closed form: drift must flag the cycles entry."""
        def strided(n, ch, stride):
            for i in range(n):
                yield Push(ch, (float(i),), 1)
                yield Clock(stride - 1)

        eng = Engine(mode="event")
        ch = eng.channel("c", 8)
        n = 128
        eng.add_kernel("slow", strided(n, ch, 8))
        eng.add_kernel("sink", sink_kernel(ch, n, 1))
        rep = eng.run()
        modeled = n                        # the (wrong) ii=1 assumption
        entries = entries_for("mismodeled", rep.cycles, n, modeled, n)
        report = DriftReport(entries)
        flagged = report.flagged()
        assert [e.quantity for e in flagged] == ["cycles"]
        assert "FLAGGED" in report.table()

    def test_axpydot_probe_unflagged(self):
        from repro.telemetry.drift import drift_axpydot
        entries = drift_axpydot(n=1024, width=16)
        assert all(not e.flagged() for e in entries), entries

    def test_rel_error_edge_cases(self):
        assert DriftEntry("a", "cycles", 0, 0).rel_error == 0.0
        assert DriftEntry("a", "cycles", 0, 5).rel_error == float("inf")
        assert DriftEntry("a", "cycles", 100, 80).rel_error == \
            pytest.approx(0.2)

    def test_report_to_dict(self):
        rep = DriftReport([DriftEntry("a", "cycles", 100, 10)])
        d = rep.to_dict()
        assert d["schema"] == "repro.drift/1"
        assert len(d["flagged"]) == 1
        json.dumps(d)


# ---------------------------------------------------------------------------
# CLI (the tentpole's user surface)
# ---------------------------------------------------------------------------

class TestCli:
    def test_end_to_end_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        rc = telemetry_main(["axpydot", "--n", "256", "--width", "8",
                             "--trace", str(trace),
                             "--metrics", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "axpydot:" in out

        tdoc = json.loads(trace.read_text())
        assert tdoc["otherData"]["schema"] == CHROME_TRACE_SCHEMA
        assert any(e["ph"] == "B" for e in tdoc["traceEvents"])

        mdoc = json.loads(metrics.read_text())
        assert mdoc["schema"] == "repro.telemetry/1"
        assert mdoc["result"]["schema"] == APP_RESULT_SCHEMA
        assert mdoc["metrics"]["schema"] == METRICS_SCHEMA
        # the metrics/runs/result accounting agrees with itself
        run = mdoc["runs"][0]
        sim = next(m for m in mdoc["metrics"]["metrics"]
                   if m["name"] == "sim.cycles")
        assert sum(s["value"] for s in sim["series"]) == run["cycles"]
        assert mdoc["result"]["cycles"] == run["cycles"]

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            telemetry_main(["nope"])
