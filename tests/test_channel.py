"""Unit tests for the bounded FIFO channel."""

import pytest

from repro.fpga.channel import Channel, ChannelError


class TestBasics:
    def test_push_pop_fifo_order(self):
        ch = Channel("c", depth=8)
        ch.push([1, 2, 3], ready_cycle=0)
        ch.mature(0)
        assert ch.pop(3) == [1, 2, 3]

    def test_pop_empty_raises(self):
        ch = Channel("c", depth=4)
        with pytest.raises(ChannelError):
            ch.pop()

    def test_peek_does_not_consume(self):
        ch = Channel("c", depth=4)
        ch.push([7], 0)
        ch.mature(0)
        assert ch.peek() == 7
        assert ch.occupancy == 1

    def test_peek_empty_raises(self):
        ch = Channel("c", depth=4)
        with pytest.raises(ChannelError):
            ch.peek()

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            Channel("c", depth=0)


class TestCapacity:
    def test_push_beyond_depth_raises(self):
        ch = Channel("c", depth=2)
        ch.push([1, 2], 0)
        with pytest.raises(ChannelError):
            ch.push([3], 0)

    def test_headroom_allows_pipeline_in_flight(self):
        ch = Channel("c", depth=2)
        ch.push([1, 2], 0)
        assert ch.can_push(1, headroom=1)
        ch.push([3], 5, headroom=1)
        assert ch.in_flight == 3

    def test_space_accounting(self):
        ch = Channel("c", depth=4)
        ch.push([1], 0)
        assert ch.space() == 3
        ch.mature(0)
        assert ch.space() == 3
        ch.pop()
        assert ch.space() == 4


class TestLatencyStaging:
    def test_values_invisible_until_ready_cycle(self):
        ch = Channel("c", depth=8)
        ch.push([1], ready_cycle=5)
        ch.mature(4)
        assert not ch.can_pop()
        ch.mature(5)
        assert ch.pop() == [1]

    def test_mature_respects_fifo_space(self):
        ch = Channel("c", depth=2)
        ch.push([1, 2], 0)
        ch.mature(0)
        ch.push([3, 4], 0, headroom=2)
        assert ch.mature(0) == 0          # FIFO full: nothing enters
        ch.pop()
        assert ch.mature(0) == 1          # one slot freed, one value enters
        assert ch.in_flight == 1

    def test_mature_preserves_order(self):
        ch = Channel("c", depth=8)
        ch.push([1], 2)
        ch.push([2], 1)  # staged later but "ready" earlier
        ch.mature(2)
        # order of staging is preserved: the queue is a pipeline
        assert ch.pop(2) == [1, 2]

    def test_can_mature_later(self):
        ch = Channel("c", depth=1)
        ch.push([1], 10)
        assert ch.can_mature_later()
        ch.mature(10)
        ch.push([2], 11, headroom=5)
        assert not ch.can_mature_later()   # FIFO full
        ch.pop()
        assert ch.can_mature_later()


class TestStats:
    def test_counters(self):
        ch = Channel("c", depth=8)
        ch.push([1, 2, 3], 0)
        ch.mature(0)
        ch.pop(2)
        assert ch.stats.pushes == 3
        assert ch.stats.pops == 2
        assert ch.stats.max_occupancy == 3

    def test_drained(self):
        ch = Channel("c", depth=8)
        assert ch.drained
        ch.push([1], 0)
        assert not ch.drained
        ch.mature(0)
        ch.pop()
        assert ch.drained
