"""Tests for the correlated run ledger (``repro.telemetry.ledger``).

Unit coverage of the record schema (lossless round-trip, including a
hypothesis sweep), the size-rotated JSONL sink, the query/aggregate
layer and the fleet report — then the acceptance scenario from the
observability PR: one run_id correlating a faulted + recovered
certified host call across the RunRecord, the recovery report and the
Chrome trace, with cache deltas and the predicted band populated.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.faults import FaultPlan, MemoryFault, inject
from repro.fpga import DeadlockError
from repro.fpga.errors import EccError, KernelCrashError, LivelockError
from repro.host.api import Fblas, FblasContext
from repro.telemetry.ledger import (RUN_RECORD_SCHEMA, JsonlSink, LedgerQuery,
                                    RunLedger, RunRecord, classify_outcome,
                                    correlate, current_run_id, fleet_report,
                                    mint_run_id, read_ledger, run_scope)


# -- ids and correlation -----------------------------------------------------

class TestCorrelation:
    def test_ids_are_unique_and_monotonic(self):
        a, b = mint_run_id(), mint_run_id()
        assert a != b
        assert a.startswith("r-") and b.startswith("r-")
        assert int(a.rsplit("-", 1)[1]) < int(b.rsplit("-", 1)[1])

    def test_current_is_none_outside_any_scope(self):
        assert current_run_id() is None

    def test_correlate_nests_like_a_stack(self):
        with correlate("r-outer") as rid:
            assert rid == "r-outer"
            assert current_run_id() == "r-outer"
            with correlate("r-inner"):
                assert current_run_id() == "r-inner"
            assert current_run_id() == "r-outer"
        assert current_run_id() is None

    def test_correlate_pops_on_exception(self):
        with pytest.raises(RuntimeError):
            with correlate("r-x"):
                raise RuntimeError("boom")
        assert current_run_id() is None


class TestClassifyOutcome:
    @pytest.mark.parametrize("exc,label", [
        (DeadlockError(5, {}), "deadlock"),
        (LivelockError(5, {}), "livelock"),
        (KernelCrashError("k", 3), "transient_fault"),
        (EccError("buf", 0, 2), "transient_fault"),
        (ValueError("nope"), "error"),
    ])
    def test_known_families(self, exc, label):
        assert classify_outcome(exc) == label

    def test_analysis_error_is_rejected(self):
        # Matched by class *name* over the MRO — build a stand-in rather
        # than a full diagnostics result.
        class AnalysisError(Exception):
            pass
        assert classify_outcome(AnalysisError()) == "rejected"


# -- the record --------------------------------------------------------------

def _full_record() -> RunRecord:
    return RunRecord(
        run_id="r-abc-000001", kind="host.call", parent_id=None,
        label="dot", engine_mode="certified", cycles=98, stall_cycles=12,
        kernel_steps=40, wall_seconds=0.002, plan_key="pk123",
        mdag_fingerprint="fp456", plan_cache={"hits": 1, "misses": 0},
        schedule_cache={"hits": 0, "misses": 1}, predicted_cycles=(4, 159),
        in_band=True, bulk={"windows": 2, "bulk_cycles": 64, "probes": 0,
                            "cooldowns": 0},
        faults_injected=1, retries=1, demotions=0,
        recovery={"mode": "certified", "retries": 1},
        outcome="ok", error=None, extra={"seed": 7})


class TestRunRecord:
    def test_round_trip_is_lossless(self):
        rec = _full_record()
        clone = RunRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert clone == rec

    def test_schema_tag_leads_the_document(self):
        doc = _full_record().to_dict()
        assert doc["schema"] == RUN_RECORD_SCHEMA

    def test_from_dict_rejects_foreign_schema(self):
        doc = _full_record().to_dict()
        doc["schema"] = "someone.else/9"
        with pytest.raises(ValueError, match="schema"):
            RunRecord.from_dict(doc)

    def test_band_check_sets_in_band(self):
        rec = RunRecord(run_id="r", kind="engine.run",
                        predicted_cycles=(10, 20), cycles=15)
        rec.band_check()
        assert rec.in_band is True
        rec.cycles = 25
        rec.band_check()
        assert rec.in_band is False

    def test_band_excess_measures_overshoot(self):
        rec = RunRecord(run_id="r", kind="engine.run",
                        predicted_cycles=(10, 100), cycles=130)
        assert rec.band_excess() == pytest.approx(0.3)
        rec.cycles = 90
        assert rec.band_excess() == 0.0
        rec.predicted_cycles = None
        assert rec.band_excess() is None

    @settings(max_examples=50, deadline=None)
    @given(
        cycles=st.integers(min_value=0, max_value=10**9),
        stalls=st.integers(min_value=0, max_value=10**6),
        wall=st.floats(min_value=0, max_value=1e3, allow_nan=False),
        outcome=st.sampled_from(["ok", "deadlock", "transient_fault",
                                 "error"]),
        band=st.one_of(st.none(), st.tuples(
            st.integers(min_value=0, max_value=10**6),
            st.integers(min_value=0, max_value=10**6))),
        label=st.one_of(st.none(), st.text(max_size=20)),
        extra=st.dictionaries(st.text(max_size=8),
                              st.integers(), max_size=3),
    )
    def test_round_trip_property(self, cycles, stalls, wall, outcome,
                                 band, label, extra):
        rec = RunRecord(run_id=mint_run_id(), kind="engine.run",
                        label=label, cycles=cycles, stall_cycles=stalls,
                        wall_seconds=wall, predicted_cycles=band,
                        outcome=outcome, extra=extra)
        payload = json.dumps(rec.to_dict(), sort_keys=True)
        assert RunRecord.from_dict(json.loads(payload)) == rec


# -- storage -----------------------------------------------------------------

class TestJsonlSink:
    def test_appends_parseable_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        sink = JsonlSink(str(path))
        sink.write(_full_record())
        sink.write(_full_record())
        rows = [json.loads(x) for x in path.read_text().splitlines()]
        assert len(rows) == 2
        assert all(r["schema"] == RUN_RECORD_SCHEMA for r in rows)

    def test_rotates_at_max_bytes(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        sink = JsonlSink(str(path), max_bytes=2000)
        for _ in range(20):
            sink.write(_full_record())
        assert sink.rotations >= 1
        assert (tmp_path / "ledger.jsonl.1").exists()
        # both generations stay parseable
        assert read_ledger(str(path))
        assert read_ledger(str(path) + ".1")

    def test_read_ledger_skips_blanks_and_flags_garbage(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        good = json.dumps(_full_record().to_dict())
        path.write_text(good + "\n\n" + good + "\n")
        assert len(read_ledger(str(path))) == 2
        path.write_text(good + "\nnot json\n")
        with pytest.raises(ValueError, match=":2:"):
            read_ledger(str(path))


class TestRunLedger:
    def test_ring_is_bounded_but_counts_everything(self):
        led = RunLedger(capacity=3)
        for i in range(5):
            led.append(RunRecord(run_id=f"r-{i}", kind="engine.run"))
        assert len(led) == 3
        assert led.appended == 5
        assert [r.run_id for r in led] == ["r-2", "r-3", "r-4"]

    def test_find_and_children(self):
        led = RunLedger()
        led.append(RunRecord(run_id="r-p", kind="host.call"))
        led.append(RunRecord(run_id="r-c1", kind="engine.run",
                             parent_id="r-p"))
        led.append(RunRecord(run_id="r-c2", kind="engine.run",
                             parent_id="r-p"))
        assert led.find("r-p").kind == "host.call"
        assert led.find("r-nope") is None
        assert [r.run_id for r in led.children("r-p")] == ["r-c1", "r-c2"]

    def test_append_writes_through_to_sink(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        led = RunLedger(path=str(path))
        led.append(_full_record())
        assert read_ledger(str(path))[0].run_id == "r-abc-000001"

    def test_merge_rolls_up_child_facts(self):
        led = RunLedger()
        parent = RunRecord(run_id="r-p", kind="host.call", cycles=100)
        led.append(RunRecord(run_id="r-c1", kind="engine.run",
                             parent_id="r-p", cycles=60, stall_cycles=5,
                             kernel_steps=30, faults_injected=1,
                             predicted_cycles=(10, 70)))
        led.append(RunRecord(run_id="r-c2", kind="engine.run",
                             parent_id="r-p", cycles=40, stall_cycles=3,
                             kernel_steps=20, predicted_cycles=(5, 50)))
        led.merge_children_into(parent)
        assert parent.stall_cycles == 8
        assert parent.kernel_steps == 50
        assert parent.faults_injected == 1
        assert parent.predicted_cycles == (15, 120)
        assert parent.in_band is True

    def test_merge_ignores_failed_attempts_for_the_band(self):
        # A crashed-then-retried certified call has TWO banded children;
        # only the successful attempt may contribute, else the parent's
        # band doubles while its cycles reflect one attempt.
        led = RunLedger()
        parent = RunRecord(run_id="r-p", kind="host.call", cycles=95)
        led.append(RunRecord(run_id="r-c1", kind="engine.run",
                             parent_id="r-p", cycles=2,
                             predicted_cycles=(4, 159),
                             outcome="transient_fault", error="EccError"))
        led.append(RunRecord(run_id="r-c2", kind="engine.run",
                             parent_id="r-p", cycles=95,
                             predicted_cycles=(4, 159)))
        led.merge_children_into(parent)
        assert parent.predicted_cycles == (4, 159)
        assert parent.in_band is True

    def test_merge_refuses_partial_bands(self):
        led = RunLedger()
        parent = RunRecord(run_id="r-p", kind="host.call", cycles=100)
        led.append(RunRecord(run_id="r-c1", kind="engine.run",
                             parent_id="r-p", cycles=60,
                             predicted_cycles=(10, 70)))
        led.append(RunRecord(run_id="r-c2", kind="engine.run",
                             parent_id="r-p", cycles=40))   # no band
        led.merge_children_into(parent)
        assert parent.predicted_cycles is None


class TestRunScope:
    def test_success_appends_and_times(self):
        led = RunLedger()
        with run_scope(led, "host.call", label="dot") as rec:
            assert current_run_id() == rec.run_id
            rec.cycles = 42
        assert led.records() == [rec]
        assert rec.outcome == "ok"
        assert rec.wall_seconds >= 0.0

    def test_failure_is_classified_and_still_appended(self):
        led = RunLedger()
        with pytest.raises(KernelCrashError):
            with run_scope(led, "engine.run") as rec:
                raise KernelCrashError("k", 1)
        assert rec.outcome == "transient_fault"
        assert rec.error == "KernelCrashError"
        assert led.records() == [rec]
        assert current_run_id() is None

    def test_nested_scopes_set_parent(self):
        led = RunLedger()
        with run_scope(led, "host.call") as outer:
            with run_scope(led, "engine.run") as inner:
                pass
        assert inner.parent_id == outer.run_id
        assert outer.parent_id is None


# -- querying ----------------------------------------------------------------

def _query_fixture():
    recs = []
    for i, cycles in enumerate((100, 200, 300, 400, 1000)):
        recs.append(RunRecord(
            run_id=f"r-{i}", kind="engine.run", label="dot",
            engine_mode="certified", plan_key="pkA", cycles=cycles,
            predicted_cycles=(50, 350),
            schedule_cache={"hits": 1 if i else 0, "misses": 0 if i else 1}))
    recs.append(RunRecord(run_id="r-x", kind="engine.run", label="axpy",
                          engine_mode="event", plan_key="pkB", cycles=50,
                          outcome="deadlock", error="DeadlockError"))
    for r in recs:
        r.band_check()
    return recs


class TestLedgerQuery:
    def test_filter_chains(self):
        q = LedgerQuery(_query_fixture())
        assert len(q.filter(kind="engine.run")) == 6
        assert len(q.filter(plan_key="pkA", outcome="ok")) == 5
        assert len(q.filter(engine_mode="event")) == 1
        assert len(q.filter(predicate=lambda r: r.cycles > 250)) == 3

    def test_aggregate_percentiles(self):
        agg = LedgerQuery(_query_fixture()).filter(plan_key="pkA") \
            .aggregate("cycles")
        assert agg["count"] == 5
        assert agg["p50"] == 300
        assert agg["p95"] == 1000
        assert agg["max"] == 1000
        assert agg["mean"] == pytest.approx(400)

    def test_aggregate_of_nothing_is_zeroes(self):
        agg = LedgerQuery([]).aggregate("cycles")
        assert agg == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                       "max": 0.0}

    def test_hit_rate(self):
        q = LedgerQuery(_query_fixture())
        assert q.hit_rate("schedule_cache") == pytest.approx(4 / 5)
        assert q.hit_rate("plan_cache") is None

    def test_by_plan_and_outcomes(self):
        q = LedgerQuery(_query_fixture())
        groups = q.by_plan()
        assert set(groups) == {"pkA", "pkB"}
        assert len(groups["pkA"]) == 5
        assert q.outcomes() == {"deadlock": 1, "ok": 5}

    def test_regressions_threshold_and_order(self):
        q = LedgerQuery(_query_fixture())
        # band hi=350: 400 -> +14%, 1000 -> +186%
        regs = q.regressions(0.25)
        assert [(r.cycles, round(e, 2)) for r, e in regs] == [(1000, 1.86)]
        regs = q.regressions(0.1)
        assert [r.cycles for r, _ in regs] == [1000, 400]

    def test_slowest(self):
        q = LedgerQuery(_query_fixture())
        assert [r.cycles for r in q.slowest(2)] == [1000, 400]


class TestFleetReport:
    def test_renders_table_and_summary(self):
        text = fleet_report(_query_fixture(), threshold=0.25)
        assert "run ledger: 6 records" in text
        assert "engine.run: 6" in text
        assert "pkA" in text and "pkB" in text
        assert "+186%!" in text
        assert "deadlock=1" in text
        assert "1 band regression (threshold 25%)" in text

    def test_empty_set(self):
        assert "(empty)" in fleet_report([])

    def test_root_only_fault_accounting(self):
        # The parent rolls the child's fault count up; the report must
        # not sum both rows.
        parent = RunRecord(run_id="r-p", kind="host.call",
                           faults_injected=1, retries=1)
        child = RunRecord(run_id="r-c", kind="engine.run",
                          parent_id="r-p", faults_injected=1)
        text = fleet_report([parent, child])
        assert "faults injected: 1" in text
        assert "retries: 1" in text


# -- the acceptance scenario -------------------------------------------------

class TestEndToEndCorrelation:
    """One run_id joins the ledger row, the recovery report and the
    trace for a faulted + recovered certified host call."""

    @pytest.fixture()
    def faulted_session(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        plan = FaultPlan(seed=0, memory_faults=(
            MemoryFault(kind="ecc_fatal", cycle=2, buffer="buf0"),))
        with telemetry.session(ledger_path=str(path)) as tel:
            with inject(plan) as ctx:
                fb = Fblas(engine_mode="certified", width=8,
                           resilience=True)
                x = fb.copy_to_device(np.arange(8, dtype=np.float32))
                y = fb.copy_to_device(np.ones(8, dtype=np.float32))
                result = fb.dot(x, y)
        return tel, fb, ctx, result, path

    def test_result_survives_the_fault(self, faulted_session):
        _tel, _fb, ctx, result, _path = faulted_session
        assert result == pytest.approx(28.0)
        assert ctx.faults_injected == 1
        assert ctx.retries == 1

    def test_host_record_correlates_everything(self, faulted_session):
        tel, fb, _ctx, _result, _path = faulted_session
        host = tel.ledger.query().filter(kind="host.call").records[0]
        assert host.label == "dot"
        assert host.outcome == "ok"
        assert host.retries == 1
        assert host.faults_injected == 1
        # cache deltas: certificate missed on attempt 1, hit on retry
        assert host.schedule_cache == {"hits": 1, "misses": 1}
        # the certified band made it up from the successful engine run
        assert host.predicted_cycles is not None
        assert host.in_band is True
        # the recovery report carries the same correlation id
        assert fb.last_recovery is not None
        assert fb.last_recovery.to_dict()["run_id"] == host.run_id
        assert host.recovery["run_id"] == host.run_id
        assert host.recovery["recovered"] is True

    def test_engine_children_chain_to_the_host_id(self, faulted_session):
        tel, _fb, _ctx, _result, _path = faulted_session
        host = tel.ledger.query().filter(kind="host.call").records[0]
        kids = tel.ledger.children(host.run_id)
        assert len(kids) == 2
        assert [k.outcome for k in kids] == ["transient_fault", "ok"]
        assert kids[0].error == "EccError"
        assert all(k.engine_mode == "certified" for k in kids)
        ok = kids[1]
        assert ok.predicted_cycles is not None and ok.in_band is True
        assert ok.schedule_cache == {"hits": 1, "misses": 0}

    def test_trace_event_carries_the_run_id(self, faulted_session):
        tel, _fb, _ctx, _result, _path = faulted_session
        host = tel.ledger.query().filter(kind="host.call").records[0]
        events = telemetry.trace_events(tel)
        tagged = [e for e in events
                  if e.get("args", {}).get("run_id") == host.run_id]
        assert any(e["name"] == "host.dot" for e in tagged)

    def test_jsonl_round_trips_and_report_renders(self, faulted_session):
        tel, _fb, _ctx, _result, path = faulted_session
        records = read_ledger(str(path))
        assert {r.run_id for r in records} == \
            {r.run_id for r in tel.ledger}
        text = fleet_report(records)
        assert "run ledger: 3 records" in text
        assert "faults injected: 1   retries: 1" in text
        assert "transient_fault=1" in text

    def test_plan_cache_counters_exported(self, faulted_session):
        tel, _fb, _ctx, _result, _path = faulted_session
        metrics = {m["name"]: m for m in tel.registry.to_dict()["metrics"]}
        cache = metrics.get("plan_cache.requests")
        assert cache is not None
        series = {tuple(sorted(s["labels"].items())): s["value"]
                  for s in cache["series"]}
        key_miss = (("cache", "host.schedule"), ("result", "miss"))
        key_hit = (("cache", "host.schedule"), ("result", "hit"))
        assert series[key_miss] == 1
        assert series[key_hit] == 1


class TestExecutorNesting:
    """execute_plan mints its own record between host and engine."""

    def _build(self, mem, n=32, width=4, alpha=0.7):
        from repro.blas import level1
        from repro.fpga.resources import level1_latency
        from repro.streaming import (BoundMDAG, ComputeBinding, ReadBinding,
                                     WriteBinding, scalar_stream,
                                     vector_stream)
        rng = np.random.default_rng(3)
        w, v, u = (rng.standard_normal(n).astype(np.float32)
                   for _ in range(3))
        g = BoundMDAG()
        g.add_interface("read_w")
        g.add_interface("read_v")
        g.add_interface("read_u")
        g.add_module("axpy")
        g.add_module("dot")
        g.add_interface("write_beta")
        sig = vector_stream(n)
        g.connect("read_w", "axpy", sig, sig, dst_port="w")
        g.connect("read_v", "axpy", sig, sig, dst_port="v")
        g.connect("axpy", "dot", sig, sig, src_port="z", dst_port="z")
        g.connect("read_u", "dot", sig, sig, dst_port="u")
        g.connect("dot", "write_beta", scalar_stream(), scalar_stream(),
                  src_port="res", dst_port="res")
        beta = mem.allocate("beta_out", 1)
        g.bind("read_w", ReadBinding(mem.bind("w_buf", w), width))
        g.bind("read_v", ReadBinding(mem.bind("v_buf", v), width))
        g.bind("read_u", ReadBinding(mem.bind("u_buf", u), width))
        g.bind("axpy", ComputeBinding(
            lambda ins, outs: level1.axpy_kernel(
                n, -alpha, ins["v"], ins["w"], outs["z"], width),
            latency=level1_latency("map", width)))
        g.bind("dot", ComputeBinding(
            lambda ins, outs: level1.dot_kernel(
                n, ins["z"], ins["u"], outs["res"], width),
            latency=level1_latency("map_reduce", width)))
        g.bind("write_beta", WriteBinding(beta, 1))
        return g

    def test_execute_plan_record_nests_engine_runs(self):
        from repro.fpga.memory import DramModel
        from repro.streaming import execute_plan
        with telemetry.session() as tel:
            mem = DramModel()
            execute_plan(self._build(mem), mem)
        q = tel.ledger.query()
        plans = q.filter(kind="execute_plan").records
        assert len(plans) == 1
        plan = plans[0]
        assert plan.outcome == "ok"
        assert plan.plan_key, "expected the structural plan key"
        assert plan.mdag_fingerprint, "expected the MDAG fingerprint"
        kids = tel.ledger.children(plan.run_id)
        assert kids and all(k.kind == "engine.run" for k in kids)
        assert plan.cycles == sum(k.cycles for k in kids)

    def test_plan_cache_hit_recorded_on_the_second_call(self):
        from repro.fpga.memory import DramModel
        from repro.plan import PlanCache
        from repro.streaming import execute_plan
        cache = PlanCache(name="test.plan")
        with telemetry.session() as tel:
            mem = DramModel()
            g = self._build(mem)
            execute_plan(g, mem, plan_cache=cache)
            execute_plan(g, mem, plan_cache=cache)
        plans = tel.ledger.query().filter(kind="execute_plan").records
        assert plans[0].plan_cache == {"hits": 0, "misses": 1}
        assert plans[1].plan_cache == {"hits": 1, "misses": 0}
        assert plans[0].mdag_fingerprint == plans[1].mdag_fingerprint
        # ... and the labelled counter saw both lookups
        metrics = {m["name"]: m for m in tel.registry.to_dict()["metrics"]}
        series = {tuple(sorted(s["labels"].items())): s["value"]
                  for s in metrics["plan_cache.requests"]["series"]}
        assert series[(("cache", "test.plan"), ("result", "miss"))] == 1
        assert series[(("cache", "test.plan"), ("result", "hit"))] == 1


class TestHangCorrelation:
    def test_hang_report_carries_the_run_id(self):
        from repro.apps.atax import atax_streaming
        ctx = FblasContext()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8)).astype(np.float32)
        x = rng.standard_normal(8).astype(np.float32)
        with telemetry.session() as tel:
            with pytest.raises(DeadlockError) as info:
                atax_streaming(ctx, ctx.copy_to_device(a),
                               ctx.copy_to_device(x),
                               tile=4, width=4, channel_depth=2)
        report = info.value.report
        assert report.run_id is not None
        assert f"[run {report.run_id}]" in report.render_text()
        assert report.to_dict()["run_id"] == report.run_id
        # ... and the failed request is in the ledger under that id
        rec = tel.ledger.find(report.run_id)
        assert rec is not None
        assert rec.outcome == "deadlock"
        assert rec.error == "DeadlockError"

    def test_hang_report_has_no_id_outside_a_session(self):
        from repro.apps.atax import atax_streaming
        ctx = FblasContext()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8)).astype(np.float32)
        x = rng.standard_normal(8).astype(np.float32)
        with pytest.raises(DeadlockError) as info:
            atax_streaming(ctx, ctx.copy_to_device(a),
                           ctx.copy_to_device(x),
                           tile=4, width=4, channel_depth=2)
        assert info.value.report.run_id is None


class TestCampaignCorrelation:
    def test_trial_rows_carry_fresh_run_ids(self):
        from repro.faults.campaign import run_campaign
        doc = run_campaign(seed=5, budget=3, apps=("atax",))
        ids = [row["run_id"] for row in doc["trials"]]
        assert len(set(ids)) == 3
        assert all(i.startswith("r-") for i in ids)
