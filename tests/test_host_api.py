"""Host API tests: BLAS semantics, records, async, modes, dtype guards."""

import numpy as np
import pytest

from repro.blas import reference
from repro.fpga.device import ARRIA10, STRATIX10
from repro.host import Fblas, FblasContext, Handle

RNG = np.random.default_rng(31)


def f32(a):
    return np.asarray(a, dtype=np.float32)


def f64(a):
    return np.asarray(a, dtype=np.float64)


@pytest.fixture
def fb():
    return Fblas(width=4, tile=8)


@pytest.fixture
def fb_model():
    return Fblas(mode="model", width=16)


class TestContext:
    def test_copy_roundtrip(self, fb):
        x = f32(RNG.normal(size=16))
        buf = fb.copy_to_device(x)
        np.testing.assert_array_equal(fb.copy_from_device(buf), x)

    def test_rejects_non_float(self, fb):
        with pytest.raises(TypeError):
            fb.copy_to_device(np.arange(4))

    def test_device_banks_match_catalog(self):
        ctx = FblasContext(device=ARRIA10)
        assert ctx.mem.num_banks == 2
        ctx = FblasContext(device=STRATIX10)
        assert ctx.mem.num_banks == 4

    def test_interleaving_flag(self):
        ctx = FblasContext(interleaving=True)
        assert ctx.copy_to_device(f32([1.0])).bank is None

    def test_last_record_requires_a_call(self):
        with pytest.raises(RuntimeError):
            FblasContext().last_record

    def test_invalid_defaults(self):
        with pytest.raises(ValueError):
            FblasContext(default_width=0)
        with pytest.raises(ValueError):
            Fblas(mode="quantum")


class TestLevel1Calls:
    def test_scal_updates_device_buffer(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=20)))
        x0 = np.array(x.data)
        out = fb.scal(2.0, x)
        np.testing.assert_allclose(out, 2.0 * x0, rtol=1e-6)
        np.testing.assert_allclose(x.data, 2.0 * x0, rtol=1e-6)

    def test_axpy(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=24)))
        y = fb.copy_to_device(f32(RNG.normal(size=24)))
        x0, y0 = np.array(x.data), np.array(y.data)
        out = fb.axpy(0.5, x, y)
        np.testing.assert_allclose(out, 0.5 * x0 + y0, rtol=1e-5)

    def test_dot(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=32)))
        y = fb.copy_to_device(f32(RNG.normal(size=32)))
        got = fb.dot(x, y)
        assert got == pytest.approx(float(np.dot(x.data, y.data)), rel=1e-4)

    def test_swap(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        y = fb.copy_to_device(f32(RNG.normal(size=8)))
        x0, y0 = np.array(x.data), np.array(y.data)
        fb.swap(x, y)
        np.testing.assert_allclose(x.data, y0)
        np.testing.assert_allclose(y.data, x0)

    def test_rot(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=12)))
        y = fb.copy_to_device(f32(RNG.normal(size=12)))
        x0, y0 = np.array(x.data), np.array(y.data)
        c, s = float(np.cos(0.2)), float(np.sin(0.2))
        fb.rot(x, y, c, s)
        ex, ey = reference.rot(x0, y0, c, s)
        np.testing.assert_allclose(x.data, ex, rtol=1e-5)
        np.testing.assert_allclose(y.data, ey, rtol=1e-5)

    def test_reductions(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=40)))
        assert fb.nrm2(x) == pytest.approx(
            float(np.linalg.norm(x.data)), rel=1e-4)
        assert fb.asum(x) == pytest.approx(
            float(np.abs(x.data).sum()), rel=1e-4)
        assert fb.iamax(x) == int(np.argmax(np.abs(x.data)))

    def test_sdsdot(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=64)))
        y = fb.copy_to_device(f32(RNG.normal(size=64)))
        want = float(reference.sdsdot(2.0, x.data, y.data))
        assert fb.sdsdot(2.0, x, y) == pytest.approx(want, rel=1e-5)

    def test_rotg_rotmg(self, fb):
        r, z, c, s = fb.rotg(3.0, 4.0)
        assert c * 3.0 + s * 4.0 == pytest.approx(r)
        d1, d2, x1, param = fb.rotmg(1.0, 1.0, 1.0, 1.0)
        assert len(param) == 5

    def test_length_mismatch(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        y = fb.copy_to_device(f32(RNG.normal(size=9)))
        with pytest.raises(ValueError):
            fb.dot(x, y)

    def test_mixed_precision_rejected(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        y = fb.copy_to_device(f64(RNG.normal(size=8)))
        with pytest.raises(TypeError):
            fb.axpy(1.0, x, y)


class TestLevel2Calls:
    def test_gemv(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(8, 8))))
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        y = fb.copy_to_device(f32(RNG.normal(size=8)))
        y0 = np.array(y.data)
        out = fb.gemv(1.5, a, x, 0.5, y)
        np.testing.assert_allclose(
            out, 1.5 * (a.data @ x.data) + 0.5 * y0, rtol=1e-3, atol=1e-4)

    def test_gemv_transposed(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(8, 12))))
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        y = fb.copy_to_device(f32(RNG.normal(size=12)))
        y0 = np.array(y.data)
        out = fb.gemv(1.0, a, x, 1.0, y, trans=True)
        np.testing.assert_allclose(out, a.data.T @ x.data + y0,
                                   rtol=1e-3, atol=1e-4)

    def test_gemv_cols_scheme(self, fb):
        """The tiles-by-cols specialization (y replayed) — same result,
        different I/O complexity (Sec. III-B)."""
        a = fb.copy_to_device(f32(RNG.normal(size=(8, 16))))
        x = fb.copy_to_device(f32(RNG.normal(size=16)))
        y = fb.copy_to_device(f32(RNG.normal(size=8)))
        y0 = np.array(y.data)
        out = fb.gemv(1.2, a, x, 0.4, y, scheme="cols")
        np.testing.assert_allclose(
            out, 1.2 * (a.data @ x.data) + 0.4 * y0, rtol=1e-3, atol=1e-4)

    def test_gemv_schemes_have_different_io(self, fb):
        """rows replays x; cols replays y — the recorded I/O matches the
        closed forms for each."""
        from repro.models import iomodel
        n, m = 16, 16
        a_host = f32(RNG.normal(size=(n, m)))
        for scheme, formula in (
                ("rows", lambda: iomodel.gemv_io_tiles_by_rows(n, m, 8)),
                ("cols", lambda: iomodel.gemv_io_tiles_by_cols(n, m, 8))):
            fb2 = Fblas(width=4, tile=8)
            a = fb2.copy_to_device(a_host)
            x = fb2.copy_to_device(f32(RNG.normal(size=m)))
            y = fb2.copy_to_device(f32(RNG.normal(size=n)))
            fb2.gemv(1.0, a, x, 0.0, y, scheme=scheme)
            assert fb2.records[-1].io_elements == formula(), scheme

    def test_gemv_bad_scheme(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(8, 8))))
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        y = fb.copy_to_device(f32(RNG.normal(size=8)))
        with pytest.raises(ValueError):
            fb.gemv(1.0, a, x, 0.0, y, scheme="diagonal")
        with pytest.raises(ValueError):
            fb.gemv(1.0, a, x, 0.0, y, scheme="cols", trans=True)

    def test_gemv_shape_check(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(8, 8))))
        x = fb.copy_to_device(f32(RNG.normal(size=9)))
        y = fb.copy_to_device(f32(RNG.normal(size=8)))
        with pytest.raises(ValueError):
            fb.gemv(1.0, a, x, 0.0, y)

    def test_ger(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(8, 8))))
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        y = fb.copy_to_device(f32(RNG.normal(size=8)))
        a0 = np.array(a.data)
        out = fb.ger(0.9, x, y, a)
        np.testing.assert_allclose(
            out, a0 + 0.9 * np.outer(x.data, y.data), rtol=1e-4, atol=1e-5)

    def test_syr(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(8, 8))))
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        a0 = np.array(a.data)
        out = fb.syr(1.1, x, a)
        np.testing.assert_allclose(
            out, a0 + 1.1 * np.outer(x.data, x.data), rtol=1e-4, atol=1e-5)

    def test_syr2(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(4, 4))))
        x = fb.copy_to_device(f32(RNG.normal(size=4)))
        y = fb.copy_to_device(f32(RNG.normal(size=4)))
        a0 = np.array(a.data)
        out = fb.syr2(0.5, x, y, a)
        want = a0 + 0.5 * (np.outer(x.data, y.data)
                           + np.outer(y.data, x.data))
        np.testing.assert_allclose(out, want, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("lower", [True, False])
    def test_trsv(self, fb, lower):
        n = 8
        raw = f32(RNG.normal(size=(n, n))) + n * np.eye(n, dtype=np.float32)
        t = np.tril(raw) if lower else np.triu(raw)
        a = fb.copy_to_device(t)
        b = fb.copy_to_device(f32(RNG.normal(size=n)))
        b0 = np.array(b.data)
        x = fb.trsv(a, b, lower=lower)
        np.testing.assert_allclose(t @ x, b0, rtol=1e-3, atol=1e-3)


class TestLevel3Calls:
    def test_gemm_systolic(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(8, 8))))
        b = fb.copy_to_device(f32(RNG.normal(size=(8, 8))))
        c = fb.copy_to_device(f32(RNG.normal(size=(8, 8))))
        c0 = np.array(c.data)
        out = fb.gemm(1.2, a, b, 0.3, c)
        np.testing.assert_allclose(out, 1.2 * (a.data @ b.data) + 0.3 * c0,
                                   rtol=1e-3, atol=1e-3)

    def test_gemm_tiled_streaming(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(4, 4))))
        b = fb.copy_to_device(f32(RNG.normal(size=(4, 4))))
        c = fb.copy_to_device(np.zeros((4, 4), dtype=np.float32))
        out = fb.gemm(1.0, a, b, 0.0, c, impl="tiled")
        np.testing.assert_allclose(out, a.data @ b.data,
                                   rtol=1e-3, atol=1e-3)

    def test_gemm_bad_impl(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(4, 4))))
        with pytest.raises(ValueError):
            fb.gemm(1.0, a, a, 0.0, a, impl="magic")

    def test_syrk(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(4, 4))))
        c = fb.copy_to_device(f32(RNG.normal(size=(4, 4))))
        c0 = np.array(c.data)
        out = fb.syrk(1.0, a, 0.5, c)
        np.testing.assert_allclose(out, a.data @ np.array(a.data).T * 1.0
                                   + 0.5 * c0, rtol=1e-3, atol=1e-3)

    def test_syr2k_model_backed(self, fb):
        a = fb.copy_to_device(f32(RNG.normal(size=(4, 4))))
        b = fb.copy_to_device(f32(RNG.normal(size=(4, 4))))
        c = fb.copy_to_device(np.zeros((4, 4), dtype=np.float32))
        out = fb.syr2k(1.0, a, b, 0.0, c)
        want = a.data @ np.array(b.data).T + b.data @ np.array(a.data).T
        np.testing.assert_allclose(out, want, rtol=1e-3, atol=1e-3)

    def test_trsm(self, fb):
        n, m = 4, 4
        raw = f32(RNG.normal(size=(n, n))) + n * np.eye(n, dtype=np.float32)
        t = np.tril(raw)
        a = fb.copy_to_device(t)
        b = fb.copy_to_device(f32(RNG.normal(size=(n, m))))
        b0 = np.array(b.data)
        x = fb.trsm(1.0, a, b)
        np.testing.assert_allclose(t @ x, b0, rtol=1e-3, atol=1e-3)

    def test_batched_gemm(self, fb):
        size, nb = 4, 5
        a = fb.copy_to_device(f32(RNG.normal(size=(nb, size, size))))
        b = fb.copy_to_device(f32(RNG.normal(size=(nb, size, size))))
        c = fb.copy_to_device(f32(RNG.normal(size=(nb, size, size))))
        a0 = np.array(a.data)
        b0 = np.array(b.data)
        c0 = np.array(c.data)
        out = fb.batched_gemm(size, a, b, c)
        for i in range(nb):
            np.testing.assert_allclose(out[i], a0[i] @ b0[i] + c0[i],
                                       rtol=1e-3, atol=1e-3)

    def test_batched_trsm(self, fb):
        size, nb = 4, 4
        mats = np.stack([np.tril(f32(RNG.normal(size=(size, size))))
                         + size * np.eye(size, dtype=np.float32)
                         for _ in range(nb)])
        a = fb.copy_to_device(mats)
        b = fb.copy_to_device(f32(RNG.normal(size=(nb, size, size))))
        b0 = np.array(b.data)
        out = fb.batched_trsm(size, a, b)
        for i in range(nb):
            np.testing.assert_allclose(mats[i] @ out[i], b0[i],
                                       rtol=1e-3, atol=1e-3)


class TestModes:
    def test_model_matches_simulate(self):
        """The two execution modes agree on results."""
        x_host = f32(RNG.normal(size=32))
        y_host = f32(RNG.normal(size=32))
        sim = Fblas(width=4)
        mod = Fblas(mode="model", width=4)
        xs, ys = sim.copy_to_device(x_host), sim.copy_to_device(y_host)
        xm, ym = mod.copy_to_device(x_host), mod.copy_to_device(y_host)
        assert sim.dot(xs, ys) == pytest.approx(mod.dot(xm, ym), rel=1e-5)

    def test_model_cycles_close_to_simulated_when_not_bandwidth_bound(self):
        """Below the optimal width the C = L + N/W model is exact."""
        x_host = f32(RNG.normal(size=4096))
        y_host = f32(RNG.normal(size=4096))
        sim = Fblas(width=8)           # within one bank's floats/cycle
        mod = Fblas(mode="model", width=8)
        sim.dot(sim.copy_to_device(x_host), sim.copy_to_device(y_host))
        mod.dot(mod.copy_to_device(x_host), mod.copy_to_device(y_host))
        c_sim = sim.records[-1].cycles
        c_mod = mod.records[-1].cycles
        assert abs(c_sim - c_mod) / c_mod < 0.15

    def test_overprovisioned_width_is_bandwidth_bound(self):
        """Past the optimal width W = B/(S*F) the simulator shows the
        module starving on DRAM (Sec. IV-B) — extra lanes buy nothing."""
        x_host = f32(RNG.normal(size=4096))
        y_host = f32(RNG.normal(size=4096))
        cycles = {}
        for w in (16, 32):
            fb2 = Fblas(width=w)
            fb2.dot(fb2.copy_to_device(x_host), fb2.copy_to_device(y_host))
            cycles[w] = fb2.records[-1].cycles
        # doubling an already-overprovisioned width changes almost nothing
        assert cycles[32] > 0.85 * cycles[16]

    def test_records_accumulate(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        fb.scal(1.0, x)
        fb.nrm2(x)
        assert [r.routine for r in fb.records] == ["scal", "nrm2"]
        assert fb.context.last_record.routine == "nrm2"
        assert fb.context.total_seconds() > 0

    def test_record_fields(self, fb_model):
        x = fb_model.copy_to_device(f32(RNG.normal(size=1024)))
        fb_model.scal(3.0, x)
        rec = fb_model.records[-1]
        assert rec.mode == "model"
        assert rec.io_elements == 2048
        assert rec.flops == 1024
        assert rec.gflops > 0
        assert rec.power_watts > 50


class TestAsync:
    def test_handle_defers_execution(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=16)))
        y = fb.copy_to_device(f32(RNG.normal(size=16)))
        h = fb.dot(x, y, async_=True)
        assert isinstance(h, Handle)
        assert not h.done
        assert len(fb.records) == 0        # nothing executed yet
        got = h.wait()
        assert h.done
        assert got == pytest.approx(float(np.dot(x.data, y.data)), rel=1e-4)

    def test_finish_drains_queue(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=16)))
        h1 = fb.scal(2.0, x, async_=True)
        h2 = fb.nrm2(x, async_=True)
        fb.finish()
        assert h1.done and h2.done
        # scal ran before nrm2, so the norm saw the scaled vector
        assert [r.routine for r in fb.records] == ["scal", "nrm2"]


class TestPrefixedAliases:
    def test_sdot_ddot(self):
        fb = Fblas(width=4)
        xs = fb.copy_to_device(f32(RNG.normal(size=16)))
        ys = fb.copy_to_device(f32(RNG.normal(size=16)))
        xd = fb.copy_to_device(f64(RNG.normal(size=16)))
        yd = fb.copy_to_device(f64(RNG.normal(size=16)))
        assert fb.sdot(xs, ys) == pytest.approx(
            float(np.dot(xs.data, ys.data)), rel=1e-4)
        assert fb.ddot(xd, yd) == pytest.approx(
            float(np.dot(xd.data, yd.data)), rel=1e-10)

    def test_wrong_precision_raises(self, fb):
        xd = fb.copy_to_device(f64(RNG.normal(size=8)))
        with pytest.raises(TypeError):
            fb.snrm2(xd)

    def test_isamax(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=16)))
        assert fb.isamax(x) == int(np.argmax(np.abs(x.data)))

    def test_unknown_attribute(self, fb):
        with pytest.raises(AttributeError):
            fb.sfft

    def test_all_22_routines_reachable(self, fb):
        """Every routine of Sec. VI is callable through the host API."""
        for name in ("scal", "copy", "axpy", "swap", "rot", "rotm", "dot",
                     "sdsdot", "nrm2", "asum", "iamax", "rotg", "rotmg",
                     "gemv", "ger", "syr", "syr2", "trsv", "gemm", "syrk",
                     "syr2k", "trsm"):
            assert callable(getattr(fb, name))
