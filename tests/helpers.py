"""Shared test utilities: build-and-run harnesses for streaming kernels."""

from __future__ import annotations

import numpy as np

from repro.fpga import Engine, sink_kernel, source_kernel
from repro.streaming import MatrixSchedule


def stream_of(matrix: np.ndarray, schedule: MatrixSchedule) -> list:
    """Flatten ``matrix`` in the streaming order of ``schedule``."""
    flat = np.asarray(matrix).reshape(-1)
    return [flat[i] for i in schedule.indices()]


def run_map_kernel(kernel, inputs: dict, outputs: dict, width: int,
                   latency: int = 50, depth: int = 64):
    """Run a kernel with named input sequences and output lengths.

    ``kernel`` is a factory taking the channels in declaration order:
    first all inputs (sorted by insertion order of ``inputs``), then all
    outputs.  ``inputs`` maps channel name -> (list of values, width) and
    ``outputs`` maps channel name -> expected element count.  Returns
    (dict of output lists, SimReport).
    """
    eng = Engine()
    chans = []
    for name, (data, w) in inputs.items():
        ch = eng.channel(name, depth)
        eng.add_kernel(f"src_{name}", source_kernel(ch, data, w))
        chans.append(ch)
    sinks = {}
    for name, count in outputs.items():
        ch = eng.channel(name, depth)
        sinks[name] = (ch, count)
        chans.append(ch)
    eng.add_kernel("uut", kernel(*chans), latency=latency)
    results = {}
    for name, (ch, count) in sinks.items():
        results[name] = []
        eng.add_kernel(f"sink_{name}",
                       sink_kernel(ch, count, width, results[name]))
    report = eng.run()
    return results, report


def run_reduction_kernel(kernel, inputs: dict, latency: int = 90,
                         depth: int = 64, result_count: int = 1):
    """Run a kernel producing ``result_count`` scalar results."""
    eng = Engine()
    chans = []
    for name, (data, w) in inputs.items():
        ch = eng.channel(name, depth)
        eng.add_kernel(f"src_{name}", source_kernel(ch, data, w))
        chans.append(ch)
    cres = eng.channel("res", max(4, result_count))
    chans.append(cres)
    eng.add_kernel("uut", kernel(*chans), latency=latency)
    out = []
    eng.add_kernel("sink", sink_kernel(cres, result_count, 1, out))
    report = eng.run()
    return out, report
