"""Engine pre-flight analysis: annotations, wiring checks, and the
ATAX acceptance scenario (AnalysisError before cycle 0 vs clean run)."""

import numpy as np
import pytest

from repro.analysis import AnalysisError, analyze_engine
from repro.apps import atax_broken, atax_reference, atax_streaming
from repro.fpga import DeadlockError, Engine
from repro.fpga.channel import DEFAULT_CHANNEL_DEPTH
from repro.fpga.kernel import Clock, Pop, Push, WritePort
from repro.host import Fblas, FblasContext
from repro.streaming import DEFAULT_CHANNEL_DEPTH as STREAMING_DEPTH


def test_default_channel_depth_single_source():
    # Satellite: one constant, shared by fpga.channel and streaming.mdag.
    assert STREAMING_DEPTH is DEFAULT_CHANNEL_DEPTH
    eng = Engine()
    assert eng.channel("c").depth == DEFAULT_CHANNEL_DEPTH


# ------------------------------------------------------------- annotations
def test_write_port_normalization():
    eng = Engine()
    c = eng.channel("c")
    k = eng.add_kernel("k", lambda: iter(()), writes=[(c, 4)])
    (port,) = k.writes
    assert isinstance(port, WritePort)
    assert port.channel is c and port.lanes == 4 and port.latency is None


def test_negative_defer_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.add_kernel("k", lambda: iter(()), defer=-1)


def test_unannotated_engine_only_gets_fb301_info():
    eng = Engine()
    c = eng.channel("c")
    eng.add_kernel("k", lambda: iter(()))
    del c
    result = analyze_engine(eng)
    assert result.ok
    assert [d.code for d in result.infos] == ["FB301"]


def test_readerless_and_writerless_channels_flagged():
    eng = Engine()
    orphan_r = eng.channel("orphan_r")
    orphan_w = eng.channel("orphan_w")
    eng.add_kernel("producer", lambda: iter(()), writes=[orphan_w])
    eng.add_kernel("consumer", lambda: iter(()), reads=(orphan_r,))
    result = analyze_engine(eng)
    codes = sorted(d.code for d in result.diagnostics)
    assert codes == ["FB006", "FB006"]
    # read-without-writer is the fatal direction
    assert len(result.errors) == 1


def test_kernel_cycle_is_fb004():
    eng = Engine()
    c1, c2 = eng.channel("c1"), eng.channel("c2")
    eng.add_kernel("a", lambda: iter(()), reads=(c2,), writes=[c1])
    eng.add_kernel("b", lambda: iter(()), reads=(c1,), writes=[c2])
    result = analyze_engine(eng)
    assert any(d.code == "FB004" for d in result.errors)


# --------------------------------------------------------------- run() hook
def _fanout_body(ca, cb, n):
    for i in range(n):
        yield Push(ca, (float(i),), 1)
        yield Push(cb, (float(i),), 1)
        yield Clock()


def _delay_body(ca, cd, n, defer):
    buf = []
    for _ in range(defer):
        buf.append((yield Pop(ca, 1)))
        yield Clock()
    for v in buf:
        yield Push(cd, (v,), 1)
        yield Clock()
    for _ in range(n - defer):
        v = yield Pop(ca, 1)
        yield Push(cd, (v,), 1)
        yield Clock()


def _join_body(cd, cb, co, n):
    total = 0.0
    for _ in range(n):
        total += (yield Pop(cd, 1))
        total += (yield Pop(cb, 1))
        yield Clock()
    yield Push(co, (total,), 1)
    yield Clock()


def _sink_body(co):
    yield Pop(co, 1)
    yield Clock()


def _diamond(depth_b=4, defer=64, n=256, preflight=False):
    """src fans out to a deferring branch and a direct edge to join.

    The direct channel must buffer the delay kernel's ``defer``-element
    reordering window; ``depth_b`` far below it is a proven deadlock.
    """
    eng = Engine(preflight=preflight)
    ca = eng.channel("ca", n)
    cb = eng.channel("cb", depth_b)
    cd = eng.channel("cd", 8)
    co = eng.channel("co", 4)
    eng.add_kernel("src", _fanout_body(ca, cb, n),
                   writes=[(ca, 1, 1), (cb, 1, 1)])
    eng.add_kernel("delay", _delay_body(ca, cd, n, defer),
                   reads=(ca,), writes=[(cd, 1, 1)], defer=defer)
    eng.add_kernel("join", _join_body(cd, cb, co, n),
                   reads=(cd, cb), writes=[(co, 1, 1)])
    eng.add_kernel("sink", _sink_body(co), reads=(co,))
    return eng


def test_preflight_rejects_before_cycle_zero():
    eng = _diamond(preflight=True)
    with pytest.raises(AnalysisError) as exc:
        eng.run()
    assert any(d.code == "FB003" for d in exc.value.diagnostics)
    assert eng.now == 0                      # nothing was simulated


def test_without_preflight_the_same_design_deadlocks():
    with pytest.raises(DeadlockError):
        _diamond(preflight=False).run(max_cycles=100_000)


def test_run_argument_overrides_constructor():
    eng = _diamond(preflight=False)
    with pytest.raises(AnalysisError):
        eng.run(preflight=True)


def test_sufficient_depth_passes_preflight_and_completes():
    eng = _diamond(depth_b=64, preflight=True)
    report = eng.run()
    assert report.cycles > 0


# ------------------------------------------------------ ATAX acceptance
@pytest.fixture
def atax_inputs():
    rng = np.random.default_rng(17)
    a = rng.normal(size=(32, 32)).astype(np.float32)
    x = rng.normal(size=32).astype(np.float32)
    return a, x


def _device(ctx, a, x):
    return ctx.copy_to_device(a), ctx.copy_to_device(x)


def test_atax_undersized_preflight_raises_with_fix(atax_inputs):
    a, x = atax_inputs
    ctx = FblasContext()
    da, dx = _device(ctx, a, x)
    with pytest.raises(AnalysisError) as exc:
        atax_streaming(ctx, da, dx, tile=8, width=4, channel_depth=16,
                       preflight=True)
    (err,) = [d for d in exc.value.diagnostics if d.code == "FB003"]
    assert "'A2'" in err.fix


def test_atax_undersized_without_preflight_deadlocks(atax_inputs):
    a, x = atax_inputs
    ctx = FblasContext()
    da, dx = _device(ctx, a, x)
    with pytest.raises(DeadlockError):
        atax_streaming(ctx, da, dx, tile=8, width=4, channel_depth=16)


def test_atax_fixed_depth_passes_preflight_and_runs(atax_inputs):
    a, x = atax_inputs
    ctx = FblasContext()
    da, dx = _device(ctx, a, x)
    res = atax_streaming(ctx, da, dx, tile=8, width=4, preflight=True)
    np.testing.assert_allclose(res.value, atax_reference(a, x), rtol=1e-4)


def test_atax_broken_variant_is_annotation_clean(atax_inputs):
    a, x = atax_inputs
    ctx = FblasContext()
    da, dx = _device(ctx, a, x)
    res = atax_broken(ctx, da, dx, tile=8, width=4)
    np.testing.assert_allclose(res.value, atax_reference(a, x), rtol=1e-4)


# ---------------------------------------------------------------- host API
def test_fblas_preflight_plumbing():
    fb = Fblas(preflight=True)
    assert fb._engine().preflight is True
    x = fb.copy_to_device(np.arange(16, dtype=np.float32))
    y = fb.copy_to_device(np.ones(16, dtype=np.float32))
    # Host designs are unannotated: preflight must be a no-op, not a wall.
    assert fb.dot(x, y) == pytest.approx(float(np.arange(16).sum()))


def test_fblas_preflight_default_off():
    assert Fblas()._engine().preflight is False
