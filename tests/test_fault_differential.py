"""Differential tests under fault injection.

The determinism contract of :mod:`repro.faults`: the same
:class:`FaultPlan` produces byte-identical outcomes on the dense, event
and bulk engine tiers — identical results and stats for completion-safe
fault kinds, and identical failure coordinates (deadlock cycle/blocked
set, crash site) for the destructive ones.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas import level1
from repro.faults import (COMPLETION_SAFE_KINDS, ChannelFault, FaultPlan,
                          KernelFault, inject)
from repro.fpga import (Clock, DeadlockError, Engine, KernelCrashError,
                        LivelockError, Pop, Push)
from repro.fpga.memory import DramModel, read_kernel
from repro.fpga.util import duplicate_kernel, sink_kernel, source_kernel

_MODES = ("dense", "event", "bulk")


def _mapper(cin, cout, n, width, lat, sleep):
    done = 0
    while done < n:
        take = min(width, n - done)
        vals = yield Pop(cin, take)
        if take == 1:
            vals = (vals,)
        yield Push(cout, tuple(v + 1.0 for v in vals), lat)
        done += take
        yield Clock(sleep)


def _collector(cin, n, out):
    for _ in range(n):
        v = yield Pop(cin)
        out.append(v)
        yield Clock()


def _build_chain(eng, spec, out):
    """source -> axpy (patterned) -> dynamic mapper -> sink.

    Mixes a patterned stage (the bulk fast path wants to engage) with a
    dynamic one, so fault windows must force exact stepping."""
    n, w = spec["n"], spec["width"]
    depth = max(spec["depth"], w)
    data_x = [np.float32((i % 23) - 11) for i in range(n)]
    data_y = [np.float32((i % 7) - 3) for i in range(n)]
    cx = eng.channel("cx", depth)
    cy = eng.channel("cy", depth)
    c0 = eng.channel("c0", depth)
    c1 = eng.channel("c1", depth)
    eng.add_kernel("src_x", source_kernel(cx, data_x, w))
    eng.add_kernel("src_y", source_kernel(cy, data_y, w))
    eng.add_kernel("axpy", level1.axpy_kernel(n, 0.5, cx, cy, c0, w),
                   latency=spec["lat"])
    eng.add_kernel("dyn", _mapper(c0, c1, n, max(1, w - 1), 2, 1))
    eng.add_kernel("sink", _collector(c1, n, out))


_CHAIN_CHANNELS = ("cx", "cy", "c0", "c1")
_CHAIN_KERNELS = ("src_x", "src_y", "axpy", "dyn", "sink")

chain_spec = st.fixed_dictionaries({
    "n": st.integers(1, 40),
    "width": st.integers(1, 6),
    "depth": st.integers(2, 16),
    "lat": st.integers(1, 20),
})


def _outcome(mode, build, spec, plan, expect=None):
    """Run one tier under a *fresh* injection context for ``plan``."""
    with inject(plan):
        eng = Engine(mode=mode)
        out = []
        build(eng, spec, out)
        try:
            report = eng.run(max_cycles=200_000)
        except DeadlockError as exc:
            return ("deadlock", exc.cycle, dict(exc.blocked), _stats(eng))
        except LivelockError as exc:
            return ("livelock", exc.trigger, exc.cycle, _stats(eng))
        except KernelCrashError as exc:
            # No stats here: stall accounting is retro-credited on wake in
            # the event core, so mid-flight aborts leave it incomplete.
            return ("crash", exc.kernel, exc.work_cycle, eng.now)
        return ("done", report.cycles, out, _stats(eng))


def _stats(eng):
    kstats = {
        name: (k.stats.active_cycles, k.stats.stall_cycles,
               k.stats.start_cycle, k.stats.finish_cycle)
        for name, k in eng.kernels.items()
    }
    cstats = {
        name: (c.stats.pushes, c.stats.pops, c.stats.max_occupancy,
               c.stats.stalled_push_cycles, c.stats.stalled_pop_cycles)
        for name, c in eng.channels.items()
    }
    return kstats, cstats


def _assert_identical(build, spec, plan):
    dense = _outcome("dense", build, spec, plan)
    for mode in ("event", "bulk"):
        other = _outcome(mode, build, spec, plan)
        assert dense == other, (
            f"fault outcome diverged (dense vs {mode}) for {spec} under\n"
            f"{plan.describe()}\n dense={dense}\n {mode}={other}")


class TestFaultDifferential:
    @settings(max_examples=100, deadline=None)
    @given(chain_spec, st.integers(0, 10_000))
    def test_completion_safe_plans_identical(self, spec, seed):
        """Corrupt/freeze plans: all three tiers finish byte-identically
        (same payloads, same cycle counts, same stats)."""
        plan = FaultPlan.generate(
            seed, channels=_CHAIN_CHANNELS, kernels=_CHAIN_KERNELS,
            n_faults=3, element_horizon=2 * spec["n"],
            cycle_horizon=4 * spec["n"] + 64,
            kinds=COMPLETION_SAFE_KINDS)
        outcome = _outcome("dense", _build_chain, spec, plan)
        assert outcome[0] == "done"
        _assert_identical(_build_chain, spec, plan)

    @settings(max_examples=100, deadline=None)
    @given(chain_spec, st.integers(0, 10_000))
    def test_destructive_plans_identical(self, spec, seed):
        """Full fault vocabulary: every tier reaches the same outcome —
        completion, deadlock (same cycle, same blocked set) or crash
        (same kernel, same work cycle, same simulated cycle)."""
        plan = FaultPlan.generate(
            seed, channels=_CHAIN_CHANNELS, kernels=_CHAIN_KERNELS,
            n_faults=2, element_horizon=2 * spec["n"],
            cycle_horizon=4 * spec["n"] + 64)
        _assert_identical(_build_chain, spec, plan)

    def test_drop_induced_deadlock_parity(self):
        """A dropped element starves the sink: all three tiers report
        the deadlock at the same cycle with the same blocked set."""
        spec = {"n": 24, "width": 2, "depth": 8, "lat": 4}
        plan = FaultPlan(seed=0, channel_faults=(
            ChannelFault("c1", 10, "drop"),))
        outcomes = {m: _outcome(m, _build_chain, spec, plan)
                    for m in _MODES}
        assert outcomes["dense"][0] == "deadlock"
        assert outcomes["dense"] == outcomes["event"] == outcomes["bulk"]

    def test_crash_site_parity(self):
        spec = {"n": 24, "width": 2, "depth": 8, "lat": 4}
        plan = FaultPlan(seed=0, kernel_faults=(
            KernelFault("axpy", 5, "crash"),))
        outcomes = {m: _outcome(m, _build_chain, spec, plan)
                    for m in _MODES}
        assert outcomes["dense"][0] == "crash"
        assert outcomes["dense"] == outcomes["event"] == outcomes["bulk"]


class TestMemoryFaultDifferential:
    def _outcome(self, mode, plan, n=64, width=4):
        with inject(plan):
            mem = DramModel(num_banks=2, bytes_per_cycle=32)
            buf = mem.bind("vec", np.arange(1, n + 1, dtype=np.float32))
            eng = Engine(memory=mem, mode=mode)
            ch = eng.channel("c", 4 * width)
            out = []
            eng.add_kernel("read", read_kernel(mem, buf, ch, width))
            eng.add_kernel("sink", sink_kernel(ch, n, width, out))
            report = eng.run(max_cycles=200_000)
            return (report.cycles, out, _stats(eng),
                    [(b.bytes_read, b.denied_cycles, b.ecc_events)
                     for b in mem.bank_stats])

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_memory_plans_identical(self, seed):
        """Bitflips, ECC events and bandwidth throttles land on the same
        cycle coordinates in all three tiers."""
        plan = FaultPlan.generate(
            seed, buffers=("vec",), banks=2, n_faults=3,
            element_horizon=64, cycle_horizon=128,
            kinds=("bitflip", "ecc", "throttle"))
        dense = self._outcome("dense", plan)
        for mode in ("event", "bulk"):
            other = self._outcome(mode, plan)
            assert dense == other, (
                f"memory fault outcome diverged (dense vs {mode}) under\n"
                f"{plan.describe()}")

    def test_fanout_corrupt_parity(self):
        """Bit corruption upstream of a duplicate kernel reaches both
        branches identically in every tier."""
        n, w = 32, 2
        plan = FaultPlan(seed=0, channel_faults=(
            ChannelFault("cin", 7, "corrupt", bit=31),))
        results = {}
        for mode in _MODES:
            with inject(plan):
                eng = Engine(mode=mode)
                data = [np.float32(i + 1) for i in range(n)]
                cin = eng.channel("cin", 8)
                ca = eng.channel("ca", 8)
                cb = eng.channel("cb", 8)
                outa, outb = [], []
                eng.add_kernel("src", source_kernel(cin, data, w))
                eng.add_kernel("dup", duplicate_kernel(cin, (ca, cb), n, w))
                eng.add_kernel("sink_a", sink_kernel(ca, n, w, outa))
                eng.add_kernel("sink_b", sink_kernel(cb, n, w, outb))
                report = eng.run()
                results[mode] = (report.cycles, outa, outb)
        assert results["dense"] == results["event"] == results["bulk"]
        outa = results["dense"][1]
        assert outa[7] == np.float32(-8.0)


class TestPlanOnEngineConstructor:
    def test_constructor_plan_beats_ambient_context(self):
        inner = FaultPlan(seed=1, channel_faults=(
            ChannelFault("c", 0, "corrupt", bit=63),))
        ambient = FaultPlan(seed=2, channel_faults=(
            ChannelFault("c", 1, "corrupt", bit=63),))
        with inject(ambient) as ctx:
            eng = Engine(fault_plan=inner)
            ch = eng.channel("c", 4)
            out = []
            eng.add_kernel("src", _mapper_free_src(ch, [1.0, 2.0, 3.0]))
            eng.add_kernel("sink", _collector(ch, 3, out))
            eng.run()
        # The constructor plan fired (element 0), not the ambient one.
        assert out == [-1.0, 2.0, 3.0]
        assert ctx.faults_injected == 0


def _mapper_free_src(ch, vals):
    for v in vals:
        yield Push(ch, (v,), 1)
        yield Clock()
