"""End-to-end MDAG execution: bind kernels, plan, run, compare."""

import numpy as np
import pytest

from repro.blas import level1, level2, reference
from repro.fpga.memory import DramModel
from repro.fpga.resources import level1_latency
from repro.models.iomodel import atax_min_channel_depth
from repro.streaming import (
    BoundMDAG,
    ComputeBinding,
    ExecutionError,
    ReadBinding,
    WriteBinding,
    execute_plan,
    matrix_stream,
    row_tiles,
    scalar_stream,
    vector_stream,
)

RNG = np.random.default_rng(101)


def f32(a):
    return np.asarray(a, dtype=np.float32)


def build_axpydot(mem, w, v, u, alpha, n, width):
    """Fig. 6 as a bound MDAG."""
    g = BoundMDAG()
    g.add_interface("read_w")
    g.add_interface("read_v")
    g.add_interface("read_u")
    g.add_module("axpy")
    g.add_module("dot")
    g.add_interface("write_beta")
    sig = vector_stream(n)
    g.connect("read_w", "axpy", sig, sig, dst_port="w")
    g.connect("read_v", "axpy", sig, sig, dst_port="v")
    g.connect("axpy", "dot", sig, sig, src_port="z", dst_port="z")
    g.connect("read_u", "dot", sig, sig, dst_port="u")
    g.connect("dot", "write_beta", scalar_stream(), scalar_stream(),
              src_port="res", dst_port="res")
    beta = mem.allocate("beta_out", 1)
    g.bind("read_w", ReadBinding(mem.bind("w_buf", w), width))
    g.bind("read_v", ReadBinding(mem.bind("v_buf", v), width))
    g.bind("read_u", ReadBinding(mem.bind("u_buf", u), width))
    g.bind("axpy", ComputeBinding(
        lambda ins, outs: level1.axpy_kernel(
            n, -alpha, ins["v"], ins["w"], outs["z"], width),
        latency=level1_latency("map", width)))
    g.bind("dot", ComputeBinding(
        lambda ins, outs: level1.dot_kernel(
            n, ins["z"], ins["u"], outs["res"], width),
        latency=level1_latency("map_reduce", width)))
    g.bind("write_beta", WriteBinding(beta, 1))
    return g, beta


class TestAxpydotExecution:
    def test_single_component_run(self):
        n, width, alpha = 256, 8, 0.7
        w, v, u = (f32(RNG.normal(size=n)) for _ in range(3))
        mem = DramModel(num_banks=4)
        g, beta = build_axpydot(mem, w, v, u, alpha, n, width)
        result = execute_plan(g, mem)
        assert result.plan.fully_streamed
        assert len(result.reports) == 1
        want = float(reference.dot(reference.axpy(-alpha, v, w), u))
        assert beta.data[0] == pytest.approx(want, rel=1e-3)

    def test_io_matches_streaming_count(self):
        n, width = 128, 4
        w, v, u = (f32(RNG.normal(size=n)) for _ in range(3))
        mem = DramModel(num_banks=4)
        g, _ = build_axpydot(mem, w, v, u, 0.5, n, width)
        result = execute_plan(g, mem)
        assert result.io_elements == 3 * n + 1

    def test_unbound_node_rejected(self):
        n = 16
        mem = DramModel()
        g, _ = build_axpydot(mem, f32(np.ones(n)), f32(np.ones(n)),
                             f32(np.ones(n)), 1.0, n, 2)
        g.bindings.pop("dot")
        with pytest.raises(ExecutionError, match="unbound"):
            execute_plan(g, mem)

    def test_wrong_binding_kind_rejected(self):
        g = BoundMDAG()
        g.add_module("m")
        mem = DramModel()
        with pytest.raises(ExecutionError):
            g.bind("m", ReadBinding(mem.allocate("b", 4), 1))


def build_atax(mem, a, x, tile, width):
    """Fig. 8 as a bound MDAG (A is M x N)."""
    m, n = a.shape
    sched = row_tiles(m, n, tile, tile)
    g = BoundMDAG()
    g.add_interface("read_A")
    g.add_interface("read_x")
    g.add_interface("read_z1")
    g.add_interface("read_z2")
    g.add_module("gemv")
    g.add_module("gemvT")
    g.add_interface("write_y")
    asig = matrix_stream(sched)
    g.connect("read_A", "gemv", asig, asig, dst_port="A")
    g.connect("read_A", "gemvT", asig, asig, dst_port="A")
    xsig = vector_stream(n, replay=m // tile)
    g.connect("read_x", "gemv", xsig, xsig, dst_port="x")
    g.connect("read_z1", "gemv", vector_stream(m), vector_stream(m),
              dst_port="y")
    g.connect("gemv", "gemvT", vector_stream(m), vector_stream(m),
              src_port="out", dst_port="x")
    g.connect("read_z2", "gemvT", vector_stream(n), vector_stream(n),
              dst_port="y")
    g.connect("gemvT", "write_y", vector_stream(n), vector_stream(n),
              src_port="out", dst_port="y")

    y = mem.allocate("atax_y", n)
    g.bind("read_A", ReadBinding(mem.bind("A_buf", a), width,
                                 order=sched.indices))
    g.bind("read_x", ReadBinding(mem.bind("x_buf", x), width,
                                 repeat=m // tile))
    g.bind("read_z1", ReadBinding(
        mem.bind("z1", np.zeros(m, dtype=np.float32)), width))
    g.bind("read_z2", ReadBinding(
        mem.bind("z2", np.zeros(n, dtype=np.float32)), width))
    lat = level1_latency("map_reduce", width)
    g.bind("gemv", ComputeBinding(
        lambda ins, outs: level2.gemv_row_tiles(
            m, n, 1.0, 0.0, ins["A"], ins["x"], ins["y"], outs["out"],
            tile, tile, width), latency=lat))
    g.bind("gemvT", ComputeBinding(
        lambda ins, outs: level2.gemv_transposed_row_tiles(
            m, n, 1.0, 0.0, ins["A"], ins["x"], ins["y"], outs["out"],
            tile, tile, width), latency=lat))
    g.bind("write_y", WriteBinding(y, n, width))
    return g, y


class TestAtaxExecution:
    M = N = 16
    TILE = 4
    WIDTH = 4

    def _arrays(self):
        return (f32(RNG.normal(size=(self.M, self.N))),
                f32(RNG.normal(size=self.N)))

    def test_split_plan_executes_in_two_components(self):
        a, x = self._arrays()
        mem = DramModel(num_banks=4)
        g, y = build_atax(mem, a, x, self.TILE, self.WIDTH)
        result = execute_plan(g, mem)
        assert result.plan.num_components == 2
        assert len(result.reports) == 2
        np.testing.assert_allclose(y.data, a.T @ (a @ x),
                                   rtol=1e-3, atol=1e-3)

    def test_sized_plan_executes_in_one_component(self):
        a, x = self._arrays()
        mem = DramModel(num_banks=4)
        g, y = build_atax(mem, a, x, self.TILE, self.WIDTH)
        window = atax_min_channel_depth(self.N, self.TILE) + 8 * self.WIDTH
        result = execute_plan(g, mem,
                              windows={("read_A", "gemvT"): window},
                              buffer_budget=4 * window)
        assert result.plan.num_components == 1
        np.testing.assert_allclose(y.data, a.T @ (a @ x),
                                   rtol=1e-3, atol=1e-3)

    def test_sized_plan_moves_less_data_than_split(self):
        a, x = self._arrays()
        mem1 = DramModel(num_banks=4)
        g1, _ = build_atax(mem1, a, x, self.TILE, self.WIDTH)
        split = execute_plan(g1, mem1)
        mem2 = DramModel(num_banks=4)
        g2, _ = build_atax(mem2, a, x, self.TILE, self.WIDTH)
        window = atax_min_channel_depth(self.N, self.TILE) + 8 * self.WIDTH
        sized = execute_plan(g2, mem2,
                             windows={("read_A", "gemvT"): window},
                             buffer_budget=4 * window)
        assert sized.io_elements < split.io_elements
        # the split re-reads A: difference ~ one pass over the matrix
        assert split.io_elements - sized.io_elements >= self.M * self.N - 8

    def test_matches_handwritten_app(self):
        """The generic executor reproduces the hand-built atax app."""
        from repro.apps import atax_streaming
        from repro.host import FblasContext
        a, x = self._arrays()
        mem = DramModel(num_banks=4)
        g, y = build_atax(mem, a, x, self.TILE, self.WIDTH)
        window = atax_min_channel_depth(self.N, self.TILE) + 8 * self.WIDTH
        execute_plan(g, mem, windows={("read_A", "gemvT"): window},
                     buffer_budget=4 * window)
        ctx = FblasContext()
        app = atax_streaming(ctx, ctx.copy_to_device(a),
                             ctx.copy_to_device(x), tile=self.TILE,
                             width=self.WIDTH)
        np.testing.assert_allclose(y.data, app.value, rtol=1e-4, atol=1e-4)
