"""The typed plan IR (``repro.plan/1``): serialization and identity.

Property tests for the tentpole artifact itself: ``from_dict(to_dict(p))``
reconstructs a structurally equal plan with a stable ``plan_key`` (via an
actual JSON round trip, so the dumps the CLI emits are lossless too), the
key covers exactly the plan's *structure* (not its label or attached
predictions), and the device-catalog identity of the memory is part of
the key — a schedule certified on one board is never replayed on another.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ensure_certified, schedule_key
from repro.fpga.engine import Engine
from repro.fpga.memory import DramModel, read_kernel, write_kernel
from repro.fpga.util import sink_kernel, source_kernel
from repro.plan import (
    PLAN_SCHEMA,
    PlanCache,
    PlanChannel,
    PlanEdge,
    PlanIR,
    PlanKernel,
    PlanMemory,
    PlanPlacement,
    PlanPort,
    PlanPrediction,
    PlanTraffic,
    compile_plan,
)

# ---------------------------------------------------------------------------
# Strategies: random but well-formed PlanIR values.
# ---------------------------------------------------------------------------

_names = st.text(alphabet="abcdefgh_", min_size=1, max_size=8)
_opt_int = st.one_of(st.none(), st.integers(0, 10**6))

_ports = st.builds(
    PlanPort,
    channel=_names,
    lanes=st.integers(1, 16),
    latency=st.one_of(st.none(), st.integers(1, 64)),
    total=_opt_int,
)

_traffic = st.builds(
    PlanTraffic,
    buffer=_names,
    bank=st.one_of(st.none(), st.integers(0, 3)),
    elements=st.integers(1, 16),
    itemsize=st.sampled_from((4, 8)),
    kind=st.sampled_from(("read", "write")),
)

_kernels = st.builds(
    PlanKernel,
    name=_names,
    latency=st.integers(1, 64),
    ii=st.integers(1, 4),
    defer=st.integers(0, 4096),
    annotated=st.booleans(),
    patterned=st.booleans(),
    executable=st.booleans(),
    pattern_ii=st.integers(1, 4),
    pattern_defer=st.integers(0, 4096),
    reads=st.tuples(_ports) | st.just(()),
    writes=st.tuples(_ports) | st.just(()),
    annotated_reads=st.tuples(_names) | st.just(()),
    annotated_writes=st.tuples(_ports) | st.just(()),
    dram=st.tuples(_traffic) | st.just(()),
)

# Stream-order descriptors are flat tuples of scalars (see
# repro.streaming.interface.StreamSignature.order).
_orders = st.lists(
    st.one_of(st.integers(0, 999), st.sampled_from(
        ("matrix", "vector", "row_major", "tiles_by_rows"))),
    max_size=5).map(tuple)

_edges = st.builds(
    PlanEdge,
    src=_names, dst=_names,
    src_kind=st.sampled_from(("interface", "compute")),
    dst_kind=st.sampled_from(("interface", "compute")),
    src_port=_names, dst_port=_names,
    produces_total=st.integers(0, 10**6),
    produces_order=_orders,
    consumes_total=st.integers(0, 10**6),
    consumes_order=_orders,
    depth=st.integers(1, 4096),
    materialized=st.booleans(),
    sized=st.booleans(),
)

_plans = st.builds(
    PlanIR,
    subject=_names,
    device=st.one_of(st.none(), _names),
    kernels=st.lists(_kernels, max_size=4).map(tuple),
    channels=st.lists(
        st.builds(PlanChannel, name=_names, depth=st.integers(1, 4096)),
        max_size=4).map(tuple),
    memory=st.one_of(st.none(), st.builds(
        PlanMemory, device=_names, num_banks=st.integers(1, 8),
        bytes_per_cycle=st.integers(1, 256), interleaving=st.booleans())),
    placements=st.lists(
        st.builds(PlanPlacement, buffer=_names,
                  bank=st.one_of(st.none(), st.integers(0, 3)),
                  elements=st.integers(1, 10**6),
                  itemsize=st.sampled_from((4, 8))),
        max_size=3).map(tuple),
    edges=st.lists(_edges, max_size=4).map(tuple),
    components=st.lists(
        st.lists(_names, max_size=3).map(tuple), max_size=3).map(tuple),
    predictions=st.builds(
        PlanPrediction, cycles_lo=_opt_int, cycles_hi=_opt_int,
        io_elements=_opt_int, sequential_io_elements=_opt_int),
)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(_plans)
    def test_json_round_trip_is_lossless(self, plan):
        """from_dict(json(to_dict(p))) == p, with a stable plan_key."""
        restored = PlanIR.from_dict(json.loads(plan.to_json()))
        assert restored == plan
        assert restored.plan_key == plan.plan_key

    @settings(max_examples=50, deadline=None)
    @given(_plans)
    def test_schema_rides_first(self, plan):
        d = plan.to_dict()
        assert next(iter(d)) == "schema"
        assert d["schema"] == PLAN_SCHEMA

    def test_foreign_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported plan schema"):
            PlanIR.from_dict({"schema": "repro.plan/99"})

    @settings(max_examples=50, deadline=None)
    @given(_plans, _names)
    def test_plan_key_ignores_subject_and_predictions(self, plan, label):
        """The key is structural: relabeling or attaching predictions
        never splits a cache entry."""
        import dataclasses
        relabeled = dataclasses.replace(plan, subject=label)
        predicted = plan.with_predictions(cycles_lo=1, cycles_hi=2,
                                          io_elements=3)
        assert relabeled.plan_key == plan.plan_key
        assert predicted.plan_key == plan.plan_key

    @settings(max_examples=50, deadline=None)
    @given(_plans)
    def test_plan_key_tracks_structure(self, plan):
        """Any structural change — here an extra channel — changes it."""
        import dataclasses
        grown = dataclasses.replace(
            plan, channels=plan.channels + (PlanChannel("zz_extra", 7),))
        assert grown.plan_key != plan.plan_key


# ---------------------------------------------------------------------------
# Device identity: certificates never cross device boundaries.
# ---------------------------------------------------------------------------

def _device_engine(device_label):
    """A tiny certifiable DRAM-fed design on a labeled board."""
    mem = DramModel(num_banks=4, bytes_per_cycle=64, device=device_label)
    data = np.arange(32, dtype=np.float32)
    src = mem.bind("src", data)
    dst = mem.allocate("dst", 32, dtype=np.float32)
    eng = Engine(memory=mem)
    ch = eng.channel("c", 16)
    eng.add_kernel("read", read_kernel(mem, src, ch, 4))
    eng.add_kernel("write", write_kernel(mem, dst, ch, 32, 4))
    return eng


class TestDeviceIdentity:
    def test_same_device_shares_key(self):
        a = _device_engine("stratix10")
        b = _device_engine("stratix10")
        assert schedule_key(a) == schedule_key(b)

    def test_different_device_splits_key(self):
        """The regression the key hardening exists for: identical designs
        on different catalog devices must never share a certificate."""
        a = _device_engine("stratix10")
        b = _device_engine("arria10")
        ka, kb = schedule_key(a), schedule_key(b)
        assert ka != kb
        assert compile_plan(a).memory.device == "stratix10"
        assert compile_plan(b).memory.device == "arria10"

    def test_cache_never_replays_across_devices(self):
        """A schedule certified on one device is a cache *miss* on the
        other — the second device certifies afresh."""
        cache = PlanCache()
        sched_a = ensure_certified(_device_engine("stratix10"), cache=cache)
        assert cache.stats()["entries"] == 1
        misses_before = cache.misses
        sched_b = ensure_certified(_device_engine("arria10"), cache=cache)
        assert cache.misses == misses_before + 1     # no cross-device hit
        assert cache.stats()["entries"] == 2
        assert sched_a is not sched_b

    def test_cache_hit_on_same_device(self):
        cache = PlanCache()
        sched_a = ensure_certified(_device_engine("stratix10"), cache=cache)
        hits_before = cache.hits
        sched_b = ensure_certified(_device_engine("stratix10"), cache=cache)
        assert cache.hits == hits_before + 1
        assert sched_a is sched_b

    def test_memoryless_engines_unaffected(self):
        """No DRAM attached: the key has no device term but still works."""
        def plain():
            eng = Engine()
            ch = eng.channel("c", 8)
            eng.add_kernel("src", source_kernel(
                ch, [np.float32(i) for i in range(16)], 4))
            eng.add_kernel("sink", sink_kernel(ch, 16, 4, []))
            return eng
        assert schedule_key(plain()) == schedule_key(plain())
        assert compile_plan(plain()).memory is None
