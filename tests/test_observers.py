"""Tests for the pluggable observer protocol and the shipped observers.

``TraceObserver`` must reproduce the classic ``trace=True`` recording in
either engine mode; ``StallChainProfiler`` must find backpressure root
causes; ``JsonlEventDump`` must emit a parseable, de-duplicated event
stream.  Custom observers see the documented hook sequence.
"""

import io
import json

import pytest

from repro.fpga import (
    Clock,
    Engine,
    EngineObserver,
    JsonlEventDump,
    Pop,
    Push,
    StallChainProfiler,
    TraceObserver,
    sink_kernel,
    source_kernel,
)

MODES = ("dense", "event")


def passthrough(n, ch_in, ch_out, width=1, sleep=1):
    done = 0
    while done < n:
        c = min(width, n - done)
        vals = yield Pop(ch_in, c)
        if c == 1:
            vals = (vals,)
        yield Push(ch_out, tuple(vals), None)
        yield Clock(sleep)
        done += c


def _small_pipeline(eng, n=64, width=4, sink_width=4):
    ci = eng.channel("i", 16)
    co = eng.channel("o", 16)
    out = []
    eng.add_kernel("src", source_kernel(ci, list(range(n)), width))
    eng.add_kernel("mid", passthrough(n, ci, co, width), latency=6)
    eng.add_kernel("sink", sink_kernel(co, n, sink_width, out))
    return out


class TestTraceObserver:
    @pytest.mark.parametrize("mode", MODES)
    def test_matches_trace_flag(self, mode):
        """add_observer(TraceObserver()) == trace=True, in both modes."""
        eng1 = Engine(trace=True, mode=mode)
        _small_pipeline(eng1)
        rep1 = eng1.run()

        eng2 = Engine(mode=mode)
        obs = TraceObserver()
        eng2.add_observer(obs)
        _small_pipeline(eng2)
        eng2.run()

        assert obs.timelines == rep1.timelines
        assert obs.occupancy_sums == rep1.occupancy_sums

    def test_dense_and_event_traces_agree(self):
        reps = {}
        for mode in MODES:
            eng = Engine(trace=True, mode=mode)
            _small_pipeline(eng)
            reps[mode] = eng.run()
        assert reps["dense"].timelines == reps["event"].timelines
        assert reps["dense"].occupancy_sums == reps["event"].occupancy_sums
        assert reps["dense"].cycles == reps["event"].cycles

    @pytest.mark.parametrize("mode", MODES)
    def test_timeline_alphabet_and_length(self, mode):
        eng = Engine(trace=True, mode=mode)
        _small_pipeline(eng)
        rep = eng.run()
        for name, line in rep.timelines.items():
            assert len(line) == rep.cycles, name
            assert set(line) <= set("#sz-"), name
        assert "#" in rep.timelines["mid"]


class TestStallChainProfiler:
    @pytest.mark.parametrize("mode", MODES)
    def test_chain_walks_to_bottleneck(self, mode):
        """A slow sink back-pressures the whole pipeline; the chain from
        the source must end at the sink."""
        eng = Engine(mode=mode)
        prof = StallChainProfiler()
        eng.add_observer(prof)
        ci = eng.channel("i", 4)
        co = eng.channel("o", 4)
        n = 64
        eng.add_kernel("src", source_kernel(ci, list(range(n)), 4))
        eng.add_kernel("mid", passthrough(n, ci, co, 4))
        eng.add_kernel("slow", passthrough(n, co, eng.channel("z", 4), 4,
                                           sleep=9))
        eng.add_kernel("sink", sink_kernel(eng.channels["z"], n, 4))
        eng.run()

        assert sum(prof.stalls.get("src", {}).values()) > 0
        dom = prof.dominant_stall("src")
        assert dom is not None and dom[1] == "push"
        chain = prof.chain("src")
        assert chain[0] == "src"
        assert chain[-1] in ("slow", "sink")

    def test_modes_agree_on_stall_totals(self):
        totals = {}
        for mode in MODES:
            eng = Engine(mode=mode)
            prof = StallChainProfiler()
            eng.add_observer(prof)
            _small_pipeline(eng, sink_width=1)
            eng.run()
            totals[mode] = {k: dict(v) for k, v in prof.stalls.items()}
        assert totals["dense"] == totals["event"]

    def test_report_is_readable(self):
        eng = Engine()
        prof = StallChainProfiler()
        eng.add_observer(prof)
        _small_pipeline(eng, sink_width=1)
        eng.run()
        text = prof.report()
        assert "stall chains:" in text
        assert "stalled cycles" in text

    def test_no_stalls_report(self):
        prof = StallChainProfiler()
        assert "(no stalls recorded)" in prof.report()


class TestJsonlEventDump:
    @pytest.mark.parametrize("mode", MODES)
    def test_stream_is_valid_jsonl(self, mode):
        buf = io.StringIO()
        eng = Engine(mode=mode)
        eng.add_observer(JsonlEventDump(buf))
        _small_pipeline(eng)
        rep = eng.run()

        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert lines[0]["ev"] == "start"
        assert set(lines[0]["kernels"]) == {"src", "mid", "sink"}
        assert lines[-1] == {"ev": "end", "cycles": rep.cycles}
        ops = [l for l in lines if l["ev"] == "op"]
        assert sum(o["count"] for o in ops
                   if o["kind"] == "push" and o["channel"] == "i") == 64

    def test_kernel_states_deduplicated(self):
        buf = io.StringIO()
        eng = Engine(mode="dense")
        eng.add_observer(JsonlEventDump(buf))
        _small_pipeline(eng)
        rep = eng.run()
        klines = [json.loads(l) for l in buf.getvalue().splitlines()
                  if '"kernel"' in l and json.loads(l)["ev"] == "kernel"]
        # far fewer state lines than cycles x kernels
        assert len(klines) < rep.cycles * 3

    def test_writes_to_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        eng = Engine(mode="event")
        eng.add_observer(JsonlEventDump(path))
        _small_pipeline(eng)
        eng.run()
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["ev"] == "start"
        assert json.loads(lines[-1])["ev"] == "end"


class TestObserverProtocol:
    @pytest.mark.parametrize("mode", MODES)
    def test_hook_sequence(self, mode):
        events = []

        class Recorder(EngineObserver):
            def on_run_start(self, engine):
                events.append("start")

            def on_cycle(self, t):
                events.append(("cycle", t))

            def on_quiet(self, start, cycles):
                events.append(("quiet", start, cycles))

            def on_run_end(self, report):
                events.append("end")

        eng = Engine(mode=mode)
        eng.add_observer(Recorder())
        _small_pipeline(eng, n=8, width=1)
        rep = eng.run()

        assert events[0] == "start" and events[-1] == "end"
        covered = sum(1 for e in events[1:-1] if e[0] == "cycle")
        covered += sum(e[2] for e in events[1:-1] if e[0] == "quiet")
        assert covered == rep.cycles
        # cycle/quiet windows are monotone and non-overlapping
        ts = [e[1] for e in events[1:-1]]
        assert ts == sorted(ts)

    def test_quiet_windows_only_in_event_mode(self):
        def napper(ch):
            yield Clock(100)
            yield Push(ch, (1.0,), 1)

        for mode, expect_quiet in (("dense", False), ("event", True)):
            events = []

            class Recorder(EngineObserver):
                def on_quiet(self, start, cycles):
                    events.append((start, cycles))

            eng = Engine(mode=mode)
            ch = eng.channel("c", 2)
            eng.add_kernel("nap", napper(ch))
            eng.add_kernel("sink", sink_kernel(ch, 1, 1))
            eng.add_observer(Recorder())
            eng.run()
            assert bool(events) == expect_quiet

    @pytest.mark.parametrize("mode", MODES)
    def test_multiple_observers(self, mode):
        eng = Engine(mode=mode)
        trace = TraceObserver()
        prof = StallChainProfiler()
        eng.add_observer(trace)
        eng.add_observer(prof)
        _small_pipeline(eng)
        rep = eng.run()
        assert trace.timelines and rep.cycles > 0
