"""Tests for the FB4xx SDF rate analyzer and certified static schedules.

Golden tests pin the diagnostic codes (FB400-FB405, FB104) to known-bad
designs; the certified-engine tests check the headline contract: a
certified run replays byte-identical to the event core with **zero**
runtime probes and cooldowns.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    ANALYSIS_SCHEMA,
    AnalysisError,
    Severity,
    analyze_engine,
    analyze_rates,
    certify,
    ensure_certified,
    schedule_key,
)
from repro.analysis.rate_passes import min_depth_requirements
from repro.apps.atax import atax_streaming
from repro.apps.axpydot import axpydot_reference, build_axpydot_engine
from repro.blas import level1, level2
from repro.fpga.engine import Engine
from repro.fpga.memory import read_kernel
from repro.fpga.util import sink_kernel, source_kernel
from repro.host.context import FblasContext
from repro.models.iomodel import atax_min_channel_depth

SRC = Path(__file__).resolve().parent.parent / "src"


def _stats(eng):
    k = {n: (x.stats.active_cycles, x.stats.stall_cycles,
             x.stats.start_cycle, x.stats.finish_cycle)
         for n, x in eng.kernels.items()}
    c = {n: (x.stats.pushes, x.stats.pops, x.stats.max_occupancy,
             x.stats.stalled_push_cycles, x.stats.stalled_pop_cycles)
         for n, x in eng.channels.items()}
    return k, c


def _codes(result):
    return [d.code for d in result.diagnostics]


# ------------------------------------------------------------ tiny designs
def _chain_engine(n=64, src_width=4, sink_width=4, src_total=None,
                  sink_total=None):
    eng = Engine()
    ch = eng.channel("c", 32)
    data = np.arange(src_total if src_total is not None else n,
                     dtype=np.float32)
    eng.add_kernel("src", source_kernel(ch, data, src_width))
    eng.add_kernel("snk", sink_kernel(
        ch, sink_total if sink_total is not None else n, sink_width))
    return eng


def _axpydot(ctx=None, n=1024, width=8, mode="event", schedule_cache=None):
    ctx = ctx or FblasContext()
    rng = np.random.default_rng(11)
    w = ctx.copy_to_device(rng.standard_normal(n).astype(np.float32))
    v = ctx.copy_to_device(rng.standard_normal(n).astype(np.float32))
    u = ctx.copy_to_device(rng.standard_normal(n).astype(np.float32))
    eng, out = build_axpydot_engine(ctx, w, v, u, np.float32(0.5),
                                    width=width, mode=mode,
                                    schedule_cache=schedule_cache)
    return eng, out


def _gemv_engine(mode, out, N=32, M=48, TN=8, TM=12, W=4):
    rng = np.random.default_rng(3)
    A = rng.standard_normal((N, M)).astype(np.float32)
    x = rng.standard_normal(M).astype(np.float32)
    y = rng.standard_normal(N).astype(np.float32)
    eng = Engine(mode=mode)
    ca = eng.channel("a", 8 * W)
    cx = eng.channel("x", 8 * W)
    cy = eng.channel("y", 8 * W)
    co = eng.channel("o", 8 * W)
    tiles = []
    for ti in range(N // TN):
        for tj in range(M // TM):
            tiles.extend(A[ti * TN:(ti + 1) * TN,
                           tj * TM:(tj + 1) * TM].reshape(-1))
    eng.add_kernel("srcA", source_kernel(
        ca, np.asarray(tiles, np.float32), W), latency=2)
    eng.add_kernel("srcx", source_kernel(cx, x, W, repeat=N // TN),
                   latency=2)
    eng.add_kernel("srcy", source_kernel(cy, y, W), latency=2)
    eng.add_kernel("gemv", level2.gemv_row_tiles(
        N, M, 1.5, 0.5, ca, cx, cy, co, TN, TM, W), latency=6)
    eng.add_kernel("sink", sink_kernel(co, N, W, out))
    return eng, A, x, y


def _atax_engine(monkeypatch, channel_depth, m=16, n=12, tile=4, width=4):
    """Build (without running) the streaming ATAX engine."""
    captured = {}

    def fake_run(self, *a, **k):
        captured["eng"] = self

        class R:
            cycles = 0
            kernel_steps = 0
        return R()

    monkeypatch.setattr(Engine, "run", fake_run)
    ctx = FblasContext()
    a = ctx.copy_to_device(
        np.arange(m * n, dtype=np.float32).reshape(m, n) / 10)
    x = ctx.copy_to_device(np.ones(n, dtype=np.float32))
    atax_streaming(ctx, a, x, tile=tile, width=width,
                   channel_depth=channel_depth)
    return captured["eng"]


# ---------------------------------------------------------------- FB4xx
class TestRatePasses:
    def test_clean_chain_certifies(self):
        result = analyze_rates(_chain_engine())
        assert result.ok
        assert "FB405" in _codes(result)

    def test_fb400_lane_mismatch(self):
        result = analyze_rates(_chain_engine(src_width=4, sink_width=2))
        errs = result.by_code("FB400")
        assert errs and not result.ok
        assert "lanes" in (errs[0].fix or "")

    def test_fb401_token_surplus(self):
        result = analyze_rates(_chain_engine(src_total=64, sink_total=32))
        errs = result.by_code("FB401")
        assert errs and "surplus" in errs[0].message

    def test_fb401_token_starvation(self):
        result = analyze_rates(_chain_engine(src_total=32, sink_total=64))
        errs = result.by_code("FB401")
        assert errs and "starves" in errs[0].message

    def test_fb402_rejects_oversubscribed_width(self):
        # width 16 x 4 B = 64 B/cycle per DRAM reader > the per-bank
        # budget: the paper's Sec. VI-C contention case, caught statically.
        eng, _ = _axpydot(width=16)
        result = analyze_rates(eng)
        errs = result.by_code("FB402")
        assert errs and not result.ok
        with pytest.raises(AnalysisError) as ei:
            ensure_certified(eng)
        assert any(d.code == "FB402" for d in ei.value.diagnostics)

    def test_fb402_clean_at_half_width(self):
        result = analyze_rates(_axpydot(width=8)[0])
        assert result.ok and "FB405" in _codes(result)

    def test_fb404_unpatterned_kernel(self):
        eng = Engine()
        ch = eng.channel("c", 8)

        def raw():
            yield from ()

        eng.add_kernel("src", source_kernel(ch, np.ones(8, np.float32), 1))
        eng.add_kernel("opaque", raw())
        result = analyze_rates(eng)
        errs = result.by_code("FB404")
        assert [d.obj for d in errs] == ["opaque"]

    def test_fb404_declare_only_pattern(self):
        # tile_m not divisible by width -> gemv falls back to the
        # declare-only pattern (ports documented, no block executor).
        eng = Engine()
        out = []
        N, M, TN, TM, W = 8, 12, 4, 6, 4
        ca = eng.channel("a", 8 * W)
        cx = eng.channel("x", 8 * W)
        cy = eng.channel("y", 8 * W)
        co = eng.channel("o", 8 * W)
        eng.add_kernel("gemv", level2.gemv_row_tiles(
            N, M, 1.0, 0.0, ca, cx, cy, co, TN, TM, W))
        eng.add_kernel("sink", sink_kernel(co, N, W, out))
        result = analyze_rates(eng)
        errs = result.by_code("FB404")
        assert errs and "declare-only" in errs[0].message

    def test_fb403_atax_exact_bound(self, monkeypatch):
        m, n, tile = 16, 12, 4
        eng = _atax_engine(monkeypatch, channel_depth=8, m=m, n=n,
                           tile=tile)
        want = atax_min_channel_depth(n, tile)
        reqs = min_depth_requirements(eng)
        assert any(req == want and "A2" in chans
                   for _pair, _nodes, chans, _cap, req in reqs)
        errs = analyze_rates(eng).by_code("FB403")
        assert errs
        assert f"minimal deadlock-free branch depth is {want}" \
            in errs[0].message
        assert f"minimal deadlock-free depth {want}" in errs[0].fix
        assert "A2" in errs[0].fix

    def test_fb403_silent_at_auto_depth(self, monkeypatch):
        eng = _atax_engine(monkeypatch, channel_depth="auto")
        assert not analyze_rates(eng).by_code("FB403")


class TestBankLint:
    def test_fb104_warns_on_oversubscribed_bank(self):
        ctx = FblasContext()
        buf = ctx.copy_to_device(np.ones(1024, dtype=np.float32))
        eng = Engine(memory=ctx.mem)
        ch = eng.channel("c", 64)
        eng.add_kernel("read", read_kernel(ctx.mem, buf, ch, 16),
                       writes=[(ch, 16, 1)])
        eng.add_kernel("snk", sink_kernel(ch, 1024, 16), reads=(ch,))
        result = analyze_engine(eng)
        warns = result.by_code("FB104")
        assert warns and warns[0].severity == Severity.WARNING
        assert result.ok          # a warning, not a pre-flight failure

    def test_fb104_silent_within_budget(self):
        ctx = FblasContext()
        buf = ctx.copy_to_device(np.ones(1024, dtype=np.float32))
        eng = Engine(memory=ctx.mem)
        ch = eng.channel("c", 64)
        eng.add_kernel("read", read_kernel(ctx.mem, buf, ch, 8),
                       writes=[(ch, 8, 1)])
        eng.add_kernel("snk", sink_kernel(ch, 1024, 8), reads=(ch,))
        assert not analyze_engine(eng).by_code("FB104")


# ---------------------------------------------------------------- schedule
class TestStaticSchedule:
    def test_to_dict_schema_first(self):
        _result, schedule = certify(_chain_engine())
        blob = schedule.to_dict()
        assert next(iter(blob)) == "schema"
        assert blob["schema"] == "repro.schedule/1"
        assert blob["kernels"] and blob["channels"]

    def test_segments_fill_steady_drain(self):
        _result, schedule = certify(_chain_engine())
        for ks in schedule.kernels:
            assert [s.kind for s in ks.segments] == \
                ["fill", "steady", "drain"]
            assert ks.stall_free

    def test_predicted_band_contains_actual_cycles(self):
        eng, _out = _axpydot(mode="certified")
        report = eng.run()
        lo, hi = eng.schedule.predicted_cycles
        assert lo <= report.cycles <= hi

    def test_cache_reuses_certificate(self):
        cache = {}
        s1 = ensure_certified(_chain_engine(), cache=cache)
        s2 = ensure_certified(_chain_engine(), cache=cache)
        assert s1 is s2 and len(cache) == 1

    def test_key_changes_with_channel_depth(self):
        e1, e2 = _chain_engine(), _chain_engine()
        ch = e2.channels["c"]
        ch.depth = 64
        assert schedule_key(e1) != schedule_key(e2)

    def test_failed_certification_raises_before_cycle_zero(self):
        eng = _chain_engine(src_width=4, sink_width=2)
        eng.mode = "certified"
        with pytest.raises(AnalysisError):
            eng.run()


# ---------------------------------------------------------------- engine
class TestCertifiedEngine:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            Engine(mode="warp")

    def test_axpydot_certified_parity_and_zero_probes(self):
        runs = {}
        for mode in ("event", "bulk", "certified"):
            eng, out = _axpydot(mode=mode)
            report = eng.run()
            runs[mode] = (report.cycles, [float(v) for v in out],
                          _stats(eng))
            if mode == "certified":
                assert eng._bulk_probes == 0
                assert eng._bulk_cooldowns == 0
                assert eng._bulk_windows >= 1
        assert runs["event"] == runs["bulk"] == runs["certified"]

    def test_gemv_certified_beats_probing(self):
        # The row-tiled GEMV re-forms its steady state every tile: the
        # bulk tier's speculative probe pays a fingerprint + cooldown per
        # attempt, while the certificate alignment check engages per tile
        # with zero probes.
        runs = {}
        counters = {}
        for mode in ("dense", "event", "bulk", "certified"):
            out = []
            eng, A, x, y = _gemv_engine(mode, out)
            report = eng.run()
            runs[mode] = (report.cycles, [float(v) for v in out],
                          _stats(eng))
            if mode in ("bulk", "certified"):
                counters[mode] = (eng._bulk_windows, eng._bulk_probes,
                                  eng._bulk_cooldowns, eng._bulk_cycles)
        assert runs["dense"] == runs["event"] == runs["bulk"] \
            == runs["certified"]
        ref = 1.5 * (A @ x) + 0.5 * y
        np.testing.assert_allclose(
            np.array(runs["dense"][1], np.float32), ref, rtol=1e-4)
        windows, probes, cooldowns, ff = counters["certified"]
        assert probes == 0 and cooldowns == 0
        assert windows >= 1 and ff > 0
        assert windows >= counters["bulk"][0]

    def test_dot_certified_matches_reference(self):
        n, width = 256, 8
        rng = np.random.default_rng(5)
        x = rng.standard_normal(n).astype(np.float32)
        y = rng.standard_normal(n).astype(np.float32)
        results = {}
        for mode in ("event", "certified"):
            eng = Engine(mode=mode)
            cx = eng.channel("x", 4 * width)
            cy = eng.channel("y", 4 * width)
            cr = eng.channel("r", 4)
            out = []
            eng.add_kernel("srcx", source_kernel(cx, x, width), latency=2)
            eng.add_kernel("srcy", source_kernel(cy, y, width), latency=2)
            eng.add_kernel("dot", level1.dot_kernel(
                n, cx, cy, cr, width, np.float32), latency=6)
            eng.add_kernel("sink", sink_kernel(cr, 1, 1, out))
            report = eng.run()
            results[mode] = (report.cycles, float(out[0]), _stats(eng))
            if mode == "certified":
                assert eng._bulk_probes == 0
                assert eng._bulk_windows >= 1
        assert results["event"] == results["certified"]

    def test_certified_value_matches_reference(self):
        ctx = FblasContext()
        rng = np.random.default_rng(11)
        n = 256
        w = rng.standard_normal(n).astype(np.float32)
        v = rng.standard_normal(n).astype(np.float32)
        u = rng.standard_normal(n).astype(np.float32)
        eng, out = build_axpydot_engine(
            ctx, ctx.copy_to_device(w), ctx.copy_to_device(v),
            ctx.copy_to_device(u), np.float32(0.5), width=8,
            mode="certified")
        eng.run()
        ref = axpydot_reference(w, v, u, np.float32(0.5))
        np.testing.assert_allclose(out[0], ref, rtol=1e-4)

    def test_host_api_certified_dot(self):
        from repro.host.api import Fblas
        fb = Fblas(engine_mode="certified", width=8)
        x = fb.copy_to_device(np.arange(64, dtype=np.float32))
        y = fb.copy_to_device(np.ones(64, dtype=np.float32))
        assert fb.dot(x, y) == pytest.approx(float(np.arange(64).sum()))
        assert len(fb._schedule_cache) == 1
        fb.dot(x, y)                  # structural hit, no new entry
        assert len(fb._schedule_cache) == 1


# ---------------------------------------------------------------- CLI
def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env={"PYTHONPATH": str(SRC)})


class TestCli:
    def test_app_axpydot_certifies(self):
        proc = _cli("--app", "axpydot")
        assert proc.returncode == 0
        assert "FB405" in proc.stdout

    def test_app_atax_fails(self):
        proc = _cli("--app", "atax")
        assert proc.returncode == 1
        assert "FB002" in proc.stdout

    def test_app_json_schema_header(self):
        proc = _cli("--app", "axpydot", "--json")
        blob = json.loads(proc.stdout)
        assert blob["schema"] == ANALYSIS_SCHEMA
        assert blob["ok"] is True

    def test_app_sarif_structure(self):
        proc = _cli("--app", "axpydot", "--sarif")
        blob = json.loads(proc.stdout)
        assert blob["version"] == "2.1.0"
        run = blob["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert all(r.startswith("FB") for r in rules)
        levels = {r["level"] for r in run["results"]}
        assert levels <= {"error", "warning", "note"}

    def test_json_sarif_mutually_exclusive(self):
        proc = _cli("--app", "axpydot", "--json", "--sarif")
        assert proc.returncode == 2
