"""Tests for the work/depth, performance, and I/O models (Sec. IV, V)."""

import math

import pytest

from repro.models import (
    LA,
    LM,
    circuit,
    circuit_for,
    dot_app,
    expected_performance,
    gemm_systolic_cycles,
    gemv_app,
    iomodel,
    level1_cycles,
    optimal_width,
    optimal_width_tiled_gemv,
    pipeline_cycles,
    routine_class,
    routine_flops,
    scal_app,
)


class TestWorkDepth:
    def test_scal_application(self):
        wd = scal_app(1000)
        assert wd.work == 1000
        assert wd.depth == LM

    def test_dot_application(self):
        wd = dot_app(1024)
        assert wd.work == 2 * 1024 - 1
        assert wd.depth == 10 * LA + LM

    def test_gemv_work_dominated_by_2nm(self):
        wd = gemv_app(100, 200)
        assert wd.work >= 2 * 100 * 200

    def test_circuit_map(self):
        """SCAL: CW = W, CD = LM (Fig. 4)."""
        wd = circuit("map", 4)
        assert wd.work == 4
        assert wd.depth == LM

    def test_circuit_map_reduce(self):
        """DOT: CW = 2W, CD = log2(W)*LA + LM (Fig. 5)."""
        wd = circuit("map_reduce", 4)
        assert wd.work == 8
        assert wd.depth == 2 * LA + LM

    def test_circuit_width_one(self):
        assert circuit("map_reduce", 1).depth == LM

    def test_circuit_for_known_routines(self):
        assert circuit_for("scal", 8).work == 8
        assert circuit_for("dot", 8).work == 16

    def test_routine_classes(self):
        assert routine_class("axpy") == "map"
        assert routine_class("gemm") == "map_reduce"
        with pytest.raises(ValueError):
            routine_class("nosuch")

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            circuit("map", 0)


class TestPipelineModel:
    def test_identity(self):
        assert pipeline_cycles(10, 1, 100) == 110
        assert pipeline_cycles(10, 2, 100) == 210

    def test_level1_scal_formula(self):
        """C = LM + N/W for SCAL (Sec. IV-A)."""
        assert level1_cycles("scal", 1024, 8) == LM + 128

    def test_level1_dot_formula(self):
        """C = log2(W)*LA + LM + N/W for DOT."""
        assert level1_cycles("dot", 1024, 8) == 3 * LA + LM + 128

    def test_doubling_width_halves_iterations(self):
        c8 = level1_cycles("dot", 1 << 20, 8)
        c16 = level1_cycles("dot", 1 << 20, 16)
        assert 1.9 < c8 / c16 < 2.1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            pipeline_cycles(-1, 1, 10)
        with pytest.raises(ValueError):
            pipeline_cycles(1, 0, 10)


class TestExpectedPerformance:
    def test_dsp_times_frequency(self):
        # Stratix SGEMM: 3270 DSPs at 216 MHz -> 1.41 Tflop/s peak;
        # the paper measures 1.28 Tflop/s against this bar.
        peak = expected_performance(3270, 216e6)
        assert 1.3e12 < peak < 1.5e12

    def test_invalid(self):
        with pytest.raises(ValueError):
            expected_performance(-1, 1e6)


class TestOptimalWidth:
    def test_dot_formula(self):
        """W = ceil(B / (2*S*F)) for DOT (Sec. IV-B)."""
        w = optimal_width(19.2e9, 300e6, 4, operands_per_cycle_per_lane=2)
        assert w == math.ceil(19.2e9 / (2 * 4 * 300e6))

    def test_scal_needs_double_the_width_of_dot(self):
        w_dot = optimal_width(19.2e9, 300e6, 4, 2)
        w_scal = optimal_width(19.2e9, 300e6, 4, 1)
        assert w_scal == 2 * w_dot

    def test_tiled_gemv_approaches_b_over_fs(self):
        b, f, s = 19.2e9, 300e6, 4
        w_big_tiles = optimal_width_tiled_gemv(b, f, s, 1024, 1024)
        assert w_big_tiles == math.ceil(b / (f * s))

    def test_tiny_tiles_halve_the_width(self):
        b, f, s = 16e9, 250e6, 4
        assert optimal_width_tiled_gemv(b, f, s, 1, 1) < \
            optimal_width_tiled_gemv(b, f, s, 64, 64)


class TestSystolicCycleModel:
    def test_per_pe_revisit_period(self):
        # 1 tile, K=1: cycles ~ TR*TC/(PR*PC)
        c = gemm_systolic_cycles(16, 16, 1, 4, 4, 16, 16)
        assert c >= (16 * 16) // (4 * 4)

    def test_tile_count_scaling(self):
        c1 = gemm_systolic_cycles(16, 16, 8, 4, 4, 16, 16)
        c4 = gemm_systolic_cycles(32, 32, 8, 4, 4, 16, 16)
        assert c4 == 4 * c1

    def test_indivisible_tile_rejected(self):
        with pytest.raises(ValueError):
            gemm_systolic_cycles(16, 16, 8, 4, 4, 15, 16)


class TestRoutineFlops:
    def test_known_values(self):
        assert routine_flops("dot", 100) == 200
        assert routine_flops("scal", 100) == 100
        assert routine_flops("gemv", 10, 20) == 2 * 10 * 20 + 30

    def test_unknown_routine(self):
        with pytest.raises(ValueError):
            routine_flops("nope", 1)


class TestGemvIOModel:
    def test_rows_formula(self):
        """NM + M*ceil(N/T_N) + 2N (Sec. III-B)."""
        assert iomodel.gemv_io_tiles_by_rows(8, 12, 4) == 8 * 12 + 12 * 2 + 16

    def test_cols_formula(self):
        """NM + M + 2N*ceil(M/T_M)."""
        assert iomodel.gemv_io_tiles_by_cols(8, 12, 6) == 8 * 12 + 12 + 2 * 8 * 2

    def test_bigger_tiles_reduce_io(self):
        small = iomodel.gemv_io_tiles_by_rows(1024, 1024, 16)
        big = iomodel.gemv_io_tiles_by_rows(1024, 1024, 256)
        assert big < small

    def test_replay_counts(self):
        assert iomodel.gemv_replay_count_rows(1024, 256) == 4
        assert iomodel.gemv_replay_count_cols(1024, 128) == 8


class TestCompositionIOModels:
    def test_axpydot_io_7n_to_3n(self):
        r = iomodel.axpydot(1000)
        assert r.sequential_io == 7000
        assert r.streaming_io == 3001

    def test_axpydot_cycle_speedup_approaches_3(self):
        r = iomodel.axpydot(10_000_000, width=16)
        assert 2.8 < r.cycle_speedup < 3.05

    def test_bicg_halves_matrix_io(self):
        r = iomodel.bicg(1024, 1024)
        assert r.sequential_io / r.streaming_io == pytest.approx(2.0, abs=0.01)

    def test_bicg_cycle_speedup_2(self):
        r = iomodel.bicg(4096, 4096, width=16)
        assert 1.9 < r.cycle_speedup < 2.05

    def test_gemver_io_8n2_to_3n2(self):
        r = iomodel.gemver(4096)
        assert r.io_reduction == pytest.approx(8 / 3, rel=0.01)

    def test_gemver_cycle_speedup_5_over_2(self):
        r = iomodel.gemver(8192, width=16)
        assert 2.3 < r.cycle_speedup < 2.6

    def test_atax_channel_bound(self):
        assert iomodel.atax_min_channel_depth(1024, 32) == 1024 * 32

    def test_atax_io_streaming_vs_broken(self):
        assert iomodel.atax_io(64, 64, True) < iomodel.atax_io(64, 64, False)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            iomodel.gemv_io_tiles_by_rows(0, 4, 2)
        with pytest.raises(ValueError):
            iomodel.atax_min_channel_depth(0, 2)
