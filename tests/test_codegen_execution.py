"""End-to-end execution of every generated routine binding.

For each of the 22 routines (in both precisions where meaningful), this
harness builds the routine via the code generator, wires its streaming
contract into the simulator, runs it, and compares against the numpy
reference — the code-generation equivalent of a full-library conformance
suite.
"""

import numpy as np
import pytest

from repro.codegen import RoutineSpec, generate_routine
from repro.blas import reference
from repro.fpga import Engine, sink_kernel, source_kernel
from repro.streaming import row_tiles

RNG = np.random.default_rng(83)
PRECISIONS = ["single", "double"]


def _dt(precision):
    return np.float32 if precision == "single" else np.float64


def _tol(precision):
    return dict(rtol=1e-4, atol=1e-4) if precision == "single" else \
        dict(rtol=1e-10, atol=1e-10)


def _vec(n, precision):
    return RNG.normal(size=n).astype(_dt(precision))


def _mat(n, m, precision):
    return RNG.normal(size=(n, m)).astype(_dt(precision))


def _run(gen, sources, sinks, latency=None):
    """Wire a generated routine: sources/sinks are (data, width) specs.

    ``sources`` maps channel position -> (data, width); ``sinks`` maps
    position -> expected element count.  Returns dict of sink outputs.
    """
    eng = Engine()
    chans = []
    for i, (data, w) in enumerate(sources):
        ch = eng.channel(f"in{i}", max(64, 2 * w))
        eng.add_kernel(f"src{i}", source_kernel(ch, data, w))
        chans.append(ch)
    outs = []
    for i, count in enumerate(sinks):
        ch = eng.channel(f"out{i}", 64)
        chans.append(ch)
        outs.append((ch, count, []))
    eng.add_kernel("uut", gen.make_kernel_with(chans),
                   latency=latency or gen.latency)
    for i, (ch, count, lst) in enumerate(outs):
        eng.add_kernel(f"sink{i}", sink_kernel(ch, count, 4, lst))
    eng.run()
    return [lst for _ch, _c, lst in outs]


class _Bound:
    """Adapter: curry the problem parameters, leave channels open."""

    def __init__(self, gen, *params):
        self.gen = gen
        self.params = params
        self.latency = gen.latency

    def make_kernel_with(self, chans):
        return self.gen.make_kernel(*self.params, *chans)


@pytest.mark.parametrize("precision", PRECISIONS)
class TestLevel1Execution:
    N = 48
    W = 4

    def _gen(self, name, precision, **kw):
        return generate_routine(RoutineSpec(name, f"e_{name}",
                                            precision=precision,
                                            width=self.W, **kw))

    def test_scal(self, precision):
        x = _vec(self.N, precision)
        out, = _run(_Bound(self._gen("scal", precision), self.N, 2.5),
                    [(x, self.W)], [self.N])
        np.testing.assert_allclose(out, 2.5 * x, **_tol(precision))

    def test_copy(self, precision):
        x = _vec(self.N, precision)
        out, = _run(_Bound(self._gen("copy", precision), self.N),
                    [(x, self.W)], [self.N])
        np.testing.assert_allclose(out, x, **_tol(precision))

    def test_axpy(self, precision):
        x, y = _vec(self.N, precision), _vec(self.N, precision)
        out, = _run(_Bound(self._gen("axpy", precision), self.N, 0.7),
                    [(x, self.W), (y, self.W)], [self.N])
        np.testing.assert_allclose(out, 0.7 * x + y, **_tol(precision))

    def test_swap(self, precision):
        x, y = _vec(self.N, precision), _vec(self.N, precision)
        ox, oy = _run(_Bound(self._gen("swap", precision), self.N),
                      [(x, self.W), (y, self.W)], [self.N, self.N])
        np.testing.assert_allclose(ox, y, **_tol(precision))
        np.testing.assert_allclose(oy, x, **_tol(precision))

    def test_rot(self, precision):
        x, y = _vec(self.N, precision), _vec(self.N, precision)
        c, s = float(np.cos(0.3)), float(np.sin(0.3))
        ox, oy = _run(_Bound(self._gen("rot", precision), self.N, c, s),
                      [(x, self.W), (y, self.W)], [self.N, self.N])
        ex, ey = reference.rot(x, y, c, s)
        np.testing.assert_allclose(ox, ex, **_tol(precision))
        np.testing.assert_allclose(oy, ey, **_tol(precision))

    def test_rotm(self, precision):
        x, y = _vec(self.N, precision), _vec(self.N, precision)
        param = np.array([-1.0, 0.8, -0.1, 0.2, 1.2], dtype=_dt(precision))
        ox, oy = _run(_Bound(self._gen("rotm", precision), self.N, param),
                      [(x, self.W), (y, self.W)], [self.N, self.N])
        ex, ey = reference.rotm(x, y, param)
        np.testing.assert_allclose(ox, ex, **_tol(precision))
        np.testing.assert_allclose(oy, ey, **_tol(precision))

    def test_dot(self, precision):
        x, y = _vec(self.N, precision), _vec(self.N, precision)
        out, = _run(_Bound(self._gen("dot", precision), self.N),
                    [(x, self.W), (y, self.W)], [1])
        assert out[0] == pytest.approx(float(reference.dot(x, y)),
                                       rel=1e-4)

    def test_nrm2(self, precision):
        x = _vec(self.N, precision)
        out, = _run(_Bound(self._gen("nrm2", precision), self.N),
                    [(x, self.W)], [1])
        assert out[0] == pytest.approx(float(reference.nrm2(x)), rel=1e-4)

    def test_asum(self, precision):
        x = _vec(self.N, precision)
        out, = _run(_Bound(self._gen("asum", precision), self.N),
                    [(x, self.W)], [1])
        assert out[0] == pytest.approx(float(reference.asum(x)), rel=1e-4)

    def test_iamax(self, precision):
        x = _vec(self.N, precision)
        out, = _run(_Bound(self._gen("iamax", precision), self.N),
                    [(x, self.W)], [1])
        assert out[0] == reference.iamax(x)

    def test_rotg(self, precision):
        out, = _run(_Bound(self._gen("rotg", precision)),
                    [([3.0, 4.0], 2)], [4])
        r, z, c, s = out
        assert c * 3.0 + s * 4.0 == pytest.approx(float(r), rel=1e-4)

    def test_rotmg(self, precision):
        out, = _run(_Bound(self._gen("rotmg", precision)),
                    [([1.5, 0.7, 2.0, 3.0], 4)], [8])
        assert len(out) == 8


def test_sdsdot_executes():
    n, w = 64, 4
    x, y = _vec(n, "single"), _vec(n, "single")
    gen = generate_routine(RoutineSpec("sdsdot", "e_sdsdot", width=w))
    out, = _run(_Bound(gen, n, 1.5), [(x, w), (y, w)], [1])
    assert out[0] == pytest.approx(float(reference.sdsdot(1.5, x, y)),
                                   rel=1e-5)


@pytest.mark.parametrize("precision", PRECISIONS)
class TestLevel2Execution:
    N, M, T, W = 8, 8, 4, 2

    def test_gemv_rows(self, precision):
        a = _mat(self.N, self.M, precision)
        x, y = _vec(self.M, precision), _vec(self.N, precision)
        gen = generate_routine(RoutineSpec(
            "gemv", "e_gemv", precision=precision, width=self.W,
            tile_n_size=self.T, tile_m_size=self.T))
        sched = row_tiles(self.N, self.M, self.T, self.T)
        a_stream = [a.reshape(-1)[i] for i in sched.indices()]
        x_stream = list(x) * (self.N // self.T)
        out, = _run(_Bound(gen, self.N, self.M, 1.3, 0.5),
                    [(a_stream, self.W), (x_stream, self.W), (y, self.W)],
                    [self.N])
        np.testing.assert_allclose(
            out, reference.gemv(1.3, a, x, 0.5, y), **_tol(precision))

    def test_gemv_transposed(self, precision):
        a = _mat(self.N, self.M, precision)
        x, y = _vec(self.N, precision), _vec(self.M, precision)
        gen = generate_routine(RoutineSpec(
            "gemv", "e_gemvt", precision=precision, width=self.W,
            tile_n_size=self.T, tile_m_size=self.T, transposed=True))
        sched = row_tiles(self.N, self.M, self.T, self.T)
        a_stream = [a.reshape(-1)[i] for i in sched.indices()]
        out, = _run(_Bound(gen, self.N, self.M, 1.1, 0.9),
                    [(a_stream, self.W), (x, self.W), (y, self.W)],
                    [self.M])
        np.testing.assert_allclose(
            out, reference.gemv(1.1, a, x, 0.9, y, trans=True),
            **_tol(precision))

    def test_ger(self, precision):
        a = _mat(self.N, self.M, precision)
        x, y = _vec(self.N, precision), _vec(self.M, precision)
        gen = generate_routine(RoutineSpec(
            "ger", "e_ger", precision=precision, width=self.W,
            tile_n_size=self.T, tile_m_size=self.T))
        sched = row_tiles(self.N, self.M, self.T, self.T)
        a_stream = [a.reshape(-1)[i] for i in sched.indices()]
        y_stream = list(y) * (self.N // self.T)
        out, = _run(_Bound(gen, self.N, self.M, 0.8),
                    [(a_stream, self.W), (x, self.W), (y_stream, self.W)],
                    [self.N * self.M])
        got = np.empty(self.N * self.M, dtype=_dt(precision))
        for v, idx in zip(out, sched.indices()):
            got[idx] = v
        np.testing.assert_allclose(
            got.reshape(self.N, self.M), reference.ger(0.8, x, y, a),
            **_tol(precision))

    def test_trsv(self, precision):
        n = 6
        raw = _mat(n, n, precision) + n * np.eye(n, dtype=_dt(precision))
        t = np.tril(raw)
        b = _vec(n, precision)
        gen = generate_routine(RoutineSpec(
            "trsv", "e_trsv", precision=precision, width=self.W))
        a_stream = [t[i, j] for i in range(n) for j in range(n)]
        out, = _run(_Bound(gen, n), [(a_stream, self.W), (b, 1)], [n])
        np.testing.assert_allclose(
            t @ np.array(out, dtype=_dt(precision)), b,
            rtol=1e-3 if precision == "single" else 1e-9,
            atol=1e-3 if precision == "single" else 1e-9)


@pytest.mark.parametrize("precision", PRECISIONS)
class TestLevel3Execution:
    N = M = K = 4
    T, W = 2, 2

    def _gemm_streams(self, a, b, c):
        sa, sb, sc = [], [], []
        for ti in range(self.N // self.T):
            for tj in range(self.M // self.T):
                for kk in range(self.K):
                    sa.extend(a[ti * self.T:(ti + 1) * self.T, kk])
                    sb.extend(b[kk, tj * self.T:(tj + 1) * self.T])
                sc.extend(c[ti * self.T:(ti + 1) * self.T,
                            tj * self.T:(tj + 1) * self.T].reshape(-1))
        return sa, sb, sc

    def _collect(self, out, precision):
        got = np.empty((self.N, self.M), dtype=_dt(precision))
        pos = 0
        for ti in range(self.N // self.T):
            for tj in range(self.M // self.T):
                block = np.array(out[pos:pos + self.T * self.T],
                                 dtype=_dt(precision))
                got[ti * self.T:(ti + 1) * self.T,
                    tj * self.T:(tj + 1) * self.T] = \
                    block.reshape(self.T, self.T)
                pos += self.T * self.T
        return got

    def test_gemm(self, precision):
        a = _mat(self.N, self.K, precision)
        b = _mat(self.K, self.M, precision)
        c = _mat(self.N, self.M, precision)
        gen = generate_routine(RoutineSpec(
            "gemm", "e_gemm", precision=precision, width=self.W,
            tile_n_size=self.T, tile_m_size=self.T))
        sa, sb, sc = self._gemm_streams(a, b, c)
        out, = _run(_Bound(gen, self.N, self.M, self.K, 1.2, 0.4),
                    [(sa, self.W), (sb, self.W), (sc, self.W)],
                    [self.N * self.M])
        np.testing.assert_allclose(
            self._collect(out, precision),
            reference.gemm(1.2, a, b, 0.4, c), **_tol(precision))

    def test_syrk(self, precision):
        a = _mat(self.N, self.K, precision)
        c = _mat(self.N, self.N, precision)
        at = np.ascontiguousarray(a.T)
        gen = generate_routine(RoutineSpec(
            "syrk", "e_syrk", precision=precision, width=self.W,
            tile_n_size=self.T, tile_m_size=self.T))
        sa, sat, sc = self._gemm_streams(a, at, c)
        out, = _run(_Bound(gen, self.N, self.K, 1.0, 0.5),
                    [(sa, self.W), (sat, self.W), (sc, self.W)],
                    [self.N * self.N])
        np.testing.assert_allclose(
            self._collect(out, precision),
            reference.syrk(1.0, a, 0.5, c), **_tol(precision))

    def test_trsm(self, precision):
        n, m = 4, 4
        raw = _mat(n, n, precision) + n * np.eye(n, dtype=_dt(precision))
        t = np.tril(raw)
        b = _mat(n, m, precision)
        gen = generate_routine(RoutineSpec(
            "trsm", "e_trsm", precision=precision, width=self.W))
        b_stream = list(b.T.reshape(-1))        # column major
        out, = _run(_Bound(gen, n, m, 1.0),
                    [(list(t.reshape(-1)), self.W), (b_stream, self.W)],
                    [n * m])
        x = np.array(out, dtype=_dt(precision)).reshape(m, n).T
        np.testing.assert_allclose(t @ x, b, rtol=1e-3, atol=1e-3)
