"""Cycle-level systolic GEMM: correctness, timing, structural properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.systolic import (
    PE_FANOUT,
    SystolicConfig,
    SystolicGemm,
    pad_operands,
)
from repro.models import gemm_systolic_cycles

RNG = np.random.default_rng(17)


def _mat(n, m, dtype=np.float32):
    return RNG.normal(size=(n, m)).astype(dtype)


class TestConfig:
    def test_elems_per_pe(self):
        cfg = SystolicConfig(4, 4, 16, 8)
        assert cfg.elems_per_pe == (16 // 4) * (8 // 4)
        assert cfg.num_pes == 16
        assert cfg.ratio == 4.0

    def test_tile_must_be_multiple_of_grid(self):
        with pytest.raises(ValueError):
            SystolicConfig(4, 4, 10, 8)

    def test_positive_grid(self):
        with pytest.raises(ValueError):
            SystolicConfig(0, 4, 4, 4)

    def test_constant_fanout(self):
        """Each PE has 6 links regardless of array size (Sec. III-C)."""
        assert PE_FANOUT == 6


class TestCorrectness:
    @pytest.mark.parametrize("pr,pc,tr,tc,n,m,k", [
        (2, 2, 4, 4, 4, 4, 4),
        (2, 2, 4, 4, 8, 8, 8),
        (4, 2, 8, 4, 8, 8, 6),
        (1, 1, 2, 2, 4, 4, 3),
        (3, 2, 6, 4, 6, 8, 5),
    ])
    def test_matches_numpy(self, pr, pc, tr, tc, n, m, k):
        a = _mat(n, k)
        b = _mat(k, m)
        sys = SystolicGemm(SystolicConfig(pr, pc, tr, tc))
        got, _ = sys.multiply(a, b)
        np.testing.assert_allclose(got, a @ b, rtol=1e-4, atol=1e-4)

    def test_alpha_beta(self):
        a, b, c = _mat(4, 4), _mat(4, 4), _mat(4, 4)
        sys = SystolicGemm(SystolicConfig(2, 2, 4, 4))
        got, _ = sys.multiply(a, b, alpha=1.5, beta=0.25, c=c)
        np.testing.assert_allclose(got, 1.5 * (a @ b) + 0.25 * c,
                                   rtol=1e-4, atol=1e-4)

    def test_double_precision(self):
        a, b = _mat(4, 4, np.float64), _mat(4, 4, np.float64)
        sys = SystolicGemm(SystolicConfig(2, 2, 4, 4), dtype=np.float64)
        got, _ = sys.multiply(a, b)
        np.testing.assert_allclose(got, a @ b, rtol=1e-12)

    def test_shape_validation(self):
        sys = SystolicGemm(SystolicConfig(2, 2, 4, 4))
        with pytest.raises(ValueError):
            sys.multiply(_mat(4, 3), _mat(4, 4))
        with pytest.raises(ValueError):
            sys.multiply(_mat(6, 4), _mat(4, 6))   # 6 not divisible by 4

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 2),
           st.integers(1, 2), st.integers(1, 6))
    def test_random_geometry(self, pr, pc, rmul, cmul, k):
        tr, tc = pr * rmul, pc * cmul
        a = _mat(tr, k)
        b = _mat(k, tc)
        sys = SystolicGemm(SystolicConfig(pr, pc, tr, tc))
        got, _ = sys.multiply(a, b)
        np.testing.assert_allclose(got, a @ b, rtol=1e-3, atol=1e-3)


class TestTiming:
    def test_pe_revisit_period(self):
        """A PE accumulates on the same C element every TR*TC/(PR*PC)
        cycles, so one tile costs ~K * elems_per_pe cycles (Sec. III-C)."""
        cfg = SystolicConfig(2, 2, 8, 8)
        sys = SystolicGemm(cfg)
        k = 16
        _, stats = sys.multiply(_mat(8, k), _mat(k, 8))
        compute = k * cfg.elems_per_pe
        assert stats.cycles >= compute
        assert stats.cycles <= compute + cfg.pr + cfg.pc + \
            cfg.elems_per_pe + cfg.pr + 5

    def test_matches_analytic_model(self):
        cfg = SystolicConfig(2, 2, 4, 4)
        sys = SystolicGemm(cfg)
        n = m = 8
        k = 8
        _, stats = sys.multiply(_mat(n, k), _mat(k, m))
        model = gemm_systolic_cycles(n, m, k, cfg.pr, cfg.pc,
                                     cfg.tile_r, cfg.tile_c,
                                     drain_latency=cfg.elems_per_pe + cfg.pr)
        assert abs(stats.cycles - model) / model < 0.25

    def test_expected_cycles_helper(self):
        cfg = SystolicConfig(2, 2, 4, 4)
        sys = SystolicGemm(cfg)
        _, stats = sys.multiply(_mat(8, 4), _mat(4, 8))
        assert abs(stats.cycles - sys.expected_cycles(8, 8, 4)) <= 8

    def test_mac_count_is_exact(self):
        n = m = k = 8
        sys = SystolicGemm(SystolicConfig(2, 2, 4, 4))
        _, stats = sys.multiply(_mat(n, k), _mat(k, m))
        assert stats.macs == n * m * k

    def test_utilization_improves_with_tile_ratio(self):
        """Fig. 10 (right): larger memory/compute tile ratio approaches
        the expected performance of the instantiated PEs."""
        k = 32
        utils = []
        for tr in (4, 8, 16):
            cfg = SystolicConfig(4, 4, tr, tr)
            sys = SystolicGemm(cfg)
            _, stats = sys.multiply(_mat(16, k), _mat(k, 16))
            utils.append(stats.pe_utilization(cfg))
        assert utils[0] < utils[1] < utils[2]
        assert utils[2] > 0.75


class TestPadding:
    def test_pad_and_strip(self):
        cfg = SystolicConfig(2, 2, 4, 4)
        a, b = _mat(6, 5), _mat(5, 7)
        a2, b2, (n, m) = pad_operands(a, b, cfg)
        assert a2.shape == (8, 5) and b2.shape == (5, 8)
        sys = SystolicGemm(cfg)
        got, _ = sys.multiply(a2, b2)
        np.testing.assert_allclose(got[:n, :m], a @ b, rtol=1e-4, atol=1e-4)
