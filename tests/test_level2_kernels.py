"""Streaming Level-2 kernels vs numpy references, including tiling I/O."""

import numpy as np
import pytest

from repro.blas import level2, reference
from repro.fpga import Engine, sink_kernel, source_kernel
from repro.models import iomodel
from repro.streaming import col_tiles, row_tiles

from helpers import stream_of

RNG = np.random.default_rng(11)


def _vec(n, dtype=np.float32):
    return RNG.normal(size=n).astype(dtype)


def _mat(n, m, dtype=np.float32):
    return RNG.normal(size=(n, m)).astype(dtype)


def run_gemv_rows(n, m, tn, tm, w, alpha=1.5, beta=0.5, dtype=np.float32):
    a, x, y = _mat(n, m, dtype), _vec(m, dtype), _vec(n, dtype)
    sched = row_tiles(n, m, tn, tm)
    eng = Engine()
    ca = eng.channel("A", 256)
    cx = eng.channel("x", 256)
    cy = eng.channel("y", 256)
    co = eng.channel("out", 256)
    out = []
    replay = n // tn
    eng.add_kernel("src_a", source_kernel(ca, stream_of(a, sched), w))
    eng.add_kernel("src_x", source_kernel(cx, list(x), w, repeat=replay))
    eng.add_kernel("src_y", source_kernel(cy, list(y), w))
    eng.add_kernel("gemv", level2.gemv_row_tiles(
        n, m, alpha, beta, ca, cx, cy, co, tn, tm, w, dtype), latency=90)
    eng.add_kernel("sink", sink_kernel(co, n, w, out))
    rep = eng.run()
    expect = reference.gemv(alpha, a, x, beta, y)
    return np.array(out), expect, rep, (ca, cx, cy)


class TestGemvRowTiles:
    @pytest.mark.parametrize("n,m,tn,tm,w", [
        (8, 8, 4, 4, 1), (8, 12, 4, 6, 2), (16, 16, 4, 8, 4),
        (4, 4, 4, 4, 4), (12, 6, 3, 3, 3),
    ])
    def test_matches_reference(self, n, m, tn, tm, w):
        out, expect, _, _ = run_gemv_rows(n, m, tn, tm, w)
        np.testing.assert_allclose(out, expect, rtol=1e-4, atol=1e-5)

    def test_x_is_replayed_per_tile_row(self):
        """The tiles-by-rows scheme consumes x N/T_N times (Sec. III-B)."""
        n, m, tn, tm = 16, 8, 4, 4
        _, _, _, (ca, cx, cy) = run_gemv_rows(n, m, tn, tm, 2)
        assert cx.stats.pops == m * (n // tn)
        assert ca.stats.pops == n * m
        assert cy.stats.pops == n

    def test_io_matches_model(self):
        n, m, tn, tm = 16, 8, 4, 4
        _, _, _, (ca, cx, cy) = run_gemv_rows(n, m, tn, tm, 2)
        measured = ca.stats.pops + cx.stats.pops + cy.stats.pops + n
        assert measured == iomodel.gemv_io_tiles_by_rows(n, m, tn)

    def test_double_precision(self):
        out, expect, _, _ = run_gemv_rows(8, 8, 4, 4, 2, dtype=np.float64)
        np.testing.assert_allclose(out, expect, rtol=1e-12)

    def test_indivisible_tiles_rejected(self):
        with pytest.raises(ValueError):
            list(level2.gemv_row_tiles(10, 8, 1.0, 0.0, None, None, None,
                                       None, 3, 4))


class TestGemvRowTilesDoubleBuffered:
    def _run(self, n, m, tn, tm, w, alpha=1.5, beta=0.5):
        a, x, y = _mat(n, m), _vec(m), _vec(n)
        sched = row_tiles(n, m, tn, tm)
        eng = Engine()
        ca = eng.channel("A", 256)
        cx = eng.channel("x", max(256, 2 * tm))
        cy = eng.channel("y", 256)
        co = eng.channel("out", 256)
        out = []
        eng.add_kernel("src_a", source_kernel(ca, stream_of(a, sched), w))
        eng.add_kernel("src_x", source_kernel(cx, list(x), w,
                                              repeat=n // tn))
        eng.add_kernel("src_y", source_kernel(cy, list(y), w))
        eng.add_kernel("gemv", level2.gemv_row_tiles_db(
            n, m, alpha, beta, ca, cx, cy, co, tn, tm, w), latency=90)
        eng.add_kernel("sink", sink_kernel(co, n, w, out))
        rep = eng.run()
        return np.array(out), reference.gemv(alpha, a, x, beta, y), rep

    @pytest.mark.parametrize("n,m,tn,tm,w", [
        (8, 8, 4, 4, 2), (16, 16, 4, 8, 4), (8, 12, 2, 6, 3),
        (4, 4, 4, 4, 1), (16, 8, 8, 4, 2),
    ])
    def test_matches_reference(self, n, m, tn, tm, w):
        out, expect, _ = self._run(n, m, tn, tm, w)
        np.testing.assert_allclose(out, expect, rtol=1e-4, atol=1e-5)

    def test_faster_than_plain_variant(self):
        n, m, tn, tm, w = 32, 32, 4, 8, 2
        _, _, rep_db = self._run(n, m, tn, tm, w)
        out, expect, rep_plain, _chans = run_gemv_rows(n, m, tn, tm, w)
        np.testing.assert_allclose(out, expect, rtol=1e-4, atol=1e-5)
        assert rep_db.cycles < rep_plain.cycles
        # Sec. IV-B model: the fetch overhead hidden is ~1/T_N of cycles.
        ratio = rep_plain.cycles / rep_db.cycles
        assert 1.05 < ratio < 1.4


class TestGemvRowTilesColMajor:
    """The fourth Sec. III-B streaming mode: row tiles, col-major elems."""

    @pytest.mark.parametrize("n,m,tn,tm,w", [
        (8, 8, 4, 4, 2), (8, 12, 4, 6, 3), (16, 16, 8, 4, 4),
        (4, 4, 4, 4, 1),
    ])
    def test_matches_reference(self, n, m, tn, tm, w):
        from repro.streaming import ElementOrder, MatrixSchedule, TileOrder
        a, x, y = _mat(n, m), _vec(m), _vec(n)
        sched = MatrixSchedule(n, m, tn, tm, TileOrder.BY_ROWS,
                               ElementOrder.COL_MAJOR)
        eng = Engine()
        ca = eng.channel("A", 256)
        cx = eng.channel("x", 256)
        cy = eng.channel("y", 256)
        co = eng.channel("o", 256)
        out = []
        eng.add_kernel("sa", source_kernel(ca, stream_of(a, sched), w))
        eng.add_kernel("sx", source_kernel(cx, list(x), w,
                                           repeat=n // tn))
        eng.add_kernel("sy", source_kernel(cy, list(y), w))
        eng.add_kernel("gemv", level2.gemv_row_tiles_colmajor(
            n, m, 1.4, 0.6, ca, cx, cy, co, tn, tm, w), latency=90)
        eng.add_kernel("sink", sink_kernel(co, n, w, out))
        eng.run()
        np.testing.assert_allclose(out, reference.gemv(1.4, a, x, 0.6, y),
                                   rtol=1e-4, atol=1e-5)

    def test_same_io_complexity_as_row_major(self):
        """Element order inside the tile changes the wire order, not the
        I/O volume — x is still replayed once per tile row."""
        from repro.streaming import ElementOrder, MatrixSchedule, TileOrder
        n, m, tn, tm, w = 8, 8, 4, 4, 2
        a, x, y = _mat(n, m), _vec(m), _vec(n)
        sched = MatrixSchedule(n, m, tn, tm, TileOrder.BY_ROWS,
                               ElementOrder.COL_MAJOR)
        eng = Engine()
        ca = eng.channel("A", 256)
        cx = eng.channel("x", 256)
        cy = eng.channel("y", 256)
        co = eng.channel("o", 256)
        eng.add_kernel("sa", source_kernel(ca, stream_of(a, sched), w))
        eng.add_kernel("sx", source_kernel(cx, list(x), w,
                                           repeat=n // tn))
        eng.add_kernel("sy", source_kernel(cy, list(y), w))
        eng.add_kernel("gemv", level2.gemv_row_tiles_colmajor(
            n, m, 1.0, 0.0, ca, cx, cy, co, tn, tm, w), latency=90)
        eng.add_kernel("sink", sink_kernel(co, n, w))
        eng.run()
        measured = ca.stats.pops + cx.stats.pops + cy.stats.pops + n
        assert measured == iomodel.gemv_io_tiles_by_rows(n, m, tn)


class TestGemvColTiles:
    def _run(self, n, m, tn, tm, w, alpha=2.0, beta=0.3):
        a, x, y = _mat(n, m), _vec(m), _vec(n)
        sched = col_tiles(n, m, tn, tm)
        passes = m // tm
        eng = Engine()
        ca = eng.channel("A", 256)
        cx = eng.channel("x", 256)
        cy = eng.channel("y", max(2 * n, 64))     # feedback needs >= N
        co = eng.channel("o", 256)
        cfinal = eng.channel("final", 256)
        out = []
        eng.add_kernel("src_a", source_kernel(ca, stream_of(a, sched), w))
        eng.add_kernel("src_x", source_kernel(cx, list(x), w))
        eng.add_kernel("src_y", source_kernel(cy, list(y), w))
        eng.add_kernel("gemv", level2.gemv_col_tiles(
            n, m, alpha, beta, ca, cx, cy, co, tn, tm, w), latency=90)
        eng.add_kernel("router", level2.y_replay_router(
            n, passes, co, cy, cfinal, w))
        eng.add_kernel("sink", sink_kernel(cfinal, n, w, out))
        rep = eng.run()
        return np.array(out), reference.gemv(alpha, a, x, beta, y), rep, co

    @pytest.mark.parametrize("n,m,tn,tm,w", [
        (8, 8, 4, 4, 2), (8, 16, 4, 4, 4), (6, 9, 3, 3, 1),
    ])
    def test_matches_reference(self, n, m, tn, tm, w):
        out, expect, _, _ = self._run(n, m, tn, tm, w)
        np.testing.assert_allclose(out, expect, rtol=1e-4, atol=1e-5)

    def test_y_replayed_per_tile_column(self):
        """y streams out once per column of tiles (Sec. III-B, Fig. 2)."""
        n, m, tn, tm = 8, 16, 4, 4
        _, _, _, co = self._run(n, m, tn, tm, 2)
        assert co.stats.pushes == n * (m // tm)


class TestGemvNontiled:
    def test_matches_reference_with_full_replay(self):
        n, m, w = 6, 8, 2
        a, x, y = _mat(n, m), _vec(m), _vec(n)
        eng = Engine()
        ca = eng.channel("A", 128)
        cx = eng.channel("x", 128)
        cy = eng.channel("y", 128)
        co = eng.channel("o", 128)
        out = []
        eng.add_kernel("src_a", source_kernel(ca, list(a.reshape(-1)), w))
        eng.add_kernel("src_x", source_kernel(cx, list(x), w, repeat=n))
        eng.add_kernel("src_y", source_kernel(cy, list(y), 1))
        eng.add_kernel("gemv", level2.gemv_nontiled(
            n, m, 1.0, 1.0, ca, cx, cy, co, w), latency=60)
        eng.add_kernel("sink", sink_kernel(co, n, 1, out))
        eng.run()
        np.testing.assert_allclose(out, reference.gemv(1.0, a, x, 1.0, y),
                                   rtol=1e-4, atol=1e-5)
        # the non-tiled kernel replays x for EVERY row: N*M pops
        assert cx.stats.pops == n * m


class TestGemvTransposed:
    def test_same_a_stream_as_nontransposed(self):
        """GEMV^T consumes A in tiles by rows — the BICG sharing trick."""
        n, m, tn, tm, w = 8, 12, 4, 6, 2
        a = _mat(n, m)
        x = _vec(n)      # input of length N
        y = _vec(m)      # addend of length M
        sched = row_tiles(n, m, tn, tm)
        eng = Engine()
        ca = eng.channel("A", 256)
        cx = eng.channel("x", 256)
        cy = eng.channel("y", 256)
        co = eng.channel("o", 256)
        out = []
        eng.add_kernel("src_a", source_kernel(ca, stream_of(a, sched), w))
        eng.add_kernel("src_x", source_kernel(cx, list(x), w))
        eng.add_kernel("src_y", source_kernel(cy, list(y), w))
        eng.add_kernel("gemvT", level2.gemv_transposed_row_tiles(
            n, m, 1.2, 0.8, ca, cx, cy, co, tn, tm, w), latency=90)
        eng.add_kernel("sink", sink_kernel(co, m, w, out))
        eng.run()
        expect = reference.gemv(1.2, a, x, 0.8, y, trans=True)
        np.testing.assert_allclose(out, expect, rtol=1e-4, atol=1e-5)
        assert cx.stats.pops == n       # x NOT replayed


class TestGer:
    def test_matches_reference(self):
        n, m, tn, tm, w = 8, 8, 4, 4, 2
        a, x, y = _mat(n, m), _vec(n), _vec(m)
        sched = row_tiles(n, m, tn, tm)
        eng = Engine()
        ca = eng.channel("A", 256)
        cx = eng.channel("x", 64)
        cy = eng.channel("y", 64)
        co = eng.channel("o", 256)
        out = []
        eng.add_kernel("src_a", source_kernel(ca, stream_of(a, sched), w))
        eng.add_kernel("src_x", source_kernel(cx, list(x), w))
        eng.add_kernel("src_y", source_kernel(cy, list(y), w,
                                              repeat=n // tn))
        eng.add_kernel("ger", level2.ger_kernel(
            n, m, 0.9, ca, cx, cy, co, tn, tm, w), latency=50)
        eng.add_kernel("sink", sink_kernel(co, n * m, w, out))
        eng.run()
        got = np.empty(n * m, dtype=np.float32)
        flatpos = list(sched.indices())
        for streamed, flat_idx in zip(out, flatpos):
            got[flat_idx] = streamed
        np.testing.assert_allclose(got.reshape(n, m),
                                   reference.ger(0.9, x, y, a),
                                   rtol=1e-4, atol=1e-5)


class TestSyr:
    def test_matches_reference(self):
        n, tn, tm, w = 8, 4, 4, 2
        a, x = _mat(n, n), _vec(n)
        sched = row_tiles(n, n, tn, tm)
        eng = Engine()
        ca = eng.channel("A", 256)
        cxr = eng.channel("xr", 64)
        cxc = eng.channel("xc", 64)
        co = eng.channel("o", 256)
        out = []
        eng.add_kernel("src_a", source_kernel(ca, stream_of(a, sched), w))
        eng.add_kernel("src_xr", source_kernel(cxr, list(x), w))
        eng.add_kernel("src_xc", source_kernel(cxc, list(x), w,
                                               repeat=n // tn))
        eng.add_kernel("syr", level2.syr_kernel(
            n, 1.1, ca, cxr, cxc, co, tn, tm, w), latency=50)
        eng.add_kernel("sink", sink_kernel(co, n * n, w, out))
        eng.run()
        got = np.empty(n * n, dtype=np.float32)
        for streamed, flat_idx in zip(out, sched.indices()):
            got[flat_idx] = streamed
        np.testing.assert_allclose(got.reshape(n, n),
                                   reference.syr(1.1, x, a),
                                   rtol=1e-4, atol=1e-5)


class TestSyr2:
    def test_matches_reference(self):
        n, tn, tm, w = 4, 2, 2, 2
        a, x, y = _mat(n, n), _vec(n), _vec(n)
        sched = row_tiles(n, n, tn, tm)
        eng = Engine()
        ca = eng.channel("A", 256)
        cxr = eng.channel("xr", 64)
        cyc = eng.channel("yc", 64)
        cyr = eng.channel("yr", 64)
        cxc = eng.channel("xc", 64)
        co = eng.channel("o", 256)
        out = []
        replay = n // tn
        eng.add_kernel("src_a", source_kernel(ca, stream_of(a, sched), w))
        eng.add_kernel("src_xr", source_kernel(cxr, list(x), w))
        eng.add_kernel("src_yc", source_kernel(cyc, list(y), w, repeat=replay))
        eng.add_kernel("src_yr", source_kernel(cyr, list(y), w))
        eng.add_kernel("src_xc", source_kernel(cxc, list(x), w, repeat=replay))
        eng.add_kernel("syr2", level2.syr2_kernel(
            n, 0.6, ca, cxr, cyc, cyr, cxc, co, tn, tm, w), latency=50)
        eng.add_kernel("sink", sink_kernel(co, n * n, w, out))
        eng.run()
        got = np.empty(n * n, dtype=np.float32)
        for streamed, flat_idx in zip(out, sched.indices()):
            got[flat_idx] = streamed
        np.testing.assert_allclose(got.reshape(n, n),
                                   reference.syr2(0.6, x, y, a),
                                   rtol=1e-4, atol=1e-5)


class TestTrsv:
    @pytest.mark.parametrize("lower", [True, False])
    def test_solves_triangular_system(self, lower):
        n, w = 8, 2
        a = _mat(n, n) + n * np.eye(n, dtype=np.float32)
        t = np.tril(a) if lower else np.triu(a)
        b = _vec(n)
        # rows streamed in solve order
        row_order = range(n) if lower else range(n - 1, -1, -1)
        a_stream = [t[i, j] for i in row_order for j in range(n)]
        eng = Engine()
        ca = eng.channel("A", 256)
        cb = eng.channel("b", 64)
        co = eng.channel("o", 64)
        out = []
        b_stream = [b[i] for i in row_order]
        eng.add_kernel("src_a", source_kernel(ca, a_stream, w))
        eng.add_kernel("src_b", source_kernel(cb, b_stream, 1))
        eng.add_kernel("trsv", level2.trsv_kernel(
            n, ca, cb, co, w, lower=lower), latency=60)
        eng.add_kernel("sink", sink_kernel(co, n, 1, out))
        eng.run()
        x = np.empty(n, dtype=np.float32)
        for val, i in zip(out, row_order):
            x[i] = val
        np.testing.assert_allclose(t @ x, b, rtol=1e-3, atol=1e-4)

    def test_unit_diag(self):
        n = 4
        a = np.tril(_mat(n, n), -1) + np.eye(n, dtype=np.float32) * 42
        b = _vec(n)
        eng = Engine()
        ca = eng.channel("A", 64)
        cb = eng.channel("b", 16)
        co = eng.channel("o", 16)
        out = []
        eng.add_kernel("src_a", source_kernel(ca, list(a.reshape(-1)), 2))
        eng.add_kernel("src_b", source_kernel(cb, list(b), 1))
        eng.add_kernel("trsv", level2.trsv_kernel(
            n, ca, cb, co, 2, lower=True, unit_diag=True), latency=60)
        eng.add_kernel("sink", sink_kernel(co, n, 1, out))
        eng.run()
        unit = np.tril(a, -1) + np.eye(n, dtype=np.float32)
        np.testing.assert_allclose(unit @ np.array(out), b,
                                   rtol=1e-4, atol=1e-5)
