"""Unit tests for the cycle-stepped engine: pipelining, stalls, deadlock."""

import pytest

from repro.fpga import (
    Clock,
    DeadlockError,
    Engine,
    Pop,
    Push,
    SimulationError,
    sink_kernel,
    source_kernel,
)


def passthrough(n, ch_in, ch_out, width=1):
    done = 0
    while done < n:
        c = min(width, n - done)
        vals = yield Pop(ch_in, c)
        if c == 1:
            vals = (vals,)
        yield Push(ch_out, tuple(vals), None)
        yield Clock()
        done += c


class TestPipelining:
    def test_cycle_count_matches_l_plus_n_over_w(self):
        """The paper's C = L + II*M identity, measured."""
        n, w, lat = 1024, 8, 40
        eng = Engine()
        ci = eng.channel("i", 32)
        co = eng.channel("o", 32)
        out = []
        eng.add_kernel("src", source_kernel(ci, list(range(n)), w))
        eng.add_kernel("k", passthrough(n, ci, co, w), latency=lat)
        eng.add_kernel("sink", sink_kernel(co, n, w, out))
        rep = eng.run()
        model = lat + n // w
        assert abs(rep.cycles - model) <= 5
        assert out == list(range(n))

    def test_width_scaling_reduces_cycles_linearly(self):
        n = 512
        cycles = {}
        for w in (1, 2, 4, 8):
            eng = Engine()
            ci = eng.channel("i", 32)
            co = eng.channel("o", 32)
            eng.add_kernel("src", source_kernel(ci, [0.0] * n, w))
            eng.add_kernel("k", passthrough(n, ci, co, w), latency=10)
            eng.add_kernel("sink", sink_kernel(co, n, w))
            cycles[w] = eng.run().cycles
        assert cycles[1] > cycles[2] > cycles[4] > cycles[8]
        # dominant term halves with doubling width
        assert cycles[1] / cycles[8] > 5

    def test_chained_modules_pipeline_in_parallel(self):
        """Two chained modules cost ~L1+L2+N, not 2N (Sec. V-A)."""
        n, w = 2048, 4
        eng = Engine()
        c1 = eng.channel("c1", 16)
        c2 = eng.channel("c2", 16)
        c3 = eng.channel("c3", 16)
        eng.add_kernel("src", source_kernel(c1, [1.0] * n, w))
        eng.add_kernel("k1", passthrough(n, c1, c2, w), latency=50)
        eng.add_kernel("k2", passthrough(n, c2, c3, w), latency=50)
        eng.add_kernel("sink", sink_kernel(c3, n, w))
        rep = eng.run()
        assert rep.cycles < 50 + 50 + n // w + 20     # pipelined
        assert rep.cycles > n // w                    # but not free


class TestBackpressure:
    def test_slow_consumer_stalls_producer(self):
        n = 64
        eng = Engine()
        ch = eng.channel("c", 4)

        def slow_sink():
            for _ in range(n):
                _ = yield Pop(ch, 1)
                yield Clock(4)  # one pop every 4 cycles

        eng.add_kernel("src", source_kernel(ch, list(range(n)), 1))
        eng.add_kernel("sink", slow_sink())
        rep = eng.run()
        assert rep.cycles >= 4 * n
        assert rep.kernels["src"].stats.stall_cycles > n

    def test_stall_statistics_recorded_on_channel(self):
        eng = Engine()
        ch = eng.channel("c", 2)
        eng.add_kernel("src", source_kernel(ch, list(range(32)), 1))

        def lazy():
            yield Clock(20)
            for _ in range(32):
                _ = yield Pop(ch, 1)
                yield Clock()

        eng.add_kernel("sink", lazy())
        eng.run()
        assert ch.stats.stalled_push_cycles > 0


class TestDeadlock:
    def test_starved_consumer_deadlocks(self):
        eng = Engine()
        ch = eng.channel("c", 4)
        eng.add_kernel("src", source_kernel(ch, [1, 2, 3], 1))
        eng.add_kernel("sink", sink_kernel(ch, 10, 1))
        with pytest.raises(DeadlockError) as exc:
            eng.run()
        assert "sink" in exc.value.blocked

    def test_full_channel_with_no_consumer_deadlocks(self):
        eng = Engine()
        a = eng.channel("a", 2)
        b = eng.channel("b", 2)
        eng.add_kernel("p", source_kernel(a, list(range(10)), 1))
        eng.add_kernel("c", sink_kernel(b, 1, 1))
        with pytest.raises(DeadlockError) as exc:
            eng.run()
        assert set(exc.value.blocked) == {"p", "c"}

    def test_sleeping_kernel_is_not_a_deadlock(self):
        eng = Engine()
        ch = eng.channel("c", 4)

        def late_producer():
            yield Clock(100)
            yield Push(ch, (1,), 1)
            yield Clock()

        eng.add_kernel("p", late_producer())
        eng.add_kernel("s", sink_kernel(ch, 1, 1))
        rep = eng.run()
        assert rep.cycles >= 100


class TestProtocol:
    def test_missing_clock_is_detected(self):
        eng = Engine()
        ch = eng.channel("c", 1_000_000_000)

        def runaway():
            while True:
                yield Push(ch, (1,), 1)

        eng.add_kernel("bad", runaway())
        with pytest.raises(SimulationError, match="missing Clock"):
            eng.run()

    def test_unknown_op_rejected(self):
        eng = Engine()

        def bad():
            yield "not an op"

        eng.add_kernel("bad", bad())
        with pytest.raises(SimulationError, match="unknown op"):
            eng.run()

    def test_max_cycles_guard(self):
        eng = Engine()

        def spinner():
            while True:
                yield Clock()

        eng.add_kernel("spin", spinner())
        with pytest.raises(SimulationError, match="exceeded"):
            eng.run(max_cycles=100)

    def test_duplicate_names_rejected(self):
        eng = Engine()
        eng.channel("c")
        with pytest.raises(ValueError):
            eng.channel("c")
        eng.add_kernel("k", iter(()))
        with pytest.raises(ValueError):
            eng.add_kernel("k", iter(()))


class TestReport:
    def test_summary_mentions_kernels_and_channels(self):
        eng = Engine()
        ch = eng.channel("data", 8)
        eng.add_kernel("src", source_kernel(ch, [1, 2], 1))
        eng.add_kernel("sink", sink_kernel(ch, 2, 1))
        rep = eng.run()
        text = rep.summary()
        assert "src" in text and "sink" in text and "data" in text
        assert rep.total_stall_cycles >= 0
