"""Hypothesis conformance for Level-2 streaming kernels.

Random shapes (constrained to exact tilings), random tile geometry and
widths: GEMV (all variants) and GER must agree with the references, and
the tiling I/O identities must hold for every configuration.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas import level2, reference
from repro.fpga import Engine, sink_kernel, source_kernel
from repro.models import iomodel
from repro.streaming import row_tiles

from helpers import stream_of

RNG = np.random.default_rng(113)


def geometry():
    """(n, m, tn, tm, w): dims exact multiples of tiles, w free."""
    return st.tuples(
        st.integers(1, 4), st.integers(1, 4),     # tile grid
        st.integers(1, 4), st.integers(1, 4),     # tile dims
        st.integers(1, 6),                        # width
    ).map(lambda t: (t[0] * t[2], t[1] * t[3], t[2], t[3], t[4]))


def _build_gemv(n, m, tn, tm, w, variant, alpha, beta, data=None):
    if data is None:
        data = (RNG.normal(size=(n, m)).astype(np.float32),
                RNG.normal(size=m).astype(np.float32),
                RNG.normal(size=n).astype(np.float32))
    a, x, y = data
    sched = row_tiles(n, m, tn, tm)
    eng = Engine()
    ca = eng.channel("A", 512)
    cx = eng.channel("x", max(512, 2 * tm))
    cy = eng.channel("y", 512)
    co = eng.channel("o", 512)
    out = []
    eng.add_kernel("sa", source_kernel(ca, stream_of(a, sched), w))
    eng.add_kernel("sx", source_kernel(cx, list(x), w, repeat=n // tn))
    eng.add_kernel("sy", source_kernel(cy, list(y), w))
    kernel = {"plain": level2.gemv_row_tiles,
              "db": level2.gemv_row_tiles_db}[variant]
    eng.add_kernel("gemv", kernel(n, m, alpha, beta, ca, cx, cy, co,
                                  tn, tm, w), latency=90)
    eng.add_kernel("sink", sink_kernel(co, n, w, out))
    eng.run()
    return np.array(out), reference.gemv(alpha, a, x, beta, y), (ca, cx, cy)


class TestGemvConformance:
    @settings(max_examples=30, deadline=None)
    @given(geometry(), st.floats(-2, 2), st.floats(-2, 2))
    def test_row_tiles_any_geometry(self, geo, alpha, beta):
        n, m, tn, tm, w = geo
        out, want, _ = _build_gemv(n, m, tn, tm, w, "plain", alpha, beta)
        np.testing.assert_allclose(out, want, rtol=1e-3, atol=1e-3)

    @settings(max_examples=30, deadline=None)
    @given(geometry())
    def test_double_buffered_equals_plain(self, geo):
        n, m, tn, tm, w = geo
        data = (RNG.normal(size=(n, m)).astype(np.float32),
                RNG.normal(size=m).astype(np.float32),
                RNG.normal(size=n).astype(np.float32))
        out_p, want, _ = _build_gemv(n, m, tn, tm, w, "plain", 1.0, 1.0,
                                     data=data)
        out_d, _, _ = _build_gemv(n, m, tn, tm, w, "db", 1.0, 1.0,
                                  data=data)
        np.testing.assert_allclose(out_p, want, rtol=1e-3, atol=1e-3)
        np.testing.assert_allclose(out_d, out_p, rtol=1e-5, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(geometry())
    def test_io_identity_every_geometry(self, geo):
        """Measured channel traffic equals the Sec. III-B closed form for
        every tiling geometry."""
        n, m, tn, tm, w = geo
        _, _, (ca, cx, cy) = _build_gemv(n, m, tn, tm, w, "plain", 1, 0)
        measured = ca.stats.pops + cx.stats.pops + cy.stats.pops + n
        assert measured == iomodel.gemv_io_tiles_by_rows(n, m, tn)


class TestGerConformance:
    @settings(max_examples=25, deadline=None)
    @given(geometry(), st.floats(-2, 2))
    def test_any_geometry(self, geo, alpha):
        n, m, tn, tm, w = geo
        a = RNG.normal(size=(n, m)).astype(np.float32)
        x = RNG.normal(size=n).astype(np.float32)
        y = RNG.normal(size=m).astype(np.float32)
        sched = row_tiles(n, m, tn, tm)
        eng = Engine()
        ca = eng.channel("A", 512)
        cx = eng.channel("x", 512)
        cy = eng.channel("y", 512)
        co = eng.channel("o", 512)
        out = []
        eng.add_kernel("sa", source_kernel(ca, stream_of(a, sched), w))
        eng.add_kernel("sx", source_kernel(cx, list(x), w))
        eng.add_kernel("sy", source_kernel(cy, list(y), w,
                                           repeat=n // tn))
        eng.add_kernel("ger", level2.ger_kernel(
            n, m, alpha, ca, cx, cy, co, tn, tm, w), latency=50)
        eng.add_kernel("sink", sink_kernel(co, n * m, w, out))
        eng.run()
        got = np.empty(n * m, dtype=np.float32)
        for v, idx in zip(out, sched.indices()):
            got[idx] = v
        np.testing.assert_allclose(got.reshape(n, m),
                                   reference.ger(alpha, x, y, a),
                                   rtol=1e-3, atol=1e-3)
