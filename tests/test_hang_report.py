"""Golden HangReport test: the paper's Sec. V "invalid ATAX" case.

ATAX reconverges the matrix stream (``A`` feeds both GEMV and the
transposed GEMV); with an undersized reconvergence channel the design
deadlocks.  The watchdog must turn that hang into a structured forensic
report — circular-wait certificate, channel pressure, and the static
analyzer's FB003 (reconvergent-fanout depth) verdict — instead of a bare
"deadlock at cycle N".
"""

import json

import numpy as np
import pytest

from repro.apps.atax import atax_streaming
from repro.fpga import DeadlockError
from repro.fpga.errors import HANG_REPORT_SCHEMA, HangReport
from repro.host.api import FblasContext


@pytest.fixture()
def atax_deadlock():
    ctx = FblasContext()
    rng = np.random.default_rng(0)
    a = rng.standard_normal((8, 8)).astype(np.float32)
    x = rng.standard_normal(8).astype(np.float32)
    with pytest.raises(DeadlockError) as info:
        atax_streaming(ctx, ctx.copy_to_device(a), ctx.copy_to_device(x),
                       tile=4, width=4, channel_depth=2)
    return info.value


class TestAtaxHangReport:
    def test_report_attached_and_typed(self, atax_deadlock):
        assert isinstance(atax_deadlock.report, HangReport)
        assert atax_deadlock.report.kind == "deadlock"
        assert atax_deadlock.report.cycle == atax_deadlock.cycle

    def test_blocked_set_names_the_reconvergence(self, atax_deadlock):
        blocked = atax_deadlock.report.blocked
        # The fanout cannot push into the undersized A2 channel while the
        # two GEMVs starve downstream of it.
        assert "fanout" in blocked and "'A2'" in blocked["fanout"]
        assert "gemv" in blocked and "pop" in blocked["gemv"]
        assert "gemvT" in blocked

    def test_wait_for_graph_has_circular_certificate(self, atax_deadlock):
        report = atax_deadlock.report
        assert ("fanout", "gemvT", "A2") in report.wait_for
        assert report.wait_cycles, "expected a circular-wait certificate"
        cycle = report.wait_cycles[0]
        assert {"fanout", "gemv", "gemvT"} <= set(cycle)

    def test_analyzer_blames_reconvergent_fanout(self, atax_deadlock):
        # FB003 is the static checker's reconvergent-fanout-depth code;
        # the forensic pass re-runs the checker on the hung design.
        assert "FB003" in atax_deadlock.report.analysis_codes()

    def test_channel_pressure_shows_starved_consumers(self, atax_deadlock):
        report = atax_deadlock.report
        pressure = {c.channel: c for c in report.channels}
        assert pressure["A2"].occupancy == pressure["A2"].depth == 2
        assert pressure["tmp"].occupancy == 0

    def test_render_text_golden_fragments(self, atax_deadlock):
        text = atax_deadlock.report.render_text()
        assert text.startswith("deadlock at cycle ")
        assert "wait-for graph:" in text
        assert "fanout -> gemvT  (via 'A2')" in text
        assert "circular wait: " in text
        assert "channel pressure:" in text
        assert "FB003" in text

    def test_to_dict_round_trips_through_json(self, atax_deadlock):
        doc = atax_deadlock.report.to_dict()
        assert doc["schema"] == HANG_REPORT_SCHEMA
        clone = json.loads(json.dumps(doc))
        assert clone["kind"] == "deadlock"
        assert clone["cycle"] == atax_deadlock.cycle
        assert any(e == ["fanout", "gemvT", "A2"]
                   for e in clone["wait_for"])
        assert any(d["code"] == "FB003" for d in clone["analysis"])

    def test_exception_message_summarises_blockers(self, atax_deadlock):
        msg = str(atax_deadlock)
        assert "deadlock at cycle" in msg
        assert "fanout" in msg and "A2" in msg

    def test_deterministic_across_runs(self, atax_deadlock):
        ctx = FblasContext()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8)).astype(np.float32)
        x = rng.standard_normal(8).astype(np.float32)
        with pytest.raises(DeadlockError) as info:
            atax_streaming(ctx, ctx.copy_to_device(a),
                           ctx.copy_to_device(x),
                           tile=4, width=4, channel_depth=2)
        again = info.value
        assert again.cycle == atax_deadlock.cycle
        assert again.report.to_dict() == atax_deadlock.report.to_dict()

    def test_valid_depth_does_not_trip(self):
        ctx = FblasContext()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8)).astype(np.float32)
        x = rng.standard_normal(8).astype(np.float32)
        res = atax_streaming(ctx, ctx.copy_to_device(a),
                             ctx.copy_to_device(x), tile=4, width=4)
        np.testing.assert_allclose(np.asarray(res.value),
                                   a.T @ (a @ x), rtol=1e-3)
