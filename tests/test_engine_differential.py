"""Differential tests: ``mode="dense"`` vs ``mode="event"``.

The wake-list scheduler must be *indistinguishable* from the dense
reference loop in everything but wall-clock time: cycle counts, kernel
stats (active/stall/start/finish), channel stats (pushes, pops, max
occupancy, stall counters), delivered data, trace timelines/occupancy,
and deadlocks (same cycle, same blocked set, same descriptions).  These
tests build the same random composition twice — one engine per mode —
run both, and compare everything.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import Clock, DeadlockError, Engine, Pop, Push


# ---------------------------------------------------------------------------
# Composition specs: pure data, so the same spec builds identical designs
# on two engines.
# ---------------------------------------------------------------------------

def _producer(ch, n, width, lat):
    i = 0
    while i < n:
        batch = tuple(float(j) for j in range(i, min(i + width, n)))
        yield Push(ch, batch, lat)
        i += len(batch)
        yield Clock()


def _mapper(cin, cout, n, width, lat, sleep):
    done = 0
    while done < n:
        take = min(width, n - done)
        vals = yield Pop(cin, take)
        if take == 1:
            vals = (vals,)
        yield Push(cout, tuple(v + 1.0 for v in vals), lat)
        done += take
        yield Clock(sleep)


def _deferrer(cin, cout, n, window, lat):
    """Consumes ``window`` elements before emitting them (reorder buffer)."""
    done = 0
    while done < n:
        buf = []
        take = min(window, n - done)
        for _ in range(take):
            v = yield Pop(cin)
            buf.append(v)
            done += 1
            yield Clock()
        for v in buf:
            yield Push(cout, (v,), lat)
            yield Clock()


def _duplicator(cin, c1, c2, n):
    for _ in range(n):
        v = yield Pop(cin)
        yield Push(c1, (v,), 1)
        yield Push(c2, (v,), 1)
        yield Clock()


def _zipper(c1, c2, cout, n, lat):
    for _ in range(n):
        a = yield Pop(c1)
        b = yield Pop(c2)
        yield Push(cout, (a + b,), lat)
        yield Clock()


def _collector(cin, n, out):
    for _ in range(n):
        v = yield Pop(cin)
        out.append(v)
        yield Clock()


stage_spec = st.one_of(
    st.tuples(st.just("map"), st.integers(1, 8),     # width
              st.integers(1, 20), st.integers(1, 4)),  # latency, sleep
    st.tuples(st.just("defer"), st.integers(1, 24),  # window
              st.integers(1, 20)),                     # latency
)

chain_spec = st.fixed_dictionaries({
    "n": st.integers(1, 40),
    "src_width": st.integers(1, 6),
    "src_lat": st.integers(1, 30),
    "depth": st.integers(1, 12),
    "stages": st.lists(stage_spec, min_size=0, max_size=3),
})

fanout_spec = st.fixed_dictionaries({
    "n": st.integers(1, 30),
    "src_lat": st.integers(1, 12),
    "depth_a": st.integers(1, 10),
    "depth_b": st.integers(1, 10),
    "defer_b": st.integers(0, 24),
    "lat": st.integers(1, 16),
})


def _build_chain(eng, spec, out):
    n = spec["n"]
    depth = max(spec["depth"], spec["src_width"],
                *[s[1] for s in spec["stages"] if s[0] == "map"] or [1])
    chans = [eng.channel(f"c{i}", depth)
             for i in range(len(spec["stages"]) + 1)]
    eng.add_kernel("src", _producer(chans[0], n, spec["src_width"],
                                    spec["src_lat"]))
    for i, s in enumerate(spec["stages"]):
        if s[0] == "map":
            eng.add_kernel(f"map{i}", _mapper(chans[i], chans[i + 1], n,
                                              s[1], s[2], s[3]))
        else:
            eng.add_kernel(f"defer{i}", _deferrer(chans[i], chans[i + 1], n,
                                                  s[1], s[2]))
    eng.add_kernel("sink", _collector(chans[-1], n, out))


def _build_fanout(eng, spec, out):
    """Duplicate -> (plain branch | deferring branch) -> zip rejoin.

    When ``defer_b`` exceeds what branch A can buffer, this is exactly
    the reconvergent deadlock of Sec. V — it must be detected at the
    same cycle with the same blocked set in both modes.
    """
    n = spec["n"]
    cin = eng.channel("cin", 8)
    ca = eng.channel("ca", spec["depth_a"])
    cb = eng.channel("cb", spec["depth_b"])
    cmid = eng.channel("cmid", spec["depth_b"])
    cout = eng.channel("cout", 8)
    eng.add_kernel("src", _producer(cin, n, 1, spec["src_lat"]))
    eng.add_kernel("dup", _duplicator(cin, ca, cb, n))
    if spec["defer_b"]:
        eng.add_kernel("defer", _deferrer(cb, cmid, n, spec["defer_b"],
                                          spec["lat"]))
    else:
        eng.add_kernel("fwd", _mapper(cb, cmid, n, 1, spec["lat"], 1))
    eng.add_kernel("zip", _zipper(ca, cmid, cout, n, spec["lat"]))
    eng.add_kernel("sink", _collector(cout, n, out))


# ---------------------------------------------------------------------------
# The differential harness
# ---------------------------------------------------------------------------

def _outcome(mode, build, spec, trace):
    eng = Engine(mode=mode, trace=trace)
    out = []
    build(eng, spec, out)
    try:
        report = eng.run(max_cycles=200_000)
    except DeadlockError as exc:
        return ("deadlock", exc.cycle, dict(exc.blocked), _stats(eng), None)
    return ("done", report.cycles, out, _stats(eng),
            (report.occupancy_sums, report.timelines) if trace else None)


def _stats(eng):
    kstats = {
        name: (k.stats.active_cycles, k.stats.stall_cycles,
               k.stats.start_cycle, k.stats.finish_cycle)
        for name, k in eng.kernels.items()
    }
    cstats = {
        name: (c.stats.pushes, c.stats.pops, c.stats.max_occupancy,
               c.stats.stalled_push_cycles, c.stats.stalled_pop_cycles)
        for name, c in eng.channels.items()
    }
    return kstats, cstats


def _assert_identical(build, spec, trace=False):
    dense = _outcome("dense", build, spec, trace)
    event = _outcome("event", build, spec, trace)
    assert dense[0] == event[0], (
        f"outcome diverged: dense={dense[0]} event={event[0]} for {spec}")
    assert dense[1] == event[1], (
        f"cycle count diverged: dense={dense[1]} event={event[1]} for {spec}")
    assert dense[2] == event[2], f"payload diverged for {spec}"
    assert dense[3] == event[3], f"stats diverged for {spec}"
    assert dense[4] == event[4], f"trace diverged for {spec}"


class TestDifferentialRandom:
    @settings(max_examples=120, deadline=None)
    @given(chain_spec)
    def test_chains_identical(self, spec):
        """Random pipelines: identical reports or identical deadlocks."""
        _assert_identical(_build_chain, spec)

    @settings(max_examples=120, deadline=None)
    @given(fanout_spec)
    def test_reconvergent_identical(self, spec):
        """Random fan-out/re-join designs, including Sec. V deadlocks."""
        _assert_identical(_build_fanout, spec)

    @settings(max_examples=25, deadline=None)
    @given(chain_spec)
    def test_chains_identical_traced(self, spec):
        """Timelines and occupancy sums are byte-identical too."""
        _assert_identical(_build_chain, spec, trace=True)

    @settings(max_examples=25, deadline=None)
    @given(fanout_spec)
    def test_reconvergent_identical_traced(self, spec):
        _assert_identical(_build_fanout, spec, trace=True)


class TestDifferentialDirected:
    def test_guaranteed_deadlock_parity(self):
        """A reconvergent window no branch can buffer deadlocks in both
        modes at the same cycle with the same blocked descriptions."""
        spec = {"n": 20, "src_lat": 1, "depth_a": 2, "depth_b": 2,
                "defer_b": 18, "lat": 1}
        dense = _outcome("dense", _build_fanout, spec, False)
        event = _outcome("event", _build_fanout, spec, False)
        assert dense[0] == "deadlock" and event[0] == "deadlock"
        assert dense == event

    def test_orphan_pop_deadlock_parity(self):
        """A consumer with no producer blocks forever, in both modes."""
        outcomes = {}
        for mode in ("dense", "event"):
            eng = Engine(mode=mode)
            ch = eng.channel("lonely", 4)
            eng.add_kernel("sink", _collector(ch, 3, []))
            with pytest.raises(DeadlockError) as exc:
                eng.run()
            outcomes[mode] = (exc.value.cycle, dict(exc.value.blocked),
                              _stats(eng))
        assert outcomes["dense"] == outcomes["event"]

    def test_sleeping_kernels_wake_before_deadlock(self):
        """A long Clock(n) sleep defers the deadlock verdict identically."""
        def sleeper(ch):
            yield Clock(500)
            yield Pop(ch)      # never satisfied -> deadlock after waking

        outcomes = {}
        for mode in ("dense", "event"):
            eng = Engine(mode=mode)
            ch = eng.channel("c", 4)
            eng.add_kernel("sleepy", sleeper(ch))
            with pytest.raises(DeadlockError) as exc:
                eng.run()
            outcomes[mode] = (exc.value.cycle, dict(exc.value.blocked),
                              _stats(eng))
        assert outcomes["dense"] == outcomes["event"]

    def test_max_cycles_raised_in_both_modes(self):
        from repro.fpga import SimulationError

        for mode in ("dense", "event"):
            eng = Engine(mode=mode)
            ch = eng.channel("c", 4)
            eng.add_kernel("sink", _collector(ch, 3, []))
            eng.add_kernel("drip", _producer(ch, 1, 1, 40))
            with pytest.raises((SimulationError, DeadlockError)):
                eng.run(max_cycles=10)
            assert eng.now <= 10

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            Engine(mode="quantum")
