"""Differential tests: ``mode="dense"`` vs ``mode="event"`` vs ``mode="bulk"``.

The wake-list scheduler and the bulk steady-state tier must be
*indistinguishable* from the dense reference loop in everything but
wall-clock time: cycle counts, kernel stats (active/stall/start/finish),
channel stats (pushes, pops, max occupancy, stall counters), delivered
data, trace timelines/occupancy, and deadlocks (same cycle, same blocked
set, same descriptions).  These tests build the same composition once per
mode, run all three, and compare everything.

Two families of random designs:

* the original *dynamic* chains/fan-outs (unpatterned generators) — for
  these the bulk tier must behave exactly like the event scheduler, its
  fast path never engaging;
* *patterned* chains built from the real module generators
  (``repro.fpga.util`` sources/sinks, ``repro.blas.level1``), where the
  fast path does engage and every counter must still match — including
  specs that deadlock (Sec. V parity) and mixed static/dynamic designs
  that force mid-run fallback.

A third property covers ``mode="certified"``: any composition the FB4xx
rate analysis certifies must replay byte-identical to the event core
with zero runtime probes/cooldowns, and any composition it refuses must
be refused *before* a single cycle is simulated.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas import level1
from repro.fpga import Clock, DeadlockError, Engine, Pop, Push
from repro.fpga.util import duplicate_kernel, scalar_sink, sink_kernel, \
    source_kernel

_MODES = ("dense", "event", "bulk")


# ---------------------------------------------------------------------------
# Composition specs: pure data, so the same spec builds identical designs
# on two engines.
# ---------------------------------------------------------------------------

def _producer(ch, n, width, lat):
    i = 0
    while i < n:
        batch = tuple(float(j) for j in range(i, min(i + width, n)))
        yield Push(ch, batch, lat)
        i += len(batch)
        yield Clock()


def _mapper(cin, cout, n, width, lat, sleep):
    done = 0
    while done < n:
        take = min(width, n - done)
        vals = yield Pop(cin, take)
        if take == 1:
            vals = (vals,)
        yield Push(cout, tuple(v + 1.0 for v in vals), lat)
        done += take
        yield Clock(sleep)


def _deferrer(cin, cout, n, window, lat):
    """Consumes ``window`` elements before emitting them (reorder buffer)."""
    done = 0
    while done < n:
        buf = []
        take = min(window, n - done)
        for _ in range(take):
            v = yield Pop(cin)
            buf.append(v)
            done += 1
            yield Clock()
        for v in buf:
            yield Push(cout, (v,), lat)
            yield Clock()


def _duplicator(cin, c1, c2, n):
    for _ in range(n):
        v = yield Pop(cin)
        yield Push(c1, (v,), 1)
        yield Push(c2, (v,), 1)
        yield Clock()


def _zipper(c1, c2, cout, n, lat):
    for _ in range(n):
        a = yield Pop(c1)
        b = yield Pop(c2)
        yield Push(cout, (a + b,), lat)
        yield Clock()


def _collector(cin, n, out):
    for _ in range(n):
        v = yield Pop(cin)
        out.append(v)
        yield Clock()


stage_spec = st.one_of(
    st.tuples(st.just("map"), st.integers(1, 8),     # width
              st.integers(1, 20), st.integers(1, 4)),  # latency, sleep
    st.tuples(st.just("defer"), st.integers(1, 24),  # window
              st.integers(1, 20)),                     # latency
)

chain_spec = st.fixed_dictionaries({
    "n": st.integers(1, 40),
    "src_width": st.integers(1, 6),
    "src_lat": st.integers(1, 30),
    "depth": st.integers(1, 12),
    "stages": st.lists(stage_spec, min_size=0, max_size=3),
})

fanout_spec = st.fixed_dictionaries({
    "n": st.integers(1, 30),
    "src_lat": st.integers(1, 12),
    "depth_a": st.integers(1, 10),
    "depth_b": st.integers(1, 10),
    "defer_b": st.integers(0, 24),
    "lat": st.integers(1, 16),
})


def _build_chain(eng, spec, out):
    n = spec["n"]
    depth = max(spec["depth"], spec["src_width"],
                *[s[1] for s in spec["stages"] if s[0] == "map"] or [1])
    chans = [eng.channel(f"c{i}", depth)
             for i in range(len(spec["stages"]) + 1)]
    eng.add_kernel("src", _producer(chans[0], n, spec["src_width"],
                                    spec["src_lat"]))
    for i, s in enumerate(spec["stages"]):
        if s[0] == "map":
            eng.add_kernel(f"map{i}", _mapper(chans[i], chans[i + 1], n,
                                              s[1], s[2], s[3]))
        else:
            eng.add_kernel(f"defer{i}", _deferrer(chans[i], chans[i + 1], n,
                                                  s[1], s[2]))
    eng.add_kernel("sink", _collector(chans[-1], n, out))


def _build_fanout(eng, spec, out):
    """Duplicate -> (plain branch | deferring branch) -> zip rejoin.

    When ``defer_b`` exceeds what branch A can buffer, this is exactly
    the reconvergent deadlock of Sec. V — it must be detected at the
    same cycle with the same blocked set in both modes.
    """
    n = spec["n"]
    cin = eng.channel("cin", 8)
    ca = eng.channel("ca", spec["depth_a"])
    cb = eng.channel("cb", spec["depth_b"])
    cmid = eng.channel("cmid", spec["depth_b"])
    cout = eng.channel("cout", 8)
    eng.add_kernel("src", _producer(cin, n, 1, spec["src_lat"]))
    eng.add_kernel("dup", _duplicator(cin, ca, cb, n))
    if spec["defer_b"]:
        eng.add_kernel("defer", _deferrer(cb, cmid, n, spec["defer_b"],
                                          spec["lat"]))
    else:
        eng.add_kernel("fwd", _mapper(cb, cmid, n, 1, spec["lat"], 1))
    eng.add_kernel("zip", _zipper(ca, cmid, cout, n, spec["lat"]))
    eng.add_kernel("sink", _collector(cout, n, out))


# ---------------------------------------------------------------------------
# The differential harness
# ---------------------------------------------------------------------------

def _outcome(mode, build, spec, trace):
    eng = Engine(mode=mode, trace=trace)
    out = []
    build(eng, spec, out)
    try:
        report = eng.run(max_cycles=200_000)
    except DeadlockError as exc:
        return ("deadlock", exc.cycle, dict(exc.blocked), _stats(eng), None)
    return ("done", report.cycles, out, _stats(eng),
            (report.occupancy_sums, report.timelines) if trace else None)


def _stats(eng):
    kstats = {
        name: (k.stats.active_cycles, k.stats.stall_cycles,
               k.stats.start_cycle, k.stats.finish_cycle)
        for name, k in eng.kernels.items()
    }
    cstats = {
        name: (c.stats.pushes, c.stats.pops, c.stats.max_occupancy,
               c.stats.stalled_push_cycles, c.stats.stalled_pop_cycles)
        for name, c in eng.channels.items()
    }
    return kstats, cstats


def _assert_identical(build, spec, trace=False):
    dense = _outcome("dense", build, spec, trace)
    for mode in ("event", "bulk"):
        other = _outcome(mode, build, spec, trace)
        assert dense[0] == other[0], (
            f"outcome diverged: dense={dense[0]} {mode}={other[0]} "
            f"for {spec}")
        assert dense[1] == other[1], (
            f"cycle count diverged: dense={dense[1]} {mode}={other[1]} "
            f"for {spec}")
        assert dense[2] == other[2], f"payload diverged ({mode}) for {spec}"
        assert dense[3] == other[3], f"stats diverged ({mode}) for {spec}"
        assert dense[4] == other[4], f"trace diverged ({mode}) for {spec}"


class TestDifferentialRandom:
    @settings(max_examples=120, deadline=None)
    @given(chain_spec)
    def test_chains_identical(self, spec):
        """Random pipelines: identical reports or identical deadlocks."""
        _assert_identical(_build_chain, spec)

    @settings(max_examples=120, deadline=None)
    @given(fanout_spec)
    def test_reconvergent_identical(self, spec):
        """Random fan-out/re-join designs, including Sec. V deadlocks."""
        _assert_identical(_build_fanout, spec)

    @settings(max_examples=25, deadline=None)
    @given(chain_spec)
    def test_chains_identical_traced(self, spec):
        """Timelines and occupancy sums are byte-identical too."""
        _assert_identical(_build_chain, spec, trace=True)

    @settings(max_examples=25, deadline=None)
    @given(fanout_spec)
    def test_reconvergent_identical_traced(self, spec):
        _assert_identical(_build_fanout, spec, trace=True)


# ---------------------------------------------------------------------------
# Patterned designs: real module generators, where the bulk fast path
# actually engages (the dynamic designs above never trigger it).
# ---------------------------------------------------------------------------

patterned_chain_spec = st.fixed_dictionaries({
    "n": st.integers(1, 120),
    "width": st.integers(1, 8),
    "depth": st.integers(1, 24),
    "lat": st.integers(1, 30),
    "stages": st.lists(
        st.sampled_from(("scal", "copy")), min_size=0, max_size=3),
    "reduce": st.sampled_from((None, "asum", "nrm2", "iamax")),
    "dynamic_stage": st.booleans(),
})

patterned_fanout_spec = st.fixed_dictionaries({
    "n": st.integers(1, 60),
    "width": st.integers(1, 4),
    "depth_a": st.integers(1, 12),
    "depth_b": st.integers(1, 12),
    "lat": st.integers(1, 16),
})


def _build_patterned_chain(eng, spec, out):
    """source x2 -> axpy -> map stages [-> dynamic mapper] [-> reduction]."""
    n, w = spec["n"], spec["width"]
    depth = max(spec["depth"], w)       # engine rejects depth < consumer width
    data_x = [np.float32((i % 23) - 11) for i in range(n)]
    data_y = [np.float32((i % 7) - 3) for i in range(n)]
    cx = eng.channel("cx", depth)
    cy = eng.channel("cy", depth)
    eng.add_kernel("src_x", source_kernel(cx, data_x, w))
    eng.add_kernel("src_y", source_kernel(cy, data_y, w))
    cur = eng.channel("c0", depth)
    eng.add_kernel("axpy", level1.axpy_kernel(n, 0.5, cx, cy, cur, w),
                   latency=spec["lat"])
    for i, stg in enumerate(spec["stages"]):
        nxt = eng.channel(f"c{i + 1}", depth)
        if stg == "scal":
            eng.add_kernel(f"scal{i}",
                           level1.scal_kernel(n, 2.0, cur, nxt, w),
                           latency=3)
        else:
            eng.add_kernel(f"copy{i}",
                           level1.copy_kernel(n, cur, nxt, w),
                           latency=2)
        cur = nxt
    if spec["dynamic_stage"]:
        # An unpatterned kernel in the middle of the pipeline: the bulk
        # tier must fall back around it mid-run.
        nxt = eng.channel("cdyn", depth)
        eng.add_kernel("dyn", _mapper(cur, nxt, n, max(1, w - 1), 2, 1))
        cur = nxt
    if spec["reduce"]:
        cres = eng.channel("cres", 4)
        maker = {"asum": level1.asum_kernel, "nrm2": level1.nrm2_kernel,
                 "iamax": level1.iamax_kernel}[spec["reduce"]]
        eng.add_kernel("red", maker(n, cur, cres, w), latency=5)
        eng.add_kernel("sink", sink_kernel(cres, 1, 1, out))
    else:
        eng.add_kernel("sink", sink_kernel(cur, n, w, out))


def _build_patterned_fanout(eng, spec, out):
    """source -> duplicate -> (direct | scal) -> dot rejoin.

    Shallow branch depths against the scal latency reproduce the Sec. V
    reconvergent deadlock with patterned kernels; deeper ones run to
    completion — both must agree across all three cores.
    """
    n, w = spec["n"], spec["width"]
    data = [np.float32((i % 13) - 6) for i in range(n)]
    cin = eng.channel("cin", 8)
    ca = eng.channel("ca", max(spec["depth_a"], w))
    cb = eng.channel("cb", max(spec["depth_b"], w))
    cmid = eng.channel("cmid", 8)
    cres = eng.channel("cres", 4)
    eng.add_kernel("src", source_kernel(cin, data, w))
    eng.add_kernel("dup", duplicate_kernel(cin, (ca, cb), n, w))
    eng.add_kernel("scal", level1.scal_kernel(n, 3.0, cb, cmid, w),
                   latency=spec["lat"])
    eng.add_kernel("dot", level1.dot_kernel(n, ca, cmid, cres, w),
                   latency=spec["lat"])
    eng.add_kernel("sink", scalar_sink(cres, out))


class TestDifferentialPatterned:
    @settings(max_examples=100, deadline=None)
    @given(patterned_chain_spec)
    def test_patterned_chains_identical(self, spec):
        """Patterned pipelines: all three cores agree on everything."""
        _assert_identical(_build_patterned_chain, spec)

    @settings(max_examples=100, deadline=None)
    @given(patterned_fanout_spec)
    def test_patterned_fanout_identical(self, spec):
        """Patterned fan-out/re-join, including Sec. V deadlock parity."""
        _assert_identical(_build_patterned_fanout, spec)

    @settings(max_examples=20, deadline=None)
    @given(patterned_chain_spec)
    def test_patterned_chains_identical_traced(self, spec):
        """With trace observers attached the fast path must disable
        itself; timelines stay byte-identical."""
        _assert_identical(_build_patterned_chain, spec, trace=True)

    def test_fast_path_engages_on_steady_chain(self):
        """Sanity: on a long patterned chain the bulk tier really does
        fast-forward most of the run (it is not silently falling back)."""
        spec = {"n": 2048, "width": 4, "depth": 16, "lat": 8,
                "stages": ["scal", "copy"], "reduce": "asum",
                "dynamic_stage": False}
        eng = Engine(mode="bulk")
        out = []
        _build_patterned_chain(eng, spec, out)
        report = eng.run()
        assert eng._bulk_windows >= 1
        assert eng._bulk_cycles >= report.cycles // 2

    def test_patterned_deadlock_parity(self):
        """An axpy missing its second operand stream deadlocks at the
        same cycle with the same blocked set in all three cores."""
        outcomes = {}
        for mode in _MODES:
            eng = Engine(mode=mode)
            n, w = 40, 4
            cx = eng.channel("cx", 8)
            cy = eng.channel("cy", 8)
            cz = eng.channel("cz", 8)
            data = [np.float32(i) for i in range(n)]
            eng.add_kernel("src_x", source_kernel(cx, data, w))
            eng.add_kernel("axpy",
                           level1.axpy_kernel(n, 1.5, cx, cy, cz, w),
                           latency=4)
            eng.add_kernel("sink", sink_kernel(cz, n, w, []))
            with pytest.raises(DeadlockError) as exc:
                eng.run()
            outcomes[mode] = (exc.value.cycle, dict(exc.value.blocked),
                              _stats(eng))
        assert outcomes["dense"] == outcomes["event"] == outcomes["bulk"]

    def test_mixed_static_dynamic_fallback(self):
        """A sleeping unpatterned monitor kernel bounds every window: the
        bulk tier fast-forwards between its wakes and falls back around
        them, with identical results and counters."""
        def monitor(ticks):
            for _ in range(ticks):
                yield Clock(37)

        results = {}
        for mode in _MODES:
            eng = Engine(mode=mode)
            n, w = 4000, 4
            data_x = [np.float32(i % 17) for i in range(n)]
            data_y = [np.float32(i % 5) for i in range(n)]
            cx = eng.channel("cx", 4 * w)
            cy = eng.channel("cy", 4 * w)
            cz = eng.channel("cz", 4 * w)
            cres = eng.channel("cres", 4)
            out = []
            eng.add_kernel("src_x", source_kernel(cx, data_x, w))
            eng.add_kernel("src_y", source_kernel(cy, data_y, w))
            eng.add_kernel("axpy",
                           level1.axpy_kernel(n, 0.25, cx, cy, cz, w),
                           latency=12)
            eng.add_kernel("asum", level1.asum_kernel(n, cz, cres, w),
                           latency=9)
            eng.add_kernel("sink", scalar_sink(cres, out))
            eng.add_kernel("monitor", monitor(60))
            report = eng.run()
            results[mode] = (report.to_dict(), out, _stats(eng))
            if mode == "bulk":
                assert eng._bulk_windows > 0
                assert eng._bulk_cycles > 0
        assert results["dense"] == results["event"] == results["bulk"]


class TestDifferentialDirected:
    def test_guaranteed_deadlock_parity(self):
        """A reconvergent window no branch can buffer deadlocks in both
        modes at the same cycle with the same blocked descriptions."""
        spec = {"n": 20, "src_lat": 1, "depth_a": 2, "depth_b": 2,
                "defer_b": 18, "lat": 1}
        outcomes = {m: _outcome(m, _build_fanout, spec, False)
                    for m in _MODES}
        assert all(o[0] == "deadlock" for o in outcomes.values())
        assert outcomes["dense"] == outcomes["event"] == outcomes["bulk"]

    def test_orphan_pop_deadlock_parity(self):
        """A consumer with no producer blocks forever, in both modes."""
        outcomes = {}
        for mode in _MODES:
            eng = Engine(mode=mode)
            ch = eng.channel("lonely", 4)
            eng.add_kernel("sink", _collector(ch, 3, []))
            with pytest.raises(DeadlockError) as exc:
                eng.run()
            outcomes[mode] = (exc.value.cycle, dict(exc.value.blocked),
                              _stats(eng))
        assert outcomes["dense"] == outcomes["event"] == outcomes["bulk"]

    def test_sleeping_kernels_wake_before_deadlock(self):
        """A long Clock(n) sleep defers the deadlock verdict identically."""
        def sleeper(ch):
            yield Clock(500)
            yield Pop(ch)      # never satisfied -> deadlock after waking

        outcomes = {}
        for mode in _MODES:
            eng = Engine(mode=mode)
            ch = eng.channel("c", 4)
            eng.add_kernel("sleepy", sleeper(ch))
            with pytest.raises(DeadlockError) as exc:
                eng.run()
            outcomes[mode] = (exc.value.cycle, dict(exc.value.blocked),
                              _stats(eng))
        assert outcomes["dense"] == outcomes["event"] == outcomes["bulk"]

    def test_max_cycles_raised_in_both_modes(self):
        from repro.fpga import SimulationError

        for mode in _MODES:
            eng = Engine(mode=mode)
            ch = eng.channel("c", 4)
            eng.add_kernel("sink", _collector(ch, 3, []))
            eng.add_kernel("drip", _producer(ch, 1, 1, 40))
            with pytest.raises((SimulationError, DeadlockError)):
                eng.run(max_cycles=10)
            assert eng.now <= 10

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            Engine(mode="quantum")


# ---------------------------------------------------------------------------
# Certified mode: certification implies byte-identical probe-free replay.
# ---------------------------------------------------------------------------

def _build_certified_fanout(eng, spec, out):
    """The patterned fan-out with a *patterned* scalar sink, so the whole
    design is certifiable (``scalar_sink`` is deliberately dynamic)."""
    n, w = spec["n"], spec["width"]
    data = [np.float32((i % 13) - 6) for i in range(n)]
    cin = eng.channel("cin", 8)
    ca = eng.channel("ca", max(spec["depth_a"], w))
    cb = eng.channel("cb", max(spec["depth_b"], w))
    cmid = eng.channel("cmid", 8)
    cres = eng.channel("cres", 4)
    eng.add_kernel("src", source_kernel(cin, data, w))
    eng.add_kernel("dup", duplicate_kernel(cin, (ca, cb), n, w))
    eng.add_kernel("scal", level1.scal_kernel(n, 3.0, cb, cmid, w),
                   latency=spec["lat"])
    eng.add_kernel("dot", level1.dot_kernel(n, ca, cmid, cres, w),
                   latency=spec["lat"])
    eng.add_kernel("sink", sink_kernel(cres, 1, 1, out))


class TestDifferentialCertified:
    """When certification succeeds, the certified core must be
    indistinguishable from the event core (data, cycles, all stats)
    while never probing; when it fails, the design is rejected before
    cycle 0."""

    def _check(self, build, spec):
        from repro.analysis import AnalysisError

        eng = Engine(mode="certified")
        out = []
        build(eng, spec, out)
        try:
            report = eng.run(max_cycles=200_000)
        except AnalysisError:
            # Not certifiable (dynamic stage, mixed lanes, ...): the
            # refusal is pre-flight — nothing ran.
            assert all(k.stats.active_cycles == 0
                       for k in eng.kernels.values())
            return
        except DeadlockError as exc:
            certified = ("deadlock", exc.cycle, dict(exc.blocked),
                         _stats(eng), None)
        else:
            certified = ("done", report.cycles, out, _stats(eng), None)
        assert eng._bulk_probes == 0, f"certified run probed for {spec}"
        assert eng._bulk_cooldowns == 0
        event = _outcome("event", build, spec, False)
        assert certified == event, (
            f"certified diverged from event for {spec}")

    @settings(max_examples=100, deadline=None)
    @given(patterned_chain_spec)
    def test_certified_chains_match_event(self, spec):
        self._check(_build_patterned_chain, spec)

    @settings(max_examples=60, deadline=None)
    @given(patterned_fanout_spec)
    def test_certified_fanout_matches_event(self, spec):
        self._check(_build_certified_fanout, spec)


# ---------------------------------------------------------------------------
# Plan IR routing: certifying the *compiled* plan of one build must yield
# the exact certificate a separately built identical engine replays.
# ---------------------------------------------------------------------------

class TestDifferentialPlanIR:
    """One side routed through ``compile_plan()``.

    A probe engine is compiled to the typed :class:`repro.plan.PlanIR`
    and *the IR* is certified into a :class:`repro.plan.PlanCache`.  A
    second, separately built engine then runs in certified mode against
    that cache: its ``plan_key`` must hit the IR-derived entry (the IR
    is structurally faithful to the live engine), and the replay must
    stay byte-identical to the event core — data, cycles, every kernel
    and channel counter."""

    def _check(self, build, spec):
        from repro.analysis import AnalysisError, ensure_certified
        from repro.plan import PlanCache, compile_plan

        probe = Engine(mode="certified")
        build(probe, spec, [])
        plan = compile_plan(probe)
        cache = PlanCache()
        try:
            ensure_certified(plan, cache=cache)
        except AnalysisError:
            # Refusals are covered by TestDifferentialCertified; here we
            # only require the IR to be refused iff the engine is.
            with pytest.raises(AnalysisError):
                ensure_certified(probe)
            return
        assert plan.plan_key in cache

        eng = Engine(mode="certified", schedule_cache=cache)
        out = []
        build(eng, spec, out)
        hits_before = cache.hits
        try:
            report = eng.run(max_cycles=200_000)
        except DeadlockError as exc:
            certified = ("deadlock", exc.cycle, dict(exc.blocked),
                         _stats(eng), None)
        else:
            certified = ("done", report.cycles, out, _stats(eng), None)
        # The separately built engine hashed to the same plan_key and
        # replayed the certificate derived from the compiled IR.
        assert cache.hits > hits_before, f"plan_key missed for {spec}"
        assert eng._bulk_probes == 0
        assert eng._bulk_cooldowns == 0
        event = _outcome("event", build, spec, False)
        assert certified == event, (
            f"IR-certified run diverged from event for {spec}")

    @settings(max_examples=60, deadline=None)
    @given(patterned_chain_spec)
    def test_ir_certified_chains_match_event(self, spec):
        self._check(_build_patterned_chain, spec)

    @settings(max_examples=40, deadline=None)
    @given(patterned_fanout_spec)
    def test_ir_certified_fanout_matches_event(self, spec):
        self._check(_build_certified_fanout, spec)
