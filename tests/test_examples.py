"""Every example script must run to completion and print sane output."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_has_at_least_three_scripts():
    scripts = list(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "sdot" in out
    assert "sgemm" in out
    assert "cycles" in out
    assert "[simulate]" in out


def test_streaming_composition():
    out = run_example("streaming_composition.py")
    assert "AXPYDOT" in out
    assert "speedup" in out
    assert "deadlock" in out.lower()
    assert "valid=True" in out
    assert "valid=False" in out


def test_codegen_demo():
    out = run_example("codegen_demo.py")
    assert "#pragma unroll" in out
    assert "generated DOT executed" in out
    assert "result" in out


def test_systolic_gemm():
    out = run_example("systolic_gemm.py")
    assert "PE utilization" in out
    assert "Tflop/s" in out


def test_design_space_exploration():
    out = run_example("design_space_exploration.py")
    assert "width sweep" in out
    assert "optimal" in out


def test_composition_executor():
    out = run_example("composition_executor.py")
    assert "reconvergent pairs" in out
    assert "DRAM round trip" in out
    assert "sized channel" in out
    assert "machine-derived" in out


def test_conjugate_gradient():
    out = run_example("conjugate_gradient.py")
    assert "iterations" in out
    assert "gemv" in out
    # converged to a small residual
    assert "e-0" in out
