"""Property-based tests on the simulator's core invariants.

These pin down the substrate guarantees everything else relies on:
data conservation through arbitrary pipelines, FIFO ordering, timing lower
bounds, determinism, and clean failure propagation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import (
    Channel,
    Clock,
    DeadlockError,
    Engine,
    Pop,
    Push,
    sink_kernel,
    source_kernel,
)
from repro.fpga.util import duplicate_kernel, forward_kernel


def passthrough(n, ch_in, ch_out, width):
    done = 0
    while done < n:
        c = min(width, n - done)
        vals = yield Pop(ch_in, c)
        if c == 1:
            vals = (vals,)
        yield Push(ch_out, tuple(vals), None)
        yield Clock()
        done += c


chain_params = st.tuples(
    st.integers(1, 200),                       # n
    st.integers(1, 4),                         # number of chained stages
    st.lists(st.integers(1, 16), min_size=4, max_size=4),   # widths
    st.lists(st.integers(1, 80), min_size=4, max_size=4),   # latencies
    st.integers(2, 64),                        # extra channel depth
).map(lambda t: (t[0], t[1], t[2], t[3], t[4] + max(t[2])))
# A channel must be at least as deep as its consumer's per-cycle width;
# the map above keeps the generated depths structurally valid.


class TestConservation:
    @settings(max_examples=60, deadline=None)
    @given(chain_params)
    def test_chained_pipelines_conserve_data_and_order(self, params):
        """Any chain of forwarding stages delivers exactly the input,
        in order, for any widths, latencies, and channel depths."""
        n, stages, widths, latencies, depth = params
        data = list(range(n))
        eng = Engine()
        chans = [eng.channel(f"c{i}", depth) for i in range(stages + 1)]
        eng.add_kernel("src", source_kernel(chans[0], data, widths[0]))
        for s in range(stages):
            eng.add_kernel(f"k{s}", passthrough(
                n, chans[s], chans[s + 1], widths[s % 4]),
                latency=latencies[s % 4])
        out = []
        eng.add_kernel("sink", sink_kernel(chans[-1], n, widths[-1], out))
        report = eng.run()
        assert out == data
        # lower bound: data can't move faster than the narrowest stage
        narrowest = min(widths[s % 4] for s in range(stages))
        assert report.cycles >= n // max(narrowest, 1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 100), st.integers(1, 8), st.integers(1, 8))
    def test_fanout_duplicates_exactly(self, n, width, consumers):
        data = list(range(n))
        eng = Engine()
        cin = eng.channel("in", 64)
        outs = [eng.channel(f"o{i}", 64) for i in range(consumers)]
        eng.add_kernel("src", source_kernel(cin, data, width))
        eng.add_kernel("dup", duplicate_kernel(cin, outs, n, width))
        sinks = []
        for i, ch in enumerate(outs):
            lst = []
            sinks.append(lst)
            eng.add_kernel(f"s{i}", sink_kernel(ch, n, width, lst))
        eng.run()
        for lst in sinks:
            assert lst == data

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 120), st.integers(1, 10), st.integers(1, 10))
    def test_mismatched_widths_still_conserve(self, n, w_prod, w_cons):
        """Producer and consumer widths need not match: the FIFO decouples
        them without loss or reordering."""
        data = list(np.arange(n, dtype=float))
        eng = Engine()
        ch = eng.channel("c", 32)
        out = []
        eng.add_kernel("src", source_kernel(ch, data, w_prod))
        eng.add_kernel("sink", sink_kernel(ch, n, w_cons, out))
        eng.run()
        assert out == data


class TestDeterminism:
    def test_identical_runs_produce_identical_reports(self):
        def build():
            eng = Engine()
            c1 = eng.channel("a", 8)
            c2 = eng.channel("b", 8)
            eng.add_kernel("src", source_kernel(c1, list(range(100)), 3))
            eng.add_kernel("mid", forward_kernel(c1, c2, 100, 5))
            eng.add_kernel("sink", sink_kernel(c2, 100, 2))
            return eng.run()

        r1 = build()
        r2 = build()
        assert r1.cycles == r2.cycles
        assert r1.total_stall_cycles == r2.total_stall_cycles


class TestTimingBounds:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(8, 400), st.integers(1, 8), st.integers(1, 90))
    def test_cycle_count_bounds(self, n, width, latency):
        """N/W <= cycles <= N/W + O(latency) for a stall-free pipeline."""
        eng = Engine()
        ci = eng.channel("i", 8 * width)
        co = eng.channel("o", 8 * width)
        eng.add_kernel("src", source_kernel(ci, [0.0] * n, width))
        eng.add_kernel("k", passthrough(n, ci, co, width), latency=latency)
        eng.add_kernel("sink", sink_kernel(co, n, width))
        cycles = eng.run().cycles
        steps = -(-n // width)
        assert cycles >= steps
        assert cycles <= steps + 2 * latency + 16

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 40), st.integers(1, 6))
    def test_latency_delays_first_output_only(self, latency, width):
        """Latency shifts the completion time by ~L, independent of N."""
        def run(lat):
            n = 240
            eng = Engine()
            ci = eng.channel("i", 8 * width)
            co = eng.channel("o", 8 * width)
            eng.add_kernel("src", source_kernel(ci, [0.0] * n, width))
            eng.add_kernel("k", passthrough(n, ci, co, width), latency=lat)
            eng.add_kernel("sink", sink_kernel(co, n, width))
            return eng.run().cycles

        base = run(1)
        delayed = run(1 + latency)
        assert 0 <= delayed - base <= latency + 4


class TestFailurePropagation:
    def test_kernel_exception_surfaces(self):
        """A bug inside a kernel body aborts the simulation loudly."""
        eng = Engine()
        ch = eng.channel("c", 4)

        def broken():
            yield Push(ch, (1.0,), 1)
            raise RuntimeError("kernel bug")

        eng.add_kernel("bad", broken())
        eng.add_kernel("sink", sink_kernel(ch, 1, 1))
        with pytest.raises(RuntimeError, match="kernel bug"):
            eng.run()

    def test_nan_values_flow_through_unharmed(self):
        """The substrate is value-agnostic: Nainput -> NaN output, no
        hangs or crashes."""
        data = [1.0, float("nan"), 3.0]
        eng = Engine()
        ch = eng.channel("c", 8)
        out = []
        eng.add_kernel("src", source_kernel(ch, data, 1))
        eng.add_kernel("sink", sink_kernel(ch, 3, 1, out))
        eng.run()
        assert out[0] == 1.0 and np.isnan(out[1]) and out[2] == 3.0

    def test_empty_kernel_completes_immediately(self):
        eng = Engine()
        eng.add_kernel("noop", iter(()))
        assert eng.run().cycles <= 1


class TestChannelProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(), min_size=1, max_size=50),
           st.integers(1, 16))
    def test_fifo_order_under_partial_maturity(self, values, depth):
        """Whatever the interleaving of pushes/matures/pops, a channel
        never reorders elements."""
        ch = Channel("c", depth=max(depth, 1))
        popped = []
        cycle = 0
        i = 0
        while len(popped) < len(values):
            if i < len(values) and ch.can_push(1, headroom=2):
                ch.push([values[i]], cycle + (i % 3), headroom=2)
                i += 1
            ch.mature(cycle)
            while ch.can_pop():
                popped.extend(ch.pop())
            cycle += 1
        assert popped == values
