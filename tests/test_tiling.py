"""Tests for tiling schedules, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import (
    ElementOrder,
    MatrixSchedule,
    TileOrder,
    VectorSchedule,
    col_tiles,
    row_tiles,
)


def _dims():
    """Strategy: (rows, cols, tile_rows, tile_cols) with exact divisibility."""
    return st.tuples(
        st.integers(1, 4), st.integers(1, 4),
        st.integers(1, 4), st.integers(1, 4),
    ).map(lambda t: (t[0] * t[2], t[1] * t[3], t[2], t[3]))


class TestGeometry:
    def test_grid_counts(self):
        s = row_tiles(8, 12, 4, 6)
        assert s.grid_rows == 2 and s.grid_cols == 2
        assert s.num_tiles == 4
        assert s.elements_per_tile == 24
        assert s.num_elements == 96

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            MatrixSchedule(10, 10, 3, 5)

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            MatrixSchedule(0, 4, 1, 1)
        with pytest.raises(ValueError):
            MatrixSchedule(4, 4, 0, 1)


class TestOrders:
    def test_row_tiles_row_major_small(self):
        # 2x2 tiles of a 2x4 matrix:
        # [0 1 | 2 3]
        # [4 5 | 6 7]
        s = row_tiles(2, 4, 2, 2)
        assert list(s.indices()) == [0, 1, 4, 5, 2, 3, 6, 7]

    def test_col_tiles_visits_tile_columns_first(self):
        s = col_tiles(4, 4, 2, 2)
        idx = list(s.indices())
        # first two tiles cover the left half of the matrix
        first_half = set(idx[:8])
        assert first_half == {0, 1, 4, 5, 8, 9, 12, 13}

    def test_col_major_elements(self):
        s = MatrixSchedule(2, 2, 2, 2, TileOrder.BY_ROWS,
                           ElementOrder.COL_MAJOR)
        assert list(s.indices()) == [0, 2, 1, 3]

    def test_fig2_arrival_order_rows(self):
        """Fig. 2 left: full tile rows arrive before the next tile row."""
        s = row_tiles(4, 4, 2, 2)
        idx = list(s.indices())
        top = {r * 4 + c for r in range(2) for c in range(4)}
        assert set(idx[:8]) == top


class TestProperties:
    @settings(max_examples=60)
    @given(_dims(), st.sampled_from(list(TileOrder)),
           st.sampled_from(list(ElementOrder)))
    def test_schedule_is_a_permutation(self, dims, torder, eorder):
        n, m, tn, tm = dims
        s = MatrixSchedule(n, m, tn, tm, torder, eorder)
        idx = list(s.indices())
        assert sorted(idx) == list(range(n * m))

    @settings(max_examples=60)
    @given(_dims())
    def test_transposed_schedule_same_wire_traffic(self, dims):
        """Streaming A in schedule s == streaming A^T in s.transposed().

        This is the property BICG relies on to share one read of A between
        GEMV and GEMV^T (Sec. V-A).
        """
        n, m, tn, tm = dims
        s = row_tiles(n, m, tn, tm)
        st_ = s.transposed()
        a = np.arange(n * m).reshape(n, m)
        at = a.T
        wire1 = [a.flat[i] for i in s.indices()]
        wire2 = [at.flat[i] for i in st_.indices()]
        assert wire1 == wire2

    @settings(max_examples=30)
    @given(_dims())
    def test_tiles_cover_matrix_disjointly(self, dims):
        n, m, tn, tm = dims
        s = row_tiles(n, m, tn, tm)
        seen = set()
        for ti, tj in s.tiles():
            elems = set(s.tile_elements(ti, tj))
            assert not (elems & seen)
            seen |= elems
        assert seen == set(range(n * m))

    def test_descriptor_distinguishes_modes(self):
        a = row_tiles(4, 4, 2, 2).descriptor()
        b = col_tiles(4, 4, 2, 2).descriptor()
        assert a != b


class TestVectorSchedule:
    def test_replay(self):
        v = VectorSchedule(3, replay=2)
        assert list(v.indices()) == [0, 1, 2, 0, 1, 2]
        assert v.total_elements == 6

    def test_block_divisibility(self):
        with pytest.raises(ValueError):
            VectorSchedule(10, block=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorSchedule(0)
        with pytest.raises(ValueError):
            VectorSchedule(4, replay=0)
