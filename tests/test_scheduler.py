"""Tests for the general MDAG composition planner (paper's future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    atax_mdag,
    axpydot_mdag,
    bicg_mdag,
    gemver_full_streaming_mdag,
)
from repro.models.iomodel import atax_min_channel_depth
from repro.streaming import (
    MDAG,
    PlanningError,
    plan_composition,
    vector_stream,
)


class TestValidMultitrees:
    def test_axpydot_plans_as_one_component(self):
        plan = plan_composition(axpydot_mdag(1024))
        assert plan.fully_streamed
        assert plan.num_components == 1
        assert not plan.materialized_edges

    def test_bicg_plans_as_one_component(self):
        plan = plan_composition(bicg_mdag(64, 64, 16, 16))
        assert plan.fully_streamed

    def test_plan_io_matches_mdag_io(self):
        g = axpydot_mdag(100)
        plan = plan_composition(g)
        assert plan.io_operations() == g.io_operations() == 301

    def test_streaming_io_reduction_reported(self):
        plan = plan_composition(axpydot_mdag(1000))
        # host layer: w, v through DRAM to axpy, z round trip, u, beta
        assert plan.io_reduction() > 1.5


class TestAtaxPlanning:
    M = N = 64
    TN = 8

    def test_split_without_budget(self):
        """No buffer budget: the reconvergent edge goes through DRAM."""
        plan = plan_composition(atax_mdag(self.M, self.N, self.TN, self.TN))
        assert not plan.fully_streamed
        assert plan.num_components == 2
        assert ("read_A", "gemvT") in plan.materialized_edges or \
            any(v == "gemvT" for _u, v in plan.materialized_edges)

    def test_sized_channel_with_budget(self):
        """With the N*T_N window and budget, the plan stays streamed."""
        window = atax_min_channel_depth(self.N, self.TN)
        plan = plan_composition(
            atax_mdag(self.M, self.N, self.TN, self.TN),
            windows={("read_A", "gemvT"): window},
            buffer_budget=2 * window)
        assert plan.num_components == 1
        assert ("read_A", "gemvT") in plan.sized_edges
        assert plan.channel_depths[("read_A", "gemvT")] >= window

    def test_insufficient_budget_falls_back_to_split(self):
        window = atax_min_channel_depth(self.N, self.TN)
        plan = plan_composition(
            atax_mdag(self.M, self.N, self.TN, self.TN),
            windows={("read_A", "gemvT"): window},
            buffer_budget=window // 2)
        assert plan.num_components == 2

    def test_split_costs_more_io_than_sized(self):
        window = atax_min_channel_depth(self.N, self.TN)
        g1 = atax_mdag(self.M, self.N, self.TN, self.TN)
        g2 = atax_mdag(self.M, self.N, self.TN, self.TN)
        split = plan_composition(g1)
        sized = plan_composition(g2,
                                 windows={("read_A", "gemvT"): window},
                                 buffer_budget=2 * window)
        assert split.io_operations() > sized.io_operations()


class TestGemverPlanning:
    def test_splits_into_two_components_like_the_paper(self):
        """Fig. 9: GER -> GER -> GEMV^T, then the final GEMV."""
        plan = plan_composition(gemver_full_streaming_mdag(64, 8))
        assert plan.num_components == 2
        first, second = plan.components
        assert {"ger1", "ger2", "gemvT"} <= first
        assert "gemv_w" in second

    def test_gemver_io_reduction_matches_sec5(self):
        """The split plan still cuts I/O vs host layer (8N^2 -> ~3N^2)."""
        plan = plan_composition(gemver_full_streaming_mdag(64, 8))
        assert plan.io_reduction() > 1.8


class TestSemanticErrors:
    def test_non_multiple_count_mismatch_is_unplannable(self):
        g = MDAG()
        g.add_module("a")
        g.add_module("b")
        g.connect("a", "b", vector_stream(10), vector_stream(15))
        with pytest.raises(PlanningError):
            plan_composition(g)

    def test_whole_multiple_mismatch_is_materialized(self):
        """A consumer needing the stream k times can be fed from DRAM:
        the planner turns the replay edge into a mandatory round trip."""
        g = MDAG()
        g.add_module("a")
        g.add_module("b")
        g.connect("a", "b", vector_stream(10), vector_stream(10, replay=2))
        plan = plan_composition(g)
        assert ("a", "b") in plan.materialized_edges
        assert plan.num_components == 2

    def test_cycle_is_unplannable(self):
        g = MDAG()
        g.add_module("a")
        g.add_module("b")
        g.connect("a", "b", vector_stream(4), vector_stream(4))
        g.connect("b", "a", vector_stream(4), vector_stream(4))
        with pytest.raises(PlanningError):
            plan_composition(g)


class TestRandomDags:
    """Property: planning any structurally-wellformed MDAG succeeds and
    every component is a valid multitree (checked internally)."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2 ** 24 - 1), st.integers(4, 9))
    def test_random_layered_dag(self, seed, n_nodes):
        import random
        rng = random.Random(seed)
        g = MDAG()
        names = []
        for i in range(n_nodes):
            name = f"n{i}"
            if i < 2 or rng.random() < 0.3:
                g.add_interface(name)
            else:
                g.add_module(name)
            names.append(name)
        sig = vector_stream(16)
        edges = 0
        for j in range(1, n_nodes):
            for i in range(j):
                if rng.random() < 0.4:
                    g.connect(names[i], names[j], sig, sig)
                    edges += 1
        if edges == 0:
            g.connect(names[0], names[-1], sig, sig)
        plan = plan_composition(g)   # must not raise
        # Every node lands in exactly one component.
        seen = set()
        for comp in plan.components:
            assert not (comp & seen)
            seen |= comp
        assert seen == set(names)
        # Components are ordered: materialized edges never point backward.
        for u, v in plan.materialized_edges:
            assert plan.component_of(u) < plan.component_of(v)
        # A derived plan never moves more data than the host layer.
        assert plan.io_operations() <= plan.sequential_io_operations()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 24 - 1))
    def test_diamond_always_resolved(self, seed):
        """Any diamond (classic reconvergence) ends up buffered or split."""
        import random
        rng = random.Random(seed)
        g = MDAG()
        g.add_interface("src")
        g.add_module("left")
        g.add_module("right")
        g.add_module("join")
        g.add_interface("out")
        sig = vector_stream(32)
        g.connect("src", "left", sig, sig)
        g.connect("src", "right", sig, sig)
        g.connect("left", "join", sig, sig)
        g.connect("right", "join", sig, sig)
        g.connect("join", "out", sig, sig)
        budget = rng.choice([0, 16, 64, 128])
        windows = {("left", "join"): 32} if rng.random() < 0.5 else None
        plan = plan_composition(g, windows=windows, buffer_budget=budget)
        if windows and budget >= 32:
            assert plan.num_components == 1
        else:
            assert plan.num_components >= 1
            assert plan.materialized_edges or plan.sized_edges or \
                plan.num_components == 1
