"""Reference BLAS implementations validated against scipy's BLAS bindings."""

import numpy as np
import pytest
from scipy.linalg import blas as sblas

from repro.blas import reference as ref

RNG = np.random.default_rng(42)


def vec(n, dtype=np.float64):
    return RNG.normal(size=n).astype(dtype)


def mat(n, m, dtype=np.float64):
    return RNG.normal(size=(n, m)).astype(dtype)


class TestLevel1:
    def test_scal(self):
        x = vec(100)
        np.testing.assert_allclose(ref.scal(2.5, x), sblas.dscal(2.5, x.copy()))

    def test_axpy(self):
        x, y = vec(100), vec(100)
        np.testing.assert_allclose(ref.axpy(1.7, x, y),
                                   sblas.daxpy(x, y.copy(), a=1.7))

    def test_dot(self):
        x, y = vec(257), vec(257)
        assert ref.dot(x, y) == pytest.approx(sblas.ddot(x, y))

    def test_sdsdot_double_accumulation(self):
        x = (RNG.normal(size=1000) * 1e4).astype(np.float32)
        y = RNG.normal(size=1000).astype(np.float32)
        expected = np.float32(0.5 + np.dot(x.astype(np.float64),
                                           y.astype(np.float64)))
        assert ref.sdsdot(0.5, x, y) == pytest.approx(expected, rel=1e-6)

    def test_nrm2(self):
        x = vec(100)
        assert ref.nrm2(x) == pytest.approx(sblas.dnrm2(x))

    def test_asum(self):
        x = vec(100)
        assert ref.asum(x) == pytest.approx(sblas.dasum(x))

    def test_iamax(self):
        x = vec(100)
        assert ref.iamax(x) == sblas.idamax(x)

    def test_iamax_ties_take_first(self):
        assert ref.iamax(np.array([1.0, -3.0, 3.0])) == 1

    def test_iamax_empty(self):
        with pytest.raises(ValueError):
            ref.iamax(np.array([]))

    def test_copy_and_swap(self):
        x, y = vec(10), vec(10)
        np.testing.assert_array_equal(ref.copy(x), x)
        sx, sy = ref.swap(x, y)
        np.testing.assert_array_equal(sx, y)
        np.testing.assert_array_equal(sy, x)

    def test_rot_matches_scipy(self):
        x, y = vec(50), vec(50)
        c, s = np.cos(0.3), np.sin(0.3)
        rx, ry = ref.rot(x, y, c, s)
        ex, ey = sblas.drot(x, y, c, s)
        np.testing.assert_allclose(rx, ex)
        np.testing.assert_allclose(ry, ey)

    def test_rotg_matches_scipy(self):
        for a, b in [(3.0, 4.0), (-2.0, 1.0), (0.0, 5.0), (5.0, 0.0)]:
            c_ref, s_ref = sblas.drotg(a, b)
            r, z, c, s = ref.rotg(a, b)
            assert c == pytest.approx(c_ref, abs=1e-12)
            assert s == pytest.approx(s_ref, abs=1e-12)
            # the rotation maps (a, b) onto (r, 0)
            assert c * a + s * b == pytest.approx(r, abs=1e-12)
            assert -s * a + c * b == pytest.approx(0, abs=1e-12)

    def test_rotmg_rotm_consistency(self):
        """rotm with rotmg's param annihilates the second component."""
        d1, d2, x1, y1 = 1.5, 0.7, 2.0, 3.0
        d1o, d2o, x1o, param = ref.rotmg(d1, d2, x1, y1)
        xs = np.array([x1 * np.sqrt(d1)])
        ys = np.array([y1 * np.sqrt(d2)])
        # apply in the scaled space used by the modified rotation
        hx, hy = ref.rotm(np.array([x1]), np.array([y1]), param)
        assert np.sqrt(max(d2o, 0.0)) * hy[0] == pytest.approx(0.0, abs=1e-9)

    def test_rotm_flags(self):
        x, y = vec(8), vec(8)
        ident = np.array([-2.0, 0, 0, 0, 0])
        rx, ry = ref.rotm(x, y, ident)
        np.testing.assert_array_equal(rx, x)
        np.testing.assert_array_equal(ry, y)
        with pytest.raises(ValueError):
            ref.rotm(x, y, np.array([7.0, 0, 0, 0, 0]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ref.dot(vec(3), vec(4))


class TestLevel2:
    def test_gemv(self):
        a, x, y = mat(7, 5), vec(5), vec(7)
        np.testing.assert_allclose(
            ref.gemv(1.3, a, x, 0.7, y),
            sblas.dgemv(1.3, a, x, beta=0.7, y=y.copy()), rtol=1e-12)

    def test_gemv_transposed(self):
        a, x, y = mat(7, 5), vec(7), vec(5)
        np.testing.assert_allclose(
            ref.gemv(1.0, a, x, 1.0, y, trans=True),
            sblas.dgemv(1.0, a, x, beta=1.0, y=y.copy(), trans=1), rtol=1e-12)

    def test_gemv_shape_check(self):
        with pytest.raises(ValueError):
            ref.gemv(1.0, mat(3, 4), vec(5), 0.0, vec(3))

    def test_ger(self):
        a, x, y = mat(6, 4), vec(6), vec(4)
        np.testing.assert_allclose(ref.ger(2.0, x, y, a),
                                   a + 2.0 * np.outer(x, y))

    def test_syr_symmetry(self):
        a = mat(5, 5)
        a = a + a.T
        out = ref.syr(1.5, vec(5), a)
        np.testing.assert_allclose(out, out.T)

    def test_syr2(self):
        a, x, y = mat(5, 5), vec(5), vec(5)
        np.testing.assert_allclose(
            ref.syr2(0.5, x, y, a),
            a + 0.5 * (np.outer(x, y) + np.outer(y, x)))

    @pytest.mark.parametrize("lower", [True, False])
    @pytest.mark.parametrize("trans", [False, True])
    def test_trsv_solves(self, lower, trans):
        a = mat(6, 6) + 6 * np.eye(6)
        t = np.tril(a) if lower else np.triu(a)
        b = vec(6)
        x = ref.trsv(t, b, lower=lower, trans=trans)
        op = t.T if trans else t
        np.testing.assert_allclose(op @ x, b, rtol=1e-9)

    def test_trsv_unit_diag(self):
        a = np.tril(mat(5, 5), -1) + np.eye(5) * 99  # diag ignored
        b = vec(5)
        x = ref.trsv(a, b, lower=True, unit_diag=True)
        unit = np.tril(a, -1) + np.eye(5)
        np.testing.assert_allclose(unit @ x, b, rtol=1e-9)


class TestLevel3:
    def test_gemm(self):
        a, b, c = mat(4, 6), mat(6, 5), mat(4, 5)
        np.testing.assert_allclose(
            ref.gemm(1.1, a, b, 0.9, c),
            sblas.dgemm(1.1, a, b, beta=0.9, c=c.copy()), rtol=1e-12)

    @pytest.mark.parametrize("ta,tb", [(True, False), (False, True),
                                       (True, True)])
    def test_gemm_transposes(self, ta, tb):
        a = mat(6, 4) if ta else mat(4, 6)
        b = mat(5, 6) if tb else mat(6, 5)
        c = mat(4, 5)
        opa = a.T if ta else a
        opb = b.T if tb else b
        np.testing.assert_allclose(
            ref.gemm(1.0, a, b, 0.0, c, trans_a=ta, trans_b=tb),
            opa @ opb, rtol=1e-12)

    def test_syrk(self):
        a, c = mat(4, 7), mat(4, 4)
        np.testing.assert_allclose(ref.syrk(1.0, a, 0.5, c),
                                   a @ a.T + 0.5 * c, rtol=1e-12)

    def test_syr2k(self):
        a, b, c = mat(4, 7), mat(4, 7), mat(4, 4)
        np.testing.assert_allclose(
            ref.syr2k(2.0, a, b, 1.0, c),
            2.0 * (a @ b.T + b @ a.T) + c, rtol=1e-12)

    @pytest.mark.parametrize("side", ["left", "right"])
    @pytest.mark.parametrize("lower", [True, False])
    def test_trsm(self, side, lower):
        n, m = 5, 3
        dim = n if side == "left" else m
        a = mat(dim, dim) + dim * np.eye(dim)
        t = np.tril(a) if lower else np.triu(a)
        b = mat(n, m)
        x = ref.trsm(2.0, t, b, side=side, lower=lower)
        if side == "left":
            np.testing.assert_allclose(t @ x, 2.0 * b, rtol=1e-9)
        else:
            np.testing.assert_allclose(x @ t, 2.0 * b, rtol=1e-9)

    def test_trsm_bad_side(self):
        with pytest.raises(ValueError):
            ref.trsm(1.0, mat(3, 3), mat(3, 3), side="middle")

    def test_gemm_shape_check(self):
        with pytest.raises(ValueError):
            ref.gemm(1.0, mat(3, 4), mat(5, 6), 0.0, mat(3, 6))


class TestPrecision:
    def test_single_precision_stays_single(self):
        x = vec(64, np.float32)
        y = vec(64, np.float32)
        assert ref.dot(x, y).dtype == np.float32
        assert ref.scal(2.0, x).dtype == np.float32

    def test_double_precision_stays_double(self):
        assert ref.nrm2(vec(64)).dtype == np.float64
