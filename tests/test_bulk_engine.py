"""Unit tests for the bulk steady-state tier (PR 4).

Covers the pieces the three-way differential suite exercises only
end-to-end: block channel transfers (``push_block`` / ``pop_block`` /
``end_window``), the :class:`~repro.fpga.pattern.StaticPattern`
contract, fast-path engagement counters, DRAM-kernel parity, the
routine-registry pattern derivation, parallel DSE sweeps, and the
telemetry CLI's ``--engine-mode`` flag.
"""

import json

import numpy as np
import pytest

from repro.blas import level1
from repro.blas.routines import info as routine_info
from repro.fpga.channel import Channel, ChannelError
from repro.fpga.engine import Engine
from repro.fpga.memory import read_kernel, write_kernel
from repro.fpga.pattern import DramTraffic, PatternedGenerator, StaticPattern
from repro.host import FblasContext
from repro.models import dse
from repro.fpga.util import sink_kernel, source_kernel
from repro.telemetry.cli import main as telemetry_main


# ---------------------------------------------------------------------------
# Block channel transfers
# ---------------------------------------------------------------------------

class TestBlockTransfers:
    def test_push_block_pop_block_roundtrip(self):
        ch = Channel("c", depth=8)
        ch.push_block(np.arange(12, dtype=np.float32), lanes=4, first_ready=10)
        out = ch.pop_block(12)
        assert out.dtype == np.float32
        assert list(out) == list(range(12))
        assert ch.stats.pushes == 12 and ch.stats.pops == 12

    def test_pop_block_drains_in_arrival_order(self):
        """FIFO first, then staged, then block runs — stream order."""
        ch = Channel("c", depth=8)
        ch.push([1.0, 2.0], ready_cycle=0)
        ch.mature(0)                          # 1, 2 visible
        ch.push([3.0], ready_cycle=99)        # staged
        ch.push_block([4.0, 5.0], lanes=1, first_ready=100)
        out = ch.pop_block(5)
        assert list(out) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_pop_block_overdraw_raises(self):
        ch = Channel("c", depth=8)
        ch.push_block([1.0, 2.0], lanes=2, first_ready=5)
        with pytest.raises(ChannelError, match="exceeds the window's supply"):
            ch.pop_block(3)

    def test_pop_block_casts_to_dtype(self):
        ch = Channel("c", depth=8)
        ch.push_block(np.arange(4, dtype=np.float64), lanes=2, first_ready=0)
        out = ch.pop_block(4, dtype=np.float32)
        assert out.dtype == np.float32

    def test_end_window_matures_due_values(self):
        """Values due by the window's last cycle enter the FIFO, capped at
        depth; the remainder becomes ordinary staged tuples with the same
        ready ramp per-cycle pushes would have produced."""
        ch = Channel("c", depth=3)
        ch.push_block(np.arange(8, dtype=np.float32), lanes=2, first_ready=10)
        ch.end_window(11)        # groups ready at 10, 11, 12, 13
        assert ch.occupancy == 3                   # capped at depth
        assert ch.in_flight == 5
        assert list(ch._fifo) == [0.0, 1.0, 2.0]
        # Staged entries keep the exact per-group ready cycles.
        assert [r for r, _v in ch._staged] == [11, 12, 12, 13, 13]
        # Later maturation proceeds exactly as in cycle-stepped mode.
        ch.pop(3)
        ch.mature(12)
        assert list(ch._fifo) == [3.0, 4.0, 5.0]

    def test_end_window_preserves_fifo_before_runs(self):
        ch = Channel("c", depth=8)
        ch.push([7.0], ready_cycle=0)
        ch.mature(0)
        ch.push_block([8.0, 9.0], lanes=2, first_ready=1)
        ch.end_window(1)
        assert list(ch._fifo) == [7.0, 8.0, 9.0]
        assert ch.drained is False


# ---------------------------------------------------------------------------
# StaticPattern / PatternedGenerator
# ---------------------------------------------------------------------------

class TestStaticPattern:
    def test_declare_never_ready(self):
        ch = Channel("x", 4)
        p = StaticPattern.declare(reads=((ch, 2),), writes=((ch, 2, None),))
        assert p.ready() == 0
        assert "declared" in p.describe()

    def test_executable_pattern_reports_ready(self):
        ch = Channel("x", 4)
        state = {"left": 5}
        p = StaticPattern(reads=((ch, 1),), ready=lambda: state["left"],
                          block=lambda k, ins: [])
        assert p.ready() == 5
        assert "static" in p.describe()

    def test_dram_traffic_validates_kind(self):
        with pytest.raises(ValueError, match="read.*write"):
            DramTraffic(None, None, 4, "readwrite")

    def test_level1_kernels_carry_patterns(self):
        """Every steady level-1 module generator advertises an executable
        pattern with the right port shape."""
        cx, cy, cz = (Channel(n, 16) for n in "xyz")
        k = level1.axpy_kernel(32, 2.0, cx, cy, cz, width=4)
        assert isinstance(k, PatternedGenerator)
        p = k.pattern
        assert [(c.name, w) for c, w in p.reads] == [("x", 4), ("y", 4)]
        assert [(c.name, w) for c, w, _l in p.writes] == [("z", 4)]
        assert p.ii == 1
        assert p.ready() == 8               # 32 elements / width 4

    def test_reduce_kernel_pattern_has_no_steady_write(self):
        cx, cr = Channel("x", 16), Channel("r", 4)
        k = level1.asum_kernel(32, cx, cr, width=4)
        assert isinstance(k, PatternedGenerator)
        assert k.pattern.writes == ()       # epilogue push is event-stepped

    def test_patterned_generator_protocol(self):
        def gen():
            got = yield 1
            yield got

        g = PatternedGenerator(gen(), StaticPattern.declare())
        assert iter(g) is g
        assert next(g) == 1
        assert g.send("v") == "v"
        g.close()

    def test_yield_from_delegates_through_wrapper(self):
        def inner():
            yield 1
            yield 2

        def outer():
            yield from PatternedGenerator(inner(), StaticPattern.declare())
            yield 3

        assert list(outer()) == [1, 2, 3]


# ---------------------------------------------------------------------------
# Bulk engine fast path
# ---------------------------------------------------------------------------

def _pipeline(eng, n=1024, w=4):
    data = [np.float32(i % 19) for i in range(n)]
    cx = eng.channel("cx", 4 * w)
    cm = eng.channel("cm", 4 * w)
    out = []
    eng.add_kernel("src", source_kernel(cx, data, w))
    eng.add_kernel("scal", level1.scal_kernel(n, 1.5, cx, cm, w), latency=6)
    eng.add_kernel("sink", sink_kernel(cm, n, w, out))
    return out


class TestBulkEngine:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            Engine(mode="turbo")

    def test_fast_path_engages_and_matches_event(self):
        reports, outs = {}, {}
        for mode in ("event", "bulk"):
            eng = Engine(mode=mode)
            outs[mode] = _pipeline(eng)
            reports[mode] = eng.run().to_dict()
            if mode == "bulk":
                assert eng._bulk_windows > 0
                assert eng._bulk_cycles > 0
        assert reports["event"] == reports["bulk"]
        assert outs["event"] == outs["bulk"]

    def test_observers_disable_fast_path(self):
        eng = Engine(mode="bulk", trace=True)
        _pipeline(eng)
        eng.run()
        assert eng._bulk_cycles == 0

    def test_dram_read_compute_write_parity(self):
        """Memory kernels carry patterns too: a read -> scal -> write
        round trip fast-forwards and leaves identical DRAM contents,
        cycle counts, and bank counters."""
        results = {}
        for mode in ("dense", "event", "bulk"):
            ctx = FblasContext()
            src = np.arange(512, dtype=np.float32)
            dsrc = ctx.copy_to_device(src)
            ddst = ctx.allocate((512,), np.float32, name="dst")
            eng = Engine(memory=ctx.mem, mode=mode)
            w = 4
            cin = eng.channel("cin", 4 * w)
            cmid = eng.channel("cmid", 4 * w)
            eng.add_kernel("read", read_kernel(ctx.mem, dsrc, cin, w))
            eng.add_kernel("scal",
                           level1.scal_kernel(512, 2.0, cin, cmid, w),
                           latency=5)
            eng.add_kernel("write",
                           write_kernel(ctx.mem, ddst, cmid, 512, w))
            rep = eng.run()
            banks = [b.to_dict() for b in ctx.mem.bank_stats]
            results[mode] = (rep.to_dict(),
                             ctx.copy_from_device(ddst).tolist(), banks)
            if mode == "bulk":
                assert eng._bulk_cycles > 0
        assert results["dense"] == results["event"] == results["bulk"]
        assert results["bulk"][1] == (np.arange(512, dtype=np.float32)
                                      * np.float32(2.0)).tolist()


# ---------------------------------------------------------------------------
# Routine registry pattern derivation
# ---------------------------------------------------------------------------

class TestRoutinePatterns:
    def test_static_pattern_binds_ports(self):
        inf = routine_info("gemv")
        chans = {p: Channel(p, 8) for p in inf.inputs + inf.outputs}
        p = inf.static_pattern(chans, width=8)
        assert p.ready() == 0               # declare-only
        assert [c.name for c, _w in p.reads] == list(inf.inputs)
        assert [c.name for c, _w, _l in p.writes] == list(inf.outputs)
        assert all(w == 8 for _c, w in p.reads)

    def test_static_pattern_missing_port_raises(self):
        inf = routine_info("axpy")
        with pytest.raises(KeyError, match="unbound streaming ports"):
            inf.static_pattern({"x": Channel("x", 4)})


# ---------------------------------------------------------------------------
# Parallel DSE sweeps
# ---------------------------------------------------------------------------

class TestParallelDse:
    def test_level1_pool_matches_serial(self):
        from repro.fpga.device import DEVICES
        dev = next(iter(DEVICES.values()))
        serial = dse.explore_level1("dot", 4096, dev, workers=1)
        pooled = dse.explore_level1("dot", 4096, dev, workers=2)
        assert serial == pooled
        assert serial                       # sweep is non-empty

    def test_gemv_pool_matches_serial(self):
        from repro.fpga.device import DEVICES
        dev = next(iter(DEVICES.values()))
        serial = dse.explore_gemv(1024, 1024, dev, workers=1)
        pooled = dse.explore_gemv(1024, 1024, dev, workers=2)
        assert serial == pooled

    def test_small_sweep_stays_serial_by_default(self):
        """workers=None only pools at PARALLEL_THRESHOLD points."""
        from repro.fpga.device import DEVICES
        dev = next(iter(DEVICES.values()))
        pts = dse.explore_level1("dot", 4096, dev, widths=(4, 8))
        assert len(pts) == 2
        assert dse.PARALLEL_THRESHOLD > 2


# ---------------------------------------------------------------------------
# Telemetry CLI engine-mode flag
# ---------------------------------------------------------------------------

class TestCliEngineMode:
    def test_engine_mode_bulk_runs(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        rc = telemetry_main(["axpydot", "--n", "256", "--width", "4",
                             "--engine-mode", "bulk",
                             "--metrics", str(metrics)])
        assert rc == 0
        doc = json.loads(metrics.read_text())
        assert doc["mode"] == "bulk"
        assert doc["result"]["cycles"] > 0

    def test_engine_mode_matches_legacy_mode_flag(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert telemetry_main(["axpydot", "--n", "256", "--width", "4",
                               "--mode", "event",
                               "--metrics", str(a)]) == 0
        assert telemetry_main(["axpydot", "--n", "256", "--width", "4",
                               "--engine-mode", "event",
                               "--metrics", str(b)]) == 0
        da, db = json.loads(a.read_text()), json.loads(b.read_text())
        assert da["result"] == db["result"]

    def test_conflicting_mode_flags_rejected(self, capsys):
        rc = telemetry_main(["axpydot", "--mode", "dense",
                             "--engine-mode", "bulk"])
        assert rc == 2
        assert "disagree" in capsys.readouterr().err
