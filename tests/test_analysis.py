"""Unit tests for repro.analysis: diagnostics, passes, and the CLI."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    CODES,
    AnalysisError,
    Diagnostic,
    Severity,
    analyze_mdag,
    analyze_specs,
    estimate_spec_resources,
)
from repro.codegen.spec import RoutineSpec
from repro.fpga.device import ARRIA10, STRATIX10
from repro.models.iomodel import atax_min_channel_depth
from repro.streaming import MDAG, vector_stream

SRC = Path(__file__).resolve().parent.parent / "src"


# ---------------------------------------------------------------- diagnostics
class TestDiagnostics:
    def test_every_code_documented(self):
        for code, blurb in CODES.items():
            assert code.startswith("FB") and len(code) == 5
            assert blurb

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("FB999", Severity.ERROR, "nope")

    def test_severity_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_format_and_to_dict(self):
        d = Diagnostic("FB003", Severity.ERROR, "too shallow",
                       edge=("a", "b"), fix="deepen it")
        assert "FB003" in d.format() and "fix:" in d.format()
        blob = d.to_dict()
        assert blob["severity"] == "error" and blob["edge"] == ["a", "b"]

    def test_result_render_json_roundtrips(self):
        result = analyze_mdag(_atax_like())
        blob = json.loads(result.render_json())
        assert blob["ok"] is False
        assert any(d["code"] == "FB002" for d in blob["diagnostics"])

    def test_raise_if_errors(self):
        result = analyze_mdag(_atax_like())
        with pytest.raises(AnalysisError) as exc:
            result.raise_if_errors()
        assert exc.value.result is result
        assert any(d.code == "FB002" for d in exc.value.diagnostics)


# ---------------------------------------------------------------- MDAG passes
def _atax_like(m=64, n=64, tile=8):
    from repro.apps import atax_mdag
    return atax_mdag(m, n, tile, tile)


class TestMdagPasses:
    def test_valid_multitree_is_clean(self):
        g = MDAG()
        g.add_interface("rx")
        g.add_module("scal")
        g.add_interface("wy")
        sig = vector_stream(32)
        g.connect("rx", "scal", sig, sig)
        g.connect("scal", "wy", sig, sig)
        result = analyze_mdag(g)
        assert result.ok and not result.diagnostics

    def test_signature_mismatch_is_fb001(self):
        g = MDAG()
        g.add_interface("rx")
        g.add_module("m")
        g.connect("rx", "m", vector_stream(32), vector_stream(16))
        assert [d.code for d in analyze_mdag(g).errors] == ["FB001"]

    def test_compute_replay_is_fb005(self):
        g = MDAG()
        g.add_interface("rx")
        g.add_module("m1")
        g.add_module("m2")
        sig = vector_stream(8)
        g.connect("rx", "m1", sig, sig)
        g.connect("m1", "m2", vector_stream(8), vector_stream(8, replay=4))
        assert [d.code for d in analyze_mdag(g).errors] == ["FB005"]

    def test_cycle_is_fb004(self):
        g = MDAG()
        g.add_module("a")
        g.add_module("b")
        sig = vector_stream(8)
        g.connect("a", "b", sig, sig)
        g.connect("b", "a", sig, sig)
        codes = [d.code for d in analyze_mdag(g).errors]
        assert codes == ["FB004"]

    def test_reconvergence_without_window_is_fb002(self):
        result = analyze_mdag(_atax_like())
        assert [d.code for d in result.errors] == ["FB002"]

    def test_undersized_window_is_fb003_with_fix(self):
        mdag = _atax_like()
        window = atax_min_channel_depth(64, 8)
        result = analyze_mdag(mdag,
                              windows={("read_A", "gemvT"): window})
        (err,) = result.errors
        assert err.code == "FB003"
        assert err.edge == ("read_A", "gemvT")
        assert str(window) in err.fix

    def test_sufficient_depth_is_fb008_certificate(self):
        mdag = _atax_like()
        window = atax_min_channel_depth(64, 8)
        mdag.required_depth("read_A", "gemvT", window)
        result = analyze_mdag(mdag,
                              windows={("read_A", "gemvT"): window})
        assert result.ok
        assert [d.code for d in result.infos] == ["FB008"]

    def test_validate_adapter_matches_analyzer(self):
        mdag = _atax_like()
        report = mdag.validate()
        assert not report.valid
        assert report.reconvergent_pairs == [("read_A", "gemvT")]
        assert {i.kind for i in report.issues} == {"buffering"}
        assert {i.code for i in report.issues} == {"FB002"}

    def test_validate_with_windows_accepts_sized_channel(self):
        mdag = _atax_like()
        window = atax_min_channel_depth(64, 8)
        mdag.required_depth("read_A", "gemvT", window)
        report = mdag.validate(windows={("read_A", "gemvT"): window})
        assert report.valid and not report.is_multitree


# ---------------------------------------------------------------- spec passes
class TestSpecPasses:
    def test_clean_spec_no_diagnostics(self):
        spec = RoutineSpec(blas_name="dot", user_name="d",
                           precision="single", width=16)
        assert analyze_specs([spec]).ok

    def test_odd_width_is_fb201(self):
        spec = RoutineSpec(blas_name="dot", user_name="d",
                           precision="single", width=6)
        result = analyze_specs([spec])
        (warn,) = result.warnings
        assert warn.code == "FB201"
        assert "width 4 or 8" in warn.fix

    def test_misaligned_tiles_are_fb202(self):
        spec = RoutineSpec(blas_name="gemv", user_name="g",
                           precision="single", width=6,
                           tile_n_size=64, tile_m_size=64)
        codes = [d.code for d in analyze_specs([spec]).errors]
        assert codes == ["FB202"]

    def test_resource_estimates_reported_as_fb100(self):
        spec = RoutineSpec(blas_name="gemv", user_name="g",
                           precision="single", width=16,
                           tile_n_size=512, tile_m_size=512)
        result = analyze_specs([spec], device=STRATIX10)
        assert any(d.code == "FB100" for d in result.infos)
        usage = estimate_spec_resources(spec, STRATIX10)
        assert usage.dsps > 0 and usage.m20ks > 0

    def test_oversubscription_is_fb101(self):
        specs = [RoutineSpec(blas_name="gemm", user_name=f"g{i}",
                             precision="single", width=16,
                             tile_n_size=256, tile_m_size=256,
                             systolic_rows=16, systolic_cols=16)
                 for i in range(40)]
        result = analyze_specs(specs, device=ARRIA10)
        assert any(d.code == "FB101" for d in result.errors)

    def test_double_on_arria_is_fb103(self):
        spec = RoutineSpec(blas_name="dot", user_name="dd",
                           precision="double", width=4)
        result = analyze_specs([spec], device=ARRIA10)
        assert any(d.code == "FB103" for d in result.infos)


# ----------------------------------------------------------------------- CLI
def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env={"PYTHONPATH": str(SRC)})


class TestCli:
    def test_demo_prints_diagnostics_and_fails(self):
        proc = _cli("--demo")
        assert proc.returncode == 1
        assert "FB002" in proc.stdout
        assert "FB003" in proc.stdout
        assert "FB008" in proc.stdout
        assert "required_depth" in proc.stdout

    def test_demo_json(self):
        proc = _cli("--demo", "--json")
        assert proc.returncode == 1
        # three JSON documents, one per act
        assert proc.stdout.count('"subject"') == 3
        assert '"code": "FB003"' in proc.stdout

    def test_list_codes(self):
        proc = _cli("--list-codes")
        assert proc.returncode == 0
        for code in CODES:
            assert code in proc.stdout

    def test_spec_file(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"routine": [
            {"blas_name": "gemv", "user_name": "g", "precision": "single",
             "width": 6, "tile_n_size": 64, "tile_m_size": 64}]}))
        proc = _cli(str(spec), "--device", "stratix10")
        assert proc.returncode == 1
        assert "FB202" in proc.stdout

    def test_clean_spec_exits_zero_unless_strict(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"routine": [
            {"blas_name": "dot", "user_name": "d", "precision": "single",
             "width": 6}]}))
        assert _cli(str(spec)).returncode == 0        # FB201 is a warning
        assert _cli(str(spec), "--strict").returncode == 1

    def test_missing_operand_is_usage_error(self):
        assert _cli().returncode == 2
        assert _cli("/nonexistent/spec.json").returncode == 2

    def test_codegen_lint_flag(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"routine": [
            {"blas_name": "gemv", "user_name": "g", "precision": "single",
             "width": 6, "tile_n_size": 64, "tile_m_size": 64}]}))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.codegen", str(spec), "--lint"],
            capture_output=True, text=True, env={"PYTHONPATH": str(SRC)})
        assert proc.returncode == 1
        assert "FB202" in proc.stdout
