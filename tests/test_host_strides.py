"""Strided (incx/incy) Level-1 host calls — classic BLAS semantics."""

import numpy as np
import pytest

from repro.host import Fblas

RNG = np.random.default_rng(71)


def f32(a):
    return np.asarray(a, dtype=np.float32)


@pytest.fixture
def fb():
    return Fblas(width=4)


class TestStridedCalls:
    @pytest.mark.parametrize("incx", [1, 2, 3])
    def test_scal_strided(self, fb, incx):
        raw = f32(RNG.normal(size=24))
        x = fb.copy_to_device(raw.copy())
        n = 1 + (24 - 1) // incx
        out = fb.scal(2.0, x, incx=incx)
        expect = raw.copy()
        expect[::incx] = 2.0 * expect[::incx][:n]
        np.testing.assert_allclose(out, expect, rtol=1e-6)

    def test_scal_strided_leaves_gaps_untouched(self, fb):
        raw = f32(np.ones(10))
        x = fb.copy_to_device(raw)
        fb.scal(5.0, x, incx=2)
        np.testing.assert_allclose(x.data[1::2], 1.0)
        np.testing.assert_allclose(x.data[0::2], 5.0)

    @pytest.mark.parametrize("incx,incy", [(2, 1), (1, 2), (2, 3)])
    def test_dot_strided(self, fb, incx, incy):
        xs = f32(RNG.normal(size=30))
        ys = f32(RNG.normal(size=30))
        x = fb.copy_to_device(xs)
        y = fb.copy_to_device(ys)
        n = min(1 + 29 // incx, 1 + 29 // incy)
        got = fb.dot(x, y, n=n, incx=incx, incy=incy)
        want = float(np.dot(xs[::incx][:n], ys[::incy][:n]))
        assert got == pytest.approx(want, rel=1e-4)

    def test_axpy_strided(self, fb):
        xs = f32(RNG.normal(size=16))
        ys = f32(RNG.normal(size=16))
        x = fb.copy_to_device(xs)
        y = fb.copy_to_device(ys)
        out = fb.axpy(0.5, x, y, n=8, incx=2, incy=2)
        expect = ys.copy()
        expect[::2] = 0.5 * xs[::2] + ys[::2]
        np.testing.assert_allclose(out, expect, rtol=1e-5)

    def test_copy_strided_scatter(self, fb):
        xs = f32(RNG.normal(size=8))
        x = fb.copy_to_device(xs)
        y = fb.copy_to_device(f32(np.zeros(16)))
        fb.copy(x, y, n=8, incx=1, incy=2)
        np.testing.assert_allclose(y.data[::2], xs, rtol=1e-6)
        np.testing.assert_allclose(y.data[1::2], 0.0)

    def test_explicit_n_subvector(self, fb):
        xs = f32(RNG.normal(size=32))
        ys = f32(RNG.normal(size=32))
        x = fb.copy_to_device(xs)
        y = fb.copy_to_device(ys)
        got = fb.dot(x, y, n=10)
        assert got == pytest.approx(float(np.dot(xs[:10], ys[:10])),
                                    rel=1e-4)

    def test_model_mode_agrees(self):
        xs = f32(RNG.normal(size=40))
        sim = Fblas(width=4)
        mod = Fblas(mode="model", width=4)
        x1 = sim.copy_to_device(xs.copy())
        x2 = mod.copy_to_device(xs.copy())
        sim.scal(3.0, x1, incx=3)
        mod.scal(3.0, x2, incx=3)
        np.testing.assert_allclose(x1.data, x2.data, rtol=1e-6)


class TestStridedBandwidth:
    def test_strided_reads_cost_bandwidth(self):
        """Gathered (strided) DRAM access halves effective bandwidth
        (row-activation overhead), so the same logical dot takes longer
        with incx=2 than with unit stride."""
        n = 4096
        raw = f32(RNG.normal(size=2 * n))
        cycles = {}
        for incx in (1, 2):
            fb2 = Fblas(width=16)
            x = fb2.copy_to_device(raw)
            y = fb2.copy_to_device(raw)
            fb2.dot(x, y, n=n, incx=incx, incy=incx)
            cycles[incx] = fb2.records[-1].cycles
        assert cycles[2] > 1.5 * cycles[1]

    def test_contiguous_flag_in_dram_model(self):
        from repro.fpga.memory import DramModel
        mem = DramModel(num_banks=1, bytes_per_cycle=16)
        buf = mem.allocate("a", 64)
        assert mem.request_read(buf, 16, contiguous=True) == 16
        mem.begin_cycle(1)
        assert mem.request_read(buf, 16, contiguous=False) == 8

    def test_penalty_validation(self):
        from repro.fpga.memory import DramModel
        import pytest as _pytest
        with _pytest.raises(ValueError):
            DramModel(stride_penalty=0.5)


class TestStrideValidation:
    def test_zero_stride_rejected(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        with pytest.raises(ValueError):
            fb.scal(1.0, x, incx=0)

    def test_overrun_rejected(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        with pytest.raises(ValueError):
            fb.scal(1.0, x, n=8, incx=2)

    def test_mismatched_strided_lengths_rejected(self, fb):
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        y = fb.copy_to_device(f32(RNG.normal(size=8)))
        with pytest.raises(ValueError):
            fb.dot(x, y, incx=2)   # 4 strided x vs 8 y elements
