"""Xilinx backend and CLI tests for the code generator."""

import json

import numpy as np
import pytest

from repro.codegen import CodeGenerator, RoutineSpec, SpecError, generate_routine
from repro.codegen.__main__ import main as cli_main
from repro.fpga import Engine, sink_kernel, source_kernel


class TestXilinxBackend:
    def test_dot_emits_hls_stream_and_pragmas(self):
        r = generate_routine(RoutineSpec("dot", "xdot", width=8),
                             target="xilinx")
        assert "hls::stream" in r.source
        assert "#pragma HLS PIPELINE II=1" in r.source
        assert "#pragma HLS UNROLL" in r.source
        assert "acc += ch_x.read() * ch_y.read()" in r.source
        assert r.target == "xilinx"

    def test_scal_carries_width_constant(self):
        r = generate_routine(RoutineSpec("scal", "xs", width=16),
                             target="xilinx")
        assert "n / 16" in r.source
        assert "alpha * x" in r.source

    def test_helpers_use_axi_master(self):
        r = generate_routine(RoutineSpec("axpy", "xa"), target="xilinx")
        assert "#pragma HLS INTERFACE m_axi" in r.helpers["read_x"]
        assert "m_axi" in r.helpers["write_out"]

    def test_generic_template_uses_dataflow(self):
        r = generate_routine(
            RoutineSpec("gemv", "xg", width=4, tile_n_size=64,
                        tile_m_size=64), target="xilinx")
        assert "#pragma HLS DATAFLOW" in r.source
        assert "memory tile 64 x 64" in r.source

    def test_double_precision_type(self):
        r = generate_routine(RoutineSpec("dot", "xd", precision="double"),
                             target="xilinx")
        assert "typedef double xd_t;" in r.source

    def test_unknown_target_rejected(self):
        with pytest.raises(SpecError):
            generate_routine(RoutineSpec("dot", "d"), target="quartus")

    def test_files_use_cpp_extension(self, tmp_path):
        gen = CodeGenerator({"routine": [
            {"blas_name": "dot", "user_name": "xd", "width": 4}]},
            target="xilinx")
        paths = gen.write_all(tmp_path)
        assert all(p.suffix == ".cpp" for p in paths)

    def test_every_routine_generates_for_xilinx(self):
        from repro.blas import all_routines
        for name in all_routines():
            kwargs = {}
            if name in ("gemv", "ger", "syr", "syr2", "gemm", "syrk",
                        "syr2k"):
                kwargs = dict(tile_n_size=8, tile_m_size=8)
            r = generate_routine(RoutineSpec(name, f"x_{name}", **kwargs),
                                 target="xilinx")
            assert "hls" in r.source or "void" in r.source

    def test_binding_is_target_independent(self):
        """The same spec runs identically on the simulator regardless of
        the emitted source's target."""
        rng = np.random.default_rng(3)
        n, w = 64, 8
        x = rng.normal(size=n).astype(np.float32)
        y = rng.normal(size=n).astype(np.float32)
        results = []
        for target in ("intel", "xilinx"):
            r = generate_routine(RoutineSpec("dot", "tdot", width=w),
                                 target=target)
            eng = Engine()
            cx = eng.channel("x", 64)
            cy = eng.channel("y", 64)
            cr = eng.channel("r", 4)
            out = []
            eng.add_kernel("sx", source_kernel(cx, list(x), w))
            eng.add_kernel("sy", source_kernel(cy, list(y), w))
            eng.add_kernel("dot", r.make_kernel(n, cx, cy, cr),
                           latency=r.latency)
            eng.add_kernel("sink", sink_kernel(cr, 1, 1, out))
            eng.run()
            results.append(out[0])
        assert results[0] == results[1]


class TestCli:
    def _spec_file(self, tmp_path):
        p = tmp_path / "spec.json"
        p.write_text(json.dumps({"routine": [
            {"blas_name": "dot", "user_name": "cli_dot", "width": 8},
            {"blas_name": "gemv", "user_name": "cli_gemv", "width": 4,
             "tile_n_size": 64, "tile_m_size": 64},
        ]}))
        return p

    def test_generates_files(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        out = tmp_path / "gen"
        rc = cli_main([str(spec), "-o", str(out)])
        assert rc == 0
        assert (out / "cli_dot.cl").exists()
        assert (out / "cli_gemv_read_a.cl").exists()

    def test_xilinx_target(self, tmp_path):
        spec = self._spec_file(tmp_path)
        out = tmp_path / "gen"
        rc = cli_main([str(spec), "-o", str(out), "--target", "xilinx"])
        assert rc == 0
        assert (out / "cli_dot.cpp").exists()
        assert "hls::stream" in (out / "cli_dot.cpp").read_text()

    def test_list_mode(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        rc = cli_main([str(spec), "--list"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "cli_dot: single dot, W=8" in captured.out
        assert "tiles 64x64" in captured.out

    def test_bad_spec_reports_error(self, tmp_path, capsys):
        p = tmp_path / "bad.json"
        p.write_text('{"routine": [{"blas_name": "warp_drive"}]}')
        rc = cli_main([str(p)])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file_reports_error(self, tmp_path, capsys):
        rc = cli_main([str(tmp_path / "nope.json")])
        assert rc == 1
