"""Recovery ladder: retry, checkpoint/restart, tier demotion.

Directed unit tests for :mod:`repro.faults.recovery` (the fault campaign
exercises recovery only when a generated crash lands inside a kernel's
work window, so these pin the machinery with hand-placed faults).
"""

import numpy as np
import pytest

from repro.blas import level1, reference
from repro.faults import (FaultPlan, KernelFault, MemoryCheckpoint,
                          RecoveryOutcome, RetryPolicy, inject,
                          run_with_recovery)
from repro.faults.campaign import OUTCOMES, render_summary, run_campaign
from repro.fpga.errors import (DeadlineExceeded, DeadlockError,
                               KernelCrashError, SimulationError)
from repro.fpga.memory import DramModel
from repro.fpga.resources import level1_latency
from repro.host.api import Fblas
from repro.streaming import (BoundMDAG, ComputeBinding, ReadBinding,
                             WriteBinding, execute_plan, scalar_stream,
                             vector_stream)


class _Flaky:
    """Attempt that fails ``fail`` times, then returns the mode it ran in."""

    def __init__(self, fail, exc_factory):
        self.fail = fail
        self.exc_factory = exc_factory
        self.calls = 0

    def __call__(self, mode):
        self.calls += 1
        if self.calls <= self.fail:
            raise self.exc_factory()
        return mode


def _crash():
    return KernelCrashError("k", 3)


class TestRunWithRecovery:
    def test_transient_fault_retries_then_succeeds(self):
        attempt = _Flaky(1, _crash)
        out = run_with_recovery(attempt)
        assert out.result == "event"
        assert out.retries == 1 and out.demotions == 0
        assert out.recovered
        assert out.actions == [{
            "action": "retry", "mode": "event",
            "error": "KernelCrashError", "backoff_s": 0.01,
        }]

    def test_backoff_grows_geometrically(self):
        attempt = _Flaky(3, _crash)
        policy = RetryPolicy(max_retries=3, backoff_base=0.5,
                             backoff_factor=2.0)
        out = run_with_recovery(attempt, policy=policy)
        assert [a["backoff_s"] for a in out.actions] == [0.5, 1.0, 2.0]

    def test_exhausted_budget_reraises(self):
        attempt = _Flaky(5, _crash)
        with pytest.raises(KernelCrashError):
            run_with_recovery(attempt, policy=RetryPolicy(max_retries=2))
        assert attempt.calls == 3        # initial try + 2 retries

    def test_deadlock_is_never_retried(self):
        attempt = _Flaky(1, lambda: DeadlockError(7, {"k": "pop"}))
        with pytest.raises(DeadlockError):
            run_with_recovery(attempt)
        assert attempt.calls == 1

    def test_watchdog_trip_demotes_down_the_ladder(self):
        calls = []

        def attempt(mode):
            calls.append(mode)
            if mode != "dense":
                raise SimulationError(f"{mode} tier wedged")
            return "ok"

        out = run_with_recovery(attempt, mode="bulk")
        assert calls == ["bulk", "event", "dense"]
        assert out.result == "ok" and out.mode == "dense"
        assert out.demotions == 2 and out.retries == 0
        assert [(a["from"], a["to"]) for a in out.actions] == [
            ("bulk", "event"), ("event", "dense")]

    def test_dense_tier_failure_reraises(self):
        with pytest.raises(SimulationError):
            run_with_recovery(_Flaky(9, lambda: SimulationError("x")),
                              mode="dense")

    def test_demotion_disabled_reraises(self):
        with pytest.raises(SimulationError):
            run_with_recovery(_Flaky(9, lambda: SimulationError("x")),
                              policy=RetryPolicy(demote=False),
                              mode="bulk")

    def test_restore_runs_before_every_reattempt(self):
        restored = []
        attempt = _Flaky(2, _crash)
        run_with_recovery(attempt, policy=RetryPolicy(max_retries=2),
                          restore=lambda: restored.append(attempt.calls))
        # restore fired after attempt 1 and 2 failed, before 2 and 3 ran
        assert restored == [1, 2]

    def test_demotion_does_not_consume_retry_budget(self):
        seen = []

        def attempt(mode):
            seen.append(mode)
            if mode == "bulk":
                raise SimulationError("wedge")
            if len(seen) < 4:
                raise KernelCrashError("k", 1)
            return "ok"

        out = run_with_recovery(attempt, mode="bulk",
                                policy=RetryPolicy(max_retries=2))
        assert out.result == "ok"
        assert out.demotions == 1 and out.retries == 2

    def test_ambient_context_counters_updated(self):
        with inject(FaultPlan(seed=0)) as ctx:
            run_with_recovery(_Flaky(1, _crash))
        assert ctx.retries == 1

    def test_outcome_to_dict_shape(self):
        out = RecoveryOutcome(result=1, mode="dense", retries=2,
                              demotions=1,
                              actions=[{"action": "retry"}])
        doc = out.to_dict()
        assert doc == {"mode": "dense", "retries": 2, "demotions": 1,
                       "recovered": True,
                       "actions": [{"action": "retry"}]}


class _FakeClock:
    """Deterministic clock: advances ``step`` seconds per reading."""

    def __init__(self, step=1.0, start=100.0):
        self.now = start
        self.step = step

    def __call__(self):
        t = self.now
        self.now += self.step
        return t


class TestRecoveryDeadline:
    def test_expired_budget_stops_retries_and_chains_the_cause(self):
        attempt = _Flaky(5, _crash)
        with pytest.raises(DeadlineExceeded) as exc:
            run_with_recovery(attempt, policy=RetryPolicy(max_retries=5),
                              deadline_s=2.5, clock=_FakeClock(step=1.0))
        # t0=100, pre-check 101, attempt1 fails, pre-retry check 102
        # (1 retry consumed), attempt2 fails, check 103 >= 102.5: stop.
        assert attempt.calls == 2
        assert isinstance(exc.value.__cause__, KernelCrashError)
        assert exc.value.deadline_s == 2.5

    def test_deadline_error_carries_the_forensic_summary(self):
        attempt = _Flaky(5, _crash)
        with pytest.raises(DeadlineExceeded, match=r"1 retries"):
            run_with_recovery(attempt, policy=RetryPolicy(max_retries=5),
                              deadline_s=2.5, clock=_FakeClock(step=1.0))

    def test_checked_before_first_attempt(self):
        attempt = _Flaky(0, _crash)
        with pytest.raises(DeadlineExceeded):
            run_with_recovery(attempt, deadline_s=0.5,
                              clock=_FakeClock(step=1.0))
        assert attempt.calls == 0         # never even tried

    def test_completed_attempt_is_never_discarded(self):
        # The attempt finishes after the deadline has technically
        # passed; the result still comes back — the deadline bounds
        # *further recovery work*, not a result that arrived late.
        clock = _FakeClock(step=10.0)
        out = run_with_recovery(lambda mode: "late-but-done",
                                deadline_s=15.0, clock=clock)
        assert out.result == "late-but-done"

    def test_deadline_bounds_demotions_too(self):
        calls = []

        def attempt(mode):
            calls.append(mode)
            raise SimulationError(f"{mode} wedged")

        with pytest.raises(DeadlineExceeded) as exc:
            run_with_recovery(attempt, mode="bulk", deadline_s=2.5,
                              clock=_FakeClock(step=1.0))
        assert calls == ["bulk", "event"]      # dense never reached
        assert isinstance(exc.value.__cause__, SimulationError)

    def test_classified_distinct_from_deadlock(self):
        from repro.telemetry.ledger import classify_outcome
        ddl = DeadlineExceeded("budget", deadline_s=1.0, elapsed_s=2.0)
        dlk = DeadlockError(7, {"k": "pop"})
        assert classify_outcome(ddl) == "deadline"
        assert classify_outcome(dlk) == "deadlock"
        assert classify_outcome(ddl) != classify_outcome(dlk)

    def test_no_deadline_means_no_clock_pressure(self):
        out = run_with_recovery(_Flaky(2, _crash),
                                policy=RetryPolicy(max_retries=3),
                                clock=_FakeClock(step=1e9))
        assert out.retries == 2 and out.result == "event"


class TestMemoryCheckpoint:
    def test_restore_is_in_place_and_complete(self):
        mem = DramModel(num_banks=2)
        buf = mem.bind("v", np.arange(8, dtype=np.float32))
        array_before = buf.data
        ckpt = MemoryCheckpoint.capture(mem)

        buf.data[...] = -1.0
        buf.elements_read += 40
        buf.elements_written += 4
        mem.bank_stats[0].bytes_read += 128
        mem.bank_stats[1].ecc_events += 2

        ckpt.restore()
        assert buf.data is array_before          # aliasing views survive
        np.testing.assert_array_equal(buf.data,
                                      np.arange(8, dtype=np.float32))
        assert buf.elements_read == 0 and buf.elements_written == 0
        assert mem.bank_stats[0].bytes_read == 0
        assert mem.bank_stats[1].ecc_events == 0

    def test_capture_of_no_memory_is_none(self):
        assert MemoryCheckpoint.capture(None) is None


class TestHostResilience:
    def _vectors(self, n=64):
        rng = np.random.default_rng(11)
        return (rng.standard_normal(n).astype(np.float32),
                rng.standard_normal(n).astype(np.float32))

    def test_crash_without_resilience_propagates(self):
        x, y = self._vectors()
        fb = Fblas(width=4)
        plan = FaultPlan(seed=0, kernel_faults=(
            KernelFault("dot", 2, "crash"),))
        with inject(plan):
            with pytest.raises(KernelCrashError):
                fb.dot(fb.copy_to_device(x), fb.copy_to_device(y))

    def test_crash_with_resilience_retries_to_success(self):
        x, y = self._vectors()
        fb = Fblas(width=4, resilience=True)
        plan = FaultPlan(seed=0, kernel_faults=(
            KernelFault("dot", 2, "crash"),))
        with inject(plan) as ctx:
            res = fb.dot(fb.copy_to_device(x), fb.copy_to_device(y))
        assert res == pytest.approx(float(reference.dot(x, y)), rel=1e-4)
        assert fb.last_recovery is not None
        assert fb.last_recovery.retries == 1
        assert fb.last_recovery.recovered
        assert ctx.faults_injected == 1 and ctx.retries == 1


class TestExecutorRecovery:
    def _build(self, mem, n, width, w, v, u, alpha):
        g = BoundMDAG()
        g.add_interface("read_w")
        g.add_interface("read_v")
        g.add_interface("read_u")
        g.add_module("axpy")
        g.add_module("dot")
        g.add_interface("write_beta")
        sig = vector_stream(n)
        g.connect("read_w", "axpy", sig, sig, dst_port="w")
        g.connect("read_v", "axpy", sig, sig, dst_port="v")
        g.connect("axpy", "dot", sig, sig, src_port="z", dst_port="z")
        g.connect("read_u", "dot", sig, sig, dst_port="u")
        g.connect("dot", "write_beta", scalar_stream(), scalar_stream(),
                  src_port="res", dst_port="res")
        beta = mem.allocate("beta_out", 1)
        g.bind("read_w", ReadBinding(mem.bind("w_buf", w), width))
        g.bind("read_v", ReadBinding(mem.bind("v_buf", v), width))
        g.bind("read_u", ReadBinding(mem.bind("u_buf", u), width))
        g.bind("axpy", ComputeBinding(
            lambda ins, outs: level1.axpy_kernel(
                n, -alpha, ins["v"], ins["w"], outs["z"], width),
            latency=level1_latency("map", width)))
        g.bind("dot", ComputeBinding(
            lambda ins, outs: level1.dot_kernel(
                n, ins["z"], ins["u"], outs["res"], width),
            latency=level1_latency("map_reduce", width)))
        g.bind("write_beta", WriteBinding(beta, 1))
        return g, beta

    def test_component_retry_recovers_result(self):
        n, width, alpha = 64, 4, 0.7
        rng = np.random.default_rng(5)
        w, v, u = (rng.standard_normal(n).astype(np.float32)
                   for _ in range(3))
        mem = DramModel(num_banks=2)
        g, beta = self._build(mem, n, width, w, v, u, alpha)
        plan = FaultPlan(seed=0, kernel_faults=(
            KernelFault("axpy", 3, "crash"),))
        with inject(plan):
            result = execute_plan(g, mem, recovery=True)
        assert result.recovered
        assert result.recovery[0]["retries"] == 1
        want = float(reference.dot(reference.axpy(-alpha, v, w), u))
        assert beta.data[0] == pytest.approx(want, rel=1e-3)

    def test_no_fault_recovery_log_is_clean(self):
        n, width = 32, 4
        rng = np.random.default_rng(6)
        w, v, u = (rng.standard_normal(n).astype(np.float32)
                   for _ in range(3))
        mem = DramModel(num_banks=2)
        g, _ = self._build(mem, n, width, w, v, u, 0.5)
        result = execute_plan(g, mem, recovery=True)
        assert result.recovery is not None
        assert not result.recovered
        assert all(r["retries"] == 0 for r in result.recovery)

    def test_recovery_off_by_default(self):
        n, width = 32, 4
        rng = np.random.default_rng(7)
        w, v, u = (rng.standard_normal(n).astype(np.float32)
                   for _ in range(3))
        mem = DramModel(num_banks=2)
        g, _ = self._build(mem, n, width, w, v, u, 0.5)
        result = execute_plan(g, mem)
        assert result.recovery is None and not result.recovered


class TestCampaignSmoke:
    def test_small_campaign_completes_explained(self):
        doc = run_campaign(seed=3, apps=("axpydot",), budget=6)
        assert doc["schema"] == "repro.faultcampaign/1"
        assert len(doc["trials"]) == 6
        assert sum(doc["summary"].values()) == 6
        assert set(doc["summary"]) <= set(OUTCOMES)
        assert doc["unexplained_hangs"] == 0

    def test_render_summary_mentions_apps_and_outcomes(self):
        doc = run_campaign(seed=3, apps=("axpydot",), budget=4)
        text = render_summary(doc)
        assert "axpydot" in text
        assert "faults injected:" in text
        assert "unexplained hangs: 0" in text
