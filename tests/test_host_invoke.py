"""Host invocation of generated routines (spec file -> host call)."""

import numpy as np
import pytest

from repro.codegen import RoutineSpec, generate_routine
from repro.host import Fblas

RNG = np.random.default_rng(61)


def f32(a):
    return np.asarray(a, dtype=np.float32)


@pytest.fixture
def fb():
    return Fblas(width=4, tile=8)


class TestInvoke:
    def test_generated_dot_uses_spec_width(self, fb):
        gen = generate_routine(RoutineSpec("dot", "wide_dot", width=16))
        x = fb.copy_to_device(f32(RNG.normal(size=64)))
        y = fb.copy_to_device(f32(RNG.normal(size=64)))
        got = fb.invoke(gen, x, y)
        assert got == pytest.approx(float(np.dot(x.data, y.data)), rel=1e-4)
        # the instance default width (4) is untouched afterwards
        assert fb.width == 4

    def test_spec_width_changes_cycle_count(self, fb):
        narrow = generate_routine(RoutineSpec("dot", "w2", width=2))
        wide = generate_routine(RoutineSpec("dot", "w16", width=16))
        x = fb.copy_to_device(f32(RNG.normal(size=512)))
        y = fb.copy_to_device(f32(RNG.normal(size=512)))
        fb.invoke(narrow, x, y)
        c_narrow = fb.records[-1].cycles
        fb.invoke(wide, x, y)
        c_wide = fb.records[-1].cycles
        assert c_narrow > 2 * c_wide

    def test_transposed_gemv_flag_comes_from_spec(self, fb):
        gen = generate_routine(RoutineSpec(
            "gemv", "gemvT", width=4, tile_n_size=8, tile_m_size=8,
            transposed=True))
        a = fb.copy_to_device(f32(RNG.normal(size=(8, 8))))
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        y = fb.copy_to_device(f32(RNG.normal(size=8)))
        y0 = np.array(y.data)
        got = fb.invoke(gen, 1.0, a, x, 1.0, y)
        np.testing.assert_allclose(got, a.data.T @ x.data + y0,
                                   rtol=1e-3, atol=1e-3)

    def test_trsv_functional_params_come_from_spec(self, fb):
        gen = generate_routine(RoutineSpec("trsv", "upper_trsv", width=2,
                                           lower=False))
        n = 6
        raw = f32(RNG.normal(size=(n, n))) + n * np.eye(n, dtype=np.float32)
        t = np.triu(raw)
        a = fb.copy_to_device(t)
        b = fb.copy_to_device(f32(RNG.normal(size=n)))
        b0 = np.array(b.data)
        x = fb.invoke(gen, a, b)
        np.testing.assert_allclose(t @ x, b0, rtol=1e-3, atol=1e-3)

    def test_precision_mismatch_rejected(self, fb):
        gen = generate_routine(RoutineSpec("dot", "ddot", width=4,
                                           precision="double"))
        x = fb.copy_to_device(f32(RNG.normal(size=8)))
        y = fb.copy_to_device(f32(RNG.normal(size=8)))
        with pytest.raises(TypeError):
            fb.invoke(gen, x, y)

    def test_invoke_accepts_bare_spec(self, fb):
        spec = RoutineSpec("scal", "s", width=8)
        x = fb.copy_to_device(f32(RNG.normal(size=32)))
        x0 = np.array(x.data)
        got = fb.invoke(spec, 2.0, x)
        np.testing.assert_allclose(got, 2.0 * x0, rtol=1e-6)

    def test_invoke_async(self, fb):
        gen = generate_routine(RoutineSpec("nrm2", "norm", width=8))
        x = fb.copy_to_device(f32(RNG.normal(size=64)))
        h = fb.invoke(gen, x, async_=True)
        assert not h.done
        assert h.wait() == pytest.approx(float(np.linalg.norm(x.data)),
                                         rel=1e-4)

    def test_invoke_rotg(self, fb):
        gen = generate_routine(RoutineSpec("rotg", "rg",
                                           precision="double"))
        r, z, c, s = fb.invoke(gen, 3.0, 4.0)
        assert c * 3.0 + s * 4.0 == pytest.approx(r)
