"""Tests for MDAG construction and the Sec. V validity analysis."""

import pytest

from repro.streaming import (
    MDAG,
    MDAGError,
    StreamSignature,
    matrix_stream,
    row_tiles,
    scalar_stream,
    vector_stream,
)


def _sig(n):
    return vector_stream(n)


def axpydot_mdag(n=1024):
    """Fig. 6: w, v -> axpy -> z -> dot <- u."""
    g = MDAG()
    g.add_interface("read_w")
    g.add_interface("read_v")
    g.add_interface("read_u")
    g.add_module("axpy")
    g.add_module("dot")
    g.add_interface("write_beta")
    g.connect("read_w", "axpy", _sig(n), _sig(n))
    g.connect("read_v", "axpy", _sig(n), _sig(n))
    g.connect("axpy", "dot", _sig(n), _sig(n))
    g.connect("read_u", "dot", _sig(n), _sig(n))
    g.connect("dot", "write_beta", scalar_stream(), scalar_stream())
    return g


def atax_mdag(n=64, m=64, tn=8, tm=8):
    """Fig. 8: one A interface feeds both GEMVs; first feeds second."""
    sched = row_tiles(m, n, tn, tm)
    g = MDAG()
    g.add_interface("read_A")
    g.add_interface("read_x")
    g.add_module("gemv1")
    g.add_module("gemv2")
    g.add_interface("write_y")
    asig = matrix_stream(sched)
    g.connect("read_A", "gemv1", asig, asig)
    g.connect("read_A", "gemv2", asig, asig)
    g.connect("read_x", "gemv1", _sig(n), _sig(n))
    g.connect("gemv1", "gemv2", _sig(m), _sig(m))
    g.connect("gemv2", "write_y", _sig(n), _sig(n))
    return g


class TestConstruction:
    def test_duplicate_node_rejected(self):
        g = MDAG()
        g.add_module("a")
        with pytest.raises(MDAGError):
            g.add_module("a")

    def test_duplicate_edge_rejected(self):
        g = MDAG()
        g.add_module("a")
        g.add_module("b")
        g.connect("a", "b", _sig(4), _sig(4))
        with pytest.raises(MDAGError):
            g.connect("a", "b", _sig(4), _sig(4))

    def test_unknown_node_rejected(self):
        g = MDAG()
        g.add_module("a")
        with pytest.raises(MDAGError):
            g.connect("a", "ghost", _sig(4), _sig(4))

    def test_kinds(self):
        g = MDAG()
        g.add_interface("i")
        g.add_module("m")
        assert g.kind("i") == "interface"
        assert g.kind("m") == "compute"


class TestEdgeValidity:
    def test_count_mismatch_flagged(self):
        g = MDAG()
        g.add_module("a")
        g.add_module("b")
        g.connect("a", "b", _sig(10), _sig(20))
        rep = g.validate()
        assert not rep.valid
        assert any(i.kind == "replay" for i in rep.issues)

    def test_order_mismatch_flagged(self):
        g = MDAG()
        g.add_module("a")
        g.add_module("b")
        rowsig = matrix_stream(row_tiles(8, 8, 4, 4))
        colsig = matrix_stream(row_tiles(8, 8, 2, 2))
        g.connect("a", "b", rowsig, colsig)
        rep = g.validate()
        assert not rep.valid
        assert any(i.kind == "signature" for i in rep.issues)

    def test_interface_may_replay(self):
        """An interface can re-read DRAM; replay from it is legal."""
        g = MDAG()
        g.add_interface("read_x")
        g.add_module("gemv")
        replayed = vector_stream(16, replay=4)
        g.connect("read_x", "gemv", replayed, replayed)
        assert g.validate().valid

    def test_compute_module_cannot_replay(self):
        g = MDAG()
        g.add_module("a")
        g.add_module("b")
        g.connect("a", "b", vector_stream(16), vector_stream(16, replay=4))
        rep = g.validate()
        assert any(i.kind == "replay" for i in rep.issues)


class TestMultitree:
    def test_axpydot_is_valid_multitree(self):
        rep = axpydot_mdag().validate()
        assert rep.valid
        assert rep.is_multitree
        assert not rep.reconvergent_pairs

    def test_bicg_shape_is_multitree(self):
        """Fig. 7: shared A read fans out, but paths never reconverge."""
        g = MDAG()
        g.add_interface("read_A")
        g.add_module("gemv")
        g.add_module("gemvT")
        g.add_interface("write_q")
        g.add_interface("write_s")
        sched = row_tiles(16, 16, 4, 4)
        asig = matrix_stream(sched)
        g.connect("read_A", "gemv", asig, asig)
        g.connect("read_A", "gemvT", asig, asig)
        g.connect("gemv", "write_q", _sig(16), _sig(16))
        g.connect("gemvT", "write_s", _sig(16), _sig(16))
        rep = g.validate()
        assert rep.valid and rep.is_multitree

    def test_atax_is_invalid_non_multitree(self):
        """Fig. 8: two vertex-disjoint paths read_A -> gemv2."""
        rep = atax_mdag().validate()
        assert not rep.valid
        assert not rep.is_multitree
        assert ("read_A", "gemv2") in rep.reconvergent_pairs
        assert any(i.kind == "buffering" for i in rep.issues)

    def test_cycle_detected(self):
        g = MDAG()
        g.add_module("a")
        g.add_module("b")
        g.connect("a", "b", _sig(4), _sig(4))
        g.connect("b", "a", _sig(4), _sig(4))
        rep = g.validate()
        assert not rep.valid
        assert any(i.kind == "cycle" for i in rep.issues)


class TestChannelSizing:
    def test_required_depth_raises_edge_depth(self):
        g = atax_mdag(n=64, m=64, tn=8)
        g.required_depth("read_A", "gemv2", 64 * 8)
        assert g.depth("read_A", "gemv2") == 512

    def test_required_depth_never_shrinks(self):
        g = atax_mdag()
        g.required_depth("read_A", "gemv2", 2)
        assert g.depth("read_A", "gemv2") >= 64

    def test_bad_edge_rejected(self):
        g = atax_mdag()
        with pytest.raises(MDAGError):
            g.required_depth("gemv2", "read_A", 10)
        with pytest.raises(MDAGError):
            g.required_depth("read_A", "gemv2", 0)


class TestReporting:
    def test_io_counts_interface_edges_only(self):
        g = axpydot_mdag(n=100)
        # 3 vector reads (w, v, u) + scalar write; axpy->dot is on-chip
        assert g.io_operations() == 301

    def test_describe_lists_everything(self):
        text = axpydot_mdag().describe()
        assert "axpy" in text and "dot" in text and "interface" in text
