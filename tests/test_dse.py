"""Design-space exploration tests (Sec. IV use-cases, automated)."""

import pytest

from repro.fpga.device import ARRIA10, STRATIX10
from repro.models.dse import (
    cheapest_within,
    explore_gemv,
    explore_level1,
    explore_systolic_gemm,
    fastest,
    pareto_frontier,
)


class TestLevel1Exploration:
    def test_wider_is_faster_and_costlier(self):
        points = explore_level1("dot", 1 << 20, STRATIX10)
        by_width = sorted(points, key=lambda p: p.param("width"))
        for lo, hi in zip(by_width, by_width[1:]):
            assert hi.cycles < lo.cycles
            assert hi.usage.dsps > lo.usage.dsps

    def test_infeasible_widths_are_dropped(self):
        """Widths whose DP logic exceeds the Arria are not returned."""
        points = explore_level1("dot", 1 << 20, ARRIA10,
                                precision="double",
                                widths=(64, 128, 256, 512, 1024))
        assert points                          # some fit
        assert all(p.param("width") <= 256 for p in points)

    def test_every_point_fits_the_device(self):
        for p in explore_level1("scal", 1 << 16, ARRIA10):
            assert p.usage.fits(ARRIA10)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            explore_level1("dot", 0, STRATIX10)


class TestSelection:
    def test_fastest_is_widest_feasible(self):
        points = explore_level1("dot", 1 << 22, STRATIX10)
        best = fastest(points)
        assert best.param("width") == max(p.param("width") for p in points)

    def test_cheapest_within_budget(self):
        """The paper's dimensioning question: don't overprovision."""
        points = explore_level1("dot", 1 << 22, STRATIX10)
        generous = cheapest_within(points, time_budget=1.0)
        assert generous.param("width") == min(p.param("width")
                                              for p in points)
        tight = cheapest_within(points, fastest(points).seconds * 1.01)
        assert tight.param("width") >= generous.param("width")

    def test_impossible_budget_raises(self):
        points = explore_level1("dot", 1 << 22, STRATIX10)
        with pytest.raises(ValueError):
            cheapest_within(points, time_budget=1e-12)

    def test_fastest_of_nothing_raises(self):
        with pytest.raises(ValueError):
            fastest([])


class TestPareto:
    def test_frontier_is_subset_and_nondominated(self):
        points = explore_gemv(2048, 2048, STRATIX10)
        frontier = pareto_frontier(points)
        assert frontier
        assert all(f in points for f in frontier)
        for f in frontier:
            dominated = any(
                p.seconds <= f.seconds
                and p.utilization_key < f.utilization_key
                for p in points)
            assert not dominated

    def test_frontier_sorted_by_time(self):
        points = explore_gemv(1024, 1024, ARRIA10)
        frontier = pareto_frontier(points)
        secs = [p.seconds for p in frontier]
        assert secs == sorted(secs)

    def test_tiles_do_not_change_compute_time_but_gemv_frontier_prefers_small(self):
        """With compute time set by W alone, the frontier keeps the
        cheapest tile per width (tiles cost M20Ks, not time in this
        model — their benefit is bandwidth, covered by iomodel)."""
        points = explore_gemv(1024, 1024, STRATIX10, widths=(32,),
                              tiles=(256, 1024))
        frontier = pareto_frontier(points)
        assert len(frontier) == 1


class TestSystolicExploration:
    def test_paper_flagship_is_on_the_stratix_frontier(self):
        points = explore_systolic_gemm(
            3840, 3840, 3840, STRATIX10,
            grids=((16, 16), (32, 32), (40, 80)), ratios=(6, 12, 24))
        frontier = pareto_frontier(points)
        best = fastest(points)
        assert (best.param("pr"), best.param("pc")) == (40, 80)
        assert best in frontier

    def test_arria_cannot_host_the_stratix_flagship(self):
        points = explore_systolic_gemm(
            3840, 3840, 3840, ARRIA10, grids=((40, 80),), ratios=(6, 12))
        assert points == []

    def test_double_precision_shrinks_feasible_grids(self):
        sp = explore_systolic_gemm(768, 768, 768, ARRIA10,
                                   grids=((16, 16), (32, 32)), ratios=(3,))
        dp = explore_systolic_gemm(768, 768, 768, ARRIA10,
                                   precision="double",
                                   grids=((16, 16), (32, 32)), ratios=(3,))
        assert len(dp) < len(sp)

    def test_describe_is_informative(self):
        points = explore_level1("dot", 1 << 16, STRATIX10, widths=(16,))
        text = points[0].describe()
        assert "width=16" in text and "DSPs" in text
