#!/usr/bin/env python
"""Quickstart: the FBLAS host API on the simulated FPGA.

Mirrors the paper's Sec. II-B workflow: copy data to the device, invoke
BLAS routines on FPGA memory, copy results back — while every call runs
as a real streaming design (DRAM interface kernels, the routine module,
write-back) in the cycle-level simulator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.fpga.device import STRATIX10
from repro.host import Fblas

def main():
    rng = np.random.default_rng(0)

    # An FBLAS instance bound to the Stratix 10 board of the paper's
    # evaluation, with vectorization width 16 (a typical DDR-saturating
    # choice, Sec. VI-C).
    fb = Fblas(device=STRATIX10, width=8, tile=64)

    n = 1024
    x = fb.copy_to_device(rng.normal(size=n).astype(np.float32))
    y = fb.copy_to_device(rng.normal(size=n).astype(np.float32))

    # -- Level 1 -----------------------------------------------------------
    d = fb.sdot(x, y)
    rec = fb.records[-1]
    print(f"sdot    = {d:12.4f}   ({rec.cycles} cycles, "
          f"{rec.seconds * 1e6:.1f} us at {rec.frequency / 1e6:.0f} MHz, "
          f"{rec.io_elements} memory I/O ops)")

    fb.saxpy(0.5, x, y)
    print(f"saxpy   done           ({fb.records[-1].cycles} cycles)")

    nrm = fb.snrm2(y)
    print(f"snrm2   = {nrm:12.4f}   ({fb.records[-1].cycles} cycles)")

    # -- Level 2 -----------------------------------------------------------
    a = fb.copy_to_device(rng.normal(size=(64, 64)).astype(np.float32))
    xv = fb.copy_to_device(rng.normal(size=64).astype(np.float32))
    yv = fb.copy_to_device(np.zeros(64, dtype=np.float32))
    fb.sgemv(1.0, a, xv, 0.0, yv)
    rec = fb.records[-1]
    print(f"sgemv   done           ({rec.cycles} cycles, "
          f"{rec.gflops:.2f} Gflop/s modeled)")

    # -- Level 3: the systolic GEMM of Sec. III-C ---------------------------
    b = fb.copy_to_device(rng.normal(size=(64, 64)).astype(np.float32))
    c = fb.copy_to_device(np.zeros((64, 64), dtype=np.float32))
    out = fb.sgemm(1.0, a, b, 0.0, c)
    rec = fb.records[-1]
    err = np.max(np.abs(out - np.asarray(a.data) @ np.asarray(b.data)))
    print(f"sgemm   done           ({rec.cycles} cycles on a "
          f"{fb.systolic_rows}x{fb.systolic_cols} systolic array, "
          f"max |err| = {err:.2e})")

    # -- Asynchronous calls (Sec. II-B) -------------------------------------
    h = fb.sasum(x, async_=True)
    print(f"sasum   queued (done={h.done})", end="")
    fb.finish()
    print(f" -> {h.result():.4f}")

    print("\nPer-call records:")
    for r in fb.records:
        print(f"  {r.routine:8s} {r.precision:6s} {r.cycles:>9d} cycles "
              f"{r.seconds * 1e6:>9.1f} us  {r.io_elements:>8d} I/O ops "
              f"[{r.mode}]")


if __name__ == "__main__":
    main()
