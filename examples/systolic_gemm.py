#!/usr/bin/env python
"""Systolic GEMM demo (Sec. III-C): PE grid, skew, and tile-ratio scaling.

Runs the register-level systolic-array simulation: correctness against
numpy, measured cycle counts against the analytic model, and the Fig. 10
(right) effect — PE utilization approaching 100% as the memory-tile /
compute-tile ratio grows.

Run:  python examples/systolic_gemm.py
"""

import numpy as np

from repro.blas.systolic import PE_FANOUT, SystolicConfig, SystolicGemm
from repro.fpga.device import STRATIX10, FrequencyModel
from repro.fpga.resources import gemm_systolic_resources
from repro.models import expected_performance


def main():
    rng = np.random.default_rng(11)

    print("Each PE has a constant fan-out of "
          f"{PE_FANOUT} links (a/b/c in+out), independent of array size —")
    print("the property that lets the systolic design scale where naive "
          "unrolling fails.\n")

    # -- correctness + timing on a small array -----------------------------
    cfg = SystolicConfig(pr=4, pc=4, tile_r=16, tile_c=16)
    sys_gemm = SystolicGemm(cfg)
    n = m = k = 32
    a = rng.normal(size=(n, k)).astype(np.float32)
    b = rng.normal(size=(k, m)).astype(np.float32)
    got, stats = sys_gemm.multiply(a, b)
    err = np.max(np.abs(got - a @ b))
    print(f"{cfg.pr}x{cfg.pc} PEs, {cfg.tile_r}x{cfg.tile_c} memory tile, "
          f"{n}x{m}x{k} GEMM:")
    print(f"  max |err| = {err:.2e}")
    print(f"  measured cycles = {stats.cycles} "
          f"(analytic model: {sys_gemm.expected_cycles(n, m, k)})")
    print(f"  MACs = {stats.macs} (exact: {n * m * k})")
    print(f"  PE utilization = {stats.pe_utilization(cfg):.1%}\n")

    # -- Fig. 10 (right): utilization vs compute/memory tile ratio ----------
    print("compute/memory tile ratio sweep (Fig. 10 right, 4x4 PEs, K=64):")
    print(f"  {'ratio':>6} {'tile':>8} {'cycles':>8} {'PE util':>8}")
    k = 64
    for ratio in (1, 2, 4, 8):
        tile = 4 * ratio
        cfg = SystolicConfig(4, 4, tile, tile)
        sg = SystolicGemm(cfg)
        a = rng.normal(size=(tile, k)).astype(np.float32)
        b = rng.normal(size=(k, tile)).astype(np.float32)
        _, stats = sg.multiply(a, b)
        print(f"  {ratio:>6} {tile:>5}x{tile:<3} {stats.cycles:>8} "
              f"{stats.pe_utilization(cfg):>8.1%}")

    # -- the paper's flagship configuration, modeled ------------------------
    print("\nStratix 10 flagship design (40x80 PEs, 960x960 memory tile):")
    usage = gemm_systolic_resources(40, 80, 960, 960, "single",
                                    device=STRATIX10)
    freq = FrequencyModel(STRATIX10).estimate(
        "systolic", "single", utilization=usage.utilization(STRATIX10))
    peak = expected_performance(usage.dsps, freq)
    print(f"  DSPs = {usage.dsps} ({usage.dsps / 4468:.0%} of available), "
          f"M20Ks = {usage.m20ks}")
    print(f"  modeled frequency = {freq / 1e6:.0f} MHz")
    print(f"  expected performance = {peak / 1e12:.2f} Tflop/s "
          f"(paper measures 1.28 Tflop/s against this bar)")


if __name__ == "__main__":
    main()
