#!/usr/bin/env python
"""Design-space exploration with the Sec. IV space/time models.

Walks the paper's dimensioning story for a DOT module on the Stratix 10:

1. sweep the vectorization width and tabulate resources (Table I fits),
   latency, and projected throughput;
2. compute the *optimal* width for the board's DDR bandwidth — wider
   designs waste resources, narrower ones bottleneck the pipeline;
3. verify both claims with cycle-accurate simulations on either side of
   the optimum;
4. show the tiled-GEMV twist: tiling lowers the bandwidth a module needs,
   doubling the affordable width (Sec. IV-B).

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.blas import level1
from repro.fpga import Engine, sink_kernel
from repro.fpga.device import STRATIX10, FrequencyModel
from repro.fpga.memory import DramModel, read_kernel
from repro.fpga.resources import level1_latency, level1_resources
from repro.fpga.util import sink_kernel as _sink
from repro.models import (
    expected_performance,
    level1_cycles,
    optimal_width,
    optimal_width_tiled_gemv,
)


def sweep_widths():
    print("DOT on Stratix 10: width sweep (Sec. IV-A model)")
    print(f"  {'W':>4} {'LUTs':>7} {'FFs':>7} {'DSPs':>5} {'lat':>4} "
          f"{'cycles(1M)':>11} {'Gop/s @350MHz':>14}")
    n = 1_000_000
    f = 350e6
    for w in (2, 4, 8, 16, 32, 64, 128):
        usage = level1_resources("map_reduce", w)
        lat = level1_latency("map_reduce", w)
        cycles = level1_cycles("dot", n, w)
        gops = 2 * n / (cycles / f) / 1e9
        print(f"  {w:>4} {usage.luts:>7} {usage.ffs:>7} {usage.dsps:>5} "
              f"{lat:>4} {cycles:>11} {gops:>14.1f}")


def optimal_width_story():
    dev = STRATIX10
    f = FrequencyModel(dev).estimate("level1", "single")
    w_opt = optimal_width(dev.dram_bank_bandwidth, f, 4,
                          operands_per_cycle_per_lane=1)
    print(f"\nOne DDR bank feeds {dev.dram_bank_bandwidth / 1e9:.1f} GB/s; "
          f"at {f / 1e6:.0f} MHz and 4-byte floats the optimal per-operand")
    print(f"width is W = ceil(B/(S*F)) = {w_opt}.  Each DOT operand stream "
          "lives in its own bank, so the module is dimensioned per stream.")

    # Demonstrate with the simulator: cycles per element at W below, at,
    # and above the optimum, with DRAM bandwidth enforced.
    n = 16384
    print(f"\n  simulated DOT of N={n}, one bank per operand:")
    print(f"  {'W':>4} {'cycles':>8} {'vs W_opt':>9}")
    base = None
    for w in (max(1, w_opt // 2), w_opt, 2 * w_opt, 4 * w_opt):
        mem = DramModel(num_banks=2, bytes_per_cycle=dev.bytes_per_cycle(f))
        x = mem.bind("x", np.ones(n, dtype=np.float32), bank=0)
        y = mem.bind("y", np.ones(n, dtype=np.float32), bank=1)
        eng = Engine(memory=mem)
        cx = eng.channel("x", 4 * w)
        cy = eng.channel("y", 4 * w)
        cr = eng.channel("r", 4)
        out = []
        eng.add_kernel("rx", read_kernel(mem, x, cx, w))
        eng.add_kernel("ry", read_kernel(mem, y, cy, w))
        eng.add_kernel("dot", level1.dot_kernel(n, cx, cy, cr, w),
                       latency=level1_latency("map_reduce", w))
        eng.add_kernel("sink", _sink(cr, 1, 1, out))
        cycles = eng.run().cycles
        if base is None:
            base = cycles
        print(f"  {w:>4} {cycles:>8} {base / cycles:>8.2f}x")
    print("  -> throughput saturates at the optimal width; extra lanes "
          "only burn DSPs.")


def tiling_story():
    dev = STRATIX10
    f = FrequencyModel(dev).estimate("level2", "single")
    w_plain = optimal_width(dev.dram_bank_bandwidth, f, 4, 2)
    w_tiled = optimal_width_tiled_gemv(dev.dram_bank_bandwidth, f, 4,
                                       1024, 1024)
    print(f"\nGEMV dimensioning (Sec. IV-B): non-tiled needs x with every "
          f"element of A\n  -> W_opt = {w_plain}; with 1024x1024 tiles x "
          f"is fetched once per tile\n  -> W_opt = {w_tiled} "
          "(double: the whole bank feeds the matrix stream).")


def automated_dse():
    """Automated exploration: the Pareto frontier and budgeted choice."""
    from repro.models.dse import (
        cheapest_within,
        explore_level1,
        fastest,
        pareto_frontier,
    )
    n = 1 << 22
    points = explore_level1("dot", n, STRATIX10)
    frontier = pareto_frontier(points)
    print(f"\nAutomated DSE: DOT of N={n} on Stratix 10 — "
          f"{len(points)} feasible points, {len(frontier)} on the "
          "space/time Pareto frontier:")
    for p in frontier:
        print(f"  {p.describe()}")
    best = fastest(points)
    budget = best.seconds * 3
    frugal = cheapest_within(points, budget)
    print(f"\n  fastest: {best.describe()}")
    print(f"  cheapest within a {budget * 1e6:.0f} us budget: "
          f"{frugal.describe()}")
    print("  -> the dimensioning answer of Sec. IV-B, automated.")


if __name__ == "__main__":
    sweep_widths()
    optimal_width_story()
    tiling_story()
    automated_dse()
