#!/usr/bin/env python
"""Conjugate gradient on the FPGA: an application built from FBLAS calls.

The paper's introduction motivates FBLAS as the missing library layer that
lets HPC codes target spatial architectures productively.  This example is
that use-case: a complete CG solver for a symmetric positive-definite
system, written against the host API exactly as one would write it against
any BLAS — every GEMV/DOT/AXPY runs as a streaming design on the simulated
board, and the per-call records add up to a device-time budget for the
whole solve.

Run:  python examples/conjugate_gradient.py
"""

import numpy as np

from repro.host import Fblas


def make_spd_system(n, rng):
    """A well-conditioned SPD matrix and a right-hand side."""
    q = rng.normal(size=(n, n)).astype(np.float32)
    a = (q @ q.T / n + np.eye(n, dtype=np.float32) * 2.0).astype(np.float32)
    b = rng.normal(size=n).astype(np.float32)
    return a, b


def conjugate_gradient(fb, a_buf, b_host, max_iter=50, tol=1e-5):
    """Solve A x = b with CG, device-resident vectors throughout."""
    n = len(b_host)
    x = fb.copy_to_device(np.zeros(n, dtype=np.float32), name="cg_x")
    r = fb.copy_to_device(b_host.copy(), name="cg_r")      # r = b - A*0
    p = fb.copy_to_device(b_host.copy(), name="cg_p")
    ap = fb.copy_to_device(np.zeros(n, dtype=np.float32), name="cg_ap")

    rs_old = fb.dot(r, r)
    history = []
    for it in range(max_iter):
        # ap <- A p            (one streamed GEMV)
        ap.data[:] = 0
        fb.gemv(1.0, a_buf, p, 0.0, ap)
        # alpha = rs / (p^T ap)
        alpha = float(rs_old) / float(fb.dot(p, ap))
        # x <- x + alpha p ;  r <- r - alpha ap
        fb.axpy(alpha, p, x)
        fb.axpy(-alpha, ap, r)
        rs_new = float(fb.dot(r, r))
        history.append(np.sqrt(rs_new))
        if np.sqrt(rs_new) < tol:
            break
        # p <- r + (rs_new/rs_old) p   == scal + axpy
        fb.scal(rs_new / float(rs_old), p)
        fb.axpy(1.0, r, p)
        rs_old = rs_new
    return fb.copy_from_device(x), history


def main():
    rng = np.random.default_rng(42)
    n = 64
    a, b = make_spd_system(n, rng)

    fb = Fblas(width=8, tile=16)
    a_buf = fb.copy_to_device(a, name="cg_A")
    x, history = conjugate_gradient(fb, a_buf, b)

    residual = np.linalg.norm(a @ x - b)
    print(f"CG on a {n}x{n} SPD system (simulated Stratix 10):")
    print(f"  iterations        : {len(history)}")
    print(f"  final ||Ax - b||  : {residual:.3e}")
    print(f"  residual history  : "
          + " ".join(f"{h:.1e}" for h in history[:8]) + " ...")

    calls = {}
    cycles = {}
    for rec in fb.records:
        calls[rec.routine] = calls.get(rec.routine, 0) + 1
        cycles[rec.routine] = cycles.get(rec.routine, 0) + rec.cycles
    total_cycles = sum(cycles.values())
    total_seconds = fb.context.total_seconds()
    print(f"\n  device work ({len(fb.records)} routine calls, "
          f"{total_cycles} cycles, {total_seconds * 1e6:.1f} us modeled):")
    for routine in sorted(cycles, key=cycles.get, reverse=True):
        share = cycles[routine] / total_cycles
        print(f"    {routine:6s} x{calls[routine]:<3d} "
              f"{cycles[routine]:>8d} cycles  {share:6.1%}")
    print("\n  the GEMV dominates — exactly the module whose width/tiles "
          "the Sec. IV models dimension.")


if __name__ == "__main__":
    main()
