#!/usr/bin/env python
"""Streaming composition (Sec. V): chaining modules through on-chip FIFOs.

Demonstrates, on the cycle-level simulator:

* AXPYDOT — host-layer (3 sequential calls, 7N memory I/O) vs the Fig. 6
  streaming composition (3N+1 I/O, pipeline-parallel execution);
* BICG — one read of A shared by GEMV and GEMV^T (Fig. 7);
* ATAX — the *invalid* composition of Fig. 8: statically flagged by the
  MDAG analysis, dynamically deadlocking in the simulator unless the A
  channel buffers a full row of tiles;
* the static MDAG validity reports for all three.

Run:  python examples/streaming_composition.py
"""

import numpy as np

from repro.apps import (
    atax_mdag,
    atax_reference,
    atax_streaming,
    axpydot_host,
    axpydot_mdag,
    axpydot_reference,
    axpydot_streaming,
    bicg_mdag,
    bicg_reference,
    bicg_streaming,
)
from repro.fpga import DeadlockError
from repro.host import Fblas, FblasContext


def f32(a):
    return np.asarray(a, dtype=np.float32)


def demo_axpydot():
    print("=" * 70)
    print("AXPYDOT: z = w - alpha*v ; beta = z^T u")
    print("=" * 70)
    rng = np.random.default_rng(1)
    n, alpha = 4096, 0.75
    w, v, u = (f32(rng.normal(size=n)) for _ in range(3))
    ref = axpydot_reference(w, v, u, alpha)

    fb = Fblas(width=16)
    host = axpydot_host(fb, fb.copy_to_device(w), fb.copy_to_device(v),
                        fb.copy_to_device(u), alpha)
    ctx = FblasContext()
    stream = axpydot_streaming(ctx, ctx.copy_to_device(w),
                               ctx.copy_to_device(v), ctx.copy_to_device(u),
                               alpha, width=16)
    print(f"reference beta = {ref:.4f}")
    print(f"host layer : beta = {host.value:.4f}  cycles = {host.cycles:7d}"
          f"  I/O = {host.io_elements} (= 7N)")
    print(f"streaming  : beta = {stream.value:.4f}  cycles = "
          f"{stream.cycles:7d}  I/O = {stream.io_elements} (= 3N+1)")
    print(f"speedup = {host.cycles / stream.cycles:.2f}x "
          f"(paper Fig. 11: ~4x with bank contention)")
    rep = axpydot_mdag(n).validate()
    print(f"MDAG: valid={rep.valid}, multitree={rep.is_multitree}\n")


def demo_bicg():
    print("=" * 70)
    print("BICG: q = A p ; s = A^T r — one read of A feeds both GEMVs")
    print("=" * 70)
    rng = np.random.default_rng(2)
    n = m = 64
    a, p, r = f32(rng.normal(size=(n, m))), f32(rng.normal(size=m)), \
        f32(rng.normal(size=n))
    qref, sref = bicg_reference(a, p, r)
    ctx = FblasContext()
    res = bicg_streaming(ctx, ctx.copy_to_device(a), ctx.copy_to_device(p),
                         ctx.copy_to_device(r), tile=16, width=8)
    q, s = res.value
    print(f"max |q - ref| = {np.max(np.abs(q - qref)):.2e}, "
          f"max |s - ref| = {np.max(np.abs(s - sref)):.2e}")
    print(f"cycles = {res.cycles}, I/O = {res.io_elements} "
          f"(A read once: the host layer would read it twice)")
    rep = bicg_mdag(n, m, 16, 16).validate()
    print(f"MDAG: valid={rep.valid}, multitree={rep.is_multitree}\n")


def demo_atax():
    print("=" * 70)
    print("ATAX: y = A^T A x — the invalid composition of Fig. 8")
    print("=" * 70)
    rng = np.random.default_rng(3)
    m = n = 32
    a, x = f32(rng.normal(size=(m, n))), f32(rng.normal(size=n))

    rep = atax_mdag(m, n, 8, 8).validate()
    print(f"static analysis: valid={rep.valid}, "
          f"reconvergent pairs={rep.reconvergent_pairs}")
    for issue in rep.issues:
        print(f"  [{issue.kind}] {issue.detail}")

    ctx = FblasContext()
    try:
        atax_streaming(ctx, ctx.copy_to_device(a), ctx.copy_to_device(x),
                       tile=8, width=4, channel_depth=16)
        print("unexpected: undersized channel did not deadlock!")
    except DeadlockError as exc:
        print(f"\ndynamic check: {exc}")

    ctx2 = FblasContext()
    res = atax_streaming(ctx2, ctx2.copy_to_device(a),
                         ctx2.copy_to_device(x), tile=8, width=4,
                         channel_depth="auto")
    err = np.max(np.abs(res.value - atax_reference(a, x)))
    print(f"\nwith the channel sized to a full row of tiles "
          f"(N*T_N = {n * 8}): runs to completion, max |err| = {err:.2e}")


def demo_planner():
    """The general MDAG planner (the paper's Sec. V future work)."""
    print("\n" + "=" * 70)
    print("Automatic composition planning (plan_composition)")
    print("=" * 70)
    from repro.apps import gemver_full_streaming_mdag
    from repro.models.iomodel import atax_min_channel_depth
    from repro.streaming import plan_composition

    n, tn = 32, 8
    print("\nGEMVER, fully streamed MDAG (invalid): the planner splits it "
          "the way Fig. 9 does —")
    plan = plan_composition(gemver_full_streaming_mdag(n, tn))
    print(plan.describe())

    print("\nATAX with an on-chip buffer budget: the planner sizes the "
          "channel instead —")
    window = atax_min_channel_depth(n, tn)
    plan = plan_composition(
        atax_mdag(n, n, tn, tn),
        windows={("read_A", "gemvT"): window},
        buffer_budget=2 * window)
    print(plan.describe())


if __name__ == "__main__":
    demo_axpydot()
    demo_bicg()
    demo_atax()
    demo_planner()
