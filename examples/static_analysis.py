#!/usr/bin/env python
"""Static design checking (repro.analysis): catch stalls before cycle 0.

The paper's validity analysis (Sec. V) is implemented as a pass-based
static analyzer with stable FBxxx diagnostic codes.  This example walks
the three subjects it understands:

* an **MDAG** — the ATAX reconvergence, from "invalid for dynamic problem
  sizes" (FB002) through "proven deadlock, here is the fix" (FB003) to a
  "proven safe" certificate (FB008);
* a built **engine** — the same composition at kernel level, where
  ``Engine.run(preflight=True)`` raises :class:`~repro.analysis.AnalysisError`
  instead of simulating a design that would stall forever;
* a codegen **routine spec** — parameter lint (FB2xx) and resource fit
  against the paper's Table II device catalogs (FB1xx).

Run:  python examples/static_analysis.py
"""

import numpy as np

from repro.analysis import AnalysisError, analyze_mdag, analyze_specs
from repro.apps import atax_mdag, atax_reference, atax_streaming
from repro.codegen.spec import RoutineSpec
from repro.fpga.device import STRATIX10
from repro.host import FblasContext
from repro.models.iomodel import atax_min_channel_depth


def demo_mdag():
    print("=" * 70)
    print("1. MDAG analysis: the ATAX reconvergence (Fig. 8)")
    print("=" * 70)
    m = n = 64
    tile = 8
    mdag = atax_mdag(m, n, tile, tile)

    print("\n-- no reordering window known --")
    print(analyze_mdag(mdag).render_text())

    window = atax_min_channel_depth(n, tile)
    windows = {("read_A", "gemvT"): window}
    print(f"\n-- window known ({window} elements), channel depth "
          f"{mdag.depth('read_A', 'gemvT')} --")
    result = analyze_mdag(mdag, windows=windows)
    print(result.render_text())

    fix = result.by_code("FB003")[0].fix
    print(f"\napplying the suggested fix: {fix}")
    mdag.required_depth("read_A", "gemvT", window)
    print(analyze_mdag(mdag, windows=windows).render_text())


def demo_preflight():
    print()
    print("=" * 70)
    print("2. Engine pre-flight: refuse to simulate a deadlocking design")
    print("=" * 70)
    rng = np.random.default_rng(3)
    a = rng.normal(size=(32, 32)).astype(np.float32)
    x = rng.normal(size=32).astype(np.float32)

    ctx = FblasContext()
    try:
        atax_streaming(ctx, ctx.copy_to_device(a), ctx.copy_to_device(x),
                       tile=8, width=4, channel_depth=16, preflight=True)
    except AnalysisError as exc:
        print("undersized channel, preflight=True ->", type(exc).__name__)
        for diag in exc.diagnostics:
            print(diag.format())

    ctx = FblasContext()
    res = atax_streaming(ctx, ctx.copy_to_device(a), ctx.copy_to_device(x),
                         tile=8, width=4, preflight=True)
    ok = np.allclose(res.value, atax_reference(a, x), rtol=1e-4)
    print(f"\nauto-sized channel, preflight=True -> ran {res.cycles} cycles, "
          f"correct = {ok}")


def demo_spec_lint():
    print()
    print("=" * 70)
    print("3. Routine-spec lint and resource fit (Tables I-III)")
    print("=" * 70)
    specs = [
        RoutineSpec(blas_name="dot", user_name="good_dot",
                    precision="single", width=16),
        RoutineSpec(blas_name="gemv", user_name="odd_gemv",
                    precision="single", width=6,
                    tile_n_size=64, tile_m_size=64),
    ]
    print(analyze_specs(specs, device=STRATIX10).render_text())
    print("\n(same checks from the CLI: python -m repro.codegen spec.json "
          "--lint, or python -m repro.analysis spec.json)")


def main():
    demo_mdag()
    demo_preflight()
    demo_spec_lint()


if __name__ == "__main__":
    main()
