#!/usr/bin/env python
"""Code generator demo (Sec. II-C): JSON routine spec -> OpenCL + execution.

Writes a routine specification file like the one FBLAS users author,
generates the Intel-OpenCL-style kernels and DRAM helper kernels from it,
prints one of them, and then *runs* the generated DOT design through the
simulator backend to show the binding computes the right thing.

Run:  python examples/codegen_demo.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.codegen import CodeGenerator
from repro.fpga import Engine, sink_kernel, source_kernel

SPEC = {
    "routine": [
        {
            "blas_name": "dot",
            "user_name": "streaming_sdot",
            "precision": "single",
            "width": 16,
        },
        {
            "blas_name": "gemv",
            "user_name": "tiled_dgemv",
            "precision": "double",
            "width": 8,
            "tile_n_size": 1024,
            "tile_m_size": 1024,
            "matrix_order": "tiles_by_rows",
        },
        {
            "blas_name": "gemm",
            "user_name": "systolic_sgemm",
            "precision": "single",
            "width": 1,
            "tile_n_size": 128,
            "tile_m_size": 128,
            "systolic_rows": 16,
            "systolic_cols": 16,
        },
    ]
}


def main():
    workdir = Path(tempfile.mkdtemp(prefix="fblas_codegen_"))
    spec_path = workdir / "routines.json"
    spec_path.write_text(json.dumps(SPEC, indent=2))
    print(f"routine specification written to {spec_path}\n")

    gen = CodeGenerator(spec_path)
    paths = gen.write_all(workdir / "generated")
    print(f"generated {len(paths)} OpenCL files:")
    for p in paths:
        print(f"  {p.name}")

    print("\n--- streaming_sdot.cl (mirrors the paper's Fig. 5) ---")
    print(gen["streaming_sdot"].source)

    print("--- systolic_sgemm.cl (single-kernel systolic array) ---")
    print(gen["systolic_sgemm"].source)

    # Execute the generated DOT design on the simulator backend.
    routine = gen["streaming_sdot"]
    rng = np.random.default_rng(7)
    n = 2048
    x = rng.normal(size=n).astype(routine.dtype)
    y = rng.normal(size=n).astype(routine.dtype)
    eng = Engine()
    cx = eng.channel("x", 64)
    cy = eng.channel("y", 64)
    cr = eng.channel("res", 4)
    out = []
    eng.add_kernel("src_x", source_kernel(cx, list(x), routine.spec.width))
    eng.add_kernel("src_y", source_kernel(cy, list(y), routine.spec.width))
    eng.add_kernel("dot", routine.make_kernel(n, cx, cy, cr),
                   latency=routine.latency)
    eng.add_kernel("sink", sink_kernel(cr, 1, 1, out))
    report = eng.run()
    print(f"generated DOT executed: result = {out[0]:.5f} "
          f"(numpy: {float(np.dot(x, y)):.5f}) in {report.cycles} cycles "
          f"(model: {routine.latency} + N/W = "
          f"{routine.latency + n // routine.spec.width})")

    # -- emit a whole composition as one file (Fig. 6's AXPYDOT) ---------
    from repro.codegen import RoutineSpec, emit_composition
    from repro.streaming import MDAG, scalar_stream, vector_stream

    g = MDAG()
    g.add_interface("read_w")
    g.add_interface("read_v")
    g.add_interface("read_u")
    g.add_module("axpy0")
    g.add_module("dot0")
    g.add_interface("write_beta")
    sig = vector_stream(4096)
    g.connect("read_v", "axpy0", sig, sig)
    g.connect("read_w", "axpy0", sig, sig)
    g.connect("axpy0", "dot0", sig, sig)
    g.connect("read_u", "dot0", sig, sig)
    g.connect("dot0", "write_beta", scalar_stream(), scalar_stream())
    comp = emit_composition(g, {
        "axpy0": RoutineSpec("axpy", "axpy0", width=16),
        "dot0": RoutineSpec("dot", "dot0", width=16),
    }, name="axpydot")
    comp_path = workdir / "generated" / "axpydot_composition.cl"
    comp_path.write_text(comp)
    print(f"\n--- {comp_path.name}: the Fig. 6 AXPYDOT composition as one "
          "synthesizable file ---")
    print("\n".join(comp.splitlines()[:24]))
    print(f"... ({len(comp.splitlines())} lines total)")


if __name__ == "__main__":
    main()
