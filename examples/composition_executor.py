#!/usr/bin/env python
"""From MDAG to execution: the automated composition flow.

The paper leaves "deriving valid FBLAS compositions" for a general MDAG
as future work; this reproduction implements the full flow:

1. describe the computation as a module DAG with stream signatures and
   per-node bindings (kernel factories, DRAM buffers);
2. let the planner prove it valid — or repair it by sizing channels
   within an on-chip buffer budget, or splitting it into sequential
   components communicating through DRAM;
3. execute the plan on the cycle-level simulator and compare the costs.

The demo runs ATAX (y = A^T A x, the paper's canonical *invalid*
composition) both ways and shows the I/O difference the remedies imply.

Run:  python examples/composition_executor.py
"""

import numpy as np

from repro.blas import level2
from repro.fpga.memory import DramModel
from repro.fpga.resources import level1_latency
from repro.models.iomodel import atax_min_channel_depth
from repro.streaming import (
    BoundMDAG,
    ComputeBinding,
    ReadBinding,
    WriteBinding,
    execute_plan,
    matrix_stream,
    plan_composition,
    row_tiles,
    vector_stream,
)

M = N = 32
TILE = 8
WIDTH = 4


def build(mem):
    rng = np.random.default_rng(5)
    a = rng.normal(size=(M, N)).astype(np.float32)
    x = rng.normal(size=N).astype(np.float32)
    sched = row_tiles(M, N, TILE, TILE)

    g = BoundMDAG()
    g.add_interface("read_A")
    g.add_interface("read_x")
    g.add_interface("read_z1")
    g.add_interface("read_z2")
    g.add_module("gemv")
    g.add_module("gemvT")
    g.add_interface("write_y")
    asig = matrix_stream(sched)
    g.connect("read_A", "gemv", asig, asig, dst_port="A")
    g.connect("read_A", "gemvT", asig, asig, dst_port="A")
    xsig = vector_stream(N, replay=M // TILE)
    g.connect("read_x", "gemv", xsig, xsig, dst_port="x")
    g.connect("read_z1", "gemv", vector_stream(M), vector_stream(M),
              dst_port="y")
    g.connect("gemv", "gemvT", vector_stream(M), vector_stream(M),
              src_port="out", dst_port="x")
    g.connect("read_z2", "gemvT", vector_stream(N), vector_stream(N),
              dst_port="y")
    g.connect("gemvT", "write_y", vector_stream(N), vector_stream(N),
              src_port="out", dst_port="y")

    y = mem.allocate("y_out", N)
    g.bind("read_A", ReadBinding(mem.bind("A", a), WIDTH,
                                 order=sched.indices))
    g.bind("read_x", ReadBinding(mem.bind("x", x), WIDTH,
                                 repeat=M // TILE))
    g.bind("read_z1", ReadBinding(
        mem.bind("z1", np.zeros(M, dtype=np.float32)), WIDTH))
    g.bind("read_z2", ReadBinding(
        mem.bind("z2", np.zeros(N, dtype=np.float32)), WIDTH))
    lat = level1_latency("map_reduce", WIDTH)
    g.bind("gemv", ComputeBinding(
        lambda ins, outs: level2.gemv_row_tiles(
            M, N, 1.0, 0.0, ins["A"], ins["x"], ins["y"], outs["out"],
            TILE, TILE, WIDTH), latency=lat))
    g.bind("gemvT", ComputeBinding(
        lambda ins, outs: level2.gemv_transposed_row_tiles(
            M, N, 1.0, 0.0, ins["A"], ins["x"], ins["y"], outs["out"],
            TILE, TILE, WIDTH), latency=lat))
    g.bind("write_y", WriteBinding(y, N, WIDTH))
    return g, a, x, y


def main():
    print("ATAX as a module DAG (Fig. 8) — static analysis first:")
    mem = DramModel(num_banks=4)
    g, a, x, y = build(mem)
    report = g.validate()
    print(f"  valid={report.valid}, "
          f"reconvergent pairs={report.reconvergent_pairs}")

    print("\nPlan A — no buffer budget: split into sequential components")
    plan = plan_composition(g)
    print("  " + plan.describe().replace("\n", "\n  "))
    result = execute_plan(g, mem, plan=plan)
    err = np.max(np.abs(np.asarray(y.data) - a.T @ (a @ x)))
    print(f"  executed: {result.cycles} cycles over "
          f"{len(result.reports)} engine runs, {result.io_elements} I/O "
          f"elements, max |err| = {err:.2e}")

    print("\nPlan B — on-chip budget available: size the channel instead")
    window = atax_min_channel_depth(N, TILE) + 8 * WIDTH
    mem2 = DramModel(num_banks=4)
    g2, a, x, y2 = build(mem2)
    plan2 = plan_composition(g2, windows={("read_A", "gemvT"): window},
                             buffer_budget=4 * window)
    print("  " + plan2.describe().replace("\n", "\n  "))
    result2 = execute_plan(g2, mem2, plan=plan2)
    err2 = np.max(np.abs(np.asarray(y2.data) - a.T @ (a @ x)))
    print(f"  executed: {result2.cycles} cycles in one engine run, "
          f"{result2.io_elements} I/O elements, max |err| = {err2:.2e}")

    print(f"\nchannel sizing saves "
          f"{result.io_elements - result2.io_elements} off-chip element "
          f"transfers (one full re-read of A) at the price of "
          f"{window} FIFO slots on chip — the Sec. V-B trade-off, "
          "machine-derived.")


if __name__ == "__main__":
    main()
