"""The compiled-plan cache: repeat requests skip planning entirely.

The tentpole promise of the plan IR is *compile once*: a composition is
compiled to a :class:`repro.plan.PlanIR` the first time it is seen, and
every structurally identical repeat request — new problem instance, same
shape — replays the recorded decisions.  Two caches carry this:

* the executor's ``plan_cache`` (keyed on the structural MDAG
  fingerprint) skips MDAG validation, scheduling and pattern derivation;
* the certified-mode ``schedule_cache`` (keyed on ``plan_key``) skips
  the FB4xx rate passes and schedule compilation — this is the cache a
  repeated host-API call hits (``Fblas`` holds one per instance).

This module measures both hit paths against their miss paths and
*asserts the hits happen* (via :meth:`repro.plan.PlanCache.stats`) and
that a hit is never slower than the work it skips.  Results land in
``BENCH_plan_cache.json`` (override with ``BENCH_PLAN_CACHE_JSON``).
"""

import json
import os
import time

import numpy as np

from repro.analysis import ensure_certified
from repro.apps.axpydot import build_axpydot_engine
from repro.host import Fblas, FblasContext
from repro.plan import PlanCache, compile_plan, mdag_fingerprint
from repro.streaming import execute_plan

from bench_common import print_table

SEED = 17
BENCH_PATH = os.environ.get("BENCH_PLAN_CACHE_JSON",
                            "BENCH_plan_cache.json")
REPEATS = 8


def f32(rng, *shape):
    return np.asarray(rng.normal(size=shape if len(shape) > 1 else shape[0]),
                      dtype=np.float32)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

def _axpydot_mdag(n):
    from repro.apps.axpydot import axpydot_mdag
    return axpydot_mdag(n)


def _bound_axpydot(mem, w, v, u, alpha, n, width):
    """The Fig. 6 AXPYDOT as a bound MDAG (the executor's input)."""
    from repro.blas import level1
    from repro.fpga.resources import level1_latency
    from repro.streaming import (BoundMDAG, ComputeBinding, ReadBinding,
                                 WriteBinding, scalar_stream, vector_stream)
    g = BoundMDAG()
    g.add_interface("read_w")
    g.add_interface("read_v")
    g.add_interface("read_u")
    g.add_module("axpy")
    g.add_module("dot")
    g.add_interface("write_beta")
    sig = vector_stream(n)
    g.connect("read_w", "axpy", sig, sig, dst_port="w")
    g.connect("read_v", "axpy", sig, sig, dst_port="v")
    g.connect("axpy", "dot", sig, sig, src_port="z", dst_port="z")
    g.connect("read_u", "dot", sig, sig, dst_port="u")
    g.connect("dot", "write_beta", scalar_stream(), scalar_stream(),
              src_port="res", dst_port="res")
    beta = mem.allocate("beta_out", 1)
    g.bind("read_w", ReadBinding(mem.bind("w_buf", w), width))
    g.bind("read_v", ReadBinding(mem.bind("v_buf", v), width))
    g.bind("read_u", ReadBinding(mem.bind("u_buf", u), width))
    g.bind("axpy", ComputeBinding(
        lambda ins, outs: level1.axpy_kernel(
            n, -alpha, ins["v"], ins["w"], outs["z"], width),
        latency=level1_latency("map", width)))
    g.bind("dot", ComputeBinding(
        lambda ins, outs: level1.dot_kernel(
            n, ins["z"], ins["u"], outs["res"], width),
        latency=level1_latency("map_reduce", width)))
    g.bind("write_beta", WriteBinding(beta, 1))
    return g


def bench_executor_plan_cache(n=4096):
    """Repeat ``execute_plan`` calls over fresh problem instances of the
    same shape: call 1 compiles, calls 2..K hit the MDAG fingerprint."""
    from repro.fpga.memory import DramModel

    rng = np.random.default_rng(SEED)
    cache = PlanCache()
    wall = []
    reports = []
    for _ in range(REPEATS):
        w, v, u = (f32(rng, n) for _ in range(3))
        mem = DramModel(num_banks=4)
        g = _bound_axpydot(mem, w, v, u, 0.5, n, 8)
        t0 = time.perf_counter()
        res = execute_plan(g, mem, plan_cache=cache)
        wall.append(time.perf_counter() - t0)
        reports.append([r.to_dict() for r in res.reports])
    assert all(r == reports[0] for r in reports[1:])
    return {
        "bench": "executor_plan_cache", "size": n, "repeats": REPEATS,
        "miss_seconds": round(wall[0], 4),
        "hit_seconds": round(min(wall[1:]), 4),
        **cache.stats(),
    }


def bench_plan_compile_vs_hit(n=4096):
    """The planning step in isolation: ``compile_plan`` (validate +
    schedule + record) vs a fingerprint lookup in a warm cache."""
    mdag = _axpydot_mdag(n)
    cache = PlanCache()
    key = mdag_fingerprint(mdag, None, 0)

    t0 = time.perf_counter()
    cache[key] = compile_plan(mdag)
    compile_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(REPEATS):
        plan = cache.get(key)
        assert plan is not None
    lookup_s = (time.perf_counter() - t0) / REPEATS
    return {
        "bench": "compile_vs_lookup", "size": n, "repeats": REPEATS,
        "miss_seconds": round(compile_s, 6),
        "hit_seconds": round(lookup_s, 6),
        **cache.stats(),
    }


def bench_certified_schedule_cache(n=8192):
    """Certified-mode engines sharing one schedule cache: the first run
    pays the FB4xx passes, repeats replay the certificate."""
    rng = np.random.default_rng(SEED)
    cache = PlanCache()
    wall = []
    for _ in range(REPEATS):
        ctx = FblasContext()
        bufs = [ctx.copy_to_device(f32(rng, n)) for _ in range(3)]
        eng, _out = build_axpydot_engine(ctx, *bufs, np.float32(0.7),
                                         width=8, mode="certified",
                                         schedule_cache=cache)
        t0 = time.perf_counter()
        eng.run()
        wall.append(time.perf_counter() - t0)
    return {
        "bench": "certified_schedule_cache", "size": n, "repeats": REPEATS,
        "miss_seconds": round(wall[0], 4),
        "hit_seconds": round(min(wall[1:]), 4),
        **cache.stats(),
    }


def bench_certify_vs_replay(n=8192):
    """``ensure_certified`` in isolation: full rate passes on a miss vs
    a ``plan_key`` lookup on a hit."""
    rng = np.random.default_rng(SEED)
    ctx = FblasContext()
    bufs = [ctx.copy_to_device(f32(rng, n)) for _ in range(3)]
    eng, _out = build_axpydot_engine(ctx, *bufs, np.float32(0.7), width=8)
    plan = compile_plan(eng)
    cache = PlanCache()

    t0 = time.perf_counter()
    ensure_certified(plan, cache=cache)
    certify_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(REPEATS):
        ensure_certified(plan, cache=cache)
    replay_s = (time.perf_counter() - t0) / REPEATS
    return {
        "bench": "certify_vs_replay", "size": n, "repeats": REPEATS,
        "miss_seconds": round(certify_s, 6),
        "hit_seconds": round(replay_s, 6),
        **cache.stats(),
    }


def bench_host_api_repeat_calls(n=2048):
    """The user-visible path: repeated ``Fblas`` calls of the same shape
    on one instance share the instance's schedule cache."""
    rng = np.random.default_rng(SEED)
    fb = Fblas(engine_mode="certified", width=8)
    x = fb.copy_to_device(f32(rng, n))
    y = fb.copy_to_device(f32(rng, n))
    wall = []
    values = []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        values.append(fb.dot(x, y))
        wall.append(time.perf_counter() - t0)
    assert all(v == values[0] for v in values[1:])
    return {
        "bench": "host_api_repeat_dot", "size": n, "repeats": REPEATS,
        "miss_seconds": round(wall[0], 4),
        "hit_seconds": round(min(wall[1:]), 4),
        **fb._schedule_cache.stats(),
    }


def collect():
    return [
        bench_executor_plan_cache(),
        bench_plan_compile_vs_hit(),
        bench_certified_schedule_cache(),
        bench_certify_vs_replay(),
        bench_host_api_repeat_calls(),
    ]


ENTRIES = collect()


def _row(name):
    return next(e for e in ENTRIES if e["bench"] == name)


def test_regenerate_and_dump():
    print_table(
        "Compiled-plan caches: miss (compile/certify) vs hit (replay)",
        ["bench", "size", "repeats", "miss s", "hit s", "entries",
         "hits", "misses"],
        [(e["bench"], e["size"], e["repeats"], e["miss_seconds"],
          e["hit_seconds"], e["entries"], e["hits"], e["misses"])
         for e in ENTRIES])
    payload = {
        "benchmark": "plan_cache",
        "unit_note": "miss_seconds = first request (compiles/certifies); "
                     "hit_seconds = best repeat (replays the cached "
                     "artifact); hits/misses from PlanCache.stats()",
        "entries": ENTRIES,
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def test_executor_cache_hits():
    """Every repeat request hit the fingerprint: one compilation total."""
    e = _row("executor_plan_cache")
    assert e["misses"] == 1, e
    assert e["hits"] == REPEATS - 1, e
    assert e["entries"] == 1, e


def test_certified_cache_hits():
    """One certification, REPEATS - 1 certificate replays."""
    e = _row("certified_schedule_cache")
    assert e["misses"] == 1, e
    assert e["hits"] == REPEATS - 1, e


def test_host_api_repeat_calls_hit_plan_key_cache():
    """The acceptance assertion: a repeated host-API call of the same
    shape hits the instance's plan_key-keyed schedule cache."""
    e = _row("host_api_repeat_dot")
    assert e["hits"] >= REPEATS - 1, e
    assert e["misses"] >= 1, e


def test_hit_path_skips_the_work():
    """A warm lookup must be orders of magnitude cheaper than the work
    it skips (scheduling / the FB4xx passes).  10x is a very loose CI
    floor — locally it is >1000x."""
    for name in ("compile_vs_lookup", "certify_vs_replay"):
        e = _row(name)
        assert e["hit_seconds"] * 10 <= e["miss_seconds"], e
