"""Service throughput: multiplexed tenants vs one caller at a time.

The service's performance promise is that multiplexing *repeat* work
through one shared front end beats naive per-caller simulation, because
three amortizations compound:

* **batched fusion** — compatible queued requests stream back-to-back
  through one pipeline (the Table V regime), paying one engine setup for
  the whole batch;
* **bulk tier** — the service runs the fused batches on the bulk engine
  core, which advances whole ready-windows instead of single cycles;
* **shared compiled-plan cache** — repeat :class:`~repro.service.PlanJob`
  designs hit the MDAG-fingerprint cache regardless of which tenant or
  worker saw them first.

The gate asserts the headline acceptance number: sustained request
throughput on repeat plans at least **5x** the single-caller baseline.
Results (req/s, p95 latency, cache hit rate, recovery counts) land in
``BENCH_service.json`` (override with ``BENCH_SERVICE_JSON``).
"""

import json
import os
import time

import numpy as np

from repro.faults import FaultPlan, KernelFault, inject
from repro.host.api import Fblas
from repro.service import PlanJob, RoutineJob, SimulationService

from bench_common import print_table

SEED = 23
BENCH_PATH = os.environ.get("BENCH_SERVICE_JSON", "BENCH_service.json")
N = 256          # vector length of the repeat plan
#: Width 8 keeps each reader's DRAM burst (32 B) inside the device's
#: per-bank byte budget, so the bulk tier's ready-windows engage on the
#: fused pipelines (see BENCH_bulk.json: axpydot_w8 vs plain axpydot).
#: Baseline and service share the width — summation order, and hence
#: the bit-equality assertions, depend on it.
WIDTH = 8
REQUESTS = 64    # requests per phase
WORKERS = 2

_RNG = np.random.default_rng(SEED)


def _make_payloads(k=REQUESTS, n=N):
    return [(_RNG.standard_normal(n).astype(np.float32),
             _RNG.standard_normal(n).astype(np.float32))
            for _ in range(k)]


#: One shared request stream: baseline, service and fault phases must
#: see identical bytes for the byte-equality assertions to mean anything.
PAYLOADS = _make_payloads()


# ---------------------------------------------------------------------------
# Phases
# ---------------------------------------------------------------------------

def bench_single_caller_baseline():
    """One caller, one request at a time, stock host API defaults —
    what every tenant would do without the service."""
    jobs = PAYLOADS
    fb = Fblas(width=WIDTH)           # event tier: the default
    values = []
    t0 = time.perf_counter()
    for x, y in jobs:
        values.append(fb.dot(fb.copy_to_device(x), fb.copy_to_device(y)))
    wall = time.perf_counter() - t0
    return {
        "bench": "single_caller_baseline", "requests": len(jobs),
        "wall_seconds": round(wall, 4),
        "req_per_s": round(len(jobs) / wall, 2),
    }, values


def bench_service_multiplexed(reference):
    """The same request stream pushed through the service at once: the
    backlog fuses into batched bulk runs."""
    jobs = PAYLOADS
    lat = []
    with SimulationService(workers=WORKERS, max_queue=2 * REQUESTS,
                           engine_mode="bulk", width=WIDTH,
                           max_batch=16) as svc:
        t0 = time.perf_counter()
        tickets = [svc.submit(RoutineJob("dot", (x, y))) for x, y in jobs]
        values = [t.result(timeout=300) for t in tickets]
        wall = time.perf_counter() - t0
        stats = svc.stats()
        lat = sorted(r.wall_seconds for r in svc.ledger.records()
                     if r.kind == "service.request")
    # Byte-identical to the single-caller baseline — the speedup is
    # real only if the answers are the same answers.
    assert all(np.float32(a) == np.float32(b)
               for a, b in zip(values, reference))
    p95 = lat[int(0.95 * (len(lat) - 1))] if lat else 0.0
    return {
        "bench": "service_multiplexed", "requests": len(jobs),
        "wall_seconds": round(wall, 4),
        "req_per_s": round(len(jobs) / wall, 2),
        "p95_latency_ms": round(p95 * 1e3, 2),
        "batched_runs": stats["batched_runs"],
        "fused_jobs": stats["fused_jobs"],
    }


def make_axpydot_planjob(n, width):
    """The Fig. 6 AXPYDOT as a service PlanJob (re-entrant builder)."""
    from repro.blas import level1
    from repro.fpga.resources import level1_latency
    from repro.streaming import (BoundMDAG, ComputeBinding, ReadBinding,
                                 WriteBinding, scalar_stream, vector_stream)
    w = _RNG.standard_normal(n).astype(np.float32)
    v = _RNG.standard_normal(n).astype(np.float32)
    u = _RNG.standard_normal(n).astype(np.float32)
    alpha = 0.7

    def build(ctx):
        mem = ctx.mem
        g = BoundMDAG()
        g.add_interface("read_w")
        g.add_interface("read_v")
        g.add_interface("read_u")
        g.add_module("axpy")
        g.add_module("dot")
        g.add_interface("write_beta")
        sig = vector_stream(n)
        g.connect("read_w", "axpy", sig, sig, dst_port="w")
        g.connect("read_v", "axpy", sig, sig, dst_port="v")
        g.connect("axpy", "dot", sig, sig, src_port="z", dst_port="z")
        g.connect("read_u", "dot", sig, sig, dst_port="u")
        g.connect("dot", "write_beta", scalar_stream(), scalar_stream(),
                  src_port="res", dst_port="res")
        beta = mem.allocate("beta_out", 1)
        g.bind("read_w", ReadBinding(mem.bind("w_buf", w), width))
        g.bind("read_v", ReadBinding(mem.bind("v_buf", v), width))
        g.bind("read_u", ReadBinding(mem.bind("u_buf", u), width))
        g.bind("axpy", ComputeBinding(
            lambda ins, outs: level1.axpy_kernel(
                n, -alpha, ins["v"], ins["w"], outs["z"], width),
            latency=level1_latency("map", width)))
        g.bind("dot", ComputeBinding(
            lambda ins, outs: level1.dot_kernel(
                n, ins["z"], ins["u"], outs["res"], width),
            latency=level1_latency("map_reduce", width)))
        g.bind("write_beta", WriteBinding(beta, 1))
        return g, (lambda: float(beta.data[0]))

    return PlanJob(build, name="axpydot")


def bench_plan_cache_hit_rate():
    """Repeat PlanJobs from different tenants share one compiled plan."""
    job = make_axpydot_planjob(N, WIDTH)
    repeats = 8
    with SimulationService(workers=WORKERS, engine_mode="event") as svc:
        values = [svc.call(job, tenant=f"tenant-{i % 4}", timeout=120)
                  for i in range(repeats)]
        stats = svc.plan_cache.stats()
    assert all(v == values[0] for v in values[1:])
    total = stats["hits"] + stats["misses"]
    return {
        "bench": "plan_cache_hit_rate", "requests": repeats,
        "entries": stats["entries"], "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_rate": round(stats["hits"] / total, 3) if total else 0.0,
    }


def bench_recovery_under_faults(reference):
    """A seeded crash storm: the ladder retries, every answer stays
    bit-identical, and the ledger counts the recovery work."""
    from repro.faults import RetryPolicy
    jobs = PAYLOADS[:16]
    # Three one-shot crashes per kernel name: a single run can eat
    # several in a row, so the budget must cover the whole storm.
    plan = FaultPlan(seed=SEED, kernel_faults=tuple(
        KernelFault(kernel=k, at_cycle=c, kind="crash")
        for k in ("dot", "batched_dot") for c in (2, 5, 9)))
    with SimulationService(workers=WORKERS, max_queue=64,
                           engine_mode="bulk", width=WIDTH,
                           retry_policy=RetryPolicy(max_retries=8)) as svc:
        with inject(plan) as ctx:
            tickets = [svc.submit(RoutineJob("dot", (x, y)))
                       for x, y in jobs]
            values = [t.result(timeout=300) for t in tickets]
        recs = [r for r in svc.ledger.records()
                if r.kind == "service.request"]
    assert all(np.float32(a) == np.float32(b)
               for a, b in zip(values, reference[:len(jobs)]))
    assert all(r.outcome == "ok" for r in recs)
    return {
        "bench": "recovery_under_faults", "requests": len(jobs),
        "faults_fired": ctx.faults_injected,
        "retries": sum(r.retries for r in recs),
        "demotions": sum(r.demotions for r in recs),
        "all_ok": all(r.outcome == "ok" for r in recs),
    }


def collect():
    baseline, reference = bench_single_caller_baseline()
    service = bench_service_multiplexed(reference)
    return [
        baseline,
        service,
        bench_plan_cache_hit_rate(),
        bench_recovery_under_faults(reference),
    ]


ENTRIES = collect()


def _row(name):
    return next(e for e in ENTRIES if e["bench"] == name)


def _speedup():
    return (_row("service_multiplexed")["req_per_s"]
            / _row("single_caller_baseline")["req_per_s"])


def test_regenerate_and_dump():
    print_table(
        "Service throughput vs single caller (repeat dot, "
        f"N={N}, W={WIDTH})",
        ["bench", "requests", "req/s", "notes"],
        [(e["bench"], e.get("requests", ""), e.get("req_per_s", ""),
          "; ".join(f"{k}={v}" for k, v in e.items()
                    if k not in ("bench", "requests", "req_per_s")))
         for e in ENTRIES])
    payload = {
        "benchmark": "service_throughput",
        "unit_note": "req_per_s = admitted requests resolved per wall "
                     "second; baseline = sequential stock Fblas (event "
                     "tier); service = bulk tier + batched fusion; "
                     "speedup gated >= 5x",
        "speedup": round(_speedup(), 2),
        "entries": ENTRIES,
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def test_service_beats_single_caller_5x():
    """The acceptance gate: >= 5x sustained req/s on repeat plans."""
    assert _speedup() >= 5.0, ENTRIES


def test_fusion_actually_happened():
    e = _row("service_multiplexed")
    assert e["batched_runs"] >= 1 and e["fused_jobs"] >= REQUESTS // 4, e


def test_plan_cache_hit_rate():
    e = _row("plan_cache_hit_rate")
    assert e["entries"] == 1 and e["misses"] == 1, e
    assert e["hit_rate"] >= 0.8, e


def test_recovery_kept_every_answer():
    e = _row("recovery_under_faults")
    assert e["all_ok"] and e["retries"] >= 1, e
