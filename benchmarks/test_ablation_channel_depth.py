"""Ablation: channel sizing for the ATAX reconvergent composition.

Sweeps the depth of the second GEMV's A channel across the Sec. V-B bound
(a full row of tiles, N*T_N elements): every depth below it deadlocks,
every depth at/above it completes — the bound is exact, not approximate.
"""

import numpy as np
import pytest

from repro.apps import atax_reference, atax_streaming
from repro.fpga import DeadlockError
from repro.host import FblasContext
from repro.models.iomodel import atax_min_channel_depth

from bench_common import print_table

M = N = 16
TILE = 4
WIDTH = 4
RNG = np.random.default_rng(55)
A = RNG.normal(size=(M, N)).astype(np.float32)
X = RNG.normal(size=N).astype(np.float32)
BOUND = atax_min_channel_depth(N, TILE)        # 64


def attempt(depth):
    ctx = FblasContext()
    try:
        res = atax_streaming(ctx, ctx.copy_to_device(A),
                             ctx.copy_to_device(X), tile=TILE, width=WIDTH,
                             channel_depth=depth)
        return True, res
    except DeadlockError:
        return False, None


def collect():
    rows = []
    outcomes = {}
    for depth in (BOUND // 4, BOUND // 2, BOUND - 8, BOUND, BOUND + 8,
                  2 * BOUND):
        ok, res = attempt(depth)
        outcomes[depth] = (ok, res)
        rows.append((depth, f"{depth / BOUND:.2f}",
                     "completes" if ok else "DEADLOCK",
                     res.cycles if ok else "-"))
    return rows, outcomes


ROWS, OUTCOMES = collect()


def test_channel_depth_sweep():
    print_table(
        f"Ablation: ATAX A-channel depth (bound N*T_N = {BOUND})",
        ["depth", "depth/bound", "outcome", "cycles"], ROWS)
    # The analytic bound is exact up to the slack other buffers contribute
    # (the fan-out channel and the producer's pipeline registers hold a
    # few more elements): well below the bound deadlocks, at or above it
    # always completes.
    for depth, (ok, _res) in OUTCOMES.items():
        if depth >= BOUND:
            assert ok, depth
        elif depth <= BOUND // 2:
            assert not ok, depth


def test_completed_runs_are_correct():
    ref = atax_reference(A, X)
    for depth, (ok, res) in OUTCOMES.items():
        if ok:
            np.testing.assert_allclose(res.value, ref, rtol=1e-3, atol=1e-3)


def test_oversizing_helps_only_through_overlap():
    """Extra buffering beyond the bound can only improve completion by
    letting the second GEMV trail a full row of tiles behind the first
    (more overlap) — it never hurts, and the gain is bounded by the
    pipelined fraction."""
    c1 = OUTCOMES[BOUND][1].cycles
    c2 = OUTCOMES[2 * BOUND][1].cycles
    assert c2 <= c1
    assert c2 >= 0.5 * c1


def test_bench_atax_at_bound(benchmark):
    benchmark.pedantic(attempt, args=(BOUND,), rounds=3, iterations=1)
