"""Table I: SCAL/DOT resource consumption and latency vs vectorization width.

Regenerates the paper's Table I from the calibrated resource model and
checks the published compiler figures against it.
"""

import pytest

from repro.fpga.resources import level1_latency, level1_resources

from bench_common import print_table

#: The published Table I (Intel FPGA Offline Compiler v19.1, Stratix 10).
PAPER_SCAL = {2: (98, 192, 2, 50), 4: (196, 384, 4, 50),
              8: (392, 768, 8, 50), 16: (784, 1536, 16, 50),
              32: (1568, 3072, 32, 50), 64: (3136, 6144, 64, 50)}
PAPER_DOT = {2: (174, 192, 2, 82), 4: (242, 320, 4, 85),
             8: (378, 640, 8, 89), 16: (650, 1280, 16, 93),
             32: (1194, 2560, 32, 97), 64: (2474, 5120, 64, 105)}

WIDTHS = (2, 4, 8, 16, 32, 64)


def _rows():
    rows = []
    for w in WIDTHS:
        s = level1_resources("map", w)
        d = level1_resources("map_reduce", w)
        rows.append((w, s.luts, s.ffs, s.dsps, level1_latency("map", w),
                     d.luts, d.ffs, d.dsps,
                     level1_latency("map_reduce", w)))
    return rows


def test_table1_regeneration():
    rows = _rows()
    display = []
    for (w, sl, sf, sd, slat, dl, df, dd, dlat) in rows:
        ps = PAPER_SCAL[w]
        pd = PAPER_DOT[w]
        display.append((w, f"{sl} ({ps[0]})", f"{sf} ({ps[1]})",
                        f"{sd} ({ps[2]})", f"{slat} ({ps[3]})",
                        f"{dl} ({pd[0]})", f"{df} ({pd[1]})",
                        f"{dd} ({pd[2]})", f"{dlat} ({pd[3]})"))
    print_table(
        "Table I: resource consumption and latency, model (paper)",
        ["W", "SCAL LUTs", "SCAL FFs", "SCAL DSPs", "SCAL Lat",
         "DOT LUTs", "DOT FFs", "DOT DSPs", "DOT Lat"],
        display)
    for (w, sl, sf, sd, slat, dl, df, dd, dlat) in rows:
        ps, pd = PAPER_SCAL[w], PAPER_DOT[w]
        # SCAL fits are exact linear laws (Sec. IV-A).
        assert (sl, sf, sd, slat) == ps
        # DOT's LUT/FF figures include compiler layout tweaks visible only
        # at the smallest widths; a 20% band covers them (Sec. IV-A: the
        # relation is linear "even though the specific linear factors and
        # constant terms are tool- and device-specific").
        assert abs(dl - pd[0]) / pd[0] < 0.2
        assert df == pd[1] or abs(df - pd[1]) / pd[1] < 0.2
        assert dd == pd[2]
        assert abs(dlat - pd[3]) <= 4


def test_scaling_laws():
    """Resources grow linearly with W; DOT latency only logarithmically."""
    r = {w: level1_resources("map_reduce", w) for w in WIDTHS}
    for w in WIDTHS[:-1]:
        assert r[2 * w].dsps == 2 * r[w].dsps
        assert r[2 * w].ffs == 2 * r[w].ffs
    lat_growth = (level1_latency("map_reduce", 64)
                  - level1_latency("map_reduce", 2))
    assert lat_growth < 30      # log growth: +23 over 5 doublings


def test_bench_resource_model(benchmark):
    benchmark(_rows)
