"""Engine throughput: dense loop vs event wake-list core vs bulk tier.

Runs the Fig. 11 streaming compositions (AXPYDOT, BICG, GEMVER) under
both engine cores and records wall-clock, simulated cycles, and
kernel-steps/sec into ``BENCH_engine.json`` so the perf trajectory is
tracked across PRs.  Two regimes per the Sec. III-A pipelining story:

* **transformed** (ii=1): FBLAS' iteration-space transposition gives
  every module an initiation interval of 1, so *some* kernel works every
  cycle.  The event core can skip re-stepping blocked kernels (about
  half the dense core's generator resumptions in BICG) but there are no
  idle cycles to jump over; wall-clock parity is the honest outcome and
  the simulation cost is dominated by the kernel bodies themselves.

* **untransformed** (ii=latency): without the transformation the
  reduction's loop-carried dependence forces the DOT module to an
  initiation interval equal to its pipeline latency (132 cycles in
  double precision).  The composition then spends >95% of its cycles
  with every kernel blocked or sleeping — exactly the windows the
  wake-list scheduler advances over in one step.  This is where the
  event core pays off: the same cycle-exact simulation, an order of
  magnitude less wall-clock, which is what lets the cycle-accurate
  sweep reach larger N before falling back to the analytic model.

* **bulk** (PR 4): the steady-state tier proves a window is periodic
  and replays it arithmetically — vectorized kernel blocks, ndarray
  channel runs, counters advanced in one step.  It pays off exactly
  where the event core cannot: ii=1 pipelines where every kernel is
  busy every cycle.  Whether it engages is bandwidth-limited: at
  width 16 an f32 burst is 64 B/cycle against the model's 53 B/cycle
  bank budget, so the memory kernels carry residue, ``ready()`` is 0
  and the tier falls back to exact event stepping (parity, no win).
  At width 8 the burst fits, the whole pipeline is period-1, and the
  tier fast-forwards >90% of the run — the ``axpydot_w8`` rows.

``kernel_steps`` counts each kernel's live cycles (active + stalled) —
a mode-independent measure of simulated work (asserted identical across
cores), so steps/sec compares the cores directly.  Results land in
``BENCH_engine.json`` (all cores) and ``BENCH_bulk.json`` (the bulk
tier's rows, consumed by the CI bench-smoke gate).
"""

import json
import os
import time

import numpy as np

from repro.apps import axpydot_streaming, bicg_streaming, gemver_streaming
from repro.blas import level1
from repro.fpga.engine import Engine
from repro.fpga.memory import read_kernel
from repro.fpga.resources import level1_latency
from repro.fpga.util import sink_kernel
from repro.host import FblasContext

from bench_common import print_table

SEED = 99
#: Double-precision map_reduce pipeline depth (Table III): the initiation
#: interval of the *untransformed* accumulation loop.
II_UNTRANSFORMED = level1_latency("map_reduce", 8, "double")

BENCH_PATH = os.environ.get("BENCH_ENGINE_JSON", "BENCH_engine.json")
BULK_PATH = os.environ.get("BENCH_BULK_JSON", "BENCH_bulk.json")


def f32(rng, *shape):
    return np.asarray(rng.normal(size=shape if len(shape) > 1 else shape[0]),
                      dtype=np.float32)


# ---------------------------------------------------------------------------
# One builder per composition; each returns (run_thunk, engine_getter) so
# the harness can pull kernel stats after the run.
# ---------------------------------------------------------------------------

def run_axpydot(n, mode, width=16):
    rng = np.random.default_rng(SEED)
    w, v, u = f32(rng, n), f32(rng, n), f32(rng, n)
    ctx = FblasContext()
    res = axpydot_streaming(ctx, ctx.copy_to_device(w),
                            ctx.copy_to_device(v), ctx.copy_to_device(u),
                            0.7, width=width, mode=mode)
    return res.cycles, res.kernel_steps


def run_axpydot_w8(n, mode):
    """AXPYDOT at width 8: the burst fits the per-bank byte budget, the
    memory kernels stay residue-free, and the bulk tier engages."""
    return run_axpydot(n, mode, width=8)


def run_bicg(n, mode, tile=16, width=8):
    rng = np.random.default_rng(SEED)
    a, p, r = f32(rng, n, n), f32(rng, n), f32(rng, n)
    ctx = FblasContext()
    res = bicg_streaming(ctx, ctx.copy_to_device(a), ctx.copy_to_device(p),
                         ctx.copy_to_device(r), tile=tile, width=width,
                         mode=mode)
    return res.cycles, res.kernel_steps


def run_gemver(n, mode, tile=8, width=8):
    rng = np.random.default_rng(SEED)
    arrays = [f32(rng, n, n)] + [f32(rng, n) for _ in range(6)]
    ctx = FblasContext()
    res = gemver_streaming(ctx, *[ctx.copy_to_device(x) for x in arrays],
                           1.1, 0.9, tile=tile, width=width, mode=mode)
    return res.cycles, res.kernel_steps


def run_axpydot_untransformed(n, mode, width=8, ii=II_UNTRANSFORMED):
    """Fig. 6 AXPYDOT with the un-transformed double-precision reduction:
    DOT at ii=latency (Sec. III-A ablation), the latency-bound regime."""
    rng = np.random.default_rng(SEED)
    w, v, u = (np.asarray(rng.normal(size=n), dtype=np.float64)
               for _ in range(3))
    ctx = FblasContext()
    dw, dv, du = (ctx.copy_to_device(x) for x in (w, v, u))
    eng = Engine(memory=ctx.mem, mode=mode)
    cw = eng.channel("w", 4 * width)
    cv = eng.channel("v", 4 * width)
    cu = eng.channel("u", 4 * width)
    cz = eng.channel("z", 4 * width)
    cres = eng.channel("beta", 4)
    eng.add_kernel("read_w", read_kernel(ctx.mem, dw, cw, width))
    eng.add_kernel("read_v", read_kernel(ctx.mem, dv, cv, width))
    eng.add_kernel("read_u", read_kernel(ctx.mem, du, cu, width))
    eng.add_kernel("axpy", level1.axpy_kernel(
        n, -0.7, cv, cw, cz, width, np.float64),
        latency=level1_latency("map", width, "double"))
    eng.add_kernel("dot", level1.dot_kernel(
        n, cz, cu, cres, width, np.float64, ii=ii),
        latency=level1_latency("map_reduce", width, "double"))
    out = []
    eng.add_kernel("sink", sink_kernel(cres, 1, 1, out))
    rep = eng.run(max_cycles=5_000_000)
    return rep.cycles, rep.kernel_steps


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def measure(name, runner, size, regime):
    entry = {"bench": name, "size": size, "regime": regime}
    checks = {}
    for m in ("dense", "event", "bulk"):
        t0 = time.perf_counter()
        cycles, steps = runner(size, m)
        wall = time.perf_counter() - t0
        checks[m] = (cycles, steps)
        entry[f"{m}_seconds"] = round(wall, 4)
        entry[f"{m}_steps_per_sec"] = round(steps / wall)
        entry["cycles"] = cycles
        entry["kernel_steps"] = steps
    assert checks["dense"] == checks["event"] == checks["bulk"], (
        f"{name}@{size}: modes diverged: {checks}")
    entry["speedup"] = round(entry["dense_seconds"]
                             / max(entry["event_seconds"], 1e-9), 2)
    entry["bulk_speedup"] = round(entry["event_seconds"]
                                  / max(entry["bulk_seconds"], 1e-9), 2)
    return entry


def collect():
    entries = []
    for name, runner, sizes, regime in [
        ("axpydot", run_axpydot, (2048, 8192, 32768), "ii=1"),
        ("axpydot_w8", run_axpydot_w8, (2048, 8192, 32768), "ii=1"),
        ("bicg", run_bicg, (32, 64, 128), "ii=1"),
        ("gemver", run_gemver, (16, 32, 64), "ii=1"),
        ("axpydot_untransformed", run_axpydot_untransformed,
         (2048, 8192, 32768), f"ii={II_UNTRANSFORMED}"),
    ]:
        for size in sizes:
            entries.append(measure(name, runner, size, regime))
    return entries


ENTRIES = collect()


def _largest(name):
    return max((e for e in ENTRIES if e["bench"] == name),
               key=lambda e: e["size"])


def test_regenerate_and_dump():
    print_table(
        "Engine throughput: dense vs event vs bulk (Fig. 11 compositions)",
        ["bench", "size", "regime", "cycles", "dense s", "event s",
         "bulk s", "speedup", "bulk x", "bulk steps/s"],
        [(e["bench"], e["size"], e["regime"], e["cycles"],
          e["dense_seconds"], e["event_seconds"], e["bulk_seconds"],
          f"{e['speedup']:.2f}", f"{e['bulk_speedup']:.2f}",
          e["bulk_steps_per_sec"]) for e in ENTRIES])
    payload = {
        "benchmark": "engine_throughput",
        "unit_note": "kernel_steps = mode-independent simulated work; "
                     "speedup = dense_seconds / event_seconds; "
                     "bulk_speedup = event_seconds / bulk_seconds",
        "entries": ENTRIES,
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    bulk_payload = {
        "benchmark": "bulk_throughput",
        "unit_note": "bulk_speedup = event_seconds / bulk_seconds; the "
                     "fast path engages on ii=1 rows whose DRAM bursts "
                     "fit the per-bank byte budget (axpydot_w8)",
        "entries": [
            {k: e[k] for k in ("bench", "size", "regime", "cycles",
                               "kernel_steps", "event_seconds",
                               "bulk_seconds", "event_steps_per_sec",
                               "bulk_steps_per_sec", "bulk_speedup")}
            for e in ENTRIES
        ],
    }
    with open(BULK_PATH, "w") as f:
        json.dump(bulk_payload, f, indent=2)
        f.write("\n")


def test_modes_agree_on_cycles():
    """The differential guarantee holds in every benchmarked config (the
    measure() harness asserts it; this records the property explicitly)."""
    for e in ENTRIES:
        assert e["cycles"] > 0


def test_event_core_competitive_at_ii1():
    """Steady-state (ii=1) pipelines keep some kernel busy every cycle, so
    there is nothing to jump over; the event core must stay within 2x of
    the dense loop (it skips blocked kernels but pays event bookkeeping)."""
    for name in ("axpydot", "bicg", "gemver"):
        e = _largest(name)
        assert e["speedup"] > 0.5, e


def test_event_core_wins_latency_bound_regime():
    """The untransformed reduction (ii=132) leaves >95% of cycles with
    every kernel waiting; the wake-list scheduler jumps those windows.
    Locally this measures ~9x; assert a CI-safe floor."""
    e = _largest("axpydot_untransformed")
    assert e["speedup"] >= 3.0, e


def test_latency_bound_speedup_is_size_stable():
    """The win is a property of the regime, not of a lucky size."""
    series = [e["speedup"] for e in ENTRIES
              if e["bench"] == "axpydot_untransformed"]
    assert all(s >= 3.0 for s in series), series


def test_bulk_not_slower_than_event_on_ii1():
    """The CI gate: on every ii=1 row the bulk tier must cost at most a
    small probe overhead over the event core (0.8x noise floor), and it
    must never diverge (measure() already asserted exact parity)."""
    for e in ENTRIES:
        if e["regime"] == "ii=1":
            assert e["bulk_speedup"] >= 0.8, e


def test_bulk_fast_forwards_steady_axpydot():
    """Where the pattern engages (width 8, bursts within the bank
    budget) the win must be an order of magnitude.  Locally this
    measures ~10x at n=32768; assert a CI-safe floor."""
    e = max((e for e in ENTRIES if e["bench"] == "axpydot_w8"),
            key=lambda e: e["size"])
    assert e["size"] == 32768
    assert e["bulk_speedup"] >= 5.0, e
