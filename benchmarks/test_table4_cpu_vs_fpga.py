"""Table IV: CPU (MKL) vs FPGA for single routines at paper scale.

FPGA times come from the Sec. IV pipeline/bandwidth models with the
paper's exact configurations (DOT W=32/16, GEMV W=64/32 tile 2048, GEMM
systolic 40x80 tile 960 / 16x16 tile 384; data interleaved across the 4
DDR modules).  CPU times come from the calibrated roofline model of the
evaluation host.  Both models are validated elsewhere (the FPGA cycle
model against the cycle-accurate simulator, the CPU model against the
paper's published MKL measurements), so the comparison is deterministic.

Shape assertions (Sec. VI-D): FBLAS is up to ~25% faster on the memory
bound routines (DOT, GEMV) in both precisions; it wins single-precision
GEMM; it loses double-precision GEMM badly (no hardened DP units).
"""

import math

import numpy as np
import pytest

from repro.fpga.device import STRATIX10, FrequencyModel
from repro.models import cpu, gemm_systolic_cycles

from bench_common import STRATIX_AGG_BW, membound_time, print_table, us

#: Published Table IV (microseconds), for reference printing.
PAPER = {
    ("dot", "single", 16_000_000): (2_050, 1_866),
    ("dot", "single", 256_000_000): (35_131, 28_272),
    ("dot", "double", 16_000_000): (4_079, 3_627),
    ("dot", "double", 128_000_000): (35_124, 28_250),
    ("gemv", "single", 8192): (5_402, 4_091),
    ("gemv", "single", 65536): (323_795, 241_038),
    ("gemv", "double", 8192): (9_810, 7_831),
    ("gemv", "double", 32768): (163_510, 120_357),
    ("gemm", "single", 8192): (1.56e6, 1.01e6),
    ("gemm", "single", 49152): (300.7e6, 181e6),
    ("gemm", "double", 8192): (3.14e6, 8.43e6),
    ("gemm", "double", 24576): (75.78e6, 203e6),
}

FM = FrequencyModel(STRATIX10)


def _esize(precision):
    return 4 if precision == "single" else 8


def fpga_dot(n, precision):
    """DOT at W=32 (S) / 16 (D), 370 MHz, interleaved DRAM."""
    w = 32 if precision == "single" else 16
    f = 370e6
    cycles = n / w
    return membound_time(2 * n * _esize(precision), STRATIX_AGG_BW,
                         cycles, f)


def fpga_gemv(n, precision):
    """GEMV at W=64 (S) / 32 (D), tile 2048, ~360 MHz, interleaved."""
    w = 64 if precision == "single" else 32
    f = 366e6 if precision == "single" else 354e6
    cycles = n * n / w
    return membound_time(n * n * _esize(precision), STRATIX_AGG_BW,
                         cycles, f)


def fpga_gemm(n, precision):
    """Systolic GEMM: 40x80/960 (S) at 192.5 MHz, 16x16/384 (D) at 260."""
    if precision == "single":
        pr, pc, tile, f = 40, 80, 960, 192.5e6
    else:
        pr, pc, tile, f = 16, 16, 384, 260e6
    n_pad = math.ceil(n / tile) * tile
    cycles = gemm_systolic_cycles(n_pad, n_pad, n, pr, pc, tile, tile)
    bytes_moved = (2 * n * n * n / tile + 2 * n * n) * _esize(precision)
    return membound_time(bytes_moved, STRATIX_AGG_BW, cycles, f)


def collect():
    rows = []
    results = {}
    cases = [
        ("dot", "single", 16_000_000), ("dot", "single", 256_000_000),
        ("dot", "double", 16_000_000), ("dot", "double", 128_000_000),
        ("gemv", "single", 8192), ("gemv", "single", 65536),
        ("gemv", "double", 8192), ("gemv", "double", 32768),
        ("gemm", "single", 8192), ("gemm", "single", 49152),
        ("gemm", "double", 8192), ("gemm", "double", 24576),
    ]
    for routine, precision, n in cases:
        if routine == "dot":
            t_cpu = cpu.dot_time(n, precision).seconds
            t_fpga = fpga_dot(n, precision)
            size = f"{n // 10**6}M"
        elif routine == "gemv":
            t_cpu = cpu.gemv_time(n, n, precision).seconds
            t_fpga = fpga_gemv(n, precision)
            size = f"{n // 1024}Kx{n // 1024}K"
        else:
            t_cpu = cpu.gemm_time(n, n, n, precision).seconds
            t_fpga = fpga_gemm(n, precision)
            size = f"{n // 1024}Kx{n // 1024}K"
        results[(routine, precision, n)] = (t_cpu, t_fpga)
        p_cpu, p_fpga = PAPER[(routine, precision, n)]
        rows.append((routine.upper(), precision[0].upper(), size,
                     us(t_cpu), us(p_cpu / 1e6), us(t_fpga),
                     us(p_fpga / 1e6), f"{t_cpu / t_fpga:.2f}"))
    return rows, results


ROWS, RESULTS = collect()


def test_table4_regeneration():
    print_table(
        "Table IV: single routines, modeled us (paper us in parens "
        "columns)",
        ["routine", "P", "N", "CPU model", "CPU paper", "FPGA model",
         "FPGA paper", "CPU/FPGA"], ROWS)
    # Every modeled time is within 2x of the paper's measurement.
    for key, (t_cpu, t_fpga) in RESULTS.items():
        p_cpu, p_fpga = PAPER[key]
        assert 0.5 < t_cpu * 1e6 / p_cpu < 2.0, key
        assert 0.5 < t_fpga * 1e6 / p_fpga < 2.0, key


def test_memory_bound_routines_favor_fpga():
    """DOT and GEMV: FPGA up to ~25% faster despite only 13% more
    bandwidth (Sec. VI-D)."""
    for routine in ("dot", "gemv"):
        for (r, precision, n), (t_cpu, t_fpga) in RESULTS.items():
            if r != routine:
                continue
            assert t_fpga < t_cpu, (r, precision, n)
            assert t_fpga > 0.6 * t_cpu, (r, precision, n)


def test_sgemm_fpga_wins():
    t_cpu, t_fpga = RESULTS[("gemm", "single", 8192)]
    assert t_fpga < t_cpu
    t_cpu, t_fpga = RESULTS[("gemm", "single", 49152)]
    assert t_fpga < 0.8 * t_cpu


def test_dgemm_cpu_wins():
    """No hardened double-precision units: the 16x16 DP array loses."""
    t_cpu, t_fpga = RESULTS[("gemm", "double", 8192)]
    assert t_fpga > 2 * t_cpu
    t_cpu, t_fpga = RESULTS[("gemm", "double", 24576)]
    assert t_fpga > 2 * t_cpu


def test_local_numpy_sanity():
    """A locally measured numpy dot agrees with the roofline within 10x
    (container hardware differs from the paper's Xeon; this is only a
    sanity check that the model's order of magnitude is sane)."""
    import time
    n = 4_000_000
    x = np.ones(n, dtype=np.float32)
    y = np.ones(n, dtype=np.float32)
    np.dot(x, y)
    t0 = time.perf_counter()
    np.dot(x, y)
    measured = time.perf_counter() - t0
    modeled = cpu.dot_time(n, "single").seconds
    assert measured < 100 * modeled
    assert measured > modeled / 100


def test_bench_model_evaluation(benchmark):
    benchmark(collect)
