"""Ablation: full unrolling vs problem size (Sec. III-A / Table V context).

Fully-unrolled routines start a new problem every cycle, at the cost of
instantiating every flop in silicon: resources grow with the routine's
whole work (O(size^3) for GEMM).  This sweep finds the feasibility
frontier on both devices — why the paper stops at 4x4 ("enough to
saturate DRAM bandwidth") — and verifies the throughput claim on the
simulator.
"""

import numpy as np
import pytest

from repro.blas import level3
from repro.fpga import Engine, sink_kernel, source_kernel
from repro.fpga.device import ARRIA10, STRATIX10
from repro.fpga.resources import fully_unrolled_resources

from bench_common import STRATIX_AGG_BW, print_table


def gemm_flops(size):
    return 2 * size ** 3


def collect():
    rows = []
    feasibility = {}
    for size in (2, 3, 4, 6, 8, 12, 16, 24):
        usage = fully_unrolled_resources(gemm_flops(size))
        fits_a = usage.fits(ARRIA10)
        fits_s = usage.fits(STRATIX10)
        feasibility[size] = (fits_a, fits_s)
        bw_need = 4 * size * size * 4 * 297.5e6 / 1e9   # GB/s at II=1
        rows.append((size, gemm_flops(size), usage.dsps,
                     "yes" if fits_a else "NO",
                     "yes" if fits_s else "NO", f"{bw_need:.0f}"))
    return rows, feasibility


ROWS, FEASIBILITY = collect()


def test_unrolling_feasibility_frontier():
    print_table(
        "Ablation: fully-unrolled GEMM feasibility vs problem size",
        ["size", "flops/problem", "DSPs", "fits Arria", "fits Stratix",
         "BW need GB/s"], ROWS)
    # 4x4 fits everywhere (the paper's choice)...
    assert FEASIBILITY[4] == (True, True)
    # ...but the frontier closes quickly: the Arria runs out of DSPs by
    # 16^3, the Stratix (3x the DSPs) by 24^3.
    assert FEASIBILITY[16][0] is False
    assert FEASIBILITY[24] == (False, False)


def test_bandwidth_crosses_before_dsps_on_stratix():
    """At size 4 the unrolled design already wants ~76 GB/s — the full
    board bandwidth — so bigger sizes are DRAM-starved even when they
    fit, matching 'provided that enough memory bandwidth is available'."""
    bw_need_4 = 4 * 16 * 4 * 297.5e6
    assert bw_need_4 > 0.95 * STRATIX_AGG_BW


def test_simulated_ii1_throughput():
    """Cycle-accurate: with data on chip the unrolled GEMM really starts
    one problem per cycle."""
    rng = np.random.default_rng(9)
    size, nb = 4, 128
    s2 = size * size
    stream = []
    problems = []
    for _ in range(nb):
        a = rng.normal(size=(size, size)).astype(np.float32)
        b = rng.normal(size=(size, size)).astype(np.float32)
        c = np.zeros((size, size), dtype=np.float32)
        problems.append((a, b))
        stream.extend(a.reshape(-1))
        stream.extend(b.reshape(-1))
        stream.extend(c.reshape(-1))
    eng = Engine()
    ci = eng.channel("in", 6 * s2)
    co = eng.channel("out", 2 * s2)
    out = []
    eng.add_kernel("src", source_kernel(ci, stream, 3 * s2))
    eng.add_kernel("gemm", level3.gemm_unrolled(size, nb, 1.0, 0.0, ci, co),
                   latency=30)
    eng.add_kernel("sink", sink_kernel(co, nb * s2, s2, out))
    rep = eng.run()
    # one problem per cycle + pipeline depth + startup
    assert rep.cycles <= nb + 30 + 16
    got = np.array(out[:s2], dtype=np.float32).reshape(size, size)
    np.testing.assert_allclose(got, problems[0][0] @ problems[0][1],
                               rtol=1e-4, atol=1e-4)


def test_bench_unrolled_gemm(benchmark):
    benchmark(collect)
