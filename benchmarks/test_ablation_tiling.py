"""Ablation: what tiling buys a Level-2 module (Sec. III-B, IV-B).

Compares the non-tiled GEMV (Listing 1: x replayed for every row) against
the tiled variants, measuring actual DRAM I/O in the simulator and the
bandwidth each needs to keep its pipeline fed.
"""

import numpy as np
import pytest

from repro.blas import level2
from repro.fpga import Engine, sink_kernel, source_kernel
from repro.models import iomodel, optimal_width, optimal_width_tiled_gemv
from repro.streaming import row_tiles

from bench_common import print_table

N = M = 64
RNG = np.random.default_rng(77)


def run_nontiled(width=4):
    a = RNG.normal(size=(N, M)).astype(np.float32)
    x = RNG.normal(size=M).astype(np.float32)
    y = np.zeros(N, dtype=np.float32)
    eng = Engine()
    ca = eng.channel("A", 64)
    cx = eng.channel("x", 64)
    cy = eng.channel("y", 64)
    co = eng.channel("o", 64)
    eng.add_kernel("sa", source_kernel(ca, a.reshape(-1), width))
    eng.add_kernel("sx", source_kernel(cx, x, width, repeat=N))
    eng.add_kernel("sy", source_kernel(cy, y, 1))
    eng.add_kernel("gemv", level2.gemv_nontiled(
        N, M, 1.0, 0.0, ca, cx, cy, co, width), latency=90)
    eng.add_kernel("sink", sink_kernel(co, N, 1))
    eng.run()
    return ca.stats.pops + cx.stats.pops + cy.stats.pops + N


def run_tiled(tile, width=4):
    a = RNG.normal(size=(N, M)).astype(np.float32)
    x = RNG.normal(size=M).astype(np.float32)
    y = np.zeros(N, dtype=np.float32)
    sched = row_tiles(N, M, tile, tile)
    eng = Engine()
    ca = eng.channel("A", 256)
    cx = eng.channel("x", 256)
    cy = eng.channel("y", 256)
    co = eng.channel("o", 256)
    stream = [a.reshape(-1)[i] for i in sched.indices()]
    eng.add_kernel("sa", source_kernel(ca, stream, width))
    eng.add_kernel("sx", source_kernel(cx, x, width, repeat=N // tile))
    eng.add_kernel("sy", source_kernel(cy, y, width))
    eng.add_kernel("gemv", level2.gemv_row_tiles(
        N, M, 1.0, 0.0, ca, cx, cy, co, tile, tile, width), latency=90)
    eng.add_kernel("sink", sink_kernel(co, N, width))
    eng.run()
    return ca.stats.pops + cx.stats.pops + cy.stats.pops + N


def collect():
    rows = [("none (Listing 1)", run_nontiled(),
             N * M + N * M + 2 * N)]
    for tile in (8, 16, 32, 64):
        io = run_tiled(tile)
        rows.append((f"{tile}x{tile}", io,
                     iomodel.gemv_io_tiles_by_rows(N, M, tile)))
    return rows


ROWS = collect()


def test_tiling_io_ablation():
    print_table(
        f"Ablation: GEMV ({N}x{M}) DRAM I/O vs tiling",
        ["tiling", "measured I/O", "model I/O"], ROWS)
    for name, measured, model in ROWS:
        assert measured == model, name
    # Tiling strictly reduces I/O, monotonically with tile size.
    ios = [r[1] for r in ROWS]
    assert all(hi > lo for hi, lo in zip(ios, ios[1:]))


def test_largest_tile_approaches_compulsory_traffic():
    compulsory = N * M + M + 2 * N
    assert ROWS[-1][1] == compulsory


def test_tiling_doubles_the_affordable_width():
    """Sec. IV-B: with large tiles the optimal GEMV width doubles."""
    b, f, s = 19.2e9, 300e6, 4
    assert optimal_width_tiled_gemv(b, f, s, 1024, 1024) == \
        2 * optimal_width(b, f, s, 2)


def test_bench_tiled_gemv(benchmark):
    benchmark.pedantic(run_tiled, args=(16,), rounds=3, iterations=1)
