"""Table II: the FPGA boards used for evaluation.

Regenerates the device catalog and checks the BSP-reservation shares the
paper reports (about 25% of the Stratix resources are reserved).
"""

from repro.fpga.device import ARRIA10, DEVICES, STRATIX10

from bench_common import print_table


def _rows():
    rows = []
    for dev in (ARRIA10, STRATIX10):
        rows.append((dev.name, "Total", f"{dev.total.alms // 1000} K",
                     f"{dev.total.ffs / 1e6:.1f} M",
                     f"{dev.total.m20ks / 1000:.1f} K", dev.total.dsps,
                     f"{dev.dram_banks}x{dev.dram_bank_bytes // 10**9}GB"))
        rows.append((dev.name, "Avail.", f"{dev.available.alms // 1000} K",
                     f"{dev.available.ffs / 1e6:.1f} M",
                     f"{dev.available.m20ks / 1000:.1f} K",
                     dev.available.dsps, ""))
    return rows


def test_table2_regeneration():
    print_table("Table II: FPGA boards",
                ["FPGA", "", "ALM", "FF", "M20K", "DSP", "DRAM"], _rows())
    # The Stratix BSP reserves roughly 25% of the device (Sec. VI-A).
    frac = 1 - STRATIX10.available.alms / STRATIX10.total.alms
    assert 0.2 < frac < 0.3
    # DSPs: 4468 of 5760 available on Stratix; all 1518 on Arria.
    assert STRATIX10.available.dsps == 4468
    assert ARRIA10.available.dsps == 1518
    # Stratix has twice the DDR modules of Arria.
    assert STRATIX10.dram_banks == 2 * ARRIA10.dram_banks


def test_catalog_is_complete():
    assert set(DEVICES) == {"arria10", "stratix10"}


def test_bench_catalog(benchmark):
    benchmark(_rows)
