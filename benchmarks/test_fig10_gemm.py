"""Fig. 10 (right): systolic GEMM vs compute/memory tile ratio.

The paper fixes the systolic array (compute tile) per device/precision
and sweeps the memory tile, showing performance approaching the expected
bar (instantiated DSPs x frequency) as the ratio grows.  We run the
register-level array simulation on a scaled-down grid for the ratio
sweep, and evaluate the paper's exact flagship configurations with the
analytic model (validated against the simulation in tests/test_systolic).

Shape assertions: PE utilization rises monotonically with the ratio and
exceeds 85% at ratio >= 8; the Stratix single-precision flagship models
to ~1.3 Tflop/s expected (the paper measures 1.28 against that bar).
"""

import numpy as np
import pytest

from repro.blas.systolic import SystolicConfig, SystolicGemm
from repro.fpga.device import ARRIA10, STRATIX10, FrequencyModel
from repro.fpga.resources import gemm_systolic_resources
from repro.models import expected_performance, gemm_systolic_cycles

from bench_common import print_table

#: The paper's systolic configurations: (device, precision, PR, PC, tile).
PAPER_CONFIGS = [
    (ARRIA10, "single", 32, 32, 384),
    (ARRIA10, "double", 16, 8, 384),
    (STRATIX10, "single", 40, 80, 960),
    (STRATIX10, "double", 16, 16, 384),
]

RATIOS = (1, 2, 4, 8, 12)


def ratio_sweep():
    """Cycle-accurate utilization sweep on a 4x4 grid."""
    rng = np.random.default_rng(0)
    k = 64
    rows = []
    utils = []
    for ratio in RATIOS:
        tile = 4 * ratio
        cfg = SystolicConfig(4, 4, tile, tile)
        sg = SystolicGemm(cfg)
        a = rng.normal(size=(tile, k)).astype(np.float32)
        b = rng.normal(size=(k, tile)).astype(np.float32)
        out, stats = sg.multiply(a, b)
        np.testing.assert_allclose(out, a @ b, rtol=1e-3, atol=1e-3)
        util = stats.pe_utilization(cfg)
        utils.append(util)
        rows.append((ratio, f"{tile}x{tile}", stats.cycles,
                     f"{util:.1%}"))
    return rows, utils


SWEEP_ROWS, SWEEP_UTILS = ratio_sweep()


def flagship_rows():
    rows = []
    peaks = {}
    for dev, precision, pr, pc, tile in PAPER_CONFIGS:
        usage = gemm_systolic_resources(pr, pc, tile, tile, precision,
                                        device=dev)
        fm = FrequencyModel(dev)
        f = fm.estimate("systolic", precision,
                        utilization=usage.utilization(dev))
        peak = expected_performance(usage.dsps, f)
        n = 3840                       # multiple of every flagship tile
        cycles = gemm_systolic_cycles(n, n, n, pr, pc, tile, tile)
        achieved = 2 * n ** 3 / (cycles / f)
        peaks[(dev.name, precision)] = (achieved, peak)
        rows.append((dev.name.split()[0], precision, f"{pr}x{pc}", tile,
                     usage.dsps, f"{f / 1e6:.0f}",
                     f"{achieved / 1e9:.0f}", f"{peak / 1e9:.0f}"))
    return rows, peaks


FLAGSHIP_ROWS, FLAGSHIP_PEAKS = flagship_rows()


def test_fig10_gemm_ratio_sweep():
    print_table(
        "Fig. 10 (right): PE utilization vs compute/memory tile ratio "
        "(4x4 array, cycle-accurate)",
        ["ratio", "mem tile", "cycles", "PE util"], SWEEP_ROWS)
    for lo, hi in zip(SWEEP_UTILS, SWEEP_UTILS[1:]):
        assert hi > lo                 # monotone improvement
    assert SWEEP_UTILS[-1] > 0.85      # approaches expected performance


def test_flagship_configurations():
    print_table(
        "Fig. 10 (right): paper configurations, analytic model",
        ["device", "prec", "array", "mem tile", "DSPs", "MHz",
         "GFlop/s", "expected"], FLAGSHIP_ROWS)
    achieved, peak = FLAGSHIP_PEAKS[(STRATIX10.name, "single")]
    # the paper's headline: 1.28 Tflop/s single precision on Stratix 10
    assert 1.1e12 < peak < 1.5e12
    assert achieved > 0.9 * peak


def test_double_precision_arrays_are_much_smaller():
    """No hardened DP units: 4x DSPs per op shrink the feasible array,
    which is why DGEMM loses to the CPU in Table IV."""
    sp_a, _ = FLAGSHIP_PEAKS[(ARRIA10.name, "single")]
    dp_a, _ = FLAGSHIP_PEAKS[(ARRIA10.name, "double")]
    assert dp_a < 0.3 * sp_a
    sp_s, _ = FLAGSHIP_PEAKS[(STRATIX10.name, "single")]
    dp_s, _ = FLAGSHIP_PEAKS[(STRATIX10.name, "double")]
    assert dp_s < 0.2 * sp_s


def test_flagships_fit_their_devices():
    for dev, precision, pr, pc, tile in PAPER_CONFIGS:
        usage = gemm_systolic_resources(pr, pc, tile, tile, precision,
                                        device=dev)
        assert usage.fits(dev), (dev.name, precision)


def test_bench_systolic_tile(benchmark):
    rng = np.random.default_rng(1)
    cfg = SystolicConfig(4, 4, 16, 16)
    sg = SystolicGemm(cfg)
    a = rng.normal(size=(16, 32)).astype(np.float32)
    b = rng.normal(size=(32, 16)).astype(np.float32)
    benchmark.pedantic(sg.multiply, args=(a, b), rounds=3, iterations=1)
