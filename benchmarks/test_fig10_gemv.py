"""Fig. 10 (middle): GEMV throughput vs vectorization width.

Same methodology as the DOT sweep: on-chip data generators feed the tiled
GEMV module (tiles by rows); cycle-accurate simulation at a reduced
matrix, extrapolated to the paper's sizes with the II=1 pipeline model.
The paper uses square 1024x1024 tiles; we keep the same tile *shape*
(square, one tile per matrix at the simulated size).

Shape assertions: near-linear scaling with W, >= 80% of expected
performance, double precision reaching only half the widths.
"""

import numpy as np
import pytest

from repro.blas import level2
from repro.fpga import Engine, sink_kernel, source_kernel
from repro.fpga.device import ARRIA10, STRATIX10, FrequencyModel
from repro.fpga.resources import level1_latency
from repro.models import expected_performance

from bench_common import print_table

N_SIM = 128                   # simulated matrix: N_SIM x N_SIM
N_PAPER = 4096                # extrapolation target (paper: up to 64K)
WIDTHS_SP = (16, 32, 64, 128)
WIDTHS_DP = (16, 32, 64)


def simulate_gemv(width, dtype):
    n = m = N_SIM
    tn = tm = N_SIM           # one square tile, like the paper's 1024^2
    a = np.ones(n * m, dtype=dtype)
    x = np.ones(m, dtype=dtype)
    y = np.zeros(n, dtype=dtype)
    precision = "single" if dtype == np.float32 else "double"
    eng = Engine()
    ca = eng.channel("A", 4 * width)
    cx = eng.channel("x", 4 * width)
    cy = eng.channel("y", 4 * width)
    co = eng.channel("o", 4 * width)
    eng.add_kernel("sa", source_kernel(ca, a, width))
    eng.add_kernel("sx", source_kernel(cx, x, width, repeat=n // tn))
    eng.add_kernel("sy", source_kernel(cy, y, width))
    eng.add_kernel("gemv", level2.gemv_row_tiles(
        n, m, 1.0, 0.0, ca, cx, cy, co, tn, tm, width, dtype),
        latency=level1_latency("map_reduce", width, precision))
    eng.add_kernel("sink", sink_kernel(co, n, width))
    return eng.run().cycles


def collect():
    rows = []
    results = {}
    for dev in (ARRIA10, STRATIX10):
        fm = FrequencyModel(dev)
        for precision, dtype, widths in (
                ("single", np.float32, WIDTHS_SP),
                ("double", np.float64, WIDTHS_DP)):
            f = fm.estimate("level2", precision)
            for w in widths:
                sim_cycles = simulate_gemv(w, dtype)
                # II=1 on the A stream: extrapolate the N*M/W term.
                paper_cycles = sim_cycles + (
                    N_PAPER * N_PAPER - N_SIM * N_SIM) // w
                gops = (2 * N_PAPER * N_PAPER
                        / (paper_cycles / f) / 1e9)
                expected = expected_performance(w, f) / 1e9
                results[(dev.name, precision, w)] = (gops, expected)
                rows.append((dev.name.split()[0], precision, w, sim_cycles,
                             f"{gops:.1f}", f"{expected:.1f}",
                             f"{gops / expected:.0%}"))
    return rows, results


ROWS, RESULTS = collect()


def test_fig10_gemv_regeneration():
    print_table(
        f"Fig. 10 (middle): GEMV GOp/s vs width (extrapolated to "
        f"{N_PAPER}x{N_PAPER})",
        ["device", "prec", "W", "sim cycles", "GOp/s", "expected", "eff"],
        ROWS)
    for key, (gops, expected) in RESULTS.items():
        assert gops >= 0.8 * expected, key
        assert gops <= 1.05 * expected, key


def test_width_scaling():
    for dev in (ARRIA10, STRATIX10):
        series = [RESULTS[(dev.name, "single", w)][0] for w in WIDTHS_SP]
        for lo, hi in zip(series, series[1:]):
            assert 1.6 < hi / lo < 2.2


def test_double_precision_close_to_single_per_lane():
    """The paper: 'running frequencies differ slightly between designs
    with the same vectorization width, but different precision' — per-lane
    throughput is comparable, total widths differ."""
    s = RESULTS[(STRATIX10.name, "single", 64)][0]
    d = RESULTS[(STRATIX10.name, "double", 64)][0]
    assert 0.7 < d / s <= 1.0


def test_bench_gemv_simulation(benchmark):
    benchmark.pedantic(simulate_gemv, args=(32, np.float32),
                       rounds=3, iterations=1)
