"""Fig. 11: streaming-composition speedup over one-by-one host calls.

Runs both versions of AXPYDOT, BICG, and GEMVER through the simulator
with the DRAM model active (single-bank buffers, interleaving disabled —
the paper's BSP constraint) and reports the speedup for growing problem
sizes.  Paper sizes (2M-16M vectors, 1K-8K matrices) are scaled down to
cycle-accurate-feasible sizes; the speedup *shape* is size-stable once
pipeline latency is amortized, which the growing series demonstrates.

Shape assertions (paper's Fig. 11): AXPYDOT speedup approaching 3-4x
(bank contention pushes it past the ideal 3), BICG around 1.4-2x, GEMVER
around 1.7-2.5x, all increasing with problem size.
"""

import numpy as np
import pytest

from repro.apps import (
    axpydot_host,
    axpydot_streaming,
    bicg_host,
    bicg_streaming,
    gemver_host,
    gemver_streaming,
)
from repro.host import Fblas, FblasContext

from bench_common import print_table

RNG = np.random.default_rng(99)


def f32(a):
    return np.asarray(a, dtype=np.float32)


def run_axpydot(n, width=16):
    w, v, u = (f32(RNG.normal(size=n)) for _ in range(3))
    fb = Fblas(width=width)
    host = axpydot_host(fb, fb.copy_to_device(w), fb.copy_to_device(v),
                        fb.copy_to_device(u), 0.7)
    ctx = FblasContext()
    stream = axpydot_streaming(ctx, ctx.copy_to_device(w),
                               ctx.copy_to_device(v),
                               ctx.copy_to_device(u), 0.7, width=width)
    assert stream.value == pytest.approx(host.value, rel=1e-3)
    return host, stream


def run_bicg(n, tile=16, width=8):
    a = f32(RNG.normal(size=(n, n)))
    p, r = f32(RNG.normal(size=n)), f32(RNG.normal(size=n))
    fb = Fblas(width=width, tile=tile)
    host = bicg_host(fb, fb.copy_to_device(a), fb.copy_to_device(p),
                     fb.copy_to_device(r))
    ctx = FblasContext()
    stream = bicg_streaming(ctx, ctx.copy_to_device(a),
                            ctx.copy_to_device(p), ctx.copy_to_device(r),
                            tile=tile, width=width)
    return host, stream


def run_gemver(n, tile=8, width=8):
    arrays = [f32(RNG.normal(size=(n, n)))] + \
        [f32(RNG.normal(size=n)) for _ in range(6)]
    fb = Fblas(width=width, tile=tile)
    host = gemver_host(fb, *[fb.copy_to_device(x) for x in arrays],
                       1.1, 0.9)
    ctx = FblasContext()
    stream = gemver_streaming(ctx, *[ctx.copy_to_device(x)
                                     for x in arrays], 1.1, 0.9,
                              tile=tile, width=width)
    return host, stream


def collect():
    rows = []
    speedups = {"axpydot": [], "bicg": [], "gemver": []}
    for n in (2048, 8192, 32768):
        host, stream = run_axpydot(n)
        s = host.cycles / stream.cycles
        speedups["axpydot"].append(s)
        rows.append(("AXPYDOT", n, host.cycles, stream.cycles,
                     f"{s:.2f}", host.io_elements, stream.io_elements))
    for n in (32, 64, 128):
        host, stream = run_bicg(n)
        s = host.cycles / stream.cycles
        speedups["bicg"].append(s)
        rows.append(("BICG", f"{n}x{n}", host.cycles, stream.cycles,
                     f"{s:.2f}", host.io_elements, stream.io_elements))
    for n in (16, 32, 64):
        host, stream = run_gemver(n)
        s = host.cycles / stream.cycles
        speedups["gemver"].append(s)
        rows.append(("GEMVER", f"{n}x{n}", host.cycles, stream.cycles,
                     f"{s:.2f}", host.io_elements, stream.io_elements))
    return rows, speedups


ROWS, SPEEDUPS = collect()


def test_fig11_regeneration():
    print_table(
        "Fig. 11: streaming composition speedup over host-layer calls",
        ["app", "size", "host cyc", "stream cyc", "speedup",
         "host I/O", "stream I/O"], ROWS)


def test_axpydot_speedup_shape():
    """Three chained pipelines collapse into one: ~3x, boosted toward 4x
    by the same-bank z round trip the host version pays (Sec. VI-C)."""
    series = SPEEDUPS["axpydot"]
    assert series[-1] > 2.5
    assert series[-1] < 5.0
    assert series[0] <= series[-1] * 1.1     # grows (or saturates) with N


def test_bicg_speedup_shape():
    """The paper measures at most 1.45x (expected 1.7 from halved I/O)."""
    series = SPEEDUPS["bicg"]
    assert 1.1 < series[-1] < 2.2


def test_gemver_speedup_shape():
    """5N^2 -> 2N^2 cycles: the paper's measured ~2-3x."""
    series = SPEEDUPS["gemver"]
    assert 1.5 < series[-1] < 3.2


def test_streaming_always_moves_less_data():
    for row in ROWS:
        host_io, stream_io = row[5], row[6]
        assert stream_io < host_io


def test_bench_axpydot_stream(benchmark):
    n = 4096
    w, v, u = (f32(RNG.normal(size=n)) for _ in range(3))

    def run():
        ctx = FblasContext()
        return axpydot_streaming(ctx, ctx.copy_to_device(w),
                                 ctx.copy_to_device(v),
                                 ctx.copy_to_device(u), 0.7, width=16)

    benchmark.pedantic(run, rounds=3, iterations=1)
