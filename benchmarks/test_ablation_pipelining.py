"""Ablation: pipeline-enabling transformations (Sec. III-A).

Without iteration-space transposition / accumulation interleaving, the
double-precision accumulation's loop-carried dependency forces the HLS
scheduler to an initiation interval > 1: a new loop iteration only starts
every II cycles, and throughput divides by II.  FBLAS's transformations
recover II = 1.  This ablation measures a DOT module at II in {1, 2, 4}
and verifies C = CD + II * (N/W).
"""

import numpy as np
import pytest

from repro.blas import level1
from repro.fpga import Engine, sink_kernel, source_kernel
from repro.models import pipeline_cycles

from bench_common import print_table

N = 8192
WIDTH = 8
LATENCY = 120


def run_dot(ii):
    x = np.ones(N, dtype=np.float64)
    eng = Engine()
    cx = eng.channel("x", 8 * WIDTH)
    cy = eng.channel("y", 8 * WIDTH)
    cr = eng.channel("r", 4)
    out = []
    eng.add_kernel("sx", source_kernel(cx, x, WIDTH))
    eng.add_kernel("sy", source_kernel(cy, x, WIDTH))
    eng.add_kernel("dot", level1.dot_kernel(
        N, cx, cy, cr, WIDTH, np.float64, ii=ii), latency=LATENCY)
    eng.add_kernel("sink", sink_kernel(cr, 1, 1, out))
    report = eng.run()
    assert out[0] == pytest.approx(float(N))
    return report.cycles


def collect():
    rows = []
    cycles = {}
    for ii in (1, 2, 4):
        c = run_dot(ii)
        model = pipeline_cycles(LATENCY, ii, N // WIDTH)
        cycles[ii] = c
        rows.append((ii, c, model, f"{cycles[1] / c:.2f}"))
    return rows, cycles


ROWS, CYCLES = collect()


def test_pipelining_ablation():
    print_table(
        f"Ablation: DOT (double, N={N}, W={WIDTH}) vs initiation interval",
        ["II", "cycles", "model L+II*M", "throughput vs II=1"], ROWS)
    for ii, measured, model, _r in ROWS:
        assert abs(measured - model) / model < 0.1, ii


def test_ii_divides_throughput():
    """Failing to pipeline costs exactly the initiation interval in the
    steady-state term (the constant pipeline latency does not scale)."""
    steady = {ii: c - LATENCY for ii, c in CYCLES.items()}
    assert steady[2] / steady[1] == pytest.approx(2.0, rel=0.05)
    assert steady[4] / steady[1] == pytest.approx(4.0, rel=0.05)


def test_invalid_ii_rejected():
    with pytest.raises(ValueError):
        list(level1.dot_kernel(4, None, None, None, ii=0))


def test_bench_ii1_dot(benchmark):
    benchmark.pedantic(run_dot, args=(1,), rounds=3, iterations=1)
