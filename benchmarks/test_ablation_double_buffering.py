"""Ablation: double-buffered x blocks in the tiled GEMV (Sec. IV-B).

The plain tiles-by-rows GEMV pays T_M/W dedicated cycles per tile to load
the x block; the double-buffered variant hides that fetch under the
previous tile's T_N*T_M/W compute cycles.  Expected cycle ratio:
(1 + 1/T_N), so the win shrinks as tiles grow taller — measured here.
"""

import numpy as np
import pytest

from repro.blas import level2, reference
from repro.fpga import Engine, sink_kernel, source_kernel
from repro.streaming import row_tiles

from bench_common import print_table

RNG = np.random.default_rng(21)
N = M = 64
WIDTH = 4


def run(kernel_fn, tile_n, tile_m):
    a = RNG.normal(size=(N, M)).astype(np.float32)
    x = RNG.normal(size=M).astype(np.float32)
    y = RNG.normal(size=N).astype(np.float32)
    sched = row_tiles(N, M, tile_n, tile_m)
    eng = Engine()
    ca = eng.channel("A", 16 * WIDTH)
    cx = eng.channel("x", max(16 * WIDTH, 2 * tile_m))
    cy = eng.channel("y", 16 * WIDTH)
    co = eng.channel("o", 16 * WIDTH)
    stream = [a.reshape(-1)[i] for i in sched.indices()]
    out = []
    eng.add_kernel("sa", source_kernel(ca, stream, WIDTH))
    eng.add_kernel("sx", source_kernel(cx, x, WIDTH, repeat=N // tile_n))
    eng.add_kernel("sy", source_kernel(cy, y, WIDTH))
    eng.add_kernel("gemv", kernel_fn(
        N, M, 1.5, 0.5, ca, cx, cy, co, tile_n, tile_m, WIDTH), latency=90)
    eng.add_kernel("sink", sink_kernel(co, N, WIDTH, out))
    report = eng.run()
    expect = reference.gemv(1.5, a, x, 0.5, y)
    np.testing.assert_allclose(out, expect, rtol=1e-3, atol=1e-3)
    return report.cycles


def collect():
    rows = []
    ratios = {}
    for tn in (2, 4, 8, 16):
        plain = run(level2.gemv_row_tiles, tn, 16)
        db = run(level2.gemv_row_tiles_db, tn, 16)
        predicted = 1 + 1 / tn
        ratios[tn] = (plain / db, predicted)
        rows.append((f"{tn}x16", plain, db, f"{plain / db:.3f}",
                     f"{predicted:.3f}"))
    return rows, ratios


ROWS, RATIOS = collect()


def test_double_buffering_ablation():
    print_table(
        f"Ablation: GEMV ({N}x{M}) x-block double buffering, W={WIDTH}",
        ["tile", "plain cycles", "db cycles", "speedup",
         "model 1+1/T_N"], ROWS)
    for tn, (measured, predicted) in RATIOS.items():
        assert measured > 1.0, tn                       # always helps
        assert abs(measured - predicted) / predicted < 0.15, tn


def test_benefit_shrinks_with_taller_tiles():
    speedups = [RATIOS[tn][0] for tn in (2, 4, 8, 16)]
    assert all(later < earlier
               for earlier, later in zip(speedups, speedups[1:]))


def test_bench_db_gemv(benchmark):
    benchmark.pedantic(run, args=(level2.gemv_row_tiles_db, 8, 16),
                       rounds=3, iterations=1)
