"""Table VI: CPU vs FPGA for the composed streaming applications.

FPGA times: the Sec. V streaming compositions are memory-bound, so the
model is the dominant per-bank stream time max'ed with the II=1 pipeline
length (the simulator validates the same compositions cycle-accurately in
tests/test_apps.py and benchmarks/test_fig11_composition.py).  Per the
paper's configuration: width 32 (single) / 16 (double), tiles 2048^2;
BICG alone is compiled wider (64) and interleaved to use all 4 DDR
modules.  CPU times: the calibrated roofline of the MKL host.

Shape assertions (Sec. VI-D): thanks to streaming composition the FPGA is
faster or comparable on these memory-intensive kernels in both
precisions; the board draws ~30% less power than the CPU.
"""

import pytest

from repro.fpga.device import STRATIX10, PowerModel
from repro.models import cpu

from bench_common import (
    STRATIX_AGG_BW,
    STRATIX_BANK_BW,
    membound_time,
    print_table,
    us,
)

#: Published Table VI (microseconds).
PAPER = {
    ("axpydot", "single", 4_000_000): (1_376, 1_101),
    ("axpydot", "single", 16_000_000): (8_556, 3_783),
    ("axpydot", "double", 4_000_000): (4_295, 2_023),
    ("axpydot", "double", 16_000_000): (17_130, 7_297),
    ("bicg", "single", 2048): (218, 550),
    ("bicg", "single", 8192): (5_796, 5_879),
    ("bicg", "double", 2048): (467.8, 795.7),
    ("bicg", "double", 8192): (11_724, 9_939),
    ("gemver", "single", 2048): (895, 2_407),
    ("gemver", "single", 8192): (43_291, 37_094),
    ("gemver", "double", 2048): (4_728, 4_425),
    ("gemver", "double", 8192): (88_160, 64_115),
}

#: Fixed kernel launch + reconfiguration-free dispatch overhead per
#: streamed composition (one OpenCL enqueue round trip).
LAUNCH = 350e-6


def _esize(p):
    return 4 if p == "single" else 8


def fpga_axpydot(n, precision):
    """Each of w, v, u streams from its own bank at W=32: the completion
    time is one vector stream plus pipeline latency."""
    f = 370e6
    w = 32 if precision == "single" else 16
    per_stream = n * _esize(precision) / STRATIX_BANK_BW
    return max(per_stream, n / w / f)


def fpga_bicg(n, precision):
    """A read once at width 64, interleaved across the 4 modules."""
    f = 238e6
    w = 64 if precision == "single" else 32
    bytes_a = n * n * _esize(precision)
    return LAUNCH + membound_time(bytes_a, STRATIX_AGG_BW, n * n / w, f)


def fpga_gemver(n, precision):
    """Two sequential components, each streaming ~N^2 through one bank
    pair (B written then re-read dominates)."""
    f = 236e6 if precision == "single" else 275e6
    w = 32 if precision == "single" else 16
    n2 = n * n
    per_component = membound_time(n2 * _esize(precision), STRATIX_BANK_BW,
                                  n2 / w, f)
    return LAUNCH + 2 * per_component


def collect():
    rows = []
    results = {}
    cases = [
        ("axpydot", fpga_axpydot, cpu.axpydot_time,
         (4_000_000, 16_000_000)),
        ("bicg", fpga_bicg, lambda n, p: cpu.bicg_time(n, n, p),
         (2048, 8192)),
        ("gemver", fpga_gemver, cpu.gemver_time, (2048, 8192)),
    ]
    for app, fpga_fn, cpu_fn, sizes in cases:
        for precision in ("single", "double"):
            for n in sizes:
                t_cpu = cpu_fn(n, precision).seconds
                t_fpga = fpga_fn(n, precision)
                results[(app, precision, n)] = (t_cpu, t_fpga)
                p = PAPER[(app, precision, n)]
                size = f"{n // 10**6}M" if n >= 10**6 else f"{n}^2"
                rows.append((app.upper(), precision[0].upper(), size,
                             us(t_cpu), f"{p[0]:,.0f}", us(t_fpga),
                             f"{p[1]:,.0f}", f"{t_cpu / t_fpga:.2f}"))
    return rows, results


ROWS, RESULTS = collect()


def test_table6_regeneration():
    print_table(
        "Table VI: composed kernels, modeled us vs paper us",
        ["app", "P", "N", "CPU model", "CPU paper", "FPGA model",
         "FPGA paper", "CPU/FPGA"], ROWS)
    for key, (t_cpu, t_fpga) in RESULTS.items():
        p_cpu, p_fpga = PAPER[key]
        assert 0.35 < t_cpu * 1e6 / p_cpu < 2.5, key
        assert 0.35 < t_fpga * 1e6 / p_fpga < 2.5, key


def test_fpga_wins_or_ties_large_sizes():
    """At the large sizes the streamed FPGA version is faster or
    comparable (within 15%) for every app and precision (Sec. VI-D)."""
    for (app, precision, n), (t_cpu, t_fpga) in RESULTS.items():
        if n in (16_000_000, 8192):
            assert t_fpga < 1.15 * t_cpu, (app, precision)


def test_cpu_wins_small_matrices():
    """Launch overhead dominates tiny problems: the CPU keeps the 2K
    BICG case (paper: 218 vs 550 us).  The paper's 2K GEMVER win (895 vs
    2407 us) additionally relies on the 16 MB working set fitting the
    Xeon's cache, which the DRAM roofline deliberately does not model —
    there we only assert the FPGA's advantage collapses at 2K relative
    to 8K."""
    assert RESULTS[("bicg", "single", 2048)][0] < \
        RESULTS[("bicg", "single", 2048)][1]
    ratio_2k = (RESULTS[("gemver", "single", 2048)][0]
                / RESULTS[("gemver", "single", 2048)][1])
    ratio_8k = (RESULTS[("gemver", "single", 8192)][0]
                / RESULTS[("gemver", "single", 8192)][1])
    assert ratio_2k < ratio_8k
    assert ratio_2k < 1.1


def test_axpydot_streaming_advantage_grows_with_size():
    small = RESULTS[("axpydot", "single", 4_000_000)]
    large = RESULTS[("axpydot", "single", 16_000_000)]
    assert large[0] / large[1] >= small[0] / small[1]


def test_board_power_below_cpu():
    """The FPGA board draws up to ~30% less power than the measured
    CPU+DRAM (Sec. VI-D)."""
    board = PowerModel(STRATIX10).estimate(0.3)
    assert board < cpu.CPU_POWER
    assert board > 0.6 * cpu.CPU_POWER


def test_fpga_energy_advantage_compounds():
    """Faster *and* lower power: energy per solved problem favors the
    streamed FPGA by more than either factor alone, for every large case.
    """
    board = PowerModel(STRATIX10).estimate(0.3)
    for (app, precision, n), (t_cpu, t_fpga) in RESULTS.items():
        if n not in (16_000_000, 8192):
            continue
        e_cpu = t_cpu * cpu.CPU_POWER
        e_fpga = t_fpga * board
        assert e_fpga < e_cpu, (app, precision)
        assert e_fpga / e_cpu < (t_fpga / t_cpu), (app, precision)


def test_bench_model_evaluation(benchmark):
    benchmark(collect)
