"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation (Sec. VI).  Conventions:

* data collection happens once per module (module-level or cached), the
  ``benchmark`` fixture times a representative unit of the work;
* each module *prints* the regenerated table (run pytest with ``-s`` to
  see it) and *asserts* the paper's shape — who wins, by what factor,
  where crossovers fall — not absolute numbers;
* paper-scale workloads (100M-element vectors, 48K matrices) are
  evaluated with the Sec. IV analytic models, which the test suite
  validates against the cycle-accurate simulator at reduced sizes; the
  per-row ``mode`` column says which path produced each number.
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: Aggregate DRAM bandwidth with data interleaved across all 4 Stratix
#: DDR modules (Table IV note: "data is interleaved across the different
#: DDR modules").
STRATIX_AGG_BW = 4 * 19.2e9
#: One DDR bank (the Sec. VI-C setting, interleaving disabled).
STRATIX_BANK_BW = 19.2e9
ARRIA_AGG_BW = 2 * 17.0e9


def fmt_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned text table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    print(f"\n== {title} ==")
    print(fmt_table(headers, rows))


def us(seconds: float) -> str:
    """Format seconds as microseconds."""
    return f"{seconds * 1e6:,.0f}"


def membound_time(bytes_moved: float, bandwidth: float,
                  cycles: float, frequency: float) -> float:
    """Completion time of a memory-fed pipeline: the slower of the
    compute pipeline and the DRAM stream feeding it."""
    return max(bytes_moved / bandwidth, cycles / frequency)
