"""Planner economics: automated plans vs host-layer I/O for the Sec. V apps.

Runs the general composition planner over the four applications' MDAGs
and tabulates the off-chip I/O of each derived plan against the fully
sequential host-layer volume — the machine-derived version of the paper's
per-application analyses.
"""

import pytest

from repro.apps import (
    atax_mdag,
    axpydot_mdag,
    bicg_mdag,
    gemver_full_streaming_mdag,
)
from repro.models.iomodel import atax_min_channel_depth
from repro.streaming import plan_composition

from bench_common import print_table

N = 1024
TILE = 64


def collect():
    cases = []
    cases.append(("AXPYDOT", plan_composition(axpydot_mdag(N))))
    cases.append(("BICG", plan_composition(
        bicg_mdag(N, N, TILE, TILE))))
    window = atax_min_channel_depth(N, TILE)
    cases.append(("ATAX (split)", plan_composition(
        atax_mdag(N, N, TILE, TILE))))
    cases.append(("ATAX (sized)", plan_composition(
        atax_mdag(N, N, TILE, TILE),
        windows={("read_A", "gemvT"): window},
        buffer_budget=2 * window)))
    cases.append(("GEMVER", plan_composition(
        gemver_full_streaming_mdag(N, TILE))))
    rows = []
    for name, plan in cases:
        rows.append((name, plan.num_components,
                     len(plan.materialized_edges), len(plan.sized_edges),
                     plan.io_operations(), plan.sequential_io_operations(),
                     f"{plan.io_reduction():.2f}"))
    return rows, dict(cases)


ROWS, PLANS = collect()


def test_planner_economics_table():
    print_table(
        f"Automated composition plans (N={N}, tiles {TILE})",
        ["app", "components", "DRAM trips", "sized chans", "plan I/O",
         "host I/O", "reduction"], ROWS)


def test_axpydot_reduction_matches_sec5():
    """The streamed plan moves 3N+1 elements.  The MDAG's own sequential
    baseline is 5N+1 (the Fig. 6 graph already elides the COPY the classic
    BLAS sequence needs — the paper's 7N counts that extra 2N)."""
    plan = PLANS["AXPYDOT"]
    assert plan.io_operations() == 3 * N + 1
    assert plan.sequential_io_operations() == 5 * N + 1
    assert plan.io_reduction() == pytest.approx(5 / 3, rel=0.05)


def test_bicg_plan_stays_fully_streamed():
    assert PLANS["BICG"].fully_streamed


def test_atax_split_equals_host_io():
    """The paper: breaking ATAX gives 'the same number of I/O operations
    of the non-streamed version'."""
    plan = PLANS["ATAX (split)"]
    assert plan.io_operations() == plan.sequential_io_operations()


def test_atax_sized_beats_split():
    assert PLANS["ATAX (sized)"].io_operations() < \
        PLANS["ATAX (split)"].io_operations()


def test_gemver_reduction_approaches_8_over_3():
    """8N^2 -> ~3N^2 for large N (Sec. V-C)."""
    red = PLANS["GEMVER"].io_reduction()
    assert 2.0 < red < 8 / 3 + 0.1


def test_bench_planning(benchmark):
    benchmark(collect)
