"""Table V: batched tiny-matrix GEMM/TRSM — fully unrolled vs MKL batched.

The FPGA designs are the Sec. III-A fully-unrolled circuits: the whole
4x4 routine body exists in silicon and accepts a new problem every clock
cycle, so throughput is bounded only by how fast DRAM can feed problems
(plus a fixed kernel-launch cost).  The CPU side is MKL's batched
interface (calibrated roofline with the measured tiny-problem
efficiency).

Correctness of the unrolled kernels is demonstrated with a cycle-accurate
simulated batch; the paper-scale table uses the feed-rate model.

Shape assertions: CPU wins the small batch for GEMM (launch overhead
amortizes slowly), the FPGA wins the large batch for GEMM and both sizes
for TRSM — the crossovers of Table V.
"""

import numpy as np
import pytest

from repro.host import Fblas
from repro.models import cpu

from bench_common import STRATIX_AGG_BW, print_table, us

SIZE = 4
#: Fixed OpenCL kernel-launch + host-synchronization cost per batched
#: invocation (calibrated on Table V's intercept: the paper's FPGA times
#: extrapolate to ~115 us at batch size 0).
FPGA_LAUNCH_OVERHEAD = 115e-6

#: Published Table V (microseconds).
PAPER = {
    ("gemm", "single", 8192): (128.2, 144.7),
    ("gemm", "single", 32768): (457.4, 275.3),
    ("gemm", "double", 8192): (108.3, 187.5),
    ("gemm", "double", 32768): (404.9, 461.0),
    ("trsm", "single", 8192): (248.4, 144.0),
    ("trsm", "single", 32768): (749.9, 341.6),
    ("trsm", "double", 8192): (248.4, 184.1),
    ("trsm", "double", 32768): (731.6, 589.2),
}

FREQS = {("gemm", "single"): 297.5e6, ("gemm", "double"): 297.5e6,
         ("trsm", "single"): 335e6, ("trsm", "double"): 350e6}


def fpga_batched(routine, precision, nbatch):
    """Feed-rate model: one problem per cycle, DRAM permitting."""
    esize = 4 if precision == "single" else 8
    per_problem_bytes = (4 if routine == "gemm" else 3) * SIZE * SIZE * esize
    f = FREQS[(routine, precision)]
    per_cycle = 1 / f
    per_bw = per_problem_bytes / STRATIX_AGG_BW
    return FPGA_LAUNCH_OVERHEAD + nbatch * max(per_cycle, per_bw)


def collect():
    rows = []
    results = {}
    for routine in ("gemm", "trsm"):
        for precision in ("single", "double"):
            for nbatch in (8192, 32768):
                if routine == "gemm":
                    t_cpu = cpu.batched_gemm_time(SIZE, nbatch,
                                                  precision).seconds
                else:
                    t_cpu = cpu.batched_trsm_time(SIZE, nbatch,
                                                  precision).seconds
                t_fpga = fpga_batched(routine, precision, nbatch)
                results[(routine, precision, nbatch)] = (t_cpu, t_fpga)
                p = PAPER[(routine, precision, nbatch)]
                rows.append((routine.upper(), precision[0].upper(),
                             f"{nbatch // 1024}K", us(t_cpu),
                             f"{p[0]:,.0f}", us(t_fpga), f"{p[1]:,.0f}",
                             f"{t_cpu / t_fpga:.2f}"))
    return rows, results


ROWS, RESULTS = collect()


def test_table5_regeneration():
    print_table(
        "Table V: batched 4x4 routines, modeled us vs paper us",
        ["routine", "P", "N", "CPU model", "CPU paper", "FPGA model",
         "FPGA paper", "CPU/FPGA"], ROWS)
    for key, (t_cpu, t_fpga) in RESULTS.items():
        p_cpu, p_fpga = PAPER[key]
        assert 0.4 < t_cpu * 1e6 / p_cpu < 2.5, key
        assert 0.4 < t_fpga * 1e6 / p_fpga < 2.5, key


def test_gemm_crossover():
    """Table V's single-precision GEMM crossover: CPU wins 8K problems,
    the FPGA wins 32K (launch overhead amortized, II=1 feed)."""
    t_cpu, t_fpga = RESULTS[("gemm", "single", 8192)]
    assert t_cpu < t_fpga
    t_cpu, t_fpga = RESULTS[("gemm", "single", 32768)]
    assert t_fpga < t_cpu


def test_trsm_fpga_wins_large_batches():
    """TRSM's solve recurrence hurts MKL far more than the unrolled
    circuit: the FPGA wins the large batches in both precisions."""
    for precision in ("single", "double"):
        t_cpu, t_fpga = RESULTS[("trsm", precision, 32768)]
        assert t_fpga < t_cpu, precision


def test_throughput_is_one_problem_per_cycle_until_bandwidth():
    """The unrolled design's marginal cost per problem is max(1/f,
    bytes/BW) — for 4x4 single GEMM at 297.5 MHz the two terms almost
    coincide ("enough to saturate DRAM bandwidth", Sec. VI-D)."""
    t8 = fpga_batched("gemm", "single", 8192)
    t32 = fpga_batched("gemm", "single", 32768)
    marginal = (t32 - t8) / (32768 - 8192)
    per_bw = 4 * 16 * 4 / STRATIX_AGG_BW
    per_cycle = 1 / FREQS[("gemm", "single")]
    assert marginal == pytest.approx(max(per_bw, per_cycle), rel=1e-6)
    assert abs(per_bw - per_cycle) / per_bw < 0.05


def test_simulated_batch_correctness(benchmark):
    """Cycle-accurate check: the unrolled kernel really does accept one
    problem per cycle and computes correct products."""
    rng = np.random.default_rng(5)
    fb = Fblas(width=16)
    nb = 64
    a = fb.copy_to_device(
        rng.normal(size=(nb, SIZE, SIZE)).astype(np.float32))
    b = fb.copy_to_device(
        rng.normal(size=(nb, SIZE, SIZE)).astype(np.float32))
    c = fb.copy_to_device(np.zeros((nb, SIZE, SIZE), dtype=np.float32))
    a0, b0 = np.array(a.data), np.array(b.data)

    out = benchmark.pedantic(fb.batched_gemm, args=(SIZE, a, b, c),
                             rounds=1, iterations=1)
    for i in range(nb):
        np.testing.assert_allclose(out[i], a0[i] @ b0[i],
                                   rtol=1e-3, atol=1e-3)
    rec = fb.records[-1]
    # II=1 plus latency and DRAM feed: well under 10 cycles per problem.
    assert rec.cycles < 10 * nb + 100
