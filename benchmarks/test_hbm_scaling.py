"""HBM lane scaling: sharded GEMV across 1/2/4/8 memory channels.

The sharded row-tiles GEMV stripes its row tiles across ``lanes``
independent datapaths, each reading its share of A from its *own*
pseudo-channel (one :class:`~repro.fpga.memory.Placement` per lane).
On a bandwidth-bound configuration — vector width wanting more bytes
per cycle than a single channel grants — each added lane brings a full
extra channel budget, so completion cycles drop near-linearly in the
lane count until the design turns compute-bound.

The configuration here is deliberately starved: width 16 f32 wants
64 B/cycle while one channel grants 16 B/cycle, a 4x throttle, the
regime HBM placement exists for.  The control experiment pins *all*
lanes onto channel 0 ("shared" rows): same kernels, same shard, no
bandwidth gain — isolating the win to placement rather than to the
extra datapaths.

Results land in ``BENCH_hbm.json`` (override with the
``BENCH_HBM_JSON`` env var); the CI bench-smoke gate asserts >= 2.5x
measured speedup at 4 lanes over 1 lane and byte-identical outputs for
every (lanes, mode) cell.
"""

import json
import os
import time

import numpy as np

from repro.blas import reference
from repro.blas.level2 import build_sharded_gemv_engine
from repro.fpga.memory import DramModel, Placement
from repro.models.performance import sharded_gemv_speedup

from bench_common import print_table

SEED = 31
BENCH_PATH = os.environ.get("BENCH_HBM_JSON", "BENCH_hbm.json")

N = M = 128
TILE_N, TILE_M = 16, 32
WIDTH = 16                       # wants 64 B/cycle of A per lane...
BYTES_PER_CYCLE = 16             # ...but one channel grants 16 B/cycle
CHANNELS = 8
ALPHA, BETA = 1.5, 0.5
LANE_COUNTS = (1, 2, 4, 8)
MODES = ("dense", "event", "bulk")


def _problem():
    rng = np.random.default_rng(SEED)
    a = np.asarray(rng.normal(size=(N, M)), dtype=np.float32)
    x = np.asarray(rng.normal(size=M), dtype=np.float32)
    y = np.asarray(rng.normal(size=N), dtype=np.float32)
    return a, x, y


def run_sharded(lanes, mode, split=True):
    """One (lanes, mode) cell; ``split=False`` pins all lanes on ch 0."""
    a, x, y = _problem()
    mem = DramModel(num_banks=CHANNELS, bytes_per_cycle=BYTES_PER_CYCLE,
                    device="u280")
    placements = ([Placement.single(lane) for lane in range(lanes)]
                  if split else
                  [Placement.single(0) for _ in range(lanes)])
    eng, out = build_sharded_gemv_engine(
        a, x, y, ALPHA, BETA, lanes=lanes, tile_n=TILE_N, tile_m=TILE_M,
        width=WIDTH, mode=mode, mem=mem, placements=placements)
    rep = eng.run(max_cycles=5_000_000)
    return rep.cycles, np.asarray(out, dtype=np.float32)


def measure(lanes):
    entry = {"bench": "gemv_sharded", "n": N, "m": M, "lanes": lanes,
             "width": WIDTH, "channel_bytes_per_cycle": BYTES_PER_CYCLE}
    results = {}
    for mode in MODES:
        t0 = time.perf_counter()
        cycles, res = run_sharded(lanes, mode)
        entry[f"{mode}_seconds"] = round(time.perf_counter() - t0, 4)
        results[mode] = (cycles, res)
    cycles0, res0 = results[MODES[0]]
    for mode, (cycles, res) in results.items():
        assert cycles == cycles0, (
            f"lanes={lanes}: {mode} cycles {cycles} != {cycles0}")
        assert res.tobytes() == res0.tobytes(), (
            f"lanes={lanes}: {mode} output diverged bitwise")
    entry["cycles"] = cycles0
    entry["shared_cycles"] = run_sharded(lanes, "event", split=False)[0]
    entry["model_speedup"] = round(sharded_gemv_speedup(
        N, M, TILE_N, WIDTH, lanes, BYTES_PER_CYCLE), 2)
    return entry, res0


def collect():
    a, x, y = _problem()
    want = reference.gemv(ALPHA, a, x, BETA, y)
    entries = []
    baseline = None
    for lanes in LANE_COUNTS:
        entry, res = measure(lanes)
        # The tiled accumulation order differs from numpy's dot, so the
        # reference check is tolerance-based; the *bitwise* contract is
        # across lanes and engine modes (below and in measure()).
        assert np.allclose(res, want, rtol=1e-4, atol=1e-4), (
            f"lanes={lanes}: sharded result != reference gemv")
        if baseline is None:
            baseline = res
        assert res.tobytes() == baseline.tobytes(), (
            f"lanes={lanes}: diverged from the single-lane result")
        entries.append(entry)
    one = entries[0]["cycles"]
    for e in entries:
        e["speedup"] = round(one / e["cycles"], 2)
        e["shared_speedup"] = round(one / e["shared_cycles"], 2)
    return entries


ENTRIES = collect()


def _row(lanes):
    return next(e for e in ENTRIES if e["lanes"] == lanes)


def test_regenerate_and_dump():
    print_table(
        "HBM lane scaling: sharded GEMV, one channel per lane",
        ["lanes", "cycles", "speedup", "model", "shared ch0", "event s"],
        [(e["lanes"], e["cycles"], f"{e['speedup']:.2f}",
          f"{e['model_speedup']:.2f}", f"{e['shared_speedup']:.2f}",
          e["event_seconds"]) for e in ENTRIES])
    payload = {
        "benchmark": "hbm_scaling",
        "unit_note": "speedup = single-lane cycles / this row's cycles; "
                     "shared_speedup re-runs the same shard with every "
                     "lane placed on channel 0 (no extra bandwidth); "
                     "model_speedup is models.sharded_gemv_speedup",
        "config": {"n": N, "m": M, "tile_n": TILE_N, "tile_m": TILE_M,
                   "width": WIDTH, "channels": CHANNELS,
                   "channel_bytes_per_cycle": BYTES_PER_CYCLE},
        "entries": ENTRIES,
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def test_four_lanes_beat_gate():
    """The CI gate: >= 2.5x measured at 4 lanes over 1 lane on this
    bandwidth-bound size."""
    assert _row(4)["speedup"] >= 2.5, _row(4)


def test_scaling_is_monotone():
    """Each doubling of lanes (and channels) must strictly help."""
    cycles = [e["cycles"] for e in ENTRIES]
    assert all(a > b for a, b in zip(cycles, cycles[1:])), cycles


def test_shared_channel_does_not_scale():
    """All lanes on channel 0: the same datapaths without the placement
    gain must stay well under the split-placement speedup — the win is
    bandwidth, not kernel count."""
    e = _row(4)
    assert e["shared_speedup"] <= 0.6 * e["speedup"], e


def test_model_tracks_measurement():
    """The Sec. IV-style bandwidth model must predict each row within
    35% — loose enough for fill/drain effects, tight enough to order
    the design points."""
    for e in ENTRIES:
        assert abs(e["speedup"] - e["model_speedup"]) \
            <= 0.35 * e["model_speedup"], e
