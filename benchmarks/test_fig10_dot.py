"""Fig. 10 (left): DOT throughput vs vectorization width, both devices.

The paper feeds the modules from on-chip data generators (to probe widths
beyond the testbed's DDR bandwidth) and reports Gop/s against the
"expected performance" bar (used DSPs x frequency).  We run the same
sweep: cycle-accurate simulation at a reduced N, extrapolated to the
paper's N = 100M with the (simulator-validated) C = CD + N/W model.

Shape assertions: throughput scales ~linearly with W; every design
achieves >= 85% of its expected performance at paper scale; double
precision tops out at W = 128 (the paper's place-and-route limit).
"""

import numpy as np
import pytest

from repro.blas import level1
from repro.fpga import Engine, sink_kernel, source_kernel
from repro.fpga.device import ARRIA10, STRATIX10, FrequencyModel
from repro.fpga.resources import level1_latency
from repro.models import expected_performance, level1_cycles

from bench_common import print_table

N_SIM = 1 << 15              # cycle-accurate simulation size
N_PAPER = 100_000_000        # the paper's input size
WIDTHS_SP = (16, 32, 64, 128, 256)
WIDTHS_DP = (16, 32, 64, 128)      # DP 256 fails place-and-route (paper)


def simulate_dot(width, dtype):
    """Cycle-accurate DOT with on-chip sources (no DRAM limit)."""
    x = np.ones(N_SIM, dtype=dtype)
    eng = Engine()
    cx = eng.channel("x", 4 * width)
    cy = eng.channel("y", 4 * width)
    cr = eng.channel("r", 4)
    out = []
    eng.add_kernel("sx", source_kernel(cx, x, width))
    eng.add_kernel("sy", source_kernel(cy, x, width))
    precision = "single" if dtype == np.float32 else "double"
    eng.add_kernel("dot", level1.dot_kernel(N_SIM, cx, cy, cr, width, dtype),
                   latency=level1_latency("map_reduce", width, precision))
    eng.add_kernel("sink", sink_kernel(cr, 1, 1, out))
    return eng.run().cycles


def collect():
    rows = []
    results = {}
    for dev in (ARRIA10, STRATIX10):
        fm = FrequencyModel(dev)
        for precision, dtype, widths in (
                ("single", np.float32, WIDTHS_SP),
                ("double", np.float64, WIDTHS_DP)):
            f = fm.estimate("level1", precision)
            for w in widths:
                sim_cycles = simulate_dot(w, dtype)
                model_sim = level1_cycles("dot", N_SIM, w)
                # extrapolate: add the remaining iterations at II=1
                paper_cycles = sim_cycles + (N_PAPER - N_SIM) // w
                gops = 2 * N_PAPER / (paper_cycles / f) / 1e9
                expected = expected_performance(w, f) / 1e9
                results[(dev.name, precision, w)] = (gops, expected)
                rows.append((dev.name.split()[0], precision, w,
                             sim_cycles, model_sim,
                             f"{gops:.1f}", f"{expected:.1f}",
                             f"{gops / expected:.0%}"))
    return rows, results


ROWS, RESULTS = collect()


def test_fig10_dot_regeneration():
    print_table(
        "Fig. 10 (left): DOT GOp/s vs width (N=100M, extrapolated from "
        f"cycle-accurate N={N_SIM})",
        ["device", "prec", "W", "sim cycles", "model cycles",
         "GOp/s", "expected", "eff"],
        ROWS)
    for (dev, precision, w), (gops, expected) in RESULTS.items():
        assert gops >= 0.85 * expected, (dev, precision, w)
        assert gops <= 1.02 * expected


def test_simulation_matches_cycle_model():
    """The extrapolation base: the N/W term dominates and matches.

    The constant differs between the idealized circuit depth (log2(W)*LA
    + LM, used by the model) and the Table-I empirical latency used as
    the simulated pipeline depth — so we bound the gap by twice the
    empirical latency plus startup, not by a percentage.
    """
    for (dev, precision, w, sim_cycles, model_cycles, *_rest) in ROWS:
        prec = "single" if precision == "single" else "double"
        bound = 2 * level1_latency("map_reduce", w, prec) + 16
        assert abs(sim_cycles - model_cycles) <= bound, (dev, precision, w)


def test_linear_width_scaling():
    for dev in ("Arria", "Stratix"):
        series = [RESULTS[(d, p, w)][0] for (d, p, w) in RESULTS
                  if d.startswith(dev) and p == "single"]
        for lo, hi in zip(series, series[1:]):
            assert 1.8 < hi / lo < 2.1


def test_stratix_beats_arria_on_frequency():
    s = RESULTS[("Stratix 10 GX 2800", "single", 64)][0]
    a = RESULTS[("Arria 10 GX 1150", "single", 64)][0]
    assert s > 1.5 * a          # HyperFlex: 358 vs 150 MHz


def test_peak_sdot_throughput_matches_paper_scale():
    """Stratix SDOT at W=256 lands near 2*256*358MHz ~ 183 GOp/s."""
    gops, _ = RESULTS[("Stratix 10 GX 2800", "single", 256)]
    assert 150 < gops < 200


def test_bench_dot_simulation(benchmark):
    benchmark.pedantic(simulate_dot, args=(64, np.float32),
                       rounds=3, iterations=1)
