"""Table III: resources, frequency, and power of the best modules.

Regenerates the twelve rows (SDOT/DDOT/SGEMV/DGEMV/SGEMM/DGEMM on both
devices) from the calibrated models and compares each against the
published synthesis figures.
"""

import pytest

from repro.fpga.device import ARRIA10, STRATIX10, FrequencyModel, PowerModel
from repro.fpga.resources import (
    gemm_systolic_resources,
    level1_resources,
    level2_resources,
)

from bench_common import print_table

#: Published Table III: (ALMs, M20Ks, DSPs, MHz, Watts).
PAPER = {
    ("arria", "sdot"):  (9_756, 1, 331, 150, 47.3),
    ("arria", "ddot"):  (121_400, 3, 512, 150, 47.9),
    ("arria", "sgemv"): (21_560, 210, 284, 145, 48.1),
    ("arria", "dgemv"): (135_900, 216, 520, 132, 48.6),
    ("arria", "sgemm"): (102_400, 1_970, 1_086, 197, 52.1),
    ("arria", "dgemm"): (135_800, 658, 622, 222, 49.1),
    ("stratix", "sdot"):  (123_100, 1_028, 328, 358, 68.7),
    ("stratix", "ddot"):  (235_100, 773, 512, 366, 68.8),
    ("stratix", "sgemv"): (123_400, 1_246, 274, 347, 68.0),
    ("stratix", "dgemv"): (275_700, 999, 520, 347, 69.7),
    ("stratix", "sgemm"): (328_500, 7_767, 3_270, 216, 70.5),
    ("stratix", "dgemm"): (450_900, 2_077, 1_166, 260, 67.5),
}

#: Module configurations behind Table III (Sec. VI-B).
CONFIGS = {
    "sdot": ("level1", "single", dict(width=256)),
    "ddot": ("level1", "double", dict(width=128)),
    "sgemv": ("level2", "single", dict(width=256, tile=1024)),
    "dgemv": ("level2", "double", dict(width=128, tile=1024)),
}
GEMM_CONFIGS = {
    ("arria", "sgemm"): (32, 32, 384),
    ("arria", "dgemm"): (16, 8, 384),
    ("stratix", "sgemm"): (40, 80, 960),
    ("stratix", "dgemm"): (16, 16, 384),
}


def estimate(devkey, module):
    dev = ARRIA10 if devkey == "arria" else STRATIX10
    if module in ("sdot", "ddot"):
        _, precision, cfg = CONFIGS[module]
        usage = level1_resources("map_reduce", cfg["width"], precision,
                                 include_overhead=True, device=dev)
        klass = "level1"
    elif module in ("sgemv", "dgemv"):
        _, precision, cfg = CONFIGS[module]
        usage = level2_resources(cfg["width"], cfg["tile"], precision,
                                 device=dev)
        klass = "level2"
    else:
        pr, pc, tile = GEMM_CONFIGS[(devkey, module)]
        precision = "single" if module[0] == "s" else "double"
        usage = gemm_systolic_resources(pr, pc, tile, tile, precision,
                                        device=dev)
        klass = "systolic"
    f = FrequencyModel(dev).estimate(klass, precision,
                                     utilization=usage.utilization(dev))
    p = PowerModel(dev).estimate(usage.utilization(dev))
    return usage, f, p


def collect():
    rows = []
    data = {}
    for devkey in ("arria", "stratix"):
        for module in ("sdot", "ddot", "sgemv", "dgemv", "sgemm", "dgemm"):
            usage, f, p = estimate(devkey, module)
            pa = PAPER[(devkey, module)]
            data[(devkey, module)] = (usage, f, p, pa)
            rows.append((devkey, module,
                         f"{usage.alms / 1000:.1f}K ({pa[0] / 1000:.1f}K)",
                         f"{usage.m20ks} ({pa[1]})",
                         f"{usage.dsps} ({pa[2]})",
                         f"{f / 1e6:.0f} ({pa[3]})",
                         f"{p:.1f} ({pa[4]})"))
    return rows, data


ROWS, DATA = collect()


def test_table3_regeneration():
    print_table("Table III: module resources, model (paper)",
                ["device", "module", "ALMs", "M20Ks", "DSPs", "F MHz",
                 "P W"], ROWS)
    for (devkey, module), (usage, f, p, pa) in DATA.items():
        # DSPs: the tightest physical quantity — within 25%.
        assert abs(usage.dsps - pa[2]) / pa[2] < 0.25, (devkey, module)
        # frequency within 25%, power within 15%.
        assert abs(f / 1e6 - pa[3]) / pa[3] < 0.25, (devkey, module)
        assert abs(p - pa[4]) / pa[4] < 0.15, (devkey, module)


def test_double_precision_costs_an_order_of_magnitude_more_logic():
    sdot = DATA[("arria", "sdot")][0]
    ddot = DATA[("arria", "ddot")][0]
    # DDOT at half the width uses >6x the ALMs (paper: 9.7K -> 121K).
    assert ddot.alms > 6 * sdot.alms


def test_every_module_fits_its_device():
    for (devkey, module), (usage, _f, _p, _pa) in DATA.items():
        dev = ARRIA10 if devkey == "arria" else STRATIX10
        assert usage.fits(dev), (devkey, module)


def test_gemm_dominates_chip_usage():
    """The systolic arrays are the big designs (70-86% of DSPs/M20Ks)."""
    sgemm = DATA[("stratix", "sgemm")][0]
    assert sgemm.utilization(STRATIX10) > 0.6


def test_bench_estimation(benchmark):
    benchmark(collect)
