"""Certified static schedules vs the probing bulk tier (FB4xx).

The bulk tier discovers steady state speculatively: fingerprint a probe
window, pay a cooldown when it misses, re-probe.  ``mode="certified"``
replaces all of that with the FB4xx rate analysis — the schedule is
proven before cycle 0 and steady windows replay against the certificate
with an O(channels) alignment check, zero probes, zero cooldowns.

Where the two differ most is *tiled* kernels: the row-tiled GEMV
re-forms its steady state at every tile boundary, so the bulk tier's
fingerprint rarely matches twice (hundreds of wasted probes, a handful
of engaged windows) while the certificate alignment engages per tile.
On long monolithic streams (DOT) both tiers fast-forward >95% of the
run and certified merely shaves the probe overhead.

Results land in ``BENCH_static.json`` (override with the
``BENCH_STATIC_JSON`` env var); the CI bench-smoke gate asserts the
certified tier is never materially slower than the probing tier and
that a 10M-element DOT stays in single-digit seconds.
"""

import json
import os
import time

import numpy as np

from repro.apps.axpydot import build_axpydot_engine
from repro.blas import level1, level2
from repro.fpga.engine import Engine
from repro.fpga.util import sink_kernel, source_kernel
from repro.host import FblasContext

from bench_common import print_table

SEED = 99
BENCH_PATH = os.environ.get("BENCH_STATIC_JSON", "BENCH_static.json")


def f32(rng, *shape):
    return np.asarray(rng.normal(size=shape if len(shape) > 1 else shape[0]),
                      dtype=np.float32)


# ---------------------------------------------------------------------------
# Runners: each returns (cycles, kernel_steps, counters) for one mode.
# ---------------------------------------------------------------------------

def _counters(eng):
    return {k: getattr(eng, f"_bulk_{k}", 0)
            for k in ("windows", "probes", "cooldowns", "cycles")}


def run_dot_stream(n, mode, width=16):
    """Source-fed DOT (Fig. 10 single-module style, no DRAM ceiling)."""
    rng = np.random.default_rng(SEED)
    x, y = f32(rng, n), f32(rng, n)
    eng = Engine(mode=mode)
    cx = eng.channel("x", 4 * width)
    cy = eng.channel("y", 4 * width)
    cr = eng.channel("r", 4)
    out = []
    eng.add_kernel("srcx", source_kernel(cx, x, width), latency=2)
    eng.add_kernel("srcy", source_kernel(cy, y, width), latency=2)
    eng.add_kernel("dot", level1.dot_kernel(n, cx, cy, cr, width,
                                            np.float32), latency=8)
    eng.add_kernel("sink", sink_kernel(cr, 1, 1, out))
    rep = eng.run(max_cycles=20_000_000)
    return rep.cycles, rep.kernel_steps, _counters(eng)


def run_axpydot_w8(n, mode):
    """DRAM-fed Fig. 6 AXPYDOT at width 8 (bursts fit the bank budget,
    so the FB402 bandwidth pass certifies the design)."""
    rng = np.random.default_rng(SEED)
    ctx = FblasContext()
    bufs = [ctx.copy_to_device(f32(rng, n)) for _ in range(3)]
    eng, _out = build_axpydot_engine(ctx, *bufs, np.float32(0.7),
                                     width=8, mode=mode)
    rep = eng.run()
    return rep.cycles, rep.kernel_steps, _counters(eng)


def run_gemv_tiled(n, mode, tn=8, tm=16, width=8):
    """Source-fed row-tiled GEMV (Fig. 10): steady state re-forms every
    tile, the adversarial case for speculative probing."""
    rng = np.random.default_rng(SEED)
    A, x, y = f32(rng, n, n), f32(rng, n), f32(rng, n)
    eng = Engine(mode=mode)
    ca = eng.channel("a", 8 * width)
    cx = eng.channel("x", 8 * width)
    cy = eng.channel("y", 8 * width)
    co = eng.channel("o", 8 * width)
    tiles = np.concatenate(
        [A[ti * tn:(ti + 1) * tn, tj * tm:(tj + 1) * tm].reshape(-1)
         for ti in range(n // tn) for tj in range(n // tm)])
    eng.add_kernel("srcA", source_kernel(ca, tiles, width), latency=2)
    eng.add_kernel("srcx", source_kernel(cx, x, width, repeat=n // tn),
                   latency=2)
    eng.add_kernel("srcy", source_kernel(cy, y, width), latency=2)
    eng.add_kernel("gemv", level2.gemv_row_tiles(
        n, n, 1.0, 0.0, ca, cx, cy, co, tn, tm, width), latency=8)
    out = []
    eng.add_kernel("sink", sink_kernel(co, n, width, out))
    rep = eng.run(max_cycles=20_000_000)
    return rep.cycles, rep.kernel_steps, _counters(eng)


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def measure(name, runner, size, modes):
    entry = {"bench": name, "size": size}
    parity = {}
    for m in modes:
        t0 = time.perf_counter()
        cycles, steps, counters = runner(size, m)
        wall = time.perf_counter() - t0
        parity[m] = (cycles, steps)
        entry["cycles"] = cycles
        entry["kernel_steps"] = steps
        entry[f"{m}_seconds"] = round(wall, 4)
        if m in ("bulk", "certified"):
            entry[f"{m}_windows"] = counters["windows"]
            entry[f"{m}_probes"] = counters["probes"]
            entry[f"{m}_ff_cycles"] = counters["cycles"]
    first = parity[modes[0]]
    assert all(v == first for v in parity.values()), (
        f"{name}@{size}: modes diverged: {parity}")
    entry["certified_speedup"] = round(
        entry["bulk_seconds"] / max(entry["certified_seconds"], 1e-9), 2)
    return entry


def collect():
    entries = []
    for name, runner, sizes, modes in [
        # event mode at 1e7 would dominate the suite's wall-clock; the
        # bulk rows carry the exact-parity guarantee at these sizes.
        ("dot_stream", run_dot_stream, (1_000_000, 10_000_000),
         ("bulk", "certified")),
        ("axpydot_w8", run_axpydot_w8, (8192, 32768),
         ("event", "bulk", "certified")),
        ("gemv_tiled", run_gemv_tiled, (256, 512),
         ("event", "bulk", "certified")),
    ]:
        for size in sizes:
            entries.append(measure(name, runner, size, modes))
    return entries


ENTRIES = collect()


def _row(name, largest=True):
    pick = max if largest else min
    return pick((e for e in ENTRIES if e["bench"] == name),
                key=lambda e: e["size"])


def test_regenerate_and_dump():
    print_table(
        "Certified schedules vs speculative probing (FB4xx)",
        ["bench", "size", "cycles", "bulk s", "cert s", "cert x",
         "bulk probes", "cert windows", "cert ff"],
        [(e["bench"], e["size"], e["cycles"], e["bulk_seconds"],
          e["certified_seconds"], f"{e['certified_speedup']:.2f}",
          e["bulk_probes"], e["certified_windows"],
          e["certified_ff_cycles"]) for e in ENTRIES])
    payload = {
        "benchmark": "static_schedule",
        "unit_note": "certified_speedup = bulk_seconds / "
                     "certified_seconds; *_ff_cycles = cycles "
                     "fast-forwarded arithmetically; certified rows "
                     "must show zero probes",
        "entries": ENTRIES,
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def test_certified_never_probes():
    """The defining property: zero probes, zero cooldowns, ever."""
    for e in ENTRIES:
        assert e["certified_probes"] == 0, e


def test_certified_not_slower_than_probing():
    """The CI gate: replacing the probe with the certificate must never
    cost more than measurement noise (0.8x floor).  Rows whose bulk run
    finishes in <50 ms are all noise at this resolution and are exempt
    (they are still recorded in the JSON)."""
    for e in ENTRIES:
        if e["bulk_seconds"] < 0.05:
            continue
        assert e["certified_speedup"] >= 0.8, e


def test_large_dot_single_digit_seconds():
    """A 10M-element DOT must certify and replay in single-digit
    seconds (locally ~0.1 s; the bound is CI-safe)."""
    e = _row("dot_stream")
    assert e["size"] == 10_000_000
    assert e["certified_seconds"] < 10.0, e
    assert e["certified_windows"] >= 1


def test_certified_wins_on_tiled_steady_state():
    """Tiled GEMV re-forms its steady state per tile: the certificate
    engages a window per tile while the speculative fingerprint almost
    never matches — certified must fast-forward strictly more cycles
    with strictly fewer wasted attempts."""
    e = _row("gemv_tiled")
    assert e["certified_windows"] > e["bulk_windows"], e
    assert e["certified_ff_cycles"] > e["bulk_ff_cycles"], e
    assert e["bulk_probes"] > 0                 # the probe really did try
