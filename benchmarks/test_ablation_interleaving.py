"""Ablation: DRAM interleaving and bank placement (Sec. VI-A/VI-C).

The paper's Stratix BSP disables automatic memory interleaving, so buffer
placement matters: the host-layer AXPYDOT pays a same-bank read+write
round trip on z, which is what pushes the streaming speedup from the
ideal 3x toward the measured 4x.  This ablation runs the host-layer
version under three placements and the streaming version once.
"""

import numpy as np
import pytest

from repro.apps import axpydot_host, axpydot_streaming
from repro.host import Fblas, FblasContext

from bench_common import print_table

N = 16384
RNG = np.random.default_rng(33)
W = RNG.normal(size=N).astype(np.float32)
V = RNG.normal(size=N).astype(np.float32)
U = RNG.normal(size=N).astype(np.float32)
ALPHA = 0.7


def host_run(interleaving):
    fb = Fblas(width=16, interleaving=interleaving)
    bufs = [fb.copy_to_device(a) for a in (W, V, U)]
    return axpydot_host(fb, *bufs, ALPHA)


def host_run_worst_case():
    """Everything — including z — crammed into one bank."""
    from repro.apps.axpydot import AppResult
    fb = Fblas(width=16)
    w, v, u = (fb.copy_to_device(a, bank=0) for a in (W, V, U))
    z = fb.allocate(N, dtype=np.float32, bank=0)
    io_before = fb.context.mem.total_elements_moved
    fb.copy(w, z)
    fb.axpy(-ALPHA, v, z)
    beta = fb.dot(z, u)
    cycles = sum(r.cycles for r in fb.records)
    return AppResult(beta, cycles,
                     fb.context.mem.total_elements_moved - io_before,
                     sum(r.seconds for r in fb.records))


def stream_run():
    ctx = FblasContext()
    bufs = [ctx.copy_to_device(a) for a in (W, V, U)]
    return axpydot_streaming(ctx, *bufs, ALPHA, width=16)


RESULTS = {
    "host, one bank (worst)": host_run_worst_case(),
    "host, banked (BSP default)": host_run(False),
    "host, interleaved": host_run(True),
    "streaming, banked": stream_run(),
}


def test_interleaving_ablation():
    rows = [(name, r.cycles, r.io_elements,
             f"{RESULTS['host, banked (BSP default)'].cycles / r.cycles:.2f}")
            for name, r in RESULTS.items()]
    print_table(
        f"Ablation: AXPYDOT (N={N}) under DRAM placements",
        ["configuration", "cycles", "I/O elems", "vs banked host"], rows)
    ref = axpydot_streaming  # silence lint on unused import path
    # All configurations compute the same value.
    vals = [float(r.value) for r in RESULTS.values()]
    assert max(vals) - min(vals) < 1e-2


def test_bank_contention_ordering():
    """worst (all one bank) > banked > interleaved > streaming."""
    worst = RESULTS["host, one bank (worst)"].cycles
    banked = RESULTS["host, banked (BSP default)"].cycles
    inter = RESULTS["host, interleaved"].cycles
    stream = RESULTS["streaming, banked"].cycles
    assert worst > banked > inter
    assert stream < inter


def test_interleaving_recovers_the_ideal_3x():
    """With interleaving the host layer loses only the pipeline chaining:
    streaming speedup falls back toward the ideal 3x (Sec. V-A)."""
    inter = RESULTS["host, interleaved"].cycles
    stream = RESULTS["streaming, banked"].cycles
    speedup = inter / stream
    assert 2.0 < speedup < 3.6


def test_banked_speedup_exceeds_interleaved():
    """The BSP's missing interleaving is worth ~an extra 1x of speedup —
    the 3 -> 4 jump of Sec. VI-C."""
    banked = RESULTS["host, banked (BSP default)"].cycles
    inter = RESULTS["host, interleaved"].cycles
    stream = RESULTS["streaming, banked"].cycles
    assert banked / stream > inter / stream + 0.4


def test_bench_banked_host(benchmark):
    benchmark.pedantic(host_run, args=(False,), rounds=3, iterations=1)
