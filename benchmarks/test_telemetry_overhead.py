"""Telemetry must be free when off — and bounded when on.

The zero-cost-when-unused contract (see :mod:`repro.telemetry.runtime`)
says an Engine.run with no active session pays exactly one module-global
read.  This module holds that contract against the PR-2 baseline in
``BENCH_engine.json``: the observer-off event core must keep at least
90% of the recorded kernel-steps/sec, and the simulated cycle count must
match the baseline bit-for-bit (instrumentation must never perturb the
simulation).  The observer-on run is measured and printed for the
record; it sweeps kernel states and samples occupancy histograms every
executed cycle, so it is allowed to be an order of magnitude slower —
just not unboundedly so.

The bulk tier (PR 4) extends the contract: with no observers the fast
path engages and must actually be fast (the width-8 run, where DRAM
bursts fit the bank budget, must beat the event core outright), and
with observers attached the tier must disable itself rather than risk
perturbing the timeline — cycles stay bit-identical either way.

Deliberately self-contained: importing ``test_engine_throughput`` would
trigger its module-level data collection.
"""

import json
import os
import tempfile
import time

import numpy as np

from repro import telemetry
from repro.apps import axpydot_streaming
from repro.host import FblasContext

from bench_common import print_table

SEED = 99
N = 8192
WIDTH = 16
BENCH_PATH = os.environ.get("BENCH_ENGINE_JSON", "BENCH_engine.json")
#: Observer-off steps/sec may not drop below this fraction of baseline.
MIN_BASELINE_FRACTION = 0.9
#: Observer-on may cost this much at most (state sweep + histograms).
MAX_INSTRUMENTED_SLOWDOWN = 60.0
#: Ledger-lite (no observers, JSONL sink on) must keep this fraction of
#: the observer-off throughput: its cost is per *request*, not per cycle.
MIN_LEDGER_FRACTION = 0.9

#: A ledger-lite session: the ring + JSONL sink stay on, but no engine
#: observer attaches — the run report is harvested post-run, so the
#: per-cycle hot path and the bulk/certified fast paths are untouched.
LEDGER_LITE = dict(metrics=False, kernel_slices=False, occupancy=False)


def _run(with_session: bool, mode: str = "event", width: int = WIDTH,
         session_kwargs=None):
    rng = np.random.default_rng(SEED)
    mk = lambda: np.asarray(rng.normal(size=N), dtype=np.float32)  # noqa: E731
    w, v, u = mk(), mk(), mk()
    ctx = FblasContext()
    dw, dv, du = (ctx.copy_to_device(x) for x in (w, v, u))
    t0 = time.perf_counter()
    if with_session:
        with telemetry.session(**(session_kwargs or {})):
            res = axpydot_streaming(ctx, dw, dv, du, 0.7, width=width,
                                    mode=mode)
    else:
        res = axpydot_streaming(ctx, dw, dv, du, 0.7, width=width,
                                mode=mode)
    wall = time.perf_counter() - t0
    return res.cycles, res.kernel_steps, wall


def _best_of(k, with_session: bool, mode: str = "event",
             width: int = WIDTH, session_kwargs=None):
    """(cycles, steps, min wall) over k runs — min defeats CI jitter."""
    runs = [_run(with_session, mode, width, session_kwargs)
            for _ in range(k)]
    cycles = {r[0] for r in runs}
    assert len(cycles) == 1, f"non-deterministic cycles: {cycles}"
    return runs[0][0], runs[0][1], min(r[2] for r in runs)


def _ledger_kwargs():
    path = os.path.join(tempfile.mkdtemp(prefix="repro-ledger-"),
                        "ledger.jsonl")
    return dict(LEDGER_LITE, ledger_path=path)


def _baseline_entry():
    if not os.path.exists(BENCH_PATH):
        return None
    with open(BENCH_PATH) as f:
        payload = json.load(f)
    for e in payload["entries"]:
        if e["bench"] == "axpydot" and e["size"] == N:
            return e
    return None


CYCLES_OFF, STEPS, WALL_OFF = _best_of(5, with_session=False)
CYCLES_ON, STEPS_ON, WALL_ON = _best_of(1, with_session=True)
# Bulk tier, observer-off: width 16 falls back (DRAM-bound), width 8
# engages the fast path; width-8 event is the engaged run's yardstick.
CYCLES_BULK, STEPS_BULK, WALL_BULK = _best_of(5, with_session=False,
                                              mode="bulk")
CYCLES_EV8, STEPS_EV8, WALL_EV8 = _best_of(3, with_session=False,
                                           mode="event", width=8)
CYCLES_BULK8, STEPS_BULK8, WALL_BULK8 = _best_of(3, with_session=False,
                                                 mode="bulk", width=8)
CYCLES_BULK_ON, STEPS_BULK_ON, WALL_BULK_ON = _best_of(
    1, with_session=True, mode="bulk", width=8)
# Ledger-lite sessions: the correlated run ledger with the JSONL sink,
# no observers — on the event core and on the engaged bulk fast path.
# The event-core pair is measured *interleaved* with fresh plain runs:
# the 90% gate compares contemporaneous samples, so thermal/turbo drift
# between module-level measurement phases cannot fail it spuriously.


def _interleaved(k, session_kwargs):
    plain = []
    inst = []
    for _ in range(k):
        plain.append(_run(False))
        inst.append(_run(True, session_kwargs=session_kwargs))
    assert {r[0] for r in plain} == {r[0] for r in inst}, \
        "session changed the simulated cycles"
    return (plain[0][0], plain[0][1], min(r[2] for r in plain),
            inst[0][1], min(r[2] for r in inst))


(CYCLES_LED, STEPS_LED_OFF, WALL_LED_OFF,
 STEPS_LED, WALL_LED) = _interleaved(5, _ledger_kwargs())
CYCLES_BULK_LED, STEPS_BULK_LED, WALL_BULK_LED = _best_of(
    3, with_session=True, mode="bulk", width=8,
    session_kwargs=_ledger_kwargs())
BASELINE = _baseline_entry()


def test_report_and_table():
    rows = [
        ("observer-off", CYCLES_OFF, f"{WALL_OFF:.4f}",
         round(STEPS / WALL_OFF)),
        ("observer-on", CYCLES_ON, f"{WALL_ON:.4f}",
         round(STEPS_ON / WALL_ON)),
    ]
    rows += [
        ("bulk observer-off (w16, fallback)", CYCLES_BULK,
         f"{WALL_BULK:.4f}", round(STEPS_BULK / WALL_BULK)),
        ("event observer-off (w8)", CYCLES_EV8,
         f"{WALL_EV8:.4f}", round(STEPS_EV8 / WALL_EV8)),
        ("bulk observer-off (w8, engaged)", CYCLES_BULK8,
         f"{WALL_BULK8:.4f}", round(STEPS_BULK8 / WALL_BULK8)),
        ("bulk observer-on (w8, disabled)", CYCLES_BULK_ON,
         f"{WALL_BULK_ON:.4f}", round(STEPS_BULK_ON / WALL_BULK_ON)),
        ("ledger-lite (event)", CYCLES_LED,
         f"{WALL_LED:.4f}", round(STEPS_LED / WALL_LED)),
        ("ledger-lite (w8, bulk engaged)", CYCLES_BULK_LED,
         f"{WALL_BULK_LED:.4f}", round(STEPS_BULK_LED / WALL_BULK_LED)),
    ]
    if BASELINE is not None:
        rows.append(("baseline (BENCH_engine.json)", BASELINE["cycles"],
                     BASELINE["event_seconds"],
                     BASELINE["event_steps_per_sec"]))
    print_table(f"Telemetry overhead (axpydot n={N}, event core)",
                ["config", "cycles", "wall s", "steps/s"], rows)


def test_simulation_unperturbed():
    """Observing must never change what is simulated."""
    assert CYCLES_ON == CYCLES_OFF
    assert STEPS_ON == STEPS
    if BASELINE is not None:
        assert CYCLES_OFF == BASELINE["cycles"]
        assert STEPS == BASELINE["kernel_steps"]


def test_observer_off_within_baseline_noise():
    """The >10% regression gate the CI bench-smoke job enforces."""
    if BASELINE is None:
        return                      # first run on a fresh checkout
    measured = STEPS / WALL_OFF
    floor = MIN_BASELINE_FRACTION * BASELINE["event_steps_per_sec"]
    assert measured >= floor, (
        f"observer-off throughput {measured:.0f} steps/s fell below "
        f"{MIN_BASELINE_FRACTION:.0%} of the {BASELINE['event_steps_per_sec']}"
        f" baseline — the zero-cost-when-unused contract regressed")


def test_observer_on_cost_bounded():
    slowdown = WALL_ON / max(WALL_OFF, 1e-9)
    assert slowdown <= MAX_INSTRUMENTED_SLOWDOWN, (
        f"instrumented run is {slowdown:.1f}x the plain run")


def test_bulk_simulation_unperturbed():
    """The bulk tier never changes what is simulated — neither when it
    falls back (width 16) nor when it engages (width 8), with or
    without a telemetry session attached."""
    assert CYCLES_BULK == CYCLES_OFF
    assert STEPS_BULK == STEPS
    assert CYCLES_BULK8 == CYCLES_EV8
    assert STEPS_BULK8 == STEPS_EV8
    assert CYCLES_BULK_ON == CYCLES_BULK8
    assert STEPS_BULK_ON == STEPS_BULK8


def test_ledger_simulation_unperturbed():
    """The ledger must never change what is simulated — including on the
    bulk fast path, which a ledger-lite session must leave engaged."""
    assert CYCLES_LED == CYCLES_OFF
    assert STEPS_LED == STEPS
    assert CYCLES_BULK_LED == CYCLES_BULK8
    assert STEPS_BULK_LED == STEPS_BULK8


def test_ledger_on_throughput_floor():
    """The CI gate: ledger-enabled throughput holds >= 90% of the
    observer-off baseline (interleaved samples).  Ledger appends are per
    request (one record per engine run), so the per-cycle path must be
    unchanged."""
    fraction = (STEPS_LED / WALL_LED) / (STEPS_LED_OFF / WALL_LED_OFF)
    assert fraction >= MIN_LEDGER_FRACTION, (
        f"ledger-on throughput is only {fraction:.2f}x of observer-off "
        f"(floor {MIN_LEDGER_FRACTION:.0%}) — the ledger leaked onto "
        f"the hot path")


def test_ledger_keeps_bulk_fast_path_engaged():
    """A ledger-lite session attaches no observers, so the bulk
    superstep fast path must stay engaged and clearly beat event."""
    engaged = (STEPS_BULK_LED / WALL_BULK_LED) / (STEPS_EV8 / WALL_EV8)
    assert engaged >= 2.0, (
        f"bulk+ledger throughput only {engaged:.2f}x of event — the "
        f"ledger disengaged the fast path")


def test_bulk_observer_off_throughput():
    """Observer-off bulk mode must hold the event core's throughput when
    it falls back (probe overhead within noise) and clearly beat it
    when the fast path engages (locally ~10x at width 8; CI-safe 2x
    floor)."""
    fallback = (STEPS_BULK / WALL_BULK) / (STEPS / WALL_OFF)
    assert fallback >= 0.75, (
        f"bulk fallback throughput {fallback:.2f}x of event — the probe "
        f"must be nearly free when the pattern cannot engage")
    engaged = (STEPS_BULK8 / WALL_BULK8) / (STEPS_EV8 / WALL_EV8)
    assert engaged >= 2.0, (
        f"bulk engaged throughput only {engaged:.2f}x of event — the "
        f"fast path regressed")
