"""Telemetry must be free when off — and bounded when on.

The zero-cost-when-unused contract (see :mod:`repro.telemetry.runtime`)
says an Engine.run with no active session pays exactly one module-global
read.  This module holds that contract against the PR-2 baseline in
``BENCH_engine.json``: the observer-off event core must keep at least
90% of the recorded kernel-steps/sec, and the simulated cycle count must
match the baseline bit-for-bit (instrumentation must never perturb the
simulation).  The observer-on run is measured and printed for the
record; it sweeps kernel states and samples occupancy histograms every
executed cycle, so it is allowed to be an order of magnitude slower —
just not unboundedly so.

Deliberately self-contained: importing ``test_engine_throughput`` would
trigger its module-level data collection.
"""

import json
import os
import time

import numpy as np

from repro import telemetry
from repro.apps import axpydot_streaming
from repro.host import FblasContext

from bench_common import print_table

SEED = 99
N = 8192
WIDTH = 16
BENCH_PATH = os.environ.get("BENCH_ENGINE_JSON", "BENCH_engine.json")
#: Observer-off steps/sec may not drop below this fraction of baseline.
MIN_BASELINE_FRACTION = 0.9
#: Observer-on may cost this much at most (state sweep + histograms).
MAX_INSTRUMENTED_SLOWDOWN = 60.0


def _run(with_session: bool):
    rng = np.random.default_rng(SEED)
    mk = lambda: np.asarray(rng.normal(size=N), dtype=np.float32)  # noqa: E731
    w, v, u = mk(), mk(), mk()
    ctx = FblasContext()
    dw, dv, du = (ctx.copy_to_device(x) for x in (w, v, u))
    t0 = time.perf_counter()
    if with_session:
        with telemetry.session():
            res = axpydot_streaming(ctx, dw, dv, du, 0.7, width=WIDTH,
                                    mode="event")
    else:
        res = axpydot_streaming(ctx, dw, dv, du, 0.7, width=WIDTH,
                                mode="event")
    wall = time.perf_counter() - t0
    return res.cycles, res.kernel_steps, wall


def _best_of(k, with_session: bool):
    """(cycles, steps, min wall) over k runs — min defeats CI jitter."""
    runs = [_run(with_session) for _ in range(k)]
    cycles = {r[0] for r in runs}
    assert len(cycles) == 1, f"non-deterministic cycles: {cycles}"
    return runs[0][0], runs[0][1], min(r[2] for r in runs)


def _baseline_entry():
    if not os.path.exists(BENCH_PATH):
        return None
    with open(BENCH_PATH) as f:
        payload = json.load(f)
    for e in payload["entries"]:
        if e["bench"] == "axpydot" and e["size"] == N:
            return e
    return None


CYCLES_OFF, STEPS, WALL_OFF = _best_of(5, with_session=False)
CYCLES_ON, STEPS_ON, WALL_ON = _best_of(1, with_session=True)
BASELINE = _baseline_entry()


def test_report_and_table():
    rows = [
        ("observer-off", CYCLES_OFF, f"{WALL_OFF:.4f}",
         round(STEPS / WALL_OFF)),
        ("observer-on", CYCLES_ON, f"{WALL_ON:.4f}",
         round(STEPS_ON / WALL_ON)),
    ]
    if BASELINE is not None:
        rows.append(("baseline (BENCH_engine.json)", BASELINE["cycles"],
                     BASELINE["event_seconds"],
                     BASELINE["event_steps_per_sec"]))
    print_table(f"Telemetry overhead (axpydot n={N}, event core)",
                ["config", "cycles", "wall s", "steps/s"], rows)


def test_simulation_unperturbed():
    """Observing must never change what is simulated."""
    assert CYCLES_ON == CYCLES_OFF
    assert STEPS_ON == STEPS
    if BASELINE is not None:
        assert CYCLES_OFF == BASELINE["cycles"]
        assert STEPS == BASELINE["kernel_steps"]


def test_observer_off_within_baseline_noise():
    """The >10% regression gate the CI bench-smoke job enforces."""
    if BASELINE is None:
        return                      # first run on a fresh checkout
    measured = STEPS / WALL_OFF
    floor = MIN_BASELINE_FRACTION * BASELINE["event_steps_per_sec"]
    assert measured >= floor, (
        f"observer-off throughput {measured:.0f} steps/s fell below "
        f"{MIN_BASELINE_FRACTION:.0%} of the {BASELINE['event_steps_per_sec']}"
        f" baseline — the zero-cost-when-unused contract regressed")


def test_observer_on_cost_bounded():
    slowdown = WALL_ON / max(WALL_OFF, 1e-9)
    assert slowdown <= MAX_INSTRUMENTED_SLOWDOWN, (
        f"instrumented run is {slowdown:.1f}x the plain run")
