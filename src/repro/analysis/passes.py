"""The pass framework: small named checks that emit diagnostics.

A *pass* is a function ``(subject, ctx) -> iterable of Diagnostic`` that
inspects one kind of subject — an MDAG, an :class:`~repro.fpga.engine.
Engine`, or a list of codegen :class:`~repro.codegen.spec.RoutineSpec`s —
without mutating it.  Passes register themselves into per-subject
registries; :func:`run_passes` executes a registry in order and collects
everything into an :class:`~repro.analysis.diagnostics.AnalysisResult`.

``ctx`` is a plain namespace dict for optional inputs a pass may consult
(reordering ``windows`` for the depth prover, the target ``device`` for
the resource-fit lint).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from .diagnostics import AnalysisResult, Diagnostic

PassFn = Callable[[object, dict], Iterable[Diagnostic]]

#: Registries, in execution order.  Keyed by subject kind.
REGISTRIES: Dict[str, List[Tuple[str, PassFn]]] = {
    "mdag": [],
    "engine": [],
    "spec": [],
    "rates": [],
}


def register(kind: str, name: str):
    """Decorator: add a pass to the ``kind`` registry under ``name``."""
    if kind not in REGISTRIES:
        raise ValueError(f"unknown pass kind {kind!r}")

    def deco(fn: PassFn) -> PassFn:
        REGISTRIES[kind].append((name, fn))
        return fn

    return deco


def run_passes(kind: str, subject, ctx: dict | None = None,
               subject_name: str = "") -> AnalysisResult:
    """Run every registered ``kind`` pass over ``subject``."""
    ctx = ctx or {}
    result = AnalysisResult(subject=subject_name)
    for name, fn in REGISTRIES[kind]:
        result.passes_run.append(name)
        result.extend(fn(subject, ctx))
    return result
