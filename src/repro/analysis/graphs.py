"""Graph algorithms shared by the MDAG and engine analyzer passes.

These used to live inside :class:`repro.streaming.mdag.MDAG`; they are the
single source of truth now — the MDAG methods delegate here, and the
engine pre-flight reuses them on the kernel graph.
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx


def multipath_pairs(graph: nx.DiGraph) -> List[Tuple[str, str]]:
    """Vertex pairs with more than one (not necessarily disjoint) path.

    A DAG is a *multitree* iff this list is empty.  Returns ``[]`` for
    cyclic graphs (path counting is undefined there; cycles are reported
    separately as FB004).
    """
    if not nx.is_directed_acyclic_graph(graph):
        return []
    order = list(nx.topological_sort(graph))
    pairs = []
    for src in order:
        counts = {src: 1}
        for v in order:
            if v == src:
                continue
            total = sum(counts.get(u, 0) for u in graph.predecessors(v))
            if total:
                counts[v] = total
                if total > 1:
                    pairs.append((src, v))
    return pairs


def reconvergent_pairs(graph: nx.DiGraph) -> List[Tuple[str, str]]:
    """Pairs joined by >= 2 internally vertex-disjoint paths.

    These are the pairs the paper singles out (Sec. V-B): data fans out at
    the first vertex and rejoins at the second, so one branch can only
    progress if the other branch's data is buffered in a channel.
    """
    out = []
    for u, v in multipath_pairs(graph):
        if len(disjoint_paths(graph, u, v)) >= 2:
            out.append((u, v))
    return out


def disjoint_paths(graph: nx.DiGraph, u: str, v: str) -> List[List[str]]:
    """A maximum set of internally vertex-disjoint u -> v paths."""
    try:
        return [list(p) for p in nx.node_disjoint_paths(graph, u, v)]
    except (nx.NetworkXNoPath, nx.NetworkXError):  # pragma: no cover
        return []
