"""Static design-checking for streaming compositions (Sec. V, fail-fast).

The paper argues MDAG validity *statically*: an invalid composition does
not crash, it stalls forever.  This package catches those mistakes before
any cycle is simulated, as a pass-based analyzer with stable ``FBxxx``
diagnostic codes over three kinds of subject:

* :func:`analyze_mdag` — MDAGs (signatures, cycles, replay, and the
  reconvergent-buffering prover of Sec. V-B);
* :func:`analyze_engine` — a built :class:`~repro.fpga.engine.Engine`
  whose kernels declared their ports (wiring, cycles, and the
  channel-depth sufficiency prover), run automatically by
  ``Engine.run(preflight=True)``;
* :func:`analyze_specs` — codegen routine specifications (lint plus
  resource fit against the Table II device catalogs).

``python -m repro.analysis`` exposes the same checks on the command line.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from .diagnostics import (
    CODES,
    AnalysisError,
    AnalysisResult,
    Diagnostic,
    Severity,
)
from .graphs import disjoint_paths, multipath_pairs, reconvergent_pairs
from .passes import REGISTRIES, register, run_passes

# Importing the pass modules populates the registries.
from . import engine_passes, mdag_passes, spec_passes  # noqa: F401
from .spec_passes import estimate_spec_resources, estimate_total_resources

__all__ = [
    "CODES", "AnalysisError", "AnalysisResult", "Diagnostic", "Severity",
    "REGISTRIES", "analyze_engine", "analyze_mdag", "analyze_specs",
    "disjoint_paths", "estimate_spec_resources", "estimate_total_resources",
    "multipath_pairs", "reconvergent_pairs", "register", "run_passes",
]


def analyze_mdag(mdag, windows: Optional[Dict[Tuple[str, str], int]] = None,
                 ) -> AnalysisResult:
    """Run every MDAG pass; see :mod:`repro.analysis.mdag_passes`.

    ``windows`` optionally maps edges to reordering windows (elements), in
    which case reconvergent pairs are *proved* safe (FB008) or deadlocking
    (FB003) instead of merely flagged (FB002).
    """
    return run_passes("mdag", mdag, {"windows": windows or {}},
                      subject_name="MDAG")


def analyze_engine(engine) -> AnalysisResult:
    """Run every engine pre-flight pass; see
    :mod:`repro.analysis.engine_passes`."""
    return run_passes("engine", engine, {},
                      subject_name=f"engine({len(engine.kernels)} kernels)")


def analyze_specs(specs: Iterable, device=None) -> AnalysisResult:
    """Run every spec pass; see :mod:`repro.analysis.spec_passes`.

    ``specs`` is a list of :class:`~repro.codegen.spec.RoutineSpec`;
    ``device`` an optional :class:`~repro.fpga.device.FpgaDevice` enabling
    the resource-fit lint.
    """
    specs = list(specs)
    return run_passes("spec", specs, {"device": device},
                      subject_name=f"{len(specs)} routine spec(s)")
