"""Static design-checking for streaming compositions (Sec. V, fail-fast).

The paper argues MDAG validity *statically*: an invalid composition does
not crash, it stalls forever.  This package catches those mistakes before
any cycle is simulated, as a pass-based analyzer with stable ``FBxxx``
diagnostic codes over three kinds of subject:

* :func:`analyze_mdag` — MDAGs (signatures, cycles, replay, and the
  reconvergent-buffering prover of Sec. V-B);
* :func:`analyze_engine` — a built :class:`~repro.fpga.engine.Engine`
  whose kernels declared their ports (wiring, cycles, and the
  channel-depth sufficiency prover), run automatically by
  ``Engine.run(preflight=True)``;
* :func:`analyze_specs` — codegen routine specifications (lint plus
  resource fit against the Table II device catalogs);
* :func:`analyze_rates` — SDF rate analysis over an engine's
  :class:`~repro.fpga.pattern.StaticPattern` ports (balance equations,
  token conservation, bank-bandwidth feasibility, minimal deadlock-free
  depths — the FB4xx family), and :func:`certify` /
  :func:`ensure_certified` to compile the passing design into a
  :class:`~repro.analysis.schedule.StaticSchedule` that
  ``Engine(mode="certified")`` replays without runtime probing.

``python -m repro.analysis`` exposes the same checks on the command line
(``--json`` for the versioned ``repro.analysis/1`` report, ``--sarif``
for SARIF 2.1.0).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from .diagnostics import (
    ANALYSIS_SCHEMA,
    CODES,
    SCHEDULE_SCHEMA,
    AnalysisError,
    AnalysisResult,
    Diagnostic,
    Severity,
)
from .graphs import disjoint_paths, multipath_pairs, reconvergent_pairs
from .passes import REGISTRIES, register, run_passes

# Importing the pass modules populates the registries.
from . import engine_passes, mdag_passes, rate_passes, spec_passes  # noqa: F401
from .schedule import (
    ChannelPlan,
    KernelSchedule,
    PhaseSegment,
    StaticSchedule,
    certify,
    ensure_certified,
    schedule_key,
)
from .spec_passes import estimate_spec_resources, estimate_total_resources

__all__ = [
    "ANALYSIS_SCHEMA", "CODES", "SCHEDULE_SCHEMA",
    "AnalysisError", "AnalysisResult", "ChannelPlan", "Diagnostic",
    "KernelSchedule", "PhaseSegment", "Severity", "StaticSchedule",
    "REGISTRIES", "analyze_engine", "analyze_mdag", "analyze_rates",
    "analyze_specs", "certify", "disjoint_paths", "ensure_certified",
    "estimate_spec_resources", "estimate_total_resources",
    "multipath_pairs", "reconvergent_pairs", "register", "run_passes",
    "schedule_key",
]


def analyze_mdag(mdag, windows: Optional[Dict[Tuple[str, str], int]] = None,
                 ) -> AnalysisResult:
    """Run every MDAG pass; see :mod:`repro.analysis.mdag_passes`.

    ``windows`` optionally maps edges to reordering windows (elements), in
    which case reconvergent pairs are *proved* safe (FB008) or deadlocking
    (FB003) instead of merely flagged (FB002).
    """
    return run_passes("mdag", mdag, {"windows": windows or {}},
                      subject_name="MDAG")


def analyze_engine(engine) -> AnalysisResult:
    """Run every engine pre-flight pass; see
    :mod:`repro.analysis.engine_passes`.

    ``engine`` may be a live :class:`~repro.fpga.engine.Engine` or an
    already-compiled :class:`~repro.plan.PlanIR` — the passes consume
    the typed plan either way.
    """
    from ..plan import as_plan
    plan = as_plan(engine)
    return run_passes("engine", plan, {}, subject_name=plan.subject)


def analyze_specs(specs: Iterable, device=None) -> AnalysisResult:
    """Run every spec pass; see :mod:`repro.analysis.spec_passes`.

    ``specs`` is a list of :class:`~repro.codegen.spec.RoutineSpec`;
    ``device`` an optional :class:`~repro.fpga.device.FpgaDevice` enabling
    the resource-fit lint.
    """
    specs = list(specs)
    return run_passes("spec", specs, {"device": device},
                      subject_name=f"{len(specs)} routine spec(s)")


def analyze_rates(engine) -> AnalysisResult:
    """Run every SDF rate pass; see :mod:`repro.analysis.rate_passes`.

    Identical to :func:`certify` minus the schedule compilation: a clean
    result carries the FB405 certificate diagnostic.  ``engine`` may be
    a live engine or a compiled :class:`~repro.plan.PlanIR`.
    """
    result, _schedule = certify(engine)
    return result
