"""Pre-flight passes over a compiled plan's kernel annotations.

Kernels opt in to static analysis by declaring their ports
(``Engine.add_kernel(..., reads=..., writes=..., defer=...)``).  The
annotations are compiled into the typed :class:`~repro.plan.PlanIR`
(live engines are coerced through :func:`repro.plan.as_plan` at the
boundary); from the plan these passes build the kernel graph (vertices:
kernels; edges: channels) and prove properties about it before cycle 0:

* wiring sanity — every channel has exactly one producer and one consumer
  (FB006/FB007), the graph is acyclic (FB004);
* **channel-depth sufficiency** for reconvergent paths (the ATAX stall of
  Sec. V-B).  For a pair of vertex-disjoint paths P and P' between a
  fan-out and a re-join kernel, let ``defer(P')`` be the number of
  elements the kernels on P' must consume before their first output
  (their summed reordering windows).  While P' absorbs those elements the
  lockstep fan-out keeps feeding P, which must buffer everything it
  receives.  The prover brackets P's true capacity:

  - lower bound: the summed FIFO depths along P — if that already covers
    ``defer(P')`` the composition provably streams (FB008 certificate);
  - upper bound: depths plus pipeline-staging headroom (``lanes x push
    latency`` per edge, the skid slots the engine grants in-flight
    values) plus the fan-out's one-batch intra-cycle lead — if even that
    cannot cover ``defer(P')`` the composition provably deadlocks
    (FB003, with the minimum safe depth as the suggested fix).

  Between the two bounds the verdict is "unproven" (FB002, warning): the
  dynamic :class:`~repro.fpga.engine.DeadlockError` check remains the
  authority for that narrow band.

The wiring and depth passes only run when *every* kernel is annotated —
an unannotated kernel could secretly drain a channel and void the proof;
partial coverage is surfaced as FB301 instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import networkx as nx

from ..plan import PlanIR, PlanPort
from .diagnostics import Diagnostic, Severity
from .graphs import disjoint_paths, reconvergent_pairs
from .passes import register
from .rate_passes import bank_demand


def _fully_annotated(plan: PlanIR) -> bool:
    return all(k.annotated for k in plan.kernels)


def _port_maps(plan: PlanIR):
    """Channel name -> list of (kernel name, PlanPort) / list of names."""
    writers: Dict[str, List[Tuple[str, PlanPort]]] = {}
    readers: Dict[str, List[str]] = {}
    for k in plan.kernels:
        for port in k.annotated_writes:
            writers.setdefault(port.channel, []).append((k.name, port))
        for ch in k.annotated_reads:
            readers.setdefault(ch, []).append(k.name)
    return writers, readers


def _kernel_graph(plan: PlanIR) -> nx.DiGraph:
    """Kernel graph; edge (u, v) aggregates every channel u feeds v with.

    Edge attributes: ``depth_lo`` (min FIFO depth over parallel channels
    — a conservative buffering lower bound for lockstep streams),
    ``cap_hi`` (summed depth + staging headroom — an upper bound),
    ``lanes`` (largest push batch) and ``channels`` (names).
    """
    writers, readers = _port_maps(plan)
    kernel_latency = {k.name: k.latency for k in plan.kernels}
    g = nx.DiGraph()
    g.add_nodes_from(k.name for k in plan.kernels if k.annotated)
    for ch_name, ws in writers.items():
        for kname, port in ws:
            latency = (port.latency if port.latency is not None
                       else kernel_latency[kname])
            headroom = port.lanes * latency
            depth = plan.depth_of(ch_name)
            for reader in readers.get(ch_name, ()):
                if g.has_edge(kname, reader):
                    data = g.edges[kname, reader]
                    data["depth_lo"] = min(data["depth_lo"], depth)
                    data["cap_hi"] += depth + headroom
                    data["lanes"] = max(data["lanes"], port.lanes)
                    data["channels"].append(ch_name)
                else:
                    g.add_edge(kname, reader, depth_lo=depth,
                               cap_hi=depth + headroom, lanes=port.lanes,
                               channels=[ch_name])
    return g


@register("engine", "coverage")
def check_coverage(plan: PlanIR, ctx) -> Iterable[Diagnostic]:
    """FB301: kernels invisible to the static passes."""
    for k in plan.kernels:
        if not k.annotated:
            yield Diagnostic(
                "FB301", Severity.INFO,
                f"kernel {k.name!r} declares no reads/writes; pre-flight "
                "checks cover only the annotated part of the design",
                obj=k.name,
                fix="pass reads=/writes= (and defer=) to add_kernel()")


@register("engine", "wiring")
def check_wiring(plan: PlanIR, ctx) -> Iterable[Diagnostic]:
    """FB006/FB007: every channel needs exactly one writer and reader."""
    if not _fully_annotated(plan):
        return
    writers, readers = _port_maps(plan)
    for ch in plan.channels:
        name = ch.name
        n_w = len(writers.get(name, ()))
        n_r = len(readers.get(name, ()))
        if n_w == 0 and n_r == 0:
            continue                      # never referenced: harmless
        if n_w == 0:
            yield Diagnostic(
                "FB006", Severity.ERROR,
                f"channel {name!r} is read by "
                f"{[r for r in readers[name]]} but has no producer; every "
                "pop on it blocks forever", obj=name)
        elif n_r == 0:
            yield Diagnostic(
                "FB006", Severity.WARNING,
                f"channel {name!r} is written by "
                f"{[k for k, _p in writers[name]]} but has no "
                "consumer; it fills up and back-pressures its producer",
                obj=name)
        if n_w > 1 or n_r > 1:
            yield Diagnostic(
                "FB007", Severity.WARNING,
                f"channel {name!r} has {n_w} writer(s) and {n_r} "
                "reader(s); HLS channels are single-producer/"
                "single-consumer", obj=name)


@register("engine", "cycles")
def check_cycles(plan: PlanIR, ctx) -> Iterable[Diagnostic]:
    """FB004: a cycle of empty FIFOs can never prime itself."""
    g = _kernel_graph(plan)
    if not nx.is_directed_acyclic_graph(g):
        cycle = nx.find_cycle(g)
        path = " -> ".join(u for u, _v in cycle) + f" -> {cycle[-1][1]}"
        yield Diagnostic("FB004", Severity.ERROR,
                         f"kernel graph contains a cycle: {path}")


@register("engine", "bank-bandwidth")
def check_bank_bandwidth(plan: PlanIR, ctx) -> Iterable[Diagnostic]:
    """FB104: per-bank DRAM over-subscription (performance lint).

    Sums the steady-state bytes/cycle each kernel's pattern-declared
    :class:`~repro.fpga.pattern.DramTraffic` places on each bank and
    compares against the bank's share of the Table II budget.  Unlike
    the FB402 certification error this is a warning: the simulation
    still runs, the memory model just rations grants and the pipeline
    stalls below its paper throughput.
    """
    mem = plan.memory
    if mem is None:
        return
    for bank, nbytes in sorted(
            bank_demand(plan).items(),
            key=lambda kv: -1 if kv[0] is None else kv[0]):
        if bank is None or nbytes <= mem.bytes_per_cycle:
            continue
        yield Diagnostic(
            "FB104", Severity.WARNING,
            f"DRAM bank {bank} is over-subscribed: pattern-declared "
            f"demand is {nbytes} B/cycle against a {mem.bytes_per_cycle} "
            "B/cycle bank budget; expect grant rationing and stalls",
            obj=f"bank{bank}",
            fix="spread the buffers over more banks or reduce the "
                "vectorization width")


@register("engine", "placement-conflicts")
def check_placement_conflicts(plan: PlanIR, ctx) -> Iterable[Diagnostic]:
    """FB105: memory placement conflicts.

    Two parts.  An out-of-range placement — a buffer whose channel set
    names a channel the device does not have — is an error (the design
    cannot be built).  A *conflict* is a warning: a channel shared by
    two or more buffers whose combined pattern-declared demand
    over-subscribes it even though each buffer alone would fit — the
    situation an explicit placement exists to avoid, so the fix is to
    move one buffer to a free channel.
    """
    mem = plan.memory
    if mem is None:
        return
    for p in plan.placements:
        members = p.channels if p.channels else (
            (p.bank,) if p.bank is not None else ())
        bad = [c for c in members if not (0 <= c < mem.num_banks)]
        if bad:
            yield Diagnostic(
                "FB105", Severity.ERROR,
                f"buffer {p.buffer!r} is placed on channel(s) "
                f"{sorted(bad)} but the device has only "
                f"{mem.num_banks} channels",
                obj=p.buffer,
                fix=f"use channels in [0, {mem.num_banks})")
    # Per-channel demand split by buffer, from pattern-declared traffic.
    per_channel: Dict[int, Dict[str, int]] = {}
    for k in plan.kernels:
        for t in k.dram:
            nbytes = t.elements * t.itemsize
            if t.channels:
                share = -(-nbytes // len(t.channels))
                targets = [(c, share) for c in t.channels]
            elif t.bank is not None:
                targets = [(t.bank, nbytes)]
            else:
                continue
            for c, b in targets:
                if not (0 <= c < mem.num_banks):
                    continue                # out-of-range reported above
                by_buf = per_channel.setdefault(c, {})
                by_buf[t.buffer] = by_buf.get(t.buffer, 0) + b
    for c in sorted(per_channel):
        by_buf = per_channel[c]
        total = sum(by_buf.values())
        if len(by_buf) < 2 or total <= mem.bytes_per_cycle:
            continue
        if max(by_buf.values()) > mem.bytes_per_cycle:
            continue                        # one buffer alone: FB104's case
        names = ", ".join(f"{b!r} ({v} B/cycle)"
                          for b, v in sorted(by_buf.items()))
        yield Diagnostic(
            "FB105", Severity.WARNING,
            f"placement conflict on channel {c}: {names} together need "
            f"{total} B/cycle against a {mem.bytes_per_cycle} B/cycle "
            "budget, though each buffer alone fits",
            obj=f"channel{c}",
            fix="place one of the conflicting buffers on a different "
                "channel (Placement.single/striped/channel_range)")


@register("engine", "depths")
def check_depths(plan: PlanIR, ctx) -> Iterable[Diagnostic]:
    """FB002/FB003/FB008: the channel-depth sufficiency prover."""
    if not _fully_annotated(plan):
        return
    g = _kernel_graph(plan)
    if not nx.is_directed_acyclic_graph(g):
        return                              # FB004 already reported
    kernel_defer = {k.name: k.defer for k in plan.kernels}
    for a, b in reconvergent_pairs(g):
        paths = disjoint_paths(g, a, b)
        stats = []
        for p in paths:
            edges = list(zip(p[:-1], p[1:]))
            stats.append({
                "nodes": p,
                "defer": sum(kernel_defer[k] for k in p[1:-1]),
                "lo": sum(g.edges[e]["depth_lo"] for e in edges),
                "hi": sum(g.edges[e]["cap_hi"] for e in edges),
                "first_lanes": g.edges[edges[0]]["lanes"] if edges else 0,
                "channels": [c for e in edges
                             for c in g.edges[e]["channels"]],
            })
        if all(s["defer"] == 0 for s in stats):
            continue                       # plain fan-out/re-join: no window
        verdicts = []
        for i, s in enumerate(stats):
            others = [t for j, t in enumerate(stats) if j != i]
            required = max(t["defer"] for t in others)
            if required == 0:
                verdicts.append("safe")
            elif s["lo"] >= required:
                verdicts.append("safe")
            else:
                # The fan-out may run one batch ahead on the deferring
                # branch before it blocks on this one.
                lead = max(t["first_lanes"] for t in others)
                if s["hi"] + lead < required:
                    shortfall = required - s["lo"]
                    name = s["channels"][0] if s["channels"] else "?"
                    yield Diagnostic(
                        "FB003", Severity.ERROR,
                        f"reconvergent kernels {a!r} -> {b!r}: branch "
                        f"{' -> '.join(s['nodes'])} can buffer at most "
                        f"{s['hi'] + lead} elements but the sibling "
                        f"branch defers {required} before its first "
                        "output; the composition deadlocks",
                        edge=(a, b),
                        fix=f"raise channel {name!r} depth by "
                            f">= {shortfall} (to a total branch depth of "
                            f">= {required})")
                    verdicts.append("deadlock")
                else:
                    yield Diagnostic(
                        "FB002", Severity.WARNING,
                        f"reconvergent kernels {a!r} -> {b!r}: branch "
                        f"{' -> '.join(s['nodes'])} holds {s['lo']} "
                        f"elements against a {required}-element "
                        "reordering window; within pipeline-staging "
                        "margin, sufficiency is unproven",
                        edge=(a, b),
                        fix=f"raise the branch depth to >= {required} to "
                            "obtain a static certificate")
                    verdicts.append("unproven")
        if verdicts and all(v == "safe" for v in verdicts):
            windows = max(s["defer"] for s in stats)
            yield Diagnostic(
                "FB008", Severity.INFO,
                f"reconvergent kernels {a!r} -> {b!r}: every branch "
                f"buffers the {windows}-element reordering window; "
                "deadlock-free for this problem size",
                edge=(a, b))
