"""SDF rate analysis over a plan's ``StaticPattern`` ports (FB4xx).

A design whose kernels all carry executable
:class:`~repro.fpga.pattern.StaticPattern`\\ s is a synchronous-dataflow
graph with access patterns (SDF-AP): each kernel fires at initiation
interval ``ii`` moving ``lanes`` elements per port per firing.  These
passes treat it as such and prove, before cycle 0, everything the bulk
tier currently discovers by probing at runtime:

* **FB404** — certifiability: a kernel without an executable pattern (or
  with ``ii != 1``) has no static firing rule, so no whole-program
  schedule exists;
* **FB400** — rate consistency: the balance equations
  ``q_p * lanes_p = q_c * lanes_c`` must admit a repetition vector, and
  on a single-clock ``ii=1`` fabric that vector must be *uniform*
  (every kernel fires every cycle) — mismatched lanes on a channel make
  the pipeline structurally non-periodic;
* **FB401** — token conservation: declared per-port element totals must
  agree across each channel, otherwise one side starves (or is left
  holding undeliverable elements) after the common prefix drains;
* **FB402** — bandwidth feasibility: the steady-state DRAM demand
  implied by the patterns' :class:`~repro.fpga.pattern.DramTraffic`
  descriptors must fit each bank's per-cycle budget (and the pooled
  budget), since a certified superstep assumes every burst is granted in
  full — exactly the Table II arithmetic of the resource lint, applied
  per bank;
* **FB403** — minimal deadlock-free depths: for reconvergent pattern
  paths, the non-deferring branch must buffer the sibling branch's
  reordering window (the sum of its kernels' pattern ``defer``).  This
  tightens the two-sided FB002/FB003 prover to an exact bound: the
  inferred minimum *is* the paper's reconvergence depth (``N * T_N`` for
  ATAX), with no unproven staging-margin band.

Only channels whose producer *and* consumer both name them in pattern
ports participate in FB400/FB401 — a single-sided edge (e.g. a
reduction's event-stepped epilogue push) is dynamic by construction and
is left to the runtime checks.

Every helper and pass here consumes the typed
:class:`~repro.plan.PlanIR` — live engines are accepted for
convenience and coerced through :func:`repro.plan.as_plan` at the
boundary, so the passes themselves never introspect kernel generators
or channel objects.

The passes live in their own ``"rates"`` registry;
:func:`repro.analysis.analyze_rates` runs them, and
:func:`repro.analysis.schedule.certify` compiles a
:class:`~repro.analysis.schedule.StaticSchedule` when they all pass.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..plan import PlanIR, as_plan
from .diagnostics import Diagnostic, Severity
from .graphs import disjoint_paths, reconvergent_pairs
from .passes import register


# ---------------------------------------------------------------------------
# Shared structure extraction (PlanIR views)
# ---------------------------------------------------------------------------

def pattern_ports(subject) -> Tuple[Dict[str, List[Tuple[str, int,
                                                         Optional[int]]]],
                                    Dict[str, List[Tuple[str, int,
                                                         Optional[int]]]]]:
    """Port maps from pattern declarations (not ``add_kernel`` lint
    annotations — patterns are the executable contract).

    Returns ``(producers, consumers)``; each maps a channel name to a
    list of ``(kernel, lanes, total_elements_or_None)`` tuples (write
    latency is resolved separately where needed).
    """
    plan = as_plan(subject)
    producers: Dict[str, List[Tuple[str, int, Optional[int]]]] = {}
    consumers: Dict[str, List[Tuple[str, int, Optional[int]]]] = {}
    for k in plan.kernels:
        if not k.patterned:
            continue
        for port in k.reads:
            consumers.setdefault(port.channel, []).append(
                (k.name, port.lanes, port.total))
        for port in k.writes:
            producers.setdefault(port.channel, []).append(
                (k.name, port.lanes, port.total))
    return producers, consumers


def both_sided_edges(subject) -> Dict[str, Tuple[str, int, Optional[int],
                                                 str, int, Optional[int]]]:
    """Channels with exactly one pattern producer and one pattern
    consumer — the SDF edges the balance equations range over.  Keyed
    by channel name; values are ``(producer, p_lanes, p_total,
    consumer, c_lanes, c_total)``."""
    producers, consumers = pattern_ports(subject)
    edges = {}
    for ch, ps in producers.items():
        cs = consumers.get(ch)
        if cs is None or len(ps) != 1 or len(cs) != 1:
            continue
        (pk, pw, ptot), (ck, cw, ctot) = ps[0], cs[0]
        edges[ch] = (pk, pw, ptot, ck, cw, ctot)
    return edges


def solve_balance(subject):
    """Solve the SDF balance equations over the both-sided edges.

    Returns ``(q, conflicts)``: the repetition vector as
    ``{kernel_name: Fraction}`` (normalized so the smallest rate is 1)
    and the list of conflicting channels ``(ch, pk, ck, expected,
    got)``.  Kernels not touched by any both-sided edge get rate 1.
    """
    plan = as_plan(subject)
    edges = both_sided_edges(plan)
    q: Dict[str, Fraction] = {}
    conflicts = []
    for ch, (pk, pw, _pt, ck, cw, _ct) in edges.items():
        qp = q.get(pk)
        qc = q.get(ck)
        if qp is None and qc is None:
            q[pk] = Fraction(1)
            q[ck] = Fraction(pw, cw)
        elif qc is None:
            q[ck] = qp * Fraction(pw, cw)
        elif qp is None:
            q[pk] = qc * Fraction(cw, pw)
        else:
            if qp * pw != qc * cw:
                conflicts.append((ch, pk, ck, qp * Fraction(pw, cw), qc))
    for k in plan.kernels:
        q.setdefault(k.name, Fraction(1))
    lo = min(q.values(), default=Fraction(1))
    if lo > 0:
        q = {name: v / lo for name, v in q.items()}
    return q, conflicts


def bank_demand(subject) -> Dict[Optional[int], int]:
    """Steady-state DRAM demand in bytes/cycle from pattern traffic.

    Returns ``{channel: bytes_per_cycle}``; ``channel`` is ``None`` for
    interleaved buffers (drawing from the pooled budget).  Traffic on a
    striped/range placement spreads evenly over its member channels
    (rounded up per channel — the conservative direction for a
    feasibility lint).  Only pattern-declared traffic is visible —
    dynamic (ordered) memory kernels contribute nothing here, which
    FB404 surfaces separately.  Budgets come from the plan's
    :class:`~repro.plan.PlanMemory`.
    """
    plan = as_plan(subject)
    demand: Dict[Optional[int], int] = {}
    for k in plan.kernels:
        for t in k.dram:
            nbytes = t.elements * t.itemsize
            if t.channels:
                share = -(-nbytes // len(t.channels))
                for c in t.channels:
                    demand[c] = demand.get(c, 0) + share
            else:
                demand[t.bank] = demand.get(t.bank, 0) + nbytes
    return demand


def _pattern_kernel_graph(plan: PlanIR) -> nx.DiGraph:
    """Kernel graph over pattern ports, supplemented by ``add_kernel``
    annotations.

    An *executable* pattern declares only its steady-window ports (e.g.
    the row-tiles GEMV patterns just the matrix stream), so the full
    wiring needed by the FB403 reconvergence analysis comes from the
    union of pattern ports and per-call read/write annotations.
    Parallel channels aggregate as in the FB00x prover (``depth_lo`` =
    min depth, ``channels`` = names).
    """
    g = nx.DiGraph()
    g.add_nodes_from(k.name for k in plan.kernels
                     if k.patterned or k.annotated)

    def add(pk_name, ck_name, ch_name, lanes):
        depth = plan.depth_of(ch_name)
        if g.has_edge(pk_name, ck_name):
            data = g.edges[pk_name, ck_name]
            if ch_name in data["channels"]:
                return
            data["depth_lo"] = min(data["depth_lo"], depth)
            data["lanes"] = max(data["lanes"], lanes)
            data["channels"].append(ch_name)
        else:
            g.add_edge(pk_name, ck_name, depth_lo=depth, lanes=lanes,
                       channels=[ch_name])

    for ch, (pk, pw, _pt, ck, _cw, _ct) in both_sided_edges(plan).items():
        add(pk, ck, ch, pw)
    writers: Dict[str, List[Tuple[str, str, int]]] = {}
    readers: Dict[str, List[str]] = {}
    for k in plan.kernels:
        for port in k.annotated_writes:
            writers.setdefault(port.channel, []).append(
                (k.name, port.channel, port.lanes))
        for ch in k.annotated_reads:
            readers.setdefault(ch, []).append(k.name)
    for name, ws in writers.items():
        rs = readers.get(name, ())
        if len(ws) != 1 or len(rs) != 1:
            continue
        (pk_name, ch_name, lanes), = ws
        add(pk_name, rs[0], ch_name, lanes)
    return g


def min_depth_requirements(subject):
    """Inferred minimal deadlock-free depth per reconvergent branch.

    Returns a list of ``(pair, branch_nodes, channels, capacity,
    required)`` tuples, one per branch of every reconvergent pattern
    pair whose sibling branch defers output (``required > 0``).
    """
    plan = as_plan(subject)
    g = _pattern_kernel_graph(plan)
    if not nx.is_directed_acyclic_graph(g):
        return []                        # FB004 territory
    kernels = plan.kernel_map
    out = []
    for a, b in reconvergent_pairs(g):
        paths = disjoint_paths(g, a, b)
        stats = []
        for p in paths:
            pedges = list(zip(p[:-1], p[1:]))
            defer = 0
            for name in p[1:-1]:
                k = kernels[name]
                # A pattern declares only its steady-window ports, so the
                # add_kernel annotation may know the larger window.
                defer += max(k.pattern_defer, k.defer)
            stats.append({
                "nodes": p,
                "defer": defer,
                "capacity": sum(g.edges[e]["depth_lo"] for e in pedges),
                "channels": [c for e in pedges
                             for c in g.edges[e]["channels"]],
            })
        if all(s["defer"] == 0 for s in stats):
            continue
        for i, s in enumerate(stats):
            required = max(t["defer"] for j, t in enumerate(stats)
                           if j != i)
            if required > 0:
                out.append(((a, b), s["nodes"], s["channels"],
                            s["capacity"], required))
    return out


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------

@register("rates", "certifiable")
def check_certifiable(plan: PlanIR, ctx) -> Iterable[Diagnostic]:
    """FB404: every kernel needs an executable ii=1 StaticPattern."""
    for k in plan.kernels:
        if not k.patterned:
            yield Diagnostic(
                "FB404", Severity.ERROR,
                f"kernel {k.name!r} carries no StaticPattern; its firing "
                "behaviour is dynamic and cannot be scheduled statically",
                obj=k.name,
                fix="wrap the generator in PatternedGenerator with an "
                    "executable StaticPattern")
        elif not k.executable:
            yield Diagnostic(
                "FB404", Severity.ERROR,
                f"kernel {k.name!r} has a declare-only pattern (ports "
                "documented, no block executor); the fast path can never "
                "engage for it", obj=k.name,
                fix="supply ready=/block= so the pattern is executable")
        elif k.pattern_ii != 1:
            yield Diagnostic(
                "FB404", Severity.ERROR,
                f"kernel {k.name!r} initiates every {k.pattern_ii} cycles; "
                "whole-program windows require ii == 1", obj=k.name)


@register("rates", "rates")
def check_rates(plan: PlanIR, ctx) -> Iterable[Diagnostic]:
    """FB400: balance equations must yield a uniform repetition vector."""
    edges = both_sided_edges(plan)
    producers, consumers = pattern_ports(plan)
    for ch, ps in producers.items():
        if len(ps) > 1:
            yield Diagnostic(
                "FB400", Severity.ERROR,
                f"channel {ch!r} has {len(ps)} pattern producers; "
                "SDF edges are single-producer", obj=ch)
    for ch, cs in consumers.items():
        if len(cs) > 1:
            yield Diagnostic(
                "FB400", Severity.ERROR,
                f"channel {ch!r} has {len(cs)} pattern consumers; "
                "SDF edges are single-consumer", obj=ch)
    q, conflicts = solve_balance(plan)
    for ch, pk, ck, expected, got in conflicts:
        yield Diagnostic(
            "FB400", Severity.ERROR,
            f"channel {ch!r}: balance equations are inconsistent — "
            f"propagation forces rate {expected} on {ck!r} but its "
            f"other edges force {got}; no repetition vector exists",
            edge=(pk, ck), obj=ch)
    if not conflicts:
        for ch, (pk, pw, _pt, ck, cw, _ct) in edges.items():
            if pw != cw:
                yield Diagnostic(
                    "FB400", Severity.ERROR,
                    f"channel {ch!r}: producer {pk!r} pushes "
                    f"{pw} lanes/cycle but consumer {ck!r} pops "
                    f"{cw}; the repetition vector "
                    f"({ck}: {q[ck]} firings per {pk} "
                    "firing) is not uniform, so no single-clock ii=1 "
                    "steady state exists",
                    edge=(pk, ck), obj=ch,
                    fix=f"match the lanes (width) on {ch!r}")


@register("rates", "tokens")
def check_tokens(plan: PlanIR, ctx) -> Iterable[Diagnostic]:
    """FB401: per-channel element totals must conserve."""
    for ch, (pk, _pw, ptot, ck, _cw, ctot) in both_sided_edges(
            plan).items():
        if ptot is None or ctot is None or ptot == ctot:
            continue
        if ptot < ctot:
            yield Diagnostic(
                "FB401", Severity.ERROR,
                f"channel {ch!r}: consumer {ck!r} expects "
                f"{ctot} elements but producer {pk!r} emits only "
                f"{ptot}; the consumer starves after the common prefix",
                edge=(pk, ck), obj=ch)
        else:
            yield Diagnostic(
                "FB401", Severity.ERROR,
                f"channel {ch!r}: producer {pk!r} emits {ptot} "
                f"elements but consumer {ck!r} accepts only {ctot}; "
                f"the surplus {ptot - ctot} accumulate until the channel "
                "back-pressures the producer forever",
                edge=(pk, ck), obj=ch)


@register("rates", "bandwidth")
def check_bandwidth(plan: PlanIR, ctx) -> Iterable[Diagnostic]:
    """FB402: steady DRAM demand must fit every bank budget in full."""
    demand = bank_demand(plan)
    mem = plan.memory
    if mem is None:
        return
    total = 0
    for bank, nbytes in sorted(
            demand.items(),
            key=lambda kv: -1 if kv[0] is None else kv[0]):
        total += nbytes
        if bank is None:
            continue
        if nbytes > mem.bytes_per_cycle:
            yield Diagnostic(
                "FB402", Severity.ERROR,
                f"DRAM bank {bank} must move {nbytes} B/cycle at steady "
                f"state but grants at most {mem.bytes_per_cycle}; "
                "certified windows assume full grants, so this design "
                "cannot be statically scheduled",
                obj=f"bank{bank}",
                fix="spread the buffers over more banks or reduce the "
                    "vectorization width")
    budget = mem.num_banks * mem.bytes_per_cycle
    if total > budget:
        yield Diagnostic(
            "FB402", Severity.ERROR,
            f"aggregate DRAM demand {total} B/cycle exceeds the "
            f"pooled budget {budget} ({mem.num_banks} banks x "
            f"{mem.bytes_per_cycle} B)", obj="dram")


@register("rates", "min-depths")
def check_min_depths(plan: PlanIR, ctx) -> Iterable[Diagnostic]:
    """FB403: exact minimal deadlock-free depths on reconvergent pairs."""
    for (a, b), nodes, chans, capacity, required in \
            min_depth_requirements(plan):
        if capacity >= required:
            continue
        name = chans[0] if chans else "?"
        yield Diagnostic(
            "FB403", Severity.ERROR,
            f"reconvergent kernels {a!r} -> {b!r}: branch "
            f"{' -> '.join(nodes)} buffers {capacity} elements but the "
            f"sibling branch defers {required} before its first output; "
            f"the minimal deadlock-free branch depth is {required}",
            edge=(a, b),
            fix=f"raise channel {name!r} depth by >= "
                f"{required - capacity} (minimal deadlock-free depth "
                f"{required})")
