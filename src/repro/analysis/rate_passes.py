"""SDF rate analysis over an engine's ``StaticPattern`` ports (FB4xx).

A design whose kernels all carry executable
:class:`~repro.fpga.pattern.StaticPattern`\\ s is a synchronous-dataflow
graph with access patterns (SDF-AP): each kernel fires at initiation
interval ``ii`` moving ``lanes`` elements per port per firing.  These
passes treat it as such and prove, before cycle 0, everything the bulk
tier currently discovers by probing at runtime:

* **FB404** — certifiability: a kernel without an executable pattern (or
  with ``ii != 1``) has no static firing rule, so no whole-program
  schedule exists;
* **FB400** — rate consistency: the balance equations
  ``q_p * lanes_p = q_c * lanes_c`` must admit a repetition vector, and
  on a single-clock ``ii=1`` fabric that vector must be *uniform*
  (every kernel fires every cycle) — mismatched lanes on a channel make
  the pipeline structurally non-periodic;
* **FB401** — token conservation: declared per-port element totals must
  agree across each channel, otherwise one side starves (or is left
  holding undeliverable elements) after the common prefix drains;
* **FB402** — bandwidth feasibility: the steady-state DRAM demand
  implied by the patterns' :class:`~repro.fpga.pattern.DramTraffic`
  descriptors must fit each bank's per-cycle budget (and the pooled
  budget), since a certified superstep assumes every burst is granted in
  full — exactly the Table II arithmetic of the resource lint, applied
  per bank;
* **FB403** — minimal deadlock-free depths: for reconvergent pattern
  paths, the non-deferring branch must buffer the sibling branch's
  reordering window (the sum of its kernels' pattern ``defer``).  This
  tightens the two-sided FB002/FB003 prover to an exact bound: the
  inferred minimum *is* the paper's reconvergence depth (``N * T_N`` for
  ATAX), with no unproven staging-margin band.

Only channels whose producer *and* consumer both name them in pattern
ports participate in FB400/FB401 — a single-sided edge (e.g. a
reduction's event-stepped epilogue push) is dynamic by construction and
is left to the runtime checks.

The passes live in their own ``"rates"`` registry;
:func:`repro.analysis.analyze_rates` runs them, and
:func:`repro.analysis.schedule.certify` compiles a
:class:`~repro.analysis.schedule.StaticSchedule` when they all pass.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from .diagnostics import Diagnostic, Severity
from .graphs import disjoint_paths, reconvergent_pairs
from .passes import register


# ---------------------------------------------------------------------------
# Shared structure extraction
# ---------------------------------------------------------------------------

def pattern_ports(engine):
    """Port maps from pattern declarations (not ``add_kernel`` lint
    annotations — patterns are the executable contract).

    Returns ``(producers, consumers)``; each maps a channel object to a
    list of ``(kernel, lanes, total_elements_or_None)`` tuples (write
    latency is resolved separately where needed).
    """
    producers: Dict[object, List[Tuple]] = {}
    consumers: Dict[object, List[Tuple]] = {}
    for k in engine.kernels.values():
        p = k.pattern
        if p is None:
            continue
        for (ch, w), total in zip(p.reads, p.read_totals):
            consumers.setdefault(ch, []).append((k, w, total))
        for (ch, w, _lat), total in zip(p.writes, p.write_totals):
            producers.setdefault(ch, []).append((k, w, total))
    return producers, consumers


def both_sided_edges(engine):
    """Channels with exactly one pattern producer and one pattern
    consumer — the SDF edges the balance equations range over."""
    producers, consumers = pattern_ports(engine)
    edges = {}
    for ch, ps in producers.items():
        cs = consumers.get(ch)
        if cs is None or len(ps) != 1 or len(cs) != 1:
            continue
        (pk, pw, ptot), (ck, cw, ctot) = ps[0], cs[0]
        edges[ch] = (pk, pw, ptot, ck, cw, ctot)
    return edges


def solve_balance(engine):
    """Solve the SDF balance equations over the both-sided edges.

    Returns ``(q, conflicts)``: the repetition vector as
    ``{kernel_name: Fraction}`` (normalized so the smallest rate is 1)
    and the list of conflicting channels ``(ch, pk, ck, expected,
    got)``.  Kernels not touched by any both-sided edge get rate 1.
    """
    edges = both_sided_edges(engine)
    q: Dict[str, Fraction] = {}
    conflicts = []
    for ch, (pk, pw, _pt, ck, cw, _ct) in edges.items():
        qp = q.get(pk.name)
        qc = q.get(ck.name)
        if qp is None and qc is None:
            q[pk.name] = Fraction(1)
            q[ck.name] = Fraction(pw, cw)
        elif qc is None:
            q[ck.name] = qp * Fraction(pw, cw)
        elif qp is None:
            q[pk.name] = qc * Fraction(cw, pw)
        else:
            if qp * pw != qc * cw:
                conflicts.append((ch, pk, ck, qp * Fraction(pw, cw), qc))
    for k in engine.kernels.values():
        q.setdefault(k.name, Fraction(1))
    lo = min(q.values(), default=Fraction(1))
    if lo > 0:
        q = {name: v / lo for name, v in q.items()}
    return q, conflicts


def bank_demand(engine):
    """Steady-state DRAM demand in bytes/cycle from pattern traffic.

    Returns ``{(mem, bank): bytes_per_cycle}``; ``bank`` is ``None`` for
    interleaved buffers (drawing from the pooled budget).  Only
    pattern-declared traffic is visible — dynamic (ordered) memory
    kernels contribute nothing here, which FB404 surfaces separately.
    """
    demand: Dict[Tuple, int] = {}
    for k in engine.kernels.values():
        p = k.pattern
        if p is None:
            continue
        for d in p.dram:
            key = (d.mem, d.buf.bank)
            demand[key] = demand.get(key, 0) + d.elements * d.buf.itemsize
    return demand


def _pattern_kernel_graph(engine) -> nx.DiGraph:
    """Kernel graph over pattern ports, supplemented by ``add_kernel``
    annotations.

    An *executable* pattern declares only its steady-window ports (e.g.
    the row-tiles GEMV patterns just the matrix stream), so the full
    wiring needed by the FB403 reconvergence analysis comes from the
    union of pattern ports and per-call read/write annotations.
    Parallel channels aggregate as in the FB00x prover (``depth_lo`` =
    min depth, ``channels`` = names).
    """
    g = nx.DiGraph()
    g.add_nodes_from(k.name for k in engine.kernels.values()
                     if k.pattern is not None or k.annotated)

    def add(pk_name, ck_name, ch, lanes):
        if g.has_edge(pk_name, ck_name):
            data = g.edges[pk_name, ck_name]
            if ch.name in data["channels"]:
                return
            data["depth_lo"] = min(data["depth_lo"], ch.depth)
            data["lanes"] = max(data["lanes"], lanes)
            data["channels"].append(ch.name)
        else:
            g.add_edge(pk_name, ck_name, depth_lo=ch.depth, lanes=lanes,
                       channels=[ch.name])

    for ch, (pk, pw, _pt, ck, _cw, _ct) in both_sided_edges(engine).items():
        add(pk.name, ck.name, ch, pw)
    writers: Dict[str, List[Tuple]] = {}
    readers: Dict[str, List[str]] = {}
    for k in engine.kernels.values():
        for port in k.write_ports:
            writers.setdefault(port.channel.name, []).append(
                (k.name, port.channel, port.lanes))
        for ch in k.read_channels:
            readers.setdefault(ch.name, []).append(k.name)
    for name, ws in writers.items():
        rs = readers.get(name, ())
        if len(ws) != 1 or len(rs) != 1:
            continue
        (pk_name, ch, lanes), = ws
        add(pk_name, rs[0], ch, lanes)
    return g


def min_depth_requirements(engine):
    """Inferred minimal deadlock-free depth per reconvergent branch.

    Returns a list of ``(pair, branch_nodes, channels, capacity,
    required)`` tuples, one per branch of every reconvergent pattern
    pair whose sibling branch defers output (``required > 0``).
    """
    g = _pattern_kernel_graph(engine)
    if not nx.is_directed_acyclic_graph(g):
        return []                        # FB004 territory
    kernels = engine.kernels
    out = []
    for a, b in reconvergent_pairs(g):
        paths = disjoint_paths(g, a, b)
        stats = []
        for p in paths:
            pedges = list(zip(p[:-1], p[1:]))
            defer = 0
            for name in p[1:-1]:
                k = kernels[name]
                pat = k.pattern
                pdefer = getattr(pat, "defer", 0) if pat is not None else 0
                # A pattern declares only its steady-window ports, so the
                # add_kernel annotation may know the larger window.
                defer += max(pdefer, k.defer)
            stats.append({
                "nodes": p,
                "defer": defer,
                "capacity": sum(g.edges[e]["depth_lo"] for e in pedges),
                "channels": [c for e in pedges
                             for c in g.edges[e]["channels"]],
            })
        if all(s["defer"] == 0 for s in stats):
            continue
        for i, s in enumerate(stats):
            required = max(t["defer"] for j, t in enumerate(stats)
                           if j != i)
            if required > 0:
                out.append(((a, b), s["nodes"], s["channels"],
                            s["capacity"], required))
    return out


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------

@register("rates", "certifiable")
def check_certifiable(engine, ctx) -> Iterable[Diagnostic]:
    """FB404: every kernel needs an executable ii=1 StaticPattern."""
    for k in engine.kernels.values():
        p = k.pattern
        if p is None:
            yield Diagnostic(
                "FB404", Severity.ERROR,
                f"kernel {k.name!r} carries no StaticPattern; its firing "
                "behaviour is dynamic and cannot be scheduled statically",
                obj=k.name,
                fix="wrap the generator in PatternedGenerator with an "
                    "executable StaticPattern")
        elif p._ready is None:
            yield Diagnostic(
                "FB404", Severity.ERROR,
                f"kernel {k.name!r} has a declare-only pattern (ports "
                "documented, no block executor); the fast path can never "
                "engage for it", obj=k.name,
                fix="supply ready=/block= so the pattern is executable")
        elif p.ii != 1:
            yield Diagnostic(
                "FB404", Severity.ERROR,
                f"kernel {k.name!r} initiates every {p.ii} cycles; "
                "whole-program windows require ii == 1", obj=k.name)


@register("rates", "rates")
def check_rates(engine, ctx) -> Iterable[Diagnostic]:
    """FB400: balance equations must yield a uniform repetition vector."""
    edges = both_sided_edges(engine)
    producers, consumers = pattern_ports(engine)
    for ch, ps in producers.items():
        if len(ps) > 1:
            yield Diagnostic(
                "FB400", Severity.ERROR,
                f"channel {ch.name!r} has {len(ps)} pattern producers; "
                "SDF edges are single-producer", obj=ch.name)
    for ch, cs in consumers.items():
        if len(cs) > 1:
            yield Diagnostic(
                "FB400", Severity.ERROR,
                f"channel {ch.name!r} has {len(cs)} pattern consumers; "
                "SDF edges are single-consumer", obj=ch.name)
    q, conflicts = solve_balance(engine)
    for ch, pk, ck, expected, got in conflicts:
        yield Diagnostic(
            "FB400", Severity.ERROR,
            f"channel {ch.name!r}: balance equations are inconsistent — "
            f"propagation forces rate {expected} on {ck.name!r} but its "
            f"other edges force {got}; no repetition vector exists",
            edge=(pk.name, ck.name), obj=ch.name)
    if not conflicts:
        for ch, (pk, pw, _pt, ck, cw, _ct) in edges.items():
            if pw != cw:
                yield Diagnostic(
                    "FB400", Severity.ERROR,
                    f"channel {ch.name!r}: producer {pk.name!r} pushes "
                    f"{pw} lanes/cycle but consumer {ck.name!r} pops "
                    f"{cw}; the repetition vector "
                    f"({ck.name}: {q[ck.name]} firings per {pk.name} "
                    "firing) is not uniform, so no single-clock ii=1 "
                    "steady state exists",
                    edge=(pk.name, ck.name), obj=ch.name,
                    fix=f"match the lanes (width) on {ch.name!r}")


@register("rates", "tokens")
def check_tokens(engine, ctx) -> Iterable[Diagnostic]:
    """FB401: per-channel element totals must conserve."""
    for ch, (pk, _pw, ptot, ck, _cw, ctot) in both_sided_edges(
            engine).items():
        if ptot is None or ctot is None or ptot == ctot:
            continue
        if ptot < ctot:
            yield Diagnostic(
                "FB401", Severity.ERROR,
                f"channel {ch.name!r}: consumer {ck.name!r} expects "
                f"{ctot} elements but producer {pk.name!r} emits only "
                f"{ptot}; the consumer starves after the common prefix",
                edge=(pk.name, ck.name), obj=ch.name)
        else:
            yield Diagnostic(
                "FB401", Severity.ERROR,
                f"channel {ch.name!r}: producer {pk.name!r} emits {ptot} "
                f"elements but consumer {ck.name!r} accepts only {ctot}; "
                f"the surplus {ptot - ctot} accumulate until the channel "
                "back-pressures the producer forever",
                edge=(pk.name, ck.name), obj=ch.name)


@register("rates", "bandwidth")
def check_bandwidth(engine, ctx) -> Iterable[Diagnostic]:
    """FB402: steady DRAM demand must fit every bank budget in full."""
    demand = bank_demand(engine)
    pooled: Dict[int, Tuple[object, int]] = {}
    for (mem, bank), nbytes in sorted(
            demand.items(), key=lambda kv: (id(kv[0][0]), -1 if kv[0][1]
                                            is None else kv[0][1])):
        mid = id(mem)
        prev = pooled.get(mid, (mem, 0))[1]
        pooled[mid] = (mem, prev + nbytes)
        if bank is None:
            continue
        if nbytes > mem.bytes_per_cycle:
            yield Diagnostic(
                "FB402", Severity.ERROR,
                f"DRAM bank {bank} must move {nbytes} B/cycle at steady "
                f"state but grants at most {mem.bytes_per_cycle}; "
                "certified windows assume full grants, so this design "
                "cannot be statically scheduled",
                obj=f"bank{bank}",
                fix="spread the buffers over more banks or reduce the "
                    "vectorization width")
    for mid, (mem, total) in pooled.items():
        budget = mem.num_banks * mem.bytes_per_cycle
        if total > budget:
            yield Diagnostic(
                "FB402", Severity.ERROR,
                f"aggregate DRAM demand {total} B/cycle exceeds the "
                f"pooled budget {budget} ({mem.num_banks} banks x "
                f"{mem.bytes_per_cycle} B)", obj="dram")


@register("rates", "min-depths")
def check_min_depths(engine, ctx) -> Iterable[Diagnostic]:
    """FB403: exact minimal deadlock-free depths on reconvergent pairs."""
    for (a, b), nodes, chans, capacity, required in \
            min_depth_requirements(engine):
        if capacity >= required:
            continue
        name = chans[0] if chans else "?"
        yield Diagnostic(
            "FB403", Severity.ERROR,
            f"reconvergent kernels {a!r} -> {b!r}: branch "
            f"{' -> '.join(nodes)} buffers {capacity} elements but the "
            f"sibling branch defers {required} before its first output; "
            f"the minimal deadlock-free branch depth is {required}",
            edge=(a, b),
            fix=f"raise channel {name!r} depth by >= "
                f"{required - capacity} (minimal deadlock-free depth "
                f"{required})")
