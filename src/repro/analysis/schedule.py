"""Certified whole-program static schedules.

When every FB4xx rate pass in :mod:`repro.analysis.rate_passes` comes
back clean, the design's steady state is fully determined before cycle
0: every kernel fires every cycle at its declared lanes, every DRAM
burst is granted in full, and every reconvergent branch has the buffer
capacity its sibling's reordering window needs.  :func:`certify`
compiles that proof into a typed :class:`StaticSchedule` artifact — the
fill / steady-window / drain phase plan per kernel, the per-channel
minimal depths, the per-bank byte budget, and a two-sided predicted
cycle band from the ``C = L + II * M`` pipeline model.

Certification is a **PlanIR -> StaticSchedule** pass: the subject is
compiled once through :func:`repro.plan.compile_plan` (live engines are
coerced at the boundary) and both the rate passes and the schedule
builder consume only the typed plan.  :func:`ensure_certified` memoizes
on :attr:`~repro.plan.PlanIR.plan_key` — a structural SHA-256 that
includes the device-catalog identity of the plan's memory, so
rebuilding the same composition for a new problem instance reuses the
certificate while a schedule certified on one device is never replayed
on another.

``Engine(mode="certified")`` calls :func:`ensure_certified` before
running and then executes through
:class:`~repro.fpga.bulk.CertifiedScheduler`, which replays steady
windows against the certificate with **no** runtime probing,
fingerprinting, or cooldown fallback — the O(channels) phase-alignment
check replaces the bulk tier's speculative probe entirely.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from ..models.performance import certified_cycle_band
from ..plan import PlanIR, PlanKernel, as_plan
from .diagnostics import (
    SCHEDULE_SCHEMA,
    AnalysisResult,
    Diagnostic,
    Severity,
)
from .passes import run_passes
from .rate_passes import (
    bank_demand,
    both_sided_edges,
    min_depth_requirements,
    solve_balance,
)

__all__ = [
    "ChannelPlan", "KernelSchedule", "PhaseSegment", "StaticSchedule",
    "certify", "ensure_certified", "schedule_key",
]


@dataclass(frozen=True)
class PhaseSegment:
    """One phase of a kernel's static execution plan."""

    kind: str                    # "fill" | "steady" | "drain"
    cycles: int                  # length of one repetition, in cycles
    repetitions: int = 1


@dataclass(frozen=True)
class KernelSchedule:
    """Per-kernel phase plan plus the steady-state deltas the replay
    engine applies per cycle without simulating."""

    kernel: str
    lanes: int                   # elements moved per port per firing
    iterations: Optional[int]    # steady firings M (None = data-dependent)
    latency: int
    ii: int
    segments: Tuple[PhaseSegment, ...]
    dram_bytes_per_cycle: int = 0
    stall_free: bool = True      # certified steady windows never stall


@dataclass(frozen=True)
class ChannelPlan:
    """Per-channel capacity plan: configured vs. inferred-minimal depth
    and the steady occupancy delta (zero — F(S) == S)."""

    channel: str
    depth: int
    min_depth: int
    lanes: int
    producer: str
    consumer: str
    occupancy_delta: int = 0


@dataclass(frozen=True)
class StaticSchedule:
    """A certified whole-program schedule (``repro.schedule/1``)."""

    subject: str
    kernels: Tuple[KernelSchedule, ...]
    channels: Tuple[ChannelPlan, ...]
    repetition: Dict[str, int] = field(default_factory=dict)
    bank_bytes_per_cycle: Dict[str, int] = field(default_factory=dict)
    predicted_cycles: Tuple[int, int] = (0, 0)
    schema: str = SCHEDULE_SCHEMA

    def to_dict(self) -> dict:
        d = asdict(self)
        d["predicted_cycles"] = list(self.predicted_cycles)
        # schema first, for the same reasons as the analysis reports
        return {"schema": d.pop("schema"), **d}


def _kernel_lanes(k: PlanKernel) -> int:
    widths = [p.lanes for p in k.reads]
    widths += [p.lanes for p in k.writes]
    return max(widths, default=1)


def _kernel_iterations(k: PlanKernel, lanes: int) -> Optional[int]:
    totals = [p.total for p in k.reads + k.writes if p.total is not None]
    if not totals or lanes < 1:
        return None
    return max(-(-t // lanes) for t in totals)


def _build_schedule(plan: PlanIR) -> StaticSchedule:
    """Compile the certificate.  Only called once the rate passes have
    all passed, so every kernel has an executable ii=1 pattern."""
    q, _conflicts = solve_balance(plan)
    edges = both_sided_edges(plan)

    # Per-channel minimal depths: lanes by default, the reconvergence
    # window where the FB403 analysis found one.
    min_depths: Dict[str, int] = {}
    for _pair, _nodes, chans, _cap, required in \
            min_depth_requirements(plan):
        for name in chans:
            min_depths[name] = max(min_depths.get(name, 0), required)

    kernels = []
    for k in plan.kernels:
        lanes = _kernel_lanes(k)
        m = _kernel_iterations(k, lanes)
        dram = sum(t.elements * t.itemsize for t in k.dram)
        segments = (PhaseSegment("fill", k.latency),
                    PhaseSegment("steady", k.pattern_ii,
                                 m if m is not None else 0),
                    PhaseSegment("drain", k.latency))
        kernels.append(KernelSchedule(
            kernel=k.name, lanes=lanes, iterations=m, latency=k.latency,
            ii=k.pattern_ii, segments=segments, dram_bytes_per_cycle=dram))

    channels = []
    for ch, (pk, pw, _pt, ck, _cw, _ct) in edges.items():
        channels.append(ChannelPlan(
            channel=ch, depth=plan.depth_of(ch),
            min_depth=min_depths.get(ch, pw), lanes=pw,
            producer=pk, consumer=ck))

    banks = {("dram" if bank is None else f"bank{bank}"): nbytes
             for bank, nbytes in bank_demand(plan).items()}

    lo, hi = certified_cycle_band(
        latencies=[ks.latency for ks in kernels],
        iis=[ks.ii for ks in kernels],
        iterations=[ks.iterations for ks in kernels],
        lanes=[ks.lanes for ks in kernels])

    return StaticSchedule(
        subject=plan.subject,
        kernels=tuple(kernels),
        channels=tuple(sorted(channels, key=lambda c: c.channel)),
        repetition={name: int(v) for name, v in sorted(q.items())},
        bank_bytes_per_cycle=banks,
        predicted_cycles=(lo, hi))


def certify(subject) -> Tuple[AnalysisResult, Optional[StaticSchedule]]:
    """Run the FB4xx rate passes; compile a schedule when they pass.

    ``subject`` may be an engine, an MDAG, or an already-compiled
    :class:`~repro.plan.PlanIR`.  Returns ``(result, schedule)`` —
    ``schedule`` is ``None`` when any error-severity diagnostic fired.
    A clean run appends the FB405 certificate diagnostic so reports
    show *why* the design was allowed into certified mode.
    """
    plan = as_plan(subject)
    result = run_passes("rates", plan, {}, subject_name=plan.subject)
    if not result.ok:
        return result, None
    schedule = _build_schedule(plan)
    lo, hi = schedule.predicted_cycles
    result.diagnostics.append(Diagnostic(
        "FB405", Severity.INFO,
        f"design certified: whole-program static schedule exists "
        f"({len(schedule.kernels)} kernels, uniform repetition vector, "
        f"predicted {lo}..{hi} cycles)"))
    return result, schedule


def schedule_key(subject) -> str:
    """Structural fingerprint of a composition: the plan's ``plan_key``.

    Two designs with the same kernel/pattern/channel shape *on the same
    device* share their certificate even when the payload data differs —
    totals are part of the key because they fix the steady repetition
    counts, and the memory's device-catalog identity is part of the key
    so a certificate never crosses device boundaries.
    """
    return as_plan(subject).plan_key


def ensure_certified(subject, cache: Optional[dict] = None
                     ) -> StaticSchedule:
    """Certify ``subject`` or raise; memoized on ``cache`` when given.

    This is the entry point ``Engine(mode="certified")`` uses: a design
    that fails any rate pass raises
    :class:`~repro.analysis.diagnostics.AnalysisError` carrying the full
    diagnostic list, *before* any cycle is simulated.  The cache is
    keyed on :attr:`~repro.plan.PlanIR.plan_key`.
    """
    plan = as_plan(subject)
    key = plan.plan_key if cache is not None else None
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    result, schedule = certify(plan)
    if schedule is None:
        result.raise_if_errors()
    if cache is not None:
        cache[key] = schedule
    return schedule
