"""Certified whole-program static schedules.

When every FB4xx rate pass in :mod:`repro.analysis.rate_passes` comes
back clean, the design's steady state is fully determined before cycle
0: every kernel fires every cycle at its declared lanes, every DRAM
burst is granted in full, and every reconvergent branch has the buffer
capacity its sibling's reordering window needs.  :func:`certify`
compiles that proof into a typed :class:`StaticSchedule` artifact — the
fill / steady-window / drain phase plan per kernel, the per-channel
minimal depths, the per-bank byte budget, and a two-sided predicted
cycle band from the ``C = L + II * M`` pipeline model.

``Engine(mode="certified")`` calls :func:`ensure_certified` before
running and then executes through
:class:`~repro.fpga.bulk.CertifiedScheduler`, which replays steady
windows against the certificate with **no** runtime probing,
fingerprinting, or cooldown fallback — the O(channels) phase-alignment
check replaces the bulk tier's speculative probe entirely.  Schedules
are structural, so :func:`ensure_certified` caches them by a key over
(kernel, pattern, channel-depth) shape: rebuilding the same composition
for a new problem instance reuses the certificate.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from ..models.performance import certified_cycle_band
from .diagnostics import (
    SCHEDULE_SCHEMA,
    AnalysisResult,
    Diagnostic,
    Severity,
)
from .passes import run_passes
from .rate_passes import (
    bank_demand,
    both_sided_edges,
    min_depth_requirements,
    solve_balance,
)

__all__ = [
    "ChannelPlan", "KernelSchedule", "PhaseSegment", "StaticSchedule",
    "certify", "ensure_certified", "schedule_key",
]


@dataclass(frozen=True)
class PhaseSegment:
    """One phase of a kernel's static execution plan."""

    kind: str                    # "fill" | "steady" | "drain"
    cycles: int                  # length of one repetition, in cycles
    repetitions: int = 1


@dataclass(frozen=True)
class KernelSchedule:
    """Per-kernel phase plan plus the steady-state deltas the replay
    engine applies per cycle without simulating."""

    kernel: str
    lanes: int                   # elements moved per port per firing
    iterations: Optional[int]    # steady firings M (None = data-dependent)
    latency: int
    ii: int
    segments: Tuple[PhaseSegment, ...]
    dram_bytes_per_cycle: int = 0
    stall_free: bool = True      # certified steady windows never stall


@dataclass(frozen=True)
class ChannelPlan:
    """Per-channel capacity plan: configured vs. inferred-minimal depth
    and the steady occupancy delta (zero — F(S) == S)."""

    channel: str
    depth: int
    min_depth: int
    lanes: int
    producer: str
    consumer: str
    occupancy_delta: int = 0


@dataclass(frozen=True)
class StaticSchedule:
    """A certified whole-program schedule (``repro.schedule/1``)."""

    subject: str
    kernels: Tuple[KernelSchedule, ...]
    channels: Tuple[ChannelPlan, ...]
    repetition: Dict[str, int] = field(default_factory=dict)
    bank_bytes_per_cycle: Dict[str, int] = field(default_factory=dict)
    predicted_cycles: Tuple[int, int] = (0, 0)
    schema: str = SCHEDULE_SCHEMA

    def to_dict(self) -> dict:
        d = asdict(self)
        d["predicted_cycles"] = list(self.predicted_cycles)
        # schema first, for the same reasons as the analysis reports
        return {"schema": d.pop("schema"), **d}


def _kernel_lanes(pattern) -> int:
    widths = [w for _ch, w in pattern.reads]
    widths += [w for _ch, w, _lat in pattern.writes]
    return max(widths, default=1)


def _kernel_iterations(pattern, lanes: int) -> Optional[int]:
    totals = [t for t in pattern.read_totals + pattern.write_totals
              if t is not None]
    if not totals or lanes < 1:
        return None
    return max(-(-t // lanes) for t in totals)


def _build_schedule(engine, subject: str) -> StaticSchedule:
    """Compile the certificate.  Only called once the rate passes have
    all passed, so every kernel has an executable ii=1 pattern."""
    q, _conflicts = solve_balance(engine)
    edges = both_sided_edges(engine)

    # Per-channel minimal depths: lanes by default, the reconvergence
    # window where the FB403 analysis found one.
    min_depths: Dict[str, int] = {}
    for _pair, _nodes, chans, _cap, required in \
            min_depth_requirements(engine):
        for name in chans:
            min_depths[name] = max(min_depths.get(name, 0), required)

    per_kernel_dram: Dict[str, int] = {}
    kernels = []
    for k in engine.kernels.values():
        p = k.pattern
        lanes = _kernel_lanes(p)
        m = _kernel_iterations(p, lanes)
        dram = sum(d.elements * d.buf.itemsize for d in p.dram)
        per_kernel_dram[k.name] = dram
        segments = (PhaseSegment("fill", k.latency),
                    PhaseSegment("steady", p.ii, m if m is not None else 0),
                    PhaseSegment("drain", k.latency))
        kernels.append(KernelSchedule(
            kernel=k.name, lanes=lanes, iterations=m, latency=k.latency,
            ii=p.ii, segments=segments, dram_bytes_per_cycle=dram))

    channels = []
    for ch, (pk, pw, _pt, ck, _cw, _ct) in edges.items():
        channels.append(ChannelPlan(
            channel=ch.name, depth=ch.depth,
            min_depth=min_depths.get(ch.name, pw), lanes=pw,
            producer=pk.name, consumer=ck.name))

    banks = {("dram" if bank is None else f"bank{bank}"): nbytes
             for (_mem, bank), nbytes in bank_demand(engine).items()}

    lo, hi = certified_cycle_band(
        latencies=[ks.latency for ks in kernels],
        iis=[ks.ii for ks in kernels],
        iterations=[ks.iterations for ks in kernels],
        lanes=[ks.lanes for ks in kernels])

    return StaticSchedule(
        subject=subject,
        kernels=tuple(kernels),
        channels=tuple(sorted(channels, key=lambda c: c.channel)),
        repetition={name: int(v) for name, v in sorted(q.items())},
        bank_bytes_per_cycle=banks,
        predicted_cycles=(lo, hi))


def certify(engine) -> Tuple[AnalysisResult, Optional[StaticSchedule]]:
    """Run the FB4xx rate passes; compile a schedule when they pass.

    Returns ``(result, schedule)`` — ``schedule`` is ``None`` when any
    error-severity diagnostic fired.  A clean run appends the FB405
    certificate diagnostic so reports show *why* the design was allowed
    into certified mode.
    """
    subject = f"engine({len(engine.kernels)} kernels)"
    result = run_passes("rates", engine, {}, subject_name=subject)
    if not result.ok:
        return result, None
    schedule = _build_schedule(engine, subject)
    lo, hi = schedule.predicted_cycles
    result.diagnostics.append(Diagnostic(
        "FB405", Severity.INFO,
        f"design certified: whole-program static schedule exists "
        f"({len(schedule.kernels)} kernels, uniform repetition vector, "
        f"predicted {lo}..{hi} cycles)"))
    return result, schedule


def schedule_key(engine) -> tuple:
    """Structural fingerprint of a composition.

    Two engines with the same kernel/pattern/channel shape share their
    certificate even when the payload data differs — totals are part of
    the key because they fix the steady repetition counts.
    """
    kparts = []
    for k in engine.kernels.values():
        p = k.pattern
        if p is None:
            kparts.append((k.name, k.latency, k.ii, None))
            continue
        kparts.append((
            k.name, k.latency, k.ii,
            tuple((ch.name, w) for ch, w in p.reads),
            tuple((ch.name, w, lat) for ch, w, lat in p.writes),
            p.read_totals, p.write_totals, p.ii,
            getattr(p, "defer", 0), p._ready is not None))
    chparts = tuple(sorted((ch.name, ch.depth)
                           for ch in engine.channels.values()))
    return tuple(kparts), chparts


def ensure_certified(engine, cache: Optional[dict] = None) -> StaticSchedule:
    """Certify ``engine`` or raise; memoized on ``cache`` when given.

    This is the entry point ``Engine(mode="certified")`` uses: a design
    that fails any rate pass raises
    :class:`~repro.analysis.diagnostics.AnalysisError` carrying the full
    diagnostic list, *before* any cycle is simulated.
    """
    key = schedule_key(engine) if cache is not None else None
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    result, schedule = certify(engine)
    if schedule is None:
        result.raise_if_errors()
    if cache is not None:
        cache[key] = schedule
    return schedule
