"""Command-line entry point for the static design checker.

Mirrors ``python -m repro.codegen``: a routine-specification JSON in,
diagnostics out.  ``--demo`` instead analyzes the paper's canonical
invalid composition (the ATAX reconvergence of Sec. V-B) at three stages:
unsized, window-known-but-undersized, and fixed.

Usage::

    python -m repro.analysis routines.json [--device stratix10] [--json]
    python -m repro.analysis --app atax [--sarif]
    python -m repro.analysis --app bicg --plan
    python -m repro.analysis --demo
    python -m repro.analysis --list-codes

Exit status: **0** when no error-severity diagnostic was found, **1**
when at least one was (or, with ``--strict``, any warning), **2** on
usage errors (unknown arguments, unreadable spec files, or combining
``--json`` with ``--sarif``).
"""

from __future__ import annotations

import argparse
import sys

from . import CODES, AnalysisResult, analyze_mdag, analyze_specs

#: Sec. V applications the ``--app`` flag can analyze pre-flight.
APPS = ("axpydot", "atax", "bicg", "gemver")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically check FBLAS designs: routine specs, "
                    "resource fit, MDAG validity, and SDF rates.")
    parser.add_argument("spec", nargs="?",
                        help="routine specification JSON file")
    parser.add_argument("--demo", action="store_true",
                        help="analyze the ATAX reconvergence demo instead "
                             "of a spec file")
    parser.add_argument("--app", choices=APPS,
                        help="analyze a built-in Sec. V application MDAG "
                             "(axpydot additionally runs the FB4xx rate "
                             "passes over its streaming engine)")
    parser.add_argument("--device", choices=("arria10", "stratix10"),
                        help="check resource fit against this device")
    fmt = parser.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON (repro.analysis/1)")
    fmt.add_argument("--sarif", action="store_true",
                     help="emit SARIF 2.1.0 for CI code scanning")
    fmt.add_argument("--plan", action="store_true",
                     help="with --app: dump the compiled plan IR "
                          "(repro.plan/1 JSON) instead of diagnostics")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as failures")
    parser.add_argument("--list-codes", action="store_true",
                        help="print the diagnostic code table and exit")
    return parser


def _emit(result: AnalysisResult, as_json: bool,
          as_sarif: bool = False) -> None:
    if as_sarif:
        print(result.render_sarif())
    else:
        print(result.render_json() if as_json else result.render_text())


def _failed(result: AnalysisResult, strict: bool) -> bool:
    return bool(result.errors) or (strict and bool(result.warnings))


def run_demo(as_json: bool) -> int:
    """The worked ATAX example of Sec. V-B, in three acts."""
    from ..apps.atax import atax_mdag
    from ..models.iomodel import atax_min_channel_depth

    m = n = 64
    tile = 8
    window = atax_min_channel_depth(n, tile)

    mdag = atax_mdag(m, n, tile, tile)
    stages = []

    # Act 1: nothing known about the reordering window -> FB002.
    stages.append(("unsized reconvergence (no window known)",
                   analyze_mdag(mdag)))
    # Act 2: window known, default 64-deep channel -> FB003 with a fix.
    windows = {("read_A", "gemvT"): window}
    stages.append((f"window known ({window} elements), channel depth "
                   f"{mdag.depth('read_A', 'gemvT')}",
                   analyze_mdag(mdag, windows=windows)))
    # Act 3: apply the suggested fix -> FB008 certificate, no errors.
    mdag.required_depth("read_A", "gemvT", window)
    stages.append((f"after required_depth('read_A', 'gemvT', {window})",
                   analyze_mdag(mdag, windows=windows)))

    for title, result in stages:
        if not as_json:
            print(f"--- {title} ---")
        _emit(result, as_json)
        if not as_json:
            print()
    # The demo showcases an invalid composition: acts 1 and 2 must fail.
    if stages[0][1].ok or stages[1][1].ok or not stages[2][1].ok:
        print("demo invariant violated", file=sys.stderr)
        return 2
    print("demo: the unsized ATAX composition is invalid (exit 1); "
          "act 3 shows the fix.", file=sys.stderr)
    return 1


def analyze_app(name: str) -> AnalysisResult:
    """Analyze one of the Sec. V applications pre-flight.

    Every app contributes its MDAG analysis; AXPYDOT — the one whose
    streaming engine is fully patterned — additionally runs the FB4xx
    SDF rate passes (so a clean run shows the FB405 certificate).  The
    results merge into a single report so ``--json``/``--sarif`` emit
    one valid document.
    """
    import numpy as np

    from . import analyze_rates

    if name == "axpydot":
        from ..apps.axpydot import axpydot_mdag, build_axpydot_engine
        from ..host.context import FblasContext
        n = 1024
        result = analyze_mdag(axpydot_mdag(n))
        ctx = FblasContext()
        rng = np.random.default_rng(7)
        bufs = [ctx.copy_to_device(
            rng.standard_normal(n).astype(np.float32)) for _ in range(3)]
        eng, _out = build_axpydot_engine(ctx, *bufs, np.float32(0.5),
                                         width=8)
        rates = analyze_rates(eng)
        result.diagnostics.extend(rates.diagnostics)
        result.passes_run.extend(rates.passes_run)
        result.subject = f"axpydot (MDAG + {rates.subject})"
        return result
    if name == "atax":
        from ..apps.atax import atax_mdag
        result = analyze_mdag(atax_mdag(64, 64, 8, 8))
        result.subject = "atax MDAG"
        return result
    if name == "bicg":
        from ..apps.bicg import bicg_mdag
        result = analyze_mdag(bicg_mdag(64, 64, 8, 8))
        result.subject = "bicg MDAG"
        return result
    from ..apps.gemver import gemver_component1_mdag
    result = analyze_mdag(gemver_component1_mdag(64, 8))
    result.subject = "gemver component-1 MDAG"
    return result


def plan_for_app(name: str):
    """Compile one Sec. V application to its :class:`~repro.plan.PlanIR`.

    AXPYDOT compiles from its live streaming engine (the fully patterned
    design, so the plan carries ports, DRAM traffic, and memory
    identity); the other apps compile from their MDAGs through the
    scheduler, so the plan carries planned channel depths and I/O
    predictions.
    """
    import numpy as np

    from ..plan import compile_plan

    if name == "axpydot":
        from ..apps.axpydot import build_axpydot_engine
        from ..host.context import FblasContext
        n = 1024
        ctx = FblasContext()
        rng = np.random.default_rng(7)
        bufs = [ctx.copy_to_device(
            rng.standard_normal(n).astype(np.float32)) for _ in range(3)]
        eng, _out = build_axpydot_engine(ctx, *bufs, np.float32(0.5),
                                         width=8)
        return compile_plan(eng)
    if name == "atax":
        from ..apps.atax import atax_mdag
        return compile_plan(atax_mdag(64, 64, 8, 8))
    if name == "bicg":
        from ..apps.bicg import bicg_mdag
        return compile_plan(bicg_mdag(64, 64, 8, 8))
    from ..apps.gemver import gemver_component1_mdag
    return compile_plan(gemver_component1_mdag(64, 8))


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_codes:
        for code in sorted(CODES):
            print(f"{code}  {CODES[code]}")
        return 0
    if args.demo:
        return run_demo(args.json)
    if args.plan:
        if not args.app:
            print("error: --plan requires --app", file=sys.stderr)
            return 2
        print(plan_for_app(args.app).to_json())
        return 0
    if args.app:
        result = analyze_app(args.app)
        _emit(result, args.json, args.sarif)
        return 1 if _failed(result, args.strict) else 0
    if not args.spec:
        print("error: provide a spec file, --app, --demo, or --list-codes",
              file=sys.stderr)
        return 2

    from ..codegen.spec import SpecError, load_spec
    from ..fpga.device import DEVICES

    try:
        specs = load_spec(args.spec)
    except (SpecError, FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    device = DEVICES[args.device] if args.device else None
    result = analyze_specs(specs, device=device)
    _emit(result, args.json, args.sarif)
    return 1 if _failed(result, args.strict) else 0


if __name__ == "__main__":           # pragma: no cover - exercised via CLI
    try:
        sys.exit(main())
    except BrokenPipeError:          # e.g. `... --list-codes | head`
        sys.exit(0)
