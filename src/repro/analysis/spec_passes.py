"""Lint and resource-fit passes over codegen routine specifications.

:class:`~repro.codegen.spec.RoutineSpec` already rejects *malformed*
specifications at parse time; these passes catch the next tier — specs
that parse fine but synthesize badly (FB2xx) or do not fit the target
device at all (FB1xx, checked against the Table II catalogs in
:mod:`repro.fpga.device` via the Table I/III calibration in
:mod:`repro.fpga.resources`).

``ctx`` keys consulted:

``device``
    A :class:`~repro.fpga.device.FpgaDevice`; without one the resource
    passes are skipped and only the device-independent lint runs.
"""

from __future__ import annotations

from typing import Iterable, List

from ..blas.routines import info
from ..fpga.resources import (
    ResourceUsage,
    gemm_systolic_resources,
    interface_module_resources,
    level1_resources,
    level2_resources,
)
from .diagnostics import Diagnostic, Severity
from .passes import register

#: Utilization above which FB102 warns (routing congestion derates
#: frequency well before 100%, see FrequencyModel).
HIGH_UTILIZATION = 0.85


def estimate_spec_resources(spec, device=None) -> ResourceUsage:
    """Resource estimate for one routine spec plus its DRAM interfaces."""
    ri = info(spec.blas_name)
    if ri.level == 1:
        usage = level1_resources(ri.inner_class, spec.width, spec.precision,
                                 include_overhead=True, device=device)
    elif spec.blas_name == "gemm" and spec.systolic_rows:
        usage = gemm_systolic_resources(
            spec.systolic_rows, spec.systolic_cols,
            spec.tile_n_size or spec.systolic_rows,
            spec.tile_m_size or spec.systolic_cols,
            spec.precision, device=device)
    else:
        tile = max(spec.tile_n_size, spec.tile_m_size)
        usage = level2_resources(spec.width, tile, spec.precision,
                                 device=device)
    ports = len(ri.inputs) + len(ri.outputs)
    return usage + interface_module_resources().scaled(ports)


@register("spec", "lint")
def check_spec_lint(specs, ctx) -> Iterable[Diagnostic]:
    """FB201/FB202: non-functional parameters that synthesize badly."""
    for spec in specs:
        if spec.width & (spec.width - 1):
            yield Diagnostic(
                "FB201", Severity.WARNING,
                f"{spec.user_name}: vectorization width {spec.width} is "
                "not a power of two; memory coalescing and the reduction "
                "tree both degrade",
                obj=spec.user_name,
                fix=f"use width {1 << (spec.width.bit_length() - 1)} or "
                    f"{1 << spec.width.bit_length()}")
        if spec.tiled and (spec.tile_n_size % spec.width
                           or spec.tile_m_size % spec.width):
            yield Diagnostic(
                "FB202", Severity.ERROR,
                f"{spec.user_name}: tile sizes "
                f"{spec.tile_n_size}x{spec.tile_m_size} are not multiples "
                f"of the vectorization width {spec.width}; the streaming "
                "inner loop cannot consume a tile row in whole batches",
                obj=spec.user_name,
                fix="pick tile sizes divisible by the width (or shrink "
                    "the width)")


@register("spec", "resources")
def check_resource_fit(specs, ctx) -> Iterable[Diagnostic]:
    """FB100..FB103: will the requested modules fit the device?"""
    device = ctx.get("device")
    if device is None:
        return
    total = ResourceUsage(0, 0, 0, 0)
    for spec in specs:
        usage = estimate_spec_resources(spec, device)
        total = total + usage
        yield Diagnostic(
            "FB100", Severity.INFO,
            f"{spec.user_name}: ~{usage.luts} LUT, {usage.ffs} FF, "
            f"{usage.m20ks} M20K, {usage.dsps} DSP on {device.name}",
            obj=spec.user_name)
        if spec.precision == "double" and not device.hardened_double:
            yield Diagnostic(
                "FB103", Severity.INFO,
                f"{spec.user_name}: {device.name} has no hardened "
                "double-precision DSPs; the datapath is emulated at "
                "roughly 4 DSPs and 10x the soft logic per lane",
                obj=spec.user_name)
    util = total.utilization(device)
    budget = device.available
    detail = (f"{total.alms}/{budget.alms} ALM, {total.ffs}/{budget.ffs} "
              f"FF, {total.m20ks}/{budget.m20ks} M20K, "
              f"{total.dsps}/{budget.dsps} DSP")
    if util > 1.0:
        yield Diagnostic(
            "FB101", Severity.ERROR,
            f"the {len(list(specs))} requested module(s) need "
            f"{util:.0%} of {device.name}'s busiest resource "
            f"({detail}); the design cannot place",
            obj=device.name,
            fix="reduce widths/tile sizes/systolic grid, drop routines, "
                "or target a larger device")
    elif util > HIGH_UTILIZATION:
        yield Diagnostic(
            "FB102", Severity.WARNING,
            f"estimated utilization {util:.0%} of {device.name} "
            f"({detail}); timing closure will derate the clock",
            obj=device.name)


def estimate_total_resources(specs: List, device) -> ResourceUsage:
    """Summed estimate used by reports and tests."""
    total = ResourceUsage(0, 0, 0, 0)
    for spec in specs:
        total = total + estimate_spec_resources(spec, device)
    return total
