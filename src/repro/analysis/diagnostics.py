"""Diagnostic objects with stable codes, and reporters.

Every problem the static analyzer can find carries a *stable* ``FBxxx``
code, so tests, CI pipelines and users can match on codes instead of
message text.  Codes are grouped by family:

* ``FB0xx`` — graph validity (signatures, buffering, cycles, wiring);
* ``FB1xx`` — resource fit against a device catalog (Table II);
* ``FB2xx`` — routine-specification lint (non-functional parameters);
* ``FB3xx`` — analysis coverage notes;
* ``FB4xx`` — SDF rate analysis and static-schedule certification.

The full table lives in :data:`CODES`; README.md documents it with worked
examples.

Machine-readable reports are versioned: :meth:`AnalysisResult.render_json`
emits a ``repro.analysis/1`` document (mirroring ``repro.metrics/1`` and
``repro.hangreport/1``) and :meth:`AnalysisResult.render_sarif` emits
SARIF 2.1.0 for CI code-scanning annotation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, Tuple

from ..fpga.errors import ReproError


class Severity(IntEnum):
    """How bad a diagnostic is.  Orderable: ``ERROR > WARNING > INFO``."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


#: Stable diagnostic codes -> one-line description.
CODES: Dict[str, str] = {
    "FB001": "stream signature mismatch (element count or order) on an edge",
    "FB002": "reconvergent vertex pair without proven-sufficient buffering",
    "FB003": "channel depth insufficient for the reordering window "
             "(proven deadlock)",
    "FB004": "cycle in the module/kernel graph",
    "FB005": "compute-module replay (only interface modules can re-emit "
             "past data)",
    "FB006": "dangling channel (missing producer or consumer)",
    "FB007": "channel with multiple writers or readers (channels are "
             "single-producer/single-consumer)",
    "FB008": "reconvergent pair proven safe (depth certificate)",
    "FB100": "per-module resource estimate",
    "FB101": "device resource over-subscription",
    "FB102": "high device utilization (above 85% of the busiest resource)",
    "FB103": "double precision is emulated (no hardened DSP support)",
    "FB201": "vectorization width is not a power of two",
    "FB202": "tile size is not a multiple of the vectorization width",
    "FB301": "kernel without port annotations (pre-flight coverage is "
             "partial)",
    "FB104": "per-channel DRAM bandwidth over-subscription (steady-state "
             "demand exceeds one channel's share of the Table II budget)",
    "FB105": "memory placement conflict (out-of-range channel, or a "
             "channel over-subscribed only because several buffers "
             "share it)",
    "FB400": "SDF rate mismatch on a channel (balance equations have no "
             "consistent repetition vector)",
    "FB401": "unbounded accumulation or structural starvation (declared "
             "token totals disagree across a channel)",
    "FB402": "steady-state DRAM bandwidth demand is infeasible for the "
             "memory model's per-cycle budget",
    "FB403": "channel depth below the inferred minimal deadlock-free "
             "depth of a reconvergent pattern pair",
    "FB500": "service admission: malformed request (argument, shape or "
             "dtype validation failed before any design was built)",
    "FB404": "kernel not certifiable for static scheduling (no "
             "executable StaticPattern, or ii != 1)",
    "FB405": "design certified: a whole-program StaticSchedule exists",
}

#: Version header for machine-readable analyzer reports.
ANALYSIS_SCHEMA = "repro.analysis/1"

#: Version header for certified static-schedule artifacts.  Compiled
#: plan dumps carry ``repro.plan/1`` (:data:`repro.plan.PLAN_SCHEMA`) —
#: the plan is the *input* artifact the rate passes consume, the
#: schedule the *output* certificate they produce.
SCHEDULE_SCHEMA = "repro.schedule/1"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    Attributes
    ----------
    code:
        Stable ``FBxxx`` identifier (a key of :data:`CODES`).
    severity:
        :class:`Severity` level; only errors fail a pre-flight check.
    message:
        Human-readable description of this specific instance.
    obj:
        Name of the module/kernel/channel/spec concerned, if any.
    edge:
        ``(src, dst)`` pair for edge-level findings, if any.
    fix:
        Actionable suggestion, when the analyzer can compute one (e.g. the
        minimum safe channel depth for FB003).
    """

    code: str
    severity: Severity
    message: str
    obj: Optional[str] = None
    edge: Optional[Tuple[str, str]] = None
    fix: Optional[str] = None

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def format(self) -> str:
        where = ""
        if self.edge is not None:
            where = f" [{self.edge[0]} -> {self.edge[1]}]"
        elif self.obj is not None:
            where = f" [{self.obj}]"
        fix = f"\n    fix: {self.fix}" if self.fix else ""
        return (f"{self.code} {self.severity.label}{where}: "
                f"{self.message}{fix}")

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "obj": self.obj,
            "edge": list(self.edge) if self.edge else None,
            "fix": self.fix,
        }


@dataclass
class AnalysisResult:
    """Every diagnostic one analyzer run produced, plus reporters."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    passes_run: List[str] = field(default_factory=list)
    subject: str = ""

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was emitted."""
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def extend(self, diags) -> None:
        self.diagnostics.extend(diags)

    def raise_if_errors(self) -> "AnalysisResult":
        """Raise :class:`AnalysisError` when any error was found."""
        if self.errors:
            raise AnalysisError(self)
        return self

    # -- reporters ---------------------------------------------------------
    def render_text(self, min_severity: Severity = Severity.INFO) -> str:
        shown = [d for d in self.diagnostics if d.severity >= min_severity]
        subject = f" for {self.subject}" if self.subject else ""
        lines = [f"static analysis{subject}: "
                 f"{len(self.errors)} error(s), {len(self.warnings)} "
                 f"warning(s), {len(self.infos)} info"]
        for d in sorted(shown, key=lambda d: (-d.severity, d.code)):
            lines.append("  " + d.format().replace("\n", "\n  "))
        if not shown:
            lines.append("  no diagnostics")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps({
            "schema": ANALYSIS_SCHEMA,
            "subject": self.subject,
            "ok": self.ok,
            "passes_run": self.passes_run,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }, indent=2)

    def render_sarif(self) -> str:
        """Render as a SARIF 2.1.0 log (one run, one result per finding).

        The stable FBxxx codes become SARIF rule ids so code-scanning
        UIs can group and suppress by code; ``obj``/``edge`` locations
        are carried as logical locations (the designs have no source
        files to point at).
        """
        levels = {Severity.ERROR: "error", Severity.WARNING: "warning",
                  Severity.INFO: "note"}
        rules = []
        for code in sorted({d.code for d in self.diagnostics}):
            rules.append({
                "id": code,
                "shortDescription": {"text": CODES[code]},
            })
        results = []
        for d in self.diagnostics:
            res: dict = {
                "ruleId": d.code,
                "level": levels[d.severity],
                "message": {"text": d.message + (f" (fix: {d.fix})"
                                                 if d.fix else "")},
            }
            where = (f"{d.edge[0]} -> {d.edge[1]}" if d.edge
                     else d.obj)
            if where:
                res["locations"] = [{
                    "logicalLocations": [{"fullyQualifiedName": where}],
                }]
            results.append(res)
        return json.dumps({
            "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                        "sarif-spec/master/Schemata/sarif-schema-2.1.0"
                        ".json"),
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "repro.analysis",
                    "informationUri":
                        "https://github.com/spcl/FBLAS",
                    "rules": rules,
                }},
                "properties": {"subject": self.subject,
                               "passes_run": self.passes_run},
                "results": results,
            }],
        }, indent=2)


class AnalysisError(ReproError):
    """A pre-flight check found error-severity diagnostics.

    Raised *before* any cycle is simulated — the static counterpart of
    :class:`repro.fpga.engine.DeadlockError`.  Carries the full
    :class:`AnalysisResult` in ``result`` and the error list in
    ``diagnostics``.
    """

    def __init__(self, result: AnalysisResult):
        self.result = result
        self.diagnostics = result.errors
        codes = ", ".join(sorted({d.code for d in result.errors}))
        detail = "; ".join(d.format().replace("\n    ", " ")
                           for d in result.errors)
        super().__init__(
            f"pre-flight analysis failed with {len(result.errors)} "
            f"error(s) [{codes}]: {detail}")
