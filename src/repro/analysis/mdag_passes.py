"""Analyzer passes over MDAGs (the Sec. V validity questions).

These passes are the single source of truth for the checks that
:meth:`repro.streaming.mdag.MDAG.validate` and
:func:`repro.streaming.scheduler.plan_composition` used to implement
privately; both now consume the diagnostics emitted here.

``ctx`` keys consulted:

``windows``
    ``{(u, v): elements}`` — the producer's reordering window per edge,
    for reconvergent pairs the caller can bound (e.g. the ATAX bound
    ``N * T_N`` on the second GEMV's A channel).  With a window known the
    reconvergence check becomes a *prover*: the stored edge depth either
    certifies the composition (FB008) or proves the deadlock (FB003, with
    the minimum safe depth as the suggested fix).  Without one, the pair
    is reported as unproven (FB002), exactly the paper's "invalid for
    dynamic problem sizes" verdict.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from .diagnostics import Diagnostic, Severity
from .graphs import disjoint_paths, reconvergent_pairs
from .passes import register


@register("mdag", "acyclic")
def check_acyclic(mdag, ctx) -> Iterable[Diagnostic]:
    """FB004: an MDAG must be a DAG — a cycle of FIFOs stalls forever."""
    if not nx.is_directed_acyclic_graph(mdag.graph):
        cycle = nx.find_cycle(mdag.graph)
        path = " -> ".join(u for u, _v in cycle) + f" -> {cycle[-1][1]}"
        yield Diagnostic("FB004", Severity.ERROR,
                         f"MDAG contains a cycle: {path}")


@register("mdag", "signatures")
def check_signatures(mdag, ctx) -> Iterable[Diagnostic]:
    """FB001/FB005: every edge must move the same elements in the same
    order on both ends (Sec. V edge validity)."""
    for u, v, data in mdag.graph.edges(data=True):
        produces = data["produces"]
        consumes = data["consumes"]
        reason = produces.mismatch_reason(consumes)
        if reason is None:
            continue
        # Replay between two *compute* modules is never allowed: a compute
        # module cannot re-emit past data (Sec. V).  An interface module
        # can, by re-reading DRAM.
        if (mdag.kind(u) == "compute" and produces.total < consumes.total):
            yield Diagnostic(
                "FB005", Severity.ERROR,
                f"{u!r} -> {v!r}: consumer requires replayed data "
                f"({consumes.total} elements) that compute module {u!r} "
                f"only produces once ({produces.total}); replay is only "
                "possible from interface modules",
                edge=(u, v),
                fix=f"materialize the edge through DRAM (an interface can "
                    f"replay) or restructure so {u!r} emits the stream "
                    f"{consumes.total // max(produces.total, 1)} times")
        else:
            yield Diagnostic(
                "FB001", Severity.ERROR,
                f"{u!r} -> {v!r}: {reason}", edge=(u, v),
                fix="make the producer and consumer schedules agree "
                    "(same element count, same tiling order)")


@register("mdag", "reconvergence")
def check_reconvergence(mdag, ctx) -> Iterable[Diagnostic]:
    """FB002/FB003/FB008: buffering analysis of reconvergent pairs.

    For each pair joined by >= 2 vertex-disjoint paths, the composition
    only streams if some channel entering the reconvergence vertex buffers
    the producer's full reordering window (Sec. V-B, the ATAX case).
    """
    graph = mdag.graph
    if not nx.is_directed_acyclic_graph(graph):
        return
    windows = ctx.get("windows") or {}
    for a, b in reconvergent_pairs(graph):
        paths = disjoint_paths(graph, a, b)
        in_edges = sorted({(p[-2], b) for p in paths if len(p) >= 2})
        proven = None
        undersized = None
        for u, _b in in_edges:
            window = windows.get((u, b))
            if window is None:
                continue
            depth = graph.edges[u, b]["depth"]
            if depth >= window:
                proven = (u, b, window, depth)
                break
            if undersized is None:
                undersized = (u, b, window, depth)
        if proven is not None:
            u, _v, window, depth = proven
            yield Diagnostic(
                "FB008", Severity.INFO,
                f"reconvergent pair ({a!r}, {b!r}) is safe: channel "
                f"{u!r} -> {b!r} holds depth {depth} >= reordering "
                f"window {window}",
                edge=(a, b))
        elif undersized is not None:
            u, _v, window, depth = undersized
            yield Diagnostic(
                "FB003", Severity.ERROR,
                f"channel {u!r} -> {b!r} has depth {depth} but the "
                f"reconvergent pair ({a!r}, {b!r}) needs it to buffer the "
                f"full reordering window of {window} elements; the "
                "composition stalls forever",
                edge=(u, b),
                fix=f"required_depth({u!r}, {b!r}, {window}) — raise the "
                    f"channel depth to >= {window}")
        else:
            yield Diagnostic(
                "FB002", Severity.ERROR,
                f"two vertex-disjoint paths from {a!r} to {b!r}: valid "
                "only if a channel on one branch buffers the full "
                "reordering window (invalid for dynamic problem sizes)",
                edge=(a, b),
                fix="supply the reordering window (analyze_mdag(..., "
                    "windows=...)) and size the channel, or split the "
                    "MDAG via plan_composition()")
