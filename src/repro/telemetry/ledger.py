"""The correlated run ledger: one record per request, one id per trail.

Every instrumented request — a host-API call, an
:func:`~repro.streaming.executor.execute_plan` invocation, an
:meth:`~repro.fpga.engine.Engine.run` — mints a **run id** (a
correlation id) and appends a structured :class:`RunRecord` (schema
``repro.runrecord/1``) on completion.  The id threads through every
artifact the request produces: the span (and therefore the Chrome
trace), the per-run SimReport summary, the
:class:`~repro.fpga.errors.HangReport` a hung run raises, the
:class:`~repro.faults.recovery.RecoveryOutcome` the recovery ladder
records, and fault-campaign rows — so "what happened to request X?"
is one join instead of archaeology across disconnected files.

Correlation is a plain stack (:func:`correlate` pushes,
:func:`current_run_id` peeks): the simulator is single-threaded, so the
innermost open request is always the ambient parent.  Records form a
tree through :attr:`RunRecord.parent_id` — ``host.call`` →
``execute_plan`` → ``engine.run``.

Storage is a bounded in-memory ring (:class:`RunLedger`) plus an
optional size-rotated JSONL sink, so long-lived sessions neither grow
without bound nor lose the durable trail.  :class:`LedgerQuery` slices
and aggregates records (p50/p95/max, cache hit rates, per-plan
grouping) and detects **band regressions**: certified runs carry the
:class:`~repro.analysis.StaticSchedule` predicted cycle band, and a
measured run exceeding its band's upper bound by more than the drift
threshold is flagged.  :func:`fleet_report` renders the fleet-style
text table the ``python -m repro.telemetry report`` CLI prints.

This module is deliberately **stdlib-only** (no :mod:`repro.fpga`
import): the engine imports :mod:`repro.telemetry.runtime` at module
scope, so the ledger classifies failure outcomes by exception class
*name* walked over the MRO instead of importing the error types.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (Any, Callable, Deque, Dict, Iterable, Iterator, List,
                    Optional, Tuple)

__all__ = [
    "RUN_RECORD_SCHEMA", "JsonlSink", "LedgerQuery", "RunLedger",
    "RunRecord", "classify_outcome", "correlate", "current_run_id",
    "fleet_report", "mint_run_id", "read_ledger", "run_scope",
]

#: Schema tag of every serialized :class:`RunRecord`.
RUN_RECORD_SCHEMA = "repro.runrecord/1"

#: Default ring-buffer capacity of a :class:`RunLedger`.
DEFAULT_CAPACITY = 4096

#: Default JSONL sink size before rotation (bytes).
DEFAULT_MAX_BYTES = 8_000_000

# -- correlation ids ---------------------------------------------------------

_SESSION_PREFIX = uuid.uuid4().hex[:8]
_SEQ = itertools.count(1)


class _RunIdStack(threading.local):
    """Per-thread correlation stack.

    The stack used to be a plain module list, which was correct while
    the simulator was strictly single-caller.  The service layer
    (:mod:`repro.service`) runs one request per *worker thread*, and a
    shared stack would interleave unrelated trails — thread-locality
    keeps "the innermost open request" a per-trail fact while leaving
    single-threaded behaviour byte-identical.
    """

    def __init__(self) -> None:
        self.items: List[str] = []

    def append(self, run_id: str) -> None:
        self.items.append(run_id)

    def pop(self) -> str:
        return self.items.pop()

    def peek(self) -> Optional[str]:
        return self.items[-1] if self.items else None


_STACK = _RunIdStack()


def mint_run_id() -> str:
    """A fresh correlation id: process-unique prefix + monotonic counter.

    ``itertools.count`` is handed out under the GIL atomically, so ids
    stay unique across concurrent service workers.
    """
    return f"r-{_SESSION_PREFIX}-{next(_SEQ):06d}"


def current_run_id() -> Optional[str]:
    """The innermost open request's run id, or None outside any scope.

    This is what forensics artifacts (:class:`HangReport`,
    :class:`RecoveryOutcome`, campaign rows) stamp so they join against
    the ledger row of the request that produced them.  Per-thread: a
    service worker's trail never leaks into another worker's records.
    """
    return _STACK.peek()


@contextmanager
def correlate(run_id: str) -> Iterator[str]:
    """Make ``run_id`` the ambient parent for the with-block."""
    _STACK.append(run_id)
    try:
        yield run_id
    finally:
        _STACK.pop()


# -- outcome classification --------------------------------------------------

#: Exception class *name* (checked over the MRO) -> outcome label.  Name
#: matching keeps this module free of :mod:`repro.fpga` imports — the
#: engine imports telemetry at module scope, not the other way around.
_OUTCOME_BY_TYPE: Dict[str, str] = {
    "DeadlockError": "deadlock",
    "LivelockError": "livelock",
    "TransientFaultError": "transient_fault",
    "FaultError": "fault",
    "AnalysisError": "rejected",
    # Service-layer outcomes: an expired wall-clock budget is a policy
    # decision (distinct from the deterministic "deadlock" proof), and a
    # full admission queue sheds load instead of buffering unboundedly.
    "DeadlineExceeded": "deadline",
    "ServiceOverload": "overload",
}


def classify_outcome(exc: BaseException) -> str:
    """Map an exception to a stable outcome label by MRO class names."""
    for klass in type(exc).__mro__:
        out = _OUTCOME_BY_TYPE.get(klass.__name__)
        if out is not None:
            return out
    return "error"


# -- the record --------------------------------------------------------------

@dataclass
class RunRecord:
    """One completed (or failed) request, in joinable form.

    Mutable on purpose: the instrumentation opens the record when the
    request starts and fills fields in as the layers below report back
    (cache deltas, the certified band, recovery actions), then the
    ledger freezes it into the ring/sink on completion.
    """

    run_id: str
    #: ``"host.call"`` | ``"execute_plan"`` | ``"engine.run"`` |
    #: ``"campaign.trial"`` — which layer minted the record.
    kind: str
    #: Enclosing request's run id (None for roots).
    parent_id: Optional[str] = None
    #: Routine / app / span label, e.g. ``"dot"`` or ``"app.atax"``.
    label: Optional[str] = None
    #: Multi-tenant attribution: which client/session submitted the
    #: request (service-layer requests always carry one; single-caller
    #: requests leave it None).
    tenant: Optional[str] = None
    engine_mode: Optional[str] = None
    #: Device catalog label the run's memory model was built from
    #: (e.g. ``"u280"``), when the engine had a DRAM model attached.
    device_label: Optional[str] = None
    #: :meth:`repro.fpga.memory.DramModel.placement_summary` snapshot —
    #: channel count and per-buffer placements at run time.
    memory: Optional[Dict[str, Any]] = None
    cycles: int = 0
    stall_cycles: int = 0
    kernel_steps: int = 0
    wall_seconds: float = 0.0
    #: Structural :func:`repro.plan.plan_key` of the executed plan.
    plan_key: Optional[str] = None
    #: Hex digest of the executor's structural MDAG fingerprint.
    mdag_fingerprint: Optional[str] = None
    #: Compiled-plan cache delta for this request: ``{"hits", "misses"}``.
    plan_cache: Optional[Dict[str, int]] = None
    #: Certificate (StaticSchedule) cache delta: ``{"hits", "misses"}``.
    schedule_cache: Optional[Dict[str, int]] = None
    #: Certified predicted cycle band ``(lo, hi)`` when one applied.
    predicted_cycles: Optional[Tuple[int, int]] = None
    #: Whether measured ``cycles`` landed inside the predicted band.
    in_band: Optional[bool] = None
    #: Bulk-tier superstep counters (windows / bulk_cycles / probes /
    #: cooldowns) when the run used the bulk or certified scheduler.
    bulk: Optional[Dict[str, int]] = None
    faults_injected: int = 0
    retries: int = 0
    demotions: int = 0
    #: :meth:`RecoveryOutcome.to_dict` of the recovery ladder, when one ran.
    recovery: Optional[Dict[str, Any]] = None
    #: ``"ok"`` or a failure label from :func:`classify_outcome`.
    outcome: str = "ok"
    #: Exception class name on failure.
    error: Optional[str] = None
    #: Free-form extras (app result digests, trial seeds, ...).
    extra: Dict[str, Any] = field(default_factory=dict)

    def band_check(self) -> None:
        """Derive :attr:`in_band` from the band and measured cycles."""
        if self.predicted_cycles is not None and self.cycles:
            lo, hi = self.predicted_cycles
            self.in_band = bool(lo <= self.cycles <= hi)

    def band_excess(self) -> Optional[float]:
        """Relative overshoot past the band's upper bound (None if n/a).

        0.0 means at-or-under the bound; 0.3 means 30% slower than the
        certified schedule promised — the regression signal
        :meth:`LedgerQuery.regressions` thresholds.
        """
        if self.predicted_cycles is None or not self.cycles:
            return None
        hi = self.predicted_cycles[1]
        if hi <= 0:
            return None
        return max(0.0, (self.cycles - hi) / hi)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": RUN_RECORD_SCHEMA,
            "run_id": self.run_id,
            "kind": self.kind,
            "parent_id": self.parent_id,
            "label": self.label,
            "tenant": self.tenant,
            "engine_mode": self.engine_mode,
            "device_label": self.device_label,
            "memory": dict(self.memory) if self.memory is not None else None,
            "cycles": self.cycles,
            "stall_cycles": self.stall_cycles,
            "kernel_steps": self.kernel_steps,
            "wall_seconds": self.wall_seconds,
            "plan_key": self.plan_key,
            "mdag_fingerprint": self.mdag_fingerprint,
            "plan_cache": (dict(self.plan_cache)
                           if self.plan_cache is not None else None),
            "schedule_cache": (dict(self.schedule_cache)
                               if self.schedule_cache is not None else None),
            "predicted_cycles": (list(self.predicted_cycles)
                                 if self.predicted_cycles is not None
                                 else None),
            "in_band": self.in_band,
            "bulk": dict(self.bulk) if self.bulk is not None else None,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "demotions": self.demotions,
            "recovery": (dict(self.recovery)
                         if self.recovery is not None else None),
            "outcome": self.outcome,
            "error": self.error,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunRecord":
        schema = d.get("schema", RUN_RECORD_SCHEMA)
        if schema != RUN_RECORD_SCHEMA:
            raise ValueError(
                f"not a {RUN_RECORD_SCHEMA} document: schema={schema!r}")
        pc = d.get("predicted_cycles")
        return cls(
            run_id=d["run_id"],
            kind=d["kind"],
            parent_id=d.get("parent_id"),
            label=d.get("label"),
            tenant=d.get("tenant"),
            engine_mode=d.get("engine_mode"),
            device_label=d.get("device_label"),
            memory=(dict(d["memory"])
                    if d.get("memory") is not None else None),
            cycles=int(d.get("cycles", 0)),
            stall_cycles=int(d.get("stall_cycles", 0)),
            kernel_steps=int(d.get("kernel_steps", 0)),
            wall_seconds=float(d.get("wall_seconds", 0.0)),
            plan_key=d.get("plan_key"),
            mdag_fingerprint=d.get("mdag_fingerprint"),
            plan_cache=(dict(d["plan_cache"])
                        if d.get("plan_cache") is not None else None),
            schedule_cache=(dict(d["schedule_cache"])
                            if d.get("schedule_cache") is not None else None),
            predicted_cycles=(int(pc[0]), int(pc[1])) if pc else None,
            in_band=d.get("in_band"),
            bulk=dict(d["bulk"]) if d.get("bulk") is not None else None,
            faults_injected=int(d.get("faults_injected", 0)),
            retries=int(d.get("retries", 0)),
            demotions=int(d.get("demotions", 0)),
            recovery=(dict(d["recovery"])
                      if d.get("recovery") is not None else None),
            outcome=d.get("outcome", "ok"),
            error=d.get("error"),
            extra=dict(d.get("extra", {})),
        )


# -- storage -----------------------------------------------------------------

class JsonlSink:
    """Append-only JSONL file with single-generation size rotation.

    When an append would push the file past ``max_bytes``, the current
    file is renamed to ``<path>.1`` (replacing any previous generation)
    and a fresh file is started — the durable trail is bounded at about
    ``2 * max_bytes`` on disk.  Writes open/append/close per record:
    ledger appends are per *request*, not per cycle, so durability wins
    over handle caching.

    Safe under concurrent writers: a per-append lock serializes the
    size check, the (atomic, :func:`os.replace`) rotation and the
    append itself, so service workers sharing one ledger file never
    produce interleaved/torn lines, lose a record into a just-rotated
    generation, or double-rotate.  Each line is also written in a
    single ``fh.write`` call, so even a foreign writer appending to the
    same file cannot split a record.
    """

    def __init__(self, path: str,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.rotations = 0
        self._lock = threading.Lock()
        self._size = (os.path.getsize(self.path)
                      if os.path.exists(self.path) else 0)

    def write(self, record: RunRecord) -> None:
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            if self._size and self._size + len(data) > self.max_bytes:
                os.replace(self.path, self.path + ".1")
                self.rotations += 1
                self._size = 0
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line)
            self._size += len(data)


def read_ledger(path: str) -> List[RunRecord]:
    """Parse a JSONL ledger file back into records (blank lines skipped)."""
    records: List[RunRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(RunRecord.from_dict(json.loads(line)))
            except (ValueError, KeyError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad ledger row: {exc}") from exc
    return records


class RunLedger:
    """Bounded in-memory ring of records plus the optional JSONL sink.

    Appends are serialized by an internal lock so concurrent service
    workers can share one ledger: the ring append, the running count
    and the sink write stay coherent, and ``deque(maxlen=...)``
    eviction never races a concurrent snapshot (readers copy the ring
    under the same lock).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 path: Optional[str] = None,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self._ring: Deque[RunRecord] = deque(maxlen=capacity)
        self._lock = threading.RLock()
        self.sink = JsonlSink(path, max_bytes) if path else None
        #: Total records ever appended (ring evictions included).
        self.appended = 0

    def append(self, record: RunRecord) -> RunRecord:
        record.band_check()
        with self._lock:
            self._ring.append(record)
            self.appended += 1
        if self.sink is not None:
            self.sink.write(record)
        return record

    def records(self) -> List[RunRecord]:
        with self._lock:
            return list(self._ring)

    def children(self, run_id: str) -> List[RunRecord]:
        """Records whose parent is ``run_id`` (direct children only)."""
        with self._lock:
            return [r for r in self._ring if r.parent_id == run_id]

    def find(self, run_id: str) -> Optional[RunRecord]:
        with self._lock:
            for r in self._ring:
                if r.run_id == run_id:
                    return r
        return None

    def query(self) -> "LedgerQuery":
        return LedgerQuery(self.records())

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[RunRecord]:
        # Iterate a snapshot: a deque raises RuntimeError when mutated
        # mid-iteration, and service workers append concurrently.
        return iter(self.records())

    def merge_children_into(self, rec: RunRecord) -> None:
        """Roll child records' facts up into a parent record.

        Stalls, kernel steps and fault counts sum over direct children;
        the certified band sums component bands (only when *every*
        cycle-bearing child carries one, so a partial band never
        masquerades as a whole-request promise).
        """
        kids = self.children(rec.run_id)
        if not kids:
            return
        if rec.stall_cycles == 0:
            rec.stall_cycles = sum(k.stall_cycles for k in kids)
        if rec.kernel_steps == 0:
            rec.kernel_steps = sum(k.kernel_steps for k in kids)
        if rec.faults_injected == 0:
            rec.faults_injected = sum(k.faults_injected for k in kids)
        if rec.predicted_cycles is None:
            # Only successful children promise cycles (a crashed attempt
            # that was retried contributes neither band nor a basis for
            # judging the request against one).
            ok = [k for k in kids if k.outcome == "ok"]
            banded = [k for k in ok if k.predicted_cycles is not None]
            cycled = [k for k in ok if k.cycles]
            bands = [k.predicted_cycles for k in banded
                     if k.predicted_cycles is not None]
            if bands and len(bands) == len(cycled):
                rec.predicted_cycles = (sum(b[0] for b in bands),
                                        sum(b[1] for b in bands))
        rec.band_check()


# -- querying ----------------------------------------------------------------

def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not ordered:
        return 0.0
    rank = max(1, -(-len(ordered) * q // 100))       # ceil(n*q/100)
    return ordered[int(rank) - 1]


class LedgerQuery:
    """Chainable filter/aggregate view over a set of records."""

    def __init__(self, records: Iterable[RunRecord]) -> None:
        self._records = list(records)

    @property
    def records(self) -> List[RunRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def filter(self, kind: Optional[str] = None,
               label: Optional[str] = None,
               tenant: Optional[str] = None,
               plan_key: Optional[str] = None,
               engine_mode: Optional[str] = None,
               outcome: Optional[str] = None,
               predicate: Optional[Callable[[RunRecord], bool]] = None,
               ) -> "LedgerQuery":
        out = self._records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if label is not None:
            out = [r for r in out if r.label == label]
        if tenant is not None:
            out = [r for r in out if r.tenant == tenant]
        if plan_key is not None:
            out = [r for r in out if r.plan_key == plan_key]
        if engine_mode is not None:
            out = [r for r in out if r.engine_mode == engine_mode]
        if outcome is not None:
            out = [r for r in out if r.outcome == outcome]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        return LedgerQuery(out)

    def aggregate(self, attr: str = "cycles") -> Dict[str, float]:
        """count/mean/p50/p95/max of a numeric record attribute."""
        values = sorted(float(getattr(r, attr)) for r in self._records)
        if not values:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "max": 0.0}
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "p50": _percentile(values, 50),
            "p95": _percentile(values, 95),
            "max": values[-1],
        }

    def hit_rate(self, which: str = "plan_cache") -> Optional[float]:
        """Aggregate cache hit rate (None when no lookups were recorded)."""
        hits = misses = 0
        for r in self._records:
            delta = getattr(r, which)
            if delta:
                hits += delta.get("hits", 0)
                misses += delta.get("misses", 0)
        total = hits + misses
        return hits / total if total else None

    def by_plan(self) -> Dict[str, "LedgerQuery"]:
        """Group records by plan_key ("-" buckets the keyless ones)."""
        groups: Dict[str, List[RunRecord]] = {}
        for r in self._records:
            groups.setdefault(r.plan_key or "-", []).append(r)
        return {k: LedgerQuery(v) for k, v in sorted(groups.items())}

    def by_device(self) -> Dict[str, "LedgerQuery"]:
        """Group records by device_label ("-" buckets the unlabeled).

        The device split of :meth:`by_plan`: percentile and
        band-regression comparisons only make sense within one memory
        model, so the fleet report renders its table per device when
        more than one appears in the set.
        """
        groups: Dict[str, List[RunRecord]] = {}
        for r in self._records:
            groups.setdefault(r.device_label or "-", []).append(r)
        return {k: LedgerQuery(v) for k, v in sorted(groups.items())}

    def by_tenant(self) -> Dict[str, "LedgerQuery"]:
        """Group records by tenant ("-" buckets the unattributed)."""
        groups: Dict[str, List[RunRecord]] = {}
        for r in self._records:
            groups.setdefault(r.tenant or "-", []).append(r)
        return {k: LedgerQuery(v) for k, v in sorted(groups.items())}

    def tenant_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant service-quality facts for the fleet report.

        For each tenant: request count, p50/p95 wall milliseconds,
        rejection rate (admission refusals over submissions), deadline
        and overload counts, and recovery activity (retries/demotions)
        — the numbers a per-tenant SLO dashboard would plot.
        """
        out: Dict[str, Dict[str, float]] = {}
        for tenant, group in self.by_tenant().items():
            n = len(group)
            walls = group.aggregate("wall_seconds")
            outcomes = group.outcomes()
            out[tenant] = {
                "requests": n,
                "ok": outcomes.get("ok", 0),
                "rejected": outcomes.get("rejected", 0),
                "rejection_rate": outcomes.get("rejected", 0) / n if n else 0,
                "deadline": outcomes.get("deadline", 0),
                "overload": outcomes.get("overload", 0),
                "p50_ms": walls["p50"] * 1e3,
                "p95_ms": walls["p95"] * 1e3,
                "retries": sum(r.retries for r in group.records),
                "demotions": sum(r.demotions for r in group.records),
            }
        return out

    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self._records:
            counts[r.outcome] = counts.get(r.outcome, 0) + 1
        return dict(sorted(counts.items()))

    def regressions(self, threshold: float = 0.25,
                    ) -> List[Tuple[RunRecord, float]]:
        """Runs whose measured cycles exceed their certified band's
        upper bound by more than ``threshold`` (relative), worst first."""
        out = []
        for r in self._records:
            excess = r.band_excess()
            if excess is not None and excess > threshold:
                out.append((r, excess))
        out.sort(key=lambda pair: -pair[1])
        return out

    def slowest(self, n: int = 5) -> List[RunRecord]:
        return sorted(self._records, key=lambda r: -r.cycles)[:n]


# -- the request scope -------------------------------------------------------

@contextmanager
def run_scope(ledger: Optional[RunLedger], kind: str,
              label: Optional[str] = None,
              tenant: Optional[str] = None,
              engine_mode: Optional[str] = None) -> Iterator[RunRecord]:
    """Open one ledger record around a request.

    Mints the run id, makes it the ambient parent (so nested scopes and
    forensics artifacts correlate), times the wall clock, classifies a
    raised exception into :attr:`RunRecord.outcome`, and appends the
    record — **also on failure** — when the block exits.
    """
    rec = RunRecord(run_id=mint_run_id(), kind=kind,
                    parent_id=current_run_id(), label=label,
                    tenant=tenant, engine_mode=engine_mode)
    t0 = time.perf_counter()
    _STACK.append(rec.run_id)
    try:
        yield rec
    except BaseException as exc:
        rec.outcome = classify_outcome(exc)
        rec.error = type(exc).__name__
        raise
    finally:
        _STACK.pop()
        rec.wall_seconds = time.perf_counter() - t0
        if ledger is not None:
            ledger.merge_children_into(rec)
            ledger.append(rec)


# -- fleet report ------------------------------------------------------------

def _fmt_rate(rate: Optional[float]) -> str:
    return "-" if rate is None else f"{rate:.0%}"


def fleet_report(records: Iterable[RunRecord],
                 threshold: float = 0.25, top: int = 5) -> str:
    """Render the fleet-style text table of a set of ledger records.

    Per plan_key: request counts, cache hit rates, cycle percentiles and
    the band-regression flag; then the slowest requests and the
    fault/recovery summary.  This is what
    ``python -m repro.telemetry report ledger.jsonl`` prints.
    """
    q = LedgerQuery(records)
    lines = [f"run ledger: {len(q)} records"]
    if not len(q):
        return "\n".join(lines + ["  (empty)"])
    by_kind: Dict[str, int] = {}
    for r in q.records:
        by_kind[r.kind] = by_kind.get(r.kind, 0) + 1
    lines[0] += (" (" + ", ".join(f"{k}: {n}"
                                  for k, n in sorted(by_kind.items())) + ")")

    # Percentiles and band comparisons are only meaningful within one
    # memory model, so the per-plan table splits by device when the set
    # spans more than one.
    by_device = q.by_device()
    for dev, dq in by_device.items():
        lines.append("")
        if len(by_device) > 1:
            lines.append(f"  device {dev}: {len(dq)} records")
        lines.append(f"  {'plan_key':14s} {'runs':>5s} {'plan$':>6s} "
                     f"{'cert$':>6s} {'p50 cy':>10s} {'p95 cy':>10s} "
                     f"{'max cy':>10s} {'band':>6s}")
        for key, group in dq.by_plan().items():
            agg = group.aggregate("cycles")
            regs = group.regressions(threshold)
            if regs:
                band = f"+{max(e for _r, e in regs):.0%}!"
            elif any(r.in_band for r in group.records):
                band = "ok"
            else:
                band = "-"
            shown = key[:12] + ".." if len(key) > 14 else key
            lines.append(
                f"  {shown:14s} {int(agg['count']):>5d} "
                f"{_fmt_rate(group.hit_rate('plan_cache')):>6s} "
                f"{_fmt_rate(group.hit_rate('schedule_cache')):>6s} "
                f"{agg['p50']:>10.0f} {agg['p95']:>10.0f} "
                f"{agg['max']:>10.0f} {band:>6s}")

    # Per-tenant service quality, when any record carries attribution.
    if any(r.tenant for r in q.records):
        lines.append("")
        lines.append(
            f"  {'tenant':12s} {'reqs':>5s} {'ok':>5s} {'rej%':>6s} "
            f"{'ddl':>4s} {'ovl':>4s} {'p50 ms':>8s} {'p95 ms':>8s} "
            f"{'retry':>6s} {'demote':>6s}")
        for tenant, row in q.tenant_summary().items():
            lines.append(
                f"  {tenant:12s} {int(row['requests']):>5d} "
                f"{int(row['ok']):>5d} {row['rejection_rate']:>6.0%} "
                f"{int(row['deadline']):>4d} {int(row['overload']):>4d} "
                f"{row['p50_ms']:>8.2f} {row['p95_ms']:>8.2f} "
                f"{int(row['retries']):>6d} {int(row['demotions']):>6d}")

    slow = q.slowest(top)
    if slow:
        lines.append("")
        lines.append(f"  slowest {len(slow)} requests:")
        for r in slow:
            lines.append(
                f"    {r.run_id}  {r.kind:12s} "
                f"{(r.label or '-'):16s} {r.cycles:>10d} cy  "
                f"{r.wall_seconds * 1e3:8.2f} ms  {r.outcome}")

    # Count fault/recovery totals over the set's *roots* only (records
    # whose parent is absent from the set): parents roll child counts
    # up, so summing every row would double-count.
    ids = {r.run_id for r in q.records}
    roots = [r for r in q.records
             if r.parent_id is None or r.parent_id not in ids]
    faults = sum(r.faults_injected for r in roots)
    retries = sum(r.retries for r in roots)
    demotions = sum(r.demotions for r in roots)
    lines.append("")
    lines.append(
        f"  faults injected: {faults}   retries: {retries}   "
        f"demotions: {demotions}   outcomes: "
        + ", ".join(f"{k}={n}" for k, n in q.outcomes().items()))
    n_reg = len(q.regressions(threshold))
    lines.append(
        f"  {n_reg} band regression{'s' if n_reg != 1 else ''} "
        f"(threshold {threshold:.0%})")
    return "\n".join(lines)
