"""The telemetry session: activation, the cycle clock, engine hookup.

One :class:`TelemetrySession` observes a whole host program.  It owns

* a :class:`~repro.telemetry.metrics.MetricsRegistry` all engine runs
  aggregate into,
* a :class:`~repro.telemetry.spans.SpanRecorder` on the session's
  *global cycle clock* — each engine run maps its local cycles onto a
  monotonically increasing cursor (run ``i+1`` starts where run ``i``
  ended), so host spans, composition spans and kernel slices share one
  coherent timeline,
* the per-run :class:`~repro.fpga.engine.SimReport` summaries
  (``session.runs``, in :meth:`SimReport.to_dict` schema) and the
  kernel :class:`~repro.telemetry.spans.Slice` list,
* the correlated :class:`~repro.telemetry.ledger.RunLedger`: every
  engine run (and, through the instrumented host API and executor,
  every request above it) mints a ``run_id`` and appends a
  :class:`~repro.telemetry.ledger.RunRecord` on completion.  The same
  id is stamped into the run's span (hence the Chrome trace), its
  SimReport summary, and any :class:`HangReport` /
  :class:`RecoveryOutcome` the run produces.

Activation is a context manager::

    from repro import telemetry

    with telemetry.session() as tel:
        axpydot_streaming(ctx, w, v, u, 0.7)
    print(tel.report())
    telemetry.write_chrome_trace(tel, "trace.json")

While a session is active, :meth:`Engine.run` (via a single
``active()`` check — the entire cost when telemetry is off) attaches a
:class:`~repro.telemetry.observers.MetricsObserver` and
:class:`~repro.telemetry.observers.SliceRecorder` for the duration of
the run and opens an ``engine.run`` span; the instrumented layers
(:mod:`repro.host.api`, :mod:`repro.streaming.executor`, the
:mod:`repro.apps` entry points) open their spans through the
module-level :func:`span` helper, which degrades to a shared no-op
context manager when no session is active.  The simulator is
single-threaded; so is the session.

**Ledger-lite mode.**  ``session(metrics=False, kernel_slices=False,
occupancy=False, ledger_path=...)`` attaches *no observers at all*:
the bulk/certified fast paths stay engaged (any attached observer
disables them by contract) and the per-run cost is O(kernels) record
assembly after the run, not per-cycle callbacks.  This is the
configuration the ledger-on overhead gate in
``benchmarks/test_telemetry_overhead.py`` holds at >= 90% of the
observer-off throughput baseline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import Any, ContextManager, Iterator, List, Optional, Tuple

from . import ledger as _ledger
from .ledger import RunLedger, RunRecord
from .metrics import MetricsRegistry
from .observers import MetricsObserver, SliceRecorder
from .spans import Slice, SpanRecorder

__all__ = ["TelemetrySession", "active", "session", "span"]

_NULL = nullcontext()
_ACTIVE: Optional["TelemetrySession"] = None

#: Bulk-tier introspection attributes rolled into each engine-run
#: ledger record (set per run by :class:`repro.fpga.bulk.BulkScheduler`).
_BULK_COUNTERS = (("windows", "_bulk_windows"),
                  ("bulk_cycles", "_bulk_cycles"),
                  ("probes", "_bulk_probes"),
                  ("cooldowns", "_bulk_cooldowns"))


def active() -> Optional["TelemetrySession"]:
    """The currently active session, or None.

    This is the only telemetry call on the no-telemetry hot path: the
    engine, host API and executor gate all instrumentation behind it.
    """
    return _ACTIVE


def span(name: str, cat: str = "host",
         **args: object) -> ContextManager[Any]:
    """Open a span on the active session; no-op context when inactive."""
    s = _ACTIVE
    if s is None:
        return _NULL
    return s.spans.span(name, cat, **args)


@contextmanager
def session(**kwargs: object) -> Iterator["TelemetrySession"]:
    """Activate a fresh :class:`TelemetrySession` for the with-block."""
    global _ACTIVE
    prev = _ACTIVE
    s = TelemetrySession(**kwargs)  # type: ignore[arg-type]
    _ACTIVE = s
    try:
        yield s
    finally:
        _ACTIVE = prev


class TelemetrySession:
    """Aggregates metrics, spans, slices, run summaries and the ledger.

    Parameters
    ----------
    kernel_slices:
        Record per-kernel work/stall timeline slices (the Perfetto leaf
        rows).  Costs the per-cycle kernel-state sweep; disable for
        metrics-only observation of very long runs.
    occupancy:
        Sample per-channel occupancy histograms every executed cycle.
    metrics:
        Attach the :class:`MetricsObserver` to every run.  Disabling it
        (together with ``kernel_slices``) leaves the engine entirely
        observer-free — the *ledger-lite* mode that keeps the
        bulk/certified fast paths engaged while still recording one
        :class:`RunRecord` per run.
    ledger_path:
        Optional JSONL sink path for the run ledger (size-rotated; see
        :class:`repro.telemetry.ledger.JsonlSink`).
    ledger_capacity:
        In-memory ring capacity of the ledger.
    """

    def __init__(self, kernel_slices: bool = True, occupancy: bool = True,
                 metrics: bool = True, ledger_path: Optional[str] = None,
                 ledger_capacity: int = _ledger.DEFAULT_CAPACITY) -> None:
        self.registry = MetricsRegistry()
        self.clock = 0
        self.spans = SpanRecorder(lambda: self.clock)
        self.slices: List[Slice] = []
        self.runs: List[dict] = []
        #: Point events (Chrome-trace ``"i"`` phase): injected faults,
        #: retries, demotions.  Each entry: name/cat/ts/run/args.
        self.instants: List[dict] = []
        self.kernel_slices = kernel_slices
        self.occupancy = occupancy
        self.metrics = metrics
        #: The correlated run ledger (ring + optional JSONL sink).
        self.ledger = RunLedger(capacity=ledger_capacity, path=ledger_path)
        self._run_seq = 0
        self._run_offset = 0
        self._profilers: List[Tuple[int, object]] = []

    def span(self, name: str, cat: str = "host",
             **args: object) -> ContextManager[Any]:
        return self.spans.span(name, cat, **args)

    def instant(self, name: str, cycle: Optional[int] = None,
                cat: str = "fault", **args: object) -> None:
        """Record a point event on the session timeline.

        With ``cycle`` (engine-local), the event lands inside the current
        engine run at that cycle (tagged with the run index, so the
        Chrome exporter places it on that run's process row); without, it
        lands on the host row at the current session clock.  The ambient
        run id (if any) is stamped into the event args so trace markers
        join against ledger rows.
        """
        if cycle is not None and self._run_seq:
            run: Optional[int] = self._run_seq - 1
            ts = self._run_offset + cycle
        else:
            run = None
            ts = self.clock
        args_d = dict(args)
        rid = _ledger.current_run_id()
        if rid is not None:
            args_d.setdefault("run_id", rid)
        self.instants.append({"name": name, "cat": cat, "ts": ts,
                              "run": run, "args": args_d})

    # -- engine hookup -------------------------------------------------------
    def _counter_total(self, name: str) -> float:
        m = self.registry.get(name)
        total = getattr(m, "total", None)
        return total() if callable(total) else 0.0

    @contextmanager
    def engine_run(self, engine: Any) -> Iterator["TelemetrySession"]:
        """Instrument one :meth:`Engine.run` (called by the engine).

        Attaches the run observers (when enabled), opens the
        ``engine.run`` span, mints the run's correlation id, and —
        crucially — advances the session clock by the cycles the run
        executed, even when the run raises (a deadlocked run still shows
        its partial timeline, ending at the deadlock cycle).  One
        :class:`RunRecord` is appended per run, success or failure, with
        the certificate-cache delta, the certified predicted band, the
        bulk superstep counters and the fault counter delta filled in.
        """
        idx = self._run_seq
        self._run_seq += 1
        t0 = engine.now
        offset = self.clock - t0
        self._run_offset = offset
        mo: Optional[MetricsObserver] = None
        attach: List[object] = []
        if self.metrics:
            mo = MetricsObserver(self.registry, run=idx,
                                 occupancy=self.occupancy)
            attach.append(mo)
        if self.kernel_slices:
            sl: Optional[SliceRecorder] = SliceRecorder(
                self.slices, offset=offset, run=idx)
            attach.append(sl)
        else:
            sl = None
        rec = RunRecord(run_id=_ledger.mint_run_id(), kind="engine.run",
                        parent_id=_ledger.current_run_id(),
                        label=f"engine.run[{idx}]",
                        engine_mode=engine.mode)
        mem = getattr(engine, "memory", None)
        if mem is not None:
            rec.device_label = getattr(mem, "device_label", None)
            summary = getattr(mem, "placement_summary", None)
            if callable(summary):
                rec.memory = summary()
        sp = self.spans.open(f"engine.run[{idx}]", cat="engine", run=idx,
                             run_id=rec.run_id, mode=engine.mode,
                             kernels=len(engine.kernels),
                             channels=len(engine.channels))
        sched_cache = getattr(engine, "_schedule_cache", None)
        stats = getattr(sched_cache, "stats", None)
        sc0 = stats() if callable(stats) else None
        faults0 = self._counter_total("faults_injected")
        wall0 = time.perf_counter()
        for o in attach:
            engine.add_observer(o)
        _ledger._STACK.append(rec.run_id)
        try:
            yield self
        except BaseException as exc:
            sp.args.setdefault("error", type(exc).__name__)
            rec.outcome = _ledger.classify_outcome(exc)
            rec.error = type(exc).__name__
            raise
        finally:
            _ledger._STACK.pop()
            for o in attach:
                try:
                    engine._observers.remove(o)
                except ValueError:      # pragma: no cover - defensive
                    pass
            end_t = engine.now
            if sl is not None:
                sl.finalize(end_t)
            self.clock = offset + end_t
            self.spans.close(sp, cycles=end_t - t0)
            if mo is not None:
                self._profilers.append((idx, mo.profiler))
            report_dict: Optional[dict] = None
            if mo is not None and mo.last_report is not None:
                report_dict = mo.last_report.to_dict()
            elif rec.error is None and not self.metrics:
                # Ledger-lite: no observer saw the run end; the engine's
                # own report builder is O(kernels) and side-effect free.
                try:
                    report_dict = engine._build_report().to_dict()
                except Exception:       # pragma: no cover - best-effort
                    report_dict = None
            if report_dict is not None:
                report_dict["run"] = idx
                report_dict["offset"] = offset + t0
                report_dict["run_id"] = rec.run_id
                self.runs.append(report_dict)
                rec.stall_cycles = report_dict["total_stall_cycles"]
                rec.kernel_steps = report_dict["kernel_steps"]
            rec.cycles = end_t - t0
            rec.wall_seconds = time.perf_counter() - wall0
            schedule = getattr(engine, "schedule", None)
            if schedule is not None:
                band = getattr(schedule, "predicted_cycles", None)
                if band is not None:
                    rec.predicted_cycles = (int(band[0]), int(band[1]))
            if sc0 is not None:
                sc1 = stats()
                rec.schedule_cache = {
                    "hits": sc1["hits"] - sc0["hits"],
                    "misses": sc1["misses"] - sc0["misses"]}
            rec.faults_injected = int(
                self._counter_total("faults_injected") - faults0)
            bulk = {label: getattr(engine, attr)
                    for label, attr in _BULK_COUNTERS
                    if hasattr(engine, attr)}
            if bulk:
                rec.bulk = bulk
            self.ledger.append(rec)

    # -- reporting -----------------------------------------------------------
    def report(self, top: int = 8) -> str:
        """Human-readable bottleneck report across all observed runs."""
        lines = ["telemetry report:"]
        if not self.runs:
            lines.append("  (no engine runs observed)")
        for d in self.runs:
            lines.append(
                f"  engine run {d['run']}: {d['cycles']} cycles, "
                f"kernel_steps={d['kernel_steps']}, "
                f"stall_cycles={d['total_stall_cycles']}")
            ranked = sorted(d["kernels"].items(),
                            key=lambda kv: -kv[1]["stall_cycles"])
            for name, ks in ranked[:top]:
                live = ks["active_cycles"] + ks["stall_cycles"]
                util = ks["active_cycles"] / live if live else 0.0
                lines.append(
                    f"    kernel {name:20s} util={util:6.1%} "
                    f"active={ks['active_cycles']} "
                    f"stalled={ks['stall_cycles']}")
            banks = [b for b in d.get("bank_stats", ())
                     if b["bytes_read"] or b["bytes_written"]
                     or b["denied_cycles"]]
            for b in banks:
                lines.append(
                    f"    dram bank {b['bank']}: "
                    f"read={b['bytes_read']}B write={b['bytes_written']}B "
                    f"busy={b['busy_cycles']}cy denied={b['denied_cycles']}")
        for idx, prof in self._profilers:
            if prof.stalls:
                lines.append(f"  run {idx} " + prof.report().replace(
                    "\n", "\n  "))
        return "\n".join(lines)

    def total_cycles(self) -> int:
        return sum(d["cycles"] for d in self.runs)
