"""The telemetry session: activation, the cycle clock, engine hookup.

One :class:`TelemetrySession` observes a whole host program.  It owns

* a :class:`~repro.telemetry.metrics.MetricsRegistry` all engine runs
  aggregate into,
* a :class:`~repro.telemetry.spans.SpanRecorder` on the session's
  *global cycle clock* — each engine run maps its local cycles onto a
  monotonically increasing cursor (run ``i+1`` starts where run ``i``
  ended), so host spans, composition spans and kernel slices share one
  coherent timeline,
* the per-run :class:`~repro.fpga.engine.SimReport` summaries
  (``session.runs``, in :meth:`SimReport.to_dict` schema) and the
  kernel :class:`~repro.telemetry.spans.Slice` list.

Activation is a context manager::

    from repro import telemetry

    with telemetry.session() as tel:
        axpydot_streaming(ctx, w, v, u, 0.7)
    print(tel.report())
    telemetry.write_chrome_trace(tel, "trace.json")

While a session is active, :meth:`Engine.run` (via a single
``active()`` check — the entire cost when telemetry is off) attaches a
:class:`~repro.telemetry.observers.MetricsObserver` and
:class:`~repro.telemetry.observers.SliceRecorder` for the duration of
the run and opens an ``engine.run`` span; the instrumented layers
(:mod:`repro.host.api`, :mod:`repro.streaming.executor`, the
:mod:`repro.apps` entry points) open their spans through the
module-level :func:`span` helper, which degrades to a shared no-op
context manager when no session is active.  The simulator is
single-threaded; so is the session.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import List, Optional, Tuple

from .metrics import MetricsRegistry
from .observers import MetricsObserver, SliceRecorder
from .spans import Slice, SpanRecorder

__all__ = ["TelemetrySession", "active", "session", "span"]

_NULL = nullcontext()
_ACTIVE: Optional["TelemetrySession"] = None


def active() -> Optional["TelemetrySession"]:
    """The currently active session, or None.

    This is the only telemetry call on the no-telemetry hot path: the
    engine, host API and executor gate all instrumentation behind it.
    """
    return _ACTIVE


def span(name: str, cat: str = "host", **args):
    """Open a span on the active session; no-op context when inactive."""
    s = _ACTIVE
    if s is None:
        return _NULL
    return s.spans.span(name, cat, **args)


@contextmanager
def session(**kwargs):
    """Activate a fresh :class:`TelemetrySession` for the with-block."""
    global _ACTIVE
    prev = _ACTIVE
    s = TelemetrySession(**kwargs)
    _ACTIVE = s
    try:
        yield s
    finally:
        _ACTIVE = prev


class TelemetrySession:
    """Aggregates metrics, spans, slices and run summaries.

    Parameters
    ----------
    kernel_slices:
        Record per-kernel work/stall timeline slices (the Perfetto leaf
        rows).  Costs the per-cycle kernel-state sweep; disable for
        metrics-only observation of very long runs.
    occupancy:
        Sample per-channel occupancy histograms every executed cycle.
    """

    def __init__(self, kernel_slices: bool = True, occupancy: bool = True):
        self.registry = MetricsRegistry()
        self.clock = 0
        self.spans = SpanRecorder(lambda: self.clock)
        self.slices: List[Slice] = []
        self.runs: List[dict] = []
        #: Point events (Chrome-trace ``"i"`` phase): injected faults,
        #: retries, demotions.  Each entry: name/cat/ts/run/args.
        self.instants: List[dict] = []
        self.kernel_slices = kernel_slices
        self.occupancy = occupancy
        self._run_seq = 0
        self._run_offset = 0
        self._profilers: List[Tuple[int, object]] = []

    def span(self, name: str, cat: str = "host", **args):
        return self.spans.span(name, cat, **args)

    def instant(self, name: str, cycle: Optional[int] = None,
                cat: str = "fault", **args) -> None:
        """Record a point event on the session timeline.

        With ``cycle`` (engine-local), the event lands inside the current
        engine run at that cycle (tagged with the run index, so the
        Chrome exporter places it on that run's process row); without, it
        lands on the host row at the current session clock.
        """
        if cycle is not None and self._run_seq:
            run = self._run_seq - 1
            ts = self._run_offset + cycle
        else:
            run = None
            ts = self.clock
        self.instants.append({"name": name, "cat": cat, "ts": ts,
                              "run": run, "args": dict(args)})

    # -- engine hookup -------------------------------------------------------
    @contextmanager
    def engine_run(self, engine):
        """Instrument one :meth:`Engine.run` (called by the engine).

        Attaches the run observers, opens the ``engine.run`` span, and —
        crucially — advances the session clock by the cycles the run
        executed, even when the run raises (a deadlocked run still shows
        its partial timeline, ending at the deadlock cycle).
        """
        idx = self._run_seq
        self._run_seq += 1
        t0 = engine.now
        offset = self.clock - t0
        self._run_offset = offset
        mo = MetricsObserver(self.registry, run=idx,
                             occupancy=self.occupancy)
        attach = [mo]
        if self.kernel_slices:
            sl = SliceRecorder(self.slices, offset=offset, run=idx)
            attach.append(sl)
        else:
            sl = None
        sp = self.spans.open(f"engine.run[{idx}]", cat="engine", run=idx,
                             mode=engine.mode, kernels=len(engine.kernels),
                             channels=len(engine.channels))
        for o in attach:
            engine.add_observer(o)
        try:
            yield self
        except BaseException as exc:
            sp.args.setdefault("error", type(exc).__name__)
            raise
        finally:
            for o in attach:
                try:
                    engine._observers.remove(o)
                except ValueError:      # pragma: no cover - defensive
                    pass
            end_t = engine.now
            if sl is not None:
                sl.finalize(end_t)
            self.clock = offset + end_t
            self.spans.close(sp, cycles=end_t - t0)
            self._profilers.append((idx, mo.profiler))
            if mo.last_report is not None:
                d = mo.last_report.to_dict()
                d["run"] = idx
                d["offset"] = offset + t0
                self.runs.append(d)

    # -- reporting -----------------------------------------------------------
    def report(self, top: int = 8) -> str:
        """Human-readable bottleneck report across all observed runs."""
        lines = ["telemetry report:"]
        if not self.runs:
            lines.append("  (no engine runs observed)")
        for d in self.runs:
            lines.append(
                f"  engine run {d['run']}: {d['cycles']} cycles, "
                f"kernel_steps={d['kernel_steps']}, "
                f"stall_cycles={d['total_stall_cycles']}")
            ranked = sorted(d["kernels"].items(),
                            key=lambda kv: -kv[1]["stall_cycles"])
            for name, ks in ranked[:top]:
                live = ks["active_cycles"] + ks["stall_cycles"]
                util = ks["active_cycles"] / live if live else 0.0
                lines.append(
                    f"    kernel {name:20s} util={util:6.1%} "
                    f"active={ks['active_cycles']} "
                    f"stalled={ks['stall_cycles']}")
            banks = [b for b in d.get("bank_stats", ())
                     if b["bytes_read"] or b["bytes_written"]
                     or b["denied_cycles"]]
            for b in banks:
                lines.append(
                    f"    dram bank {b['bank']}: "
                    f"read={b['bytes_read']}B write={b['bytes_written']}B "
                    f"busy={b['busy_cycles']}cy denied={b['denied_cycles']}")
        for idx, prof in self._profilers:
            if prof.stalls:
                lines.append(f"  run {idx} " + prof.report().replace(
                    "\n", "\n  "))
        return "\n".join(lines)

    def total_cycles(self) -> int:
        return sum(d["cycles"] for d in self.runs)
