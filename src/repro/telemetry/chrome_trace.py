"""Export a telemetry session as Chrome ``trace_event`` JSON.

The output loads directly in ``ui.perfetto.dev`` (or ``chrome://tracing``)
and uses the classic JSON trace format:

* **pid 1 / tid 1 — the host program.**  Every non-engine span (host
  routine calls, streaming compositions, plan components, app entry
  points) becomes a complete ``"X"`` event; nesting follows from
  containment, which the span stack guarantees.
* **pid 2+run — one process per engine run.**  The ``engine.run`` span
  itself becomes a ``"B"``/``"E"`` pair on tid 0, and every kernel of
  that run gets its own tid carrying its coalesced work/stall/sleep
  intervals as ``"X"`` slices.  ``"M"`` metadata events name the
  processes and threads so Perfetto shows ``engine run 0`` with one row
  per kernel.

Timestamps are simulated cycles on the session clock (the exporter
reports the timebase in ``otherData.timebase``); Perfetto will display
them as microseconds, which is harmless — relative durations are what
the timeline is for.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

__all__ = ["CHROME_TRACE_SCHEMA", "STATE_NAMES", "trace_events",
           "to_chrome_trace", "write_chrome_trace"]

#: Schema tag stamped into ``otherData`` of every exported trace.
CHROME_TRACE_SCHEMA = "repro.chrome-trace/1"

#: Kernel state codes -> human slice names ("-" == done is not emitted).
STATE_NAMES = {"#": "work", "s": "stall", "z": "sleep"}

_HOST_PID = 1
_ENGINE_PID_BASE = 2


def _engine_pid(run: int) -> int:
    return _ENGINE_PID_BASE + run


def trace_events(session: Any) -> List[dict]:
    """Render a :class:`~repro.telemetry.runtime.TelemetrySession` to a
    list of ``trace_event`` dicts (sorted by timestamp)."""
    meta: List[dict] = [{
        "ph": "M", "name": "process_name", "pid": _HOST_PID, "tid": 0,
        "args": {"name": "host"},
    }]
    events: List[dict] = []
    for span in session.spans.spans:
        end = span.end if span.end is not None else session.clock
        if span.cat == "engine":
            run = span.args.get("run", 0)
            pid = _engine_pid(run)
            meta.append({"ph": "M", "name": "process_name", "pid": pid,
                         "tid": 0, "args": {"name": f"engine run {run}"}})
            meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                         "tid": 0, "args": {"name": "run"}})
            events.append({"ph": "B", "name": span.name, "cat": span.cat,
                           "pid": pid, "tid": 0, "ts": span.start,
                           "args": dict(span.args)})
            events.append({"ph": "E", "pid": pid, "tid": 0, "ts": end})
        else:
            events.append({"ph": "X", "name": span.name, "cat": span.cat,
                           "pid": _HOST_PID, "tid": 1, "ts": span.start,
                           "dur": end - span.start,
                           "args": dict(span.args)})

    # Kernel slices: one tid per (run, kernel), allocated in first-seen
    # order so the Perfetto rows match the composition's kernel order.
    tids: Dict[Tuple[int, str], int] = {}
    for sl in session.slices:
        name = STATE_NAMES.get(sl.state)
        if name is None:                     # "-": kernel already done
            continue
        key = (sl.run, sl.kernel)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = sum(1 for k in tids if k[0] == sl.run) + 1
            meta.append({"ph": "M", "name": "thread_name",
                         "pid": _engine_pid(sl.run), "tid": tid,
                         "args": {"name": sl.kernel}})
        events.append({"ph": "X", "name": name, "cat": "kernel",
                       "pid": _engine_pid(sl.run), "tid": tid,
                       "ts": sl.start, "dur": sl.end - sl.start,
                       "args": {"kernel": sl.kernel, "state": sl.state}})

    # Instant events (injected faults, recovery actions): scoped "g"
    # (global) so Perfetto draws a full-height marker line.
    for ins in session.instants:
        run = ins.get("run")
        events.append({"ph": "i", "s": "g" if run is None else "p",
                       "name": ins["name"], "cat": ins.get("cat", "fault"),
                       "pid": _HOST_PID if run is None else _engine_pid(run),
                       "tid": 0 if run is not None else 1,
                       "ts": ins["ts"], "args": dict(ins.get("args", {}))})

    events.sort(key=lambda e: e["ts"])
    return meta + events


def to_chrome_trace(session: Any) -> dict:
    """The full JSON-object form of the trace."""
    return {
        "traceEvents": trace_events(session),
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": CHROME_TRACE_SCHEMA,
            "timebase": "simulated cycles",
            "runs": len(session.runs),
            "total_cycles": session.clock,
        },
    }


def write_chrome_trace(session: Any, path: str) -> dict:
    """Serialize the session's trace to ``path``; returns the object."""
    doc = to_chrome_trace(session)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc
