"""Engine observers that feed the telemetry session.

Two observers bridge the PR-2 engine event protocol
(:mod:`repro.fpga.observers`) into the telemetry data model:

:class:`MetricsObserver`
    Fills a :class:`~repro.telemetry.metrics.MetricsRegistry` with the
    attribution quantities the paper's evaluation reasons about:
    per-kernel achieved vs declared initiation interval, utilization,
    stall-cause breakdown (upstream-starved vs downstream-backpressured,
    reusing :class:`~repro.fpga.observers.StallChainProfiler`
    attribution), per-channel occupancy histograms, and per-DRAM-bank
    busy-cycles/bytes from the run's
    :attr:`~repro.fpga.engine.SimReport.bank_stats`.

:class:`SliceRecorder`
    Coalesces the per-cycle kernel states into
    :class:`~repro.telemetry.spans.Slice` intervals on the session
    clock — the leaf rows of the exported Perfetto timeline.

Both are attached per engine run by
:meth:`~repro.telemetry.runtime.TelemetrySession.engine_run` and detach
afterwards, so an engine with no active telemetry session never sees
them (the zero-cost-when-unused contract).

Both implement the :class:`~repro.fpga.observers.EngineObserver`
protocol structurally rather than by inheritance, and the profiler is
imported lazily: :mod:`repro.telemetry` must stay importable without
touching :mod:`repro.fpga` (the engine imports
:mod:`repro.telemetry.runtime` at module scope, and a module-level
import back into ``fpga`` would be a cycle).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry
from .spans import Slice

__all__ = ["MetricsObserver", "SliceRecorder", "STALL_CAUSES"]

#: Map from the :class:`~repro.fpga.kernel.BlockedState` kind to the
#: dimensioning vocabulary of Sec. IV-B: a kernel blocked *popping* is
#: starved by its producers (they, or DRAM, are the bottleneck); blocked
#: *pushing* it is backpressured by its consumers.
STALL_CAUSES = {"pop": "upstream-starved", "push": "downstream-backpressured"}


class MetricsObserver:
    """Record one engine run into a shared metrics registry.

    All series carry a ``run`` label so several engine runs in one
    session (a multi-component plan, a host program issuing many calls)
    stay distinguishable while counters still sum to session totals.
    """

    wants_kernel_states = True       # drives the stall-cause profiler

    def __init__(self, registry: MetricsRegistry, run: int = 0,
                 occupancy: bool = True) -> None:
        from ..fpga.observers import StallChainProfiler
        self.registry = registry
        self.run = run
        self.occupancy = occupancy
        self.profiler = StallChainProfiler()
        self.last_report: Optional[Any] = None
        self._engine: Optional[Any] = None

    # -- protocol forwarding -------------------------------------------------
    def on_run_start(self, engine: Any) -> None:
        self._engine = engine
        self.profiler.on_run_start(engine)

    def on_cycle(self, t: int) -> None:
        if self.occupancy:
            hist = self.registry.histogram(
                "channel.occupancy", "per-cycle FIFO occupancy samples")
            run = self.run
            for name, ch in self._engine.channels.items():
                hist.observe(ch.occupancy, run=run, channel=name)

    def on_kernel_state(self, t: int, kernel: Any, state: str) -> None:
        self.profiler.on_kernel_state(t, kernel, state)

    def on_channel_op(self, t: int, kernel: Any, channel: Any, kind: str,
                      count: int) -> None:
        self.profiler.on_channel_op(t, kernel, channel, kind, count)

    def on_quiet(self, start: int, cycles: int) -> None:
        self.profiler.on_quiet(start, cycles)
        if self.occupancy:
            hist = self.registry.histogram(
                "channel.occupancy", "per-cycle FIFO occupancy samples")
            run = self.run
            for name, ch in self._engine.channels.items():
                hist.observe(ch.occupancy, count=cycles, run=run,
                             channel=name)

    # -- aggregation ---------------------------------------------------------
    def on_run_end(self, report: Any) -> None:
        self.last_report = report
        reg, run = self.registry, self.run
        reg.counter("sim.cycles", "simulated cycles per engine run").inc(
            report.cycles, run=run)
        util = reg.gauge("kernel.utilization",
                         "fraction of live cycles a kernel did work")
        ii = reg.gauge("kernel.ii",
                       "initiation interval: declared (static) vs achieved "
                       "(live cycles per work cycle)")
        active = reg.counter("kernel.active_cycles",
                             "cycles a kernel performed work")
        stalled = reg.counter("kernel.stall_cycles",
                              "cycles a kernel was blocked on a channel")
        for name, k in report.kernels.items():
            s = k.stats
            live = s.active_cycles + s.stall_cycles
            active.inc(s.active_cycles, run=run, kernel=name)
            stalled.inc(s.stall_cycles, run=run, kernel=name)
            util.set(s.active_cycles / live if live else 0.0,
                     run=run, kernel=name)
            ii.set(float(getattr(k, "ii", 1)), run=run, kernel=name,
                   kind="declared")
            ii.set(live / s.active_cycles if s.active_cycles else 0.0,
                   run=run, kernel=name, kind="achieved")
        cause = reg.counter(
            "kernel.stall_cause_cycles",
            "stalled cycles attributed to a channel and direction")
        for kname, per_chan in self.profiler.stalls.items():
            for (chan, kind), cycles in per_chan.items():
                cause.inc(cycles, run=run, kernel=kname, channel=chan,
                          cause=STALL_CAUSES[kind])
        pushes = reg.counter("channel.pushes", "elements pushed")
        pops = reg.counter("channel.pops", "elements popped")
        push_stall = reg.counter("channel.push_stall_cycles",
                                 "producer cycles lost to a full FIFO")
        pop_stall = reg.counter("channel.pop_stall_cycles",
                                "consumer cycles lost to an empty FIFO")
        max_occ = reg.gauge("channel.max_occupancy",
                            "highwater FIFO occupancy")
        for name, ch in report.channels.items():
            st = ch.stats
            pushes.inc(st.pushes, run=run, channel=name)
            pops.inc(st.pops, run=run, channel=name)
            push_stall.inc(st.stalled_push_cycles, run=run, channel=name)
            pop_stall.inc(st.stalled_pop_cycles, run=run, channel=name)
            max_occ.set(st.max_occupancy, run=run, channel=name)
        if report.bank_stats:
            bbytes = reg.counter("dram.bank.bytes",
                                 "bytes a DRAM bank moved during the run")
            busy = reg.counter("dram.bank.busy_cycles",
                               "cycles a bank granted at least one byte")
            denied = reg.counter("dram.bank.denied_cycles",
                                 "requests finding a bank budget exhausted")
            for bank, bs in enumerate(report.bank_stats):
                bbytes.inc(bs.bytes_read, run=run, bank=bank, dir="read")
                bbytes.inc(bs.bytes_written, run=run, bank=bank, dir="write")
                busy.inc(bs.busy_cycles, run=run, bank=bank)
                denied.inc(bs.denied_cycles, run=run, bank=bank)


class SliceRecorder:
    """Coalesce per-kernel per-cycle states into timeline slices.

    A slice opens when a kernel's state changes and closes at the next
    change (or at run end), so the recorded volume is bounded by state
    *transitions*, not cycles; :data:`MAX_SLICES` caps pathological
    cases (the trace is then marked ``truncated``).
    """

    wants_kernel_states = True

    #: Upper bound on recorded slices per engine run.
    MAX_SLICES = 250_000

    def __init__(self, sink: List[Slice], offset: int = 0,
                 run: int = 0) -> None:
        self.sink = sink
        self.offset = offset
        self.run = run
        self.truncated = False
        self._engine: Optional[Any] = None
        self._open: Dict[str, list] = {}      # kernel -> [state, start]
        self._count = 0
        self._final_t: Optional[int] = None

    def on_run_start(self, engine: Any) -> None:
        self._engine = engine

    def on_cycle(self, t: int) -> None:
        pass

    def on_channel_op(self, t: int, kernel: Any, channel: Any, kind: str,
                      count: int) -> None:
        pass

    def _transition(self, name: str, state: str, t: int) -> None:
        cur = self._open.get(name)
        if cur is None:
            self._open[name] = [state, t]
            return
        if cur[0] == state:
            return
        self._emit(name, cur[0], cur[1], t)
        cur[0], cur[1] = state, t

    def _emit(self, name: str, state: str, start: int, end: int) -> None:
        if end <= start:
            return
        if self._count >= self.MAX_SLICES:
            self.truncated = True
            return
        self._count += 1
        self.sink.append(Slice(run=self.run, kernel=name, state=state,
                               start=self.offset + start,
                               end=self.offset + end))

    def on_kernel_state(self, t: int, kernel: Any, state: str) -> None:
        self._transition(kernel.name, state, t)

    def on_quiet(self, start: int, cycles: int) -> None:
        # States are provably constant over the window; synthesize the
        # same per-kernel verdict the TraceObserver uses.
        for k in self._engine.kernels.values():
            state = "-" if k.done else ("z" if k.sleep_until > start else "s")
            self._transition(k.name, state, start)

    def finalize(self, t: int) -> None:
        """Close every open interval at engine cycle ``t`` (idempotent)."""
        if self._final_t is not None:
            return
        self._final_t = t
        for name, (state, start) in self._open.items():
            self._emit(name, state, start, t)
        self._open.clear()

    def on_run_end(self, report: Any) -> None:
        self.finalize(report.cycles)
