"""Prometheus text-exposition export of the metrics registry.

Renders a :class:`~repro.telemetry.metrics.MetricsRegistry` (the
``repro.metrics/1`` data model) to the Prometheus text format 0.0.4,
so the future multi-tenant service layer can expose a ``/metrics``
endpoint that any Prometheus-compatible scraper consumes without a
client library:

* metric names are sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (dots in
  registry names become underscores) and prefixed ``repro_``;
* counters gain the conventional ``_total`` suffix;
* histograms are emitted as *cumulative* ``_bucket{le="..."}`` series
  (the registry stores per-bucket counts; Prometheus wants running
  totals up to each bound, ``+Inf`` included) plus exact ``_sum`` and
  ``_count``;
* label values are escaped per the exposition spec (backslash,
  newline, double quote).

The mapping is lossless for counters/gauges and sum/count-lossless for
histograms (bucket *bounds* are the registry's own).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["PROMETHEUS_CONTENT_TYPE", "to_prometheus", "write_prometheus"]

#: The Content-Type a serving endpoint should declare for this payload.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_PREFIX = "repro_"
_BAD_NAME_CHAR = re.compile(r"[^a-zA-Z0-9_:]")
_BAD_FIRST_CHAR = re.compile(r"^[^a-zA-Z_:]")


def _metric_name(name: str) -> str:
    out = _BAD_NAME_CHAR.sub("_", name)
    if _BAD_FIRST_CHAR.match(out):
        out = "_" + out
    return _NAME_PREFIX + out


def _escape_label(value: object) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels(labels: Dict[str, object],
            extra: Optional[Tuple[str, str]] = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + body + "}"


def _fmt(value: object) -> str:
    if isinstance(value, bool):                     # pragma: no cover
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    f = float(value)  # type: ignore[arg-type]
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every registry metric to one exposition-format document."""
    lines: List[str] = []
    for metric in sorted(registry, key=lambda m: m.name):
        if isinstance(metric, Counter):
            name = _metric_name(metric.name) + "_total"
            kind = "counter"
        elif isinstance(metric, Histogram):
            name = _metric_name(metric.name)
            kind = "histogram"
        elif isinstance(metric, Gauge):
            name = _metric_name(metric.name)
            kind = "gauge"
        else:                                       # pragma: no cover
            name = _metric_name(metric.name)
            kind = "untyped"
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in sorted(metric.series(),
                                    key=lambda kv: repr(sorted(kv[0].items()))):
            if isinstance(metric, Histogram):
                bounds = [*(_fmt(float(b)) for b in metric.buckets), "+Inf"]
                cumulative = 0
                for bound, count in zip(bounds, value.bucket_counts):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels(labels, ('le', bound))} {cumulative}")
                lines.append(f"{name}_sum{_labels(labels)} "
                             f"{_fmt(value.sum)}")
                lines.append(f"{name}_count{_labels(labels)} "
                             f"{value.count}")
            else:
                lines.append(f"{name}{_labels(labels)} {_fmt(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path: str) -> str:
    """Serialize the registry's exposition document to ``path``."""
    text = to_prometheus(registry)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
