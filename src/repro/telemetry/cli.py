"""``python -m repro.telemetry`` — run an app with full observability.

Runs one of the four Sec. V compositions (or the drift sweep) under a
telemetry session and emits any combination of:

* ``--trace out.json`` — Chrome/Perfetto ``trace_event`` timeline,
* ``--metrics out.json`` — metrics registry + per-run SimReport
  summaries + the app result, one JSON document,
* ``--ledger out.jsonl`` — the correlated run ledger (one
  ``repro.runrecord/1`` row per request),
* ``--prometheus out.prom`` — the metrics registry in Prometheus text
  exposition format,
* ``--report`` — text bottleneck report plus the model-vs-measured
  drift table for all four applications.

The ``report`` subcommand reads a previously written ledger JSONL and
renders the fleet-style table (per-plan runs, cache hit rates, cycle
percentiles, band-regression flags, slowest requests, fault/recovery
summary); ``--drift-threshold`` sets the relative band overshoot that
flags a regression, the same knob the drift sweep uses.

Examples::

    python -m repro.telemetry axpydot --trace /tmp/t.json \\
        --metrics /tmp/m.json --report
    python -m repro.telemetry atax --n 128 --tile 8 --trace atax.json
    python -m repro.telemetry atax --ledger ledger.jsonl --prometheus m.prom
    python -m repro.telemetry report ledger.jsonl --drift-threshold 0.1
    python -m repro.telemetry drift
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

import numpy as np

from ..analysis import AnalysisError
from ..host.context import FblasContext
from . import runtime
from .chrome_trace import write_chrome_trace
from .drift import DEFAULT_THRESHOLD, drift_report

__all__ = ["main", "TELEMETRY_SCHEMA"]

#: Schema tag of the ``--metrics`` JSON document.
TELEMETRY_SCHEMA = "repro.telemetry/1"

_APPS = ("axpydot", "bicg", "atax", "gemver")


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Run a streaming composition with telemetry attached.")
    p.add_argument("app", choices=_APPS + ("drift", "report"),
                   help="composition to run, 'drift' for the "
                        "model-vs-measured sweep, or 'report' to render "
                        "a run-ledger JSONL as a fleet table")
    p.add_argument("path", nargs="?", default=None,
                   help="ledger JSONL path (required by 'report', "
                        "meaningless otherwise)")
    p.add_argument("--n", type=int, default=None,
                   help="problem size (vector length / matrix side)")
    p.add_argument("--width", type=int, default=None,
                   help="vectorization width of the modules")
    p.add_argument("--tile", type=int, default=8,
                   help="tile size for the level-2 compositions")
    p.add_argument("--mode", choices=("dense", "event"), default=None,
                   help="engine core (legacy spelling of --engine-mode)")
    p.add_argument("--engine-mode",
                   choices=("dense", "event", "bulk", "certified"),
                   default=None, dest="engine_mode",
                   help="engine core: dense reference loop, event "
                        "wake-list scheduler, bulk steady-state fast "
                        "path, or certified static-schedule replay "
                        "(default: event)")
    p.add_argument("--seed", type=int, default=7, help="input data seed")
    p.add_argument("--trace", metavar="PATH",
                   help="write Chrome trace_event JSON here")
    p.add_argument("--metrics", metavar="PATH",
                   help="write metrics + run summaries JSON here")
    p.add_argument("--ledger", metavar="PATH",
                   help="write the correlated run ledger (JSONL, one "
                        "repro.runrecord/1 row per request) here")
    p.add_argument("--prometheus", metavar="PATH",
                   help="write the metrics registry in Prometheus text "
                        "exposition format here")
    p.add_argument("--report", action="store_true",
                   help="print the bottleneck report and the drift table")
    p.add_argument("--drift-threshold", type=float,
                   default=DEFAULT_THRESHOLD,
                   help="relative error above which drift is flagged")
    return p


def _run_app(app: str, n: Optional[int], width: Optional[int], tile: int,
             mode: str, seed: int) -> Any:
    """Build inputs and run one streaming composition; returns AppResult."""
    rng = np.random.default_rng(seed)
    ctx = FblasContext()
    f32 = np.float32

    def vec(k: int) -> Any:
        return ctx.copy_to_device(rng.standard_normal(k).astype(f32))

    def mat(r: int, c: int) -> Any:
        return ctx.copy_to_device(rng.standard_normal((r, c)).astype(f32))

    if app == "axpydot":
        from ..apps.axpydot import axpydot_streaming
        n = n or 4096
        width = width or 16
        return axpydot_streaming(ctx, vec(n), vec(n), vec(n), 0.75,
                                 width=width, mode=mode)
    if app == "bicg":
        from ..apps.bicg import bicg_streaming
        n = n or 64
        width = width or 8
        return bicg_streaming(ctx, mat(n, n), vec(n), vec(n),
                              tile=tile, width=width, mode=mode)
    if app == "atax":
        from ..apps.atax import atax_streaming
        n = n or 64
        width = width or 8
        return atax_streaming(ctx, mat(n, n), vec(n),
                              tile=tile, width=width, mode=mode)
    if app == "gemver":
        from ..apps.gemver import gemver_streaming
        n = n or 32
        width = width or 8
        return gemver_streaming(ctx, mat(n, n), vec(n), vec(n), vec(n),
                                vec(n), vec(n), vec(n), 1.5, -0.5,
                                tile=tile, width=width, mode=mode)
    raise ValueError(f"unknown app {app!r}")       # pragma: no cover


def _report_command(path: Optional[str], threshold: float) -> int:
    """The ``report`` subcommand: ledger JSONL -> fleet table."""
    from .ledger import LedgerQuery, fleet_report, read_ledger
    if not path:
        print("report requires a ledger JSONL path "
              "(python -m repro.telemetry report ledger.jsonl)",
              file=sys.stderr)
        return 2
    try:
        records = read_ledger(path)
    except (OSError, ValueError) as exc:
        print(f"cannot read ledger {path}: {exc}", file=sys.stderr)
        return 2
    print(fleet_report(records, threshold=threshold))
    return 1 if LedgerQuery(records).regressions(threshold) else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.mode and args.engine_mode and args.mode != args.engine_mode:
        print("--mode and --engine-mode disagree; pass only one",
              file=sys.stderr)
        return 2
    args.mode = args.engine_mode or args.mode or "event"
    if args.app == "report":
        return _report_command(args.path, args.drift_threshold)
    if args.path is not None:
        print(f"positional path {args.path!r} only applies to 'report'",
              file=sys.stderr)
        return 2

    if args.app == "drift":
        rep = drift_report(threshold=args.drift_threshold, mode=args.mode)
        print(rep.table())
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as fh:
                json.dump(rep.to_dict(), fh, indent=1)
                fh.write("\n")
            print(f"drift JSON written to {args.metrics}")
        return 1 if rep.flagged() else 0

    try:
        with runtime.session(ledger_path=args.ledger) as tel:
            result = _run_app(args.app, args.n, args.width, args.tile,
                              args.mode, args.seed)
    except AnalysisError as exc:
        # certified mode rejects non-certifiable designs before cycle 0
        # (e.g. the default width 16 exceeds the per-bank DRAM budget).
        print(str(exc), file=sys.stderr)
        return 1
    print(f"{args.app}: {result.cycles} cycles, "
          f"{result.io_elements} I/O elements, "
          f"{result.seconds * 1e6:.1f} us modeled "
          f"({len(tel.runs)} engine run{'s' if len(tel.runs) != 1 else ''})")

    if args.trace:
        doc = write_chrome_trace(tel, args.trace)
        print(f"trace written to {args.trace} "
              f"({len(doc['traceEvents'])} events)")
    if args.metrics:
        payload = {
            "schema": TELEMETRY_SCHEMA,
            "app": args.app,
            "mode": args.mode,
            "result": result.to_dict(),
            "runs": tel.runs,
            "metrics": tel.registry.to_dict(),
        }
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        print(f"metrics written to {args.metrics}")
    if args.ledger:
        print(f"ledger written to {args.ledger} "
              f"({len(tel.ledger)} records)")
    if args.prometheus:
        from .prometheus import write_prometheus
        write_prometheus(tel.registry, args.prometheus)
        print(f"prometheus metrics written to {args.prometheus}")
    if args.report:
        print()
        print(tel.report())
        print()
        rep = drift_report(threshold=args.drift_threshold, mode=args.mode)
        print(rep.table())
    return 0


if __name__ == "__main__":                         # pragma: no cover
    sys.exit(main())
