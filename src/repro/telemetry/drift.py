"""Model-vs-measured drift: keep the paper's closed forms honest.

The analytical models in :mod:`repro.models.iomodel` and
:mod:`repro.models.performance` predict each composed application's
off-chip I/O volume and completion cycles.  The simulator *measures*
both.  This module runs the four Sec. V applications at small sizes,
evaluates the matching closed form with the latencies the composition
actually instantiated, and reports the relative error — so the
performance model is a continuously-checked observable rather than a
one-shot table.  An entry whose relative error exceeds the threshold is
*flagged*: either the model or the composition regressed.

Modeling notes (the closed forms are deliberately first-order):

* I/O models count the paper's idealized traffic; the simulated
  compositions also replay tiled vectors and stream explicit zero
  vectors, so a few-percent measured excess is expected and stays well
  under the default 25% flag threshold.
* ATAX has no published cycle form.  Its fan-out serializes the two
  GEMVs strip-by-strip (the Sec. V-B reordering hazard: the second
  GEMV's bounded A channel backpressures the shared reader until the
  intermediate vector arrives), so we model the matrix as traversed
  twice back-to-back through one pipeline of two chained GEMV depths.
* GEMVER's published ``2N^2`` form ignores the two fused GER map
  latencies in component 1; we add them via
  :func:`repro.models.performance.pipeline_cycles` per component.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fpga.resources import level1_latency
from ..host.context import FblasContext
from ..models import iomodel
from ..models.performance import pipeline_cycles
from ..plan import PlanIR, compile_plan

__all__ = ["DriftEntry", "DriftReport", "entries_for", "entries_from_plan",
           "drift_report", "DRIFT_SCHEMA", "DEFAULT_THRESHOLD", "APPS"]

#: Schema tag for serialized drift reports.
DRIFT_SCHEMA = "repro.drift/1"

#: Relative error above which an entry is flagged as mis-modeled.
DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True)
class DriftEntry:
    """One measured-vs-modeled quantity for one application run."""

    app: str
    quantity: str               # "cycles" | "io_elements"
    measured: float
    modeled: float

    @property
    def rel_error(self) -> float:
        """|measured - modeled| / measured (0 when both are 0)."""
        if self.measured == 0:
            return 0.0 if self.modeled == 0 else math.inf
        return abs(self.measured - self.modeled) / self.measured

    def flagged(self, threshold: float = DEFAULT_THRESHOLD) -> bool:
        return self.rel_error > threshold

    def to_dict(self) -> dict:
        return {"app": self.app, "quantity": self.quantity,
                "measured": self.measured, "modeled": self.modeled,
                "rel_error": self.rel_error}


@dataclass
class DriftReport:
    """All drift entries of one sweep plus the flagging threshold."""

    entries: List[DriftEntry]
    threshold: float = DEFAULT_THRESHOLD

    def flagged(self) -> List[DriftEntry]:
        return [e for e in self.entries if e.flagged(self.threshold)]

    def table(self) -> str:
        lines = [
            "drift report (measured vs model, flag threshold "
            f"{self.threshold:.0%}):",
            f"  {'app':10s} {'quantity':12s} {'measured':>12s} "
            f"{'modeled':>12s} {'rel.err':>8s}",
        ]
        for e in self.entries:
            mark = "  <-- FLAGGED" if e.flagged(self.threshold) else ""
            lines.append(
                f"  {e.app:10s} {e.quantity:12s} {e.measured:12.0f} "
                f"{e.modeled:12.0f} {e.rel_error:8.1%}{mark}")
        n = len(self.flagged())
        lines.append(f"  {n} flagged entr{'y' if n == 1 else 'ies'}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": DRIFT_SCHEMA,
            "threshold": self.threshold,
            "entries": [e.to_dict() for e in self.entries],
            "flagged": [e.to_dict() for e in self.flagged()],
        }


def entries_for(app: str, measured_cycles: float, measured_io: float,
                modeled_cycles: float, modeled_io: float) -> List[DriftEntry]:
    """Build the standard (cycles, io) entry pair for one app run."""
    return [
        DriftEntry(app, "cycles", measured_cycles, modeled_cycles),
        DriftEntry(app, "io_elements", measured_io, modeled_io),
    ]


def entries_from_plan(app: str, plan: PlanIR, measured_cycles: float,
                      measured_io: float) -> List[DriftEntry]:
    """Compare a measured run against a plan's attached predictions.

    The plan IR is the single carrier of model output: each probe
    compiles its application MDAG once, stamps the closed-form numbers
    into :attr:`repro.plan.PlanIR.predictions` via
    :meth:`~repro.plan.PlanIR.with_predictions`, and the drift entries
    are derived from the plan alone — so what the report compares is
    exactly what the compiled plan claims.
    """
    pred = plan.predictions
    if pred is None or pred.cycles_lo is None or pred.cycles_hi is None:
        raise ValueError(
            f"plan for {app!r} carries no cycle prediction; attach one "
            "with PlanIR.with_predictions() before computing drift")
    if pred.io_elements is None:
        raise ValueError(
            f"plan for {app!r} carries no io_elements prediction")
    # A point prediction (lo == hi) is passed through unchanged so the
    # drift numbers stay identical to the closed form that produced it.
    modeled_cycles = (pred.cycles_lo if pred.cycles_lo == pred.cycles_hi
                      else (pred.cycles_lo + pred.cycles_hi) / 2)
    return entries_for(app, measured_cycles, measured_io,
                       modeled_cycles, pred.io_elements)


# ---------------------------------------------------------------------------
# Per-application measured-vs-modeled probes (small, deterministic sizes)
# ---------------------------------------------------------------------------

def _rng() -> np.random.Generator:
    return np.random.default_rng(7)


def drift_axpydot(n: int = 2048, width: int = 16,
                  mode: str = "event") -> List[DriftEntry]:
    from ..apps.axpydot import axpydot_mdag, axpydot_streaming
    rng = _rng()
    ctx = FblasContext()
    w = ctx.copy_to_device(rng.standard_normal(n).astype(np.float32))
    v = ctx.copy_to_device(rng.standard_normal(n).astype(np.float32))
    u = ctx.copy_to_device(rng.standard_normal(n).astype(np.float32))
    res = axpydot_streaming(ctx, w, v, u, 0.75, width=width, mode=mode)
    model = iomodel.axpydot(
        n, l_copy=0,                            # the copy module is fused away
        l_axpy=level1_latency("map", width, "single"),
        l_dot=level1_latency("map_reduce", width, "single"),
        width=width)
    plan = compile_plan(axpydot_mdag(n)).with_predictions(
        cycles_lo=model.streaming_cycles, cycles_hi=model.streaming_cycles,
        io_elements=model.streaming_io)
    return entries_from_plan("axpydot", plan, res.cycles, res.io_elements)


def drift_bicg(n: int = 64, m: int = 64, tile: int = 8, width: int = 8,
               mode: str = "event") -> List[DriftEntry]:
    from ..apps.bicg import bicg_mdag, bicg_streaming
    rng = _rng()
    ctx = FblasContext()
    a = ctx.copy_to_device(rng.standard_normal((n, m)).astype(np.float32))
    p = ctx.copy_to_device(rng.standard_normal(m).astype(np.float32))
    r = ctx.copy_to_device(rng.standard_normal(n).astype(np.float32))
    res = bicg_streaming(ctx, a, p, r, tile=tile, width=width, mode=mode)
    model = iomodel.bicg(
        n, m, l_gemv=level1_latency("map_reduce", width, "single"),
        width=width)
    plan = compile_plan(bicg_mdag(n, m, tile, tile)).with_predictions(
        cycles_lo=model.streaming_cycles, cycles_hi=model.streaming_cycles,
        io_elements=model.streaming_io)
    return entries_from_plan("bicg", plan, res.cycles, res.io_elements)


def drift_atax(m: int = 64, n: int = 64, tile: int = 8, width: int = 8,
               mode: str = "event") -> List[DriftEntry]:
    from ..apps.atax import atax_mdag, atax_streaming
    rng = _rng()
    ctx = FblasContext()
    a = ctx.copy_to_device(rng.standard_normal((m, n)).astype(np.float32))
    x = ctx.copy_to_device(rng.standard_normal(n).astype(np.float32))
    res = atax_streaming(ctx, a, x, tile=tile, width=width, mode=mode)
    lat = level1_latency("map_reduce", width, "single")
    # The fan-out serializes the two GEMVs (see module docstring): the
    # matrix effectively streams through the chained pipeline twice.
    modeled_cycles = pipeline_cycles(2 * lat, 1, 2 * math.ceil(m * n / width))
    modeled_io = iomodel.atax_io(n, m, streaming_valid=True)
    plan = compile_plan(atax_mdag(m, n, tile, tile)).with_predictions(
        cycles_lo=modeled_cycles, cycles_hi=modeled_cycles,
        io_elements=modeled_io)
    return entries_from_plan("atax", plan, res.cycles, res.io_elements)


def drift_gemver(n: int = 32, tile: int = 8, width: int = 8,
                 mode: str = "event") -> List[DriftEntry]:
    from ..apps.gemver import gemver_full_streaming_mdag, gemver_streaming
    rng = _rng()
    ctx = FblasContext()
    f32 = np.float32
    a = ctx.copy_to_device(rng.standard_normal((n, n)).astype(f32))
    u1 = ctx.copy_to_device(rng.standard_normal(n).astype(f32))
    v1 = ctx.copy_to_device(rng.standard_normal(n).astype(f32))
    u2 = ctx.copy_to_device(rng.standard_normal(n).astype(f32))
    v2 = ctx.copy_to_device(rng.standard_normal(n).astype(f32))
    y = ctx.copy_to_device(rng.standard_normal(n).astype(f32))
    z = ctx.copy_to_device(rng.standard_normal(n).astype(f32))
    res = gemver_streaming(ctx, a, u1, v1, u2, v2, y, z, 1.5, -0.5,
                           tile=tile, width=width, mode=mode)
    l_map = level1_latency("map", width, "single")
    l_red = level1_latency("map_reduce", width, "single")
    model = iomodel.gemver(n, l_mod=l_red, width=width)
    # Component 1 chains GER -> GER -> GEMV^T (two map depths plus one
    # reduce depth); component 2 is the lone GEMV.  Each streams N^2/W
    # blocks.
    steps = math.ceil(n * n / width)
    modeled_cycles = (pipeline_cycles(2 * l_map + l_red, 1, steps)
                      + pipeline_cycles(l_red, 1, steps))
    plan = compile_plan(gemver_full_streaming_mdag(n, tile)).with_predictions(
        cycles_lo=modeled_cycles, cycles_hi=modeled_cycles,
        io_elements=model.streaming_io)
    return entries_from_plan("gemver", plan, res.cycles, res.io_elements)


_PROBES: Dict[str, Callable[..., List[DriftEntry]]] = {
    "axpydot": drift_axpydot,
    "bicg": drift_bicg,
    "atax": drift_atax,
    "gemver": drift_gemver,
}

#: The applications the full drift sweep covers.
APPS: Tuple[str, ...] = tuple(_PROBES)


def drift_report(apps: Optional[Sequence[str]] = None,
                 threshold: float = DEFAULT_THRESHOLD,
                 mode: str = "event") -> DriftReport:
    """Run the drift sweep for ``apps`` (default: all four)."""
    entries: List[DriftEntry] = []
    for app in (apps or APPS):
        probe = _PROBES.get(app)
        if probe is None:
            raise ValueError(
                f"unknown app {app!r}; expected one of {', '.join(APPS)}")
        entries.extend(probe(mode=mode))
    return DriftReport(entries, threshold)
