"""Labelled metrics: counters, gauges and histograms with a registry.

The simulator's observability story (see :mod:`repro.telemetry`) needs a
small, dependency-free metrics vocabulary:

``Counter``
    A monotonically increasing total (cycles simulated, stall cycles
    attributed to a channel, bytes moved by a DRAM bank).

``Gauge``
    A point-in-time value (a kernel's utilization for one run, achieved
    initiation interval vs the declared one).

``Histogram``
    A bucketed distribution (per-channel FIFO occupancy sampled every
    executed cycle), with exact ``sum``/``count`` so means are lossless.

Every metric carries *labels* — free-form key/value pairs such as
``kernel="dot"`` or ``bank=2`` — and a metric therefore holds one series
per distinct label set, mirroring the Prometheus data model without any
of its machinery.  :class:`MetricsRegistry` owns the metrics and renders
everything to one stable JSON-able dict (``schema`` field included) so
telemetry artifacts, benchmark JSON and tests share one format.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "Metric", "MetricsRegistry",
    "METRICS_SCHEMA",
]

#: Schema tag stamped on every exported metrics document.
METRICS_SCHEMA = "repro.metrics/1"

#: Default histogram bucket upper bounds (occupancies, cycle counts...):
#: zero gets its own bucket, then powers of two; +inf is implicit.
DEFAULT_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

LabelKey = Tuple[Tuple[str, object], ...]


def _key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Metric:
    """Base class: a named family of labelled series."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, Any] = {}

    def labelsets(self) -> List[dict]:
        return [dict(k) for k in self._series]

    def series(self) -> Iterable[Tuple[dict, object]]:
        """Yield ``(labels, value)`` for every recorded series."""
        for k, v in self._series.items():
            yield dict(k), v

    def _export_value(self, value: Any) -> object:
        return value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(k), "value": self._export_value(v)}
                for k, v in sorted(self._series.items(),
                                   key=lambda kv: repr(kv[0]))
            ],
        }


class Counter(Metric):
    """A monotonically increasing labelled total."""

    kind = "counter"

    def inc(self, value: float = 1, **labels: object) -> None:
        if value < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {value})")
        k = _key(labels)
        self._series[k] = self._series.get(k, 0) + value

    def get(self, **labels: object) -> float:
        return float(self._series.get(_key(labels), 0))

    def total(self) -> float:
        """Sum across all label sets."""
        return float(sum(self._series.values()))


class Gauge(Metric):
    """A labelled point-in-time value (last write wins)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._series[_key(labels)] = value

    def get(self, **labels: object) -> Optional[float]:
        return self._series.get(_key(labels))


class _HistSeries:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, nbuckets: int) -> None:
        self.bucket_counts = [0] * (nbuckets + 1)   # +1 for +inf
        self.count = 0
        # int until a float is observed: exports stay integer-typed for
        # integer-only series (occupancy counts, cycle totals).
        self.sum: float = 0


class Histogram(Metric):
    """A labelled bucketed distribution with exact sum/count.

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket
    catches the overflow.  ``observe(value, count)`` records ``count``
    identical samples in O(log buckets) — that is what lets the event
    engine's ``on_quiet`` windows fold thousands of constant-occupancy
    cycles into one call.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be sorted and unique")
        self.buckets = tuple(buckets)

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.buckets)
        while lo < hi:                         # first bound >= value
            mid = (lo + hi) // 2
            if self.buckets[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo                              # == len(buckets) -> +inf

    def observe(self, value: float, count: int = 1,
                **labels: object) -> None:
        if count < 1:
            return
        k = _key(labels)
        s = self._series.get(k)
        if s is None:
            s = self._series[k] = _HistSeries(len(self.buckets))
        s.bucket_counts[self._bucket_index(value)] += count
        s.count += count
        s.sum += value * count

    def mean(self, **labels: object) -> float:
        s = self._series.get(_key(labels))
        if s is None or s.count == 0:
            return 0.0
        return float(s.sum / s.count)

    def count(self, **labels: object) -> int:
        s = self._series.get(_key(labels))
        return 0 if s is None else int(s.count)

    def _export_value(self, s: _HistSeries) -> object:
        bounds = [*map(float, self.buckets), "+inf"]
        return {
            "buckets": {str(b): c
                        for b, c in zip(bounds, s.bucket_counts)},
            "count": s.count,
            "sum": s.sum,
        }


class MetricsRegistry:
    """Owns metrics; get-or-create accessors keep callers declarative."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, cls: Any, name: str, help: str, **kw: object) -> Any:
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = cls(name, help, **kw)
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as {m.kind}")
        return m

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def to_dict(self) -> dict:
        return {
            "schema": METRICS_SCHEMA,
            "metrics": [m.to_dict()
                        for _n, m in sorted(self._metrics.items())],
        }
