"""repro.telemetry — cross-layer observability for the simulator.

Six pillars, layered on the PR-2 engine observer protocol:

* :mod:`~repro.telemetry.metrics` — labelled counters / gauges /
  histograms in a :class:`MetricsRegistry`;
* :mod:`~repro.telemetry.spans` — hierarchical spans on a session-wide
  cycle clock, with per-kernel work/stall slices;
* :mod:`~repro.telemetry.chrome_trace` — Chrome/Perfetto
  ``trace_event`` export of a whole session;
* :mod:`~repro.telemetry.ledger` — the correlated run ledger: one
  ``run_id`` per request (host call → executor → engine run), one
  :class:`RunRecord` per completion, a bounded ring plus a
  size-rotated JSONL sink, and :class:`LedgerQuery` /
  :func:`fleet_report` on top;
* :mod:`~repro.telemetry.prometheus` — text-exposition (0.0.4) export
  of the metrics registry for scrapers;
* :mod:`~repro.telemetry.drift` — measured-vs-model comparison of the
  Sec. V applications (imported lazily: it pulls in :mod:`repro.apps`).

Typical use::

    from repro import telemetry

    with telemetry.session() as tel:
        axpydot_streaming(ctx, w, v, u, 0.75)
    print(tel.report())
    telemetry.write_chrome_trace(tel, "trace.json")

or from the shell::

    python -m repro.telemetry axpydot --trace t.json --metrics m.json --report

Everything is zero-cost when no session is active: the only hook on the
hot path is :func:`repro.telemetry.runtime.active`, one module-global
read.  ``drift`` and ``cli`` are deliberately *not* imported here so
that the engine's import of :mod:`~repro.telemetry.runtime` never drags
the application layer in.
"""

from .chrome_trace import (CHROME_TRACE_SCHEMA, to_chrome_trace,
                           trace_events, write_chrome_trace)
from .ledger import (RUN_RECORD_SCHEMA, LedgerQuery, RunLedger, RunRecord,
                     correlate, current_run_id, fleet_report, mint_run_id,
                     read_ledger)
from .metrics import (METRICS_SCHEMA, Counter, Gauge, Histogram,
                      MetricsRegistry)
from .observers import STALL_CAUSES, MetricsObserver, SliceRecorder
from .prometheus import (PROMETHEUS_CONTENT_TYPE, to_prometheus,
                         write_prometheus)
from .runtime import TelemetrySession, active, session, span
from .spans import Slice, Span, SpanRecorder

__all__ = [
    "CHROME_TRACE_SCHEMA", "METRICS_SCHEMA", "PROMETHEUS_CONTENT_TYPE",
    "RUN_RECORD_SCHEMA", "STALL_CAUSES",
    "Counter", "Gauge", "Histogram", "LedgerQuery", "MetricsRegistry",
    "MetricsObserver", "RunLedger", "RunRecord", "SliceRecorder",
    "Slice", "Span", "SpanRecorder", "TelemetrySession",
    "active", "correlate", "current_run_id", "fleet_report",
    "mint_run_id", "read_ledger", "session", "span",
    "to_chrome_trace", "to_prometheus", "trace_events",
    "write_chrome_trace", "write_prometheus",
]
