"""Hierarchical spans on the simulated-cycle timebase.

A *span* is a named interval — a host routine call, a streaming
composition, one component of a plan, one engine run — on the telemetry
session's global cycle clock (see :mod:`repro.telemetry.runtime`: each
engine run maps its local cycles onto a session-wide monotonically
increasing cursor, so spans from different engines never overlap and a
whole host program renders as one coherent timeline).

Spans nest through a recorder-owned stack: whatever is open when a new
span starts becomes its parent.  The ``host/api.py`` routine wrappers
open root spans, ``streaming/executor.py`` compositions and
``fpga/engine.py`` runs nest under them, and kernel work/stall intervals
(recorded separately as :class:`Slice` by the
:class:`~repro.telemetry.observers.SliceRecorder`) become the leaf
slices.  :mod:`repro.telemetry.chrome_trace` renders both to Chrome
``trace_event`` JSON loadable in ``ui.perfetto.dev``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

__all__ = ["Slice", "Span", "SpanRecorder"]


@dataclass
class Span:
    """One named interval on the session cycle clock.

    ``name`` stays mutable while the span is open: the host layer opens
    a generic ``host.call`` span before it knows which routine the thunk
    will record, then renames it from the :class:`CallRecord` it
    produced.
    """

    name: str
    cat: str
    start: int
    end: Optional[int] = None
    depth: int = 0
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> int:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def open(self) -> bool:
        return self.end is None


@dataclass(frozen=True)
class Slice:
    """A coalesced per-kernel state interval within one engine run.

    ``state`` uses the engine's one-character vocabulary (``#`` working,
    ``s`` stalled, ``z`` sleeping, ``-`` done); ``start``/``end`` are on
    the session clock, ``run`` indexes the engine run the slice belongs
    to.
    """

    run: int
    kernel: str
    state: str
    start: int
    end: int


class SpanRecorder:
    """Records spans against a caller-supplied cycle clock.

    ``clock`` is a zero-argument callable returning the current session
    cycle; the recorder never advances it (engine runs do, through the
    session).  Spans are kept in open order, which is also start order —
    exactly what the trace exporter needs.
    """

    def __init__(self, clock: Callable[[], int]) -> None:
        self._clock = clock
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    def open(self, name: str, cat: str = "host", **args: object) -> Span:
        span = Span(name=name, cat=cat, start=self._clock(),
                    depth=len(self._stack), args=args)
        self.spans.append(span)
        self._stack.append(span)
        return span

    def close(self, span: Span, **args: object) -> Span:
        if span.end is not None:
            raise ValueError(f"span {span.name!r} already closed")
        while self._stack and self._stack[-1] is not span:
            # Defensive: close any dangling children first.
            self._stack.pop().end = self._clock()
        if self._stack:
            self._stack.pop()
        span.end = self._clock()
        span.args.update(args)
        return span

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, cat: str = "host",
             **args: object) -> Iterator[Span]:
        s = self.open(name, cat, **args)
        try:
            yield s
        except BaseException as exc:
            s.args.setdefault("error", type(exc).__name__)
            raise
        finally:
            self.close(s)

    def finished(self) -> List[Span]:
        return [s for s in self.spans if s.end is not None]
