"""Keyed caches for compiled plans and certified schedules.

:class:`PlanCache` is a counting dict: it speaks the plain mapping
protocol the certifier's ``ensure_certified(cache=...)`` hook and the
executor's ``plan_cache=`` hook expect, while keeping hit/miss counters
so the host API (and the cache benchmark) can assert that repeat
requests really skipped scheduling and pattern derivation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

__all__ = ["PlanCache"]


class PlanCache:
    """A dict-protocol cache with hit/miss accounting."""

    def __init__(self) -> None:
        self._store: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Any, default: Optional[Any] = None) -> Any:
        if key in self._store:
            self.hits += 1
            return self._store[key]
        self.misses += 1
        return default

    def __getitem__(self, key: Any) -> Any:
        return self._store[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._store[key] = value

    def __contains__(self, key: Any) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._store), "hits": self.hits,
                "misses": self.misses}

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return (f"PlanCache(entries={len(self._store)}, hits={self.hits}, "
                f"misses={self.misses})")
