"""Keyed caches for compiled plans and certified schedules.

:class:`PlanCache` is a counting dict: it speaks the plain mapping
protocol the certifier's ``ensure_certified(cache=...)`` hook and the
executor's ``plan_cache=`` hook expect, while keeping hit/miss counters
so the host API (and the cache benchmark) can assert that repeat
requests really skipped scheduling and pattern derivation.

When a telemetry session is active, every counted lookup also
increments the labelled ``plan_cache.requests`` counter in the
session's metrics registry (labels: ``cache`` — this cache's name —
and ``result`` — ``hit``/``miss``), so cache efficiency is visible to
metrics scrapes and the run ledger without polling each cache object.
The telemetry import is deferred into the lookup path to keep this
module import-light (and the check is the usual single ``active()``
read, so an un-instrumented lookup stays O(1) dict work).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

__all__ = ["PlanCache"]


class PlanCache:
    """A dict-protocol cache with hit/miss accounting.

    ``name`` labels this cache's series in the telemetry metrics
    registry (e.g. ``"host.plan"``, ``"host.schedule"``,
    ``"executor.schedule"``); anonymous caches report as ``"plan"``.
    """

    def __init__(self, name: str = "plan") -> None:
        self.name = name
        self._store: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    def _observe(self, result: str) -> None:
        from ..telemetry.runtime import active
        tel = active()
        if tel is not None:
            tel.registry.counter(
                "plan_cache.requests",
                "compiled-plan / certificate cache lookups by outcome",
            ).inc(1, cache=self.name, result=result)

    def get(self, key: Any, default: Optional[Any] = None) -> Any:
        if key in self._store:
            self.hits += 1
            self._observe("hit")
            return self._store[key]
        self.misses += 1
        self._observe("miss")
        return default

    def __getitem__(self, key: Any) -> Any:
        return self._store[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._store[key] = value

    def __contains__(self, key: Any) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._store), "hits": self.hits,
                "misses": self.misses}

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return (f"PlanCache(name={self.name!r}, entries={len(self._store)}, "
                f"hits={self.hits}, misses={self.misses})")
