"""Compile live objects into the plan IR, and back.

``compile_plan`` is the single entry point: hand it an
:class:`~repro.fpga.engine.Engine`, an
:class:`~repro.streaming.mdag.MDAG` (bound or not), or an existing
:class:`~repro.plan.ir.PlanIR`, and get the typed plan back.  MDAG
compilation runs :func:`repro.streaming.scheduler.plan_composition`
exactly once and records its decisions (components, materialized/sized
edges, final depths) in the IR; :func:`composition_from_plan` rebuilds
the scheduler's :class:`~repro.streaming.scheduler.CompositionPlan`
from the IR without re-planning — this is what makes the executor's
plan cache skip MDAG validation and scheduling entirely on a hit.

Imports of :mod:`repro.streaming` stay inside functions: the streaming
package itself imports :mod:`repro.plan`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from .ir import (
    PlanChannel,
    PlanEdge,
    PlanIR,
    PlanKernel,
    PlanMemory,
    PlanPlacement,
    PlanPort,
    PlanPrediction,
    PlanTraffic,
)

__all__ = [
    "as_plan", "compile_plan", "composition_from_plan",
    "mdag_fingerprint", "plan_from_composition", "plan_from_engine",
    "plan_from_mdag",
]


def compile_plan(subject: Any, *, windows: Optional[Dict] = None,
                 buffer_budget: int = 0,
                 device: Optional[str] = None) -> PlanIR:
    """Compile ``subject`` (Engine | MDAG | PlanIR) into a :class:`PlanIR`.

    An engine compiles to the kernel/channel/pattern view the analyzer
    and certifier consume; an MDAG is scheduled once (``windows`` and
    ``buffer_budget`` forwarded to the planner) and compiles to the
    edge/component view the executor and codegen consume.  A PlanIR
    passes through unchanged.
    """
    if isinstance(subject, PlanIR):
        return subject
    if hasattr(subject, "kernels") and hasattr(subject, "channels"):
        return plan_from_engine(subject)
    if hasattr(subject, "graph") and hasattr(subject, "kind"):
        return plan_from_mdag(subject, windows=windows,
                              buffer_budget=buffer_budget, device=device)
    raise TypeError(
        f"cannot compile a plan from {type(subject).__name__}; expected "
        "an Engine, an MDAG, or a PlanIR")


def as_plan(subject: Any) -> PlanIR:
    """Coerce ``subject`` to a :class:`PlanIR` (no planner options)."""
    return compile_plan(subject)


# ---------------------------------------------------------------------------
# Engine -> PlanIR
# ---------------------------------------------------------------------------

def _memory_label(mem: Any) -> str:
    label = getattr(mem, "device_label", None)
    if label:
        return str(label)
    return (f"generic-dram-{getattr(mem, 'num_banks', 0)}"
            f"x{getattr(mem, 'bytes_per_cycle', 0)}")


def plan_from_engine(engine: Any) -> PlanIR:
    """The analyzer/certifier view: kernels, patterns, channels, DRAM."""
    kernels: List[PlanKernel] = []
    channel_depths: Dict[str, int] = {
        name: ch.depth for name, ch in engine.channels.items()}
    buffers: Dict[str, Any] = {}
    mem = engine.memory

    for k in engine.kernels.values():
        p = k.pattern
        reads: Tuple[PlanPort, ...] = ()
        writes: Tuple[PlanPort, ...] = ()
        dram: Tuple[PlanTraffic, ...] = ()
        if p is not None:
            reads = tuple(
                PlanPort(channel=ch.name, lanes=w, total=total)
                for (ch, w), total in zip(p.reads, p.read_totals))
            writes = tuple(
                PlanPort(channel=ch.name, lanes=w, latency=lat, total=total)
                for (ch, w, lat), total in zip(p.writes, p.write_totals))
            dram = tuple(
                PlanTraffic(buffer=d.buf.name, bank=d.buf.bank,
                            elements=d.elements, itemsize=d.buf.itemsize,
                            kind=d.kind,
                            channels=(d.buf.placement.channels
                                      if d.buf.placement is not None
                                      and len(d.buf.placement.channels) > 1
                                      else ()))
                for d in p.dram)
            for d in p.dram:
                buffers[d.buf.name] = d.buf
                if mem is None:
                    mem = d.mem
            for ch, _w in p.reads:
                channel_depths.setdefault(ch.name, ch.depth)
            for ch, _w, _lat in p.writes:
                channel_depths.setdefault(ch.name, ch.depth)
        annotated_writes = tuple(
            PlanPort(channel=port.channel.name, lanes=port.lanes,
                     latency=port.latency)
            for port in k.write_ports)
        for port in k.write_ports:
            channel_depths.setdefault(port.channel.name, port.channel.depth)
        for ch in k.read_channels:
            channel_depths.setdefault(ch.name, ch.depth)
        kernels.append(PlanKernel(
            name=k.name, latency=k.latency, ii=k.ii, defer=k.defer,
            annotated=k.annotated,
            patterned=p is not None,
            executable=p is not None and p._ready is not None,
            pattern_ii=p.ii if p is not None else 1,
            pattern_defer=getattr(p, "defer", 0) if p is not None else 0,
            reads=reads, writes=writes,
            annotated_reads=tuple(ch.name for ch in k.read_channels),
            annotated_writes=annotated_writes,
            dram=dram))

    memory = None
    device = None
    if mem is not None:
        device = _memory_label(mem)
        memory = PlanMemory(device=device,
                            num_banks=mem.num_banks,
                            bytes_per_cycle=mem.bytes_per_cycle,
                            interleaving=mem.interleaving)

    placements = tuple(
        PlanPlacement(buffer=name, bank=buf.bank,
                      elements=buf.num_elements, itemsize=buf.itemsize,
                      kind=(buf.placement.kind
                            if buf.placement is not None else "interleaved"),
                      channels=(buf.placement.channels
                                if buf.placement is not None
                                and len(buf.placement.channels) > 1 else ()))
        for name, buf in sorted(buffers.items()))

    return PlanIR(
        subject=f"engine({len(engine.kernels)} kernels)",
        device=device,
        kernels=tuple(kernels),
        channels=tuple(PlanChannel(name=n, depth=d)
                       for n, d in channel_depths.items()),
        memory=memory,
        placements=placements)


# ---------------------------------------------------------------------------
# MDAG -> PlanIR (plans once, records the decisions)
# ---------------------------------------------------------------------------

def plan_from_mdag(mdag: Any, *, windows: Optional[Dict] = None,
                   buffer_budget: int = 0,
                   device: Optional[str] = None) -> PlanIR:
    """Validate + schedule the MDAG once; record the plan in the IR."""
    from ..streaming.scheduler import plan_composition
    comp = plan_composition(mdag, windows=windows,
                            buffer_budget=buffer_budget)
    return plan_from_composition(mdag, comp, device=device)


def plan_from_composition(mdag: Any, comp: Any,
                          device: Optional[str] = None) -> PlanIR:
    """Record an already-computed ``CompositionPlan`` in the IR."""
    cut = set(comp.materialized_edges)
    sized = set(comp.sized_edges)
    edges: List[PlanEdge] = []
    channels: List[PlanChannel] = []
    for u, v, data in mdag.graph.edges(data=True):
        produces = data["produces"]
        consumes = data["consumes"]
        depth = comp.channel_depths.get((u, v), data["depth"])
        materialized = (u, v) in cut
        edges.append(PlanEdge(
            src=u, dst=v,
            src_kind=mdag.kind(u), dst_kind=mdag.kind(v),
            src_port=data.get("src_port", "out"),
            dst_port=data.get("dst_port", "in"),
            produces_total=produces.total,
            produces_order=tuple(produces.order),
            consumes_total=consumes.total,
            consumes_order=tuple(consumes.order),
            depth=depth,
            materialized=materialized,
            sized=(u, v) in sized))
        if not materialized:
            channels.append(PlanChannel(name=f"{u}__{v}", depth=depth))
    return PlanIR(
        subject=f"mdag({mdag.graph.number_of_nodes()} nodes)",
        device=device,
        channels=tuple(channels),
        edges=tuple(edges),
        components=tuple(tuple(sorted(c)) for c in comp.components),
        predictions=PlanPrediction(
            io_elements=comp.io_operations(),
            sequential_io_elements=comp.sequential_io_operations()))


def composition_from_plan(plan: PlanIR, mdag: Any) -> Any:
    """Rebuild the scheduler's ``CompositionPlan`` from the IR.

    This is the cache-hit path: no MDAG validation, no ``analyze()``,
    no remedy loop — the recorded decisions are replayed verbatim.
    """
    from ..streaming.scheduler import CompositionPlan
    components: List[Set[str]] = [set(c) for c in plan.components]
    materialized = sorted((e.src, e.dst) for e in plan.edges
                          if e.materialized)
    depths = {(e.src, e.dst): e.depth for e in plan.edges
              if not e.materialized}
    sized = [(e.src, e.dst) for e in plan.edges if e.sized]
    return CompositionPlan(mdag=mdag, components=components,
                           materialized_edges=materialized,
                           channel_depths=depths, sized_edges=sized)


def mdag_fingerprint(mdag: Any, windows: Optional[Dict] = None,
                     buffer_budget: int = 0) -> Tuple[Any, ...]:
    """Structural pre-compile key for an MDAG + planner options.

    Bindings (buffers, factories) are deliberately excluded: the plan
    only depends on graph structure, signatures and depths, so repeat
    requests over new problem instances of the same shape hit the
    cache.
    """
    nodes = tuple(sorted(
        (n, mdag.kind(n)) for n in mdag.graph.nodes))
    edges = tuple(sorted(
        (u, v, data["depth"],
         data.get("src_port", "out"), data.get("dst_port", "in"),
         data["produces"].total, tuple(data["produces"].order),
         data["consumes"].total, tuple(data["consumes"].order))
        for u, v, data in mdag.graph.edges(data=True)))
    window_items = tuple(sorted((windows or {}).items()))
    return (nodes, edges, window_items, buffer_budget)
