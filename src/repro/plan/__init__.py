"""``repro.plan`` — the typed plan IR (``repro.plan/1``).

One compiled artifact, five consumers:

* the **analyzer** (:mod:`repro.analysis`) runs its FB0xx/FB1xx/FB4xx
  passes over the IR instead of introspecting live engines;
* the **certifier** (:func:`repro.analysis.certify`) is a
  PlanIR -> StaticSchedule pass memoized on :attr:`PlanIR.plan_key`;
* the **executor** (:func:`repro.streaming.execute_plan`) builds
  engines from the IR's recorded scheduling decisions, with a
  ``plan_key``-addressed cache that skips MDAG validation and
  scheduling on repeat requests;
* **codegen** (:func:`repro.codegen.emit_composition`) emits channel
  declarations from the IR's planned depths;
* the **drift reporter** (:mod:`repro.telemetry.drift`) compares
  measured runs against the predictions attached to the IR.
"""

from .cache import PlanCache
from .compile import (
    as_plan,
    compile_plan,
    composition_from_plan,
    mdag_fingerprint,
    plan_from_composition,
    plan_from_engine,
    plan_from_mdag,
)
from .ir import (
    PLAN_SCHEMA,
    PlanChannel,
    PlanEdge,
    PlanIR,
    PlanKernel,
    PlanMemory,
    PlanPlacement,
    PlanPort,
    PlanPrediction,
    PlanTraffic,
)

__all__ = [
    "PLAN_SCHEMA", "PlanCache", "PlanChannel", "PlanEdge", "PlanIR",
    "PlanKernel", "PlanMemory", "PlanPlacement", "PlanPort",
    "PlanPrediction", "PlanTraffic", "as_plan", "compile_plan",
    "composition_from_plan", "mdag_fingerprint", "plan_from_composition",
    "plan_from_engine", "plan_from_mdag",
]
