"""The typed plan IR (``repro.plan/1``).

A :class:`PlanIR` is the single compiled artifact every downstream
subsystem consumes: kernels x ports x channels x StaticPatterns x DRAM
placements x declared rates, plus (for MDAG compositions) the planned
edges, component partition, and closed-form predictions.  It is

* **typed** — frozen dataclasses with full annotations (the mypy
  ``--strict`` CI job covers this package);
* **versioned** — :data:`PLAN_SCHEMA` rides in every serialized dump,
  next to the existing ``repro.analysis/1`` / ``repro.schedule/1``
  schemas;
* **structural** — :attr:`PlanIR.plan_key` is a SHA-256 over the
  plan's shape (including the device-catalog identity of its memory),
  so two compilations of the same composition share certificates and
  caches while a plan certified on one device can never be replayed on
  another;
* **lossless** — ``from_dict(to_dict(p))`` reconstructs a structurally
  equal plan with the same ``plan_key`` (property-tested).

Compilation lives in :mod:`repro.plan.compile`; the consumers
(:mod:`repro.analysis`, :mod:`repro.streaming.executor`,
:mod:`repro.codegen`, :mod:`repro.telemetry.drift`) are thin passes
over this one artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from functools import cached_property
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "PLAN_SCHEMA", "PlanChannel", "PlanEdge", "PlanIR", "PlanKernel",
    "PlanMemory", "PlanPlacement", "PlanPort", "PlanPrediction",
    "PlanTraffic",
]

#: Schema tag for serialized plans, alongside ``repro.analysis/1``,
#: ``repro.schedule/1``, ``repro.simreport/1`` and ``repro.drift/1``.
PLAN_SCHEMA = "repro.plan/1"


@dataclass(frozen=True)
class PlanPort:
    """One kernel port: a named channel at a lane width.

    ``latency`` is the push latency for write ports (``None`` = the
    kernel default); ``total`` is the declared whole-run element total
    (``None`` = unknown), the number the FB401 token-conservation check
    ranges over.
    """

    channel: str
    lanes: int = 1
    latency: Optional[int] = None
    total: Optional[int] = None


@dataclass(frozen=True)
class PlanTraffic:
    """Steady-state DRAM traffic of one kernel on one buffer.

    ``channels`` lists the member channels of a striped/range placement
    (the demand spreads over them); empty means the traffic hits the
    single ``bank`` (or the pooled budget when ``bank`` is ``None``).
    """

    buffer: str
    bank: Optional[int]
    elements: int
    itemsize: int
    kind: str                    # "read" | "write"
    channels: Tuple[int, ...] = ()


@dataclass(frozen=True)
class PlanKernel:
    """One kernel: identity, pipeline shape, pattern ports, annotations.

    ``reads``/``writes`` are the :class:`~repro.fpga.pattern.
    StaticPattern` ports (the executable contract); ``annotated_reads``/
    ``annotated_writes`` are the ``add_kernel(reads=..., writes=...)``
    lint annotations.  ``executable`` distinguishes a pattern with a
    ``ready``/``block`` fast path from a declare-only one.
    """

    name: str
    latency: int = 1
    ii: int = 1
    defer: int = 0
    annotated: bool = False
    patterned: bool = False
    executable: bool = False
    pattern_ii: int = 1
    pattern_defer: int = 0
    reads: Tuple[PlanPort, ...] = ()
    writes: Tuple[PlanPort, ...] = ()
    annotated_reads: Tuple[str, ...] = ()
    annotated_writes: Tuple[PlanPort, ...] = ()
    dram: Tuple[PlanTraffic, ...] = ()


@dataclass(frozen=True)
class PlanChannel:
    """One on-chip FIFO channel at its configured depth."""

    name: str
    depth: int


@dataclass(frozen=True)
class PlanMemory:
    """The DRAM the plan executes against, with its catalog identity.

    ``device`` is the device-catalog label (e.g. ``"Stratix 10 GX
    2800"``); it participates in :attr:`PlanIR.plan_key`, so schedules
    certified against one board are never replayed on another.
    """

    device: str
    num_banks: int = 4
    bytes_per_cycle: int = 64
    interleaving: bool = False


@dataclass(frozen=True)
class PlanPlacement:
    """One DRAM buffer placement referenced by the plan's traffic.

    ``kind`` is the :class:`~repro.fpga.memory.Placement` vocabulary
    (``"single"`` / ``"striped"`` / ``"range"``, plus ``"interleaved"``
    for pooled buffers) and ``channels`` its member channels (empty for
    single/interleaved, where ``bank`` is authoritative).  Both
    participate in :attr:`PlanIR.plan_key`, so two layouts of the same
    kernels are distinct plans and certificates never cross placements.
    """

    buffer: str
    bank: Optional[int]
    elements: int
    itemsize: int
    kind: str = "single"
    channels: Tuple[int, ...] = ()


@dataclass(frozen=True)
class PlanEdge:
    """One MDAG edge with its planned fate.

    ``materialized`` edges round-trip through scratch DRAM between
    sequential components; ``sized`` edges had their FIFO deepened by
    the planner's remedy (a); ``depth`` is the final planned depth.
    """

    src: str
    dst: str
    src_kind: str                # "interface" | "compute"
    dst_kind: str
    src_port: str = "out"
    dst_port: str = "in"
    produces_total: int = 0
    produces_order: Tuple[Any, ...] = ()
    consumes_total: int = 0
    consumes_order: Tuple[Any, ...] = ()
    depth: int = 64
    materialized: bool = False
    sized: bool = False


@dataclass(frozen=True)
class PlanPrediction:
    """Closed-form model predictions attached to the plan.

    ``cycles_lo``/``cycles_hi`` bracket the modeled completion cycles;
    ``io_elements`` is the modeled off-chip element count for the
    planned (streaming) composition and ``sequential_io_elements`` the
    every-call-round-trips baseline it is measured against.  The drift
    reporter compares measured runs to these numbers.
    """

    cycles_lo: Optional[int] = None
    cycles_hi: Optional[int] = None
    io_elements: Optional[int] = None
    sequential_io_elements: Optional[int] = None


def _freeze(value: Any) -> Any:
    """Canonical hashable form for plan_key hashing."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class PlanIR:
    """The compiled plan: one artifact, five consumers.

    ``subject`` is a human label (excluded from :attr:`plan_key`);
    ``device`` names the device-catalog entry the plan was compiled
    against (``None`` when no memory is attached).  ``kernels`` are in
    registration order; ``channels`` carry every FIFO the kernels or
    patterns reference.  For MDAG compositions, ``edges`` and
    ``components`` carry the scheduler's decisions so an engine can be
    built without re-planning.
    """

    subject: str = "plan"
    device: Optional[str] = None
    kernels: Tuple[PlanKernel, ...] = ()
    channels: Tuple[PlanChannel, ...] = ()
    memory: Optional[PlanMemory] = None
    placements: Tuple[PlanPlacement, ...] = ()
    edges: Tuple[PlanEdge, ...] = ()
    components: Tuple[Tuple[str, ...], ...] = ()
    predictions: PlanPrediction = field(default_factory=PlanPrediction)
    schema: str = PLAN_SCHEMA

    # -- derived views ----------------------------------------------------

    @cached_property
    def kernel_map(self) -> Dict[str, PlanKernel]:
        return {k.name: k for k in self.kernels}

    @cached_property
    def channel_depths(self) -> Dict[str, int]:
        return {c.name: c.depth for c in self.channels}

    def depth_of(self, channel: str, default: int = 0) -> int:
        return self.channel_depths.get(channel, default)

    @cached_property
    def plan_key(self) -> str:
        """Structural SHA-256 fingerprint.

        Covers kernels (shape, patterns, rates), channels, memory +
        device identity, placements, edges and components — but not the
        ``subject`` label or attached predictions, which are derived
        annotations rather than structure.
        """
        structure = (
            self.schema,
            self.device,
            tuple(_freeze(asdict(k)) for k in self.kernels),
            tuple(sorted((c.name, c.depth) for c in self.channels)),
            _freeze(asdict(self.memory)) if self.memory else None,
            # key=repr: a None bank must sort stably next to integer
            # banks instead of raising on the comparison.
            tuple(sorted((_freeze(asdict(p)) for p in self.placements),
                         key=repr)),
            tuple(_freeze(asdict(e)) for e in self.edges),
            _freeze(self.components),
        )
        digest = hashlib.sha256(repr(structure).encode("utf-8"))
        return digest.hexdigest()

    def with_predictions(self, cycles_lo: Optional[int] = None,
                         cycles_hi: Optional[int] = None,
                         io_elements: Optional[int] = None,
                         sequential_io_elements: Optional[int] = None,
                         ) -> "PlanIR":
        """A copy with model predictions attached (same ``plan_key``)."""
        merged = PlanPrediction(
            cycles_lo=(cycles_lo if cycles_lo is not None
                       else self.predictions.cycles_lo),
            cycles_hi=(cycles_hi if cycles_hi is not None
                       else self.predictions.cycles_hi),
            io_elements=(io_elements if io_elements is not None
                         else self.predictions.io_elements),
            sequential_io_elements=(
                sequential_io_elements if sequential_io_elements is not None
                else self.predictions.sequential_io_elements))
        return replace(self, predictions=merged)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-ready dump, schema first."""
        d = asdict(self)
        return {"schema": d.pop("schema"), **d}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanIR":
        """Inverse of :meth:`to_dict` (tolerates JSON round-trips)."""
        schema = data.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ValueError(
                f"unsupported plan schema {schema!r} (expected "
                f"{PLAN_SCHEMA!r})")

        def port(p: Mapping[str, Any]) -> PlanPort:
            return PlanPort(channel=p["channel"], lanes=p["lanes"],
                            latency=p["latency"], total=p["total"])

        def kernel(k: Mapping[str, Any]) -> PlanKernel:
            return PlanKernel(
                name=k["name"], latency=k["latency"], ii=k["ii"],
                defer=k["defer"], annotated=k["annotated"],
                patterned=k["patterned"], executable=k["executable"],
                pattern_ii=k["pattern_ii"],
                pattern_defer=k["pattern_defer"],
                reads=tuple(port(p) for p in k["reads"]),
                writes=tuple(port(p) for p in k["writes"]),
                annotated_reads=tuple(k["annotated_reads"]),
                annotated_writes=tuple(port(p)
                                       for p in k["annotated_writes"]),
                dram=tuple(traffic(t) for t in k["dram"]))

        def traffic(t: Mapping[str, Any]) -> PlanTraffic:
            t = dict(t)
            t["channels"] = tuple(t.get("channels", ()))
            return PlanTraffic(**t)

        def placement(p: Mapping[str, Any]) -> PlanPlacement:
            p = dict(p)
            p["channels"] = tuple(p.get("channels", ()))
            return PlanPlacement(**p)

        def edge(e: Mapping[str, Any]) -> PlanEdge:
            e = dict(e)
            e["produces_order"] = tuple(e["produces_order"])
            e["consumes_order"] = tuple(e["consumes_order"])
            return PlanEdge(**e)

        memory = data.get("memory")
        predictions = data.get("predictions") or {}
        return cls(
            subject=data.get("subject", "plan"),
            device=data.get("device"),
            kernels=tuple(kernel(k) for k in data.get("kernels", ())),
            channels=tuple(PlanChannel(**c)
                           for c in data.get("channels", ())),
            memory=PlanMemory(**memory) if memory else None,
            placements=tuple(placement(p)
                             for p in data.get("placements", ())),
            edges=tuple(edge(e) for e in data.get("edges", ())),
            components=tuple(tuple(c)
                             for c in data.get("components", ())),
            predictions=PlanPrediction(**predictions),
            schema=schema)
