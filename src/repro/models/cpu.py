"""Roofline model of the paper's CPU baseline (Sec. VI-A/VI-D).

The evaluation host is a 10-core Intel Xeon E5-2630 v4 (2.2 GHz, no
hyper-threading) with 4-channel DDR4 — the MKL baseline of Tables IV-VI.
We model it with a classic roofline: execution time is the maximum of the
compute time (flops / peak) and the memory time (bytes / bandwidth).

Calibration against Table IV's CPU column:

* SDOT 16M: 128 MB moved in 2.05 ms -> ~62 GB/s sustained bandwidth;
* SGEMM 8K: 1.1 Tflop in 1.56 s -> ~700 Gflop/s single-precision peak
  (10 cores x 2.2 GHz x 32 flop/cycle with AVX2 FMA);
* double precision peak is half that.

Using a calibrated model instead of timing the machine running this
reproduction keeps the Table IV/V/VI *shape* comparisons deterministic;
the benchmark harness also prints locally-measured numpy timings next to
the model for reference.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Sustained memory bandwidth of the 4-channel DDR4 host (bytes/s).
CPU_BANDWIDTH = 62e9
#: Peak single-precision flop rate (flop/s).
CPU_PEAK_SP = 700e9
#: Peak double-precision flop rate (flop/s).
CPU_PEAK_DP = 350e9
#: Power draw measured by Mammut for the CPU+DRAM (Watts, Tables IV-VI).
CPU_POWER = 80.0


@dataclass(frozen=True)
class CpuEstimate:
    """Roofline estimate for one routine invocation."""

    seconds: float
    flops: int
    bytes_moved: int
    bound: str                  # "memory" or "compute"

    @property
    def gflops(self) -> float:
        return self.flops / self.seconds / 1e9


def _estimate(flops: int, bytes_moved: int, precision: str) -> CpuEstimate:
    if flops < 0 or bytes_moved < 0:
        raise ValueError("flops/bytes must be non-negative")
    peak = CPU_PEAK_SP if precision == "single" else CPU_PEAK_DP
    t_compute = flops / peak
    t_memory = bytes_moved / CPU_BANDWIDTH
    if t_memory >= t_compute:
        return CpuEstimate(t_memory, flops, bytes_moved, "memory")
    return CpuEstimate(t_compute, flops, bytes_moved, "compute")


def _esize(precision: str) -> int:
    return 4 if precision == "single" else 8


def dot_time(n: int, precision: str = "single") -> CpuEstimate:
    """DOT: 2N flops over 2N elements (memory bound on any CPU)."""
    return _estimate(2 * n, 2 * n * _esize(precision), precision)


def gemv_time(n: int, m: int, precision: str = "single") -> CpuEstimate:
    """GEMV: 2NM flops over NM + 2N + M elements."""
    return _estimate(2 * n * m, (n * m + 2 * n + m) * _esize(precision),
                     precision)


def gemm_time(n: int, m: int, k: int, precision: str = "single"
              ) -> CpuEstimate:
    """GEMM: 2NMK flops; blocked MKL moves ~(NK + KM + 2NM) elements."""
    return _estimate(2 * n * m * k,
                     (n * k + k * m + 2 * n * m) * _esize(precision),
                     precision)


#: Fraction of roofline bandwidth MKL's batched routines sustain on 4x4
#: problems (loop/dispatch overhead per tiny problem; calibrated on the
#: Table V CPU column: SGEMM batched 32K problems in 457 us -> ~13 ns per
#: problem where the pure roofline would predict ~4 ns).
BATCHED_EFFICIENCY = 0.31
#: Batched TRSM is even further from roofline (the solve recurrence
#: defeats vectorization on 4x4 problems; Table V: 32K problems in 750 us).
TRSM_BATCHED_EFFICIENCY = 0.14
#: Fixed dispatch cost of one cblas_*_batch call (seconds).
BATCHED_CALL_OVERHEAD = 30e-6


def batched_gemm_time(size: int, nbatch: int, precision: str = "single"
                      ) -> CpuEstimate:
    """MKL batched GEMM on tiny matrices.

    Bandwidth bound, but tiny problems only sustain a fraction of the
    streaming bandwidth, plus a fixed per-call dispatch overhead.
    """
    per = gemm_time(size, size, size, precision)
    per_seconds = per.seconds / BATCHED_EFFICIENCY
    return CpuEstimate(per_seconds * nbatch + BATCHED_CALL_OVERHEAD,
                       per.flops * nbatch, per.bytes_moved * nbatch,
                       per.bound)


def batched_trsm_time(size: int, nbatch: int, precision: str = "single"
                      ) -> CpuEstimate:
    """MKL batched TRSM on tiny matrices (same efficiency regime)."""
    flops = size * size * size * nbatch
    bytes_moved = 3 * size * size * nbatch * _esize(precision)
    base = _estimate(flops // nbatch, bytes_moved // nbatch, precision)
    per_seconds = base.seconds / TRSM_BATCHED_EFFICIENCY
    return CpuEstimate(per_seconds * nbatch + BATCHED_CALL_OVERHEAD,
                       flops, bytes_moved, base.bound)


def axpydot_time(n: int, precision: str = "single") -> CpuEstimate:
    """COPY + AXPY + DOT: 7N elements moved, 4N flops."""
    return _estimate(4 * n, 7 * n * _esize(precision), precision)


def bicg_time(n: int, m: int, precision: str = "single") -> CpuEstimate:
    """Two GEMVs, each reading the matrix."""
    return _estimate(4 * n * m, (2 * n * m + 2 * (n + m)) *
                     _esize(precision), precision)


def gemver_time(n: int, precision: str = "single") -> CpuEstimate:
    """Two GER + two GEMV + two copies: ~8N^2 elements, ~10N^2 flops."""
    return _estimate(10 * n * n, (8 * n * n + 10 * n) * _esize(precision),
                     precision)
