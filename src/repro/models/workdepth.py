"""Work and depth models (Sec. IV-A of the paper).

The cost of an algorithm is captured by its *application work* AW (total
operations) and *application depth* AD (longest shortest input-output
path).  The circuit implementing a module's inner loop is likewise
characterised by *circuit work* CW (operations instantiated in hardware,
proportional to resources) and *circuit depth* CD (pipeline latency).

FBLAS inner loops are either *map* computations (SCAL, AXPY, GER, SYR:
independent per-element operations) or *map-reduce* computations (DOT,
GEMV, TRSV, GEMM: intermediate results are accumulated through an adder
tree).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Latency of an addition on the target FPGAs (cycles).
LA = 6
#: Latency of a multiplication on the target FPGAs (cycles).
LM = 6


@dataclass(frozen=True)
class WorkDepth:
    """A (work, depth) pair; depth is in cycles."""

    work: int
    depth: int


# Routine taxonomy: which inner-loop class each routine belongs to
# (Sec. IV-A: SCAL/AXPY/GER/SYR are maps; DOT/GEMV/TRSV/GEMM map-reduce).
MAP_ROUTINES = frozenset({
    "scal", "copy", "axpy", "swap", "rot", "rotm", "ger", "syr", "syr2",
})
MAP_REDUCE_ROUTINES = frozenset({
    "dot", "sdsdot", "nrm2", "asum", "iamax", "gemv", "trsv",
    "gemm", "syrk", "syr2k", "trsm",
})


def routine_class(name: str) -> str:
    """Return ``"map"`` or ``"map_reduce"`` for a BLAS routine name."""
    key = name.lower()
    if key in MAP_ROUTINES:
        return "map"
    if key in MAP_REDUCE_ROUTINES:
        return "map_reduce"
    if key in {"rotg", "rotmg"}:
        return "map"  # scalar routines: tiny constant-work circuits
    raise ValueError(f"unknown routine {name!r}")


# ---------------------------------------------------------------------------
# Application work/depth
# ---------------------------------------------------------------------------

def scal_app(n: int) -> WorkDepth:
    """SCAL: N independent multiplications (AW=N, AD=LM)."""
    return WorkDepth(work=n, depth=LM)


def axpy_app(n: int) -> WorkDepth:
    """AXPY: N multiply-adds."""
    return WorkDepth(work=2 * n, depth=LM + LA)


def dot_app(n: int) -> WorkDepth:
    """DOT as a binary tree: AW=2N-1, AD=log2(N)*LA + LM."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return WorkDepth(work=2 * n - 1,
                     depth=int(math.ceil(math.log2(max(n, 2))) * LA + LM))


def gemv_app(n: int, m: int) -> WorkDepth:
    """GEMV: N independent M-element dot products plus the axpby update."""
    per_row = dot_app(m)
    return WorkDepth(work=n * (per_row.work + 2) + n,
                     depth=per_row.depth + LM + LA)


def gemm_app(n: int, m: int, k: int) -> WorkDepth:
    """GEMM: N*M independent K-element dot products."""
    per_elem = dot_app(k)
    return WorkDepth(work=n * m * per_elem.work, depth=per_elem.depth)


# ---------------------------------------------------------------------------
# Circuit work/depth of the inner-loop circuit at vectorization width W
# ---------------------------------------------------------------------------

def circuit(routine_class_name: str, width: int,
            la: int = LA, lm: int = LM) -> WorkDepth:
    """Circuit work/depth of an inner loop unrolled ``width`` times.

    Map circuits replicate ``width`` independent operators: CW = W,
    CD = LM.  Map-reduce circuits add a log-depth reduction tree:
    CW = 2W, CD = log2(W)*LA + LM (Sec. IV-A, Fig. 4 and 5).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if routine_class_name == "map":
        return WorkDepth(work=width, depth=lm)
    if routine_class_name == "map_reduce":
        depth = int(math.ceil(math.log2(width)) * la + lm) if width > 1 else lm
        return WorkDepth(work=2 * width, depth=depth)
    raise ValueError(f"unknown routine class {routine_class_name!r}")


def circuit_for(routine: str, width: int) -> WorkDepth:
    """Circuit work/depth for a named routine at width ``width``."""
    return circuit(routine_class(routine), width)
