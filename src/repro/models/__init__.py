"""Space/time trade-off models of Sec. IV and the I/O analyses of Sec. V."""

from . import cpu, dse, iomodel
from .performance import (
    FLOPS_PER_DSP_CYCLE,
    ModulePerformance,
    achieved_performance,
    expected_performance,
    gemm_systolic_cycles,
    gemv_cycles,
    level1_cycles,
    optimal_width,
    optimal_width_tiled_gemv,
    pipeline_cycles,
    routine_flops,
    sharded_gemv_cycles,
    sharded_gemv_speedup,
)
from .workdepth import (
    LA,
    LM,
    MAP_REDUCE_ROUTINES,
    MAP_ROUTINES,
    WorkDepth,
    axpy_app,
    circuit,
    circuit_for,
    dot_app,
    gemm_app,
    gemv_app,
    routine_class,
    scal_app,
)

__all__ = [
    "FLOPS_PER_DSP_CYCLE", "LA", "LM", "MAP_REDUCE_ROUTINES", "MAP_ROUTINES",
    "ModulePerformance", "WorkDepth", "achieved_performance", "axpy_app",
    "circuit", "circuit_for", "cpu", "dse", "dot_app", "expected_performance", "gemm_app",
    "gemm_systolic_cycles", "gemv_app", "gemv_cycles", "iomodel",
    "level1_cycles", "optimal_width", "optimal_width_tiled_gemv",
    "pipeline_cycles", "routine_class", "routine_flops", "scal_app",
    "sharded_gemv_cycles", "sharded_gemv_speedup",
]
