"""Cycle, throughput, and circuit-dimensioning models (Sec. IV).

The central identity is the pipeline execution model::

    C = L + I * M

cycles for a pipeline of latency ``L``, initiation interval ``I`` and ``M``
inputs.  All FBLAS modules are built with pipeline-enabling transformations
so that I = 1, giving ``C = CD + M`` with ``CD`` the circuit depth.

The *optimal vectorization width* balances a module's service rate against
the rate data arrives from memory: a module narrower than the arrival rate
is a bottleneck (upstream backpressure); a wider one wastes resources.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .workdepth import circuit, routine_class

#: Flops one hardened DSP can start per cycle on the evaluated devices
#: ("the DSPs of this FPGA are able to start one addition and one
#: multiplication per clock cycle").
FLOPS_PER_DSP_CYCLE = 2


def pipeline_cycles(latency: int, initiation_interval: int,
                    iterations: int) -> int:
    """C = L + I*M — cycles to push ``iterations`` inputs through."""
    if latency < 0 or initiation_interval < 1 or iterations < 0:
        raise ValueError("invalid pipeline parameters")
    return latency + initiation_interval * iterations


def level1_cycles(routine: str, n: int, width: int) -> int:
    """Cycles for a Level-1 module on N elements at width W.

    SCAL: C = LM + N/W.  DOT: C = log2(W)*LA + LM + N/W (Sec. IV-A).
    """
    cd = circuit(routine_class(routine), width).depth
    return pipeline_cycles(cd, 1, math.ceil(n / width))


def gemv_cycles(n: int, m: int, width: int, latency: int | None = None) -> int:
    """Cycles for a streamed GEMV: one tile element bundle per cycle."""
    cd = latency if latency is not None else circuit("map_reduce", width).depth
    return pipeline_cycles(cd, 1, math.ceil(n * m / width))


def sharded_gemv_cycles(n: int, m: int, tile_n: int, width: int,
                        lanes: int, bytes_per_cycle: float,
                        itemsize: int = 4, latency: int | None = None,
                        channels: int | None = None) -> int:
    """Bandwidth-aware cycles for the sharded row-tiles GEMV.

    Each lane streams its share of row tiles from its own channel at
    :func:`~repro.models.iomodel.lane_read_rate` elements per cycle (the
    channel budget throttles widths the memory cannot feed); the design
    finishes with its slowest lane — ``ceil(T/lanes)`` row tiles when
    the tile count T doesn't divide evenly.  ``channels`` defaults to
    one per lane; with fewer, lanes share channel budgets.
    """
    from .iomodel import lane_read_rate

    if n % tile_n:
        raise ValueError(f"n={n} not divisible into {tile_n}-row tiles")
    tiles = n // tile_n
    if not (1 <= lanes <= tiles):
        raise ValueError(f"lanes={lanes} must be in [1, {tiles}]")
    if channels is None:
        channels = lanes
    per_lane_bpc = bytes_per_cycle * min(channels, lanes) / lanes
    rate = lane_read_rate(width, per_lane_bpc, itemsize)
    worst_lane_elems = math.ceil(tiles / lanes) * tile_n * m
    cd = latency if latency is not None else circuit("map_reduce",
                                                     width).depth
    return cd + math.ceil(worst_lane_elems / rate)


def sharded_gemv_speedup(n: int, m: int, tile_n: int, width: int,
                         lanes: int, bytes_per_cycle: float,
                         itemsize: int = 4) -> float:
    """Model speedup of ``lanes``-lane sharded GEMV over single-lane.

    Near-linear on bandwidth-bound sizes (``width * itemsize`` well
    above ``bytes_per_cycle``); saturates at the compute limit once the
    aggregate channel bandwidth covers ``lanes * width`` elements/cycle.
    """
    one = sharded_gemv_cycles(n, m, tile_n, width, 1, bytes_per_cycle,
                              itemsize)
    many = sharded_gemv_cycles(n, m, tile_n, width, lanes, bytes_per_cycle,
                               itemsize)
    return one / many


def gemm_systolic_cycles(n: int, m: int, k: int, pr: int, pc: int,
                         tile_r: int, tile_c: int,
                         drain_latency: int = 0) -> int:
    """Cycles for the systolic GEMM of Sec. III-C.

    Each PE accumulates on the same C element every TR*TC/(PR*PC) cycles;
    a TR x TC tile takes K * TR*TC/(PR*PC) cycles, and there are
    ceil(N/TR)*ceil(M/TC) tiles.  The wavefront skew (PR+PC) and the drain
    add a per-tile constant.
    """
    if tile_r % pr or tile_c % pc:
        raise ValueError("memory tile must be a multiple of the compute grid")
    elems_per_pe = (tile_r // pr) * (tile_c // pc)
    tiles = math.ceil(n / tile_r) * math.ceil(m / tile_c)
    per_tile = k * elems_per_pe + (pr + pc) + drain_latency
    return tiles * per_tile


def expected_performance(dsps: int, frequency: float,
                         flops_per_dsp_cycle: int = FLOPS_PER_DSP_CYCLE) -> float:
    """Peak flop/s if every DSP starts an operation each cycle (Sec. VI-B).

    The paper uses this as the horizontal "expected performance" bars of
    Fig. 10 and to gauge module efficiency.
    """
    if dsps < 0 or frequency <= 0:
        raise ValueError("invalid dsps/frequency")
    return dsps * frequency * flops_per_dsp_cycle


def achieved_performance(flops: int, cycles: int, frequency: float) -> float:
    """Flop/s achieved by a run of ``cycles`` cycles at ``frequency``."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return flops * frequency / cycles


def optimal_width(bandwidth: float, frequency: float, elem_size: int,
                  operands_per_cycle_per_lane: int = 2) -> int:
    """Optimal vectorization width W = ceil(B / (k*S*F)) (Sec. IV-B).

    ``bandwidth`` in bytes/s, ``frequency`` in Hz, ``elem_size`` in bytes.
    ``operands_per_cycle_per_lane`` is the number of stream operands one
    lane consumes per cycle (2 for DOT: one of x, one of y; 1 for SCAL).
    """
    if min(bandwidth, frequency) <= 0 or elem_size < 1:
        raise ValueError("invalid bandwidth/frequency/elem_size")
    return max(1, math.ceil(
        bandwidth / (operands_per_cycle_per_lane * elem_size * frequency)))


def optimal_width_tiled_gemv(bandwidth: float, frequency: float,
                             elem_size: int, tile_n: int, tile_m: int) -> int:
    """Optimal width of a tiled GEMV fed at ``bandwidth`` (Sec. IV-B).

    With tiles T_N x T_M the module needs W elements of A plus only
    W/(T_N*T_M) elements of x per cycle:
    W = ceil(B*T_N*T_M / (F*S*(1 + T_N*T_M))), which approaches B/(F*S)
    — double the non-tiled value — for large tiles.
    """
    if tile_n < 1 or tile_m < 1:
        raise ValueError("tile sizes must be >= 1")
    t = tile_n * tile_m
    return max(1, math.ceil(bandwidth * t / (frequency * elem_size * (1 + t))))


def certified_cycle_band(latencies: Sequence[int], iis: Sequence[int],
                         iterations: Sequence[Optional[int]],
                         lanes: Sequence[int]) -> Tuple[int, int]:
    """Predicted ``(lo, hi)`` cycle band for a certified whole program.

    A single-clock composition of ii=1 pipelines finishes no earlier than
    its longest member's steady phase (``lo = max M``, from C = L + I*M
    with the fills overlapped), and no later than that plus every
    member's fill/drain and epilogue slack — each kernel can add at most
    its pipeline depth, one initiation and a sub-``lanes`` ragged tail
    beyond the overlapped steady state.  The band is deliberately
    two-sided and conservative: the cross-check asserts the measured
    cycle count of every certified run falls inside it.
    """
    ms = [m for m in iterations if m is not None]
    lo = max(ms, default=0)
    hi = lo + sum(pipeline_cycles(lt, ii, 0) + ii + w + 4
                  for lt, ii, w in zip(latencies, iis, lanes)) + 16
    return lo, hi


@dataclass(frozen=True)
class ModulePerformance:
    """Summary of a dimensioned module: the space/time trade-off point."""

    routine: str
    width: int
    cycles: int
    frequency: float
    flops: int

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency

    @property
    def flops_per_second(self) -> float:
        return self.flops / self.seconds


def routine_flops(routine: str, n: int, m: int = 0, k: int = 0) -> int:
    """Floating point operations performed by a routine invocation."""
    key = routine.lower()
    table = {
        "scal": n, "copy": 0, "swap": 0, "axpy": 2 * n, "dot": 2 * n,
        "sdsdot": 2 * n + 1, "nrm2": 2 * n + 1, "asum": 2 * n - 1,
        "iamax": n, "rot": 6 * n, "rotm": 6 * n,
        "gemv": 2 * n * m + 3 * n, "ger": 2 * n * m + n,
        "syr": 2 * n * n, "syr2": 4 * n * n, "trsv": n * n,
        "gemm": 2 * n * m * k + 2 * n * m, "syrk": n * n * k,
        "syr2k": 2 * n * n * k, "trsm": n * n * m,
    }
    if key not in table:
        raise ValueError(f"unknown routine {routine!r}")
    return table[key]
