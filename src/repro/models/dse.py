"""Design-space exploration over the Sec. IV space/time models.

The paper's models exist "to enable the user to choose desirable
combinations of parameters to optimize performance and/or resource usage
of her circuit design".  This module turns them into a search: enumerate
candidate configurations (vectorization widths, tile sizes, systolic
grids), estimate each point's resources / frequency / completion time on a
chosen device, discard points that do not fit, and return the Pareto
frontier of the space/time trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..fpga.device import FpgaDevice, FrequencyModel
from ..fpga.resources import (
    ResourceUsage,
    gemm_systolic_resources,
    level1_latency,
    level1_resources,
    level2_resources,
)
from .performance import gemm_systolic_cycles, level1_cycles, pipeline_cycles
from .workdepth import routine_class


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    routine: str
    precision: str
    params: Tuple[Tuple[str, int], ...]       # sorted (name, value) pairs
    usage: ResourceUsage
    cycles: int
    frequency: float

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency

    @property
    def utilization_key(self) -> int:
        """Scalar resource cost used for Pareto domination (DSPs are the
        scarce compute resource on both devices)."""
        return self.usage.dsps

    def param(self, name: str) -> int:
        return dict(self.params)[name]

    def describe(self) -> str:
        ps = ", ".join(f"{k}={v}" for k, v in self.params)
        return (f"{self.routine}[{ps}]: {self.cycles} cycles @ "
                f"{self.frequency / 1e6:.0f} MHz = {self.seconds * 1e6:.1f} "
                f"us, {self.usage.dsps} DSPs")


def explore_level1(routine: str, n: int, device: FpgaDevice,
                   precision: str = "single",
                   widths: Optional[Sequence[int]] = None
                   ) -> List[DesignPoint]:
    """Evaluate a Level-1 routine across vectorization widths."""
    if n < 1:
        raise ValueError("n must be positive")
    widths = widths or (2, 4, 8, 16, 32, 64, 128, 256)
    klass = routine_class(routine)
    fm = FrequencyModel(device)
    points = []
    for w in widths:
        usage = level1_resources(klass, w, precision,
                                 include_overhead=True, device=device)
        if not usage.fits(device):
            continue
        f = fm.estimate("level1", precision,
                        utilization=usage.utilization(device))
        points.append(DesignPoint(
            routine=routine, precision=precision, params=(("width", w),),
            usage=usage, cycles=level1_cycles(routine, n, w), frequency=f))
    return points


def explore_gemv(n: int, m: int, device: FpgaDevice,
                 precision: str = "single",
                 widths: Optional[Sequence[int]] = None,
                 tiles: Optional[Sequence[int]] = None) -> List[DesignPoint]:
    """Evaluate tiled GEMV across (width, tile) combinations."""
    widths = widths or (8, 16, 32, 64, 128)
    tiles = tiles or (128, 256, 512, 1024, 2048)
    fm = FrequencyModel(device)
    points = []
    for w in widths:
        for t in tiles:
            usage = level2_resources(w, t, precision, device=device)
            if not usage.fits(device):
                continue
            f = fm.estimate("level2", precision,
                            utilization=usage.utilization(device))
            cd = level1_latency("map_reduce", w, precision)
            cycles = pipeline_cycles(cd, 1, math.ceil(n * m / w))
            points.append(DesignPoint(
                routine="gemv", precision=precision,
                params=(("tile", t), ("width", w)),
                usage=usage, cycles=cycles, frequency=f))
    return points


def explore_systolic_gemm(n: int, m: int, k: int, device: FpgaDevice,
                          precision: str = "single",
                          grids: Optional[Sequence[Tuple[int, int]]] = None,
                          ratios: Sequence[int] = (3, 6, 9, 12)
                          ) -> List[DesignPoint]:
    """Evaluate systolic GEMM across PE grids and memory/compute ratios."""
    grids = grids or ((8, 8), (16, 16), (32, 32), (16, 8), (40, 80))
    fm = FrequencyModel(device)
    points = []
    for pr, pc in grids:
        for ratio in ratios:
            tr, tc = pr * ratio, pc * ratio
            usage = gemm_systolic_resources(pr, pc, tr, tc, precision,
                                            device=device)
            if not usage.fits(device):
                continue
            f = fm.estimate("systolic", precision,
                            utilization=usage.utilization(device))
            n_pad = math.ceil(n / tr) * tr
            m_pad = math.ceil(m / tc) * tc
            cycles = gemm_systolic_cycles(n_pad, m_pad, k, pr, pc, tr, tc)
            points.append(DesignPoint(
                routine="gemm", precision=precision,
                params=(("pc", pc), ("pr", pr), ("ratio", ratio)),
                usage=usage, cycles=cycles, frequency=f))
    return points


def pareto_frontier(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated in (seconds, DSPs): the space/time frontier."""
    pts = sorted(points, key=lambda p: (p.seconds, p.utilization_key))
    frontier: List[DesignPoint] = []
    best_cost = None
    for p in pts:
        if best_cost is None or p.utilization_key < best_cost:
            frontier.append(p)
            best_cost = p.utilization_key
    return frontier


def fastest(points: Iterable[DesignPoint]) -> DesignPoint:
    """The minimum-time point (ties broken by fewer DSPs)."""
    pts = list(points)
    if not pts:
        raise ValueError("no feasible design points")
    return min(pts, key=lambda p: (p.seconds, p.utilization_key))


def cheapest_within(points: Iterable[DesignPoint],
                    time_budget: float) -> DesignPoint:
    """The fewest-resources point meeting a completion-time budget —
    the paper's "complete the computation within a time budget" use-case.
    """
    feasible = [p for p in points if p.seconds <= time_budget]
    if not feasible:
        raise ValueError(
            f"no design meets the {time_budget * 1e6:.1f} us budget")
    return min(feasible, key=lambda p: (p.utilization_key, p.seconds))
