"""Design-space exploration over the Sec. IV space/time models.

The paper's models exist "to enable the user to choose desirable
combinations of parameters to optimize performance and/or resource usage
of her circuit design".  This module turns them into a search: enumerate
candidate configurations (vectorization widths, tile sizes, systolic
grids), estimate each point's resources / frequency / completion time on a
chosen device, discard points that do not fit, and return the Pareto
frontier of the space/time trade-off.

Every sweep evaluates its points independently, so the ``explore_*``
functions accept a ``workers`` argument and fan large sweeps out over a
:class:`concurrent.futures.ProcessPoolExecutor`: ``workers=None`` (the
default) parallelizes automatically once a sweep has at least
:data:`PARALLEL_THRESHOLD` candidate points, an explicit ``workers > 1``
forces a pool, and ``workers=1`` forces the serial loop.  Results are
identical and identically ordered either way (``Executor.map`` preserves
input order; each point's evaluation is a pure function of its inputs).
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..fpga.device import DEVICES, FpgaDevice, FrequencyModel
from ..fpga.resources import (
    ResourceUsage,
    gemm_systolic_resources,
    level1_latency,
    level1_resources,
    level2_resources,
)
from .performance import (
    gemm_systolic_cycles,
    level1_cycles,
    pipeline_cycles,
    sharded_gemv_cycles,
)
from .workdepth import routine_class

#: Sweep size at which ``workers=None`` starts using a process pool.
#: Below it, pool startup costs more than the sweep itself.
PARALLEL_THRESHOLD = 64


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    routine: str
    precision: str
    params: Tuple[Tuple[str, int], ...]       # sorted (name, value) pairs
    usage: ResourceUsage
    cycles: int
    frequency: float

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency

    @property
    def utilization_key(self) -> int:
        """Scalar resource cost used for Pareto domination (DSPs are the
        scarce compute resource on both devices)."""
        return self.usage.dsps

    def param(self, name: str) -> int:
        return dict(self.params)[name]

    def describe(self) -> str:
        ps = ", ".join(f"{k}={v}" for k, v in self.params)
        return (f"{self.routine}[{ps}]: {self.cycles} cycles @ "
                f"{self.frequency / 1e6:.0f} MHz = {self.seconds * 1e6:.1f} "
                f"us, {self.usage.dsps} DSPs")


def _sweep(fn: Callable[[Any], Optional[DesignPoint]],
           items: Iterable[Tuple[Any, ...]],
           workers: Optional[int]) -> List[DesignPoint]:
    """Map a point evaluator over candidates, serially or in a pool.

    The evaluator must be a module-level function taking one argument
    tuple and returning a :class:`DesignPoint` or ``None`` (infeasible);
    order is preserved, ``None`` entries are dropped.
    """
    items = list(items)
    if workers is None:
        workers = (os.cpu_count() or 1) \
            if len(items) >= PARALLEL_THRESHOLD else 1
    if workers > 1 and len(items) > 1:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(items))) as pool:
            chunk = max(1, len(items) // (workers * 4))
            results = list(pool.map(fn, items, chunksize=chunk))
    else:
        results = [fn(it) for it in items]
    return [p for p in results if p is not None]


def _canonical_device(device: FpgaDevice) -> FpgaDevice:
    """Map a pickled device copy back to its registry singleton.

    :class:`FrequencyModel` resolves its calibration key by identity
    against :data:`repro.fpga.device.DEVICES`; a worker process receives
    an equal-but-distinct copy, so match by value here.
    """
    for d in DEVICES.values():
        if d is device or d == device:
            return d
    return device


def _eval_level1(args: Tuple[Any, ...]) -> Optional[DesignPoint]:
    routine, n, device, precision, w = args
    device = _canonical_device(device)
    klass = routine_class(routine)
    usage = level1_resources(klass, w, precision,
                             include_overhead=True, device=device)
    if not usage.fits(device):
        return None
    f = FrequencyModel(device).estimate(
        "level1", precision, utilization=usage.utilization(device))
    return DesignPoint(
        routine=routine, precision=precision, params=(("width", w),),
        usage=usage, cycles=level1_cycles(routine, n, w), frequency=f)


def explore_level1(routine: str, n: int, device: FpgaDevice,
                   precision: str = "single",
                   widths: Optional[Sequence[int]] = None,
                   workers: Optional[int] = None) -> List[DesignPoint]:
    """Evaluate a Level-1 routine across vectorization widths."""
    if n < 1:
        raise ValueError("n must be positive")
    widths = widths or (2, 4, 8, 16, 32, 64, 128, 256)
    routine_class(routine)          # validate before fanning out
    return _sweep(_eval_level1,
                  ((routine, n, device, precision, w) for w in widths),
                  workers)


def _eval_gemv(args: Tuple[Any, ...]) -> Optional[DesignPoint]:
    n, m, device, precision, w, t = args
    device = _canonical_device(device)
    usage = level2_resources(w, t, precision, device=device)
    if not usage.fits(device):
        return None
    f = FrequencyModel(device).estimate(
        "level2", precision, utilization=usage.utilization(device))
    cd = level1_latency("map_reduce", w, precision)
    cycles = pipeline_cycles(cd, 1, math.ceil(n * m / w))
    return DesignPoint(
        routine="gemv", precision=precision,
        params=(("tile", t), ("width", w)),
        usage=usage, cycles=cycles, frequency=f)


def explore_gemv(n: int, m: int, device: FpgaDevice,
                 precision: str = "single",
                 widths: Optional[Sequence[int]] = None,
                 tiles: Optional[Sequence[int]] = None,
                 workers: Optional[int] = None) -> List[DesignPoint]:
    """Evaluate tiled GEMV across (width, tile) combinations."""
    widths = widths or (8, 16, 32, 64, 128)
    tiles = tiles or (128, 256, 512, 1024, 2048)
    return _sweep(_eval_gemv,
                  ((n, m, device, precision, w, t)
                   for w in widths for t in tiles),
                  workers)


def _eval_gemv_sharded(args: Tuple[Any, ...]) -> Optional[DesignPoint]:
    n, m, device, precision, w, t, lanes, chans = args
    device = _canonical_device(device)
    if chans > device.dram_banks or lanes > n // t:
        return None
    # Lane datapaths are replicated; the merge kernel adds one more
    # level-2 stage's worth of registers/logic but no DSPs.
    lane = level2_resources(w, t, precision, device=device)
    usage = ResourceUsage(luts=lane.luts * lanes + lane.luts // 4,
                          ffs=lane.ffs * lanes + lane.ffs // 4,
                          m20ks=lane.m20ks * lanes,
                          dsps=lane.dsps * lanes)
    if not usage.fits(device):
        return None
    f = FrequencyModel(device).estimate(
        "level2", precision, utilization=usage.utilization(device))
    itemsize = 8 if precision == "double" else 4
    bpc = max(1, int(device.dram_bank_bandwidth / f))
    cd = level1_latency("map_reduce", w, precision)
    cycles = sharded_gemv_cycles(n, m, t, w, lanes, bpc,
                                 itemsize=itemsize, latency=cd,
                                 channels=chans)
    return DesignPoint(
        routine="gemv_sharded", precision=precision,
        params=(("chans", chans), ("lanes", lanes),
                ("tile", t), ("width", w)),
        usage=usage, cycles=cycles, frequency=f)


def explore_gemv_sharded(n: int, m: int, device: FpgaDevice,
                         precision: str = "single",
                         widths: Optional[Sequence[int]] = None,
                         tiles: Optional[Sequence[int]] = None,
                         lanes: Optional[Sequence[int]] = None,
                         workers: Optional[int] = None) -> List[DesignPoint]:
    """Co-optimize (width, tile, lanes, placement) for the sharded GEMV.

    The placement axis is the number of memory channels the lanes
    spread over (``chans``): one channel per lane (the split placement
    the sharded builders default to) against all lanes contending for a
    single channel (the no-placement baseline) — the two ends of the
    placement spectrum, so the frontier shows exactly when explicit
    placement pays.  Points whose channel count exceeds the device's or
    whose lane count exceeds the row-tile count are infeasible.
    """
    widths = widths or (8, 16, 32, 64)
    tiles = tiles or (128, 256, 512)
    lanes = lanes or (1, 2, 4, 8)
    return _sweep(_eval_gemv_sharded,
                  ((n, m, device, precision, w, t, ln, chans)
                   for w in widths for t in tiles for ln in lanes
                   for chans in sorted({1, ln})),
                  workers)


def _eval_systolic(args: Tuple[Any, ...]) -> Optional[DesignPoint]:
    n, m, k, device, precision, pr, pc, ratio = args
    device = _canonical_device(device)
    tr, tc = pr * ratio, pc * ratio
    usage = gemm_systolic_resources(pr, pc, tr, tc, precision,
                                    device=device)
    if not usage.fits(device):
        return None
    f = FrequencyModel(device).estimate(
        "systolic", precision, utilization=usage.utilization(device))
    n_pad = math.ceil(n / tr) * tr
    m_pad = math.ceil(m / tc) * tc
    cycles = gemm_systolic_cycles(n_pad, m_pad, k, pr, pc, tr, tc)
    return DesignPoint(
        routine="gemm", precision=precision,
        params=(("pc", pc), ("pr", pr), ("ratio", ratio)),
        usage=usage, cycles=cycles, frequency=f)


def explore_systolic_gemm(n: int, m: int, k: int, device: FpgaDevice,
                          precision: str = "single",
                          grids: Optional[Sequence[Tuple[int, int]]] = None,
                          ratios: Sequence[int] = (3, 6, 9, 12),
                          workers: Optional[int] = None) -> List[DesignPoint]:
    """Evaluate systolic GEMM across PE grids and memory/compute ratios."""
    grids = grids or ((8, 8), (16, 16), (32, 32), (16, 8), (40, 80))
    return _sweep(_eval_systolic,
                  ((n, m, k, device, precision, pr, pc, ratio)
                   for pr, pc in grids for ratio in ratios),
                  workers)


def pareto_frontier(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated in (seconds, DSPs): the space/time frontier."""
    pts = sorted(points, key=lambda p: (p.seconds, p.utilization_key))
    frontier: List[DesignPoint] = []
    best_cost = None
    for p in pts:
        if best_cost is None or p.utilization_key < best_cost:
            frontier.append(p)
            best_cost = p.utilization_key
    return frontier


def fastest(points: Iterable[DesignPoint]) -> DesignPoint:
    """The minimum-time point (ties broken by fewer DSPs)."""
    pts = list(points)
    if not pts:
        raise ValueError("no feasible design points")
    return min(pts, key=lambda p: (p.seconds, p.utilization_key))


def cheapest_within(points: Iterable[DesignPoint],
                    time_budget: float) -> DesignPoint:
    """The fewest-resources point meeting a completion-time budget —
    the paper's "complete the computation within a time budget" use-case.
    """
    feasible = [p for p in points if p.seconds <= time_budget]
    if not feasible:
        raise ValueError(
            f"no design meets the {time_budget * 1e6:.1f} us budget")
    return min(feasible, key=lambda p: (p.utilization_key, p.seconds))
