"""I/O-complexity models for tiling schemes and streaming compositions.

Everything in Sec. III-B and Sec. V of the paper that counts *memory I/O
operations* (element reads and writes against off-chip DRAM) is collected
here.  These closed forms are asserted against the simulator's actual DRAM
access counters in the integration tests, and drive the Fig. 11 and Table
VI benchmark analyses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


# ---------------------------------------------------------------------------
# GEMV tiling schemes (Sec. III-B, Fig. 2)
# ---------------------------------------------------------------------------

def gemv_io_tiles_by_rows(n: int, m: int, tile_n: int) -> int:
    """I/O of GEMV receiving A in tiles by rows: NM + MN/T_N + 2N.

    y is reused on chip; x must be *replayed* ceil(N/T_N) times.
    """
    _check(n, m)
    return n * m + m * math.ceil(n / tile_n) + 2 * n


def gemv_io_tiles_by_cols(n: int, m: int, tile_m: int) -> int:
    """I/O of GEMV receiving A in tiles by columns: NM + M + 2NM/T_M.

    x is reused on chip; y must be replayed (written and re-read)
    ceil(M/T_M) times.
    """
    _check(n, m)
    return n * m + m + 2 * n * math.ceil(m / tile_m)


def gemv_replay_count_rows(n: int, tile_n: int) -> int:
    """Times the x vector is re-read in the tiles-by-rows scheme."""
    return math.ceil(n / tile_n)


def gemv_replay_count_cols(m: int, tile_m: int) -> int:
    """Times the y vector is written+re-read in the tiles-by-cols scheme."""
    return math.ceil(m / tile_m)


def gemm_io_tiled(n: int, m: int, k: int, tile_n: int, tile_m: int) -> int:
    """I/O of the tiled GEMM: A replayed per tile column, B per tile row.

    NK * ceil(M/T_M)  (A)  +  KM * ceil(N/T_N)  (B)  +  2NM  (C in/out) —
    the classic communication volume the memory tiles control, and the
    denominator of the Sec. III-C systolic design's off-chip traffic.
    """
    _check(n, m, k)
    return (n * k * math.ceil(m / tile_m) + k * m * math.ceil(n / tile_n)
            + 2 * n * m)


# ---------------------------------------------------------------------------
# HBM channels: bandwidth terms and sharded-GEMV accounting
# ---------------------------------------------------------------------------

def channel_bytes_per_cycle(channel_bandwidth: float,
                            frequency: float) -> int:
    """One memory channel's bandwidth expressed in bytes per clock cycle.

    The per-channel analogue of
    :meth:`~repro.fpga.device.FpgaDevice.bytes_per_cycle`: on HBM parts
    each pseudo-channel contributes this budget independently, which is
    what makes placement a performance lever.
    """
    if channel_bandwidth <= 0 or frequency <= 0:
        raise ValueError("bandwidth and frequency must be positive")
    return max(1, int(channel_bandwidth / frequency))


def lane_read_rate(width: int, bytes_per_cycle: float,
                   itemsize: int = 4) -> float:
    """Steady elements/cycle one lane reads from its channel share.

    The lane wants ``width`` elements per cycle; the channel grants at
    most ``bytes_per_cycle`` bytes — whichever is smaller throttles.
    A fractional result models the residue accumulation of partial
    grants (a 47 B/cycle channel feeds 11.75 f32/cycle on average).
    """
    if width < 1 or itemsize < 1 or bytes_per_cycle <= 0:
        raise ValueError("invalid width/itemsize/bytes_per_cycle")
    return min(float(width), bytes_per_cycle / itemsize)


def sharded_read_rate(width: int, lanes: int, channels: int,
                      bytes_per_cycle: float, itemsize: int = 4) -> float:
    """Aggregate steady elements/cycle of ``lanes`` parallel readers.

    With one channel per lane (``channels >= lanes``) every lane owns a
    full ``bytes_per_cycle`` budget and the aggregate rate is
    near-linear in the lane count (until ``lanes * width`` caps it).
    With fewer channels than lanes the channel budgets are shared.
    """
    if lanes < 1 or channels < 1:
        raise ValueError("lanes and channels must be positive")
    per_lane = bytes_per_cycle * min(channels, lanes) / lanes
    return lanes * lane_read_rate(width, per_lane, itemsize)


def gemv_io_sharded(n: int, m: int, tile_n: int, lanes: int) -> int:
    """Total I/O of the sharded tiles-by-rows GEMV: same as single-lane.

    Striping row tiles across lanes moves *bandwidth*, not volume: each
    lane replays x once per row tile it owns, and the per-lane replay
    counts sum to the single-lane ceil(N/T_N), so the total is exactly
    :func:`gemv_io_tiles_by_rows` for every lane count.  (The merge
    kernel is channel-to-channel and contributes no memory I/O.)
    """
    _check(n, m, lanes)
    return gemv_io_tiles_by_rows(n, m, tile_n)


# ---------------------------------------------------------------------------
# Composed applications (Sec. V)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CompositionIO:
    """I/O and completion-cycle estimates for host-layer vs streaming."""

    sequential_io: int
    streaming_io: int
    sequential_cycles: int
    streaming_cycles: int

    @property
    def io_reduction(self) -> float:
        return self.sequential_io / self.streaming_io

    @property
    def cycle_speedup(self) -> float:
        return self.sequential_cycles / self.streaming_cycles


def axpydot(n: int, l_copy: int = 50, l_axpy: int = 50,
            l_dot: int = 100, width: int = 1) -> CompositionIO:
    """AXPYDOT: z = w - alpha*v;  beta = z^T u  (Sec. V-A).

    Host layer: COPY (2N) + AXPY (3N) + DOT (2N) = 7N I/O ops and three
    sequential pipelines of ~N/W cycles each.  Streaming: AXPY chains into
    DOT, the copy disappears: 3N+1 I/O ops and one pipeline of ~N/W cycles.
    """
    _check(n)
    steps = math.ceil(n / width)
    return CompositionIO(
        sequential_io=7 * n,
        streaming_io=3 * n + 1,
        sequential_cycles=(l_copy + steps) + (l_axpy + steps) + (l_dot + steps),
        streaming_cycles=l_copy + l_axpy + l_dot + steps,
    )


def bicg(n: int, m: int, l_gemv: int = 100, width: int = 1) -> CompositionIO:
    """BICG: q = A p and s = A^T r (Sec. V-A, Fig. 7).

    Both GEMVs read A; streaming reads it once (2NM -> NM) but does not
    shorten the NM-cycle pipeline (the two GEMVs run in parallel anyway).
    """
    _check(n, m)
    steps = math.ceil(n * m / width)
    return CompositionIO(
        sequential_io=2 * n * m + 2 * (m + n),
        streaming_io=n * m + 2 * (m + n),
        sequential_cycles=2 * (l_gemv + steps),
        streaming_cycles=l_gemv + steps,
    )


def gemver(n: int, l_mod: int = 100, width: int = 1) -> CompositionIO:
    """GEMVER (Sec. V-C, Fig. 9).

    B = A + u1 v1^T + u2 v2^T;  x = beta*B^T y + z;  w = alpha*B x.
    Classic BLAS: two GER, two GEMV, two copies: ~8N^2 + 10N I/O and
    5N^2 + N cycles.  The streaming version runs component (1) — GER, GER,
    GEMV^T fused — then component (2) — the final GEMV — for ~3N^2 + 9N
    I/O and 2N^2 cycles.
    """
    _check(n)
    n2 = n * n
    steps = math.ceil(n2 / width)
    return CompositionIO(
        sequential_io=8 * n2 + 10 * n,
        streaming_io=3 * n2 + 9 * n,
        sequential_cycles=5 * steps + math.ceil(n / width),
        streaming_cycles=2 * steps + 2 * l_mod,
    )


def atax_min_channel_depth(n_cols: int, tile_n: int) -> int:
    """Minimal A-channel depth making the streamed ATAX valid (Sec. V-B).

    The first GEMV produces its first output block only after consuming an
    entire row of tiles of A (N * T_N elements); until then the second
    GEMV's A channel must buffer everything it is being sent.
    """
    if n_cols < 1 or tile_n < 1:
        raise ValueError("dimensions must be positive")
    return n_cols * tile_n


def atax_io(n: int, m: int, streaming_valid: bool) -> int:
    """I/O of ATAX y = A^T A x (A is M x N).

    A fully streamed (valid) composition reads A once; the fallback that
    breaks the MDAG lets both GEMVs read A independently, matching the
    non-streamed I/O volume (Sec. V-B).
    """
    _check(n, m)
    base = 2 * n + n  # x in, y out, intermediate vector
    return (n * m if streaming_valid else 2 * n * m) + base


def _check(*dims: int) -> None:
    for d in dims:
        if d < 1:
            raise ValueError("dimensions must be positive")
