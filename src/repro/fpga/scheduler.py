"""Event-driven wake-list scheduler (``Engine(mode="event")``).

The dense core resumes every kernel generator every simulated cycle,
even kernels that are provably asleep or blocked on a channel whose
state cannot change.  This scheduler only touches kernels that can act:

* a kernel that ends its cycle with ``Clock()`` is queued for the next
  cycle; ``Clock(n)`` parks it on the event heap until ``t + n``;
* a kernel blocked on ``Pop`` registers as a *pop waiter* on the
  channel and is woken when maturation makes data visible
  (``on_data``); blocked on ``Push`` it registers as a *push waiter*
  and is woken when a pop frees space (``on_space``).  Maturation moves
  values from staging into the FIFO without changing their sum, so only
  pops can unblock a push — the waiter lists encode exactly the state
  transitions that can matter;
* staged values become heap events at their ready cycle (``on_staged``),
  deduplicated per channel; a pop under an overdue backlog re-arms the
  maturation event for the next cycle.

When no kernel is queued for the current cycle, ``now`` jumps straight
to the earliest heap event — the cycle count, per-kernel stall charges,
channel statistics and :class:`~repro.fpga.errors.DeadlockError`
semantics stay identical to the dense core (the differential tests in
``tests/test_engine_differential.py`` enforce this), only wall-clock
time shrinks.  Deadlock detection becomes simpler here: an executed
cycle that makes no progress with nothing on the heap — or an empty
wake list with live kernels — *is* the deadlock; there is no need to
re-poll every kernel to discover that nothing can run.

Stall accounting is lazy.  The dense core charges a blocked kernel one
stall per cycle by re-stepping it; this scheduler charges the backlog
``wake - since - 1`` when the kernel wakes (the retry itself charges
the wake cycle if it fails again) and ``deadlock_cycle - since`` when a
deadlock is declared, where ``since`` is the last charged cycle kept in
the kernel's typed :class:`~repro.fpga.kernel.BlockedState`.

Within an executed cycle the dense step order is preserved: kernels
step in registration order, and a kernel woken mid-cycle by a
lower-index kernel's pop joins *this* cycle only if its own index is
still ahead of the stepping cursor — otherwise it waits for the next
cycle, exactly when the dense core would have retried it.

:class:`~repro.fpga.bulk.BulkScheduler` subclasses this scheduler and
adds a third tier on top of the event machinery: entire steady-state
windows executed as one arithmetic superstep (``Engine(mode="bulk")``).
Everything here — waiter lists, heap events, lazy stall charges — is
the fallback path that keeps the bulk tier byte-identical outside its
proven windows.
"""

from __future__ import annotations

import heapq
from bisect import insort
from operator import attrgetter
from typing import List, Optional

from .channel import Channel
from .errors import MAX_OPS_PER_CYCLE, SimulationError
from .kernel import BlockedState, Clock, Kernel, Pop, Push

_KIDX = attrgetter("index")

_MATURE = 0
_WAKE = 1


class WakeListScheduler:
    """Drives one :class:`~repro.fpga.engine.Engine` run in event mode."""

    def __init__(self, engine, max_cycles: int):
        self.engine = engine
        self.max_cycles = max_cycles
        self.kernels: List[Kernel] = list(engine.kernels.values())
        self.channels: List[Channel] = list(engine.channels.values())
        self.now = 0
        self._heap: list = []            # (cycle, seq, tag, Channel|Kernel)
        self._seq = 0
        self._current: List[Kernel] = []  # kernels stepping this cycle
        self._next: List[Kernel] = []     # kernels queued for now + 1
        self._step_idx = -1               # index of the kernel stepping now
        self._progressed = False
        self._live = 0
        self._observers = list(engine._observers)
        self._wants_states = any(o.wants_kernel_states
                                 for o in self._observers)

    # -- channel event sink (bound via Channel.bind_events) -----------------
    def on_staged(self, ch: Channel, ready_cycle: int) -> None:
        t = ready_cycle if ready_cycle > self.now else self.now + 1
        self._schedule_mature(ch, t)

    def on_space(self, ch: Channel) -> None:
        for k in ch._push_waiters:
            self._wake(k)
        if ch._staged:
            nm = ch._staged[0][0]
            self._schedule_mature(ch, nm if nm > self.now else self.now + 1)

    def on_data(self, ch: Channel) -> None:
        for k in ch._pop_waiters:
            self._wake(k)

    def _schedule_mature(self, ch: Channel, t: int) -> None:
        at = ch._mature_at
        if at is None or t < at:
            ch._mature_at = t
            self._seq += 1
            heapq.heappush(self._heap, (t, self._seq, _MATURE, ch))

    def _wake(self, k: Kernel) -> None:
        if k.done or k._queued_for is not None:
            return
        if k._last_stepped != self.now and k.index > self._step_idx:
            k._queued_for = self.now
            insort(self._current, k, key=_KIDX)
        else:
            k._queued_for = self.now + 1
            self._next.append(k)

    # -- run ----------------------------------------------------------------
    def run(self):
        eng = self.engine
        observers = self._observers
        self.now = eng.now
        for i, k in enumerate(self.kernels):
            k._queued_for = self.now if not k.done else None
            k._last_stepped = -1
            k._last_progress = False
        self._current = [k for k in self.kernels if not k.done]
        self._live = len(self._current)
        for ch in self.channels:
            ch.bind_events(self)
            ch._mature_at = None
            ch._pop_waiters.clear()
            ch._push_waiters.clear()
            if ch._staged:
                nm = ch._staged[0][0]
                self._schedule_mature(ch, nm if nm > self.now else self.now)
        try:
            for o in observers:
                o.on_run_start(eng)
            while True:
                if self._live == 0:
                    eng.now = self.now
                    report = eng._build_report()
                    for o in observers:
                        o.on_run_end(report)
                    return report
                if self.now >= self.max_cycles:
                    self._raise_hang("timeout", self.now,
                                     budget=self.max_cycles)
                if not self._current:
                    t_next = self._next_event_time()
                    if t_next is None:
                        self._deadlock_idle()
                    elif t_next > self.now:
                        # Dense would grind through these cycles finding
                        # nothing runnable; skip straight to the event —
                        # unless the livelock deadline falls inside the
                        # jump, in which case dense would have tripped
                        # there (sleeping kernels push their wake event,
                        # and hence t_next, past the deadline, so they
                        # exempt the jump exactly as they exempt dense).
                        w = eng._watch_window
                        trip = max(eng._last_op_cycle + w, self.now)
                        if w and t_next > trip and not any(
                                not k.done and k.sleep_until >= trip
                                for k in self.kernels):
                            self.now = trip
                            self._raise_hang("livelock", trip, budget=w)
                        target = min(t_next, self.max_cycles)
                        if observers:
                            for o in observers:
                                o.on_quiet(self.now, target - self.now)
                        self.now = target
                        if target >= self.max_cycles:
                            continue     # hits the max_cycles check above
                self._run_cycle()
        finally:
            eng.now = self.now
            for ch in self.channels:
                ch.bind_events(None)

    def _next_event_time(self) -> Optional[int]:
        """Earliest *viable* event, or None (= the dense deadlock verdict).

        Only called when no kernel is queued, so channel state is frozen
        until the next event: a maturation aimed at a full FIFO cannot
        move anything (``can_mature_later`` is False in dense terms) and
        must not count as reachable work — only a pop could free space,
        and pops need a runnable kernel.  Kernel wakes are always viable.
        """
        heap = self._heap
        # Prune stale entries off the top so the heap cannot grow
        # unboundedly with superseded events.
        while heap:
            t, _seq, tag, obj = heap[0]
            if tag == _MATURE:
                if obj._mature_at == t:
                    break
            elif obj._queued_for == t and not obj.done:
                break
            heapq.heappop(heap)
        best = None
        for t, _seq, tag, obj in heap:
            if best is not None and t >= best:
                continue
            if tag == _MATURE:
                if obj._mature_at != t or len(obj._fifo) >= obj.depth:
                    continue
            elif obj._queued_for != t or obj.done:
                continue
            best = t
        return best

    def _run_cycle(self) -> None:
        t = self.now
        eng = self.engine
        w = eng._watch_window
        if w and t >= eng._last_op_cycle + w and not any(
                not k.done and k.sleep_until >= t for k in self.kernels):
            # Same condition, same cycle as the dense core's check at the
            # top of its _step_cycle.
            self._raise_hang("livelock", t, budget=w)
        heap = self._heap
        self._progressed = False
        self._step_idx = -1
        # Phase 0: due events — maturations wake pop waiters into this
        # cycle; expired Clock(n) sleeps rejoin the step list.
        while heap and heap[0][0] <= t:
            _t0, _seq, tag, obj = heapq.heappop(heap)
            if tag == _MATURE:
                if obj._mature_at != _t0:
                    continue             # superseded by an earlier event
                obj._mature_at = None
                if obj.mature(t):        # fires on_data -> _wake
                    self._progressed = True
                    eng._last_op_cycle = t
                if obj._staged and len(obj._fifo) < obj.depth:
                    nm = obj._staged[0][0]
                    self._schedule_mature(obj, nm if nm > t else t + 1)
            else:
                if obj._queued_for == _t0 and not obj.done:
                    insort(self._current, obj, key=_KIDX)
        observers = self._observers
        if observers:
            for o in observers:
                o.on_cycle(t)
        if self.engine.memory is not None:
            self.engine.memory.begin_cycle(t)
        # Phase 1: step queued kernels in registration order.  Kernels
        # woken mid-cycle land in _current past the cursor (their index
        # exceeds the stepping kernel's) or in _next.
        cur = self._current
        i = 0
        while i < len(cur):
            k = cur[i]
            i += 1
            self._step_idx = k.index
            k._queued_for = None
            k._last_stepped = t
            b = k.blocked
            if b is not None:
                # Lazily charge the cycles dense would have spent
                # re-stepping this blocked kernel (the retry below
                # charges cycle t itself if it fails again).
                lag = t - b.since - 1
                if lag > 0:
                    k.stats.stall_cycles += lag
                    if b.kind == "pop":
                        b.channel.stats.stalled_pop_cycles += lag
                    else:
                        b.channel.stats.stalled_push_cycles += lag
                    b.since = t - 1
            progressed = self._step(k, t)
            k._last_progress = progressed
            if progressed:
                self._progressed = True
        self._step_idx = -1
        # Phase 2: observer sweep (exactly the dense per-cycle record).
        if self._wants_states:
            for k in self.kernels:
                if k._last_stepped == t:
                    state = "#" if k._last_progress else "s"
                elif k.done:
                    state = "-"
                elif k.sleep_until > t:
                    state = "z"
                else:
                    state = "s"
                for o in observers:
                    if o.wants_kernel_states:
                        o.on_kernel_state(t, k, state)
        # Phase 3: deadlock detection, same condition as the dense core.
        if not self._progressed and self._live:
            sleepers = any(not k.done and k.sleep_until > t
                           for k in self.kernels)
            if not sleepers and not any(ch.can_mature_later()
                                        for ch in self.channels):
                self._raise_deadlock(t)
        # Phase 4: next cycle's step list.
        nxt = self._next
        nxt.sort(key=_KIDX)
        self._current, self._next = nxt, cur
        cur.clear()
        self.now = self.engine.now = t + 1

    def _deadlock_idle(self) -> None:
        """Empty wake list with live kernels: dense would execute one more
        cycle in which every remaining kernel fails its retry."""
        t = self.now
        observers = self._observers
        if observers:
            for o in observers:
                o.on_cycle(t)
            if self._wants_states:
                for k in self.kernels:
                    state = "-" if k.done else "s"
                    for o in observers:
                        if o.wants_kernel_states:
                            o.on_kernel_state(t, k, state)
        self._raise_deadlock(t)

    def _charge_stalls(self, t: int) -> None:
        """Bring lazy stall charges up to date through cycle ``t``
        (inclusive) — dense re-steps every blocked kernel every cycle,
        so its counters are always current; this settles the difference
        before a report is built."""
        for k in self.kernels:
            if k.done:
                continue
            b = k.blocked
            if b is not None:
                lag = t - b.since
                if lag > 0:
                    k.stats.stall_cycles += lag
                    if b.kind == "pop":
                        b.channel.stats.stalled_pop_cycles += lag
                    else:
                        b.channel.stats.stalled_push_cycles += lag
                    b.since = t

    def _raise_deadlock(self, t: int) -> None:
        # The deadlock cycle itself is charged: dense executed every
        # kernel's failing retry at cycle t.
        self._charge_stalls(t)
        self.engine.now = t
        raise self.engine._make_hang("deadlock", t)

    def _raise_hang(self, kind: str, t: int, budget: int = 0) -> None:
        """Raise a livelock/timeout hang at cycle ``t``.

        Unlike a deadlock, cycle ``t`` itself was *not* executed (both
        cores check their watchdog before stepping anything), so stalls
        are settled only through ``t - 1`` — exactly what dense charged.
        """
        self._charge_stalls(t - 1)
        self.engine.now = t
        raise self.engine._make_hang(kind, t, budget=budget)

    def _unblock(self, k: Kernel) -> None:
        b = k.blocked
        k.blocked = None
        waiters = (b.channel._pop_waiters if b.kind == "pop"
                   else b.channel._push_waiters)
        try:
            waiters.remove(k)
        except ValueError:              # pragma: no cover - defensive
            pass

    def _step(self, k: Kernel, t: int) -> bool:
        """Resume ``k`` for cycle ``t``; mirror of the dense step."""
        stats = k.stats
        if stats.start_cycle is None:
            stats.start_cycle = t
        observers = self._observers
        progressed = False
        ops = 0
        b = k.blocked
        op = b.op if b is not None else None
        while True:
            if ops > MAX_OPS_PER_CYCLE:
                raise SimulationError(
                    f"kernel {k.name!r} performed more than "
                    f"{MAX_OPS_PER_CYCLE} ops in one cycle; missing Clock()?"
                )
            if op is None:
                try:
                    op = k.body.send(k._resume_value)
                except StopIteration:
                    k.done = True
                    stats.finish_cycle = t
                    self._live -= 1
                    self.engine._last_op_cycle = t
                    return True
                k._resume_value = None

            if isinstance(op, Pop):
                ch = op.channel
                if op.count > ch.depth:
                    raise SimulationError(
                        f"kernel {k.name!r} pops {op.count} per cycle from "
                        f"channel {ch.name!r} of depth "
                        f"{ch.depth}; a channel must be at least "
                        "as deep as its consumer's width")
                if ch.can_pop(op.count):
                    vals = ch.pop(op.count)   # fires on_space
                    k._resume_value = vals[0] if op.count == 1 else vals
                    self.engine._last_op_cycle = t
                    if k.blocked is not None:
                        self._unblock(k)
                    if observers:
                        for o in observers:
                            o.on_channel_op(t, k, ch, "pop", op.count)
                    progressed = True
                    ops += 1
                    op = None
                    continue
                if k.blocked is None:
                    k.blocked = BlockedState(op, ch, "pop", t)
                    ch._pop_waiters.append(k)
                else:
                    k.blocked.since = t
                stats.stall_cycles += 1
                ch.stats.stalled_pop_cycles += 1
                return progressed
            if isinstance(op, Push):
                ch = op.channel
                n = len(op.values)
                lat = op.latency if op.latency is not None else k.latency
                headroom = lat * n
                if ch.can_push(n, headroom):
                    ch.push(op.values, t + lat, headroom)  # fires on_staged
                    self.engine._last_op_cycle = t
                    if k.blocked is not None:
                        self._unblock(k)
                    if observers:
                        for o in observers:
                            o.on_channel_op(t, k, ch, "push", n)
                    progressed = True
                    ops += 1
                    op = None
                    continue
                if k.blocked is None:
                    k.blocked = BlockedState(op, ch, "push", t)
                    ch._push_waiters.append(k)
                else:
                    k.blocked.since = t
                stats.stall_cycles += 1
                ch.stats.stalled_push_cycles += 1
                return progressed
            if isinstance(op, Clock):
                stats.active_cycles += 1
                if op.cycles > 1:
                    k.sleep_until = t + op.cycles
                    k._queued_for = t + op.cycles
                    self._seq += 1
                    heapq.heappush(self._heap,
                                   (t + op.cycles, self._seq, _WAKE, k))
                else:
                    k._queued_for = t + 1
                    self._next.append(k)
                return True
            raise SimulationError(
                f"kernel {k.name!r} yielded unknown op {op!r}"
            )
