"""FPGA substrate simulator.

This subpackage stands in for the physical FPGA of the paper: bounded FIFO
channels (:mod:`channel`), a cycle-stepped engine with backpressure and
deadlock detection (:mod:`engine`), a banked DRAM model (:mod:`memory`),
the device catalog of Table II (:mod:`device`) and the resource/latency
calibration of Tables I and III (:mod:`resources`).
"""

from .channel import Channel, ChannelError
from .device import (
    ARRIA10,
    DEVICES,
    STRATIX10,
    U280,
    FpgaDevice,
    FrequencyModel,
    PowerModel,
)
from .engine import DeadlockError, Engine, SimReport, SimulationError
from .errors import (
    DeadlineExceeded,
    EccError,
    FaultError,
    HangError,
    HangReport,
    KernelCrashError,
    LivelockError,
    ReproError,
    TransientFaultError,
)
from .kernel import BlockedState, Clock, Kernel, Pop, Push
from .observers import (
    EngineObserver,
    JsonlEventDump,
    StallChainProfiler,
    TraceObserver,
)
from .scheduler import WakeListScheduler
from .memory import (
    DramBuffer,
    DramModel,
    Placement,
    read_kernel,
    write_kernel,
)
from .resources import (
    ResourceUsage,
    fully_unrolled_resources,
    gemm_systolic_resources,
    level1_latency,
    level1_resources,
    level2_resources,
)
from .util import (
    duplicate_kernel,
    forward_kernel,
    merge_kernel,
    scalar_sink,
    sink_kernel,
    source_kernel,
)

__all__ = [
    "ARRIA10", "BlockedState", "Channel", "ChannelError", "Clock", "DEVICES",
    "DeadlineExceeded", "DeadlockError", "DramBuffer", "DramModel",
    "EccError", "Engine",
    "EngineObserver", "FaultError", "FpgaDevice", "FrequencyModel",
    "HangError", "HangReport", "JsonlEventDump", "Kernel",
    "KernelCrashError", "LivelockError", "Pop", "PowerModel", "Push",
    "Placement", "ReproError", "ResourceUsage", "STRATIX10", "SimReport",
    "SimulationError", "StallChainProfiler", "TraceObserver",
    "TransientFaultError", "U280",
    "WakeListScheduler", "duplicate_kernel", "forward_kernel",
    "fully_unrolled_resources", "gemm_systolic_resources", "level1_latency",
    "merge_kernel",
    "level1_resources", "level2_resources", "read_kernel", "scalar_sink",
    "sink_kernel", "source_kernel", "write_kernel",
]
