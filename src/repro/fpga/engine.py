"""Simulation engine: dense reference core and event-driven default.

The engine advances simulated time in clock cycles.  Each executed cycle:

1. staged channel values whose pipeline latency has elapsed become visible
   (:meth:`Channel.mature`);
2. the DRAM model's per-cycle bandwidth budgets are reset;
3. runnable kernels are resumed until they end their cycle (yield
   ``Clock``) or block on a ``Pop``/``Push`` that cannot be satisfied.

A kernel blocked this cycle is retried on a later cycle; its stall cycles
are counted.  If a cycle passes in which *nothing* can make progress — no
kernel stepped, no staged value will ever mature, no kernel is sleeping
on a timer — the composition is deadlocked and a :class:`DeadlockError`
describing every blocked kernel is raised.  This is precisely the "stalls
forever" condition of invalid module compositions in Sec. V of the FBLAS
paper.

Three cores implement these semantics:

``mode="event"`` (default)
    The wake-list scheduler of :mod:`repro.fpga.scheduler`: kernels wait
    on channel events instead of being re-polled, and simulated time
    jumps over provably idle cycles.  Cycle counts, stall accounting and
    deadlock semantics are identical to the dense core — only wall-clock
    time changes.

``mode="dense"``
    The original reference loop that steps every kernel every cycle.
    Kept as the oracle the differential tests compare against.

``mode="bulk"``
    The event core plus the steady-state fast path of
    :mod:`repro.fpga.bulk`: when every runnable kernel carries a
    :class:`~repro.fpga.pattern.StaticPattern` and the design has
    settled into a cycle-periodic steady state, K cycles are replayed
    arithmetically in one superstep (vectorized block transfers, counter
    arithmetic).  Unpatterned kernels — and any kernel near a blocking
    boundary — fall back to exact event stepping, so all reports stay
    byte-identical to the other cores.

Tracing and profiling attach through the observer protocol of
:mod:`repro.fpga.observers`; ``trace=True`` is shorthand for attaching a
:class:`~repro.fpga.observers.TraceObserver`.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .channel import DEFAULT_CHANNEL_DEPTH, Channel
from .errors import (MAX_OPS_PER_CYCLE, DeadlockError, HangError,
                     LivelockError, SimulationError)
from .kernel import BlockedState, Clock, Kernel, KernelBody, Pop, Push
from .memory import BankStats
from .observers import MAX_TRACE_CYCLES, TraceObserver

# Safe despite the apparent cycle: repro.telemetry's import closure
# never touches repro.fpga at module scope (see telemetry/observers.py).
from ..telemetry.runtime import active as _telemetry_active

__all__ = [
    "DeadlockError", "Engine", "HangError", "LivelockError",
    "MAX_OPS_PER_CYCLE", "SIM_REPORT_SCHEMA", "SimReport",
    "SimulationError",
]

#: Schema tag of :meth:`SimReport.to_dict` documents (shared by the
#: benchmark baselines and the telemetry ``--metrics`` artifacts).
SIM_REPORT_SCHEMA = "repro.simreport/1"


def _adapt_iterable(body):
    """Turn a plain iterable of ops into a generator the engine can drive.

    Pop results cannot be delivered into a plain iterable, so this adapter
    is only suitable for scripted Push/Clock sequences (and empty bodies).
    """
    def gen():
        yield from iter(body)
    return gen()


@dataclass
class SimReport:
    """Result of a simulation run."""

    cycles: int
    kernels: Dict[str, "Kernel"]
    channels: Dict[str, Channel]
    #: Per-channel summed occupancy over traced cycles (only filled when a
    #: TraceObserver was attached / ``trace=True``); see
    #: :meth:`mean_occupancy`.
    occupancy_sums: Dict[str, int] = field(default_factory=dict)
    #: Per-kernel per-cycle state strings ('#': worked, 's': stalled,
    #: 'z': sleeping, '-': done), trace mode only.
    timelines: Dict[str, List[str]] = field(default_factory=dict)
    #: Per-DRAM-bank traffic deltas for *this run* (empty when the engine
    #: has no memory model attached).
    bank_stats: List[BankStats] = field(default_factory=list)

    def kernel_stats(self, name: str):
        return self.kernels[name].stats

    def channel_stats(self, name: str):
        return self.channels[name].stats

    @property
    def total_stall_cycles(self) -> int:
        return sum(k.stats.stall_cycles for k in self.kernels.values())

    @property
    def kernel_steps(self) -> int:
        """Total live kernel-cycles (active + stalled) across the run — a
        mode-independent measure of simulated work, used by the
        throughput benchmarks to compare engine cores."""
        return sum(k.stats.active_cycles + k.stats.stall_cycles
                   for k in self.kernels.values())

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able summary of the run (schema ``repro.simreport/1``).

        Key names deliberately match the benchmark baselines
        (``BENCH_engine.json``: ``cycles``, ``kernel_steps``) so every
        artifact that quotes simulated work quotes it identically.
        Trace-mode extras (timelines, occupancy sums) are not included —
        they are unbounded and have their own observers.
        """
        return {
            "schema": SIM_REPORT_SCHEMA,
            "cycles": self.cycles,
            "kernel_steps": self.kernel_steps,
            "total_stall_cycles": self.total_stall_cycles,
            "kernels": {
                name: {
                    "active_cycles": k.stats.active_cycles,
                    "stall_cycles": k.stats.stall_cycles,
                    "start_cycle": k.stats.start_cycle,
                    "finish_cycle": k.stats.finish_cycle,
                    "latency": k.latency,
                    "ii": k.ii,
                }
                for name, k in self.kernels.items()
            },
            "channels": {
                name: {
                    "depth": ch.depth,
                    "pushes": ch.stats.pushes,
                    "pops": ch.stats.pops,
                    "max_occupancy": ch.stats.max_occupancy,
                    "stalled_push_cycles": ch.stats.stalled_push_cycles,
                    "stalled_pop_cycles": ch.stats.stalled_pop_cycles,
                }
                for name, ch in self.channels.items()
            },
            "bank_stats": [
                {"bank": i, **bs.to_dict()}
                for i, bs in enumerate(self.bank_stats)
            ],
        }

    # -- profiling ---------------------------------------------------------
    def kernel_utilization(self, name: str) -> float:
        """Fraction of a kernel's live cycles it did work (vs stalling)."""
        s = self.kernels[name].stats
        busy = s.active_cycles
        total = busy + s.stall_cycles
        return busy / total if total else 0.0

    def bottleneck(self) -> str:
        """The kernel that stalled the most — where to spend resources.

        This is the dimensioning question of Sec. IV-B: a module stalled
        on its inputs is over-provisioned (its producers or DRAM are the
        bottleneck); a module everyone else waits on is under-provisioned.
        """
        if not self.kernels:
            raise ValueError("no kernels in report")
        return max(self.kernels, key=lambda n:
                   self.kernels[n].stats.stall_cycles)

    def mean_occupancy(self, channel: str) -> float:
        """Average FIFO occupancy (requires a trace-enabled run).

        Occupancy sampling stops at ``MAX_TRACE_CYCLES`` — the same cap
        the timelines honour — so on longer runs this is the mean over
        the first ``MAX_TRACE_CYCLES`` cycles, not the whole run.
        """
        if channel not in self.occupancy_sums:
            raise ValueError(
                f"no occupancy trace for {channel!r}; run the engine "
                "with trace=True")
        sampled = min(self.cycles, MAX_TRACE_CYCLES)
        return self.occupancy_sums[channel] / max(sampled, 1)

    def timeline(self, max_width: int = 72) -> str:
        """ASCII Gantt of kernel activity (requires a trace-enabled run).

        Each row is one kernel; each column a bucket of cycles, showing
        the bucket's dominant state: ``#`` working, ``s`` stalled, ``z``
        sleeping, ``-`` finished.  Backpressure chains are immediately
        visible as diagonal bands of ``s``.
        """
        if not self.timelines:
            raise ValueError(
                "no timeline recorded; run the engine with trace=True")
        span = max(len(t) for t in self.timelines.values())
        bucket = max(1, math.ceil(span / max_width))
        name_w = max(len(n) for n in self.timelines)
        lines = [f"timeline ({span} cycles, {bucket} cycles/char):"]
        for name, states in self.timelines.items():
            row = []
            for start in range(0, span, bucket):
                chunk = states[start:start + bucket]
                if not chunk:
                    row.append(" ")
                    continue
                # precedence: work > stall > sleep > done
                for ch in ("#", "s", "z", "-"):
                    if ch in chunk:
                        row.append(ch)
                        break
            lines.append(f"  {name:>{name_w}} |{''.join(row)}|")
        return "\n".join(lines)

    def profile(self) -> str:
        """Human-readable utilization/backpressure summary."""
        lines = [f"profile over {self.cycles} cycles:"]
        for name in self.kernels:
            s = self.kernels[name].stats
            lines.append(
                f"  kernel  {name:20s} util={self.kernel_utilization(name):6.1%}"
                f" active={s.active_cycles} stalled={s.stall_cycles}")
        for name, ch in self.channels.items():
            st = ch.stats
            occ = (f" mean_occ={self.mean_occupancy(name):.1f}"
                   if name in self.occupancy_sums else "")
            lines.append(
                f"  channel {name:20s} max_occ={st.max_occupancy}"
                f" push_stalls={st.stalled_push_cycles}"
                f" pop_stalls={st.stalled_pop_cycles}{occ}")
        lines.append(f"  bottleneck: {self.bottleneck()}")
        return "\n".join(lines)

    def summary(self) -> str:
        lines = [f"simulation finished in {self.cycles} cycles"]
        for name, k in self.kernels.items():
            s = k.stats
            lines.append(
                f"  kernel {name}: active={s.active_cycles} "
                f"stalled={s.stall_cycles} span=[{s.start_cycle},{s.finish_cycle}]"
            )
        for name, ch in self.channels.items():
            st = ch.stats
            lines.append(
                f"  channel {name}: pushes={st.pushes} pops={st.pops} "
                f"max_occ={st.max_occupancy}"
            )
        return "\n".join(lines)


class Engine:
    """Owns channels and kernels and advances the clock.

    Parameters
    ----------
    memory:
        Optional :class:`repro.fpga.memory.DramModel`; its per-cycle
        bandwidth budgets are reset at every clock edge.
    trace:
        Shorthand for attaching a
        :class:`~repro.fpga.observers.TraceObserver`; the run's report
        then carries timelines and occupancy sums.
    preflight:
        When True, :meth:`run` performs the static pre-flight analysis
        (:func:`repro.analysis.analyze_engine`) before the first cycle and
        raises :class:`repro.analysis.AnalysisError` on any error-severity
        diagnostic — failing fast instead of stalling mid-simulation.
    mode:
        ``"event"`` (default) runs on the wake-list scheduler of
        :mod:`repro.fpga.scheduler`; ``"dense"`` runs the original
        every-kernel-every-cycle reference loop; ``"bulk"`` adds the
        steady-state superstep fast path of :mod:`repro.fpga.bulk` on
        top of the event core; ``"certified"`` requires a whole-program
        :class:`repro.analysis.schedule.StaticSchedule` certificate
        (raising :class:`repro.analysis.AnalysisError` with FB4xx
        diagnostics when none exists) and then replays steady windows
        with zero runtime probing or cooldown fallback.  All produce
        identical reports; event mode is faster the more a design stalls
        or sleeps, bulk/certified mode the longer its pattern-annotated
        pipelines run at steady state.
    schedule_cache:
        Optional mutable mapping reused across ``"certified"`` runs:
        structurally identical compositions share one certification
        (see :func:`repro.analysis.schedule.ensure_certified`).
    observers:
        Iterable of :class:`~repro.fpga.observers.EngineObserver`
        instances notified of run/cycle/kernel/channel events.
    """

    #: Cap on per-kernel timeline samples kept in trace mode.
    MAX_TRACE_CYCLES = MAX_TRACE_CYCLES

    def __init__(self, memory=None, trace: bool = False,
                 preflight: bool = False, mode: str = "event",
                 observers=(), fault_plan=None, schedule_cache=None):
        if mode not in ("event", "dense", "bulk", "certified"):
            raise ValueError(
                f"mode must be 'event', 'dense', 'bulk' or 'certified', "
                f"got {mode!r}")
        self.memory = memory
        self.trace = trace
        self.preflight = preflight
        self.mode = mode
        #: Optional :class:`repro.faults.FaultPlan` applied to every run of
        #: this engine (takes precedence over an ambient
        #: :func:`repro.faults.inject` context).
        self.fault_plan = fault_plan
        self.channels: Dict[str, Channel] = {}
        self.kernels: Dict[str, Kernel] = {}
        self._observers: List = list(observers)
        if trace:
            self._observers.append(TraceObserver())
        self.now = 0
        # Bank-stat snapshot taken at run start (per-run traffic deltas).
        self._bank_baseline = None
        # Watchdog state, resolved by _run: livelock window in cycles
        # (0 = disabled) and the last cycle any channel element moved or
        # kernel finished.  All three cores update _last_op_cycle.
        self._watch_window = 0
        self._last_op_cycle = 0
        # The FaultInjector attached for the duration of a run (None
        # outside injected runs); the bulk tier consults it to clamp
        # superstep windows away from fault cycles.
        self._injector = None
        # Certified-mode state: the per-composition certification cache
        # (shared by the caller, e.g. one per Fblas instance) and the
        # StaticSchedule of the most recent certified run.
        self._schedule_cache = schedule_cache
        self.schedule = None

    # -- construction -------------------------------------------------------
    def channel(self, name: str,
                depth: int = DEFAULT_CHANNEL_DEPTH) -> Channel:
        """Create and register a channel."""
        if name in self.channels:
            raise ValueError(f"duplicate channel name {name!r}")
        ch = Channel(name, depth)
        self.channels[name] = ch
        return ch

    def add_kernel(self, name: str, body: KernelBody, latency: int = 1,
                   reads=(), writes=(), defer: int = 0,
                   ii: int = 1) -> Kernel:
        """Register a kernel generator under ``name``.

        ``body`` is normally a generator; any iterable of ops is accepted
        (useful for scripted pushes), but only generators can receive Pop
        results.  ``reads``/``writes``/``defer``/``ii`` are optional
        static annotations consumed by the pre-flight analyzer and the
        telemetry layer (see :class:`repro.fpga.kernel.Kernel`); they do
        not change simulation.
        """
        if name in self.kernels:
            raise ValueError(f"duplicate kernel name {name!r}")
        if not hasattr(body, "send"):
            body = _adapt_iterable(body)
        k = Kernel(name, body, latency, reads=reads, writes=writes,
                   defer=defer, ii=ii,
                   pattern=getattr(body, "pattern", None))
        k.index = len(self.kernels)
        self.kernels[name] = k
        return k

    def add_observer(self, observer) -> None:
        """Attach an :class:`~repro.fpga.observers.EngineObserver`."""
        self._observers.append(observer)

    def _trace_observer(self) -> Optional[TraceObserver]:
        for o in self._observers:
            if isinstance(o, TraceObserver):
                return o
        return None

    def _bank_delta(self) -> List[BankStats]:
        """Per-bank traffic since :meth:`run` captured its baseline."""
        if self.memory is None:
            return []
        base = self._bank_baseline
        if base is None:
            return [BankStats(b.bytes_read, b.bytes_written,
                              b.denied_cycles, b.busy_cycles, b.ecc_events)
                    for b in self.memory.bank_stats]
        return [BankStats(b.bytes_read - r0, b.bytes_written - w0,
                          b.denied_cycles - d0, b.busy_cycles - u0,
                          b.ecc_events - e0)
                for b, (r0, w0, d0, u0, e0)
                in zip(self.memory.bank_stats, base)]

    def _build_report(self) -> SimReport:
        tr = self._trace_observer()
        return SimReport(self.now, dict(self.kernels), dict(self.channels),
                         dict(tr.occupancy_sums) if tr else {},
                         dict(tr.timelines) if tr else {},
                         bank_stats=self._bank_delta())

    def bulk_stats(self) -> Optional[Dict[str, int]]:
        """Superstep counters of the most recent bulk/certified run.

        ``windows`` (supersteps replayed), ``bulk_cycles`` (cycles they
        fast-forwarded), ``probes`` (speculative fingerprint probes) and
        ``cooldowns`` (probe back-offs) — the introspection the bulk
        tier maintains per run (a certified run keeps the last two at
        zero).  None before any bulk/certified run; the telemetry
        session copies these into each engine-run ledger record.
        """
        if not hasattr(self, "_bulk_windows"):
            return None
        return {"windows": self._bulk_windows,
                "bulk_cycles": self._bulk_cycles,
                "probes": self._bulk_probes,
                "cooldowns": self._bulk_cooldowns}

    # -- execution ----------------------------------------------------------
    def cycle_budget(self) -> int:
        """Default ``max_cycles``: finite, derived from the declared work.

        Channel depths, kernel latencies, reorder windows (``defer``) and
        initiation intervals bound how long a *progressing* design can
        plausibly run; the budget scales with their sum, floored high
        enough that every known workload finishes with orders of
        magnitude to spare.  Runs that exhaust it raise
        :class:`LivelockError` (``trigger="timeout"``) instead of hanging
        the process — the unbounded-run hazard fix.
        """
        work = sum(ch.depth for ch in self.channels.values())
        work += sum(k.latency + k.defer + k.ii
                    for k in self.kernels.values())
        return max(2_000_000, 2_000 * max(1, work))

    def livelock_budget(self) -> int:
        """Default progress window for the livelock watchdog.

        If no channel element moves and no kernel finishes for this many
        consecutive cycles (while kernels keep burning cycles), the run
        is declared livelocked.  Scaled by the same work terms as
        :meth:`cycle_budget` so deep pipelines and long reorder windows
        never trip it spuriously; sleeping kernels (``Clock(n)``) are
        exempt for as long as they sleep.
        """
        work = sum(ch.depth for ch in self.channels.values())
        work += sum(k.latency + k.defer + k.ii
                    for k in self.kernels.values())
        return 10_000 + 4 * work

    def run(self, max_cycles: Optional[int] = None,
            preflight: Optional[bool] = None,
            livelock_window: Optional[int] = None) -> SimReport:
        """Run until every kernel completes; return the report.

        Raises :class:`DeadlockError` if the composition stalls forever
        and :class:`LivelockError` if the watchdog gives up first —
        either ``max_cycles`` (default: :meth:`cycle_budget`) elapsing,
        or no progress for ``livelock_window`` (default:
        :meth:`livelock_budget`; 0 disables) consecutive cycles.  Both
        hang errors carry a structured
        :class:`~repro.fpga.errors.HangReport`.  With ``preflight``
        (argument or constructor flag) the static analyzer runs first and
        raises :class:`repro.analysis.AnalysisError` before cycle 0 if it
        proves the composition invalid.

        When a :func:`repro.telemetry.session` is active, the run is
        instrumented (metrics, spans, kernel slices) for its duration
        and appends one correlated
        :class:`~repro.telemetry.ledger.RunRecord` to the session's run
        ledger; otherwise the single ``active()`` check here is the
        entire cost.
        When a fault plan is bound (constructor ``fault_plan`` or ambient
        :func:`repro.faults.inject` context), its faults are armed for
        the duration of the run.
        """
        tel = _telemetry_active()
        if tel is None:
            return self._run(max_cycles, preflight, livelock_window)
        with tel.engine_run(self):
            return self._run(max_cycles, preflight, livelock_window)

    def _resolve_injector(self):
        """Arm the fault plan for this run, if any; return the injector."""
        plan = self.fault_plan
        ctx = None
        if plan is None:
            from ..faults.runtime import active as _faults_active
            ctx = _faults_active()
            if ctx is not None:
                plan = ctx.plan
        if plan is None or not len(plan):
            return None
        from ..faults.inject import FaultInjector
        return FaultInjector(plan, self, ctx)

    def _run(self, max_cycles: Optional[int],
             preflight: Optional[bool],
             livelock_window: Optional[int] = None) -> SimReport:
        if self.preflight if preflight is None else preflight:
            # Imported lazily: repro.analysis depends on this module.
            from ..analysis import analyze_engine
            analyze_engine(self).raise_if_errors()
        if max_cycles is None:
            max_cycles = self.cycle_budget()
        self._watch_window = (self.livelock_budget()
                              if livelock_window is None
                              else livelock_window)
        self._last_op_cycle = self.now
        if self.memory is not None:
            self._bank_baseline = [
                (b.bytes_read, b.bytes_written, b.denied_cycles,
                 b.busy_cycles, b.ecc_events)
                for b in self.memory.bank_stats]
        injector = self._resolve_injector()
        self._injector = injector
        if injector is not None:
            injector.attach()
        try:
            if self.mode == "event":
                # Imported lazily: the scheduler imports this module's
                # sibling errors/kernel modules, only needed in event mode.
                from .scheduler import WakeListScheduler
                return WakeListScheduler(self, max_cycles).run()
            if self.mode == "bulk":
                from .bulk import BulkScheduler
                return BulkScheduler(self, max_cycles).run()
            if self.mode == "certified":
                # Certify (or fetch the cached certificate for this
                # structure) before cycle 0; a design the rate analyzer
                # rejects raises AnalysisError with FB4xx diagnostics.
                from ..analysis.schedule import ensure_certified
                from .bulk import CertifiedScheduler
                self.schedule = ensure_certified(
                    self, cache=self._schedule_cache)
                return CertifiedScheduler(self, max_cycles).run()
            return self._run_dense(max_cycles)
        finally:
            if injector is not None:
                injector.detach()
            self._injector = None

    def _make_hang(self, kind: str, cycle: int, budget: int = 0):
        """Build the hang exception for ``kind`` with forensics attached.

        Forensics failures must never mask the hang itself, so report
        construction is best-effort.
        """
        blocked = {k.name: k.describe_block()
                   for k in self.kernels.values() if not k.done}
        try:
            from ..faults.forensics import build_hang_report
            report = build_hang_report(self, cycle, kind)
        except Exception:       # pragma: no cover - forensics best-effort
            report = None
        if kind == "deadlock":
            return DeadlockError(cycle, blocked, report)
        return LivelockError(cycle, blocked, report, trigger=kind,
                             budget=budget)

    def _run_dense(self, max_cycles: int) -> SimReport:
        observers = self._observers
        for o in observers:
            o.on_run_start(self)
        kernels = list(self.kernels.values())
        while True:
            if all(k.done for k in kernels):
                report = self._build_report()
                for o in observers:
                    o.on_run_end(report)
                return report
            if self.now >= max_cycles:
                raise self._make_hang("timeout", self.now, budget=max_cycles)
            self._step_cycle(kernels)

    def _step_cycle(self, kernels: List[Kernel]) -> None:
        t = self.now
        w = self._watch_window
        if w and t >= self._last_op_cycle + w and not any(
                not k.done and k.sleep_until >= t for k in kernels):
            # No channel element moved and no kernel finished for a whole
            # progress window (and nobody is legitimately sleeping
            # through it or waking this very cycle): the design spins
            # without converging.  (A busy spinner never sets
            # ``sleep_until``, so it is never exempt.)
            raise self._make_hang("livelock", t, budget=w)
        observers = self._observers
        matured = 0
        for ch in self.channels.values():
            matured += ch.mature(t)
        if matured:
            self._last_op_cycle = t
        if observers:
            for o in observers:
                o.on_cycle(t)
        if self.memory is not None:
            self.memory.begin_cycle(t)

        progressed = matured > 0
        sleepers = 0
        for k in kernels:
            if k.done:
                state = "-"
            elif k.sleep_until > t:
                sleepers += 1
                state = "z"
            else:
                stepped = self._step_kernel(k, t)
                if stepped:
                    progressed = True
                state = "#" if stepped else "s"
            if observers:
                for o in observers:
                    if o.wants_kernel_states:
                        o.on_kernel_state(t, k, state)

        if not progressed and sleepers == 0:
            # Staged values that can still enter a non-full FIFO will make
            # progress on a later cycle; staged values behind a full FIFO
            # cannot move unless some kernel pops, and no kernel stepped.
            staged = any(ch.can_mature_later() for ch in self.channels.values())
            if not staged and not all(k.done for k in kernels):
                raise self._make_hang("deadlock", t)
        self.now = t + 1

    def _describe_block(self, k: Kernel) -> str:
        return k.describe_block()

    def _step_kernel(self, k: Kernel, t: int) -> bool:
        """Resume kernel ``k`` for cycle ``t``; return True if it progressed."""
        if k.stats.start_cycle is None:
            k.stats.start_cycle = t
        observers = self._observers
        progressed = False
        ops = 0
        b = k.blocked
        op = b.op if b is not None else None
        while True:
            if ops > MAX_OPS_PER_CYCLE:
                raise SimulationError(
                    f"kernel {k.name!r} performed more than "
                    f"{MAX_OPS_PER_CYCLE} ops in one cycle; missing Clock()?"
                )
            if op is None:
                try:
                    op = k.body.send(k._resume_value)
                except StopIteration:
                    k.done = True
                    k.stats.finish_cycle = t
                    self._last_op_cycle = t
                    return True
                k._resume_value = None

            if isinstance(op, Pop):
                if op.count > op.channel.depth:
                    raise SimulationError(
                        f"kernel {k.name!r} pops {op.count} per cycle from "
                        f"channel {op.channel.name!r} of depth "
                        f"{op.channel.depth}; a channel must be at least "
                        "as deep as its consumer's width")
                if op.channel.can_pop(op.count):
                    vals = op.channel.pop(op.count)
                    k._resume_value = vals[0] if op.count == 1 else vals
                    k.blocked = None
                    self._last_op_cycle = t
                    if observers:
                        for o in observers:
                            o.on_channel_op(t, k, op.channel, "pop", op.count)
                    progressed = True
                    ops += 1
                    op = None
                    continue
                k.blocked = BlockedState(op, op.channel, "pop", t)
                k.stats.stall_cycles += 1
                op.channel.stats.stalled_pop_cycles += 1
                return progressed
            if isinstance(op, Push):
                n = len(op.values)
                lat = op.latency if op.latency is not None else k.latency
                # The producer's pipeline registers hold up to lat * n
                # values beyond the FIFO depth (n lanes, lat stages deep).
                headroom = lat * n
                if op.channel.can_push(n, headroom):
                    op.channel.push(op.values, t + lat, headroom)
                    k.blocked = None
                    self._last_op_cycle = t
                    if observers:
                        for o in observers:
                            o.on_channel_op(t, k, op.channel, "push", n)
                    progressed = True
                    ops += 1
                    op = None
                    continue
                k.blocked = BlockedState(op, op.channel, "push", t)
                k.stats.stall_cycles += 1
                op.channel.stats.stalled_push_cycles += 1
                return progressed
            if isinstance(op, Clock):
                k.stats.active_cycles += 1
                if op.cycles > 1:
                    k.sleep_until = t + op.cycles
                return True
            raise SimulationError(
                f"kernel {k.name!r} yielded unknown op {op!r}"
            )
